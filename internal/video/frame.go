// Package video provides the raw-video substrate for vbench: planar
// YUV 4:2:0 frames, sequences with framerate metadata, a Y4M
// (YUV4MPEG2) container reader/writer, and a deterministic synthetic
// content generator that stands in for the paper's Creative-Commons
// YouTube clips.
//
// All pixel data is 8-bit. Frames use 4:2:0 chroma subsampling: the Cb
// and Cr planes are half the luma resolution in each dimension, which
// is the format every encoder in the paper consumes.
package video

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Frame is a single planar YUV 4:2:0 picture. Y holds Width×Height
// luma samples in row-major order; Cb and Cr hold
// (Width/2)×(Height/2) chroma samples each. Width and Height are
// always even.
type Frame struct {
	Width  int
	Height int
	Y      []uint8
	Cb     []uint8
	Cr     []uint8
}

// NewFrame allocates a zeroed (black, neutral chroma) frame. It panics
// if either dimension is non-positive or odd, because 4:2:0 chroma
// requires even luma dimensions.
func NewFrame(width, height int) *Frame {
	validateDims(width, height)
	cw, ch := width/2, height/2
	f := &Frame{
		Width:  width,
		Height: height,
		Y:      make([]uint8, width*height),
		Cb:     make([]uint8, cw*ch),
		Cr:     make([]uint8, cw*ch),
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
	return f
}

func validateDims(width, height int) {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("video: invalid frame size %dx%d", width, height))
	}
	if width%2 != 0 || height%2 != 0 {
		panic(fmt.Sprintf("video: 4:2:0 frames need even dimensions, got %dx%d", width, height))
	}
}

// framePool recycles frame buffers between encodes/decodes: the codec
// allocates one reconstruction frame per coded frame, and under a
// benchmark grid those dominate the heap churn after the per-macroblock
// paths went allocation-free. sync.Pool keeps reuse goroutine-safe and
// lets the GC reclaim idle frames under memory pressure.
var framePool sync.Pool

// framePoolOff disables reuse when set (GetFrame falls back to
// NewFrame and PutFrame drops frames). Tests use it to compare pooled
// against fresh-allocation behaviour byte for byte.
var framePoolOff atomic.Bool

var framePoolGets, framePoolHits, framePoolPuts atomic.Int64

// SetFramePooling toggles the frame pool (enabled by default).
// Disabling does not drop frames already pooled; re-enabling reuses
// them.
func SetFramePooling(on bool) { framePoolOff.Store(!on) }

// FramePoolStats returns the cumulative pool traffic: GetFrame calls
// made while pooling was enabled, gets satisfied by reuse, and frames
// returned via PutFrame. Exported by the codec as the
// codec.arena.frame_{gets,hits,puts} gauges.
func FramePoolStats() (gets, hits, puts int64) {
	return framePoolGets.Load(), framePoolHits.Load(), framePoolPuts.Load()
}

// GetFrame returns a width×height frame from the pool, falling back to
// NewFrame when the pool is empty, disabled, or holds a frame of
// insufficient capacity. The frame's contents are reset to NewFrame
// state (black luma, neutral chroma), so pooled and fresh frames are
// indistinguishable — a determinism requirement for the codec, whose
// bitstreams must not depend on where a reconstruction buffer came
// from.
func GetFrame(width, height int) *Frame {
	validateDims(width, height)
	if framePoolOff.Load() {
		return NewFrame(width, height)
	}
	framePoolGets.Add(1)
	v := framePool.Get()
	if v == nil {
		return NewFrame(width, height)
	}
	f := v.(*Frame)
	n := width * height
	cn := (width / 2) * (height / 2)
	if cap(f.Y) < n || cap(f.Cb) < cn || cap(f.Cr) < cn {
		// Wrong geometry: drop it for the GC and allocate the right
		// size. The pool self-cleans when the workload's frame size
		// changes.
		return NewFrame(width, height)
	}
	framePoolHits.Add(1)
	f.Width, f.Height = width, height
	f.Y = f.Y[:n]
	f.Cb, f.Cr = f.Cb[:cn], f.Cr[:cn]
	for i := range f.Y {
		f.Y[i] = 0
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
	return f
}

// PutFrame returns f to the pool for reuse by a later GetFrame. The
// caller must hold the only live reference: a frame still reachable
// through a Result, a Sequence, or a reference list would be
// overwritten by its next user. nil is a no-op.
func PutFrame(f *Frame) {
	if f == nil || framePoolOff.Load() {
		return
	}
	framePoolPuts.Add(1)
	framePool.Put(f)
}

// PutSequence returns every frame of s to the pool and empties the
// sequence. Same ownership contract as PutFrame; the codec uses it to
// recycle the measurement-pass reconstruction that two-pass encodes
// discard.
func PutSequence(s *Sequence) {
	if s == nil {
		return
	}
	for i, f := range s.Frames {
		PutFrame(f)
		s.Frames[i] = nil
	}
	s.Frames = s.Frames[:0]
}

// ChromaWidth returns the width of the Cb/Cr planes.
func (f *Frame) ChromaWidth() int { return f.Width / 2 }

// ChromaHeight returns the height of the Cb/Cr planes.
func (f *Frame) ChromaHeight() int { return f.Height / 2 }

// PixelCount returns the number of luma samples in the frame, the
// normalization unit used by all vbench metrics.
func (f *Frame) PixelCount() int { return f.Width * f.Height }

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := &Frame{
		Width:  f.Width,
		Height: f.Height,
		Y:      append([]uint8(nil), f.Y...),
		Cb:     append([]uint8(nil), f.Cb...),
		Cr:     append([]uint8(nil), f.Cr...),
	}
	return g
}

// CopyFrom overwrites the frame's planes with src's. Both frames must
// have identical dimensions.
func (f *Frame) CopyFrom(src *Frame) error {
	if f.Width != src.Width || f.Height != src.Height {
		return fmt.Errorf("video: copy between mismatched frames %dx%d and %dx%d",
			f.Width, f.Height, src.Width, src.Height)
	}
	copy(f.Y, src.Y)
	copy(f.Cb, src.Cb)
	copy(f.Cr, src.Cr)
	return nil
}

// Plane identifies one of the three planes of a frame.
type Plane int

// The three planes of a YUV frame.
const (
	PlaneY Plane = iota
	PlaneCb
	PlaneCr
)

// String returns the conventional plane name.
func (p Plane) String() string {
	switch p {
	case PlaneY:
		return "Y"
	case PlaneCb:
		return "Cb"
	case PlaneCr:
		return "Cr"
	}
	return fmt.Sprintf("Plane(%d)", int(p))
}

// PlaneData returns the samples, width, and height of the requested
// plane.
func (f *Frame) PlaneData(p Plane) (data []uint8, w, h int) {
	switch p {
	case PlaneY:
		return f.Y, f.Width, f.Height
	case PlaneCb:
		return f.Cb, f.ChromaWidth(), f.ChromaHeight()
	case PlaneCr:
		return f.Cr, f.ChromaWidth(), f.ChromaHeight()
	}
	panic(fmt.Sprintf("video: unknown plane %d", int(p)))
}

// Equal reports whether two frames have identical dimensions and
// identical samples in every plane.
func (f *Frame) Equal(g *Frame) bool {
	if f.Width != g.Width || f.Height != g.Height {
		return false
	}
	return byteSliceEqual(f.Y, g.Y) && byteSliceEqual(f.Cb, g.Cb) && byteSliceEqual(f.Cr, g.Cr)
}

func byteSliceEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sequence is an ordered list of equally sized frames together with
// their nominal framerate. It is the unit of work for a transcode.
type Sequence struct {
	Frames    []*Frame
	FrameRate float64 // frames per second
}

// Validate checks the structural invariants of the sequence: at least
// one frame, a positive framerate, and uniform frame dimensions.
func (s *Sequence) Validate() error {
	if len(s.Frames) == 0 {
		return errors.New("video: empty sequence")
	}
	if s.FrameRate <= 0 {
		return fmt.Errorf("video: non-positive framerate %v", s.FrameRate)
	}
	w, h := s.Frames[0].Width, s.Frames[0].Height
	for i, f := range s.Frames {
		if f == nil {
			return fmt.Errorf("video: nil frame at index %d", i)
		}
		if f.Width != w || f.Height != h {
			return fmt.Errorf("video: frame %d is %dx%d, expected %dx%d", i, f.Width, f.Height, w, h)
		}
	}
	return nil
}

// Width returns the luma width of the sequence's frames.
func (s *Sequence) Width() int { return s.Frames[0].Width }

// Height returns the luma height of the sequence's frames.
func (s *Sequence) Height() int { return s.Frames[0].Height }

// Duration returns the playback time of the sequence in seconds.
func (s *Sequence) Duration() float64 {
	return float64(len(s.Frames)) / s.FrameRate
}

// PixelCount returns the total number of luma samples across all
// frames; speed and bitrate normalizations divide by this.
func (s *Sequence) PixelCount() int64 {
	var n int64
	for _, f := range s.Frames {
		n += int64(f.PixelCount())
	}
	return n
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	c := &Sequence{FrameRate: s.FrameRate, Frames: make([]*Frame, len(s.Frames))}
	for i, f := range s.Frames {
		c.Frames[i] = f.Clone()
	}
	return c
}
