package video

import (
	"fmt"
	"math"

	"vbench/internal/rng"
)

// ContentParams controls the synthetic content generator. The
// parameters map directly onto the three drivers of transcode cost the
// paper identifies — spatial detail, motion, and temporal
// unpredictability — so a clip's inherent entropy (bits/pixel/s at
// constant quality) is a monotone function of them.
type ContentParams struct {
	// Seed selects the scene; all randomness derives from it.
	Seed uint64

	// Detail in [0,1] sets the spatial frequency content of the
	// background texture. 0 is a flat gradient, 1 is dense
	// foliage-like texture.
	Detail float64

	// Motion in [0,1] scales both global camera pan and sprite
	// velocities. Motion is a per-second quantity: at higher
	// framerates the per-frame displacement shrinks proportionally,
	// as it does for real cameras.
	Motion float64

	// Noise in [0,1] adds zero-mean temporal sensor noise; amplitude
	// 1.0 corresponds to ±10 luma levels, which defeats motion
	// compensation the way confetti or rain does.
	Noise float64

	// SceneCutInterval is the number of frames between hard scene
	// changes (every cut forces intra-like coding); 0 disables cuts.
	SceneCutInterval int

	// Sprites is the number of moving foreground objects.
	Sprites int

	// TextRegions is the number of sharp, high-contrast text-like
	// regions (menu bars, slides, HUDs). They are static between
	// scene cuts and compress extremely well temporally, but are
	// expensive spatially.
	TextRegions int

	// ChromaVariety in [0,1] scales how colourful the scene is.
	ChromaVariety float64
}

// Validate reports whether the parameters are within their documented
// ranges.
func (p ContentParams) Validate() error {
	switch {
	case p.Detail < 0 || p.Detail > 1:
		return fmt.Errorf("video: Detail %v out of [0,1]", p.Detail)
	case p.Motion < 0 || p.Motion > 1:
		return fmt.Errorf("video: Motion %v out of [0,1]", p.Motion)
	case p.Noise < 0 || p.Noise > 1:
		return fmt.Errorf("video: Noise %v out of [0,1]", p.Noise)
	case p.SceneCutInterval < 0:
		return fmt.Errorf("video: negative SceneCutInterval %d", p.SceneCutInterval)
	case p.Sprites < 0:
		return fmt.Errorf("video: negative Sprites %d", p.Sprites)
	case p.TextRegions < 0:
		return fmt.Errorf("video: negative TextRegions %d", p.TextRegions)
	case p.ChromaVariety < 0 || p.ChromaVariety > 1:
		return fmt.Errorf("video: ChromaVariety %v out of [0,1]", p.ChromaVariety)
	}
	return nil
}

// sprite is a moving foreground rectangle with its own luma/chroma.
type sprite struct {
	x, y   float64
	vx, vy float64
	w, h   int
	luma   float64
	cb, cr uint8
}

// textRegion is a static block of alternating-intensity rows that
// mimics rendered text.
type textRegion struct {
	x, y, w, h int
	phase      int
	fg, bg     uint8
}

// scene is the procedural state from which frames are rendered.
type scene struct {
	seed    uint64
	params  ContentParams
	width   int
	height  int
	sprites []sprite
	text    []textRegion
	// background texture parameters
	baseCell float64
	octaves  int
	// global pan velocity in pixels/frame
	panX, panY float64
	// gradient fallback colors
	gradLo, gradHi float64
	cbBase, crBase float64
}

func newScene(p ContentParams, width, height int, cut int, frameRate float64) *scene {
	// Motion is specified per second; convert to per-frame velocities.
	motionPerFrame := p.Motion * 30 / frameRate
	r := rng.New(p.Seed ^ (uint64(cut+1) * 0xA24BAED4963EE407))
	sc := &scene{seed: p.Seed + uint64(cut)*0x9E3779B9, params: p, width: width, height: height}

	// Background: cell size shrinks (higher frequency) as Detail grows.
	maxCell := float64(width) / 2
	minCell := 4.0
	sc.baseCell = maxCell * math.Pow(minCell/maxCell, p.Detail)
	sc.octaves = 1 + int(p.Detail*4+0.5)
	sc.gradLo = r.Range(30, 90)
	sc.gradHi = r.Range(150, 225)
	sc.cbBase = 128 + (r.Float64()*2-1)*40*p.ChromaVariety
	sc.crBase = 128 + (r.Float64()*2-1)*40*p.ChromaVariety

	// Global pan: up to ~3% of frame width per frame at Motion=1, 30fps.
	panMax := 0.03 * float64(width)
	sc.panX = (r.Float64()*2 - 1) * panMax * motionPerFrame
	sc.panY = (r.Float64()*2 - 1) * panMax * motionPerFrame * 0.3

	vMax := 0.02*float64(width)*motionPerFrame + 0.2
	for i := 0; i < p.Sprites; i++ {
		w := 8 + r.Intn(max(8, width/6))
		h := 8 + r.Intn(max(8, height/6))
		sp := sprite{
			x:    r.Float64() * float64(width-w),
			y:    r.Float64() * float64(height-h),
			vx:   (r.Float64()*2 - 1) * vMax,
			vy:   (r.Float64()*2 - 1) * vMax,
			w:    w,
			h:    h,
			luma: r.Range(40, 220),
			cb:   uint8(128 + (r.Float64()*2-1)*60*p.ChromaVariety),
			cr:   uint8(128 + (r.Float64()*2-1)*60*p.ChromaVariety),
		}
		sc.sprites = append(sc.sprites, sp)
	}

	for i := 0; i < p.TextRegions; i++ {
		w := width/4 + r.Intn(max(1, width/3))
		h := 8 + r.Intn(max(8, height/8))
		tr := textRegion{
			x:     r.Intn(max(1, width-w)),
			y:     r.Intn(max(1, height-h)),
			w:     w,
			h:     h,
			phase: r.Intn(4),
			fg:    uint8(r.Range(10, 60)),
			bg:    uint8(r.Range(190, 245)),
		}
		sc.text = append(sc.text, tr)
	}
	return sc
}

// render draws frame t (frames since the scene's cut) into f, then
// adds temporal noise from noiseRand.
func (sc *scene) render(f *Frame, t int, noiseRand *rng.Rand) {
	p := sc.params
	w, h := sc.width, sc.height
	offX := sc.panX * float64(t)
	offY := sc.panY * float64(t)

	// Background: blend of a vertical gradient and fractal texture.
	// Detail controls the blend weight so flat scenes stay flat.
	texWeight := 0.15 + 0.85*p.Detail
	for y := 0; y < h; y++ {
		grad := sc.gradLo + (sc.gradHi-sc.gradLo)*float64(y)/float64(h)
		row := f.Y[y*w : (y+1)*w]
		fy := float64(y) + offY
		for x := 0; x < w; x++ {
			n := fractalNoise(float64(x)+offX, fy, sc.baseCell, sc.octaves, 0.55, sc.seed)
			v := grad*(1-texWeight) + (40+175*n)*texWeight
			row[x] = clampU8(v)
		}
	}

	// Chroma planes: low-frequency colour wash.
	cw, ch := f.ChromaWidth(), f.ChromaHeight()
	chromaCell := sc.baseCell
	if chromaCell < 8 {
		chromaCell = 8
	}
	for y := 0; y < ch; y++ {
		cbRow := f.Cb[y*cw : (y+1)*cw]
		crRow := f.Cr[y*cw : (y+1)*cw]
		fy := float64(y)*2 + offY
		for x := 0; x < cw; x++ {
			if p.ChromaVariety == 0 {
				cbRow[x] = uint8(clampU8(sc.cbBase))
				crRow[x] = uint8(clampU8(sc.crBase))
				continue
			}
			n1 := fractalNoise(float64(x)*2+offX, fy, chromaCell*2, 2, 0.5, sc.seed^0xBEEF)
			n2 := fractalNoise(float64(x)*2+offX, fy, chromaCell*2, 2, 0.5, sc.seed^0xF00D)
			cbRow[x] = clampU8(sc.cbBase + (n1-0.5)*80*p.ChromaVariety)
			crRow[x] = clampU8(sc.crBase + (n2-0.5)*80*p.ChromaVariety)
		}
	}

	// Sprites, advanced to time t with bouncing at the borders.
	for _, sp := range sc.sprites {
		x := sp.x + sp.vx*float64(t)
		y := sp.y + sp.vy*float64(t)
		x = bounce(x, float64(w-sp.w))
		y = bounce(y, float64(h-sp.h))
		drawRect(f, int(x), int(y), sp.w, sp.h, clampU8(sp.luma), sp.cb, sp.cr)
	}

	// Text-like regions: rows of alternating fg/bg stripes with a
	// per-region phase so regions differ.
	for _, tr := range sc.text {
		for yy := 0; yy < tr.h; yy++ {
			y := tr.y + yy
			if y < 0 || y >= h {
				continue
			}
			row := f.Y[y*w : (y+1)*w]
			for xx := 0; xx < tr.w; xx++ {
				x := tr.x + xx
				if x < 0 || x >= w {
					continue
				}
				// Character-cell pattern: 2-px stripes plus column gaps.
				if ((yy+tr.phase)/2)%2 == 0 && (xx/3)%4 != 3 {
					row[x] = tr.fg
				} else {
					row[x] = tr.bg
				}
			}
		}
	}

	// Temporal sensor noise, fresh each frame.
	if p.Noise > 0 {
		amp := 10 * p.Noise
		for i := range f.Y {
			d := (noiseRand.Float64()*2 - 1) * amp
			f.Y[i] = clampU8(float64(f.Y[i]) + d)
		}
		// Chroma noise at half amplitude.
		for i := range f.Cb {
			f.Cb[i] = clampU8(float64(f.Cb[i]) + (noiseRand.Float64()*2-1)*amp/2)
			f.Cr[i] = clampU8(float64(f.Cr[i]) + (noiseRand.Float64()*2-1)*amp/2)
		}
	}
}

// bounce reflects pos into [0, limit] as if bouncing elastically.
func bounce(pos, limit float64) float64 {
	if limit <= 0 {
		return 0
	}
	period := 2 * limit
	pos = math.Mod(pos, period)
	if pos < 0 {
		pos += period
	}
	if pos > limit {
		pos = period - pos
	}
	return pos
}

func drawRect(f *Frame, x0, y0, w, h int, luma uint8, cb, cr uint8) {
	for y := y0; y < y0+h; y++ {
		if y < 0 || y >= f.Height {
			continue
		}
		row := f.Y[y*f.Width : (y+1)*f.Width]
		for x := x0; x < x0+w; x++ {
			if x < 0 || x >= f.Width {
				continue
			}
			row[x] = luma
		}
	}
	cw := f.ChromaWidth()
	for y := y0 / 2; y < (y0+h)/2; y++ {
		if y < 0 || y >= f.ChromaHeight() {
			continue
		}
		for x := x0 / 2; x < (x0+w)/2; x++ {
			if x < 0 || x >= cw {
				continue
			}
			f.Cb[y*cw+x] = cb
			f.Cr[y*cw+x] = cr
		}
	}
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate synthesizes a sequence of frameCount frames at the given
// dimensions and framerate. Generation is fully deterministic in the
// parameters. Dimensions must be even; prefer multiples of 16 so the
// encoders do not need to pad.
func Generate(p ContentParams, width, height, frameCount int, frameRate float64) (*Sequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if frameCount <= 0 {
		return nil, fmt.Errorf("video: non-positive frame count %d", frameCount)
	}
	if frameRate <= 0 {
		return nil, fmt.Errorf("video: non-positive framerate %v", frameRate)
	}
	s := &Sequence{FrameRate: frameRate, Frames: make([]*Frame, frameCount)}
	noiseRand := rng.New(p.Seed ^ 0x5EED50F7)
	cut := 0
	sc := newScene(p, width, height, cut, frameRate)
	tInScene := 0
	for i := 0; i < frameCount; i++ {
		if p.SceneCutInterval > 0 && i > 0 && i%p.SceneCutInterval == 0 {
			cut++
			sc = newScene(p, width, height, cut, frameRate)
			tInScene = 0
		}
		f := NewFrame(width, height)
		sc.render(f, tInScene, noiseRand)
		s.Frames[i] = f
		tInScene++
	}
	return s, nil
}
