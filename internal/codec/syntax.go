package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vbench/internal/codec/motion"
	"vbench/internal/codec/predict"
	"vbench/internal/video"
)

// Bitstream container layout ("VBC1"):
//
//	sequence header (fixed, big-endian):
//	  magic   [4]byte "VBC1"
//	  width   uint16  (display luma width)
//	  height  uint16  (display luma height)
//	  fps     uint32  (framerate × 1000)
//	  frames  uint16
//	  flags   uint8   (bit0 arith entropy, bit1 tx8 allowed,
//	                   bit2 deblock, bit3 adaptive quant, bit4 rich
//	                   contexts, bit5 sharp interpolation, bit6 4x4
//	                   intra allowed)
//	  refs    uint8   (reference frame count)
//	  slices  uint8   (independently coded horizontal bands per frame)
//	per frame:
//	  type    uint8   (0 = I, 1 = P)
//	  baseQP  uint8
//	  per slice (top to bottom):
//	    size    uint32  (payload bytes)
//	    payload []byte  (macroblock layer in the selected entropy coder)

const magic = "VBC1"

// MBSize is the macroblock dimension in luma pixels.
const MBSize = 16

// Frame types.
const (
	frameI = 0
	frameP = 1
)

// seqHeader carries the decoder-relevant sequence parameters.
type seqHeader struct {
	width, height int // display dimensions
	fpsMilli      uint32
	frames        int
	entropy       EntropyKind
	tx8Allowed    bool
	deblock       bool
	adaptiveQuant bool
	richContexts  bool
	sharpInterp   bool
	intra4Allowed bool
	refs          int
	slices        int
}

func (h *seqHeader) paddedWidth() int  { return ceilMB(h.width) }
func (h *seqHeader) paddedHeight() int { return ceilMB(h.height) }

func ceilMB(v int) int { return (v + MBSize - 1) / MBSize * MBSize }

func (h *seqHeader) marshal() []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.width))
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.height))
	buf = binary.BigEndian.AppendUint32(buf, h.fpsMilli)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.frames))
	var flags uint8
	if h.entropy == EntropyArith {
		flags |= 1
	}
	if h.tx8Allowed {
		flags |= 2
	}
	if h.deblock {
		flags |= 4
	}
	if h.adaptiveQuant {
		flags |= 8
	}
	if h.richContexts {
		flags |= 16
	}
	if h.sharpInterp {
		flags |= 32
	}
	if h.intra4Allowed {
		flags |= 64
	}
	buf = append(buf, flags, uint8(h.refs), uint8(h.slices))
	return buf
}

func parseSeqHeader(data []byte) (*seqHeader, int, error) {
	const hdrLen = 4 + 2 + 2 + 4 + 2 + 1 + 1 + 1
	if len(data) < hdrLen {
		return nil, 0, errors.New("codec: truncated sequence header")
	}
	if string(data[:4]) != magic {
		return nil, 0, fmt.Errorf("codec: bad magic %q", data[:4])
	}
	h := &seqHeader{
		width:    int(binary.BigEndian.Uint16(data[4:6])),
		height:   int(binary.BigEndian.Uint16(data[6:8])),
		fpsMilli: binary.BigEndian.Uint32(data[8:12]),
		frames:   int(binary.BigEndian.Uint16(data[12:14])),
	}
	flags := data[14]
	if flags&1 != 0 {
		h.entropy = EntropyArith
	}
	h.tx8Allowed = flags&2 != 0
	h.deblock = flags&4 != 0
	h.adaptiveQuant = flags&8 != 0
	h.richContexts = flags&16 != 0
	h.sharpInterp = flags&32 != 0
	h.intra4Allowed = flags&64 != 0
	h.refs = int(data[15])
	h.slices = int(data[16])
	if h.width <= 0 || h.height <= 0 {
		return nil, 0, errors.New("codec: invalid dimensions in header")
	}
	if h.width > maxDimension || h.height > maxDimension {
		return nil, 0, fmt.Errorf("codec: dimensions %dx%d exceed the %d limit", h.width, h.height, maxDimension)
	}
	if h.width%2 != 0 || h.height%2 != 0 {
		return nil, 0, fmt.Errorf("codec: odd dimensions %dx%d", h.width, h.height)
	}
	if h.refs < 1 || h.refs > 8 {
		return nil, 0, fmt.Errorf("codec: invalid reference count %d", h.refs)
	}
	if h.slices < 1 || h.slices > 64 {
		return nil, 0, fmt.Errorf("codec: invalid slice count %d", h.slices)
	}
	if h.slices > h.paddedHeight()/MBSize {
		return nil, 0, fmt.Errorf("codec: %d slices for %d macroblock rows", h.slices, h.paddedHeight()/MBSize)
	}
	return h, hdrLen, nil
}

// maxDimension bounds decoded frame sizes so a corrupt header cannot
// trigger pathological allocations (8K video is the practical
// ceiling).
const maxDimension = 8192

// MB coding modes.
const (
	mbSkip = iota
	mbInter
	mbIntra
)

// mbInfo is the per-macroblock state needed for spatial prediction of
// later macroblocks (motion-vector prediction), maintained identically
// by encoder and decoder.
type mbInfo struct {
	mode int
	mv   motion.MV
	ref  int
	qp   int
}

// mbGrid holds per-MB info for the frame being coded.
type mbGrid struct {
	w, h int // in macroblocks
	info []mbInfo
}

func newMBGrid(wMB, hMB int) *mbGrid {
	return &mbGrid{w: wMB, h: hMB, info: make([]mbInfo, wMB*hMB)}
}

func (g *mbGrid) at(x, y int) *mbInfo { return &g.info[y*g.w+x] }

// neighborMV returns the motion vector contribution of the MB at
// (x, y): zero if out of frame or not inter-coded.
func (g *mbGrid) neighborMV(x, y int) motion.MV {
	if x < 0 || y < 0 || x >= g.w || y >= g.h {
		return motion.MV{}
	}
	in := g.at(x, y)
	if in.mode == mbIntra {
		return motion.MV{}
	}
	return in.mv
}

// predMV computes the median motion-vector predictor for MB (x, y)
// from the left, top, and top-right neighbours (top-left substitutes
// when top-right is unavailable, as in H.264).
func (g *mbGrid) predMV(x, y int) motion.MV {
	left := g.neighborMV(x-1, y)
	top := g.neighborMV(x, y-1)
	var diag motion.MV
	if x+1 < g.w && y > 0 {
		diag = g.neighborMV(x+1, y-1)
	} else {
		diag = g.neighborMV(x-1, y-1)
	}
	return motion.MedianMV(left, top, diag)
}

// mbCand is a fully evaluated macroblock coding candidate: the syntax
// elements to serialize plus the reconstruction they imply.
// lumaModeIntra4 is the coded luma-mode value announcing per-4×4
// intra prediction (the values below it are the 16×16 predict.Modes).
const lumaModeIntra4 = uint32(predict.NumModes)

type mbCand struct {
	mode       int
	mv         motion.MV
	ref        int
	lumaMode   predict.Mode
	chromaMode predict.Mode
	intra4     bool
	luma4Modes [16]predict.Mode
	tx8        bool
	qp         int
	qpDelta    int

	// Quantized levels in zigzag order, referencing slices of the
	// owning encoder/decoder's levelArena. Luma has 4 blocks of 64
	// when tx8 (entries 4..15 unused), else 16 blocks of 16; chroma
	// always 4 blocks of 16 per plane. nil slices mean uncoded
	// (all-zero) blocks. Fixed-size arrays so recycling a candidate
	// allocates nothing.
	lumaLevels   [16][]int32
	chromaLevels [2][4][]int32

	// Reconstructed samples.
	lumaRecon   [MBSize * MBSize]uint8
	chromaRecon [2][64]uint8
}

// lumaQuadCoded reports whether any block in luma quadrant q (0..3)
// has coefficients.
func (c *mbCand) lumaQuadCoded(q int) bool {
	if c.tx8 {
		return c.lumaLevels[q] != nil
	}
	for _, b := range quadBlocks4[q] {
		if c.lumaLevels[b] != nil {
			return true
		}
	}
	return false
}

// chromaPlaneCoded reports whether chroma plane p has coefficients.
func (c *mbCand) chromaPlaneCoded(p int) bool {
	for _, blk := range c.chromaLevels[p] {
		if blk != nil {
			return true
		}
	}
	return false
}

// quadBlocks4 lists the 4×4 block indices (raster order within the MB,
// 4 blocks per row) belonging to each 8×8 quadrant.
var quadBlocks4 = [4][4]int{
	{0, 1, 4, 5},
	{2, 3, 6, 7},
	{8, 9, 12, 13},
	{10, 11, 14, 15},
}

// block4Offset returns the pixel offset of 4×4 luma block b within the
// macroblock.
func block4Offset(b int) (x, y int) { return (b % 4) * 4, (b / 4) * 4 }

// block8Offset returns the pixel offset of 8×8 luma block q within the
// macroblock.
func block8Offset(q int) (x, y int) { return (q % 2) * 8, (q / 2) * 8 }

// padFrame returns a copy of f extended to macroblock-aligned
// dimensions by edge replication. If the frame is already aligned the
// original is returned unchanged.
func padFrame(f *video.Frame) *video.Frame {
	pw, ph := ceilMB(f.Width), ceilMB(f.Height)
	if pw == f.Width && ph == f.Height {
		return f
	}
	g := video.NewFrame(pw, ph)
	copyPad(g.Y, pw, ph, f.Y, f.Width, f.Height)
	copyPad(g.Cb, pw/2, ph/2, f.Cb, f.Width/2, f.Height/2)
	copyPad(g.Cr, pw/2, ph/2, f.Cr, f.Width/2, f.Height/2)
	return g
}

func copyPad(dst []uint8, dw, dh int, src []uint8, sw, sh int) {
	for y := 0; y < dh; y++ {
		sy := y
		if sy >= sh {
			sy = sh - 1
		}
		for x := 0; x < dw; x++ {
			sx := x
			if sx >= sw {
				sx = sw - 1
			}
			dst[y*dw+x] = src[sy*sw+sx]
		}
	}
}

// cropFrame returns a copy of f reduced to width×height (top-left
// corner). If no cropping is needed the original is returned.
func cropFrame(f *video.Frame, width, height int) *video.Frame {
	if f.Width == width && f.Height == height {
		return f
	}
	g := video.NewFrame(width, height)
	for y := 0; y < height; y++ {
		copy(g.Y[y*width:(y+1)*width], f.Y[y*f.Width:y*f.Width+width])
	}
	cw, ch := width/2, height/2
	for y := 0; y < ch; y++ {
		copy(g.Cb[y*cw:(y+1)*cw], f.Cb[y*f.ChromaWidth():y*f.ChromaWidth()+cw])
		copy(g.Cr[y*cw:(y+1)*cw], f.Cr[y*f.ChromaWidth():y*f.ChromaWidth()+cw])
	}
	return g
}
