package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestPoolForEachRunsEveryCell(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		const n = 100
		var ran [n]atomic.Int32
		if err := p.ForEach(n, func(i int) error {
			ran[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, got)
			}
		}
		jobs := 0
		for _, s := range p.Stats() {
			jobs += s.Jobs
		}
		if jobs != n {
			t.Errorf("workers=%d: stats count %d jobs, want %d", workers, jobs, n)
		}
	}
}

func TestPoolLowestIndexErrorWins(t *testing.T) {
	// Error reporting must not depend on scheduling: the error of the
	// lowest-index failing cell is returned, exactly as a serial loop
	// would fail first.
	early := errors.New("early")
	late := errors.New("late")
	for trial := 0; trial < 10; trial++ {
		p := NewPool(8)
		err := p.ForEach(64, func(i int) error {
			switch i {
			case 7:
				return early
			case 50:
				return late
			}
			return nil
		})
		if !errors.Is(err, early) {
			t.Fatalf("trial %d: got %v, want the lowest-index error", trial, err)
		}
	}
}

func TestPoolDefaultsAndEmpty(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Errorf("default pool has %d workers", p.Workers())
	}
	if err := p.ForEach(0, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Errorf("empty grid returned %v", err)
	}
}
