package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerStats is one pool worker's accounting across every grid the
// pool has executed: how many cells it ran and how long it was busy.
// The counters make parallel speedup measurable (see bench_test.go's
// harness-grid benchmark) without relying on wall clocks inside the
// deterministic scoring path.
type WorkerStats struct {
	// Worker is the worker's index in [0, Workers).
	Worker int
	// Jobs is the number of grid cells the worker completed.
	Jobs int
	// Busy is the cumulative time the worker spent inside cells.
	Busy time.Duration
}

// Pool fans independent benchmark cells out across a bounded set of
// workers. Results are always aggregated by cell index, so a parallel
// run's output is byte-identical to a serial run's: the pool controls
// only *when* a cell executes, never the order results are assembled
// or which error is reported (the lowest-index failure wins, exactly
// as a serial loop would fail first).
type Pool struct {
	workers int

	mu    sync.Mutex
	stats []WorkerStats
}

// NewPool returns a pool with the given number of workers;
// non-positive means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, stats: make([]WorkerStats, workers)}
	for w := range p.stats {
		p.stats[w].Worker = w
	}
	return p
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Stats returns a copy of the per-worker counters accumulated so far.
func (p *Pool) Stats() []WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStats, len(p.stats))
	copy(out, p.stats)
	return out
}

// ForEach runs fn(i) for every i in [0, n), spreading the calls
// across the pool's workers. Every cell runs regardless of other
// cells' failures; afterwards the error of the lowest-index failing
// cell is returned, so error reporting is independent of scheduling.
// With one worker the cells run serially, in order, on the calling
// goroutine.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)

	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			start := time.Now()
			errs[i] = fn(i)
			p.record(0, time.Since(start))
		}
		return firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				start := time.Now()
				errs[i] = fn(i)
				p.record(w, time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

func (p *Pool) record(worker int, d time.Duration) {
	p.mu.Lock()
	p.stats[worker].Jobs++
	p.stats[worker].Busy += d
	p.mu.Unlock()
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
