package statemachine_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/statemachine"
)

func TestStatemachine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), statemachine.Analyzer)
}
