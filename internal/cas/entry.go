package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"vbench/internal/codec"
	"vbench/internal/perf"
)

// Outcome is everything a transcode produces that downstream
// consumers need: the bitstream plus the measurements that would
// otherwise require re-running the encoder or decoder. The encoder's
// reconstruction is deliberately not stored — quality is kept as the
// measured PSNR, so a cache hit never has to materialize pixels.
type Outcome struct {
	Bitstream    []byte        `json:"-"`
	PerFrameBits []int64       `json:"per_frame_bits"`
	FrameTypes   []int         `json:"frame_types"`
	Counters     perf.Counters `json:"counters"`
	// Seconds is the modeled encode time under the engine's cost model.
	Seconds float64 `json:"seconds"`
	// PSNR is the sequence reconstruction quality in dB.
	PSNR float64 `json:"psnr"`
	// InputBytes is the raw 4:2:0 input size (fleet workers derive
	// throughput histograms from it).
	InputBytes int64 `json:"input_bytes"`
}

// Result reconstructs the codec-level result a cache hit stands in
// for. Recon is nil: callers that need quality use Outcome.PSNR, and
// callers that need pixels decode the bitstream.
func (o *Outcome) Result() *codec.Result {
	return &codec.Result{
		Bitstream:    o.Bitstream,
		PerFrameBits: o.PerFrameBits,
		FrameTypes:   o.FrameTypes,
		Counters:     o.Counters,
		Seconds:      o.Seconds,
	}
}

// SizeBytes approximates the retained size of the outcome; the
// in-memory tier's byte accounting uses it.
func (o *Outcome) SizeBytes() int64 {
	return int64(len(o.Bitstream)) + int64(len(o.PerFrameBits))*8 +
		int64(len(o.FrameTypes))*8 + 512 // counters + struct overhead
}

// On-disk entry layout (see docs/FORMAT.md):
//
//	magic "vbcas1\n"
//	uint32 BE  meta length
//	meta JSON  (the Outcome minus the bitstream)
//	uint32 BE  bitstream length
//	bitstream bytes
//	32-byte SHA-256 over everything above
//
// The trailing digest is re-verified on every read; a mismatch (torn
// write that survived rename, bit rot, truncation) deletes the entry
// and reads as a miss, never as wrong data.

var entryMagic = []byte("vbcas1\n")

// encodeEntry serializes an outcome to the on-disk entry format.
func encodeEntry(o *Outcome) ([]byte, error) {
	meta, err := json.Marshal(o)
	if err != nil {
		return nil, fmt.Errorf("cas: encoding entry meta: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(entryMagic) + 8 + len(meta) + len(o.Bitstream) + sha256.Size)
	buf.Write(entryMagic)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(meta)))
	buf.Write(n[:])
	buf.Write(meta)
	binary.BigEndian.PutUint32(n[:], uint32(len(o.Bitstream)))
	buf.Write(n[:])
	buf.Write(o.Bitstream)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// decodeEntry parses and integrity-checks an on-disk entry.
func decodeEntry(b []byte) (*Outcome, error) {
	if len(b) < len(entryMagic)+8+sha256.Size || !bytes.HasPrefix(b, entryMagic) {
		return nil, fmt.Errorf("cas: entry too short or bad magic")
	}
	payload, tail := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("cas: entry integrity digest mismatch")
	}
	p := payload[len(entryMagic):]
	metaLen := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < metaLen+4 {
		return nil, fmt.Errorf("cas: entry meta length %d overruns entry", metaLen)
	}
	var o Outcome
	if err := json.Unmarshal(p[:metaLen], &o); err != nil {
		return nil, fmt.Errorf("cas: decoding entry meta: %w", err)
	}
	p = p[metaLen:]
	bsLen := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) != bsLen {
		return nil, fmt.Errorf("cas: entry bitstream length %d != %d", bsLen, len(p))
	}
	o.Bitstream = append([]byte(nil), p...)
	return &o, nil
}
