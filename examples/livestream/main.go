// Livestream: pick a transcoding configuration for a live event.
//
// The Live scenario's hard constraint is real time: the transcoder
// must sustain the stream's output pixel rate. This example walks the
// software preset ladder until it meets real time (reproducing the
// paper's observation that software must shed effort — and therefore
// quality/bitrate — as resolution grows) and compares the result with
// the fixed-function hardware encoders, which the paper finds are "an
// unqualified win" for live streaming.
package main

import (
	"fmt"
	"log"

	"vbench"
)

func main() {
	clip, err := vbench.ClipByName("chicken") // a 4K live stream
	if err != nil {
		log.Fatal(err)
	}
	seq, err := clip.Generate(8, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	// The stream must be transcoded at least this fast (native
	// resolution; vbench speeds are per-pixel normalized).
	realTime := float64(clip.Width*clip.Height) * clip.FrameRate / 1e6
	targetBPS := 0.5 * float64(seq.Width()*seq.Height()) // service ladder point

	fmt.Printf("live stream: %s (%dx%d @%.0f fps) — need ≥ %.1f Mpixel/s\n\n",
		clip.Name, clip.Width, clip.Height, clip.FrameRate, realTime)

	type option struct {
		name string
		enc  *vbench.Encoder
	}
	options := []option{
		{"x264 slow", vbench.X264(vbench.PresetSlow)},
		{"x264 medium", vbench.X264(vbench.PresetMedium)},
		{"x264 veryfast", vbench.X264(vbench.PresetVeryFast)},
		{"x264 ultrafast", vbench.X264(vbench.PresetUltraFast)},
		{"NVENC", vbench.NVENC()},
		{"QSV", vbench.QSV()},
	}

	var chosen *option
	for i := range options {
		o := &options[i]
		res, err := o.enc.Encode(seq, vbench.Config{RC: vbench.RCBitrate, BitrateBPS: targetBPS})
		if err != nil {
			log.Fatal(err)
		}
		speed := float64(seq.PixelCount()) / res.Seconds / 1e6
		psnr, err := vbench.PSNR(seq, res.Recon)
		if err != nil {
			log.Fatal(err)
		}
		ok := speed >= realTime
		mark := " "
		if ok {
			mark = "*"
		}
		fmt.Printf("%s %-15s %8.1f Mpixel/s  %.2f dB  %6d bytes  real-time=%v\n",
			mark, o.name, speed, psnr, len(res.Bitstream), ok)
		if ok && chosen == nil {
			chosen = o
		}
	}
	if chosen == nil {
		log.Fatal("no configuration meets real time")
	}
	fmt.Printf("\nselected: %s — the first option down the effort ladder that holds real time.\n", chosen.name)
	fmt.Println("Note how hardware encoders clear the bar with an order of magnitude to spare,")
	fmt.Println("while software sheds quality to keep up — the paper's Live finding.")
}
