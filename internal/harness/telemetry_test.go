package harness

import (
	"strings"
	"testing"

	"vbench/internal/telemetry"
)

// withTelemetry runs fn with a live process-wide tracer and the stage
// clocks enabled, restoring the disabled state afterwards so other
// tests see the deterministic configuration.
func withTelemetry(t *testing.T, fn func(tr *telemetry.Tracer)) {
	t.Helper()
	prev := telemetry.ActiveTracer()
	prevStages := telemetry.StagesEnabled()
	tr := telemetry.NewTracer()
	telemetry.SetTracer(tr)
	telemetry.EnableStages(true)
	defer func() {
		telemetry.SetTracer(prev)
		telemetry.EnableStages(prevStages)
	}()
	fn(tr)
}

// TestGridOutputIdenticalWithTelemetry is the observability guard: a
// grid run with the tracer installed and the stage clocks on must
// render byte-identically to the plain run, because telemetry may
// observe the scoring path but never steer it.
func TestGridOutputIdenticalWithTelemetry(t *testing.T) {
	rates := []float64{0.5, 4}
	plain, _, err := tiny().Figure2("bike", rates)
	if err != nil {
		t.Fatal(err)
	}
	var traced string
	withTelemetry(t, func(tr *telemetry.Tracer) {
		tt, _, err := tiny().Figure2("bike", rates)
		if err != nil {
			t.Fatal(err)
		}
		traced = tt.String()
		if tr.Len() == 0 {
			t.Error("tracer recorded no spans during a traced grid run")
		}
	})
	if plain.String() != traced {
		t.Errorf("traced run output differs from plain run:\nplain:\n%s\ntraced:\n%s", plain, traced)
	}
}

// TestPoolWorkerSpans checks that a traced parallel grid records one
// span per pool worker with nested per-cell children.
func TestPoolWorkerSpans(t *testing.T) {
	withTelemetry(t, func(tr *telemetry.Tracer) {
		r := tiny()
		r.Workers = 2
		if _, _, err := r.Figure2("bike", []float64{0.5, 4}); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tr.WriteChromeTrace(&sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		for _, want := range []string{`"pool worker 0"`, `"cell 0"`, `encode swx264-`} {
			if !strings.Contains(out, want) {
				t.Errorf("trace missing %s span", want)
			}
		}
	})
}

// TestRegisterMetricsExposesMemoGauges checks that the runner's memo
// hit/miss counters land in a registry snapshot under stable names.
func TestRegisterMetricsExposesMemoGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := tiny()
	r.RegisterMetrics(reg)
	c := clip(t, "bike")
	for i := 0; i < 3; i++ {
		if _, err := r.Sequence(c); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	snap := sb.String()
	for _, want := range []string{
		`"harness.memo.seqs.hits": 2`,
		`"harness.memo.seqs.misses": 1`,
		`"harness.memo.targets.misses": 0`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %s:\n%s", want, snap)
		}
	}
}
