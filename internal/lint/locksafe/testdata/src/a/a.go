// Package a exercises locksafe: lock-order cycles across functions,
// self-deadlocks, and blocking operations inside critical sections,
// plus the negative shapes (select with default, must-join branches,
// Cond.Wait) that must stay silent.
package a

import (
	"net/http"
	"os"
	"sync"
	"time"

	"lint.test/syncx"
)

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
)

// ab and ba together put an ABBA cycle on the package order graph;
// both acquisition sites are flagged.
func ab() { // want locksafe:"acquires a.muB while holding a.muA"
	muA.Lock()
	muB.Lock() // want "acquiring a.muB while holding a.muA completes a lock-order cycle"
	muB.Unlock()
	muA.Unlock()
}

func ba() { // want locksafe:"acquires a.muA while holding a.muB"
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want "acquiring a.muA while holding a.muB completes a lock-order cycle"
	muA.Unlock()
}

// cd nests muD under muC and nothing orders them the other way: the
// edge is exported as a fact but no cycle diagnostic fires.
func cd() { // want locksafe:"acquires a.muD while holding a.muC"
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func again() {
	muC.Lock()
	muC.Lock() // want `mutex a.muC is locked again while already held`
	muC.Unlock()
	muC.Unlock()
}

type Queue struct {
	mu    sync.Mutex
	out   chan int
	items []int
}

func (q *Queue) send() {
	q.mu.Lock()
	q.out <- 1 // want "channel send while holding Queue.mu"
	q.mu.Unlock()
}

func (q *Queue) recvHeld() {
	q.mu.Lock()
	defer q.mu.Unlock()
	<-q.out // want "channel receive while holding Queue.mu"
}

func (q *Queue) selectHeld(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "blocking select while holding Queue.mu"
	case v := <-q.out:
		q.items = append(q.items, v)
	case <-done:
	}
}

// selectDefault never blocks: the default clause makes the poll
// non-blocking, so holding the mutex across it is fine.
func (q *Queue) selectDefault() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.out:
		q.items = append(q.items, v)
	default:
	}
}

func (q *Queue) drainHeld() {
	q.mu.Lock()
	for v := range q.out { // want "range over channel while holding Queue.mu"
		q.items = append(q.items, v)
	}
	q.mu.Unlock()
}

func (q *Queue) sleepHeld() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep may block while holding Queue.mu"
	q.mu.Unlock()
}

func (q *Queue) fetchHeld() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, err := http.Get("http://example.com/manifest") // want "call to http.Get may block while holding Queue.mu"
	return err
}

func (q *Queue) gateHeld(g *syncx.CPUGate) {
	q.mu.Lock()
	g.Acquire() // want "call to syncx.Acquire may block while holding Queue.mu"
	q.mu.Unlock()
	g.Release()
}

func (q *Queue) waitHeld(wg *sync.WaitGroup) {
	q.mu.Lock()
	wg.Wait() // want "call to sync.WaitGroup.Wait may block while holding Queue.mu"
	q.mu.Unlock()
}

// unlockFirst releases before the handoff: clean.
func (q *Queue) unlockFirst(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.out <- v
}

// maybeHeld only locks on one path: the must-join drops the mutex at
// the merge, so the send is not reported.
func (q *Queue) maybeHeld(fast bool) {
	if fast {
		q.mu.Lock()
	}
	q.out <- 1
	if fast {
		q.mu.Unlock()
	}
}

// goroutineBody gets its own CFG with an empty entry set; the lock it
// takes itself is tracked.
func launch(q *Queue) {
	go func() {
		q.mu.Lock()
		q.out <- 1 // want "channel send while holding Queue.mu"
		q.mu.Unlock()
	}()
}

// deferredSend builds a closure under the lock but only calls it
// after the unlock: the literal's body is judged with an empty entry
// set, so nothing fires.
func deferredSend(q *Queue) {
	q.mu.Lock()
	f := func() { q.out <- 1 }
	q.mu.Unlock()
	f()
}

func suppressed(q *Queue) {
	q.mu.Lock()
	//lint:ignore locksafe the queue is unexported and single-consumer here
	q.out <- 1
	q.mu.Unlock()
}

// condWait holds the lock across Cond.Wait by design; only
// WaitGroup.Wait is a blocking finding.
func condWait(c *sync.Cond) {
	c.L.Lock()
	c.Wait()
	c.L.Unlock()
}

type Stats struct {
	mu sync.RWMutex
	m  map[string]int
}

// read uses the read-side of an RWMutex correctly: clean.
func (s *Stats) read(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

// Gauge embeds its mutex; the key falls back to the owning type.
type Gauge struct {
	sync.Mutex
	v int
}

func (g *Gauge) bump(ch chan int) {
	g.Lock()
	ch <- g.v // want "channel send while holding Gauge"
	g.Unlock()
}

// rowCoord mimics the wavefront row coordinator: a mutex guarding
// per-row progress that row workers consult constantly.
type rowCoord struct {
	mu       sync.Mutex
	progress []int
}

// waveJoinHeld is the wavefront anti-pattern: a row goroutine joins
// the CPU gate while holding the row-progress mutex, stalling every
// other row worker behind a token it may never win.
func waveJoinHeld(rc *rowCoord, g *syncx.CPUGate, quit chan struct{}) {
	rc.mu.Lock()
	if g.AcquireOrQuit(quit) { // want "call to syncx.AcquireOrQuit may block while holding rowCoord.mu"
		defer g.Release()
	}
	rc.progress[0]++
	rc.mu.Unlock()
}

// waveJoinFirst is the correct shape: win the gate slot first, touch
// the coordinator only inside short unlocked-at-the-end sections.
func waveJoinFirst(rc *rowCoord, g *syncx.CPUGate, quit chan struct{}) {
	if !g.AcquireOrQuit(quit) {
		return
	}
	defer g.Release()
	rc.mu.Lock()
	rc.progress[0]++
	rc.mu.Unlock()
}

// cacheStore mimics the cas.Store shard pattern: a mutex guarding an
// in-memory index over a fanout directory of entry files. The
// discipline under test: the index lock orders map mutations, never
// disk I/O.
type cacheStore struct {
	mu    sync.Mutex
	index map[string]int64
}

// putGood is the store's write path: stage the bytes and rename them
// into place first, and take the index lock only to publish the entry.
func (s *cacheStore) putGood(key, tmp, dst string, body []byte) error {
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	s.mu.Lock()
	s.index[key] = int64(len(body))
	s.mu.Unlock()
	return nil
}

// putBad serializes every contender of the index behind one disk
// write — the anti-pattern the store must never regress into.
func (s *cacheStore) putBad(key, dst string, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.WriteFile(dst, body, 0o644); err != nil { // want "call to os.WriteFile may block while holding cacheStore.mu"
		return err
	}
	s.index[key] = int64(len(body))
	return nil
}

// readBad holds the index lock across the entry load and the
// corruption cleanup; both are disk I/O and both are flagged.
func (s *cacheStore) readBad(key, path string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(path) // want "call to os.ReadFile may block while holding cacheStore.mu"
	if err != nil {
		delete(s.index, key)
		os.Remove(path) // want "call to os.Remove may block while holding cacheStore.mu"
		return nil
	}
	return data
}

// rebuildGood scans the fanout directories unlocked and swaps the
// fresh index in under one short lock.
func (s *cacheStore) rebuildGood(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fresh := make(map[string]int64, len(entries))
	for _, e := range entries {
		fresh[e.Name()] = 0
	}
	s.mu.Lock()
	s.index = fresh
	s.mu.Unlock()
	return nil
}

// fileMethodsAreCheap: File.Close shares no name with the package
// funcs, and accessor methods like File.Name are not package-level
// I/O, so neither fires even under the lock.
func (s *cacheStore) fileMethodsAreCheap(f *os.File) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Name()
}
