// Package lockflow detects check-then-act races on locked maps: a
// function that reads a map under a mutex, releases the lock, and
// later reacquires it to fill the same map without re-checking has a
// window in which two goroutines both miss and both compute the
// value. The fix is either the double-checked idiom (re-read after
// reacquiring) or, for caches, syncx.Memo which additionally
// deduplicates the in-flight computation.
//
// The analysis is linear and per-function: it records Lock/Unlock
// calls on sync mutexes (a deferred Unlock extends its critical
// section to the end of the function) and map reads/writes keyed by
// the map expression text, then flags a write in a later critical
// section of the same mutex when an earlier section only read the map
// and the later one did not re-read before writing.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"vbench/internal/lint/analysis"
)

// Analyzer is the lockflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockflow",
	Doc:  "detects check-then-act map access split across separate critical sections of one mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// lockEvent is a Lock or Unlock call on a mutex expression.
type lockEvent struct {
	pos    token.Pos
	key    string // types.ExprString of the receiver
	unlock bool
}

// mapEvent is a read or write of a map index expression.
type mapEvent struct {
	pos   token.Pos
	key   string // types.ExprString of the map operand
	write bool
}

// region is one critical section of a mutex.
type region struct {
	key        token.Pos // position of the Lock call, used as an ID
	start, end token.Pos
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Nested literals are separate functions (observer closures,
	// deferred cleanups) and are checked regardless of whether the
	// enclosing body touches any lock itself.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		return true
	})

	locks, maps := collectEvents(pass, body)
	if len(locks) == 0 || len(maps) == 0 {
		return
	}
	regions := buildRegions(locks, body.End())
	checkRegions(pass, regions, maps)
}

// collectEvents gathers lock and map events directly inside body,
// not descending into nested function literals.
func collectEvents(pass *analysis.Pass, body *ast.BlockStmt) (map[string][]lockEvent, []mapEvent) {
	locks := map[string][]lockEvent{}
	var maps []mapEvent
	writes := map[*ast.IndexExpr]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					writes[ix] = true
				}
			}
		case *ast.DeferStmt:
			if key, unlock, ok := mutexCall(pass.TypesInfo, n.Call); ok && unlock {
				// A deferred unlock closes the section at function end.
				locks[key] = append(locks[key], lockEvent{pos: body.End(), key: key, unlock: true})
			}
			return false // a deferred call runs later; skip its args
		case *ast.CallExpr:
			if key, unlock, ok := mutexCall(pass.TypesInfo, n); ok {
				locks[key] = append(locks[key], lockEvent{pos: n.Pos(), key: key, unlock: unlock})
			}
		case *ast.IndexExpr:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			maps = append(maps, mapEvent{pos: n.Pos(), key: types.ExprString(n.X), write: writes[n]})
		}
		return true
	})
	for _, evs := range locks {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}
	sort.Slice(maps, func(i, j int) bool { return maps[i].pos < maps[j].pos })
	return locks, maps
}

// mutexCall classifies a call as Lock/RLock (unlock=false) or
// Unlock/RUnlock (unlock=true) on a sync mutex, returning the
// receiver expression text as the mutex key.
func mutexCall(info *types.Info, call *ast.CallExpr) (key string, unlock, ok bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || !analysis.FromPath(fn, "sync") {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		unlock = false
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X), unlock, true
}

// buildRegions pairs Lock events with the next Unlock of the same
// mutex (position-ordered), per mutex key.
func buildRegions(locks map[string][]lockEvent, bodyEnd token.Pos) map[string][]region {
	out := map[string][]region{}
	for key, evs := range locks {
		var open *region
		for _, ev := range evs {
			if ev.unlock {
				if open != nil {
					open.end = ev.pos
					out[key] = append(out[key], *open)
					open = nil
				}
				continue
			}
			if open != nil {
				// Re-lock without an observed unlock (branchy code):
				// close the previous section conservatively.
				open.end = ev.pos
				out[key] = append(out[key], *open)
			}
			open = &region{key: ev.pos, start: ev.pos, end: bodyEnd}
		}
		if open != nil {
			out[key] = append(out[key], *open)
		}
	}
	return out
}

// checkRegions flags map writes that complete a check-then-act pair.
func checkRegions(pass *analysis.Pass, regions map[string][]region, maps []mapEvent) {
	for _, secs := range regions {
		if len(secs) < 2 {
			continue
		}
		sort.Slice(secs, func(i, j int) bool { return secs[i].start < secs[j].start })
		// Classify map events per section and map key.
		type access struct{ read, write, readBeforeWrite bool }
		perSec := make([]map[string]*access, len(secs))
		for i := range secs {
			perSec[i] = map[string]*access{}
		}
		for _, ev := range maps {
			for i, sec := range secs {
				if ev.pos < sec.start || ev.pos >= sec.end {
					continue
				}
				a := perSec[i][ev.key]
				if a == nil {
					a = &access{}
					perSec[i][ev.key] = a
				}
				if ev.write {
					a.write = true
				} else {
					a.read = true
					if !a.write {
						a.readBeforeWrite = true
					}
				}
			}
		}
		for i := 1; i < len(secs); i++ {
			for mapKey, b := range perSec[i] {
				if !b.write || b.readBeforeWrite {
					continue // no fill, or double-checked: re-read after reacquiring
				}
				for j := 0; j < i; j++ {
					a := perSec[j][mapKey]
					if a != nil && a.read && !a.write {
						pos := writePos(maps, mapKey, secs[i])
						pass.Reportf(pos, "map %s is checked in one critical section and filled in a later one without re-checking (check-then-act race); re-check after locking or use syncx.Memo", mapKey)
						break
					}
				}
			}
		}
	}
}

// writePos returns the first write of mapKey inside sec, for the
// diagnostic position.
func writePos(maps []mapEvent, mapKey string, sec region) token.Pos {
	for _, ev := range maps {
		if ev.write && ev.key == mapKey && ev.pos >= sec.start && ev.pos < sec.end {
			return ev.pos
		}
	}
	return sec.start
}
