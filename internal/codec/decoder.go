package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vbench/internal/codec/motion"
	"vbench/internal/codec/predict"
	"vbench/internal/perf"
	"vbench/internal/video"
)

// Decode parses a complete VBC1 bitstream and reconstructs the video.
// The output is bit-identical to the encoder's Result.Recon — a
// property the test suite enforces — so decode really is the normative
// definition of the format.
func Decode(data []byte) (*video.Sequence, *perf.Counters, error) {
	c := &perf.Counters{}
	hdr, off, err := parseSeqHeader(data)
	if err != nil {
		return nil, nil, err
	}
	seq := &video.Sequence{FrameRate: float64(hdr.fpsMilli) / 1000}
	mbW := hdr.paddedWidth() / MBSize
	mbH := hdr.paddedHeight() / MBSize

	var refs []*video.Frame
	bounds := sliceBounds(mbH, hdr.slices)
	// Same pooling rule as the encoder: padded reconstructions are
	// decoder-private (cropFrame copies them) and recyclable; aligned
	// ones escape through the returned sequence.
	pooledRefs := hdr.paddedWidth() != hdr.width || hdr.paddedHeight() != hdr.height
	scratches := make([]decScratch, hdr.slices)
	qpGrid := make([]int, mbW*mbH)
	for fi := 0; fi < hdr.frames; fi++ {
		if off+2 > len(data) {
			return nil, nil, fmt.Errorf("codec: truncated frame header at frame %d", fi)
		}
		ftype := int(data[off])
		qpBase := int(data[off+1])
		off += 2
		if ftype != frameI && ftype != frameP {
			return nil, nil, fmt.Errorf("codec: invalid frame type %d at frame %d", ftype, fi)
		}
		if qpBase > 51 {
			return nil, nil, fmt.Errorf("codec: invalid base QP %d at frame %d", qpBase, fi)
		}
		if ftype == frameP && len(refs) == 0 {
			return nil, nil, fmt.Errorf("codec: P frame %d without reference", fi)
		}

		recon := video.GetFrame(hdr.paddedWidth(), hdr.paddedHeight())
		for s := 0; s < hdr.slices; s++ {
			if off+4 > len(data) {
				return nil, nil, fmt.Errorf("codec: truncated slice header at frame %d slice %d", fi, s)
			}
			size := int(binary.BigEndian.Uint32(data[off : off+4]))
			off += 4
			if off+size > len(data) {
				return nil, nil, fmt.Errorf("codec: truncated payload at frame %d slice %d", fi, s)
			}
			payload := data[off : off+size]
			off += size

			fd := &frameDecoder{
				hdr:      hdr,
				recon:    recon,
				refs:     refs,
				grid:     newMBGrid(mbW, bounds[s+1]-bounds[s]),
				qpGrid:   qpGrid,
				mbW:      mbW,
				rowStart: bounds[s],
				rowEnd:   bounds[s+1],
				ftype:    ftype,
				qpBase:   qpBase,
				c:        c,
				sc:       &scratches[s],
			}
			if hdr.entropy == EntropyArith {
				fd.r = newArithReader(payload)
			} else {
				fd.r = newGolombReader(payload)
			}
			if err := fd.decodeSlice(); err != nil {
				return nil, nil, fmt.Errorf("codec: frame %d slice %d: %w", fi, s, err)
			}
		}
		if hdr.deblock {
			deblockFrame(recon, qpGrid, mbW, mbH, c)
		}
		refs = append([]*video.Frame{recon}, refs...)
		if len(refs) > hdr.refs {
			if pooledRefs {
				for _, evicted := range refs[hdr.refs:] {
					video.PutFrame(evicted)
				}
			}
			refs = refs[:hdr.refs]
		}
		seq.Frames = append(seq.Frames, cropFrame(recon, hdr.width, hdr.height))
		c.Frames++
		c.Pixels += int64(hdr.paddedWidth() * hdr.paddedHeight())
	}
	if pooledRefs {
		for _, r := range refs {
			video.PutFrame(r)
		}
	}
	return seq, c, nil
}

// frameDecoder mirrors frameEncoder on the parse side: one instance
// decodes the macroblock rows [rowStart, rowEnd) of one frame.
type frameDecoder struct {
	hdr      *seqHeader
	r        symReader
	recon    *video.Frame
	refs     []*video.Frame
	grid     *mbGrid // slice-local
	qpGrid   []int   // frame-level
	mbW      int
	rowStart int
	rowEnd   int
	ftype    int
	qpBase   int
	c        *perf.Counters
	sc       *decScratch // persistent per-slice-lane scratch (arena.go)
}

// sliceTopPx returns the luma row of the slice's first sample.
func (fd *frameDecoder) sliceTopPx() int { return fd.rowStart * MBSize }

func (fd *frameDecoder) decodeSlice() error {
	rows := fd.rowEnd - fd.rowStart
	for local := 0; local < rows; local++ {
		for mbx := 0; mbx < fd.mbW; mbx++ {
			if err := fd.decodeMB(mbx, local); err != nil {
				return fmt.Errorf("MB (%d,%d): %w", mbx, fd.rowStart+local, err)
			}
		}
	}
	fd.c.Ops[perf.KDecode] += fd.r.Bins()
	fd.c.Invocations[perf.KDecode] += int64(fd.mbW * rows)
	return nil
}

// decodeMB parses and reconstructs the macroblock at column mbx,
// slice-local row local.
func (fd *frameDecoder) decodeMB(mbx, local int) error {
	px, py := mbx*MBSize, (fd.rowStart+local)*MBSize
	predMV := fd.grid.predMV(mbx, local)

	// The previous macroblock has been committed, so its level storage
	// and candidate struct are dead; reuse both. The whole-struct
	// assignment resets every field exactly as a fresh allocation
	// would.
	fd.sc.levels.reset()
	cand := &fd.sc.cand
	*cand = mbCand{qp: fd.qpBase}
	if fd.ftype == frameP {
		skip, err := fd.r.Bit(ctxSkip)
		if err != nil {
			return err
		}
		if skip == 1 {
			cand.mode = mbSkip
			cand.mv = predMV
			cand.ref = 0
			return fd.reconstructInter(cand, mbx, local, px, py)
		}
		intra, err := fd.r.Bit(ctxIntraFlag)
		if err != nil {
			return err
		}
		if intra == 1 {
			cand.mode = mbIntra
		} else {
			cand.mode = mbInter
		}
	} else {
		cand.mode = mbIntra
	}

	if cand.mode == mbIntra {
		lm, err := fd.r.UE(ctxLumaMode)
		if err != nil {
			return err
		}
		switch {
		case lm == lumaModeIntra4:
			if !fd.hdr.intra4Allowed {
				return errors.New("intra4 macroblock in stream without intra4 flag")
			}
			cand.intra4 = true
			for b := 0; b < 16; b++ {
				m, err := fd.r.UE(ctxLumaMode4)
				if err != nil {
					return err
				}
				if m > uint32(predict.ModeHorizontal) {
					return errors.New("invalid intra4 block mode")
				}
				cand.luma4Modes[b] = predict.Mode(m)
			}
		case lm < uint32(predict.NumModes):
			cand.lumaMode = predict.Mode(lm)
		default:
			return errors.New("invalid intra mode")
		}
		cm, err := fd.r.UE(ctxChromaMode)
		if err != nil {
			return err
		}
		if cm >= uint32(predict.ModePlane) {
			return errors.New("invalid chroma intra mode")
		}
		cand.chromaMode = predict.Mode(cm)
	} else {
		if fd.hdr.refs > 1 {
			ref, err := fd.r.UE(ctxRefIdx)
			if err != nil {
				return err
			}
			if int(ref) >= len(fd.refs) {
				return fmt.Errorf("reference index %d out of range", ref)
			}
			cand.ref = int(ref)
		}
		dx, err := fd.r.SE(ctxMVD)
		if err != nil {
			return err
		}
		dy, err := fd.r.SE(ctxMVD)
		if err != nil {
			return err
		}
		cand.mv = motion.MV{X: predMV.X + dx, Y: predMV.Y + dy}
	}

	if err := fd.readMBTail(cand); err != nil {
		return err
	}
	if cand.mode == mbIntra {
		return fd.reconstructIntra(cand, mbx, local, px, py)
	}
	return fd.reconstructInter(cand, mbx, local, px, py)
}

// readMBTail parses transform size, QP delta, CBP, and residuals,
// mirroring writeMBTail.
func (fd *frameDecoder) readMBTail(cand *mbCand) error {
	r := fd.r
	rich := fd.hdr.richContexts
	if fd.hdr.tx8Allowed && !cand.intra4 {
		t8, err := r.Bit(ctxTx8)
		if err != nil {
			return err
		}
		cand.tx8 = t8 == 1
	}
	if fd.hdr.adaptiveQuant {
		d, err := r.SE(ctxQPDelta)
		if err != nil {
			return err
		}
		cand.qpDelta = int(d)
		cand.qp = clampQP(fd.qpBase + cand.qpDelta)
	}
	var quadCoded [4]bool
	for q := 0; q < 4; q++ {
		b, err := r.Bit(ctxCBPLuma)
		if err != nil {
			return err
		}
		quadCoded[q] = b == 1
	}
	var planeCoded [2]bool
	for p := 0; p < 2; p++ {
		b, err := r.Bit(ctxCBPChroma)
		if err != nil {
			return err
		}
		planeCoded[p] = b == 1
	}
	// Coded-block levels live in the slice lane's arena; uncoded
	// blocks keep the nil entries the candidate reset left behind.
	// readResidualBlock zeroes its buffer first, so dirty arena memory
	// is harmless.
	if cand.tx8 {
		for q := 0; q < 4; q++ {
			if !quadCoded[q] {
				continue
			}
			zz := fd.sc.levels.take(64)
			if err := readResidualBlock(r, zz, rich); err != nil {
				return err
			}
			cand.lumaLevels[q] = zz
		}
	} else {
		for q := 0; q < 4; q++ {
			if !quadCoded[q] {
				continue
			}
			for _, b := range quadBlocks4[q] {
				flag, err := r.Bit(ctxBlkFlag)
				if err != nil {
					return err
				}
				if flag == 1 {
					zz := fd.sc.levels.take(16)
					if err := readResidualBlock(r, zz, rich); err != nil {
						return err
					}
					cand.lumaLevels[b] = zz
				}
			}
		}
	}
	for p := 0; p < 2; p++ {
		if !planeCoded[p] {
			continue
		}
		for b := 0; b < 4; b++ {
			flag, err := r.Bit(ctxBlkFlag)
			if err != nil {
				return err
			}
			if flag == 1 {
				zz := fd.sc.levels.take(16)
				if err := readResidualBlock(r, zz, rich); err != nil {
					return err
				}
				cand.chromaLevels[p][b] = zz
			}
		}
	}
	return nil
}

// reconstructInter rebuilds an inter (or skip) macroblock.
func (fd *frameDecoder) reconstructInter(cand *mbCand, mbx, local, px, py int) error {
	if cand.ref >= len(fd.refs) {
		return fmt.Errorf("reference %d unavailable", cand.ref)
	}
	ref := fd.refs[cand.ref]
	var pred [MBSize * MBSize]uint8
	mcLuma(fd.hdr, pred[:], lumaPlane(ref), px, py, cand.mv, &fd.sc.motion, fd.c)
	fd.composeLuma(cand, pred[:], px, py)

	var cpred [64]uint8
	for p := 0; p < 2; p++ {
		motion.PredictChroma(cpred[:], chromaPlane(ref, p), px/2, py/2, cand.mv, 8, 8)
		fd.c.Count(perf.KInterp, 64)
		fd.composeChroma(cand, p, cpred[:], px, py)
	}
	fd.commit(cand, mbx, local)
	return nil
}

// reconstructIntra rebuilds an intra macroblock.
func (fd *frameDecoder) reconstructIntra(cand *mbCand, mbx, local, px, py int) error {
	reconY := lumaPlane(fd.recon)
	if cand.intra4 {
		if err := fd.reconstructIntra4Luma(cand, px, py); err != nil {
			return err
		}
	} else {
		if !intraAvailClipped(cand.lumaMode, px, py, MBSize, reconY, fd.sliceTopPx()) {
			return fmt.Errorf("intra mode %v unavailable at (%d,%d)", cand.lumaMode, px, py)
		}
		var pred [MBSize * MBSize]uint8
		predict.PredictClipped(pred[:], reconY, px, py, MBSize, cand.lumaMode, py > fd.sliceTopPx(), px > 0)
		fd.c.Count(perf.KIntra, MBSize*MBSize)
		fd.composeLuma(cand, pred[:], px, py)
	}

	var cpred [64]uint8
	for p := 0; p < 2; p++ {
		cp := chromaPlane(fd.recon, p)
		if !intraAvailClipped(cand.chromaMode, px/2, py/2, 8, cp, fd.sliceTopPx()/2) {
			return fmt.Errorf("chroma mode %v unavailable at (%d,%d)", cand.chromaMode, px/2, py/2)
		}
		predict.PredictClipped(cpred[:], cp, px/2, py/2, 8, cand.chromaMode, py/2 > fd.sliceTopPx()/2, px > 0)
		fd.c.Count(perf.KIntra, 64)
		fd.composeChroma(cand, p, cpred[:], px, py)
	}
	fd.commit(cand, mbx, local)
	return nil
}

// reconstructIntra4Luma rebuilds the luma of an intra4 macroblock
// block by block, predicting each 4×4 block from the samples
// reconstructed before it — the exact mirror of buildIntra4Cand.
func (fd *frameDecoder) reconstructIntra4Luma(cand *mbCand, px, py int) error {
	reconY := lumaPlane(fd.recon)
	var pred [16]uint8
	var rblk [16]int32
	for b := 0; b < 16; b++ {
		ox, oy := block4Offset(b)
		m := cand.luma4Modes[b]
		if !intra4Avail(m, px, py, ox, oy, fd.sliceTopPx()) {
			return fmt.Errorf("intra4 mode %v unavailable at block %d of (%d,%d)", m, b, px, py)
		}
		if err := intra4PredictBlock(pred[:], m, reconY, cand, px, py, ox, oy, fd.sliceTopPx()); err != nil {
			return err
		}
		fd.c.Count(perf.KIntra, 16)
		for i := range rblk {
			rblk[i] = 0
		}
		if cand.lumaLevels[b] != nil {
			reconstructBlockFromLevels(cand.lumaLevels[b], rblk[:], 4, cand.qp, fd.c)
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				v := int32(pred[y*4+x]) + rblk[y*4+x]
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				cand.lumaRecon[(oy+y)*MBSize+ox+x] = uint8(v)
			}
		}
	}
	return nil
}

// composeLuma reconstructs the luma samples of the MB from prediction
// plus decoded residual.
func (fd *frameDecoder) composeLuma(cand *mbCand, pred []uint8, px, py int) {
	var reconRes [MBSize * MBSize]int32
	if cand.tx8 {
		var rblk [64]int32
		for q := 0; q < 4; q++ {
			if cand.lumaLevels[q] == nil {
				continue
			}
			reconstructBlockFromLevels(cand.lumaLevels[q], rblk[:], 8, cand.qp, fd.c)
			ox, oy := block8Offset(q)
			scatterBlock(reconRes[:], MBSize, ox, oy, 8, rblk[:])
		}
	} else {
		var rblk [16]int32
		for b := 0; b < 16; b++ {
			if cand.lumaLevels[b] == nil {
				continue
			}
			reconstructBlockFromLevels(cand.lumaLevels[b], rblk[:], 4, cand.qp, fd.c)
			ox, oy := block4Offset(b)
			scatterBlock(reconRes[:], MBSize, ox, oy, 4, rblk[:])
		}
	}
	composeRecon(cand.lumaRecon[:], pred, reconRes[:], MBSize*MBSize)
}

// composeChroma reconstructs one chroma plane of the MB.
func (fd *frameDecoder) composeChroma(cand *mbCand, p int, pred []uint8, px, py int) {
	var reconRes [64]int32
	var rblk [16]int32
	for b := 0; b < 4; b++ {
		if cand.chromaLevels[p][b] == nil {
			continue
		}
		reconstructBlockFromLevels(cand.chromaLevels[p][b], rblk[:], 4, cand.qp, fd.c)
		ox, oy := (b%2)*4, (b/2)*4
		scatterBlock(reconRes[:], 8, ox, oy, 4, rblk[:])
	}
	composeRecon(cand.chromaRecon[p][:], pred, reconRes[:], 64)
}

// commit writes the reconstructed MB into the frame and grid state.
// local is the slice-local macroblock row.
func (fd *frameDecoder) commit(cand *mbCand, mbx, local int) {
	px, py := mbx*MBSize, (fd.rowStart+local)*MBSize
	w := fd.recon.Width
	for y := 0; y < MBSize; y++ {
		copy(fd.recon.Y[(py+y)*w+px:(py+y)*w+px+MBSize], cand.lumaRecon[y*MBSize:(y+1)*MBSize])
	}
	cw := fd.recon.ChromaWidth()
	for p := 0; p < 2; p++ {
		plane := fd.recon.Cb
		if p == 1 {
			plane = fd.recon.Cr
		}
		for y := 0; y < 8; y++ {
			copy(plane[(py/2+y)*cw+px/2:(py/2+y)*cw+px/2+8], cand.chromaRecon[p][y*8:(y+1)*8])
		}
	}
	info := fd.grid.at(mbx, local)
	info.mode = cand.mode
	info.mv = cand.mv
	info.ref = cand.ref
	info.qp = cand.qp
	fd.qpGrid[(fd.rowStart+local)*fd.mbW+mbx] = cand.qp
	fd.c.MBTotal++
}
