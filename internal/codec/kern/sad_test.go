package kern

import (
	"math/rand"
	"testing"
)

// sadRef is the plain scalar reference: sum of |a−b| over the block.
func sadRef(a []uint8, as int, b []uint8, bs int, w, h int) int64 {
	var sum int64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(a[y*as+x]) - int(b[y*bs+x])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum
}

// fillRand fills buf with one of several adversarial distributions:
// uniform bytes, saturated extremes (maximizing per-lane diffs), and
// near-equal planes (exercising the a≥b / a<b lane split).
func fillRand(rng *rand.Rand, buf []uint8, mode int) {
	switch mode {
	case 0:
		rng.Read(buf)
	case 1:
		for i := range buf {
			buf[i] = uint8(255 * (rng.Intn(2)))
		}
	default:
		base := uint8(rng.Intn(256))
		for i := range buf {
			buf[i] = base + uint8(rng.Intn(3)) - 1
		}
	}
}

func TestSADCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 4000; iter++ {
		w := 1 + rng.Intn(25)
		h := 1 + rng.Intn(20)
		as := w + rng.Intn(10)
		bs := w + rng.Intn(10)
		offA := rng.Intn(8) // vary alignment of the block base
		offB := rng.Intn(8)
		a := make([]uint8, offA+as*h+8)
		b := make([]uint8, offB+bs*h+8)
		fillRand(rng, a, iter%3)
		fillRand(rng, b, (iter+1)%3)
		av, bv := a[offA:], b[offB:]

		want := sadRef(av, as, bv, bs, w, h)
		if got := SAD(av, as, bv, bs, w, h); got != want {
			t.Fatalf("SAD w=%d h=%d as=%d bs=%d offA=%d offB=%d: got %d want %d",
				w, h, as, bs, offA, offB, got, want)
		}
		if got := SAD(av, as, bv, bs, w, h); got != want {
			t.Fatalf("SAD not deterministic at w=%d h=%d", w, h)
		}
	}
}

func TestSADThreshProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 4000; iter++ {
		w := 1 + rng.Intn(25)
		h := 1 + rng.Intn(20)
		as := w + rng.Intn(6)
		bs := w + rng.Intn(6)
		a := make([]uint8, as*h+8)
		b := make([]uint8, bs*h+8)
		fillRand(rng, a, iter%3)
		fillRand(rng, b, (iter+2)%3)

		exact := sadRef(a, as, b, bs, w, h)
		// Thresholds spanning below, at, and above the exact SAD.
		threshes := []int64{-5, 0, 1, exact / 2, exact, exact + 1, exact + 1000}
		for _, th := range threshes {
			got, early := SADThresh(a, as, b, bs, w, h, th)
			if !early && got != exact {
				t.Fatalf("SADThresh(th=%d) complete scan returned %d, want exact %d", th, got, exact)
			}
			if early {
				if got < th {
					t.Fatalf("SADThresh(th=%d) aborted with %d < thresh", th, got)
				}
				if exact < th {
					t.Fatalf("SADThresh(th=%d) aborted but exact SAD %d is below thresh", th, exact)
				}
			}
			if exact < th && (early || got != exact) {
				t.Fatalf("SADThresh(th=%d) must be exact when SAD %d < thresh (got %d early=%v)", th, exact, got, early)
			}
			// Determinism: identical inputs, identical outcome.
			got2, early2 := SADThresh(a, as, b, bs, w, h, th)
			if got2 != got || early2 != early {
				t.Fatalf("SADThresh(th=%d) nondeterministic: (%d,%v) vs (%d,%v)", th, got, early, got2, early2)
			}
		}
	}
}

// TestSADWideAccumulation forces the mid-block flush path: enough
// saturated chunks that an unflushed lane accumulator would overflow.
func TestSADWideAccumulation(t *testing.T) {
	w, h := 512, 8
	a := make([]uint8, w*h)
	b := make([]uint8, w*h)
	for i := range a {
		a[i] = 255
	}
	want := int64(255 * w * h)
	if got := SAD(a, w, b, w, w, h); got != want {
		t.Fatalf("saturated wide SAD: got %d want %d", got, want)
	}
	if got, early := SADThresh(a, w, b, w, w, h, want+1); early || got != want {
		t.Fatalf("saturated wide SADThresh: got %d early=%v want %d", got, early, want)
	}
}
