// Package fleetq exercises lockflow on fleet-era shapes: the
// Queue.OnTransition observer is a closure, and the check-then-act
// hazard lives inside the closure body rather than a declared
// function.
package fleetq

import "sync"

type Job struct{ ID int }

type Queue struct {
	mu           sync.Mutex
	OnTransition func(j Job, from, to, reason string)
}

type tracker struct {
	mu   sync.Mutex
	seen map[string]int
}

// EnableTracing installs an observer closure with the classic split
// critical section: the miss check and the fill happen under separate
// acquisitions, so two transitions can both miss.
func EnableTracing(q *Queue, t *tracker) {
	q.OnTransition = func(j Job, from, to, reason string) {
		t.mu.Lock()
		_, ok := t.seen[to]
		t.mu.Unlock()
		if !ok {
			t.mu.Lock()
			t.seen[to] = j.ID // want `map t.seen is checked in one critical section and filled in a later one without re-checking`
			t.mu.Unlock()
		}
	}
}

// EnableCounts keeps the check and the fill in one critical section:
// clean.
func EnableCounts(q *Queue, t *tracker) {
	q.OnTransition = func(j Job, from, to, reason string) {
		t.mu.Lock()
		defer t.mu.Unlock()
		if _, ok := t.seen[to]; !ok {
			t.seen[to] = 0
		}
		t.seen[to] = t.seen[to] + 1
	}
}

// EnableDoubleChecked re-reads under the write lock inside the
// closure: clean.
func EnableDoubleChecked(q *Queue, t *tracker) {
	q.OnTransition = func(j Job, from, to, reason string) {
		t.mu.Lock()
		_, ok := t.seen[to]
		t.mu.Unlock()
		if ok {
			return
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if _, ok := t.seen[to]; ok {
			return
		}
		t.seen[to] = j.ID
	}
}
