package kern

import (
	"math/rand"
	"testing"
)

// satdRef computes Σ|H·B·Hᵀ| with the 4×4 Hadamard matrix directly.
// The butterfly network in transform.SATD4 evaluates the same
// transform with its rows in a different order; the absolute-sum is
// invariant under row/column permutation and sign flips, so this is a
// valid independent reference for the exact value.
var hadamard4 = [4][4]int64{
	{1, 1, 1, 1},
	{1, 1, -1, -1},
	{1, -1, -1, 1},
	{1, -1, 1, -1},
}

func satdRef(res []int32, stride int) int64 {
	var tmp [4][4]int64
	for k := 0; k < 4; k++ {
		for col := 0; col < 4; col++ {
			var s int64
			for j := 0; j < 4; j++ {
				s += hadamard4[k][j] * int64(res[j*stride+col])
			}
			tmp[k][col] = s
		}
	}
	var sum int64
	for k := 0; k < 4; k++ {
		for l := 0; l < 4; l++ {
			var s int64
			for j := 0; j < 4; j++ {
				s += tmp[k][j] * hadamard4[l][j]
			}
			sum += abs64(s)
		}
	}
	return sum
}

func TestSATD4CrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 3000; iter++ {
		blk := randBlock(rng, 16, iter%3)
		want := satdRef(blk, 4)
		if got := SATD4(blk); got != want {
			t.Fatalf("SATD4: got %d want %d (blk=%v)", got, want, blk)
		}
	}
}

func TestSATDStridedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := []struct{ w, h int }{{4, 4}, {8, 4}, {4, 8}, {8, 8}, {16, 8}, {16, 16}, {12, 20}}
	for _, d := range dims {
		for iter := 0; iter < 400; iter++ {
			res := randBlock(rng, d.w*d.h, iter%3)
			var want int64
			for by := 0; by < d.h; by += 4 {
				for bx := 0; bx < d.w; bx += 4 {
					want += satdRef(res[by*d.w+bx:], d.w)
				}
			}
			if got := SATD(res, d.w, d.h); got != want {
				t.Fatalf("SATD %dx%d: got %d want %d", d.w, d.h, got, want)
			}
		}
	}
}
