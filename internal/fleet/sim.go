package fleet

import (
	"container/heap"
	"fmt"
	"time"
)

// Outcome is what a simulated worker does with a leased job.
type Outcome int

// The simulated execution outcomes.
const (
	// OutcomeDone completes the job after the modeled seconds.
	OutcomeDone Outcome = iota
	// OutcomeTransient reports a transient failure after the modeled
	// seconds; the queue requeues with backoff (or fails the job when
	// attempts are exhausted).
	OutcomeTransient
	// OutcomeTerminal reports a terminal failure; no retry.
	OutcomeTerminal
	// OutcomeCrash kills the worker mid-lease: nothing is ever
	// reported, the worker leases no further jobs, and the job comes
	// back through heartbeat-lease expiry — the simulated version of
	// SIGKILL.
	OutcomeCrash
)

// WorkerModel decides how a leased job executes on a virtual worker:
// the modeled execution time, the outcome, and (for OutcomeDone) the
// result. Models must be pure functions of the job (ID, spec,
// attempt) for the simulation to stay deterministic.
type WorkerModel func(j Job) (seconds float64, outcome Outcome, res Result)

// SimConfig parameterizes a discrete-event run.
type SimConfig struct {
	// Workers is the virtual fleet size.
	Workers int
	// Queue configures the scheduler core; its Clock is overridden by
	// the sim's clock.
	Queue Options
	// Model executes leased jobs; nil completes every job instantly.
	Model WorkerModel
	// Start anchors the simulated clock; the zero value selects the
	// Unix epoch so logs and stats are wall-time independent.
	Start time.Time
}

// Sim drives the Queue state machine — the exact code the networked
// master runs — with a simulated clock and virtual pull workers,
// making it the deterministic twin of the live service: same leases,
// same retries, same transitions, in discrete-event time.
type Sim struct {
	clock *SimClock
	start time.Time
	cfg   SimConfig

	// Q is the scheduler core under simulation.
	Q *Queue

	events  eventHeap
	seq     int
	idle    []bool
	dead    []bool
	onDone  map[int]func(*Sim, Job)
	onLease func(j Job, waitSeconds float64)

	hasWake bool
	wakeAt  time.Time

	totalWait, maxWait, busy float64
}

// NewSim builds a simulation. Jobs are added with SubmitAt before Run
// (and with SubmitNow from completion callbacks while running).
func NewSim(cfg SimConfig) *Sim {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Unix(0, 0).UTC()
	}
	clock := NewSimClock(start)
	qopt := cfg.Queue
	qopt.Clock = clock
	s := &Sim{
		clock:  clock,
		start:  start,
		cfg:    cfg,
		Q:      NewQueue(qopt),
		idle:   make([]bool, cfg.Workers),
		dead:   make([]bool, cfg.Workers),
		onDone: map[int]func(*Sim, Job){},
	}
	for i := range s.idle {
		s.idle[i] = true
	}
	return s
}

// OnLease installs a hook observing every lease with its queue wait
// (seconds from ready to lease).
func (s *Sim) OnLease(fn func(j Job, waitSeconds float64)) { s.onLease = fn }

// SubmitAt schedules a job submission at the given offset from the
// simulation start. onDone (optional) fires when the job's completion
// is applied; it may submit follow-on jobs via SubmitNow, which is
// how dependent passes (upload → VOD → popular) chain.
func (s *Sim) SubmitAt(offset time.Duration, spec JobSpec, onDone func(*Sim, Job)) {
	s.push(simEvent{at: s.start.Add(offset), kind: evSubmit, spec: spec, onDone: onDone})
}

// SubmitNow submits a job at the current simulated time; only valid
// from inside Run (i.e. from an onDone callback).
func (s *Sim) SubmitNow(spec JobSpec, onDone func(*Sim, Job)) {
	s.push(simEvent{at: s.clock.Now(), kind: evSubmit, spec: spec, onDone: onDone})
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time { return s.clock.Now() }

// ElapsedSeconds is the simulated makespan so far.
func (s *Sim) ElapsedSeconds() float64 { return s.clock.Now().Sub(s.start).Seconds() }

// BusySeconds is the summed execution time of every attempt that ran
// to a report (crashed attempts contribute nothing).
func (s *Sim) BusySeconds() float64 { return s.busy }

// Timelines renders every job's event timeline in the fixed
// DumpTimelines format. Because the sim's schedule is deterministic,
// repeated runs of the same configuration produce byte-identical
// output — pinned by the timeline determinism tests.
func (s *Sim) Timelines() string { return s.Q.DumpTimelines() }

// TotalWaitSeconds and MaxWaitSeconds aggregate queue waits over all
// leases.
func (s *Sim) TotalWaitSeconds() float64 { return s.totalWait }

// MaxWaitSeconds is the largest single queue wait.
func (s *Sim) MaxWaitSeconds() float64 { return s.maxWait }

// Run processes events until none remain: all submitted work has
// reached a terminal state, or no live worker can make progress.
func (s *Sim) Run() error {
	// Guard against event-loop bugs: the event count is bounded by
	// submissions + attempts + wakes, all finite.
	const maxEvents = 50_000_000
	for n := 0; s.events.Len() > 0; n++ {
		if n > maxEvents {
			return fmt.Errorf("fleet: simulation exceeded %d events (event-loop bug?)", maxEvents)
		}
		e := heap.Pop(&s.events).(simEvent)
		if e.kind == evWake {
			// Discard wakes that can no longer change anything (all
			// work resolved) without advancing the clock, so the
			// simulated makespan ends at the last real completion
			// rather than at a stale lease-expiry deadline.
			if st := s.Q.Stats(); st.Pending+st.Leased == 0 {
				s.hasWake = false
				continue
			}
		}
		s.clock.Advance(e.at)
		switch e.kind {
		case evSubmit:
			id, err := s.Q.Submit(e.spec)
			if err != nil {
				return err
			}
			if e.onDone != nil {
				s.onDone[id] = e.onDone
			}
		case evFinish:
			s.idle[e.worker] = true
			switch e.outcome {
			case OutcomeDone:
				applied, err := s.Q.Complete(e.jobID, e.attempt, simWorkerName(e.worker), e.res)
				if err != nil {
					return err
				}
				if applied {
					if fn := s.onDone[e.jobID]; fn != nil {
						j, err := s.Q.Job(e.jobID)
						if err != nil {
							return err
						}
						fn(s, j)
					}
				}
			case OutcomeTransient, OutcomeTerminal:
				if err := s.Q.Fail(e.jobID, e.attempt, simWorkerName(e.worker),
					e.outcome == OutcomeTerminal, "injected failure"); err != nil {
					return err
				}
			}
		case evWake:
			s.hasWake = false
			s.Q.ExpireLeases()
		}
		s.dispatch()
		s.armWake()
	}
	return nil
}

// dispatch hands ready jobs to idle workers in worker order; Lease
// itself expires lapsed leases first, so requeues are visible.
func (s *Sim) dispatch() {
	for w := 0; w < s.cfg.Workers; w++ {
		if !s.idle[w] || s.dead[w] {
			continue
		}
		j, ok := s.Q.Lease(simWorkerName(w))
		if !ok {
			return
		}
		s.idle[w] = false
		wait := s.clock.Now().Sub(j.ReadyAt).Seconds()
		s.totalWait += wait
		if wait > s.maxWait {
			s.maxWait = wait
		}
		if s.onLease != nil {
			s.onLease(j, wait)
		}
		secs, outcome, res := 0.0, OutcomeDone, Result{}
		if s.cfg.Model != nil {
			secs, outcome, res = s.cfg.Model(j)
		}
		if outcome == OutcomeCrash {
			s.dead[w] = true
			continue // the lease dangles until heartbeat expiry
		}
		s.busy += secs
		res.Seconds = secs
		s.push(simEvent{
			at:      s.clock.Now().Add(durationOf(secs)),
			kind:    evFinish,
			worker:  w,
			jobID:   j.ID,
			attempt: j.Attempt,
			outcome: outcome,
			res:     res,
		})
	}
}

// armWake keeps exactly one pending wake event at the queue's next
// self-triggered instant (backoff expiry or lease timeout).
func (s *Sim) armWake() {
	t, ok := s.Q.NextWake()
	if !ok {
		return
	}
	if s.hasWake && !t.Before(s.wakeAt) {
		return
	}
	s.hasWake = true
	s.wakeAt = t
	s.push(simEvent{at: t, kind: evWake})
}

func (s *Sim) push(e simEvent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// durationOf converts model seconds to a duration.
func durationOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// simWorkerName names virtual worker w.
func simWorkerName(w int) string { return fmt.Sprintf("sim-w%d", w) }

// Event kinds.
const (
	evSubmit = iota
	evFinish
	evWake
)

// simEvent is one entry of the discrete-event heap, ordered by time
// with FIFO sequence tie-breaking so simulation order — and therefore
// every downstream byte — is deterministic.
type simEvent struct {
	at   time.Time
	seq  int
	kind int

	// evSubmit
	spec   JobSpec
	onDone func(*Sim, Job)

	// evFinish
	worker  int
	jobID   int
	attempt int
	outcome Outcome
	res     Result
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
