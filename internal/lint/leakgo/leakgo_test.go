package leakgo_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/leakgo"
)

func TestLeakgo(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), leakgo.Analyzer)
}
