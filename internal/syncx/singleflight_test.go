package syncx

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOnce(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	const goroutines = 64

	var wg sync.WaitGroup
	vals := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn called %d times, want 1", got)
	}
	for i, v := range vals {
		if v != 42 {
			t.Errorf("goroutine %d got %d, want 42", i, v)
		}
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, string]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := m.Do(i, func() (string, error) { return fmt.Sprint(i), nil })
			if err != nil || v != fmt.Sprint(i) {
				t.Errorf("key %d: got %q, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if m.Len() != 16 {
		t.Errorf("cached %d keys, want 16", m.Len())
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	calls := 0
	if _, err := m.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := m.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry got %d, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("fn called %d times, want 2 (failure retried)", calls)
	}
	if _, err := m.Do("k", func() (int, error) { calls++; return 0, boom }); err != nil {
		t.Errorf("cached success returned error %v", err)
	}
	if calls != 2 {
		t.Errorf("fn called %d times after success, want 2", calls)
	}
}

// TestMemoStatsMissesEqualUniqueKeys is the singleflight guarantee in
// counter form: no matter how many goroutines race on the same key
// set, the miss count (= compute-function invocations) equals the
// number of unique keys, and every other call is accounted for as a
// hit or an in-flight join.
func TestMemoStatsMissesEqualUniqueKeys(t *testing.T) {
	var m Memo[int, int]
	const goroutines, keys = 32, 16
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				v, err := m.Do(k, func() (int, error) {
					calls.Add(1)
					return k * k, nil
				})
				if err != nil || v != k*k {
					t.Errorf("key %d: got %d, %v", k, v, err)
				}
			}
		}()
	}
	wg.Wait()

	s := m.Stats()
	if s.Misses != keys {
		t.Errorf("Misses = %d, want %d (one per unique key)", s.Misses, keys)
	}
	if s.Misses != calls.Load() {
		t.Errorf("Misses = %d but fn ran %d times; they must agree", s.Misses, calls.Load())
	}
	if total := s.Hits + s.Misses + s.Inflight; total != goroutines*keys {
		t.Errorf("Hits+Misses+Inflight = %d, want %d (every Do call accounted)", total, goroutines*keys)
	}
}

// TestMemoStatsErrorRetryCountsMisses pins the documented semantics:
// error retries are misses too, so Misses tracks fn invocations, not
// unique keys, once failures occur.
func TestMemoStatsErrorRetryCountsMisses(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	m.Do("k", func() (int, error) { return 0, boom })
	m.Do("k", func() (int, error) { return 1, nil })
	m.Do("k", func() (int, error) { return 2, nil }) // cached: hit
	s := m.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses (failure retried) and 1 hit", s)
	}
}

func TestMemoGet(t *testing.T) {
	var m Memo[string, int]
	if _, ok := m.Get("k"); ok {
		t.Error("Get hit on empty memo")
	}
	if _, err := m.Do("k", func() (int, error) { return 9, nil }); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Get("k")
	if !ok || v != 9 {
		t.Errorf("Get = %d, %v; want 9, true", v, ok)
	}
}

func TestMemoBytesAccounting(t *testing.T) {
	var m Memo[string, string]
	m.Size = func(v string) int64 { return int64(len(v)) }
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := m.Do(key, func() (string, error) { return "0123456789", nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Bytes(); got != 40 {
		t.Fatalf("Bytes() = %d, want 40", got)
	}
	if n := m.EvictAll(); n != 4 {
		t.Fatalf("EvictAll() = %d, want 4", n)
	}
	if got := m.Bytes(); got != 0 {
		t.Fatalf("Bytes() after EvictAll = %d, want 0", got)
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len() after EvictAll = %d, want 0", got)
	}
	if got := m.Stats().Evictions; got != 4 {
		t.Fatalf("Stats().Evictions = %d, want 4", got)
	}
	// Evicted keys recompute (a second miss, not a hit).
	if _, err := m.Do("k0", func() (string, error) { return "x", nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Misses; got != 5 {
		t.Fatalf("Misses after evict+recompute = %d, want 5", got)
	}
}

// TestMemoEvictAllKeepsInflight: an eviction racing a computation must
// not orphan the in-flight entry — its waiters resolve and the result
// lands in the cache.
func TestMemoEvictAllKeepsInflight(t *testing.T) {
	var m Memo[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		v, _ := m.Do("slow", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		done <- v
	}()
	<-started
	if n := m.EvictAll(); n != 0 {
		t.Fatalf("EvictAll() evicted an in-flight entry (n=%d)", n)
	}
	close(release)
	if v := <-done; v != 42 {
		t.Fatalf("in-flight result = %d, want 42", v)
	}
	if v, ok := m.Get("slow"); !ok || v != 42 {
		t.Fatalf("in-flight entry not cached after EvictAll race: %d, %v", v, ok)
	}
}

// TestMemoCountersUnderConcurrency pins the stats invariant the
// harness gauges report, with EvictAll mixed in, under -race: every
// Do call is classified exactly once (hit, miss, or inflight join),
// and bytes accounting nets out against evictions.
func TestMemoCountersUnderConcurrency(t *testing.T) {
	var m Memo[int, []byte]
	m.Size = func(v []byte) int64 { return int64(len(v)) }
	const (
		goroutines = 8
		rounds     = 200
		keys       = 10
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := i % keys
				v, err := m.Do(key, func() ([]byte, error) { return make([]byte, 100+key), nil })
				if err != nil || len(v) != 100+key {
					t.Errorf("Do(%d): len=%d err=%v", key, len(v), err)
				}
				if g == 0 && i%50 == 25 {
					m.EvictAll()
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Hits+st.Misses+st.Inflight != goroutines*rounds {
		t.Fatalf("hits(%d)+misses(%d)+inflight(%d) != %d calls",
			st.Hits, st.Misses, st.Inflight, goroutines*rounds)
	}
	if st.Misses < keys {
		t.Fatalf("misses=%d < %d unique keys", st.Misses, keys)
	}
	// Whatever survived the final eviction is exactly what Bytes sees.
	var live int64
	for k := 0; k < keys; k++ {
		if v, ok := m.Get(k); ok {
			live += int64(len(v))
		}
	}
	if got := m.Bytes(); got != live {
		t.Fatalf("Bytes()=%d != %d bytes of live entries", got, live)
	}
}
