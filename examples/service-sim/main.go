// Service-sim: size a transcoding fleet and quantify the economics of
// the Popular re-transcode pass using the discrete-event service
// simulator (the infrastructure of Section 2.5 / Figure 3, driven by
// this repository's real encoders and cost models).
package main

import (
	"fmt"
	"log"

	"vbench/internal/service"
)

func main() {
	base := service.DefaultConfig()
	base.Uploads = 30
	base.PopularShare = 0.1

	fmt.Println("fleet sizing under a fixed upload stream:")
	fmt.Println()
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		stats, err := service.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d worker(s): mean queue wait %6.3fs, max %6.3fs, utilization %3.0f%%\n",
			workers, stats.MeanQueueWaitSeconds, stats.MaxQueueWaitSeconds, stats.FleetUtilization*100)
	}

	fmt.Println()
	fmt.Println("economics of the Popular pass (4 workers):")
	fmt.Println()
	cfg := base
	cfg.Workers = 4
	stats, err := service.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range stats.Summary() {
		fmt.Println("  " + line)
	}
	if stats.EgressSavedBytes > 0 {
		perSecond := float64(stats.EgressSavedBytes) / stats.PopularComputeSeconds
		fmt.Printf("\n  every modeled compute-second spent on popular re-transcodes saved %.0f bytes of egress\n", perSecond)
		fmt.Println("  — the amortization argument of Section 2.5: compute once, save on every playback.")
	}
}
