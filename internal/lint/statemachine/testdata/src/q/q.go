// Package q mirrors the fleet state machine: a State enum, the
// stateNames / validEdge tables, and a setState choke point. The
// analyzer activates on the table declarations alone.
package q

type State int

const (
	Pending State = iota
	Leased
	Done
	Failed
	numStates
)

var stateNames = [numStates]string{"pending", "leased", "done", "failed"}

var validEdge = [numStates][numStates]bool{
	Pending: {Leased: true},
	Leased:  {Done: true, Failed: true, Pending: true},
}

func (s State) String() string { return stateNames[s] }

type Job struct {
	State State
	Tries int
}

type Queue struct{ jobs []*Job }

// setState is the designated mutation point: direct writes here are
// the one allowed place.
func (q *Queue) setState(j *Job, to State, reason string) {
	if !validEdge[j.State][to] {
		panic("invalid edge")
	}
	j.State = to
	q.record(j, j.State.String(), to.String(), reason)
}

func (q *Queue) record(j *Job, from, to, reason string) {}

// submit records the distinguished submission pseudo-edge: clean.
func (q *Queue) submit(j *Job) {
	q.jobs = append(q.jobs, j)
	q.record(j, "none", "pending", "submit")
}

// lease passes a literal pair that is a real edge: clean.
func (q *Queue) lease(j *Job) {
	q.setState(j, Leased, "lease")
	q.record(j, "pending", "leased", "lease")
}

// resurrect writes a transition the table forbids.
func (q *Queue) resurrect(j *Job) {
	q.record(j, "done", "pending", "resurrect") // want `literal transition "done" -> "pending" is not an edge of the state machine`
}

// misSubmit enters the machine at the wrong state.
func (q *Queue) misSubmit(j *Job) {
	q.record(j, "none", "leased", "submit") // want `transition "none" -> "leased" is invalid: submission must enter at "pending"`
}

// unSubmit uses the submission source as a destination.
func (q *Queue) unSubmit(j *Job) {
	q.record(j, "failed", "none", "unsubmit") // want `transition "failed" -> "none" is invalid`
}

// directWrite bypasses setState.
func (q *Queue) directWrite(j *Job) {
	j.State = Done // want "job state must be mutated through setState"
}

// bump mutates the state arithmetically, which is still a bypass.
func (q *Queue) bump(j *Job) {
	j.State++ // want "job state must be mutated through setState"
}

// otherField writes a non-State field: clean.
func (q *Queue) otherField(j *Job) {
	j.Tries = 3
}

// read only observes the state: clean.
func (q *Queue) read(j *Job) State {
	from := j.State
	return from
}

// typoCompare compares against a name that is not a state.
func (q *Queue) typoCompare(j *Job) bool {
	return j.State.String() == "leaseed" // want `unknown state name "leaseed"`
}

// okCompare uses a real name (either operand order): clean.
func (q *Queue) okCompare(j *Job) bool {
	return "done" == j.State.String() || j.State.String() != "failed"
}

// suppressed documents a deliberate bypass (test fixture setup).
func (q *Queue) suppressed(j *Job) {
	//lint:ignore statemachine fixture setup predates the queue
	j.State = Failed
}
