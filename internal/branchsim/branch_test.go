package branchsim

import (
	"testing"

	"vbench/internal/rng"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter saturated at %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter floored at %d, want 0", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(10)
	if err != nil {
		t.Fatal(err)
	}
	f := &Feed{P: b}
	// Always-taken branch: after warmup, no mispredictions.
	for i := 0; i < 100; i++ {
		f.Observe(0x400, true)
	}
	warm := f.S.Mispredicts
	for i := 0; i < 100; i++ {
		f.Observe(0x400, true)
	}
	if f.S.Mispredicts != warm {
		t.Errorf("steady always-taken branch mispredicted %d times", f.S.Mispredicts-warm)
	}
}

func TestBimodalAliasing(t *testing.T) {
	// Two branches with opposite outcomes at aliased PCs interfere in
	// a tiny table.
	b, _ := NewBimodal(1) // 2 entries
	f := &Feed{P: b}
	for i := 0; i < 200; i++ {
		f.Observe(0x0, true)
		f.Observe(0x8<<1, false) // same index after pc>>2 masking
	}
	if f.S.MispredictRate() < 0.4 {
		t.Errorf("aliased opposite branches rate = %v, want high", f.S.MispredictRate())
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// A (T,T,N) repeating pattern defeats bimodal but gshare learns it
	// through history.
	g, _ := NewGShare(12)
	b, _ := NewBimodal(12)
	pattern := []bool{true, true, false}
	run := func(p Predictor) float64 {
		f := &Feed{P: p}
		for i := 0; i < 3000; i++ {
			f.Observe(0x400, pattern[i%3])
		}
		// Measure on the tail only.
		tail := &Feed{P: p}
		for i := 0; i < 300; i++ {
			tail.Observe(0x400, pattern[i%3])
		}
		return tail.S.MispredictRate()
	}
	gr := run(g)
	br := run(b)
	if gr > 0.02 {
		t.Errorf("gshare failed to learn periodic pattern: %v", gr)
	}
	if br < gr {
		t.Errorf("bimodal (%v) outperformed gshare (%v) on history pattern", br, gr)
	}
}

func TestRandomOutcomesNearHalf(t *testing.T) {
	g, _ := NewGShare(12)
	f := &Feed{P: g}
	r := rng.New(5)
	for i := 0; i < 50000; i++ {
		f.Observe(0x400+uint64(i%8)*4, r.Float64() < 0.5)
	}
	rate := f.S.MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random branch mispredict rate = %v, want ≈0.5", rate)
	}
}

func TestBiasedOutcomesBelowBias(t *testing.T) {
	// 90% taken: a good predictor approaches the 10% floor.
	g, _ := NewGShare(12)
	f := &Feed{P: g}
	r := rng.New(6)
	for i := 0; i < 50000; i++ {
		f.Observe(0x400, r.Float64() < 0.9)
	}
	rate := f.S.MispredictRate()
	if rate > 0.2 {
		t.Errorf("biased branch mispredict rate = %v, want ≲0.15", rate)
	}
}

func TestRunMatchesFeed(t *testing.T) {
	pcs := make([]uint64, 1000)
	outs := make([]bool, 1000)
	r := rng.New(7)
	for i := range pcs {
		pcs[i] = uint64(r.Intn(64)) * 4
		outs[i] = r.Float64() < 0.7
	}
	g1, _ := NewGShare(10)
	s, err := Run(g1, pcs, outs)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGShare(10)
	f := &Feed{P: g2}
	for i := range pcs {
		f.Observe(pcs[i], outs[i])
	}
	if s.Mispredicts != f.S.Mispredicts || s.Branches != f.S.Branches {
		t.Errorf("Run %+v != Feed %+v", s, f.S)
	}
}

func TestRunValidation(t *testing.T) {
	g, _ := NewGShare(10)
	if _, err := Run(g, []uint64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewBimodal(0); err == nil {
		t.Error("0-bit bimodal accepted")
	}
	if _, err := NewGShare(25); err == nil {
		t.Error("25-bit gshare accepted")
	}
}

func TestNames(t *testing.T) {
	g, _ := NewGShare(8)
	b, _ := NewBimodal(8)
	if g.Name() != "gshare" || b.Name() != "bimodal" {
		t.Error("predictor names wrong")
	}
}
