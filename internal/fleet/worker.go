package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"vbench/internal/syncx"
)

// WorkerOptions configures a pull worker.
type WorkerOptions struct {
	// Master is the base URL of the master, e.g. "http://127.0.0.1:7933".
	Master string
	// ID names this worker in leases and logs.
	ID string
	// Concurrency is how many jobs run at once (each encode still
	// shares the process CPU gate). Default 1.
	Concurrency int
	// Poll is the idle re-poll interval. Default 200ms.
	Poll time.Duration
	// Heartbeat is the lease-renewal interval; it should be well
	// under the master's lease TTL. Non-positive derives it from the
	// TTL the master advertises on each lease (TTL/3).
	Heartbeat time.Duration
	// Gate bounds concurrent encode work; nil selects the process-
	// wide syncx.CPU gate, so a worker colocated with other encode
	// work cannot oversubscribe the machine.
	Gate *syncx.CPUGate
	// Client is the HTTP client; nil selects one with a 15s timeout.
	Client *http.Client
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Worker pulls jobs from a master and runs them with real encoders.
// Run blocks until the context is canceled and then drains: in-flight
// jobs finish and their completions are delivered before Run returns
// — the SIGTERM path of cmd/vbenchd worker.
type Worker struct {
	opt WorkerOptions
}

// NewWorker validates options and builds a worker.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Master == "" {
		return nil, fmt.Errorf("fleet: worker needs a master URL")
	}
	if opt.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an id")
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 1
	}
	if opt.Poll <= 0 {
		opt.Poll = 200 * time.Millisecond
	}
	if opt.Gate == nil {
		opt.Gate = syncx.CPU
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if opt.Log == nil {
		opt.Log = io.Discard
	}
	return &Worker{opt: opt}, nil
}

// Run pulls and executes jobs until ctx is canceled, then drains.
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < w.opt.Concurrency; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.loop(ctx, slot)
		}(i)
	}
	wg.Wait()
	return nil
}

// loop is one lease-execute-ack cycle until shutdown.
func (w *Worker) loop(ctx context.Context, slot int) {
	for ctx.Err() == nil {
		job, ttl, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("lease: %v", err)
			w.sleep(ctx, w.opt.Poll)
			continue
		}
		if job == nil {
			w.sleep(ctx, w.opt.Poll)
			continue
		}
		w.runJob(job, ttl)
	}
}

// runJob executes one leased job under the CPU gate with heartbeats,
// then delivers the completion or classified failure. Acks run on a
// background context so a drain still reports in-flight work.
func (w *Worker) runJob(job *Job, ttl time.Duration) {
	hb := w.opt.Heartbeat
	if hb <= 0 {
		hb = ttl / 3
		if hb <= 0 {
			hb = time.Second
		}
	}
	hbCtx, stopHB := context.WithCancel(context.Background())
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeats(hbCtx, job, hb)
	}()

	w.opt.Gate.Acquire()
	res, err := Execute(job.Spec, job.Attempt, time.Sleep)
	w.opt.Gate.Release()
	stopHB()
	hbWG.Wait()

	if err != nil {
		terminal := IsTerminal(err)
		w.logf("job %d attempt %d failed (%s): %v", job.ID, job.Attempt, failureClass(terminal), err)
		if ackErr := w.ack(context.Background(), "/api/v1/fail", &AckRequest{
			Worker: w.opt.ID, JobID: job.ID, Attempt: job.Attempt,
			Terminal: terminal, Error: err.Error(),
		}, nil); ackErr != nil {
			w.logf("job %d: reporting failure: %v", job.ID, ackErr)
		}
		return
	}
	var resp AckResponse
	if ackErr := w.ack(context.Background(), "/api/v1/complete", &AckRequest{
		Worker: w.opt.ID, JobID: job.ID, Attempt: job.Attempt, Result: &res,
	}, &resp); ackErr != nil {
		// The master will expire the lease and retry the job; with
		// idempotent completion a duplicate re-run is absorbed.
		w.logf("job %d: reporting completion: %v", job.ID, ackErr)
		return
	}
	if resp.Applied {
		w.logf("job %d attempt %d done", job.ID, job.Attempt)
	} else {
		w.logf("job %d attempt %d completion ignored (duplicate or stale)", job.ID, job.Attempt)
	}
}

// heartbeats renews the lease until ctx is canceled or the master
// says the lease lapsed.
func (w *Worker) heartbeats(ctx context.Context, job *Job, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp AckResponse
			err := w.ack(ctx, "/api/v1/heartbeat", &AckRequest{
				Worker: w.opt.ID, JobID: job.ID, Attempt: job.Attempt,
			}, &resp)
			if err == nil && !resp.OK {
				// Lease lost (e.g. the master expired it during a
				// network partition). The encode cannot be canceled
				// mid-flight; its completion will be ignored as stale.
				w.logf("job %d attempt %d: lease lost", job.ID, job.Attempt)
				return
			}
		}
	}
}

// lease asks the master for one job; nil job means nothing is ready.
func (w *Worker) lease(ctx context.Context) (*Job, time.Duration, error) {
	var resp LeaseResponse
	if err := w.post(ctx, "/api/v1/lease", &LeaseRequest{Worker: w.opt.ID}, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Job, time.Duration(resp.LeaseTTLMS) * time.Millisecond, nil
}

// ack posts a report with bounded retries — transient master
// unavailability must not turn a finished encode into a lost ack.
func (w *Worker) ack(ctx context.Context, path string, req *AckRequest, resp *AckResponse) error {
	if resp == nil {
		// A typed-nil *AckResponse would defeat post's interface nil
		// check and make json.Decode error — which would retry an ack
		// the master already applied.
		resp = &AckResponse{}
	}
	var err error
	for i := 0; i < 3; i++ {
		if i > 0 {
			w.sleep(ctx, 150*time.Millisecond)
		}
		if err = w.post(ctx, path, req, resp); err == nil {
			return nil
		}
	}
	return err
}

// post sends one JSON request to the master.
func (w *Worker) post(ctx context.Context, path string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Master+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := w.opt.Client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return fmt.Errorf("fleet: %s: %s: %s", path, hresp.Status, bytes.TrimSpace(b))
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(hresp.Body).Decode(resp)
}

// sleep waits without outliving the context.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (w *Worker) logf(format string, args ...interface{}) {
	fmt.Fprintf(w.opt.Log, "[%s] %s\n", w.opt.ID, fmt.Sprintf(format, args...))
}

// failureClass names the retry class for logs.
func failureClass(terminal bool) string {
	if terminal {
		return "terminal"
	}
	return "transient"
}
