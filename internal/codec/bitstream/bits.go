// Package bitstream provides the bit-exact serialization primitives
// the vbench codec is built on: a big-endian bit writer/reader,
// unsigned and signed Exp-Golomb codes (the H.264 "CAVLC-style"
// variable-length layer), and an adaptive binary arithmetic coder
// modeled on the VP8/RFC 6386 boolean coder (the "CABAC-style" layer).
//
// The two entropy layers are the real mechanism behind the benchmark's
// encoder families: profiles that select the arithmetic coder compress
// measurably better and spend measurably more (strictly sequential)
// work, exactly the trade the paper attributes to CABAC vs CAVLC.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrUnderflow is returned when a reader runs out of input bits.
var ErrUnderflow = errors.New("bitstream: read past end of input")

// BitWriter accumulates bits MSB-first into a byte buffer.
type BitWriter struct {
	buf  []byte
	cur  uint8
	nbit uint // bits currently in cur (0..7)
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(bit int) {
	w.cur = w.cur<<1 | uint8(bit&1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur = 0
		w.nbit = 0
	}
}

// WriteBits appends the n low-order bits of v, MSB first. n must be in
// [0, 32].
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d > 32", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(int(v>>uint(i)) & 1)
	}
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes any partial byte (padding with zero bits) and returns
// the buffer. The writer may continue to be used; padding is only
// materialized in the returned copy.
func (w *BitWriter) Bytes() []byte {
	out := append([]byte(nil), w.buf...)
	if w.nbit > 0 {
		out = append(out, w.cur<<(8-w.nbit))
	}
	return out
}

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within buf[pos] (0 = MSB)
}

// NewBitReader returns a reader over data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (int, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrUnderflow
	}
	b := int(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits returns the next n bits as an unsigned integer (MSB first).
// n must be in [0, 32].
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d > 32", n))
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// BitsConsumed returns how many bits have been read.
func (r *BitReader) BitsConsumed() int { return r.pos*8 + int(r.bit) }

// WriteUE appends v as an unsigned Exp-Golomb code (H.264 ue(v)).
func (w *BitWriter) WriteUE(v uint32) {
	// codeNum = v; code = (v+1) in binary, prefixed by leadingZeros.
	x := v + 1
	n := bitLen32(x)
	for i := 0; i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, uint(n))
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, errors.New("bitstream: malformed exp-golomb code")
		}
	}
	if zeros == 0 {
		return 0, nil
	}
	suffix, err := r.ReadBits(uint(zeros))
	if err != nil {
		return 0, err
	}
	return (1<<uint(zeros) | suffix) - 1, nil
}

// WriteSE appends v as a signed Exp-Golomb code (H.264 se(v)):
// 0 → 0, 1 → 1, -1 → 2, 2 → 3, -2 → 4, ...
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(v)*2 - 1
	} else {
		u = uint32(-v) * 2
	}
	w.WriteUE(u)
}

// ReadSE reads a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}

// UEBits returns the length in bits of the ue(v) code for v, used by
// rate-distortion estimation without serializing.
func UEBits(v uint32) int {
	n := bitLen32(v + 1)
	return 2*n - 1
}

// SEBits returns the length in bits of the se(v) code for v.
func SEBits(v int32) int {
	var u uint32
	if v > 0 {
		u = uint32(v)*2 - 1
	} else {
		u = uint32(-v) * 2
	}
	return UEBits(u)
}

func bitLen32(x uint32) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
