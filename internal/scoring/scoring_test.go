package scoring

import (
	"math"
	"testing"
	"testing/quick"
)

func validMeasurement() Measurement {
	return Measurement{SpeedMPS: 10, BitratePPS: 0.5, PSNR: 40}
}

func TestMeasurementValidation(t *testing.T) {
	m := validMeasurement()
	if err := m.Validate(); err != nil {
		t.Errorf("valid measurement rejected: %v", err)
	}
	for _, bad := range []Measurement{
		{SpeedMPS: 0, BitratePPS: 1, PSNR: 40},
		{SpeedMPS: 1, BitratePPS: 0, PSNR: 40},
		{SpeedMPS: 1, BitratePPS: 1, PSNR: 0},
		{SpeedMPS: math.NaN(), BitratePPS: 1, PSNR: 40},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid measurement %+v accepted", bad)
		}
	}
}

func TestComputeRatiosDirections(t *testing.T) {
	ref := Measurement{SpeedMPS: 10, BitratePPS: 1.0, PSNR: 40}
	// Candidate: 2x faster, half the bitrate, 10% better quality.
	cand := Measurement{SpeedMPS: 20, BitratePPS: 0.5, PSNR: 44}
	r, err := ComputeRatios(cand, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.S-2) > 1e-12 || math.Abs(r.B-2) > 1e-12 || math.Abs(r.Q-1.1) > 1e-12 {
		t.Errorf("ratios = %+v, want S=2 B=2 Q=1.1", r)
	}
}

func TestComputeRatiosRejectsInvalid(t *testing.T) {
	if _, err := ComputeRatios(Measurement{}, validMeasurement()); err == nil {
		t.Error("invalid candidate accepted")
	}
	if _, err := ComputeRatios(validMeasurement(), Measurement{}); err == nil {
		t.Error("invalid reference accepted")
	}
}

func TestUploadScore(t *testing.T) {
	r := Ratios{S: 3, B: 0.5, Q: 1.1}
	s := Evaluate(Upload, r, Constraint{})
	if !s.Valid || math.Abs(s.Value-3.3) > 1e-12 {
		t.Errorf("upload score = %+v, want valid 3.3", s)
	}
	// Bitrate more than 5x the reference fails.
	s = Evaluate(Upload, Ratios{S: 3, B: 0.19, Q: 1.1}, Constraint{})
	if s.Valid {
		t.Error("upload accepted B <= 0.2")
	}
}

func TestLiveScore(t *testing.T) {
	r := Ratios{S: 1, B: 1.3, Q: 1.01}
	ok := Constraint{CandidateSpeedMPS: 100, RealTimeMPS: 60}
	s := Evaluate(Live, r, ok)
	if !s.Valid || math.Abs(s.Value-1.3*1.01) > 1e-12 {
		t.Errorf("live score = %+v", s)
	}
	slow := Constraint{CandidateSpeedMPS: 30, RealTimeMPS: 60}
	if s := Evaluate(Live, r, slow); s.Valid {
		t.Error("live accepted sub-real-time candidate")
	}
}

func TestVODScore(t *testing.T) {
	// Quality maintained: valid, score S×B.
	s := Evaluate(VOD, Ratios{S: 5, B: 0.8, Q: 1.0}, Constraint{CandidatePSNR: 38})
	if !s.Valid || math.Abs(s.Value-4.0) > 1e-12 {
		t.Errorf("vod score = %+v, want 4.0", s)
	}
	// Quality regressed but visually lossless: still valid.
	s = Evaluate(VOD, Ratios{S: 5, B: 0.8, Q: 0.95}, Constraint{CandidatePSNR: 51})
	if !s.Valid {
		t.Error("vod rejected visually lossless candidate")
	}
	// Quality regressed below 50 dB: invalid.
	s = Evaluate(VOD, Ratios{S: 5, B: 0.8, Q: 0.95}, Constraint{CandidatePSNR: 42})
	if s.Valid {
		t.Error("vod accepted quality regression")
	}
}

func TestPopularScore(t *testing.T) {
	good := Ratios{S: 0.3, B: 1.2, Q: 1.01}
	s := Evaluate(Popular, good, Constraint{})
	if !s.Valid || math.Abs(s.Value-1.2*1.01) > 1e-12 {
		t.Errorf("popular score = %+v", s)
	}
	for _, bad := range []Ratios{
		{S: 0.3, B: 0.99, Q: 1.01}, // bitrate regressed
		{S: 0.3, B: 1.2, Q: 0.999}, // quality regressed
		{S: 0.05, B: 1.2, Q: 1.01}, // more than 10x slower
	} {
		if s := Evaluate(Popular, bad, Constraint{}); s.Valid {
			t.Errorf("popular accepted %+v", bad)
		}
	}
}

func TestPlatformScore(t *testing.T) {
	s := Evaluate(Platform, Ratios{S: 1.4, B: 1, Q: 1}, Constraint{})
	if !s.Valid || s.Value != 1.4 {
		t.Errorf("platform score = %+v", s)
	}
	if s := Evaluate(Platform, Ratios{S: 1.4, B: 1.01, Q: 1}, Constraint{}); s.Valid {
		t.Error("platform accepted changed bitrate")
	}
	if s := Evaluate(Platform, Ratios{S: 1.4, B: 1, Q: 0.99}, Constraint{}); s.Valid {
		t.Error("platform accepted changed quality")
	}
}

func TestInvalidScoresCarryReasons(t *testing.T) {
	s := Evaluate(Popular, Ratios{S: 1, B: 0.5, Q: 1.2}, Constraint{})
	if s.Valid || s.Reason == "" {
		t.Errorf("invalid score missing reason: %+v", s)
	}
}

func TestScenarioParseRoundTrip(t *testing.T) {
	for _, s := range Scenarios() {
		got, err := ParseScenario(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScenario("bogus"); err == nil {
		t.Error("ParseScenario accepted bogus name")
	}
}

func TestScoreValueNonNegativeProperty(t *testing.T) {
	f := func(s, b, q float64, scen uint8) bool {
		r := Ratios{S: math.Abs(s) + 0.01, B: math.Abs(b) + 0.01, Q: math.Abs(q) + 0.01}
		sc := Evaluate(Scenario(scen%uint8(NumScenarios)), r, Constraint{CandidatePSNR: 45, CandidateSpeedMPS: 10, RealTimeMPS: 5})
		if sc.Valid && sc.Value < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectFindsThreshold(t *testing.T) {
	// Synthetic quality curve: psnr = 30 + 5·log2(bps/1000).
	evals := 0
	eval := func(bps float64) (float64, error) {
		evals++
		return 30 + 5*math.Log2(bps/1000), nil
	}
	// Target 40 dB → bps = 1000·2^2 = 4000.
	bps, psnr, err := BisectBitrate(40, 500, 64000, 20, eval)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 40 {
		t.Errorf("bisection returned infeasible point: %.2f dB", psnr)
	}
	if bps < 3900 || bps > 4600 {
		t.Errorf("bisection bitrate = %.0f, want ≈4000", bps)
	}
	if evals > 25 {
		t.Errorf("bisection used %d evaluations", evals)
	}
}

func TestBisectUnreachableTarget(t *testing.T) {
	eval := func(bps float64) (float64, error) { return 30, nil }
	if _, _, err := BisectBitrate(50, 1000, 8000, 5, eval); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestBisectValidation(t *testing.T) {
	eval := func(bps float64) (float64, error) { return 100, nil }
	if _, _, err := BisectBitrate(50, -1, 100, 5, eval); err == nil {
		t.Error("negative range accepted")
	}
	if _, _, err := BisectBitrate(50, 100, 50, 5, eval); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := BisectBitrate(50, 1, 100, 0, eval); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestBisectMonotoneConvergence(t *testing.T) {
	f := func(targetRaw uint8) bool {
		target := 30 + float64(targetRaw%20)
		eval := func(bps float64) (float64, error) {
			return 25 + 6*math.Log2(bps/500), nil
		}
		bps, psnr, err := BisectBitrate(target, 100, 1e7, 16, eval)
		if err != nil {
			return target > 25+6*math.Log2(1e7/500)
		}
		// Feasible, and within 25% of the analytic threshold.
		want := 500 * math.Exp2((target-25)/6)
		return psnr >= target && bps <= want*1.25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
