package telemetry

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a goroutine-safe strings.Builder for test capture.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

var linePat = regexp.MustCompile(`^\[(main|w\d+) \+\d+\.\d{3}s\] msg [0-9]+ from (main|w\d+)$`)

func TestLineWriterPrefixesAndNeverInterleaves(t *testing.T) {
	var out syncBuffer
	lw := NewLineWriter(&out)

	const workers, lines = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w)
			lw.Bind(label)
			defer lw.Unbind()
			for i := 0; i < lines; i++ {
				fmt.Fprintf(lw, "msg %d from %s\n", i, label)
			}
		}(w)
	}
	wg.Wait()

	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(got) != workers*lines {
		t.Fatalf("%d lines, want %d", len(got), workers*lines)
	}
	for _, line := range got {
		m := linePat.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed (interleaved?) line: %q", line)
		}
		// The prefix label must match the label baked into the payload:
		// a mismatch means a write was attributed to the wrong worker.
		if m[1] != m[2] {
			t.Errorf("line labeled %s carries %s's payload: %q", m[1], m[2], line)
		}
	}
}

func TestLineWriterUnboundIsMain(t *testing.T) {
	var out syncBuffer
	lw := NewLineWriter(&out)
	fmt.Fprintf(lw, "hello\n")
	if !strings.HasPrefix(out.String(), "[main +") {
		t.Errorf("unbound write = %q, want [main +...] prefix", out.String())
	}
}

func TestLineWriterLabeledIgnoresGoroutine(t *testing.T) {
	var out syncBuffer
	lw := NewLineWriter(&out)
	w := lw.Labeled("w7")

	// The label must hold across goroutines — fleet workers write from
	// short-lived HTTP and heartbeat goroutines that never Bind.
	done := make(chan struct{})
	go func() {
		defer close(done)
		fmt.Fprintf(w, "from a goroutine\n")
	}()
	<-done
	fmt.Fprintf(w, "from the caller\n")

	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2: %q", len(lines), out.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "[w7 +") {
			t.Errorf("line %q lacks the [w7 ...] label", l)
		}
	}
}

func TestLineWriterSplitsMultiLineWrites(t *testing.T) {
	var out syncBuffer
	lw := NewLineWriter(&out)
	if _, err := lw.Write([]byte("one\ntwo\n")); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2: %q", len(lines), out.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "[main +") {
			t.Errorf("line %q lacks prefix", l)
		}
	}
}
