//go:build !race

package video

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
