// Package predict implements intra prediction for the vbench codec:
// DC, horizontal, vertical, and plane prediction of 16×16 luma
// macroblocks from reconstructed neighbours, and DC/H/V prediction of
// 8×8 chroma blocks. The functions are normative: encoder and decoder
// share them, so intra reconstruction is bit-identical.
package predict

import (
	"fmt"

	"vbench/internal/codec/motion"
)

// Mode identifies an intra prediction mode.
type Mode int

// Intra prediction modes. Plane is only valid for 16×16 luma.
const (
	ModeDC Mode = iota
	ModeVertical
	ModeHorizontal
	ModePlane
	NumModes
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDC:
		return "dc"
	case ModeVertical:
		return "v"
	case ModeHorizontal:
		return "h"
	case ModePlane:
		return "plane"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Available reports whether mode m can be used for the block at
// (bx, by): directional and plane modes need their source neighbours
// to exist inside the frame.
func Available(m Mode, bx, by, size int, plane motion.Plane) bool {
	hasTop := by > 0
	hasLeft := bx > 0
	switch m {
	case ModeDC:
		return true
	case ModeVertical:
		return hasTop
	case ModeHorizontal:
		return hasLeft
	case ModePlane:
		return hasTop && hasLeft && bx+size <= plane.W && by+size <= plane.H
	}
	return false
}

// Predict writes the size×size intra prediction for the block at
// (bx, by) of the reconstructed plane into dst (stride size). The
// caller must have checked Available.
func Predict(dst []uint8, plane motion.Plane, bx, by, size int, m Mode) {
	PredictClipped(dst, plane, bx, by, size, m, by > 0, bx > 0)
}

// PredictClipped is Predict with explicit neighbour availability:
// slice-coded streams must not predict across the slice boundary even
// when the samples physically exist, so the caller states which
// neighbours are legal. Directional and plane modes require their
// neighbours; DC degrades gracefully.
func PredictClipped(dst []uint8, plane motion.Plane, bx, by, size int, m Mode, hasTop, hasLeft bool) {
	switch m {
	case ModeDC:
		predictDC(dst, plane, bx, by, size, hasTop, hasLeft)
	case ModeVertical:
		for x := 0; x < size; x++ {
			v := plane.Pix[(by-1)*plane.W+bx+x]
			for y := 0; y < size; y++ {
				dst[y*size+x] = v
			}
		}
	case ModeHorizontal:
		for y := 0; y < size; y++ {
			v := plane.Pix[(by+y)*plane.W+bx-1]
			row := dst[y*size : (y+1)*size]
			for x := range row {
				row[x] = v
			}
		}
	case ModePlane:
		predictPlane(dst, plane, bx, by, size)
	default:
		panic(fmt.Sprintf("predict: invalid mode %d", int(m)))
	}
}

func predictDC(dst []uint8, plane motion.Plane, bx, by, size int, hasTop, hasLeft bool) {
	sum := 0
	n := 0
	if hasTop && by > 0 {
		row := plane.Pix[(by-1)*plane.W:]
		for x := 0; x < size; x++ {
			sum += int(row[bx+x])
		}
		n += size
	}
	if hasLeft && bx > 0 {
		for y := 0; y < size; y++ {
			sum += int(plane.Pix[(by+y)*plane.W+bx-1])
		}
		n += size
	}
	dc := uint8(128)
	if n > 0 {
		dc = uint8((sum + n/2) / n)
	}
	for i := range dst[:size*size] {
		dst[i] = dc
	}
}

// predictPlane is the H.264-style plane (gradient) predictor
// generalized to size 8 or 16.
func predictPlane(dst []uint8, plane motion.Plane, bx, by, size int) {
	half := size / 2
	w := plane.W
	var hAcc, vAcc int
	for i := 1; i <= half; i++ {
		right := int(plane.Pix[(by-1)*w+bx+half-1+i])
		left := int(plane.Pix[(by-1)*w+bx+half-1-i])
		hAcc += i * (right - left)
		bot := int(plane.Pix[(by+half-1+i)*w+bx-1])
		top := int(plane.Pix[(by+half-1-i)*w+bx-1])
		vAcc += i * (bot - top)
	}
	var b, c int
	if size == 16 {
		b = (5*hAcc + 32) >> 6
		c = (5*vAcc + 32) >> 6
	} else {
		b = (17*hAcc + 16) >> 5
		c = (17*vAcc + 16) >> 5
	}
	a := 16 * (int(plane.Pix[(by+size-1)*w+bx-1]) + int(plane.Pix[(by-1)*w+bx+size-1]))
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := (a + b*(x-half+1) + c*(y-half+1) + 16) >> 5
			dst[y*size+x] = clip255(v)
		}
	}
}

func clip255(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
