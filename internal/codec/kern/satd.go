package kern

// satd4 computes the 4×4 Hadamard SATD of a residual block stored
// with the given row stride. The butterflies match transform.SATD4
// exactly; operating in place on the strided source removes the
// per-subblock copy the strided transform.SATD reference performs.
func satd4(r []int32, stride int) int64 {
	r0 := (*[4]int32)(r[0:])
	r1 := (*[4]int32)(r[stride:])
	r2 := (*[4]int32)(r[2*stride:])
	r3 := (*[4]int32)(r[3*stride:])

	// Horizontal butterflies, one row per set of four locals.
	s0 := int64(r0[0]) + int64(r0[2])
	d0 := int64(r0[0]) - int64(r0[2])
	s1 := int64(r0[1]) + int64(r0[3])
	d1 := int64(r0[1]) - int64(r0[3])
	m00, m01, m02, m03 := s0+s1, s0-s1, d0+d1, d0-d1

	s0 = int64(r1[0]) + int64(r1[2])
	d0 = int64(r1[0]) - int64(r1[2])
	s1 = int64(r1[1]) + int64(r1[3])
	d1 = int64(r1[1]) - int64(r1[3])
	m10, m11, m12, m13 := s0+s1, s0-s1, d0+d1, d0-d1

	s0 = int64(r2[0]) + int64(r2[2])
	d0 = int64(r2[0]) - int64(r2[2])
	s1 = int64(r2[1]) + int64(r2[3])
	d1 = int64(r2[1]) - int64(r2[3])
	m20, m21, m22, m23 := s0+s1, s0-s1, d0+d1, d0-d1

	s0 = int64(r3[0]) + int64(r3[2])
	d0 = int64(r3[0]) - int64(r3[2])
	s1 = int64(r3[1]) + int64(r3[3])
	d1 = int64(r3[1]) - int64(r3[3])
	m30, m31, m32, m33 := s0+s1, s0-s1, d0+d1, d0-d1

	// Vertical butterflies and accumulation, one column per line.
	var sum int64
	s0, d0, s1, d1 = m00+m20, m00-m20, m10+m30, m10-m30
	sum += abs64(s0+s1) + abs64(s0-s1) + abs64(d0+d1) + abs64(d0-d1)
	s0, d0, s1, d1 = m01+m21, m01-m21, m11+m31, m11-m31
	sum += abs64(s0+s1) + abs64(s0-s1) + abs64(d0+d1) + abs64(d0-d1)
	s0, d0, s1, d1 = m02+m22, m02-m22, m12+m32, m12-m32
	sum += abs64(s0+s1) + abs64(s0-s1) + abs64(d0+d1) + abs64(d0-d1)
	s0, d0, s1, d1 = m03+m23, m03-m23, m13+m33, m13-m33
	sum += abs64(s0+s1) + abs64(s0-s1) + abs64(d0+d1) + abs64(d0-d1)
	return sum
}

// SATD4 computes the Hadamard SATD of a packed 4×4 residual block
// (16 contiguous samples).
//
//vbench:noalloc
func SATD4(res []int32) int64 {
	return satd4(res, 4)
}

// SATD computes the Hadamard SATD of a w×h residual region (both
// multiples of 4) stored row-major with stride w, without copying
// 4×4 sub-blocks.
//
//vbench:noalloc
func SATD(res []int32, w, h int) int64 {
	var total int64
	for by := 0; by < h; by += 4 {
		row := res[by*w:]
		for bx := 0; bx+4 <= w; bx += 4 {
			total += satd4(row[bx:], w)
		}
	}
	return total
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
