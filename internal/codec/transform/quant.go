package transform

// Scalar quantization with a dead zone. QP follows the H.264
// convention: the quantizer step size doubles every 6 QP, spanning
// near-lossless (QP 0, step 0.625) to extremely coarse (QP 51,
// step ≈228).

// MinQP and MaxQP bound the valid quantizer range.
const (
	MinQP = 0
	MaxQP = 51
)

// qstepBaseQ6 holds the quantizer step for QP 0..5 in Q6 fixed point
// (×64); steps for higher QP are obtained by left-shifting by QP/6.
var qstepBaseQ6 = [6]int32{40, 45, 50, 57, 63, 71}

// QStepQ6 returns the quantizer step size for qp in Q6 fixed point.
func QStepQ6(qp int) int32 {
	if qp < MinQP || qp > MaxQP {
		panic("transform: QP out of range")
	}
	return qstepBaseQ6[qp%6] << uint(qp/6)
}

// QStep returns the quantizer step size as a float, for rate models.
func QStep(qp int) float64 { return float64(QStepQ6(qp)) / 64 }

// DeadZone selects the rounding offset used during quantization,
// expressed as a fraction of the step size in 1/64ths. Intra blocks
// round more aggressively toward nonzero (the H.264 convention is 1/3
// for intra, 1/6 for inter).
type DeadZone int32

// Standard dead zones.
const (
	DeadZoneIntra DeadZone = 21 // ≈ 1/3 in Q6
	DeadZoneInter DeadZone = 11 // ≈ 1/6 in Q6
)

// Quantize maps Q3 coefficients to quantization levels:
// level = sign(c) · floor((|c|·8 + dz·qstep/64) / qstep).
// coeffs and levels may alias.
func Quantize(coeffs []int32, levels []int32, qp int, dz DeadZone) {
	step := int64(QStepQ6(qp))
	offset := step * int64(dz) / 64
	for i, c := range coeffs {
		v := int64(c) * 8 // Q3 → Q6
		neg := v < 0
		if neg {
			v = -v
		}
		l := (v + offset) / step
		if neg {
			l = -l
		}
		levels[i] = int32(l)
	}
}

// Dequantize maps levels back to Q3 coefficients:
// c = round(level · qstep / 8). Both the encoder's reconstruction
// loop and the decoder use this exact function, so reconstruction is
// bit-identical.
func Dequantize(levels []int32, coeffs []int32, qp int) {
	step := int64(QStepQ6(qp))
	for i, l := range levels {
		coeffs[i] = int32(roundShift(int64(l)*step, 3)) // Q6 → Q3
	}
}

// ZigZag4 is the H.264 4×4 zigzag scan order (raster indices).
var ZigZag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// ZigZag8 is the JPEG/H.264 8×8 zigzag scan order (raster indices).
var ZigZag8 = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Scan reorders a raster block into zigzag order. n is 4 or 8.
func Scan(block, scanned []int32, n int) {
	switch n {
	case 4:
		for i, idx := range ZigZag4 {
			scanned[i] = block[idx]
		}
	case 8:
		for i, idx := range ZigZag8 {
			scanned[i] = block[idx]
		}
	default:
		panic("transform: unsupported scan size")
	}
}

// Unscan reorders a zigzag sequence back into raster order.
func Unscan(scanned, block []int32, n int) {
	switch n {
	case 4:
		for i, idx := range ZigZag4 {
			block[idx] = scanned[i]
		}
	case 8:
		for i, idx := range ZigZag8 {
			block[idx] = scanned[i]
		}
	default:
		panic("transform: unsupported scan size")
	}
}
