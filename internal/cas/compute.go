package cas

import (
	"vbench/internal/codec"
	"vbench/internal/metrics"
	"vbench/internal/video"
)

// Compute runs one real encode and measures it into an Outcome — the
// single definition of "what a cache entry contains", used by both
// the cold path of cached callers and uncached callers, so a warm
// cache hit is byte-for-byte what the cold run produced.
func Compute(eng *codec.Engine, seq *video.Sequence, cfg codec.Config) (*Outcome, error) {
	res, err := eng.Encode(seq, cfg)
	if err != nil {
		return nil, err
	}
	psnr, err := metrics.SequencePSNR(seq, res.Recon)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Bitstream:    res.Bitstream,
		PerFrameBits: res.PerFrameBits,
		FrameTypes:   res.FrameTypes,
		Counters:     res.Counters,
		Seconds:      res.Seconds,
		PSNR:         psnr,
		InputBytes:   seq.PixelCount() * 3 / 2,
	}, nil
}

// SeqKey derives the cache key for encoding seq with eng under cfg,
// using the pixel-content digest as the content identity.
func SeqKey(eng *codec.Engine, seq *video.Sequence, cfg codec.Config) Key {
	return KeyParts{
		Content:     ContentDigest(seq),
		Tools:       eng.Tools,
		Config:      cfg,
		Fingerprint: Fingerprint(),
	}.Key()
}
