// Package good exercises the analysistest runner itself against the
// toy analyzer defined in analysistest_test.go: calls to bad() are
// diagnostics, and functions named Fact* export a "marked <name>"
// function-level fact.
package good

func bad() {}

func ok() {}

func flagged() {
	bad() // want "call to bad"
	ok()
}

func suppressed() {
	//lint:ignore toy the call is deliberate here
	bad()
}

func FactCarrier() { // want toy:"marked FactCarrier"
	ok()
}

func FactAndDiag() { // want toy:"marked FactAndDiag"
	bad() // want "call to bad"
}
