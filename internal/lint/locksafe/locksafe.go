// Package locksafe guards the fleet's locking discipline with a
// must-hold dataflow analysis over each function's CFG. It reports
// three families of findings:
//
//  1. Lock-order cycles: every acquisition of mutex B while mutex A is
//     held contributes an A → B edge to a per-package order graph; an
//     acquisition that completes a cycle in that graph is a potential
//     ABBA deadlock, and is reported at the acquiring call. The edges
//     themselves are exported as function facts ("acquires B while
//     holding A") so tests can pin the derived model.
//
//  2. Self-deadlock: locking a mutex that the must-hold set says is
//     already held on every path to the call. sync mutexes are not
//     reentrant, so this blocks the goroutine forever.
//
//  3. Blocking operations inside critical sections: channel sends,
//     bare channel receives, selects without a default, ranging over a
//     channel, time.Sleep, WaitGroup.Wait, net/http round-trips,
//     syncx.CPUGate acquisition, and os package disk I/O
//     (ReadFile/WriteFile/Rename/ReadDir and friends) while any mutex
//     is held. These stall every contender of the lock for the
//     duration of the operation; the fix is to move the blocking step
//     outside the critical section or hand off through a buffered
//     channel. The disk rule is the cas.Store discipline: an index
//     lock orders map mutations, never I/O — stage the write first,
//     lock only to publish the entry.
//
// The held set is a Must (intersection) analysis, so joins keep only
// mutexes held on every inbound path: a lock taken in one branch of an
// if does not poison the code after the join. A deferred Unlock keeps
// the mutex in the held set to the end of the function, which is the
// truth the analysis cares about. The analysis is intraprocedural:
// a callee that blocks or locks is invisible unless it is one of the
// recognized blocking calls, so keep critical sections free of opaque
// calls as a matter of style.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vbench/internal/lint/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "detects lock-order cycles, self-deadlocks, and blocking operations inside mutex critical sections",
	Run:  run,
}

// orderEdge is one observed "acquired to while holding from".
type orderEdge struct {
	from, to string
	pos      token.Pos // the acquiring call
}

func run(pass *analysis.Pass) error {
	var edges []orderEdge
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			edges = append(edges, checkFunc(pass, fn, fd.Body)...)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A literal runs on its own goroutine or call
					// frame: fresh CFG, empty entry held set. Order
					// edges it contributes are attributed to the
					// enclosing declaration.
					edges = append(edges, checkFunc(pass, fn, lit.Body)...)
					return false
				}
				return true
			})
		}
	}
	reportCycles(pass, edges)
	return nil
}

// checkFunc runs the must-hold analysis over one function body and
// reports intra-function findings, returning the order edges observed.
func checkFunc(pass *analysis.Pass, fn *types.Func, body *ast.BlockStmt) []orderEdge {
	cfg := analysis.BuildCFG(body)
	comm := commStmts(body)
	flow := &analysis.Flow{
		Join: analysis.Must,
		Transfer: func(n ast.Node, in analysis.Set) analysis.Set {
			out := in
			mutated := false
			analysis.WalkNode(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.DeferStmt); ok {
					// A deferred Unlock releases at return; the mutex
					// stays held for the rest of the body.
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				key, unlock, ok := lockCall(pass, call)
				if !ok {
					return true
				}
				if !mutated {
					out = in.Clone()
					mutated = true
				}
				if unlock {
					delete(out, key)
				} else {
					out[key] = struct{}{}
				}
				return true
			})
			return out
		},
	}
	in := flow.Run(cfg)

	var edges []orderEdge
	flow.Replay(cfg, in, func(n ast.Node, state analysis.Set) {
		if comm[n] {
			// A select comm statement: the select head already
			// accounted for its blocking behaviour.
			return
		}
		st := state.Clone()
		checkBlockingNode(pass, n, st)
		analysis.WalkNode(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && len(st) > 0 {
					pass.Reportf(x.Pos(), "channel receive while holding %s", heldList(st))
				}
			case *ast.CallExpr:
				if key, unlock, ok := lockCall(pass, x); ok {
					if unlock {
						delete(st, key)
						return true
					}
					if st.Has(key) {
						pass.Reportf(x.Pos(), "mutex %s is locked again while already held (self-deadlock)", key)
					} else {
						for _, held := range st.Sorted() {
							edges = append(edges, orderEdge{from: held, to: key, pos: x.Pos()})
							pass.ExportFunctionFact(fn, "acquires %s while holding %s", key, held)
						}
					}
					st[key] = struct{}{}
					return true
				}
				if bn := blockingCall(pass, x); bn != "" && len(st) > 0 {
					pass.Reportf(x.Pos(), "call to %s may block while holding %s", bn, heldList(st))
				}
			}
			return true
		})
	})
	return edges
}

// checkBlockingNode handles the statement-shaped blocking constructs
// that the CFG places as whole nodes.
func checkBlockingNode(pass *analysis.Pass, n ast.Node, st analysis.Set) {
	if len(st) == 0 {
		return
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		pass.Reportf(n.Pos(), "channel send while holding %s", heldList(st))
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				return // has a default: non-blocking
			}
		}
		pass.Reportf(n.Pos(), "blocking select while holding %s", heldList(st))
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				pass.Reportf(n.Pos(), "range over channel while holding %s", heldList(st))
			}
		}
	}
}

// commStmts indexes every select comm statement in body so the replay
// can skip them (their receives/sends are judged at the select head).
func commStmts(body *ast.BlockStmt) map[ast.Node]bool {
	comm := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc := c.(*ast.CommClause); cc.Comm != nil {
					comm[cc.Comm] = true
				}
			}
		}
		return true
	})
	return comm
}

// lockCall classifies call as a sync mutex Lock/RLock (unlock=false)
// or Unlock/RUnlock (unlock=true) and returns the mutex identity key.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (key string, unlock, ok bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !analysis.FromPath(fn, "sync") {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		unlock = false
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return mutexKey(pass, sel.X), unlock, true
}

// mutexKey names a mutex so the same lock reached from different
// functions maps to the same order-graph node: struct fields key by
// owning type and field name, package-level vars by package and name,
// locals by declaration position (never shared across functions).
func mutexKey(pass *analysis.Pass, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok {
			if f, ok := s.Obj().(*types.Var); ok {
				return typeName(s.Recv()) + "." + f.Name()
			}
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			// A receiver or local of a type that embeds its mutex
			// (q.Lock()) keys by the owning type.
			if n := typeName(v.Type()); n != "" && !strings.HasPrefix(n, "sync.") && n != "Mutex" && n != "RWMutex" {
				return n + ".(embedded)"
			}
			return fmt.Sprintf("%s@%s", v.Name(), pass.Fset.Position(v.Pos()))
		}
	}
	return types.ExprString(expr)
}

// typeName renders the named type behind t (through pointers), or ""
// for unnamed types.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
		return "sync." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// blockingCall names a call known to block indefinitely or for a
// scheduled duration, or returns "".
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch {
	case analysis.FromPath(fn, "time") && name == "Sleep":
		return "time.Sleep"
	case analysis.FromPath(fn, "sync") && name == "Wait":
		// Only WaitGroup.Wait: Cond.Wait is designed to be called
		// with the lock held.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && typeName(sig.Recv().Type()) == "sync.WaitGroup" {
			return "sync.WaitGroup.Wait"
		}
	case analysis.FromPath(fn, "net/http"):
		switch name {
		case "Do", "Get", "Post", "Head", "PostForm", "Serve", "ListenAndServe", "ListenAndServeTLS":
			return "http." + name
		}
	case analysis.FromPackage(fn, "syncx"):
		switch name {
		case "Acquire", "AcquireOrQuit":
			return "syncx." + name
		}
	case analysis.FromPath(fn, "os"):
		// Package-level disk I/O only (sig.Recv() == nil): methods such
		// as File.Name or FileInfo.Size are cheap accessors and share
		// these names.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			switch name {
			case "ReadFile", "WriteFile", "Open", "OpenFile", "Create",
				"Rename", "Remove", "RemoveAll", "ReadDir", "Mkdir", "MkdirAll":
				return "os." + name
			}
		}
	}
	return ""
}

// heldList renders the held set for a diagnostic.
func heldList(st analysis.Set) string {
	return strings.Join(st.Sorted(), ", ")
}

// reportCycles builds the package's acquisition-order graph and flags
// every edge that sits on a cycle, rendering the shortest completing
// path in the message.
func reportCycles(pass *analysis.Pass, edges []orderEdge) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reported := map[token.Pos]bool{}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		if reported[e.pos] {
			continue
		}
		if path := findPath(adj, e.to, e.from); path != nil {
			reported[e.pos] = true
			cycle := append([]string{}, path...)
			cycle = append(cycle, e.to)
			pass.Reportf(e.pos, "acquiring %s while holding %s completes a lock-order cycle (%s)",
				e.to, e.from, strings.Join(cycle, " -> "))
		}
	}
}

// findPath returns a shortest node path from src to dst in adj
// (inclusive of both ends), or nil when unreachable.
func findPath(adj map[string]map[string]bool, src, dst string) []string {
	type item struct {
		node string
		path []string
	}
	seen := map[string]bool{src: true}
	queue := []item{{src, []string{src}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.node == dst {
			return it.path
		}
		next := make([]string, 0, len(adj[it.node]))
		for n := range adj[it.node] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if seen[n] {
				continue
			}
			seen[n] = true
			queue = append(queue, item{n, append(append([]string{}, it.path...), n)})
		}
	}
	return nil
}
