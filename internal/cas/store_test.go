package cas

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"vbench/internal/telemetry"
)

func testOutcome(payload byte, n int) *Outcome {
	bs := bytes.Repeat([]byte{payload}, n)
	return &Outcome{
		Bitstream:    bs,
		PerFrameBits: []int64{int64(n) * 8},
		FrameTypes:   []int{0},
		Seconds:      0.5,
		PSNR:         38.25,
		InputBytes:   int64(n) * 10,
	}
}

func testKey(s string) Key {
	return KeyParts{Content: s, Fingerprint: "t"}.Key()
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreRoundTrip: compute once, then hit from memory, then (after
// eviction) from disk, then from a fresh Store over the same
// directory — all byte-identical.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	key := testKey("round-trip")
	want := testOutcome(0xAB, 1000)

	computes := 0
	got, err := s.GetOrCompute(key, func() (*Outcome, error) { computes++; return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 || !reflect.DeepEqual(got, want) {
		t.Fatalf("cold path: computes=%d, outcome mismatch=%v", computes, !reflect.DeepEqual(got, want))
	}

	got, err = s.GetOrCompute(key, func() (*Outcome, error) { computes++; return nil, nil })
	if err != nil || computes != 1 {
		t.Fatalf("mem hit recomputed (computes=%d, err=%v)", computes, err)
	}
	if !bytes.Equal(got.Bitstream, want.Bitstream) {
		t.Fatal("mem hit returned different bitstream")
	}

	if n := s.EvictMem(); n != 1 {
		t.Fatalf("EvictMem evicted %d entries, want 1", n)
	}
	got, err = s.GetOrCompute(key, func() (*Outcome, error) { computes++; return nil, nil })
	if err != nil || computes != 1 {
		t.Fatalf("disk hit recomputed (computes=%d, err=%v)", computes, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disk hit returned different outcome")
	}

	s2 := openStore(t, dir)
	got2, ok := s2.Get(key)
	if !ok || !reflect.DeepEqual(got2, want) {
		t.Fatalf("fresh store over same dir: ok=%v, equal=%v", ok, reflect.DeepEqual(got2, want))
	}
	st := s2.Stats()
	if st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("rebuilt index: entries=%d bytes=%d", st.DiskEntries, st.DiskBytes)
	}
}

// TestStoreIntegrityRehash corrupts an entry on disk and verifies the
// read path detects it, deletes the file, and reports a miss instead
// of wrong data.
func TestStoreIntegrityRehash(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	key := testKey("corrupt-me")
	if err := s.Put(key, testOutcome(0x5C, 500)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	if _, ok := s2.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s2.Stats(); st.ReadErrors != 1 {
		t.Fatalf("read_errors=%d, want 1", st.ReadErrors)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
}

// TestStoreCrashLeftoverTemp simulates a writer that died between
// temp write and rename: Open must sweep the orphan and the entry
// must read as a miss.
func TestStoreCrashLeftoverTemp(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shard, ".tmp-deadbeef-123-1")
	if err := os.WriteFile(orphan, []byte("partial entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file survived Open: %v", err)
	}
	if st := s.Stats(); st.DiskEntries != 0 {
		t.Fatalf("orphan counted as an entry: %+v", st)
	}
}

// TestStoreSingleflight hammers one key from many goroutines and
// asserts the compute ran exactly once (run under -race in make
// check).
func TestStoreSingleflight(t *testing.T) {
	s := openStore(t, t.TempDir())
	key := testKey("singleflight")
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := s.GetOrCompute(key, func() (*Outcome, error) {
				computes.Add(1)
				return testOutcome(0x11, 2000), nil
			})
			if err != nil || len(out.Bitstream) != 2000 {
				t.Errorf("GetOrCompute: err=%v len=%d", err, len(out.Bitstream))
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses=%d, want 1", st.Misses)
	}
}

// TestStoreKeyIsolation: different keys never alias.
func TestStoreKeyIsolation(t *testing.T) {
	s := openStore(t, t.TempDir())
	a, b := testKey("a"), testKey("b")
	if err := s.Put(a, testOutcome(0xAA, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("key b hit entry stored under key a")
	}
	got, ok := s.Get(a)
	if !ok || got.Bitstream[0] != 0xAA {
		t.Fatalf("key a lookup: ok=%v", ok)
	}
}

// TestEntryRoundTrip pins the on-disk entry codec itself, including
// the empty-bitstream edge.
func TestEntryRoundTrip(t *testing.T) {
	for _, o := range []*Outcome{testOutcome(0x42, 333), {PSNR: 1, Seconds: 2}} {
		b, err := encodeEntry(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeEntry(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.PSNR != o.PSNR || got.Seconds != o.Seconds || !bytes.Equal(got.Bitstream, o.Bitstream) {
			t.Fatalf("entry round trip mismatch: %+v vs %+v", got, o)
		}
		if _, err := decodeEntry(b[:len(b)-1]); err == nil {
			t.Fatal("truncated entry decoded without error")
		}
	}
}
