package perf

import "fmt"

// ISA enumerates the SIMD instruction-set ladder of Figure 8. Each
// level subsumes the previous ones.
type ISA int

// The ISA ladder, oldest to newest.
const (
	ISAScalar ISA = iota
	ISASSE
	ISASSE2
	ISASSE3
	ISASSE4
	ISAAVX
	ISAAVX2
	NumISA
)

var isaNames = [NumISA]string{"scalar", "sse", "sse2", "sse3", "sse4", "avx", "avx2"}

// String returns the ISA's conventional lowercase name.
func (i ISA) String() string {
	if i < 0 || i >= NumISA {
		return fmt.Sprintf("isa(%d)", int(i))
	}
	return isaNames[i]
}

// ParseISA maps a name to an ISA level.
func ParseISA(name string) (ISA, error) {
	for i, n := range isaNames {
		if n == name {
			return ISA(i), nil
		}
	}
	return 0, fmt.Errorf("perf: unknown ISA %q", name)
}

// simdSpeedup gives the effective per-op speedup of each ISA level on
// vectorizable kernels, relative to scalar code. The numbers encode
// the paper's Figure 8 findings: SSE2 captured most of the gain
// (128-bit integer SIMD covers 8/16-bit pixel math), later extensions
// add modest increments, and AVX2's 256-bit width is underused because
// macroblock rows are narrower than the vector length.
var simdSpeedup = [NumISA]float64{
	ISAScalar: 1.0,
	ISASSE:    2.0, // 64→128-bit float only; limited for pixel integer math
	ISASSE2:   6.0, // 128-bit integer SIMD: the big jump
	ISASSE3:   6.3,
	ISASSE4:   6.9, // mpsadbw etc. help motion search
	ISAAVX:    7.1,
	ISAAVX2:   8.3, // 256-bit integer, partially usable
}

// SIMDSpeedup returns the effective throughput multiplier of isa on
// vectorizable kernels.
func SIMDSpeedup(isa ISA) float64 { return simdSpeedup[isa] }

// CostModel converts kernel op counts into deterministic execution
// time for one machine. CyclesPerOp is the scalar cost of one abstract
// op of each kernel; vectorizable kernels are divided by the SIMD
// speedup of the active ISA. Fixed-function encoders express their
// pipelining with Parallelism > 1 and pay explicit per-frame transfer
// overheads instead.
type CostModel struct {
	Name        string
	ClockHz     float64
	CyclesPerOp [NumKernels]float64

	// ISA applies SIMD discounts to vectorizable kernels; ignored if
	// Parallelism > 1 (fixed-function engines have their own datapaths).
	ISA ISA

	// Parallelism divides cycles of every vectorizable kernel, modeling
	// the macroblock-parallel pipelines of hardware encoders.
	Parallelism float64

	// FrameOverheadCycles is charged once per frame (e.g. host↔device
	// transfer latency for GPU encoders).
	FrameOverheadCycles float64

	// PerPixelOverheadCycles is charged once per pixel (e.g. DMA
	// bandwidth for raw frames crossing PCIe).
	PerPixelOverheadCycles float64
}

// Cycles returns the modeled cycle count for the recorded work.
func (m *CostModel) Cycles(c *Counters) float64 {
	var cycles float64
	par := m.Parallelism
	if par < 1 {
		par = 1
	}
	for k := Kernel(0); k < NumKernels; k++ {
		kc := float64(c.Ops[k]) * m.CyclesPerOp[k]
		if k.Vectorizable() {
			if m.Parallelism > 1 {
				kc /= par
			} else {
				kc /= SIMDSpeedup(m.ISA)
			}
		}
		cycles += kc
	}
	cycles += float64(c.Frames) * m.FrameOverheadCycles
	cycles += float64(c.Pixels) * m.PerPixelOverheadCycles
	return cycles
}

// Seconds converts the recorded work into modeled seconds.
func (m *CostModel) Seconds(c *Counters) float64 {
	if m.ClockHz <= 0 {
		panic("perf: cost model with non-positive clock")
	}
	return m.Cycles(c) / m.ClockHz
}

// KernelSeconds returns the modeled time attributable to each kernel,
// used by the SIMD-fraction analysis of Figures 7 and 8. Overheads are
// attributed to KControl.
func (m *CostModel) KernelSeconds(c *Counters) [NumKernels]float64 {
	var out [NumKernels]float64
	par := m.Parallelism
	if par < 1 {
		par = 1
	}
	for k := Kernel(0); k < NumKernels; k++ {
		kc := float64(c.Ops[k]) * m.CyclesPerOp[k]
		if k.Vectorizable() {
			if m.Parallelism > 1 {
				kc /= par
			} else {
				kc /= SIMDSpeedup(m.ISA)
			}
		}
		out[k] = kc / m.ClockHz
	}
	out[KControl] += (float64(c.Frames)*m.FrameOverheadCycles + float64(c.Pixels)*m.PerPixelOverheadCycles) / m.ClockHz
	return out
}

// ReferenceCPU models the paper's reference machine: an Intel Core
// i7-6700K at 4.0 GHz running AVX2 SIMD software encoders. The
// per-op cycle costs are calibrated so the modeled speed of the
// reference transcodes lands in the range real libx264 presets
// achieve on that part (tens of Mpixel/s single-threaded): one
// abstract op in this codebase stands for several instructions of a
// production encoder, which evaluates many more candidate partitions
// per block than the engine models structurally.
func ReferenceCPU() *CostModel {
	return &CostModel{
		Name:    "i7-6700K",
		ClockHz: 4.0e9,
		CyclesPerOp: [NumKernels]float64{
			KSAD:     8.0,
			KInterp:  12.0,
			KDCT:     10.0,
			KQuant:   8.0,
			KEntropy: 40.0, // serial bit wrangling, branchy
			KIntra:   10.0,
			KDeblock: 10.0,
			KControl: 64.0, // per-decision scalar overhead
			KDecode:  28.0,
		},
		ISA: ISAAVX2,
	}
}

// WithISA returns a copy of the model restricted to the given ISA
// level, for the Figure 8 ladder.
func (m *CostModel) WithISA(isa ISA) *CostModel {
	c := *m
	c.ISA = isa
	return &c
}
