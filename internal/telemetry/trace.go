// Package telemetry is the observability layer of the reproduction:
// a span tracer that exports Chrome trace-event JSON (open the file in
// chrome://tracing or Perfetto), a process-wide metrics registry with
// a deterministic snapshot serializer, a line-oriented progress writer
// that keeps parallel workers from interleaving output, and an opt-in
// debug HTTP endpoint exposing pprof and expvar.
//
// Everything is nil-safe and cheap when disabled: with no tracer
// installed, StartSpan returns a nil *Span whose methods are no-ops,
// StagesEnabled reports false so instrumented code skips its clock
// reads, and the deterministic scoring pipeline produces byte-identical
// output whether or not telemetry is active (the spans and counters
// observe the computation; they never steer it).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans as Chrome trace-event "complete" events. All
// methods are safe for concurrent use. Each top-level span gets its
// own track (tid); child spans share their parent's track, which is
// how the trace viewer nests them.
type Tracer struct {
	start time.Time
	proc  string
	tids  atomic.Int64

	mu     sync.Mutex
	events []traceEvent
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// NewProcessTracer returns a tracer whose Chrome-trace process is
// labeled name. MergeChromeTraces keys stitched processes on the
// label, so fleet binaries name themselves (e.g. "vbenchd-master",
// "worker-w1") to stay distinguishable in one merged timeline.
func NewProcessTracer(name string) *Tracer {
	return &Tracer{start: time.Now(), proc: name}
}

// traceEvent is one completed span, in the tracer's clock domain.
type traceEvent struct {
	name    string
	tid     int64
	ts, dur time.Duration
	args    []Arg
}

// Arg is one key/value annotation on a span. Values are serialized
// with encoding/json; keep them to numbers and strings.
type Arg struct {
	Key string
	Val interface{}
}

// Span is an in-progress interval. A nil *Span is valid and inert, so
// callers never need to guard instrumentation sites.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	start time.Time

	mu   sync.Mutex
	args []Arg
}

// Start opens a top-level span on a fresh track. Safe on a nil tracer
// (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: t.tids.Add(1), start: time.Now()}
}

// Child opens a nested span on the receiver's track. The child must
// End before its parent for the trace viewer to nest it correctly.
// Safe on a nil span (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.tid, start: time.Now()}
}

// Span-identity argument keys used for cross-process stitching: a
// span that sets ArgSpanID can be named as the parent of spans in
// other processes' traces via ArgParentID, and MergeChromeTraces
// resolves the links when it stitches the files together.
const (
	ArgSpanID   = "span_id"
	ArgParentID = "parent_span_id"
)

// SetID assigns the span a stitchable identity. IDs must be unique
// across every process contributing to one merged trace; the fleet
// derives them from (job, attempt), which the master allocates.
func (s *Span) SetID(id string) { s.Arg(ArgSpanID, id) }

// SetParent names the span's parent by the ID another process (or
// this one) assigned with SetID. The link is resolved at merge time;
// an unknown parent makes the span an orphan in the merge stats.
func (s *Span) SetParent(id string) { s.Arg(ArgParentID, id) }

// Arg annotates the span. Safe on a nil span. Arguments appear in the
// trace viewer in the order they were added.
func (s *Span) Arg(key string, val interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.args = append(s.args, Arg{Key: key, Val: val})
	s.mu.Unlock()
}

// End closes the span and records it. Safe on a nil span; ending a
// span twice records it twice, so don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	t := s.t
	s.mu.Lock()
	args := s.args
	s.mu.Unlock()
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		name: s.name,
		tid:  s.tid,
		ts:   s.start.Sub(t.start),
		dur:  now.Sub(s.start),
		args: args,
	})
	t.mu.Unlock()
}

// Len reports how many spans have been recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteChromeTrace serializes the recorded spans in the Chrome
// trace-event JSON object format. The output loads directly into
// chrome://tracing and Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()

	proc := t.proc
	if proc == "" {
		proc = "vbench"
	}
	procJSON, err := json.Marshal(proc)
	if err != nil {
		return err
	}
	bw := &errWriter{w: w}
	bw.printf(`{"displayTimeUnit":"ms","traceEvents":[`)
	bw.printf(`{"ph":"M","pid":1,"name":"process_name","args":{"name":%s}}`, procJSON)
	// clock_sync anchors the tracer's relative timestamps to the wall
	// clock, which is what lets the merge step align traces recorded
	// by different processes onto one timeline.
	bw.printf(",\n{\"ph\":\"M\",\"pid\":1,\"name\":\"clock_sync\",\"args\":{\"epoch_us\":%d}}", t.start.UnixMicro())
	for _, e := range events {
		name, err := json.Marshal(e.name)
		if err != nil {
			return err
		}
		bw.printf(",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":%s",
			e.tid, float64(e.ts)/float64(time.Microsecond), float64(e.dur)/float64(time.Microsecond), name)
		if len(e.args) > 0 {
			bw.printf(",\"args\":{")
			for i, a := range e.args {
				k, err := json.Marshal(a.Key)
				if err != nil {
					return err
				}
				v, err := json.Marshal(a.Val)
				if err != nil {
					return err
				}
				if i > 0 {
					bw.printf(",")
				}
				bw.printf("%s:%s", k, v)
			}
			bw.printf("}")
		}
		bw.printf("}")
	}
	bw.printf("]}\n")
	return bw.err
}

// errWriter latches the first write error so serialization code can
// skip per-write checks.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// active is the installed process-wide tracer (nil = tracing off).
var active atomic.Pointer[Tracer]

// stages gates the fine-grained stage clocks inside the codec: they
// read time.Now per macroblock candidate, so they stay off unless a
// trace or metrics snapshot was requested.
var stages atomic.Bool

// SetTracer installs (or, with nil, removes) the process-wide tracer
// used by StartSpan.
func SetTracer(t *Tracer) { active.Store(t) }

// ActiveTracer returns the installed tracer, or nil.
func ActiveTracer() *Tracer { return active.Load() }

// StartSpan opens a top-level span on the installed tracer; it returns
// nil (an inert span) when tracing is off.
func StartSpan(name string) *Span { return ActiveTracer().Start(name) }

// EnableStages switches the codec's per-stage clocks on or off.
func EnableStages(on bool) { stages.Store(on) }

// StagesEnabled reports whether instrumented code should sample its
// stage clocks.
func StagesEnabled() bool { return stages.Load() }
