// Corpus-selection: run the paper's video-selection methodology end
// to end (Section 4.1).
//
// The corpus model stands in for six months of production transcode
// logs: thousands of (resolution, framerate, entropy) categories
// weighted by transcoding time. Weighted k-means over the linearized
// feature space picks k cluster centroids; each cluster is represented
// by its heaviest member category (the mode). The result is a compact
// benchmark that is representative (modes carry real weight) while
// covering the space (every category belongs to some cluster).
package main

import (
	"fmt"
	"log"

	"vbench/internal/cluster"
	"vbench/internal/corpus"
)

func main() {
	model := corpus.NewModel()
	fmt.Printf("corpus model: %d categories\n", len(model.Categories))

	// How concentrated is the corpus? (The paper: 36 res×fps cells
	// cover >95% of uploads.)
	var totalW float64
	for _, c := range model.Categories {
		totalW += c.Weight
	}
	fmt.Printf("total category weight: %.3f (normalized)\n\n", totalW)

	for _, k := range []int{5, 15, 30} {
		selected, err := model.Select(k, 1)
		if err != nil {
			log.Fatal(err)
		}
		// Weight captured by the selected categories' clusters.
		res, err := cluster.KMeans(model.Features(), model.Weights(), cluster.Config{K: k, Restarts: 8, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%-3d inertia=%.4f  selected categories:\n", k, res.Inertia)
		for _, c := range selected {
			fmt.Printf("    %5d Kpixel  %2d fps  entropy %6.2f  (weight %.2f%%)\n",
				c.KPixels, c.FPS, c.Entropy, c.Weight*100)
		}
		fmt.Println()
	}

	fmt.Println("Compare k=15 with the published Table 2: four resolution tiers")
	fmt.Println("(480p/720p/1080p/4K) and entropies spanning slideshows (~0.2)")
	fmt.Println("to high-motion content (~8) — the structure k-means recovers here.")
}
