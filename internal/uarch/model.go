// Package uarch models the microarchitectural behaviour of video
// transcoding, reproducing the paper's characterization study
// (Figures 5–8). The encoder's kernel-level work counters are expanded
// into an instruction-level model and synthetic instruction, branch,
// and data reference traces, which drive real set-associative cache
// simulators (internal/cachesim) and a gshare branch predictor
// (internal/branchsim). The paper's headline µarch findings all emerge
// from structure rather than curve fitting:
//
//   - I-cache MPKI rises with content entropy because complex content
//     activates more compression tools per macroblock, growing the
//     per-MB code working set beyond the 32KB L1I;
//   - branch MPKI rises with entropy because coefficient-significance
//     and mode branches are data dependent, and their outcomes become
//     less biased as content complexity grows;
//   - LLC MPKI falls with entropy because the data footprint depends
//     only on resolution while executed instructions grow with
//     entropy;
//   - scalar code stays near 60% of cycles because entropy coding and
//     control never vectorize.
package uarch

import (
	"vbench/internal/perf"
)

// instrPerOp expands one abstract kernel op into retired
// macro-instructions (scalar ISA). Vectorizable kernels divide by the
// active SIMD lane count separately.
var instrPerOp = [perf.NumKernels]float64{
	perf.KSAD:     1.3,
	perf.KInterp:  2.2,
	perf.KDCT:     1.6,
	perf.KQuant:   1.8,
	perf.KEntropy: 9.0,
	perf.KIntra:   1.6,
	perf.KDeblock: 2.0,
	perf.KControl: 24.0,
	perf.KDecode:  7.0,
}

// invocationOverheadInstr is the call/setup cost charged per kernel
// invocation.
const invocationOverheadInstr = 40.0

// codeBytes is the static code footprint of each kernel's active
// loops (used by the I-cache trace generator). Entropy coding and
// control code are large and branchy; pixel kernels are compact
// unrolled loops.
var codeBytes = [perf.NumKernels]float64{
	perf.KSAD:     2048,
	perf.KInterp:  7168,
	perf.KDCT:     5120,
	perf.KQuant:   3072,
	perf.KEntropy: 16384,
	perf.KIntra:   6144,
	perf.KDeblock: 4096,
	perf.KControl: 26624,
	perf.KDecode:  12288,
}

// kernelBase assigns each kernel a distinct virtual code address.
func kernelBase(k perf.Kernel) uint64 { return 0x400000 + uint64(k)*0x40000 }

// vecScalarResidue is the fraction of a vectorizable kernel's work
// that stays scalar even in the AVX2 build (loop control, tails,
// gather/shuffle glue).
var vecScalarResidue = [perf.NumKernels]float64{
	perf.KSAD:     0.12,
	perf.KInterp:  0.18,
	perf.KDCT:     0.18,
	perf.KQuant:   0.20,
	perf.KIntra:   0.30,
	perf.KDeblock: 0.28,
}

// prefClassShare[k][isa] is how the vector portion of kernel k's work
// distributes across SIMD classes in a full AVX2 build (the paper's
// Figure 8 right-hand bar: AVX2 only partially replaces older
// extensions because narrow blocks can't fill 256-bit vectors).
// Shares are of the kernel's vector work and sum to 1 per kernel.
var prefClassShare = [perf.NumKernels][perf.NumISA]float64{
	perf.KSAD:     {perf.ISASSE2: 0.22, perf.ISASSE4: 0.30, perf.ISAAVX: 0.06, perf.ISAAVX2: 0.42},
	perf.KInterp:  {perf.ISASSE2: 0.38, perf.ISASSE3: 0.08, perf.ISASSE4: 0.08, perf.ISAAVX: 0.06, perf.ISAAVX2: 0.40},
	perf.KDCT:     {perf.ISASSE2: 0.44, perf.ISASSE4: 0.08, perf.ISAAVX: 0.08, perf.ISAAVX2: 0.40},
	perf.KQuant:   {perf.ISASSE2: 0.52, perf.ISASSE4: 0.10, perf.ISAAVX2: 0.38},
	perf.KIntra:   {perf.ISASSE2: 0.58, perf.ISASSE4: 0.12, perf.ISAAVX2: 0.30},
	perf.KDeblock: {perf.ISASSE2: 0.62, perf.ISASSE4: 0.14, perf.ISAAVX2: 0.24},
}

// classLaneSpeed is the raw per-op speedup of vector work executed in
// each SIMD class relative to scalar execution.
var classLaneSpeed = [perf.NumISA]float64{
	perf.ISAScalar: 1,
	perf.ISASSE:    2,
	perf.ISASSE2:   7,
	perf.ISASSE3:   7.4,
	perf.ISASSE4:   8.2,
	perf.ISAAVX:    8.6,
	perf.ISAAVX2:   11.5,
}

// Instructions models the retired macro-instruction count of an
// encode at a given ISA level: vector work retires fewer instructions
// as lanes widen; scalar residue and sequential kernels do not change.
func Instructions(c *perf.Counters, isa perf.ISA) float64 {
	var total float64
	for k := perf.Kernel(0); k < perf.NumKernels; k++ {
		base := float64(c.Ops[k]) * instrPerOp[k]
		if k.Vectorizable() {
			sc := vecScalarResidue[k]
			vec := base * (1 - sc)
			var vecInstr float64
			for class := perf.ISA(0); class < perf.NumISA; class++ {
				share := prefClassShare[k][class]
				if share == 0 {
					continue
				}
				eff := class
				if eff > isa {
					eff = isa
				}
				vecInstr += vec * share / classLaneSpeed[eff]
			}
			base = base*sc + vecInstr
		}
		total += base + float64(c.Invocations[k])*invocationOverheadInstr
	}
	return total
}

// KernelClassSeconds attributes modeled execution time to (kernel,
// SIMD class) pairs for a build at the given ISA level, on a machine
// with the given clock. Non-vectorizable kernels and scalar residue
// land in the Scalar class.
func KernelClassSeconds(c *perf.Counters, isa perf.ISA, clockHz float64) [perf.NumKernels][perf.NumISA]float64 {
	var out [perf.NumKernels][perf.NumISA]float64
	for k := perf.Kernel(0); k < perf.NumKernels; k++ {
		// Cycles for one unit of work ≈ instructions (CPI folded into
		// the class lane speeds).
		base := float64(c.Ops[k])*instrPerOp[k] + float64(c.Invocations[k])*invocationOverheadInstr
		if !k.Vectorizable() {
			out[k][perf.ISAScalar] += base / clockHz
			continue
		}
		sc := vecScalarResidue[k]
		out[k][perf.ISAScalar] += base * sc / clockHz
		vec := base * (1 - sc)
		for class := perf.ISA(0); class < perf.NumISA; class++ {
			share := prefClassShare[k][class]
			if share == 0 {
				continue
			}
			eff := class
			if eff > isa {
				eff = isa
			}
			out[k][eff] += vec * share / classLaneSpeed[eff] / clockHz
		}
	}
	return out
}

// ClassSeconds sums KernelClassSeconds over kernels: total modeled
// time per SIMD class, the quantity plotted in Figures 7 and 8.
func ClassSeconds(c *perf.Counters, isa perf.ISA, clockHz float64) [perf.NumISA]float64 {
	per := KernelClassSeconds(c, isa, clockHz)
	var out [perf.NumISA]float64
	for k := range per {
		for cl := range per[k] {
			out[cl] += per[k][cl]
		}
	}
	return out
}

// TotalSeconds is the sum of ClassSeconds.
func TotalSeconds(c *perf.Counters, isa perf.ISA, clockHz float64) float64 {
	cs := ClassSeconds(c, isa, clockHz)
	var t float64
	for _, v := range cs {
		t += v
	}
	return t
}
