package main

import (
	"reflect"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		want result
		ok   bool
	}{
		{
			line: "BenchmarkEncodeAllocs/wave=on-8   \t  12 \t 93312 ns/op \t 305 allocs/op",
			want: result{
				Name:       "BenchmarkEncodeAllocs/wave=on",
				GOMAXPROCS: 8,
				Params:     map[string]string{"wave": "on"},
				Iterations: 12,
				Metrics:    map[string]float64{"ns/op": 93312, "allocs/op": 305},
			},
			ok: true,
		},
		{
			// GOMAXPROCS=1: go test appends no suffix.
			line: "BenchmarkHarnessGrid 3 41690 ns/op",
			want: result{
				Name:       "BenchmarkHarnessGrid",
				GOMAXPROCS: 1,
				Iterations: 3,
				Metrics:    map[string]float64{"ns/op": 41690},
			},
			ok: true,
		},
		{
			// A dash inside the benchmark's own name survives; only a
			// trailing integer suffix is the procs count.
			line: "BenchmarkTwo-Pass/rc=2pass-4 7 100 ns/op",
			want: result{
				Name:       "BenchmarkTwo-Pass/rc=2pass",
				GOMAXPROCS: 4,
				Params:     map[string]string{"rc": "2pass"},
				Iterations: 7,
				Metrics:    map[string]float64{"ns/op": 100},
			},
			ok: true,
		},
		{line: "ok  \tvbench\t1.2s", ok: false},
		{line: "goos: linux", ok: false},
	}
	for _, tc := range cases {
		got, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseBenchLine(%q) =\n %+v\nwant\n %+v", tc.line, got, tc.want)
		}
	}
}
