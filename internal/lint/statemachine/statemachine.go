// Package statemachine enforces the fleet job lifecycle at lint time.
// The fleet package declares its transition relation as data —
//
//	var stateNames = [numStates]string{"pending", "leased", ...}
//	var validEdge  = [numStates][numStates]bool{Pending: {Leased: true}, ...}
//
// and funnels every mutation through Queue.setState, which panics on
// an edge not in the table. The panic is a last line of defence; this
// analyzer moves the check to lint time by parsing the two tables out
// of the package source and verifying, in any package that declares
// both:
//
//  1. every write to a .State field (assignment or ++/--) happens
//     inside setState — the designated choke point;
//  2. any pair of adjacent state-name string literals passed to a call
//     (the record/observer idiom: `q.record(j, "none", "pending", ...)`)
//     is an edge of validEdge, where "none" → stateNames[0] is the
//     distinguished submission pseudo-edge;
//  3. a string literal compared against State.String() names a real
//     state — catching the silent typo ("leaseed") that a dynamic
//     check can never reach.
//
// Packages that do not declare both tables are ignored, so the
// analyzer is inert everywhere but the state-machine owner (and its
// testdata mirrors).
package statemachine

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"vbench/internal/lint/analysis"
)

// Analyzer is the statemachine pass.
var Analyzer = &analysis.Analyzer{
	Name: "statemachine",
	Doc:  "verifies fleet state mutations go through setState and literal transitions are valid edges",
	Run:  run,
}

// machine is the transition relation parsed from package source.
type machine struct {
	names []string        // index → state name
	index map[string]int  // state name → index
	edge  map[[2]int]bool // valid transitions
}

func run(pass *analysis.Pass) error {
	m := parseMachine(pass)
	if m == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			inSetState := isFunc && fd.Name.Name == "setState"
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if !inSetState && isStateField(pass, lhs) {
							pass.Reportf(lhs.Pos(), "job state must be mutated through setState, not assigned directly")
						}
					}
				case *ast.IncDecStmt:
					if !inSetState && isStateField(pass, n.X) {
						pass.Reportf(n.Pos(), "job state must be mutated through setState, not assigned directly")
					}
				case *ast.CallExpr:
					checkLiteralEdges(pass, m, n)
				case *ast.BinaryExpr:
					checkStateCompare(pass, m, n)
				}
				return true
			})
		}
	}
	return nil
}

// isStateField reports whether expr selects a struct field named
// State whose type is this package's State named type.
func isStateField(pass *analysis.Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "State" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return isStateType(pass, s.Obj().Type())
}

// isStateType reports whether t is the named type State declared in
// the package under analysis.
func isStateType(pass *analysis.Pass, t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "State" && n.Obj().Pkg() == pass.Pkg
}

// checkLiteralEdges validates adjacent state-name literal pairs in a
// call's arguments against the transition table.
func checkLiteralEdges(pass *analysis.Pass, m *machine, call *ast.CallExpr) {
	lits := make([]string, len(call.Args))
	for i, a := range call.Args {
		if bl, ok := ast.Unparen(a).(*ast.BasicLit); ok {
			if v, err := strconv.Unquote(bl.Value); err == nil {
				lits[i] = v
			}
		}
	}
	for i := 0; i+1 < len(lits); i++ {
		from, to := lits[i], lits[i+1]
		if !m.isState(from) || !m.isState(to) {
			continue
		}
		if from == "none" {
			if to != m.names[0] {
				pass.Reportf(call.Args[i].Pos(), "transition %q -> %q is invalid: submission must enter at %q", from, to, m.names[0])
			}
			continue
		}
		if to == "none" {
			pass.Reportf(call.Args[i].Pos(), "transition %q -> %q is invalid: %q is only a source (submission)", from, to, "none")
			continue
		}
		if !m.edge[[2]int{m.index[from], m.index[to]}] {
			pass.Reportf(call.Args[i].Pos(), "literal transition %q -> %q is not an edge of the state machine", from, to)
		}
	}
}

// isState reports whether s names a state or the submission source.
func (m *machine) isState(s string) bool {
	if s == "none" {
		return true
	}
	_, ok := m.index[s]
	return ok
}

// checkStateCompare flags a string literal compared against
// State.String() that names no state.
func checkStateCompare(pass *analysis.Pass, m *machine, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for lit, other := range map[ast.Expr]ast.Expr{b.X: b.Y, b.Y: b.X} {
		bl, ok := ast.Unparen(lit).(*ast.BasicLit)
		if !ok {
			continue
		}
		v, err := strconv.Unquote(bl.Value)
		if err != nil || !isStateString(pass, other) {
			continue
		}
		if v != "none" {
			if _, ok := m.index[v]; !ok {
				pass.Reportf(bl.Pos(), "unknown state name %q (states: %s)", v, strings.Join(m.names, ", "))
			}
		}
	}
}

// isStateString reports whether expr is a String() call on the
// package's State type.
func isStateString(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "String" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isStateType(pass, sig.Recv().Type())
}

// parseMachine extracts stateNames and validEdge from the package
// source, or returns nil when either is absent or unparseable.
func parseMachine(pass *analysis.Pass) *machine {
	var namesLit, edgeLit *ast.CompositeLit
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				switch vs.Names[0].Name {
				case "stateNames":
					namesLit = cl
				case "validEdge":
					edgeLit = cl
				}
			}
		}
	}
	if namesLit == nil || edgeLit == nil {
		return nil
	}
	m := &machine{index: map[string]int{}, edge: map[[2]int]bool{}}
	for i, elt := range namesLit.Elts {
		idx, v := keyedElt(pass, i, elt)
		bl, ok := ast.Unparen(v).(*ast.BasicLit)
		if !ok {
			return nil
		}
		name, err := strconv.Unquote(bl.Value)
		if err != nil {
			return nil
		}
		for len(m.names) <= idx {
			m.names = append(m.names, "")
		}
		m.names[idx] = name
		m.index[name] = idx
	}
	for i, elt := range edgeLit.Elts {
		from, row := keyedElt(pass, i, elt)
		rowLit, ok := ast.Unparen(row).(*ast.CompositeLit)
		if !ok {
			return nil
		}
		for j, cell := range rowLit.Elts {
			to, v := keyedElt(pass, j, cell)
			if tv, ok := pass.TypesInfo.Types[ast.Unparen(v)]; ok && tv.Value != nil &&
				tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value) {
				m.edge[[2]int{from, to}] = true
			}
		}
	}
	return m
}

// keyedElt resolves one composite-literal element to its index:
// keyed elements evaluate the constant key, positional ones use the
// running position. (Mixed keyed/positional literals resolve the
// positional entries by slice position, which is wrong in general Go
// but does not occur in the table idiom this parses.)
func keyedElt(pass *analysis.Pass, pos int, elt ast.Expr) (int, ast.Expr) {
	kv, ok := elt.(*ast.KeyValueExpr)
	if !ok {
		return pos, elt
	}
	if tv, ok := pass.TypesInfo.Types[kv.Key]; ok && tv.Value != nil {
		if n, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return int(n), kv.Value
		}
	}
	return pos, kv.Value
}
