package policy

import (
	"reflect"
	"testing"

	"vbench/internal/corpus"
)

func testWorkload(requests int) Workload {
	// The request rate is deliberately sparse (a few per hour): at
	// public-cloud prices storage rent only overtakes re-transcoding
	// when the next request is months out, so a busy stream would have
	// the cost model store everything and the orderings below would
	// degenerate.
	return Workload{
		Renditions:     DefaultCatalogue(20, 5),
		Model:          corpus.DefaultPopularity(),
		Requests:       requests,
		RequestsPerSec: 1e-3,
		Seed:           42,
	}
}

// TestSimulateDeterministic: same workload, same seed, same policy —
// byte-identical report, the property the sweep flag's output rests on.
func TestSimulateDeterministic(t *testing.T) {
	for _, p := range []Policy{KeepAll{}, LRUBytes{Cap: 256 << 20}, DefaultCostAware()} {
		a, err := Simulate(testWorkload(5000), p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(testWorkload(5000), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two identical simulations diverged:\n%+v\n%+v", p.Name(), a, b)
		}
	}
}

// premiumCost prices storage high enough (a replicated low-latency
// tier, ~600× cold object storage) that the break-even rank falls
// inside the test catalogue; at default cold-storage prices the model
// correctly stores nearly everything, which pins nothing.
func premiumCost() CostAware {
	p := DefaultCostAware()
	p.StoragePricePerByteSecond *= 600
	return p
}

// TestPolicyOrderings pins the qualitative shape of the trade-off
// space: keep-all has the best hit ratio and the worst footprint, a
// byte cap trades hits for bytes, and the cost model lands between.
func TestPolicyOrderings(t *testing.T) {
	w := testWorkload(20000)
	keep, err := Simulate(w, KeepAll{})
	if err != nil {
		t.Fatal(err)
	}
	lru, err := Simulate(w, LRUBytes{Cap: keep.PeakBytes / 4})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := Simulate(w, premiumCost())
	if err != nil {
		t.Fatal(err)
	}

	if keep.HitRatio <= 0.1 || keep.HitRatio >= 1 {
		t.Errorf("keep-all hit ratio out of range: %+v", keep)
	}
	if keep.RecomputeSeconds <= 0 {
		t.Errorf("keep-all shows no cold misses: %+v", keep)
	}
	if lru.HitRatio > keep.HitRatio {
		t.Errorf("capped LRU beats keep-all on hits: lru=%+v keep=%+v", lru, keep)
	}
	if lru.PeakBytes > keep.PeakBytes/4+(64<<20) {
		t.Errorf("LRU exceeded its cap: %+v", lru)
	}
	if lru.RecomputeSeconds < keep.RecomputeSeconds {
		t.Errorf("capped LRU recomputes less than keep-all: lru=%+v keep=%+v", lru, keep)
	}
	// The cost model drops tail renditions: smaller footprint than
	// keep-all, at some hit-ratio cost, but it must still store the
	// popular head (nonzero footprint, nonzero hits).
	if cost.EndBytes >= keep.EndBytes || cost.EndBytes == 0 {
		t.Errorf("cost-aware footprint not between 0 and keep-all: cost=%+v keep=%+v", cost, keep)
	}
	if cost.HitRatio > keep.HitRatio || cost.Hits == 0 {
		t.Errorf("cost-aware hit ratio out of range: cost=%+v keep=%+v", cost, keep)
	}
}

// TestCostAwareAdmission checks the break-even directly: a popular
// rendition is stored, a deep-tail one with the same size/cost is not.
func TestCostAwareAdmission(t *testing.T) {
	w := testWorkload(1)
	p := premiumCost()
	head := Rendition{Bytes: 50 << 20, EncodeSeconds: 30000, Rank: 1}
	tail := head
	tail.Rank = 20 * 15 // deepest rank in the catalogue
	if !p.Admit(head, w) {
		t.Error("cost-aware dropped the most popular rendition")
	}
	if p.Admit(tail, w) {
		t.Error("cost-aware stored the least popular rendition")
	}
}

// TestSweepSharedStream: every policy in one sweep sees the same
// request stream, so their Requests agree and hit counts are
// comparable.
func TestSweepSharedStream(t *testing.T) {
	reps, err := Sweep(testWorkload(3000), KeepAll{}, LRUBytes{Cap: 128 << 20}, DefaultCostAware())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	names := map[string]bool{}
	for _, r := range reps {
		if r.Requests != 3000 {
			t.Errorf("%s saw %d requests", r.Policy, r.Requests)
		}
		names[r.Policy] = true
	}
	if len(names) != 3 {
		t.Errorf("duplicate policy names: %v", names)
	}
}

// TestSimulateRejectsBadWorkloads: the validation errors, not NaNs.
func TestSimulateRejectsBadWorkloads(t *testing.T) {
	if _, err := Simulate(Workload{Requests: 10, RequestsPerSec: 1}, KeepAll{}); err == nil {
		t.Error("empty catalogue accepted")
	}
	w := testWorkload(0)
	if _, err := Simulate(w, KeepAll{}); err == nil {
		t.Error("zero requests accepted")
	}
	w = testWorkload(10)
	w.RequestsPerSec = 0
	if _, err := Simulate(w, KeepAll{}); err == nil {
		t.Error("zero request rate accepted")
	}
}
