// Package service simulates the video-sharing-infrastructure context
// the benchmark models (Section 2.5 and Figure 3 of the paper): a
// transcoding fleet receives uploads, produces the universal and
// distribution (VOD) transcodes, serves watch traffic whose volume
// follows the power-law popularity distribution, and re-transcodes
// videos that turn out to be popular at high effort — trading one-off
// compute for multiplied storage and egress savings.
//
// The simulator is discrete-event over upload arrivals and uses the
// real encoders of this repository (with their deterministic cost
// models) for every transcode, so fleet sizing, queue waits, and the
// compute/storage/egress cost balance all derive from measured work,
// not assumed constants.
package service

import (
	"container/heap"
	"errors"
	"fmt"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/metrics"
	"vbench/internal/rng"
	"vbench/internal/telemetry"
)

// Telemetry handles for the fleet simulator. Queue waits are simulated
// seconds (discrete-event time), not wall time, so observing them
// costs one atomic add per scheduled job.
var (
	obsTranscodes  = telemetry.GetCounter("service.transcodes")
	obsUtilization = telemetry.GetGauge("service.fleet_utilization")
	obsQueueWait   = telemetry.GetHistogram("service.queue_wait_seconds",
		1e-3, 1e-2, 1e-1, 1, 10, 100)
)

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all sampling.
	Seed uint64
	// Workers is the transcoding fleet size (parallel encoders).
	Workers int
	// Uploads is the number of uploads to simulate.
	Uploads int
	// MeanInterarrivalSeconds spaces uploads (exponential).
	MeanInterarrivalSeconds float64
	// Scale is the clip synthesis scale (work model only; costs are
	// per-pixel normalized back to native sizes).
	Scale int
	// DurationSeconds is the synthesized clip length.
	DurationSeconds float64
	// PopularShare is the fraction of uploads that become popular
	// enough for the high-effort re-transcode (the head of the
	// power-law distribution; the paper's "observed to be popular").
	PopularShare float64
	// ViewsPerPopular is the mean playback count of a popular video;
	// tail videos get ViewsPerTail.
	ViewsPerPopular float64
	ViewsPerTail    float64

	// Encoders for the three passes; defaults are the paper's
	// reference ladder (veryfast upload, medium two-pass VOD,
	// x265-class veryslow popular).
	UploadEncoder  *codec.Engine
	VODEncoder     *codec.Engine
	PopularEncoder *codec.Engine
}

// DefaultConfig returns a small but representative simulation.
func DefaultConfig() Config {
	return Config{
		Seed:                    1,
		Workers:                 4,
		Uploads:                 40,
		MeanInterarrivalSeconds: 0.02,
		Scale:                   16,
		DurationSeconds:         0.4,
		PopularShare:            0.05,
		ViewsPerPopular:         2e6,
		ViewsPerTail:            40,
	}
}

func (c *Config) withDefaults() error {
	if c.Workers <= 0 || c.Uploads <= 0 {
		return errors.New("service: need positive workers and uploads")
	}
	if c.MeanInterarrivalSeconds <= 0 || c.DurationSeconds <= 0 {
		return errors.New("service: need positive interarrival and duration")
	}
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.UploadEncoder == nil {
		c.UploadEncoder = profiles.X264(codec.PresetVeryFast)
	}
	if c.VODEncoder == nil {
		c.VODEncoder = profiles.X264(codec.PresetMedium)
	}
	if c.PopularEncoder == nil {
		c.PopularEncoder = profiles.X265(codec.PresetSlow)
	}
	return nil
}

// Stats is the outcome of a simulation.
type Stats struct {
	Uploads             int
	UploadTranscodes    int
	VODTranscodes       int
	PopularRetranscodes int

	// ComputeSeconds is modeled encode time per pass.
	UploadComputeSeconds  float64
	VODComputeSeconds     float64
	PopularComputeSeconds float64

	// StorageBytes is what remains stored (universal copies are
	// temporary; the better of VOD/popular is kept per video).
	StorageBytes int64
	// EgressBytes is total bytes served across all playbacks.
	EgressBytes int64
	// EgressSavedBytes is what the popular re-transcodes saved
	// relative to serving the VOD copies.
	EgressSavedBytes int64

	// Queueing behaviour of the fleet.
	MeanQueueWaitSeconds float64
	MaxQueueWaitSeconds  float64
	FleetUtilization     float64

	// Quality bookkeeping: mean PSNR of the served copies.
	MeanServedPSNR float64
}

// TotalComputeSeconds sums the three passes.
func (s *Stats) TotalComputeSeconds() float64 {
	return s.UploadComputeSeconds + s.VODComputeSeconds + s.PopularComputeSeconds
}

// workerHeap tracks when each fleet worker becomes free.
type workerHeap []float64

func (h workerHeap) Len() int            { return len(h) }
func (h workerHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *workerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// cachedTranscode holds the per-clip encode results reused across
// uploads of the same category.
type cachedTranscode struct {
	clip          corpus.Clip
	vodBytes      int64
	popBytes      int64
	vodPSNR       float64
	popPSNR       float64
	uploadSeconds float64
	vodSeconds    float64
	popSeconds    float64
	popValid      bool
}

// Run executes the simulation.
func Run(cfg Config) (*Stats, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	sp := telemetry.StartSpan("service simulation")
	defer sp.End()
	r := rng.New(cfg.Seed)
	clips := corpus.VBenchClips()
	// Weight upload categories toward the corpus distribution: sample
	// clips by their resolution share.
	weights := make([]float64, len(clips))
	for i, c := range clips {
		for _, rs := range corpus.StandardResolutions {
			if rs.Res.KPixels() == c.KPixels() {
				weights[i] = rs.Share
			}
		}
		if weights[i] == 0 {
			weights[i] = 0.01
		}
	}

	cache := map[string]*cachedTranscode{}
	prepare := func(clip corpus.Clip) (*cachedTranscode, error) {
		if ct, ok := cache[clip.Name]; ok {
			return ct, nil
		}
		seq, err := clip.Generate(cfg.Scale, cfg.DurationSeconds)
		if err != nil {
			return nil, err
		}
		ct := &cachedTranscode{clip: clip}
		up, err := cfg.UploadEncoder.Encode(seq, codec.Config{RC: codec.RCConstQP, QP: 20})
		if err != nil {
			return nil, fmt.Errorf("service: upload transcode of %s: %w", clip.Name, err)
		}
		ct.uploadSeconds = up.Seconds
		target := float64(len(up.Bitstream)) * 8 / seq.Duration() / 3
		vod, err := cfg.VODEncoder.Encode(seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: target})
		if err != nil {
			return nil, fmt.Errorf("service: vod transcode of %s: %w", clip.Name, err)
		}
		ct.vodSeconds = vod.Seconds
		ct.vodBytes = int64(len(vod.Bitstream))
		ct.vodPSNR, err = metrics.SequencePSNR(seq, vod.Recon)
		if err != nil {
			return nil, err
		}
		pop, err := cfg.PopularEncoder.Encode(seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: target * 0.95})
		if err != nil {
			return nil, fmt.Errorf("service: popular transcode of %s: %w", clip.Name, err)
		}
		ct.popSeconds = pop.Seconds
		ct.popBytes = int64(len(pop.Bitstream))
		ct.popPSNR, err = metrics.SequencePSNR(seq, pop.Recon)
		if err != nil {
			return nil, err
		}
		// The Popular constraint: better on BOTH axes or it is not kept.
		ct.popValid = ct.popBytes < ct.vodBytes && ct.popPSNR >= ct.vodPSNR
		cache[clip.Name] = ct
		return ct, nil
	}

	stats := &Stats{}
	free := make(workerHeap, cfg.Workers)
	heap.Init(&free)
	now := 0.0
	var busySeconds, totalWait, maxWait float64
	var psnrSum float64

	schedule := func(arrival, seconds float64) float64 {
		worker := heap.Pop(&free).(float64)
		start := arrival
		if worker > start {
			start = worker
		}
		wait := start - arrival
		totalWait += wait
		if wait > maxWait {
			maxWait = wait
		}
		busySeconds += seconds
		obsTranscodes.Inc()
		obsQueueWait.Observe(wait)
		heap.Push(&free, start+seconds)
		return start + seconds
	}

	for u := 0; u < cfg.Uploads; u++ {
		now += r.ExpFloat64() * cfg.MeanInterarrivalSeconds
		clip := clips[weightedPick(weights, r)]
		ct, err := prepare(clip)
		if err != nil {
			return nil, err
		}
		stats.Uploads++

		// Pass 1: universal transcode.
		done := schedule(now, ct.uploadSeconds)
		stats.UploadTranscodes++
		stats.UploadComputeSeconds += ct.uploadSeconds

		// Pass 2: VOD ladder.
		done = schedule(done, ct.vodSeconds)
		stats.VODTranscodes++
		stats.VODComputeSeconds += ct.vodSeconds

		// Watch traffic.
		popular := r.Float64() < cfg.PopularShare
		views := cfg.ViewsPerTail
		if popular {
			views = cfg.ViewsPerPopular
		}
		servedBytes := ct.vodBytes
		servedPSNR := ct.vodPSNR
		if popular && ct.popValid {
			// Pass 3: high-effort re-transcode once hot.
			schedule(done, ct.popSeconds)
			stats.PopularRetranscodes++
			stats.PopularComputeSeconds += ct.popSeconds
			stats.EgressSavedBytes += int64(float64(ct.vodBytes-ct.popBytes) * views)
			servedBytes = ct.popBytes
			servedPSNR = ct.popPSNR
		}
		stats.StorageBytes += servedBytes
		stats.EgressBytes += int64(float64(servedBytes) * views)
		psnrSum += servedPSNR
	}

	if stats.Uploads > 0 {
		jobs := float64(stats.UploadTranscodes + stats.VODTranscodes + stats.PopularRetranscodes)
		stats.MeanQueueWaitSeconds = totalWait / jobs
		stats.MaxQueueWaitSeconds = maxWait
		stats.MeanServedPSNR = psnrSum / float64(stats.Uploads)
	}
	// Utilization over the makespan.
	makespan := 0.0
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	if makespan > 0 {
		stats.FleetUtilization = busySeconds / (makespan * float64(cfg.Workers))
	}
	obsUtilization.Set(stats.FleetUtilization)
	if sp != nil {
		sp.Arg("uploads", stats.Uploads)
		sp.Arg("transcodes", stats.UploadTranscodes+stats.VODTranscodes+stats.PopularRetranscodes)
		sp.Arg("mean_queue_wait_s", stats.MeanQueueWaitSeconds)
		sp.Arg("utilization", stats.FleetUtilization)
	}
	return stats, nil
}

// weightedPick samples an index proportional to w.
func weightedPick(w []float64, r *rng.Rand) int {
	var total float64
	for _, v := range w {
		total += v
	}
	x := r.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Summary renders the stats as sorted key/value lines for reports.
func (s *Stats) Summary() []string {
	return []string{
		fmt.Sprintf("uploads: %d", s.Uploads),
		fmt.Sprintf("transcodes: %d upload, %d vod, %d popular", s.UploadTranscodes, s.VODTranscodes, s.PopularRetranscodes),
		fmt.Sprintf("compute: %.2fs upload, %.2fs vod, %.2fs popular (modeled)", s.UploadComputeSeconds, s.VODComputeSeconds, s.PopularComputeSeconds),
		fmt.Sprintf("storage: %d bytes", s.StorageBytes),
		fmt.Sprintf("egress: %d bytes (saved %d via popular re-transcodes)", s.EgressBytes, s.EgressSavedBytes),
		fmt.Sprintf("queue wait: mean %.3fs, max %.3fs; utilization %.0f%%", s.MeanQueueWaitSeconds, s.MaxQueueWaitSeconds, s.FleetUtilization*100),
		fmt.Sprintf("served quality: %.2f dB mean PSNR", s.MeanServedPSNR),
	}
}
