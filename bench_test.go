package vbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vbench/internal/cas"
	"vbench/internal/codec"
	"vbench/internal/corpus"
	"vbench/internal/harness"
	"vbench/internal/perf"
	"vbench/internal/scoring"
	"vbench/internal/service"
	"vbench/internal/telemetry"
	"vbench/internal/uarch"
)

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper. Each iteration regenerates the corresponding result at a
// reduced scale (1/16 resolution, 0.4-second clips) so the full bench
// suite completes in minutes; `cmd/figures -scale 8 -duration 1`
// produces the report-quality run recorded in EXPERIMENTS.md.

const (
	benchScale    = 16
	benchDuration = 0.4
)

func benchRunner() *harness.Runner {
	return harness.NewRunner(benchScale, benchDuration)
}

// BenchmarkFig1GrowthGap renders the upload-vs-CPU growth series.
func BenchmarkFig1GrowthGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.Figure1()
		if len(t.Rows) != 11 {
			b.Fatal("bad figure 1")
		}
	}
}

// BenchmarkFig2RateDistortion sweeps bitrate for the three software
// encoder families on one HD clip (PSNR curve + speed curve).
func BenchmarkFig2RateDistortion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		_, points, err := r.Figure2("funny", []float64{0.5, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 9 {
			b.Fatal("bad point count")
		}
	}
}

// BenchmarkFig4Coverage builds the corpus model and the per-suite
// coverage comparison.
func BenchmarkFig4Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// uarchPoints is shared by the figure 5/6/7 benchmarks.
func uarchPoints(b *testing.B, r *harness.Runner) []harness.UArchPoint {
	b.Helper()
	points, err := r.UArchStudy([]corpus.Suite{corpus.SuiteVBench})
	if err != nil {
		b.Fatal(err)
	}
	return points
}

// BenchmarkFig5MPKI runs the cache/branch characterization across the
// vbench suite and fits the entropy trends.
func BenchmarkFig5MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		points := uarchPoints(b, r)
		if _, err := harness.Figure5(points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TopDown computes the Top-Down distribution per suite.
func BenchmarkFig6TopDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		points := uarchPoints(b, r)
		if _, err := harness.Figure6(points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SIMDFraction computes scalar/AVX2 cycle fractions
// against entropy.
func BenchmarkFig7SIMDFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		points := uarchPoints(b, r)
		if _, err := harness.Figure7(points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ISALadder times the ISA-ladder analysis.
func BenchmarkFig8ISALadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if _, _, err := r.Figure8("girl"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9GPUScatter derives the GPU S/B and Q/B scatter from
// the VOD and Live runs on a subset of clips.
func BenchmarkFig9GPUScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		vod, err := scenarioRows(r, scoring.VOD)
		if err != nil {
			b.Fatal(err)
		}
		live, err := scenarioRows(r, scoring.Live)
		if err != nil {
			b.Fatal(err)
		}
		t := harness.Figure9(vod, live)
		if len(t.Rows) == 0 {
			b.Fatal("empty figure 9")
		}
	}
}

// scenarioRows evaluates the hardware encoders on a 4-clip subset for
// the scatter benchmarks.
func scenarioRows(r *harness.Runner, s scoring.Scenario) ([]harness.ScenarioRow, error) {
	var rows []harness.ScenarioRow
	for _, name := range []string{"desktop", "girl", "hall", "chicken"} {
		c, err := corpus.ClipByName(name)
		if err != nil {
			return nil, err
		}
		row := harness.ScenarioRow{Clip: c, Scores: map[string]scoring.Score{}}
		for _, encName := range []string{"NVENC", "QSV"} {
			eng := map[string]*Encoder{"NVENC": NVENC(), "QSV": QSV()}[encName]
			score, _, err := r.EvaluateQualityConstrained(s, c, eng, codec.RCBitrate)
			if err != nil {
				return nil, err
			}
			row.Scores[encName] = score
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BenchmarkTable2Selection runs the corpus clustering selection.
func BenchmarkTable2Selection(b *testing.B) {
	model := corpus.NewModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := model.Select(15, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(sel) != 15 {
			b.Fatal("bad selection")
		}
	}
}

// BenchmarkTable2Entropy measures the entropy of the vbench clips.
func BenchmarkTable2Entropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3VOD reproduces the VOD study (hardware encoders,
// quality-constrained bisection) on a 4-clip subset per iteration.
func BenchmarkTable3VOD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if _, err := scenarioRows(r, scoring.VOD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Live reproduces the Live study on the subset.
func BenchmarkTable4Live(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if _, err := scenarioRows(r, scoring.Live); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Popular reproduces the Popular study (x265/vp9
// two-pass, quality-constrained) on two clips per iteration.
func BenchmarkTable5Popular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		for _, name := range []string{"presentation", "girl"} {
			c, err := corpus.ClipByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, eng := range []*Encoder{X265(PresetSlow), VP9(PresetSlow)} {
				if _, _, err := r.EvaluateQualityConstrained(scoring.Popular, c, eng, codec.RCTwoPass); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkEncodeMedium measures raw encoder throughput (wall clock),
// the engine-level number the modeled speeds stand on.
func BenchmarkEncodeMedium(b *testing.B) {
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(benchScale, benchDuration)
	if err != nil {
		b.Fatal(err)
	}
	enc := X264(PresetMedium)
	b.SetBytes(seq.PixelCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(seq, Config{RC: RCConstQP, QP: 28}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeAllocs measures heap allocations per single-clip
// encode and enforces the checked-in budget (ALLOC_BUDGET.json), with
// wavefront row parallelism off (serial rows) and on (4 dedicated row
// lanes). The per-macroblock encode path is allocation-free by design
// — level arenas, candidate recycling, and pooled reconstruction
// frames (see DESIGN.md, "Memory management in the encode hot path")
// — and wavefront mode reuses per-lane arenas across frames, so both
// variants' allocs/op scale with frame count, not macroblock count. A
// regression that reintroduces per-MB allocation overshoots the budget
// by orders of magnitude and fails this benchmark, which CI runs with
// -benchtime=1x as a smoke gate. The wave=on MB/s is also the
// wavefront scoreboard: on a GOMAXPROCS≥4 host it must beat wave=off
// (benchjson records GOMAXPROCS per result, so a 1-core CI number is
// never mistaken for that comparison).
func BenchmarkEncodeAllocs(b *testing.B) {
	budget, err := readAllocBudget("ALLOC_BUDGET.json")
	if err != nil {
		b.Fatal(err)
	}
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(benchScale, benchDuration)
	if err != nil {
		b.Fatal(err)
	}
	enc := X264(PresetMedium)
	for _, wave := range []struct {
		name string
		rows int
	}{{"off", 1}, {"on", 4}} {
		cfg := Config{RC: RCConstQP, QP: 28, RowsParallel: wave.rows}
		b.Run("wave="+wave.name, func(b *testing.B) {
			// Warm the scratch pools so the measurement reflects
			// steady state.
			if _, err := enc.Encode(seq, cfg); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(seq.PixelCount())
			b.ReportAllocs()
			b.ResetTimer()
			var ms1, ms2 runtime.MemStats
			runtime.ReadMemStats(&ms1)
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(seq, cfg); err != nil {
					b.Fatal(err)
				}
			}
			runtime.ReadMemStats(&ms2)
			perOp := float64(ms2.Mallocs-ms1.Mallocs) / float64(b.N)
			b.ReportMetric(perOp, "mallocs/op")
			if perOp > float64(budget) {
				b.Fatalf("encode allocations %.0f/op exceed the ALLOC_BUDGET.json budget of %d/op", perOp, budget)
			}
		})
	}
}

// readAllocBudget loads the allocation budget the repository commits
// to (repo root, next to BENCH_harness.json).
func readAllocBudget(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("reading alloc budget: %w", err)
	}
	var budget struct {
		EncodeAllocsPerOp int64 `json:"encode_allocs_per_op"`
	}
	if err := json.Unmarshal(data, &budget); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	if budget.EncodeAllocsPerOp <= 0 {
		return 0, fmt.Errorf("%s: encode_allocs_per_op must be positive", path)
	}
	return budget.EncodeAllocsPerOp, nil
}

// BenchmarkDecode measures decoder throughput.
func BenchmarkDecode(b *testing.B) {
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(benchScale, benchDuration)
	if err != nil {
		b.Fatal(err)
	}
	res, err := X264(PresetMedium).Encode(seq, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(seq.PixelCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(res.Bitstream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUArchAnalyze measures the µarch trace simulation itself.
func BenchmarkUArchAnalyze(b *testing.B) {
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(benchScale, benchDuration)
	if err != nil {
		b.Fatal(err)
	}
	res, err := X264(PresetMedium).Encode(seq, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Analyze(&res.Counters, uarch.Options{
			NativeWidth: clip.Width, NativeHeight: clip.Height, SearchRange: 16,
			ISA: perf.ISAAVX2, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSliceParallelEncode measures the wall-clock effect of
// slice-parallel encoding (the codec's multi-core path). The speedup
// tracks GOMAXPROCS: on a single-core machine the slices=4 run shows
// only the (small) coordination overhead.
func BenchmarkSliceParallelEncode(b *testing.B) {
	clip, err := corpus.ClipByName("hall")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(8, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	enc := X264(PresetMedium)
	for _, slices := range []int{1, 4} {
		b.Run(fmt.Sprintf("slices=%d", slices), func(b *testing.B) {
			b.SetBytes(seq.PixelCount())
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(seq, Config{RC: RCConstQP, QP: 28, Slices: slices}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWavefrontEncode measures the wall-clock effect of wavefront
// row parallelism inside a single slice (see wavefront.go): the same
// clip encoded with serial rows and with 4 dedicated row lanes. The
// speedup tracks GOMAXPROCS exactly like the slice fan-out; on a
// single-core host rows=4 shows only the coordination overhead, and
// the bitstreams are byte-identical either way.
func BenchmarkWavefrontEncode(b *testing.B) {
	clip, err := corpus.ClipByName("hall")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(8, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	enc := X264(PresetMedium)
	for _, rows := range []int{1, 4} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.SetBytes(seq.PixelCount())
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(seq, Config{RC: RCConstQP, QP: 28, RowsParallel: rows}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessGrid measures the harness's worker-pool fan-out end
// to end: the same full clip × encoder grid (Table 3, VOD) evaluated
// serially (j=1) and with one worker per core (j=GOMAXPROCS). The
// rendered table is byte-identical between the two — only the wall
// clock changes. Per-worker busy time from Runner.PoolStats is folded
// into a busy/wall utilization metric so both the speedup and the
// load balance are visible in the benchmark output. Because workers
// draw execution slots from the shared CPU gate (syncx.CPU) and busy
// time only accrues while a slot is held, busy/wall tops out near the
// core count however many workers are requested. On a single-core
// host the parallel variant still runs (at j=4) but the gate admits
// one cell at a time: expect j=4 ≈ j=1 in wall clock and busy/wall ≈
// 1.0 for both — not the >1 utilization an ungated pool would
// fabricate by interleaving descheduled workers.
func BenchmarkHarnessGrid(b *testing.B) {
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		parallel = 4
	}
	for _, j := range []int{1, parallel} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			var busy time.Duration
			start := time.Now()
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				r.Workers = j
				if _, _, err := r.Table3(); err != nil {
					b.Fatal(err)
				}
				for _, s := range r.PoolStats() {
					busy += s.Busy
				}
			}
			if wall := time.Since(start); wall > 0 {
				b.ReportMetric(float64(busy)/float64(wall), "busy/wall")
			}
		})
	}
}

// BenchmarkTelemetryOverhead measures what the observability layer
// adds to the encoder hot path: the same encode with telemetry fully
// disabled (the deterministic scoring configuration) and with a live
// tracer plus per-stage clocks. The acceptance budget for "on" is
// under 5% over "off"; "off" must match the pre-telemetry encoder
// because the stage clocks reduce to a nil pointer check.
func BenchmarkTelemetryOverhead(b *testing.B) {
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(benchScale, benchDuration)
	if err != nil {
		b.Fatal(err)
	}
	enc := X264(PresetMedium)
	encode := func(b *testing.B) {
		if _, err := enc.Encode(seq, Config{RC: RCConstQP, QP: 28}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		b.SetBytes(seq.PixelCount())
		for i := 0; i < b.N; i++ {
			encode(b)
		}
	})
	b.Run("on", func(b *testing.B) {
		prev := telemetry.ActiveTracer()
		defer func() {
			telemetry.SetTracer(prev)
			telemetry.EnableStages(false)
		}()
		telemetry.EnableStages(true)
		b.SetBytes(seq.PixelCount())
		for i := 0; i < b.N; i++ {
			// Fresh tracer per iteration so the event buffer's growth
			// does not leak across iterations.
			telemetry.SetTracer(telemetry.NewTracer())
			encode(b)
		}
	})
}

// benchCacheEntry builds one real cache entry: the "girl" clip at
// bench scale, encoded once, measured into the cas.Outcome a store
// would hold for it.
func benchCacheEntry(b *testing.B) (*Encoder, *cas.Outcome, Config) {
	b.Helper()
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := clip.Generate(benchScale, benchDuration)
	if err != nil {
		b.Fatal(err)
	}
	enc := X264(PresetMedium)
	cfg := Config{RC: RCConstQP, QP: 28}
	out, err := cas.Compute(enc, seq, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return enc, out, cfg
}

// BenchmarkCacheHit measures the two hit tiers of the content-
// addressed transcode cache (internal/cas) against a real encoded
// entry: "mem" is the singleflight map in front, "disk" re-reads the
// sharded entry file and re-verifies its SHA-256 trailer on every
// lookup (the integrity check is deliberately on the hot path). The
// per-op throughput is the serving rate of a warm cache; compare
// BenchmarkEncodeMedium for what each hit avoids.
func BenchmarkCacheHit(b *testing.B) {
	enc, out, cfg := benchCacheEntry(b)
	key := cas.KeyParts{
		Content:     "bench:girl",
		Tools:       enc.Tools,
		Config:      cfg,
		Fingerprint: cas.Fingerprint(),
	}.Key()
	store, err := cas.Open(b.TempDir(), telemetry.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Put(key, out); err != nil {
		b.Fatal(err)
	}
	b.Run("mem", func(b *testing.B) {
		if _, ok := store.Get(key); !ok { // promote disk -> mem once
			b.Fatal("warmup lookup missed")
		}
		b.ReportAllocs()
		b.SetBytes(out.SizeBytes())
		for i := 0; i < b.N; i++ {
			if _, ok := store.Get(key); !ok {
				b.Fatal("mem tier missed")
			}
		}
	})
	b.Run("disk", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(out.SizeBytes())
		for i := 0; i < b.N; i++ {
			store.EvictMem()
			if _, ok := store.Get(key); !ok {
				b.Fatal("disk tier missed")
			}
		}
	})
}

// BenchmarkCacheMiss measures the full miss path minus the encode: a
// unique key per iteration falls through both tiers, runs the compute
// closure (a no-op returning the prebuilt outcome, so the encode cost
// is excluded), and persists the entry with an atomic tmp+rename
// write. This is the overhead the cache adds to a cold run.
func BenchmarkCacheMiss(b *testing.B) {
	enc, out, cfg := benchCacheEntry(b)
	store, err := cas.Open(b.TempDir(), telemetry.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(out.SizeBytes())
	for i := 0; i < b.N; i++ {
		key := cas.KeyParts{
			Content:     fmt.Sprintf("bench-miss:%d", i),
			Tools:       enc.Tools,
			Config:      cfg,
			Fingerprint: cas.Fingerprint(),
		}.Key()
		if _, err := store.GetOrCompute(key, func() (*cas.Outcome, error) { return out, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSimulation measures the discrete-event service
// simulator end to end.
func BenchmarkServiceSimulation(b *testing.B) {
	cfg := service.DefaultConfig()
	cfg.Uploads = 10
	for i := 0; i < b.N; i++ {
		if _, err := service.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
