package bitstream

// Adaptive binary arithmetic coder following the boolean coder of
// RFC 6386 (VP8). A probability is an 8-bit value p in [1, 255] giving
// the chance the coded bit is 0, scaled by 256. The encoder and
// decoder below are exact mirrors: every sequence of (bit, prob)
// operations on the encoder decodes back identically.

// normShift[r] is the number of left shifts needed to bring a range
// value r (1..255) up to at least 128.
var normShift [256]uint8

func init() {
	for r := 1; r < 256; r++ {
		s := uint8(0)
		v := r
		for v < 128 {
			v <<= 1
			s++
		}
		normShift[r] = s
	}
}

// ArithEncoder is the encoding half of the boolean coder.
type ArithEncoder struct {
	buf      []byte
	lowValue uint32
	rng      uint32
	count    int
}

// NewArithEncoder returns a ready encoder.
func NewArithEncoder() *ArithEncoder {
	return &ArithEncoder{rng: 255, count: -24}
}

// EncodeBit codes one bit with probability prob (chance ×256 that the
// bit is 0). prob must be in [1, 255].
func (e *ArithEncoder) EncodeBit(bit int, prob uint8) {
	split := 1 + ((e.rng-1)*uint32(prob))>>8
	if bit != 0 {
		e.lowValue += split
		e.rng -= split
	} else {
		e.rng = split
	}
	shift := uint32(normShift[e.rng])
	e.rng <<= shift
	e.count += int(shift)
	if e.count >= 0 {
		offset := shift - uint32(e.count)
		if (e.lowValue<<(offset-1))&0x80000000 != 0 {
			// Carry propagation into already-emitted bytes.
			x := len(e.buf) - 1
			for x >= 0 && e.buf[x] == 0xFF {
				e.buf[x] = 0
				x--
			}
			if x >= 0 {
				e.buf[x]++
			} else {
				// A carry out of the first byte: prepend 0x01. This
				// cannot happen with the standard init (first byte is
				// always < 0xFF after the first emit), but guard anyway.
				e.buf = append([]byte{1}, e.buf...)
			}
		}
		e.buf = append(e.buf, byte(e.lowValue>>(24-offset)))
		e.lowValue <<= offset
		shift = uint32(e.count)
		e.lowValue &= 0xFFFFFF
		e.count -= 8
	}
	e.lowValue <<= shift
}

// EncodeBypass codes a bit with a flat 1/2 probability. Bypass bins
// model sign and suffix bits that carry no modelable statistics.
func (e *ArithEncoder) EncodeBypass(bit int) { e.EncodeBit(bit, 128) }

// EncodeBypassBits codes the n low-order bits of v MSB-first in bypass
// mode.
func (e *ArithEncoder) EncodeBypassBits(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.EncodeBypass(int(v>>uint(i)) & 1)
	}
}

// Bytes terminates the stream and returns the coded bytes. The encoder
// must not be used afterwards.
func (e *ArithEncoder) Bytes() []byte {
	for i := 0; i < 32; i++ {
		e.EncodeBit(0, 128)
	}
	return e.buf
}

// BitsEstimate returns the current compressed size in bits (exact for
// emitted bytes, plus pending state), useful for rate estimation.
func (e *ArithEncoder) BitsEstimate() int { return len(e.buf)*8 + 24 + e.count }

// ArithDecoder is the decoding half of the boolean coder.
type ArithDecoder struct {
	buf      []byte
	pos      int
	value    uint32 // 16-bit coding window
	rng      uint32
	bitCount int
}

// NewArithDecoder returns a decoder over data produced by
// ArithEncoder.Bytes.
func NewArithDecoder(data []byte) *ArithDecoder {
	d := &ArithDecoder{buf: data, rng: 255}
	d.value = uint32(d.nextByte())<<8 | uint32(d.nextByte())
	return d
}

func (d *ArithDecoder) nextByte() byte {
	if d.pos < len(d.buf) {
		b := d.buf[d.pos]
		d.pos++
		return b
	}
	return 0
}

// DecodeBit decodes one bit previously coded with probability prob.
func (d *ArithDecoder) DecodeBit(prob uint8) int {
	split := 1 + ((d.rng-1)*uint32(prob))>>8
	bigSplit := split << 8
	var bit int
	if d.value >= bigSplit {
		bit = 1
		d.rng -= split
		d.value -= bigSplit
	} else {
		bit = 0
		d.rng = split
	}
	for d.rng < 128 {
		d.value <<= 1
		d.rng <<= 1
		d.bitCount++
		if d.bitCount == 8 {
			d.bitCount = 0
			d.value |= uint32(d.nextByte())
		}
	}
	return bit
}

// DecodeBypass decodes a bypass-coded bit.
func (d *ArithDecoder) DecodeBypass() int { return d.DecodeBit(128) }

// DecodeBypassBits decodes n bypass bits MSB-first.
func (d *ArithDecoder) DecodeBypassBits(n uint) uint32 {
	var v uint32
	for i := uint(0); i < n; i++ {
		v = v<<1 | uint32(d.DecodeBypass())
	}
	return v
}

// Context is an adaptive binary probability model. The zero value is
// NOT valid; use NewContext or InitContexts.
type Context struct {
	p uint8 // probability that the next bit is 0, ×256
}

// adaptRate controls how quickly contexts learn; 1/2^adaptRate of the
// error is corrected per observation (CABAC uses a comparable window).
const adaptRate = 4

// NewContext returns a context initialized to the neutral probability.
func NewContext() Context { return Context{p: 128} }

// InitContexts fills a slice with neutral contexts.
func InitContexts(cs []Context) {
	for i := range cs {
		cs[i] = NewContext()
	}
}

// Prob returns the context's current probability of a zero bit.
func (c *Context) Prob() uint8 { return c.p }

// Update adapts the context after observing bit.
func (c *Context) Update(bit int) {
	if bit == 0 {
		c.p += (255 - c.p) >> adaptRate
	} else {
		c.p -= c.p >> adaptRate
	}
	if c.p < 1 {
		c.p = 1
	}
}

// EncodeCtx codes bit with the context's probability and adapts it.
func (e *ArithEncoder) EncodeCtx(bit int, c *Context) {
	e.EncodeBit(bit, c.p)
	c.Update(bit)
}

// DecodeCtx decodes a bit with the context's probability and adapts it.
func (d *ArithDecoder) DecodeCtx(c *Context) int {
	bit := d.DecodeBit(c.p)
	c.Update(bit)
	return bit
}

// EncodeUnaryGolomb codes a non-negative integer as a context-modeled
// unary prefix (up to maxPrefix ones) followed, if the value saturates
// the prefix, by a bypass Exp-Golomb suffix of order k. This mirrors
// CABAC's UEG coefficient binarization.
func (e *ArithEncoder) EncodeUnaryGolomb(v uint32, ctxs []Context, maxPrefix int, k uint) {
	i := 0
	for ; i < maxPrefix && uint32(i) < v; i++ {
		e.EncodeCtx(1, ctxCap(ctxs, i))
	}
	if uint32(i) == v && i < maxPrefix {
		e.EncodeCtx(0, ctxCap(ctxs, i))
		return
	}
	// Saturated prefix: code the excess with order-k Exp-Golomb in
	// bypass mode.
	rem := v - uint32(maxPrefix)
	for {
		if rem >= 1<<k {
			e.EncodeBypass(1)
			rem -= 1 << k
			k++
		} else {
			e.EncodeBypass(0)
			e.EncodeBypassBits(rem, k)
			return
		}
	}
}

// DecodeUnaryGolomb mirrors EncodeUnaryGolomb.
func (d *ArithDecoder) DecodeUnaryGolomb(ctxs []Context, maxPrefix int, k uint) uint32 {
	var v uint32
	i := 0
	for ; i < maxPrefix; i++ {
		if d.DecodeCtx(ctxCap(ctxs, i)) == 0 {
			return v
		}
		v++
	}
	var excess uint32
	for d.DecodeBypass() == 1 {
		excess += 1 << k
		k++
	}
	excess += d.DecodeBypassBits(k)
	return uint32(maxPrefix) + excess
}

// ctxCap indexes into a context slice, clamping to the last element so
// long unary strings share a tail context.
func ctxCap(ctxs []Context, i int) *Context {
	if i >= len(ctxs) {
		i = len(ctxs) - 1
	}
	return &ctxs[i]
}
