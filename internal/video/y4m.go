package video

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Y4M container support. YUV4MPEG2 is the uncompressed interchange
// format ffmpeg and the reference encoders in the paper consume; the
// benchmark uses it to persist synthesized clips and to feed external
// tools if desired.

// WriteY4M serializes the sequence in YUV4MPEG2 (C420) format.
// The framerate is written as a rational with denominator 1000 to
// preserve fractional rates such as 29.97.
func WriteY4M(w io.Writer, s *Sequence) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	num := int(s.FrameRate*1000 + 0.5)
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:1000 Ip A1:1 C420\n",
		s.Width(), s.Height(), num); err != nil {
		return err
	}
	for _, f := range s.Frames {
		if _, err := bw.WriteString("FRAME\n"); err != nil {
			return err
		}
		if _, err := bw.Write(f.Y); err != nil {
			return err
		}
		if _, err := bw.Write(f.Cb); err != nil {
			return err
		}
		if _, err := bw.Write(f.Cr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadY4M parses a YUV4MPEG2 stream containing C420 (or unspecified,
// which defaults to 4:2:0) video and returns the decoded sequence.
func ReadY4M(r io.Reader) (*Sequence, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("video: reading y4m header: %w", err)
	}
	header = strings.TrimSuffix(header, "\n")
	fields := strings.Split(header, " ")
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("video: not a YUV4MPEG2 stream: %q", header)
	}
	var width, height int
	rate := 30.0
	for _, f := range fields[1:] {
		if f == "" {
			continue
		}
		tag, val := f[0], f[1:]
		switch tag {
		case 'W':
			width, err = strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("video: bad y4m width %q: %w", val, err)
			}
		case 'H':
			height, err = strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("video: bad y4m height %q: %w", val, err)
			}
		case 'F':
			parts := strings.Split(val, ":")
			if len(parts) != 2 {
				return nil, fmt.Errorf("video: bad y4m framerate %q", val)
			}
			num, err1 := strconv.Atoi(parts[0])
			den, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || den == 0 {
				return nil, fmt.Errorf("video: bad y4m framerate %q", val)
			}
			rate = float64(num) / float64(den)
		case 'C':
			if !strings.HasPrefix(val, "420") {
				return nil, fmt.Errorf("video: unsupported y4m chroma mode %q (only 4:2:0)", val)
			}
		}
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("video: y4m header missing dimensions: %q", header)
	}
	s := &Sequence{FrameRate: rate}
	frameSize := width*height + 2*(width/2)*(height/2)
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("video: reading y4m frame header: %w", err)
		}
		if !strings.HasPrefix(line, "FRAME") {
			return nil, fmt.Errorf("video: expected FRAME marker, got %q", strings.TrimSpace(line))
		}
		buf := make([]uint8, frameSize)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("video: reading y4m frame payload: %w", err)
		}
		f := &Frame{Width: width, Height: height}
		ySize := width * height
		cSize := (width / 2) * (height / 2)
		f.Y = buf[:ySize:ySize]
		f.Cb = buf[ySize : ySize+cSize : ySize+cSize]
		f.Cr = buf[ySize+cSize:]
		s.Frames = append(s.Frames, f)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
