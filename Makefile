# Tier-1 verification gate (see ROADMAP.md). `make check` is what CI
# and every PR must keep green.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
