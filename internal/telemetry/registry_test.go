package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 10, 100)

	// Bucket semantics are v <= bound: a value exactly on a boundary
	// lands in that boundary's bucket, not the next one.
	for _, v := range []float64{0.5, 1} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.0001) // (1, 10]
	h.Observe(10)     // (1, 10]
	h.Observe(99.9)   // (10, 100]
	h.Observe(100)    // (10, 100]
	h.Observe(100.1)  // overflow
	h.Observe(1e9)    // overflow

	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); sum < 1e9 {
		t.Errorf("sum = %g, want > 1e9", sum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 100, 1, 10)
	got := h.Bounds()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("bounds not sorted: %v", got)
		}
	}
}

func TestHistogramReRegistration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)

	// Same bounds (any order) are a legitimate shared registration.
	if got := r.Histogram("lat", 100, 10, 1); got != h {
		t.Error("same-bounds re-registration returned a different histogram")
	}
	// A bound-less call is a pure lookup.
	if got := r.Histogram("lat"); got != h {
		t.Error("bound-less lookup returned a different histogram")
	}

	// Conflicting bounds must fail loudly, not silently hand the
	// caller someone else's bucket layout.
	for _, conflict := range [][]float64{{1, 10}, {1, 10, 100, 1000}, {2, 10, 100}, {}} {
		func() {
			defer func() {
				if len(conflict) == 0 {
					if recover() != nil {
						t.Error("bound-less lookup panicked")
					}
					return
				}
				if recover() == nil {
					t.Errorf("re-registering %q with bounds %v did not panic", "lat", conflict)
				}
			}()
			r.Histogram("lat", conflict...)
		}()
	}

	// A first registration with no bounds creates an overflow-only
	// histogram; a later bounded registration of that name conflicts.
	r.Histogram("bare")
	defer func() {
		if recover() == nil {
			t.Error("bounded re-registration of an overflow-only histogram did not panic")
		}
	}()
	r.Histogram("bare", 5)
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(7)
		r.Counter("a.first").Add(3)
		r.Gauge("mid.gauge").Set(0.25)
		r.GaugeFunc("fn.gauge", func() float64 { return 42 })
		h := r.Histogram("lat", 0.001, 0.1, 10)
		h.Observe(0.0005)
		h.Observe(5)
		h.Observe(1e6)
		return r
	}

	var a, b, c bytes.Buffer
	r := build()
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two snapshots of the same registry differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Errorf("identically built registries snapshot differently:\n%s\n---\n%s", a.String(), c.String())
	}

	// The snapshot must be valid JSON with sorted names.
	var doc map[string]map[string]interface{}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, a.String())
	}
	if doc["counters"]["a.first"] != float64(3) {
		t.Errorf("a.first = %v, want 3", doc["counters"]["a.first"])
	}
	if doc["gauges"]["fn.gauge"] != float64(42) {
		t.Errorf("fn.gauge = %v, want 42", doc["gauges"]["fn.gauge"])
	}
	if i, j := strings.Index(a.String(), "a.first"), strings.Index(a.String(), "z.last"); i > j {
		t.Error("counter names not sorted in snapshot")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, adds = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", 0.5)
			for i := 0; i < adds; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*adds {
		t.Errorf("counter = %d, want %d", got, goroutines*adds)
	}
	if got := r.Histogram("hist").Count(); got != goroutines*adds {
		t.Errorf("histogram count = %d, want %d", got, goroutines*adds)
	}
	if got := r.Histogram("hist").Sum(); got != float64(goroutines*adds) {
		t.Errorf("histogram sum = %g, want %d", got, goroutines*adds)
	}
}

func TestGaugeFuncFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", func() float64 { return 1 })
	r.GaugeFunc("g", func() float64 { return 2 })
	if got := r.gaugeValue("g"); got != 1 {
		t.Errorf("gauge func = %g, want 1 (first registration)", got)
	}
}
