package codec

import (
	"time"

	"vbench/internal/codec/kern"
	"vbench/internal/perf"
	"vbench/internal/telemetry"
	"vbench/internal/video"
)

// Telemetry handles for the encoder hot path. The counters are plain
// atomics updated once per encode (never per macroblock), so they are
// effectively free; the per-stage clocks behind stageTimes only run
// when telemetry.StagesEnabled() — with telemetry off the encoder
// performs no time.Now calls beyond the seed behaviour.
var (
	obsEncodes     = telemetry.GetCounter("codec.encodes")
	obsFrames      = telemetry.GetCounter("codec.frames")
	obsMacroblocks = telemetry.GetCounter("codec.macroblocks")
	obsBitsOut     = telemetry.GetCounter("codec.bits_output")
	obsMotionNS    = telemetry.GetCounter("codec.stage.motion_ns")
	obsTransformNS = telemetry.GetCounter("codec.stage.transform_ns")
	obsEntropyNS   = telemetry.GetCounter("codec.stage.entropy_ns")
	obsGateWaitNS  = telemetry.GetCounter("codec.stage.slice_gate_wait_ns")
	obsGateWait    = telemetry.GetHistogram("codec.slice_gate_wait_seconds",
		1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1)

	// Scratch-memory health (see arena.go): candidate structs that had
	// to be heap-allocated because the free list was empty, and level
	// slices that fell back to the heap because an arena filled up. In
	// steady state both should stay near the number of slice lanes;
	// growth means the recycling regressed.
	obsCandAllocs     = telemetry.GetCounter("codec.arena.cand_allocs")
	obsLevelOverflows = telemetry.GetCounter("codec.arena.level_overflows")

	// Kernel-layer health (see internal/codec/kern): SAD evaluations the
	// threshold kernels cut short. Deterministic for a given input —
	// early termination never changes coding decisions or perf counter
	// values, only wall-clock work — so a fixed workload always reports
	// the same count.
	obsKernSADEarlyExits = telemetry.GetCounter("codec.kern.sad_early_exits")

	// Wavefront health (see wavefront.go and pipeline.go). Row stalls
	// count episodes where a row worker had to wait for the row above
	// to advance; occupancy records how many workers actually encoded
	// rows of each wavefront frame; pipeline depth records how many
	// analyzed frames were queued ahead of the encode loop at each
	// consumption. All three depend on scheduling, so they are
	// telemetry only and never feed perf.Counters (which stay
	// byte-deterministic).
	obsWaveRowStalls = telemetry.GetCounter("codec.wave.row_stalls")
	obsWaveOccupancy = telemetry.GetHistogram("codec.wave.occupancy",
		1, 2, 4, 8, 16, 32)
	obsWaveDepth = telemetry.GetHistogram("codec.wave.pipeline_depth",
		0, 1, 2, 4)
)

// The frame pool lives in internal/video (both encoder and decoder
// draw reconstruction frames from it); its traffic is surfaced here as
// gauges so the reuse-hit rate shows up in metrics snapshots alongside
// the codec counters.
func init() {
	telemetry.Default.GaugeFunc("codec.arena.frame_gets", func() float64 {
		gets, _, _ := video.FramePoolStats()
		return float64(gets)
	})
	telemetry.Default.GaugeFunc("codec.arena.frame_hits", func() float64 {
		_, hits, _ := video.FramePoolStats()
		return float64(hits)
	})
	telemetry.Default.GaugeFunc("codec.arena.frame_puts", func() float64 {
		_, _, puts := video.FramePoolStats()
		return float64(puts)
	})
	// Coefficients too large for the reciprocal quantizer's exact range
	// (|c|·8 ≥ 2²⁶) fall back to a scalar divide inside kern. Real
	// residuals never reach that range, so a nonzero rate signals an
	// upstream scaling bug.
	telemetry.Default.GaugeFunc("codec.kern.quant_div_fallbacks", func() float64 {
		return float64(kern.QuantDivFallbacks())
	})
}

// stageTimes accumulates one slice encoder's time per pipeline stage.
// Each slice owns its instance (merged in slice order after the frame
// joins), so accumulation is unsynchronized. Stage attribution is
// sampled at candidate granularity — tight enough to rank the stages,
// cheap enough to stay under the telemetry overhead budget.
type stageTimes struct {
	motion    time.Duration // motion search (SAD/SATD block matching)
	transform time.Duration // transform + quantization + reconstruction
	entropy   time.Duration // symbol writing and arithmetic-coder flush
	gateWait  time.Duration // waiting on the process-wide slice gate
}

// add merges o into t.
func (t *stageTimes) add(o *stageTimes) {
	t.motion += o.motion
	t.transform += o.transform
	t.entropy += o.entropy
	t.gateWait += o.gateWait
}

// sinceTransform charges the time since t0 to the transform stage; it
// is shaped for use as `defer tm.sinceTransform(time.Now())` inside a
// stages-enabled guard.
func (t *stageTimes) sinceTransform(t0 time.Time) { t.transform += time.Since(t0) }

// sinceEntropy charges the time since t0 to the entropy stage.
func (t *stageTimes) sinceEntropy(t0 time.Time) { t.entropy += time.Since(t0) }

// publish flushes an encode's accumulated stage times and counters to
// the process-wide registry and annotates the encode span.
func (t *stageTimes) publish(sp *telemetry.Span, c *perf.Counters) {
	obsMotionNS.AddDuration(t.motion)
	obsTransformNS.AddDuration(t.transform)
	obsEntropyNS.AddDuration(t.entropy)
	obsGateWaitNS.AddDuration(t.gateWait)
	if sp != nil {
		sp.Arg("motion_ms", roundMS(t.motion))
		sp.Arg("transform_ms", roundMS(t.transform))
		sp.Arg("entropy_ms", roundMS(t.entropy))
		sp.Arg("gate_wait_ms", roundMS(t.gateWait))
		sp.Arg("mb_total", c.MBTotal)
		sp.Arg("bits_output", c.BitsOutput)
		for _, k := range perf.Kernels() {
			sp.Arg("ops_"+k.String(), c.Ops[k])
		}
	}
}

// roundMS renders a duration as milliseconds with microsecond
// precision for span args.
func roundMS(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond)) / float64(time.Millisecond)
}
