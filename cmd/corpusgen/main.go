// Command corpusgen runs the vbench video-selection methodology: it
// builds the synthetic corpus model, clusters its categories with
// weighted k-means (Section 4.1 of the paper), prints the selected
// representative categories next to the published Table 2 set, renders
// the Figure 4 coverage comparison, and can materialize the benchmark
// clips as Y4M files.
//
// Usage:
//
//	corpusgen                      # selection + coverage report
//	corpusgen -k 15 -seed 7        # choose cluster count / seed
//	corpusgen -out clips -scale 8  # also write the 15 clips as .y4m
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vbench/internal/corpus"
	"vbench/internal/harness"
	"vbench/internal/tables"
	"vbench/internal/video"
)

// vwrite serializes a sequence as Y4M.
var vwrite = video.WriteY4M

func main() {
	k := flag.Int("k", 15, "number of video categories to select")
	seed := flag.Uint64("seed", 1, "clustering seed")
	out := flag.String("out", "", "directory to write the vbench clips as .y4m (empty = skip)")
	scale := flag.Int("scale", 8, "linear resolution divisor for clip generation")
	duration := flag.Float64("duration", corpus.DurationSeconds, "clip duration in seconds")
	flag.Parse()

	model := corpus.NewModel()
	fmt.Printf("corpus model: %d categories across %d resolutions x %d framerates\n\n",
		len(model.Categories), len(corpus.StandardResolutions), len(corpus.StandardFrameRates))

	selected, err := model.Select(*k, *seed)
	if err != nil {
		fatal(err)
	}
	t := tables.New(fmt.Sprintf("Selected categories (weighted k-means, k=%d)", *k),
		"Kpixels", "fps", "entropy", "corpus weight %")
	for _, c := range selected {
		t.AddRowf(c.KPixels, c.FPS, c.Entropy, c.Weight*100)
	}
	t.AddNote("compare with Table 2: 410-8294 Kpixel, entropy 0.2-7.7 across 4 resolutions")
	fmt.Println(t)

	cov, err := harness.Figure4()
	if err != nil {
		fatal(err)
	}
	fmt.Println(cov)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, clip := range corpus.VBenchClips() {
			seq, err := clip.Generate(*scale, *duration)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, clip.Name+".y4m")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := vwrite(f, seq); err != nil {
				_ = f.Close() // the write error takes precedence
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%dx%d, %d frames)\n", path, seq.Width(), seq.Height(), len(seq.Frames))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
