//go:build !vbench_nodebug

package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and the debug server may be started more than once
// in a process's lifetime (tests).
var publishOnce sync.Once

// StartDebugServer serves the debug endpoint on addr:
//
//	/debug/pprof/...  the standard net/http/pprof handlers
//	/debug/vars       expvar (includes the registry as "vbench_metrics")
//	/debug/metrics    the registry's deterministic JSON snapshot
//
// It returns a shutdown function. Build with -tags vbench_nodebug to
// compile the endpoint (and its net/http dependency) out entirely.
func StartDebugServer(addr string) (shutdown func() error, err error) {
	publishOnce.Do(func() {
		expvar.Publish("vbench_metrics", expvar.Func(func() interface{} {
			return Default.expvarValue()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A failed write means the HTTP client went away; there is
		// no caller to surface the error to.
		_ = Default.WriteJSON(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	// Serve returns ErrServerClosed once the stop function calls
	// Close; any earlier error just stops the optional endpoint.
	go func() { _ = srv.Serve(ln) }()
	return srv.Close, nil
}
