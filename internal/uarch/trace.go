package uarch

import (
	"fmt"

	"vbench/internal/branchsim"
	"vbench/internal/cachesim"
	"vbench/internal/perf"
	"vbench/internal/rng"
)

// Trace-driven simulation. From the per-macroblock work statistics of
// an encode, the generator reconstructs representative instruction,
// branch, and data reference streams at the video's NATIVE geometry
// (the scaled benchmark encodes carry the per-MB behaviour; the
// addresses must reflect the real frame sizes for data-cache
// footprints to be meaningful) and drives them through the simulators.

// traceMBs is the number of macroblocks simulated; statistics are
// per-MB, so a few thousand warm MBs give stable rates.
const traceMBs = 3000

// mbStats summarizes the per-macroblock behaviour of an encode.
type mbStats struct {
	skipFrac  float64
	intraFrac float64
	// opsPerMB per kernel, over non-skip macroblocks.
	opsPerMB [perf.NumKernels]float64
	// dataBranchesPerMB is data-dependent branches per macroblock.
	dataBranchesPerMB float64
	// coefDensity approximates the fraction of residual blocks coded,
	// the bias parameter of data-dependent branch outcomes.
	coefDensity float64
	instrPerMB  float64
}

func newMBStats(c *perf.Counters, isa perf.ISA) (*mbStats, error) {
	if c.MBTotal == 0 {
		return nil, fmt.Errorf("uarch: counters contain no macroblocks")
	}
	s := &mbStats{}
	mbs := float64(c.MBTotal)
	s.skipFrac = float64(c.MBSkip) / mbs
	s.intraFrac = float64(c.MBIntra) / mbs
	for k := perf.Kernel(0); k < perf.NumKernels; k++ {
		s.opsPerMB[k] = float64(c.Ops[k]) / mbs
	}
	s.dataBranchesPerMB = float64(c.DataDepBranches) / mbs
	// 24 residual blocks per MB (16 luma 4×4 + 8 chroma).
	s.coefDensity = float64(c.BlocksCoded) / (mbs * 24)
	if s.coefDensity > 1 {
		s.coefDensity = 1
	}
	s.instrPerMB = Instructions(c, isa) / mbs
	return s, nil
}

// activity converts a kernel's per-MB op volume into the fraction of
// its static code that one macroblock's processing touches: light use
// exercises one specialization; heavy use walks the whole kernel
// (every block size, every path).
func activity(ops float64, k perf.Kernel) float64 {
	if ops <= 0 {
		return 0
	}
	// Saturating log curve: 256 ops (one block) ≈ 0.4, 4096 ops ≈ 0.8.
	a := 0.15
	for v := ops; v > 64 && a < 1; v /= 4 {
		a += 0.11
	}
	if a > 1 {
		a = 1
	}
	return a
}

// simICache replays the per-MB kernel code working sets through the
// L1 instruction cache and returns misses per kilo-instruction.
func simICache(s *mbStats, r *rng.Rand) (float64, error) {
	ic, err := cachesim.SkylakeICache()
	if err != nil {
		return 0, err
	}
	line := uint64(64)
	var instr float64
	warmup := traceMBs / 10
	var missBase int64
	for mb := 0; mb < traceMBs+warmup; mb++ {
		if mb == warmup {
			_, missBase = ic.Stats()
			instr = 0
		}
		skip := r.Float64() < s.skipFrac
		intra := !skip && r.Float64() < s.intraFrac/(1-s.skipFrac+1e-9)
		for k := perf.Kernel(0); k < perf.NumKernels; k++ {
			ops := s.opsPerMB[k]
			if ops <= 0 {
				continue
			}
			if skip && k != perf.KControl && k != perf.KSAD && k != perf.KInterp {
				continue
			}
			if intra && (k == perf.KSAD || k == perf.KInterp) {
				continue
			}
			if !intra && !skip && k == perf.KIntra {
				continue
			}
			lines := int(codeBytes[k] * activity(ops, k) / float64(line))
			base := kernelBase(k)
			// The kernel's hot loop is revisited per block; touch its
			// active lines once per MB (repeat fetches of resident
			// lines hit and only dilute rates, which the instruction
			// normalization already accounts for).
			for l := 0; l < lines; l++ {
				ic.Access(base + uint64(l)*line)
			}
		}
		if skip {
			instr += s.instrPerMB * 0.1
		} else {
			instr += s.instrPerMB
		}
	}
	_, misses := ic.Stats()
	misses -= missBase
	if instr == 0 {
		return 0, nil
	}
	return float64(misses) / (instr / 1000), nil
}

// simBranches replays the per-MB branch mix through a gshare
// predictor and returns mispredictions per kilo-instruction.
func simBranches(s *mbStats, r *rng.Rand) (float64, error) {
	g, err := branchsim.NewGShare(13)
	if err != nil {
		return 0, err
	}
	feed := &branchsim.Feed{P: g}
	var instr float64
	// Loop-control branch sites per kernel: highly regular patterns.
	// Data-dependent sites: significance tests whose outcome bias is
	// the coefficient density.
	const dataSites = 24
	warmup := traceMBs / 10
	mispBase := int64(0)
	for mb := 0; mb < traceMBs+warmup; mb++ {
		if mb == warmup {
			mispBase = feed.S.Mispredicts
			instr = 0
		}
		skip := r.Float64() < s.skipFrac
		mbInstr := s.instrPerMB
		if skip {
			mbInstr *= 0.1
		}
		// Predictable loop branches: ~1 per 8 instructions, taken
		// except at loop exits every 16 iterations.
		loops := int(mbInstr / 8)
		if loops > 400 {
			// Cap trace volume; rates are stable beyond this and the
			// instruction normalization keeps MPKI unbiased because
			// capped branches are perfectly predicted anyway.
			loops = 400
		}
		for i := 0; i < loops; i++ {
			pc := 0x400000 + uint64(i%32)*64
			feed.Observe(pc, i%16 != 15)
		}
		if !skip {
			n := int(s.dataBranchesPerMB)
			if n > 600 {
				n = 600
			}
			for i := 0; i < n; i++ {
				site := i % dataSites
				pc := 0x500000 + uint64(site)*128
				// Site-specific bias around the coefficient density:
				// early-zigzag significance tests are less biased than
				// tail tests.
				bias := 0.45 * s.coefDensity * (0.4 + 1.2*float64(site)/dataSites)
				if bias > 0.5 {
					bias = 1 - bias
					if bias < 0.05 {
						bias = 0.05
					}
				}
				feed.Observe(pc, r.Float64() < bias)
			}
		}
		instr += mbInstr
	}
	misp := feed.S.Mispredicts - mispBase
	if instr == 0 {
		return 0, nil
	}
	return float64(misp) / (instr / 1000), nil
}

// dataSimResult carries the data-hierarchy miss rates.
type dataSimResult struct {
	l1MPKI  float64
	l2MPKI  float64
	llcMPKI float64
	// Misses per kilo-instruction at each level.
}

// simData replays per-MB data touches at native frame geometry
// through the L1D/L2/LLC hierarchy.
func simData(s *mbStats, nativeW, nativeH int, searchRange int, r *rng.Rand) (*dataSimResult, error) {
	h, err := cachesim.SkylakeData()
	if err != nil {
		return nil, err
	}
	const line = 64
	lumaSize := uint64(nativeW * nativeH)
	frameSize := lumaSize * 3 / 2
	// Distinct buffers: source, reconstruction, and two references.
	bases := []uint64{0, frameSize, 2 * frameSize, 3 * frameSize}
	mbW := nativeW / 16
	if mbW == 0 {
		mbW = 1
	}
	mbH := nativeH / 16
	if mbH == 0 {
		mbH = 1
	}
	var instr float64
	var misses [4]int64 // per level beyond: l1,l2,llc,mem — count level index hits
	warm := traceMBs / 10
	counted := 0
	for mb := 0; mb < traceMBs+warm; mb++ {
		if mb == warm {
			h.Reset()
			// Cold-start compulsory misses after reset are part of
			// steady state for streaming workloads; keep counting.
			instr = 0
			counted = 0
			for i := range misses {
				misses[i] = 0
			}
		}
		mbIdx := mb % (mbW * mbH)
		mbx := mbIdx % mbW
		mby := mbIdx / mbW
		skip := r.Float64() < s.skipFrac
		touch := func(base uint64, x, y, w, hgt int, stride int) {
			for yy := 0; yy < hgt; yy++ {
				rowAddr := base + uint64((y+yy)*stride+x)
				for xx := 0; xx < w; xx += line {
					lvl := h.Access(rowAddr + uint64(xx))
					if lvl >= 1 {
						misses[0]++
					}
					if lvl >= 2 {
						misses[1]++
					}
					if lvl >= 3 {
						misses[2]++
					}
					counted++
				}
			}
		}
		// Source MB read + recon write.
		touch(bases[0], mbx*16, mby*16, 16, 16, nativeW)
		touch(bases[1], mbx*16, mby*16, 16, 16, nativeW)
		if !skip {
			// Motion search window in reference frame(s).
			win := 16 + 2*searchRange
			x := mbx*16 - searchRange
			if x < 0 {
				x = 0
			}
			y := mby*16 - searchRange
			if y < 0 {
				y = 0
			}
			if x+win > nativeW {
				win = nativeW - x
			}
			hWin := 16 + 2*searchRange
			if y+hWin > nativeH {
				hWin = nativeH - y
			}
			if win > 0 && hWin > 0 {
				touch(bases[2], x, y, win, hWin, nativeW)
			}
		} else {
			touch(bases[2], mbx*16, mby*16, 16, 16, nativeW)
		}
		if skip {
			instr += s.instrPerMB * 0.1
		} else {
			instr += s.instrPerMB
		}
	}
	if instr == 0 {
		return &dataSimResult{}, nil
	}
	return &dataSimResult{
		l1MPKI:  float64(misses[0]) / (instr / 1000),
		l2MPKI:  float64(misses[1]) / (instr / 1000),
		llcMPKI: float64(misses[2]) / (instr / 1000),
	}, nil
}
