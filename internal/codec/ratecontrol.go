package codec

import (
	"fmt"
	"math"
)

// RCMode selects the rate-control strategy, mirroring the reference
// transcode operations of the paper: constant quality for Upload,
// single-pass bitrate for Live, and two-pass bitrate for VOD/Popular.
type RCMode int

// Rate-control modes.
const (
	// RCConstQP holds the quantizer fixed (constant-quality / CRF
	// analogue: the encoder uses as many bits as the content needs).
	RCConstQP RCMode = iota
	// RCBitrate is single-pass average-bitrate control with a
	// per-frame feedback loop (low-latency: no lookahead).
	RCBitrate
	// RCTwoPass runs a fast measurement pass, allocates the bit budget
	// across frames by measured complexity, then encodes.
	RCTwoPass
)

// String names the mode.
func (m RCMode) String() string {
	switch m {
	case RCConstQP:
		return "crf"
	case RCBitrate:
		return "abr"
	case RCTwoPass:
		return "2pass"
	}
	return fmt.Sprintf("rc(%d)", int(m))
}

// Config holds the per-transcode parameters of an encode.
type Config struct {
	// RC selects the rate-control mode.
	RC RCMode
	// QP is the constant quantizer for RCConstQP (0..51; lower is
	// higher quality; ~18 is visually lossless, matching CRF 18 in
	// the paper's entropy definition).
	QP int
	// BitrateBPS is the target bitrate in bits per second for
	// RCBitrate and RCTwoPass.
	BitrateBPS float64
	// KeyInterval inserts an I-frame every KeyInterval frames;
	// 0 means only the first frame is intra.
	KeyInterval int
	// Slices splits each frame into this many independently coded
	// horizontal macroblock bands (0 or 1 = one slice). Slices trade
	// a little compression (prediction cannot cross the boundary) for
	// parallel encoding — the mechanism multi-core encoders and
	// hardware pipelines use.
	Slices int
	// RowsParallel controls wavefront parallelism inside each slice:
	// macroblock rows encode concurrently once the row above is two
	// macroblocks ahead (see wavefront.go). 0 = auto: row workers
	// share the process CPU gate (syncx.CPU) and engage only when
	// spare capacity exists; 1 = strictly serial rows (wavefront
	// off); 2..64 = exactly that many dedicated row lanes regardless
	// of gate capacity, for tests and benchmarks that must exercise
	// the concurrent path on any host. Every setting produces the
	// identical bitstream — only scheduling changes.
	RowsParallel int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.RC {
	case RCConstQP:
		if c.QP < 0 || c.QP > 51 {
			return fmt.Errorf("codec: QP %d out of [0,51]", c.QP)
		}
	case RCBitrate, RCTwoPass:
		if c.BitrateBPS <= 0 {
			return fmt.Errorf("codec: non-positive target bitrate %v", c.BitrateBPS)
		}
	default:
		return fmt.Errorf("codec: unknown rate-control mode %d", int(c.RC))
	}
	if c.KeyInterval < 0 {
		return fmt.Errorf("codec: negative key interval %d", c.KeyInterval)
	}
	if c.Slices < 0 || c.Slices > 64 {
		return fmt.Errorf("codec: slice count %d out of [0,64]", c.Slices)
	}
	if c.RowsParallel < 0 || c.RowsParallel > 64 {
		return fmt.Errorf("codec: rows-parallel %d out of [0,64]", c.RowsParallel)
	}
	return nil
}

// rateControl drives per-frame QP selection.
type rateControl struct {
	mode            RCMode
	qp              int // current P-frame QP
	targetFrameBits float64
	produced        float64
	planned         float64
	// Two-pass state.
	budgets []float64
	passQP  []int
	// feedback accumulators
	adjust int
}

// newRateControl initializes the controller. For two-pass mode,
// firstPassBits carries the per-frame complexity measured by the
// first pass at firstPassQP.
func newRateControl(cfg Config, pixelsPerFrame int, fps float64, frames int, firstPassBits []int64, firstPassQP int) *rateControl {
	rc := &rateControl{mode: cfg.RC}
	switch cfg.RC {
	case RCConstQP:
		rc.qp = cfg.QP
	case RCBitrate:
		rc.targetFrameBits = cfg.BitrateBPS / fps
		rc.qp = initialQP(rc.targetFrameBits, pixelsPerFrame)
	case RCTwoPass:
		rc.targetFrameBits = cfg.BitrateBPS / fps
		total := rc.targetFrameBits * float64(frames)
		rc.budgets = make([]float64, frames)
		rc.passQP = make([]int, frames)
		var sum float64
		pow := make([]float64, frames)
		for i, b := range firstPassBits {
			pow[i] = math.Pow(float64(b)+1, 0.7)
			sum += pow[i]
		}
		for i := range rc.budgets {
			rc.budgets[i] = total * pow[i] / sum
			// Rate model: bits halve roughly every +7 QP.
			delta := 7 * math.Log2(float64(firstPassBits[i]+1)/rc.budgets[i])
			rc.passQP[i] = clampQP(firstPassQP + int(math.Round(delta)))
		}
	}
	return rc
}

// initialQP estimates a starting quantizer from the target bits per
// pixel using the codec's empirical rate curve.
func initialQP(frameBits float64, pixelsPerFrame int) int {
	bpp := frameBits / float64(pixelsPerFrame)
	if bpp <= 0 {
		return 40
	}
	return clampQP(int(math.Round(16 - 6*math.Log2(bpp))))
}

func clampQP(qp int) int {
	if qp < 2 {
		return 2
	}
	if qp > 51 {
		return 51
	}
	return qp
}

// frameQP returns the quantizer for frame i of the given type.
// I frames are quantized slightly finer, as every encoder does,
// because their quality propagates through the GOP.
func (rc *rateControl) frameQP(i int, ftype int) int {
	var qp int
	switch rc.mode {
	case RCConstQP, RCBitrate:
		qp = rc.qp
	case RCTwoPass:
		qp = rc.passQP[i] + rc.adjust
	}
	if ftype == frameI {
		qp -= 2
	}
	return clampQP(qp)
}

// update feeds back the actual size of frame i.
func (rc *rateControl) update(i int, bits int64) {
	switch rc.mode {
	case RCConstQP:
		return
	case RCBitrate:
		rc.produced += float64(bits)
		rc.planned += rc.targetFrameBits
	case RCTwoPass:
		rc.produced += float64(bits)
		rc.planned += rc.budgets[i]
	}
	ratio := rc.produced / rc.planned
	step := 0
	switch {
	case ratio > 1.5:
		step = 2
	case ratio > 1.10:
		step = 1
	case ratio < 0.65:
		step = -2
	case ratio < 0.90:
		step = -1
	}
	if rc.mode == RCBitrate {
		rc.qp = clampQP(rc.qp + step)
	} else {
		rc.adjust += step
		if rc.adjust > 8 {
			rc.adjust = 8
		}
		if rc.adjust < -8 {
			rc.adjust = -8
		}
	}
}
