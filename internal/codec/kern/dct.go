package kern

// Fixed-size integer DCT kernels. These compute exactly the same
// matrix products as transform.Forward/Inverse (Q10 basis, Q3
// coefficient scale) but with the butterfly factorization of the
// DCT-II basis symmetry: row k of the basis is symmetric (even k) or
// antisymmetric (odd k) about its midpoint, so an N-point product
// splits into an N/2-point product over sums and one over differences.
// Every intermediate is an int64 sum of exact integer terms, so the
// result is bit-identical to the reference matrix multiply — only the
// association of additions changes, which is exact in integer
// arithmetic. Slice-to-array-pointer conversions hoist all bounds
// checks to one guard per call.
//
// Shifts and basis constants mirror internal/codec/transform and are
// locked by the cross-check tests there and in this package.

const (
	fwdShift = 17 // Q10·Q10 product → Q3 coefficients
	invShift = 23 // Q3·Q10·Q10 product → Q0 residual
)

func roundShift(v int64, shift uint) int64 {
	if v >= 0 {
		return (v + 1<<(shift-1)) >> shift
	}
	return -((-v + 1<<(shift-1)) >> shift)
}

// FwdDCT4 applies the 4×4 forward DCT to src (row-major residual) and
// writes Q3 coefficients to dst. src and dst may alias; both must
// hold at least 16 elements.
//
//vbench:noalloc
func FwdDCT4(src, dst []int32) {
	s := (*[16]int32)(src)
	d := (*[16]int32)(dst)
	var t [16]int64
	for c := 0; c < 4; c++ {
		s0 := int64(s[c])
		s1 := int64(s[4+c])
		s2 := int64(s[8+c])
		s3 := int64(s[12+c])
		e0, e1 := s0+s3, s1+s2
		o0, o1 := s0-s3, s1-s2
		t[c] = 512 * (e0 + e1)
		t[8+c] = 512 * (e0 - e1)
		t[4+c] = 669*o0 + 277*o1
		t[12+c] = 277*o0 - 669*o1
	}
	for r := 0; r < 16; r += 4 {
		r0, r1, r2, r3 := t[r], t[r+1], t[r+2], t[r+3]
		e0, e1 := r0+r3, r1+r2
		o0, o1 := r0-r3, r1-r2
		d[r] = int32(roundShift(512*(e0+e1), fwdShift))
		d[r+2] = int32(roundShift(512*(e0-e1), fwdShift))
		d[r+1] = int32(roundShift(669*o0+277*o1, fwdShift))
		d[r+3] = int32(roundShift(277*o0-669*o1, fwdShift))
	}
}

// InvDCT4 applies the 4×4 inverse DCT to Q3 coefficients in src and
// writes the reconstructed residual to dst. src and dst may alias.
//
//vbench:noalloc
func InvDCT4(src, dst []int32) {
	s := (*[16]int32)(src)
	d := (*[16]int32)(dst)
	var t [16]int64
	for c := 0; c < 4; c++ {
		c0 := int64(s[c])
		c1 := int64(s[4+c])
		c2 := int64(s[8+c])
		c3 := int64(s[12+c])
		e0 := 512 * (c0 + c2)
		e1 := 512 * (c0 - c2)
		o0 := 669*c1 + 277*c3
		o1 := 277*c1 - 669*c3
		t[c] = e0 + o0
		t[4+c] = e1 + o1
		t[8+c] = e1 - o1
		t[12+c] = e0 - o0
	}
	for r := 0; r < 16; r += 4 {
		r0, r1, r2, r3 := t[r], t[r+1], t[r+2], t[r+3]
		e0 := 512 * (r0 + r2)
		e1 := 512 * (r0 - r2)
		o0 := 669*r1 + 277*r3
		o1 := 277*r1 - 669*r3
		d[r] = int32(roundShift(e0+o0, invShift))
		d[r+1] = int32(roundShift(e1+o1, invShift))
		d[r+2] = int32(roundShift(e1-o1, invShift))
		d[r+3] = int32(roundShift(e0-o0, invShift))
	}
}

// fwd8 runs the 8-point forward butterfly on one column or row,
// writing the eight Q10-weighted sums to out.
func fwd8(s0, s1, s2, s3, s4, s5, s6, s7 int64, out *[8]int64) {
	a0, a1, a2, a3 := s0+s7, s1+s6, s2+s5, s3+s4
	b0, b1, b2, b3 := s0-s7, s1-s6, s2-s5, s3-s4
	ee0, ee1 := a0+a3, a1+a2
	eo0, eo1 := a0-a3, a1-a2
	out[0] = 362 * (ee0 + ee1)
	out[4] = 362 * (ee0 - ee1)
	out[2] = 473*eo0 + 196*eo1
	out[6] = 196*eo0 - 473*eo1
	out[1] = 502*b0 + 426*b1 + 284*b2 + 100*b3
	out[3] = 426*b0 - 100*b1 - 502*b2 - 284*b3
	out[5] = 284*b0 - 502*b1 + 100*b2 + 426*b3
	out[7] = 100*b0 - 284*b1 + 426*b2 - 502*b3
}

// inv8 runs the 8-point inverse butterfly (transposed basis) on one
// column or row of coefficients.
func inv8(c0, c1, c2, c3, c4, c5, c6, c7 int64, out *[8]int64) {
	ee0 := 362 * (c0 + c4)
	ee1 := 362 * (c0 - c4)
	eo0 := 473*c2 + 196*c6
	eo1 := 196*c2 - 473*c6
	e0, e1, e2, e3 := ee0+eo0, ee1+eo1, ee1-eo1, ee0-eo0
	o0 := 502*c1 + 426*c3 + 284*c5 + 100*c7
	o1 := 426*c1 - 100*c3 - 502*c5 - 284*c7
	o2 := 284*c1 - 502*c3 + 100*c5 + 426*c7
	o3 := 100*c1 - 284*c3 + 426*c5 - 502*c7
	out[0] = e0 + o0
	out[1] = e1 + o1
	out[2] = e2 + o2
	out[3] = e3 + o3
	out[4] = e3 - o3
	out[5] = e2 - o2
	out[6] = e1 - o1
	out[7] = e0 - o0
}

// FwdDCT8 applies the 8×8 forward DCT; see FwdDCT4.
//
//vbench:noalloc
func FwdDCT8(src, dst []int32) {
	s := (*[64]int32)(src)
	d := (*[64]int32)(dst)
	var t [64]int64
	var col [8]int64
	for c := 0; c < 8; c++ {
		fwd8(int64(s[c]), int64(s[8+c]), int64(s[16+c]), int64(s[24+c]),
			int64(s[32+c]), int64(s[40+c]), int64(s[48+c]), int64(s[56+c]), &col)
		for k := 0; k < 8; k++ {
			t[k*8+c] = col[k]
		}
	}
	for r := 0; r < 64; r += 8 {
		fwd8(t[r], t[r+1], t[r+2], t[r+3], t[r+4], t[r+5], t[r+6], t[r+7], &col)
		for k := 0; k < 8; k++ {
			d[r+k] = int32(roundShift(col[k], fwdShift))
		}
	}
}

// InvDCT8 applies the 8×8 inverse DCT; see InvDCT4.
//
//vbench:noalloc
func InvDCT8(src, dst []int32) {
	s := (*[64]int32)(src)
	d := (*[64]int32)(dst)
	var t [64]int64
	var col [8]int64
	for c := 0; c < 8; c++ {
		inv8(int64(s[c]), int64(s[8+c]), int64(s[16+c]), int64(s[24+c]),
			int64(s[32+c]), int64(s[40+c]), int64(s[48+c]), int64(s[56+c]), &col)
		for k := 0; k < 8; k++ {
			t[k*8+c] = col[k]
		}
	}
	for r := 0; r < 64; r += 8 {
		inv8(t[r], t[r+1], t[r+2], t[r+3], t[r+4], t[r+5], t[r+6], t[r+7], &col)
		for k := 0; k < 8; k++ {
			d[r+k] = int32(roundShift(col[k], invShift))
		}
	}
}
