#!/usr/bin/env bash
# e2e_fleet.sh — loopback smoke test of the vbenchd master/worker
# service, including the hard fault case: a worker SIGKILLed while it
# holds a lease. Asserts the batch drains with every job done exactly
# once (zero lost jobs, zero double-completions) and that the lease
# expiry and retry machinery actually fired.
#
# Usage: scripts/e2e_fleet.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d /tmp/vbench-e2e.XXXXXX)}"
mkdir -p "$WORK"

JOBS=50          # total batch size
LONG_NOOPS=2     # long jobs that pin both workers' leases for the kill
ENCODES=4        # real codec transcodes in the mix
SHORT_NOOPS=$((JOBS - LONG_NOOPS - ENCODES - 1))  # -1 for the fail-first job

cleanup() {
    local rc=$?
    kill -TERM "${WA_PID:-}" "${MASTER_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
    if [ $rc -ne 0 ]; then
        echo "=== master log ==="; cat "$WORK/master.log" || true
        echo "=== worker A log ==="; cat "$WORK/workerA.log" || true
        echo "=== worker B log ==="; cat "$WORK/workerB.log" || true
    fi
    rm -rf "$WORK"
    exit $rc
}
trap cleanup EXIT

echo "e2e: building vbenchd"
go build -o "$WORK/vbenchd" ./cmd/vbenchd
VBD="$WORK/vbenchd"

echo "e2e: starting master"
"$VBD" master -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -lease-ttl 2s -backoff 100ms -sweep 200ms -max-attempts 5 \
    -cache-dir "$WORK/cache" \
    -trace "$WORK/master-trace.json" \
    2>"$WORK/master.log" &
MASTER_PID=$!
for _ in $(seq 100); do [ -s "$WORK/addr" ] && break; sleep 0.1; done
[ -s "$WORK/addr" ] || { echo "e2e: master never bound"; exit 1; }
MASTER="http://$(cat "$WORK/addr")"
echo "e2e: master at $MASTER"

# Both workers trace; workerB is SIGKILLed below, so only workerA's
# trace file ever appears — the merge asserts on exactly 2 processes.
"$VBD" worker -master "$MASTER" -id workerA -poll 25ms -heartbeat 500ms \
    -cache-dir "$WORK/cache" \
    -trace "$WORK/workerA-trace.json" \
    2>"$WORK/workerA.log" &
WA_PID=$!
"$VBD" worker -master "$MASTER" -id workerB -poll 25ms -heartbeat 500ms \
    -cache-dir "$WORK/cache" \
    -trace "$WORK/workerB-trace.json" \
    2>"$WORK/workerB.log" &
WB_PID=$!

# Two long noops first: both workers lease one immediately and hold it
# for 3 seconds, guaranteeing workerB dies mid-lease below.
"$VBD" submit -master "$MASTER" -kind noop -n $LONG_NOOPS -sleep-ms 3000 -tag pin
"$VBD" submit -master "$MASTER" -kind noop -n $SHORT_NOOPS -sleep-ms 20 -tag bulk
"$VBD" submit -master "$MASTER" -kind noop -n 1 -sleep-ms 20 -fail-first 1 -tag flaky
"$VBD" submit -master "$MASTER" -n $ENCODES -clip girl -encoder x264-veryfast \
    -scale 16 -duration 0.2 -qp 30 -tag encode

sleep 0.8   # both workers are now mid-lease on the long noops

# Live ops surface, mid-run: /status must serve its fixed schema with
# both workers visible, and /metrics must serve the text exposition.
STATUS=$(curl -fsS "$MASTER/status")
echo "$STATUS" | jq -e '.uptime_seconds >= 0 and (.leases | type == "array")
    and ([.workers[].id] | contains(["workerA", "workerB"]))
    and .timeline_events > 0' >/dev/null \
    || { echo "e2e: FAIL — /status schema: $STATUS"; exit 1; }
curl -fsS "$MASTER/metrics" | head -1 | grep -q '^# counters$' \
    || { echo "e2e: FAIL — /metrics is not the text exposition"; exit 1; }
"$VBD" status -master "$MASTER" >"$WORK/status.txt" \
    || { echo "e2e: FAIL — vbenchd status"; exit 1; }
grep -q '^master up ' "$WORK/status.txt" \
    || { echo "e2e: FAIL — status rendering"; exit 1; }

echo "e2e: SIGKILL workerB (pid $WB_PID) mid-lease"
kill -9 "$WB_PID"

OUT=$("$VBD" wait -master "$MASTER" -expect $JOBS -timeout 120s)
echo "$OUT"

# The killed worker's lease must have expired and requeued, and the
# injected transient failure must have retried.
case "$OUT" in
    *" 0 lease expiries"*) echo "e2e: FAIL — workerB's lease never expired"; exit 1;;
esac
case "$OUT" in
    *" 0 retries"*) echo "e2e: FAIL — nothing retried"; exit 1;;
esac
# In this controlled scenario every ack lands exactly once: the killed
# worker never reports, and live workers never re-post applied acks.
case "$OUT" in
    *" 0 duplicate acks, 0 stale acks"*) ;;
    *) echo "e2e: FAIL — unexpected duplicate or stale acks"; exit 1;;
esac

# Duplicate-submission wave: resubmit the exact encode specs. Their
# results sit in the shared cache, so the master completes them at
# submission — zero new worker leases, zero new encodes — and the
# fleet.cache_dedup_hits counter records the dedup. (Wave 1 already
# deduped its 4 identical encodes onto one leader, so the counter is
# nonzero before the wave; the lease count is the hard assertion.)
metric() { curl -fsS "$MASTER/metrics" | awk -v m="$1" '$1 == m {print $2}'; }
LEASES_BEFORE=$(metric fleet.leases)
echo "e2e: duplicate-submission wave ($ENCODES cached encodes, $LEASES_BEFORE leases so far)"
"$VBD" submit -master "$MASTER" -n $ENCODES -clip girl -encoder x264-veryfast \
    -scale 16 -duration 0.2 -qp 30 -tag encode-rerun
OUT2=$("$VBD" wait -master "$MASTER" -expect $((JOBS + ENCODES)) -timeout 60s)
echo "$OUT2"
LEASES_AFTER=$(metric fleet.leases)
DEDUP_HITS=$(metric fleet.cache_dedup_hits)
[ "$LEASES_AFTER" = "$LEASES_BEFORE" ] \
    || { echo "e2e: FAIL — duplicate wave took worker leases ($LEASES_BEFORE -> $LEASES_AFTER)"; exit 1; }
[ "${DEDUP_HITS:-0}" -gt 0 ] \
    || { echo "e2e: FAIL — fleet.cache_dedup_hits is ${DEDUP_HITS:-unset}"; exit 1; }
echo "e2e: duplicate wave served from cache ($DEDUP_HITS dedup hits, leases still $LEASES_AFTER)"

echo "e2e: draining workerA and master"
kill -TERM "$WA_PID"; wait "$WA_PID"
kill -TERM "$MASTER_PID"; wait "$MASTER_PID" || true

# Stitch the surviving trace files. The SIGKILLed workerB never wrote
# one, so the merge covers exactly the master + workerA processes; it
# must resolve at least one cross-process lease→execute link and leave
# no orphans (every execution span's lease span is in the master file).
[ -s "$WORK/master-trace.json" ] || { echo "e2e: FAIL — master wrote no trace"; exit 1; }
[ -s "$WORK/workerA-trace.json" ] || { echo "e2e: FAIL — workerA wrote no trace"; exit 1; }
[ ! -e "$WORK/workerB-trace.json" ] || { echo "e2e: FAIL — killed workerB left a trace"; exit 1; }
"$VBD" trace -o "$WORK/merged-trace.json" \
    -min-processes 2 -min-links 1 -max-orphans 0 \
    "$WORK/master-trace.json" "$WORK/workerA-trace.json" \
    || { echo "e2e: FAIL — trace stitch"; exit 1; }
jq -e '[.traceEvents[] | select(.ph == "X")] | length > 0' \
    "$WORK/merged-trace.json" >/dev/null \
    || { echo "e2e: FAIL — merged trace is not valid JSON with spans"; exit 1; }

echo "e2e: PASS — $JOBS jobs done exactly once through a worker kill, trace stitched across 2 processes"
