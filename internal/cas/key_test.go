package cas

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/keys.golden from the current serialization")

// TestConfigFieldsCovered pins the cache-key serialization to the
// shape of codec.Config and codec.Tools: adding a field to either
// struct without teaching appendConfig/appendTools about it fails
// here, because an unkeyed encode-affecting knob would alias cache
// entries.
func TestConfigFieldsCovered(t *testing.T) {
	cases := []struct {
		typ    reflect.Type
		keyed  []string
		target string
	}{
		{reflect.TypeOf(codec.Config{}), configKeyFields, "appendConfig"},
		{reflect.TypeOf(codec.Tools{}), toolsKeyFields, "appendTools"},
	}
	for _, c := range cases {
		covered := map[string]bool{}
		for _, name := range c.keyed {
			covered[name] = true
		}
		for i := 0; i < c.typ.NumField(); i++ {
			f := c.typ.Field(i)
			if !f.IsExported() {
				continue
			}
			if !covered[f.Name] {
				t.Errorf("%s.%s is not covered by the cache key: add it to %s and its field list",
					c.typ.Name(), f.Name, c.target)
			}
			delete(covered, f.Name)
		}
		for name := range covered {
			t.Errorf("%s keys unknown field %s (removed from %s?)", c.target, name, c.typ.Name())
		}
	}
}

// baseParts is a fully populated key input with a fixed fingerprint,
// so perturbation and golden tests are insulated from codec edits
// (the real fingerprint exists to change on those).
func baseParts() KeyParts {
	return KeyParts{
		Content:     "pix:test-content",
		Tools:       profiles.X264(codec.PresetMedium).Tools,
		Config:      codec.Config{RC: codec.RCConstQP, QP: 30, KeyInterval: 12, Slices: 2, RowsParallel: 1},
		Scope:       "",
		Fingerprint: "fixed-test-fingerprint",
	}
}

// TestEveryFieldChangesKey perturbs each exported Config and Tools
// field in turn and asserts the key moves — the other half of the
// coverage guarantee (listed AND actually serialized).
func TestEveryFieldChangesKey(t *testing.T) {
	base := baseParts().Key()
	check := func(what string, p KeyParts) {
		t.Helper()
		if p.Key() == base {
			t.Errorf("perturbing %s did not change the cache key", what)
		}
	}
	perturbStruct := func(name string, pick func(p *KeyParts) reflect.Value) {
		typ := pick(&KeyParts{}).Type()
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			p := baseParts()
			perturb(t, pick(&p).Field(i))
			check(name+"."+f.Name, p)
		}
	}
	perturbStruct("Config", func(p *KeyParts) reflect.Value { return reflect.ValueOf(&p.Config).Elem() })
	perturbStruct("Tools", func(p *KeyParts) reflect.Value { return reflect.ValueOf(&p.Tools).Elem() })

	p := baseParts()
	p.Content = "pix:other-content"
	check("Content", p)
	p = baseParts()
	p.Scope = "other-scope"
	check("Scope", p)
	p = baseParts()
	p.Fingerprint = "other-fingerprint"
	check("Fingerprint", p)
}

// perturb sets v to a value different from its current one.
func perturb(t *testing.T, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	case reflect.String:
		v.SetString(v.String() + "+x")
	default:
		t.Fatalf("perturb: unsupported kind %v — extend the cache key tests", v.Kind())
	}
}

// TestFlipOnePixelChangesKey is the tentpole correctness pin at the
// content layer: a single-sample difference in the input forces a
// different key (and so a cache miss).
func TestFlipOnePixelChangesKey(t *testing.T) {
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(32, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	eng := profiles.X264(codec.PresetFast)
	cfg := codec.Config{RC: codec.RCConstQP, QP: 30}
	k1 := SeqKey(eng, seq, cfg)
	seq2 := seq.Clone()
	seq2.Frames[0].Y[0] ^= 1
	if k2 := SeqKey(eng, seq2, cfg); k1 == k2 {
		t.Fatal("flipping one pixel did not change the cache key")
	}
	if ContentDigest(seq) == ContentDigest(seq2) {
		t.Fatal("flipping one pixel did not change the content digest")
	}
}

// TestKeyStabilityGolden pins the canonical serialization: these keys
// must never change for existing inputs, or every deployed store
// silently loses its entries. If this fails you changed the key
// derivation — bump keyVersion and regenerate testdata/keys.golden
// (see the writeGolden helper below) only if that was intentional.
func TestKeyStabilityGolden(t *testing.T) {
	var b strings.Builder
	for _, c := range goldenCases() {
		fmt.Fprintf(&b, "%s %s\n", c.name, c.parts.Key())
	}
	got := b.String()
	path := filepath.Join("testdata", "keys.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate with go test -run TestKeyStabilityGolden -update-golden)", path, err)
	}
	if got != string(want) {
		t.Errorf("cache keys drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

type goldenCase struct {
	name  string
	parts KeyParts
}

func goldenCases() []goldenCase {
	abr := baseParts()
	abr.Config = codec.Config{RC: codec.RCBitrate, BitrateBPS: 1.25e6}
	twoPass := baseParts()
	twoPass.Config = codec.Config{RC: codec.RCTwoPass, BitrateBPS: 4e6, KeyInterval: 48}
	twoPass.Tools = profiles.X265(codec.PresetVerySlow).Tools
	scoped := baseParts()
	scoped.Scope = "entropy"
	return []goldenCase{
		{"cqp-x264-medium", baseParts()},
		{"abr-x264-medium", abr},
		{"2pass-x265-veryslow", twoPass},
		{"scoped-entropy", scoped},
	}
}
