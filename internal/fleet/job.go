// Package fleet is the distributed transcoding service of this
// repository: a master that owns a durable in-memory job queue with a
// validated state machine (pending → leased → done/failed, idempotent
// completion, heartbeat-based lease expiry, bounded retries with
// exponential backoff, transient-vs-terminal error classification)
// and pull-based workers that run real internal/codec encodes.
//
// The scheduler core is clock-abstracted: cmd/vbenchd drives the
// Queue with a wall clock over net/http, and the discrete-event Sim
// in this package drives the identical Queue code with a simulated
// clock, making it the deterministic twin used by tests and by the
// internal/service fleet economics simulator.
package fleet

import (
	"fmt"
	"time"
)

// State is a job's position in the lifecycle state machine.
type State int

// The job states. Done and Failed are terminal.
const (
	Pending State = iota // submitted or requeued, waiting for a lease
	Leased               // held by a worker under a heartbeat lease
	Done                 // completed exactly once
	Failed               // terminal error or retries exhausted
	numStates
)

var stateNames = [numStates]string{"pending", "leased", "done", "failed"}

// String names the state.
func (s State) String() string {
	if s < 0 || s >= numStates {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalText serializes the state name (for snapshots and the HTTP
// API).
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name.
func (s *State) UnmarshalText(b []byte) error {
	for i, n := range stateNames {
		if n == string(b) {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown state %q", b)
}

// validEdge is the transition relation of the state machine. Every
// state change funnels through Queue.setState, which panics on an
// edge not listed here — an invalid transition is a scheduler bug,
// never a recoverable condition.
var validEdge = [numStates][numStates]bool{
	// Done = served from the transcode cache, no lease needed;
	// Pending self-edge = a dedup role change (parked as follower,
	// promoted to leader) recorded on the timeline without the job
	// leaving the pending state.
	Pending: {Pending: true, Leased: true, Done: true},
	Leased:  {Done: true, Failed: true, Pending: true}, // Pending = expiry or transient retry
}

// Job kinds understood by the vbenchd worker. The queue itself is
// payload-agnostic: any Kind round-trips through it, so embedders
// (internal/service) can schedule their own job types on the same
// state machine.
const (
	KindEncode = "encode" // a real internal/codec transcode
	KindNoop   = "noop"   // sleeps SleepMS; used by tests and smoke runs
)

// JobSpec describes one unit of work. For KindEncode it names a
// corpus clip, an encoder ("family-preset", e.g. "x264-medium" or
// "x265-veryslow"), and the transcode parameters.
type JobSpec struct {
	// Kind selects the payload type; empty means KindEncode.
	Kind string `json:"kind,omitempty"`
	// Tag is an opaque caller label (e.g. the harness grid cell).
	Tag string `json:"tag,omitempty"`

	// Encode payload.
	Clip        string  `json:"clip,omitempty"`
	Scale       int     `json:"scale,omitempty"`
	Duration    float64 `json:"duration,omitempty"`
	Encoder     string  `json:"encoder,omitempty"`
	RC          string  `json:"rc,omitempty"` // "cqp" (default), "abr", "2pass"
	QP          int     `json:"qp,omitempty"`
	BitrateBPS  float64 `json:"bitrate_bps,omitempty"`
	KeyInterval int     `json:"key_interval,omitempty"`
	Slices      int     `json:"slices,omitempty"`
	// RowsParallel selects wavefront row parallelism inside each slice
	// (see codec.Config.RowsParallel); 0 lets the worker's own default
	// apply.
	RowsParallel int `json:"rows_parallel,omitempty"`

	// Noop payload.
	SleepMS int `json:"sleep_ms,omitempty"`

	// FailFirst injects a transient failure on the first N attempts;
	// fault-injection hook for tests and the e2e smoke.
	FailFirst int `json:"fail_first,omitempty"`
}

// Validate checks what the queue can check without running the job:
// an encode spec must at least name its clip and encoder with
// positive geometry. Deep validation (unknown clip, bad QP) happens
// at execution time and classifies as terminal.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case "", KindEncode:
		if s.Clip == "" || s.Encoder == "" {
			return fmt.Errorf("fleet: encode job needs clip and encoder (got clip=%q encoder=%q)", s.Clip, s.Encoder)
		}
		if s.Scale < 1 || s.Duration <= 0 {
			return fmt.Errorf("fleet: encode job needs scale >= 1 and duration > 0 (got scale=%d duration=%v)", s.Scale, s.Duration)
		}
	default:
		// Other kinds (noop, embedder-defined) carry no queue-checked
		// payload.
	}
	return nil
}

// Result is what a completed job reports back.
type Result struct {
	// Bytes is the bitstream size (encode jobs).
	Bytes int64 `json:"bytes,omitempty"`
	// PSNR is the reconstruction quality in dB (encode jobs).
	PSNR float64 `json:"psnr,omitempty"`
	// Seconds is the modeled encode time under the engine's cost
	// model (or the slept time for noop jobs).
	Seconds float64 `json:"seconds,omitempty"`
	// InputBytes is the raw 4:2:0 input size (encode jobs); workers
	// derive their MB/s throughput histograms from it.
	InputBytes int64 `json:"input_bytes,omitempty"`
	// Worker and Attempt identify the execution that produced the
	// result.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// Job is one queue entry. The queue hands out value copies; the
// authoritative record lives behind the queue mutex.
type Job struct {
	ID    int     `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`

	// Attempt counts leases granted so far; the current lease (while
	// Leased) is attempt number Attempt.
	Attempt int `json:"attempt"`
	// Worker holds the current (or last) lease.
	Worker string `json:"worker,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	// ReadyAt is when the job became (or becomes, after backoff)
	// leasable.
	ReadyAt time.Time `json:"ready_at"`
	// LeaseExpiry is the heartbeat deadline of the current lease.
	LeaseExpiry time.Time `json:"lease_expiry,omitempty"`
	// LeasedAt is when the current (or last) lease was granted; the
	// ops surface derives lease ages from it.
	LeasedAt  time.Time `json:"leased_at,omitempty"`
	StartedAt time.Time `json:"started_at,omitempty"`
	DoneAt    time.Time `json:"done_at,omitempty"`

	// Completions counts applied completions; the exactly-once
	// invariant is Completions <= 1, always.
	Completions int `json:"completions"`
	// DupAcks and StaleAcks count ignored duplicate (already done)
	// and stale (attempt no longer current) acknowledgements.
	DupAcks   int `json:"dup_acks,omitempty"`
	StaleAcks int `json:"stale_acks,omitempty"`
	// Expiries counts leases this job lost to heartbeat timeout.
	Expiries int `json:"expiries,omitempty"`
	// Retries counts requeues (transient failures and expiries).
	Retries int `json:"retries,omitempty"`
	// DedupOf, while the job is pending, names the in-flight leader
	// job computing the same cache key; this job is parked (never
	// leased) and completes from the leader's result. It is retained
	// after completion as provenance ("this result was deduplicated
	// from job N").
	DedupOf int `json:"dedup_of,omitempty"`

	Result  *Result `json:"result,omitempty"`
	LastErr string  `json:"last_err,omitempty"`

	// Timeline is the job's bounded event ring (most recent
	// timelineCap transitions); TimelineDropped counts older events
	// the ring shed. Persisted in snapshots like the rest of the job.
	Timeline        []TimelineEvent `json:"timeline,omitempty"`
	TimelineDropped int             `json:"timeline_dropped,omitempty"`
}

// clone returns a detached copy safe to hand outside the queue lock.
func (j *Job) clone() Job {
	c := *j
	if j.Result != nil {
		r := *j.Result
		c.Result = &r
	}
	if j.Timeline != nil {
		c.Timeline = append([]TimelineEvent(nil), j.Timeline...)
	}
	return c
}
