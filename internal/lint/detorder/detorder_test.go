package detorder_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detorder.Analyzer)
}
