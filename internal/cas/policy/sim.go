package policy

import (
	"container/list"
	"fmt"

	"vbench/internal/rng"
)

// Report is one policy's simulated outcome over a workload. All
// fields are deterministic in (workload, policy): the request stream
// is drawn from a seeded generator and the simulator holds no other
// state.
type Report struct {
	// Policy is the policy's display name.
	Policy string `json:"policy"`
	// Requests and Hits count the stream and its cache hits.
	Requests int `json:"requests"`
	Hits     int `json:"hits"`
	// HitRatio is Hits / Requests.
	HitRatio float64 `json:"hit_ratio"`
	// RecomputeSeconds is the total re-transcode compute the misses
	// cost (the compute side of the storage-vs-compute trade).
	RecomputeSeconds float64 `json:"recompute_seconds"`
	// PeakBytes and EndBytes are the high-water and final storage
	// footprints; AvgBytes is the time-weighted mean footprint (the
	// storage side of the trade — rent is paid on bytes × time).
	PeakBytes int64   `json:"peak_bytes"`
	EndBytes  int64   `json:"end_bytes"`
	AvgBytes  float64 `json:"avg_bytes"`
}

// Simulate replays a popularity-driven request stream against one
// retention policy and reports the resulting hit ratio, re-transcode
// compute, and storage footprint. The clock is virtual: requests
// arrive every 1/RequestsPerSec seconds, so runs are exactly
// reproducible for a fixed seed.
func Simulate(w Workload, p Policy) (Report, error) {
	if len(w.Renditions) == 0 {
		return Report{}, fmt.Errorf("policy: workload has no renditions")
	}
	if w.Requests <= 0 {
		return Report{}, fmt.Errorf("policy: workload needs Requests > 0 (got %d)", w.Requests)
	}
	if w.RequestsPerSec <= 0 {
		return Report{}, fmt.Errorf("policy: workload needs RequestsPerSec > 0 (got %g)", w.RequestsPerSec)
	}

	// Cumulative per-rendition request probabilities for inverse-CDF
	// sampling (index order is catalogue order: deterministic).
	cum := make([]float64, len(w.Renditions))
	var total float64
	for i, r := range w.Renditions {
		total += w.share(r.Rank)
		cum[i] = total
	}

	rep := Report{Policy: p.Name(), Requests: w.Requests}
	rand := rng.New(uint64(w.Seed))
	dt := 1 / w.RequestsPerSec
	makespan := float64(w.Requests) * dt

	// The cache: an LRU list of catalogue indices plus a byte total.
	type entry struct {
		idx  int
		elem *list.Element
	}
	lru := list.New() // front = most recently used; values are catalogue indices
	cached := map[int]*entry{}
	var bytes, byteSeconds float64

	for req := 0; req < w.Requests; req++ {
		// Storage rent accrues over the interval ending at this
		// request; footprint changes below take effect afterward.
		byteSeconds += bytes * dt

		x := rand.Float64() * total
		idx := len(w.Renditions) - 1
		for i, c := range cum {
			if x < c {
				idx = i
				break
			}
		}
		r := w.Renditions[idx]

		if e, ok := cached[idx]; ok {
			rep.Hits++
			lru.MoveToFront(e.elem)
			continue
		}
		rep.RecomputeSeconds += r.EncodeSeconds
		if !p.Admit(r, w) {
			continue // serve and drop
		}
		e := &entry{idx: idx}
		e.elem = lru.PushFront(idx)
		cached[idx] = e
		bytes += float64(r.Bytes)
		if cap := p.CapBytes(); cap > 0 {
			for int64(bytes) > cap && lru.Len() > 1 {
				back := lru.Back()
				victim := back.Value.(int)
				if victim == idx {
					break // never evict the entry just served
				}
				lru.Remove(back)
				delete(cached, victim)
				bytes -= float64(w.Renditions[victim].Bytes)
			}
		}
		if int64(bytes) > rep.PeakBytes {
			rep.PeakBytes = int64(bytes)
		}
	}

	rep.HitRatio = float64(rep.Hits) / float64(rep.Requests)
	rep.EndBytes = int64(bytes)
	rep.AvgBytes = byteSeconds / makespan
	return rep, nil
}

// Sweep simulates every policy over the same workload (same seed,
// same stream) and returns the reports in argument order.
func Sweep(w Workload, policies ...Policy) ([]Report, error) {
	out := make([]Report, 0, len(policies))
	for _, p := range policies {
		rep, err := Simulate(w, p)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
