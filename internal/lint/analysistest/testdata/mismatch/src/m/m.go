// Package m holds deliberate expectation mismatches; the runner unit
// test asserts each one is reported.
package m

func bad() {}

func ok() {}

// unreported has a finding with no want directive.
func unreported() {
	bad()
}

// overclaimed wants a diagnostic that never fires.
func overclaimed() {
	ok() // want "call to bad"
}

// wrongFact wants a fact the toy analyzer never exports here.
func wrongFact() { // want toy:"marked wrongFact"
	ok()
}
