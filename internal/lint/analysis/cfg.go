package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the per-function control-flow graph the dataflow
// analyzers (locksafe, leakgo) run over. It is deliberately
// lightweight: blocks hold ast.Node statement lists in source order,
// edges model structured control flow (if/for/range/switch/select,
// break/continue/goto with labels, return, terminal panic), and
// expression-level ordering inside one node is left to the analyzer
// (they re-walk each node with ast.Inspect). Function literals are
// not descended into — each literal gets its own CFG.

// Block is one straight-line run of statements. Nodes never contains
// nested statement lists: compound statements contribute their
// non-body parts (an if condition, a range operand, a select comm
// clause) as individual nodes and route their bodies through edges.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, build
	// order), used for deterministic iteration.
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: returns, panics, and
	// the fall-through end of the body all lead here.
	Exit *Block
}

// BuildCFG constructs the graph for one function body. It never
// returns nil; an empty body yields entry → exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	b.resolveGotos()
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// cfgBuilder carries the under-construction graph plus the jump
// context stacks.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// loops is the stack of enclosing breakable/continuable contexts.
	loops []loopCtx
	// labels maps a label name to the block its statement starts in
	// (goto targets) once seen.
	labels map[string]*Block
	// pendingGotos are forward gotos resolved at the end.
	pendingGotos []pendingGoto
}

type loopCtx struct {
	label          string // enclosing label, "" if none
	brk, cont      *Block // cont nil for switch/select (break only)
	isLoop         bool
	fallthroughTgt *Block // next case clause, for fallthrough
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a fresh block reached from the current one.
func (b *cfgBuilder) startBlock() *Block {
	nb := b.newBlock()
	b.edge(b.cur, nb)
	b.cur = nb
	return nb
}

// deadBlock begins a fresh unreachable block (after return/branch).
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt adds one statement to the graph. label is the name of a
// directly-enclosing labeled statement ("" otherwise), consumed by
// loops and switches for labeled break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label targets the block the labeled statement starts in.
		nb := b.startBlock()
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = nb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		join := b.newBlock()
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			b.edge(head, exit)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.loops = append(b.loops, loopCtx{label: label, brk: exit, cont: post, isLoop: true})
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.startBlock()
		head.Nodes = append(head.Nodes, s)
		exit := b.newBlock()
		b.edge(head, exit)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.loops = append(b.loops, loopCtx{label: label, brk: exit, cont: head, isLoop: true})
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, label)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, label)

	case *ast.SelectStmt:
		// The SelectStmt node itself sits in the head block so
		// analyzers can classify blocking selects; each comm clause's
		// statement starts its clause block.
		b.cur.Nodes = append(b.cur.Nodes, s)
		head := b.cur
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, brk: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.deadBlock()

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findLoop(s.Label, false); t != nil && t.brk != nil {
				b.edge(b.cur, t.brk)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := b.findLoop(s.Label, true); t != nil && t.cont != nil {
				b.edge(b.cur, t.cont)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
		case token.GOTO:
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
		case token.FALLTHROUGH:
			if n := len(b.loops); n > 0 && b.loops[n-1].fallthroughTgt != nil {
				b.edge(b.cur, b.loops[n-1].fallthroughTgt)
			}
		}
		b.deadBlock()

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.cur, b.cfg.Exit)
				b.deadBlock()
			}
		}

	case nil:
		// e.g. a missing else; nothing to add.

	default:
		// Assign, Decl, Send, IncDec, Defer, Go, Empty: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchStmt handles expression and type switches: every clause forks
// from the head; a missing default adds a head → join edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, label string) {
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	head := b.cur
	join := b.newBlock()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cc := range clauses {
		ctx := loopCtx{label: label, brk: join}
		if i+1 < len(blocks) {
			ctx.fallthroughTgt = blocks[i+1]
		}
		b.loops = append(b.loops, ctx)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		b.stmtList(cc.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, join)
	}
	b.cur = join
}

// findLoop resolves a break/continue target. needLoop restricts the
// search to for/range contexts (continue); break also stops at
// switches and selects.
func (b *cfgBuilder) findLoop(label *ast.Ident, needLoop bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		c := &b.loops[i]
		if needLoop && !c.isLoop {
			continue
		}
		if label == nil || c.label == label.Name {
			return c
		}
	}
	return nil
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.pendingGotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		} else {
			// Unresolvable (malformed source): conservatively exit.
			b.edge(g.from, b.cfg.Exit)
		}
	}
}

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}
