package video

import "testing"

// drainFramePool empties the shared pool so a test observes only its
// own traffic.
func drainFramePool(t *testing.T) {
	t.Helper()
	for i := 0; i < 1024; i++ {
		if framePool.Get() == nil {
			return
		}
	}
	t.Fatal("frame pool did not drain")
}

func TestGetFrameIsPristine(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	drainFramePool(t)
	f := GetFrame(32, 16)
	for i := range f.Y {
		f.Y[i] = 200
	}
	for i := range f.Cb {
		f.Cb[i] = 7
		f.Cr[i] = 9
	}
	PutFrame(f)
	g := GetFrame(32, 16)
	if g != f {
		t.Fatal("pool did not reuse the returned frame")
	}
	fresh := NewFrame(32, 16)
	if !g.Equal(fresh) {
		t.Fatal("recycled frame is not reset to NewFrame state")
	}
}

func TestGetFrameSizeMismatchFallsBack(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	drainFramePool(t)
	small := GetFrame(16, 16)
	PutFrame(small)
	big := GetFrame(64, 64)
	if big == small {
		t.Fatal("pool handed out an undersized frame")
	}
	if big.Width != 64 || big.Height != 64 || len(big.Y) != 64*64 {
		t.Fatalf("fallback frame has wrong geometry %dx%d", big.Width, big.Height)
	}
	// A larger pooled frame may serve a smaller request by reslicing.
	PutFrame(big)
	shrunk := GetFrame(16, 16)
	if shrunk != big {
		t.Fatal("pool did not reslice the larger frame")
	}
	if shrunk.Width != 16 || shrunk.Height != 16 || len(shrunk.Y) != 16*16 || len(shrunk.Cb) != 8*8 {
		t.Fatalf("resliced frame has wrong geometry %dx%d", shrunk.Width, shrunk.Height)
	}
	if !shrunk.Equal(NewFrame(16, 16)) {
		t.Fatal("resliced frame is not reset to NewFrame state")
	}
}

func TestSetFramePoolingOffBypassesPool(t *testing.T) {
	drainFramePool(t)
	SetFramePooling(false)
	defer SetFramePooling(true)
	f := GetFrame(16, 16)
	PutFrame(f) // dropped, not pooled
	g := GetFrame(16, 16)
	if g == f {
		t.Fatal("pooling disabled but frame was reused")
	}
}

func TestFramePoolStatsCount(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	drainFramePool(t)
	g0, h0, p0 := FramePoolStats()
	f := GetFrame(16, 16)
	PutFrame(f)
	GetFrame(16, 16)
	g1, h1, p1 := FramePoolStats()
	if g1-g0 != 2 {
		t.Errorf("gets delta = %d, want 2", g1-g0)
	}
	if h1-h0 != 1 {
		t.Errorf("hits delta = %d, want 1", h1-h0)
	}
	if p1-p0 != 1 {
		t.Errorf("puts delta = %d, want 1", p1-p0)
	}
}

func TestPutSequenceReleasesAllFrames(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	drainFramePool(t)
	s := &Sequence{FrameRate: 30}
	for i := 0; i < 3; i++ {
		s.Frames = append(s.Frames, GetFrame(16, 16))
	}
	PutSequence(s)
	if len(s.Frames) != 0 {
		t.Fatalf("PutSequence left %d frames", len(s.Frames))
	}
	reused := 0
	for i := 0; i < 3; i++ {
		if framePool.Get() != nil {
			reused++
		}
	}
	if reused != 3 {
		t.Fatalf("pool holds %d frames after PutSequence, want 3", reused)
	}
	PutSequence(nil) // nil-safe
}

func TestPutFrameNilIsNoOp(t *testing.T) {
	PutFrame(nil)
}
