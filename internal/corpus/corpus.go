// Package corpus models the commercial video corpus at the heart of
// vbench and implements the paper's video-selection methodology.
//
// The paper's input — six months of YouTube transcode logs over
// millions of videos — is proprietary; per the reproduction rules it
// is replaced by a statistical model that reproduces the distributions
// the paper describes: thousands of (resolution, framerate, entropy)
// categories whose entropy axis spans four orders of magnitude
// (slideshows below 0.1 bit/pixel/s to high-motion content above 10),
// weighted by the transcoding time spent on each category. The
// selection pipeline (feature linearization, weighted k-means, mode
// representative) is implemented exactly as Section 4.1 specifies, and
// the published Table 2 acts as ground truth for validating it.
package corpus

import (
	"fmt"
	"math"
	"sort"

	"vbench/internal/cluster"
)

// Resolution is a standard upload resolution.
type Resolution struct {
	Name          string
	Width, Height int
}

// KPixels returns the paper's resolution feature: Kpixels per frame,
// rounded to an integer.
func (r Resolution) KPixels() int {
	return int(math.Round(float64(r.Width*r.Height) / 1000))
}

// StandardResolutions is the upload resolution ladder, ordered by
// size, with each entry's share of corpus transcode uploads. The
// shares follow the paper's description: 36 resolution×framerate cells
// cover >95% of uploads, with the bulk in 360p–1080p.
var StandardResolutions = []struct {
	Res   Resolution
	Share float64
}{
	{Resolution{"144p", 256, 144}, 0.02},
	{Resolution{"240p", 426, 240}, 0.05},
	{Resolution{"360p", 640, 360}, 0.16},
	{Resolution{"480p", 854, 480}, 0.22},
	{Resolution{"720p", 1280, 720}, 0.27},
	{Resolution{"1080p", 1920, 1080}, 0.22},
	{Resolution{"1440p", 2560, 1440}, 0.04},
	{Resolution{"2160p", 3840, 2160}, 0.02},
}

// StandardFrameRates is the framerate ladder with upload shares.
var StandardFrameRates = []struct {
	FPS   int
	Share float64
}{
	{15, 0.03},
	{24, 0.14},
	{25, 0.12},
	{30, 0.47},
	{50, 0.06},
	{60, 0.18},
}

// Category is a video category in the paper's sense: the set of
// videos sharing a rounded (resolution, framerate, entropy) triplet.
type Category struct {
	// KPixels is the frame size in kilopixels (rounded).
	KPixels int
	// FPS is the framerate in frames/second (rounded).
	FPS int
	// Entropy is the inherent content complexity in bits/pixel/s when
	// encoded at visually lossless constant quality (rounded to one
	// decimal in category space).
	Entropy float64
	// Weight is the share of corpus transcoding time spent on this
	// category.
	Weight float64
}

// Model is the synthetic corpus: a weighted set of categories.
type Model struct {
	Categories []Category
}

// entropyBins returns the log-spaced entropy grid of the corpus model,
// spanning the paper's four orders of magnitude.
func entropyBins(n int) []float64 {
	bins := make([]float64, n)
	lo, hi := math.Log2(0.01), math.Log2(100)
	for i := range bins {
		e := math.Exp2(lo + (hi-lo)*float64(i)/float64(n-1))
		// Round to one decimal place as the paper's category
		// definition does; keep two significant digits below 1.
		if e >= 1 {
			bins[i] = math.Round(e*10) / 10
		} else {
			bins[i] = math.Round(e*100) / 100
		}
	}
	return bins
}

// entropyDensity is the corpus-wide distribution of content entropy:
// a mixture of a broad log-normal mode centred between 1 and 2
// bit/pixel/s (camera content) and a narrower low-entropy mode around
// 0.2 (screen captures, slideshows, presentations — a distinct and
// heavy upload class, which is why Table 2 carries two 0.2-entropy
// clips). Higher resolutions skew very slightly toward higher entropy
// (screen content is mostly ≤1080p; sports/nature uploads skew HD+),
// matching the corpus scatter in Figure 4.
func entropyDensity(e float64, kpix int) float64 {
	x := math.Log2(e)
	mu := 0.4 + 0.1*math.Log2(float64(kpix)/400)/4
	sigma := 2.2
	camera := math.Exp(-(x - mu) * (x - mu) / (2 * sigma * sigma))
	muScreen := math.Log2(0.2)
	sigmaScreen := 0.9
	screen := 0.55 * math.Exp(-(x-muScreen)*(x-muScreen)/(2*sigmaScreen*sigmaScreen))
	return camera + screen
}

// NewModel builds the synthetic corpus: the full category grid with
// analytic weights. The weight of a category is the share of uploads
// it receives times the relative transcode cost of its pixels
// (transcode time scales close to linearly with pixel rate).
func NewModel() *Model {
	bins := entropyBins(60)
	m := &Model{}
	for _, rs := range StandardResolutions {
		for _, fs := range StandardFrameRates {
			// Per-(res,fps) entropy densities, normalized.
			var norm float64
			for _, e := range bins {
				norm += entropyDensity(e, rs.Res.KPixels())
			}
			for _, e := range bins {
				p := entropyDensity(e, rs.Res.KPixels()) / norm
				uploads := rs.Share * fs.Share * p
				// Transcode time grows with pixel rate and with
				// content entropy (more tools exercised), sublinearly
				// in both.
				pixRate := float64(rs.Res.KPixels()) * float64(fs.FPS)
				cost := math.Pow(pixRate, 0.95) * math.Pow(e+0.05, 0.25)
				m.Categories = append(m.Categories, Category{
					KPixels: rs.Res.KPixels(),
					FPS:     fs.FPS,
					Entropy: e,
					Weight:  uploads * cost,
				})
			}
		}
	}
	// Normalize weights to sum to 1.
	var total float64
	for _, c := range m.Categories {
		total += c.Weight
	}
	for i := range m.Categories {
		m.Categories[i].Weight /= total
	}
	return m
}

// Features linearizes a category into the paper's clustering space:
// log2(Kpixels), framerate, and log2(entropy), each scaled to [-1, 1]
// over the corpus ranges.
func (m *Model) Features() []cluster.Point {
	minKP, maxKP := math.Inf(1), math.Inf(-1)
	minF, maxF := math.Inf(1), math.Inf(-1)
	minE, maxE := math.Inf(1), math.Inf(-1)
	for _, c := range m.Categories {
		kp := math.Log2(float64(c.KPixels))
		e := math.Log2(c.Entropy)
		f := float64(c.FPS)
		minKP, maxKP = math.Min(minKP, kp), math.Max(maxKP, kp)
		minF, maxF = math.Min(minF, f), math.Max(maxF, f)
		minE, maxE = math.Min(minE, e), math.Max(maxE, e)
	}
	scale := func(v, lo, hi float64) float64 {
		if hi == lo {
			return 0
		}
		return 2*(v-lo)/(hi-lo) - 1
	}
	pts := make([]cluster.Point, len(m.Categories))
	for i, c := range m.Categories {
		pts[i] = cluster.Point{
			scale(math.Log2(float64(c.KPixels)), minKP, maxKP),
			scale(float64(c.FPS), minF, maxF),
			scale(math.Log2(c.Entropy), minE, maxE),
		}
	}
	return pts
}

// Weights returns the per-category weights aligned with Features.
func (m *Model) Weights() []float64 {
	ws := make([]float64, len(m.Categories))
	for i, c := range m.Categories {
		ws[i] = c.Weight
	}
	return ws
}

// Select runs the paper's selection pipeline: weighted k-means over
// the linearized features, then the highest-weight category of each
// cluster as its representative. Results are sorted by (KPixels,
// Entropy) like Table 2.
func (m *Model) Select(k int, seed uint64) ([]Category, error) {
	if k <= 0 || k > len(m.Categories) {
		return nil, fmt.Errorf("corpus: cannot select %d categories from %d", k, len(m.Categories))
	}
	res, err := cluster.KMeans(m.Features(), m.Weights(), cluster.Config{
		K:        k,
		Restarts: 8,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	modes := cluster.Modes(res, m.Weights())
	out := make([]Category, 0, k)
	for _, idx := range modes {
		if idx >= 0 {
			out = append(out, m.Categories[idx])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].KPixels != out[j].KPixels {
			return out[i].KPixels < out[j].KPixels
		}
		return out[i].Entropy < out[j].Entropy
	})
	return out, nil
}

// CoverageSet returns the paper's golden reference set: uniformly
// distributed entropy samples (11 per cell) over the top resolutions
// and framerates, which together cover >95% of uploads.
func (m *Model) CoverageSet() []Category {
	// Top 6 resolutions and top 6 framerates by share.
	type idxShare struct {
		i     int
		share float64
	}
	topRes := topN(len(StandardResolutions), 6, func(i int) float64 { return StandardResolutions[i].Share })
	topFPS := topN(len(StandardFrameRates), 6, func(i int) float64 { return StandardFrameRates[i].Share })
	bins := entropyBins(11)
	var out []Category
	for _, ri := range topRes {
		for _, fi := range topFPS {
			for _, e := range bins {
				out = append(out, Category{
					KPixels: StandardResolutions[ri].Res.KPixels(),
					FPS:     StandardFrameRates[fi].FPS,
					Entropy: e,
					Weight:  StandardResolutions[ri].Share * StandardFrameRates[fi].Share / float64(len(bins)),
				})
			}
		}
	}
	return out
}

func topN(n, k int, share func(int) float64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return share(idx[a]) > share(idx[b]) })
	if k > n {
		k = n
	}
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}
