// Package c exercises metricname's schema checks.
package c

import "lint.test/telemetry"

const histName = "codec.slice_gate_wait_seconds"

func good(r *telemetry.Registry) {
	telemetry.GetCounter("codec.encodes")
	telemetry.GetGauge("harness.memo.seqs.hits")
	telemetry.GetHistogram(histName)
	r.Counter("codec.stage.motion_ns")
	r.GaugeFunc("harness.workers.active", func() float64 { return 0 })
}

func bad(r *telemetry.Registry) {
	telemetry.GetCounter("Encodes")        // want `metric name "Encodes" does not match`
	telemetry.GetGauge("codec")            // want `metric name "codec" does not match`
	telemetry.GetHistogram("codec.Stage")  // want `metric name "codec.Stage" does not match`
	r.Counter("codec..double_dot")         // want `does not match`
	r.Gauge("codec.stage-motion")          // want `does not match`
	r.Histogram("codec.stage_")            // want `does not match`
	telemetry.GetCounter("_codec.encodes") // want `does not match`
	telemetry.GetCounter("codec.9encodes") // want `does not match`
}

func undocumented(r *telemetry.Registry) {
	// Well-formed but absent from the docs/FORMAT.md table.
	telemetry.GetCounter("codec.unlisted_total") // want `metric name "codec.unlisted_total" is not documented`
	r.Histogram("harness.memo.refs.hits")        // want `is not documented`
	// Wildcard rows never whitelist: service.* in the table is prose.
	r.Counter("service.anything") // want `is not documented`
}

// cache exercises the transcode-cache rows: brace families expand,
// slash-separated families in one row all count, and a cas name
// outside the documented families is still an error.
func cache(r *telemetry.Registry) {
	r.Counter("cas.mem_hits")
	r.Counter("cas.disk_hits")
	r.Counter("cas.misses")
	r.Gauge("cas.mem_entries")
	r.Gauge("cas.disk_bytes")
	r.Counter("fleet.cache_dedup_hits")
	r.Counter("cas.evictions") // want `metric name "cas.evictions" is not documented`
}

func dynamic(base string, r *telemetry.Registry) {
	// Dynamically built names are out of scope for the checker.
	telemetry.GetCounter(base + ".hits")
	r.Gauge(base)
}

func suppressed() {
	//lint:ignore metricname legacy dashboard expects this exact name
	telemetry.GetCounter("LegacyEncodes")
}
