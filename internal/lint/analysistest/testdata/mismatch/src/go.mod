module lint.mismatch

go 1.22
