package fleet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vbench/internal/telemetry"
)

// simQueue builds a queue on a SimClock with test-friendly knobs.
func simQueue(opt Options) (*Queue, *SimClock) {
	clk := NewSimClock(time.Unix(0, 0).UTC())
	opt.Clock = clk
	if opt.Metrics == nil {
		opt.Metrics = telemetry.NewRegistry()
	}
	return NewQueue(opt), clk
}

func noopSpec() JobSpec { return JobSpec{Kind: KindNoop} }

func TestSubmitValidation(t *testing.T) {
	q, _ := simQueue(Options{})
	if _, err := q.Submit(JobSpec{Kind: KindEncode}); err == nil {
		t.Error("encode spec without clip/encoder accepted")
	}
	if _, err := q.Submit(JobSpec{Clip: "girl", Encoder: "x264-medium"}); err == nil {
		t.Error("encode spec without scale/duration accepted")
	}
	id, err := q.Submit(JobSpec{Clip: "girl", Encoder: "x264-medium", Scale: 16, Duration: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first job id = %d, want 1", id)
	}
}

func TestLeaseExpiryRetrySuccess(t *testing.T) {
	q, clk := simQueue(Options{LeaseTTL: 10 * time.Second, BackoffBase: time.Second, MaxAttempts: 3})
	id, err := q.Submit(noopSpec())
	if err != nil {
		t.Fatal(err)
	}

	j, ok := q.Lease("w1")
	if !ok || j.ID != id || j.Attempt != 1 {
		t.Fatalf("lease = %+v, %v", j, ok)
	}
	// w1 dies silently; past the TTL the job requeues with backoff.
	clk.Advance(clk.Now().Add(11 * time.Second))
	q.ExpireLeases()
	got, err := q.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Pending || got.Expiries != 1 || got.Retries != 1 {
		t.Fatalf("after expiry: %+v", got)
	}
	// Still in backoff: not leasable yet.
	if _, ok := q.Lease("w2"); ok {
		t.Fatal("leased a job still in backoff")
	}
	clk.Advance(got.ReadyAt)
	j2, ok := q.Lease("w2")
	if !ok || j2.Attempt != 2 || j2.Worker != "w2" {
		t.Fatalf("re-lease = %+v, %v", j2, ok)
	}
	applied, err := q.Complete(id, 2, "w2", Result{Seconds: 1})
	if err != nil || !applied {
		t.Fatalf("complete: applied=%v err=%v", applied, err)
	}
	st := q.Stats()
	if st.Done != 1 || st.LeaseExpiries != 1 || st.Retries != 1 || st.Completions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransientFailureBackoffAndBoundedRetries(t *testing.T) {
	q, clk := simQueue(Options{LeaseTTL: time.Hour, BackoffBase: time.Second, BackoffMax: time.Minute, MaxAttempts: 3})
	id, _ := q.Submit(noopSpec())

	for attempt := 1; attempt <= 3; attempt++ {
		// Ready time honors the exponential schedule.
		j, err := q.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if clk.Now().Before(j.ReadyAt) {
			clk.Advance(j.ReadyAt)
		}
		leased, ok := q.Lease("w1")
		if !ok || leased.Attempt != attempt {
			t.Fatalf("attempt %d: lease = %+v, %v", attempt, leased, ok)
		}
		if err := q.Fail(id, attempt, "w1", false, "flaky"); err != nil {
			t.Fatal(err)
		}
		j, _ = q.Job(id)
		if attempt < 3 {
			wantDelay := time.Duration(1<<(attempt-1)) * time.Second
			if j.State != Pending {
				t.Fatalf("attempt %d: state = %v", attempt, j.State)
			}
			if gotDelay := j.ReadyAt.Sub(clk.Now()); gotDelay != wantDelay {
				t.Errorf("attempt %d: backoff = %v, want %v", attempt, gotDelay, wantDelay)
			}
		} else if j.State != Failed {
			t.Fatalf("after final attempt: state = %v, want failed", j.State)
		}
	}
	st := q.Stats()
	if st.Failed != 1 || st.Retries != 2 || st.Leases != 3 {
		t.Errorf("stats = %+v", st)
	}
	// A failed job never becomes leasable again.
	clk.Advance(clk.Now().Add(time.Hour))
	if _, ok := q.Lease("w1"); ok {
		t.Error("leased a terminally failed job")
	}
}

func TestTerminalFailureNoRetry(t *testing.T) {
	q, clk := simQueue(Options{MaxAttempts: 5})
	id, _ := q.Submit(noopSpec())
	if _, ok := q.Lease("w1"); !ok {
		t.Fatal("no lease")
	}
	if err := q.Fail(id, 1, "w1", true, "bad spec"); err != nil {
		t.Fatal(err)
	}
	j, _ := q.Job(id)
	if j.State != Failed || j.Retries != 0 || j.LastErr != "bad spec" {
		t.Fatalf("job = %+v", j)
	}
	clk.Advance(clk.Now().Add(time.Hour))
	if _, ok := q.Lease("w1"); ok {
		t.Error("terminal failure was retried")
	}
	if st := q.Stats(); st.Retries != 0 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIdempotentDuplicateAndStaleCompletions(t *testing.T) {
	q, clk := simQueue(Options{LeaseTTL: 10 * time.Second, BackoffBase: time.Millisecond})
	id, _ := q.Submit(noopSpec())
	q.Lease("w1")

	// First completion applies; the retransmitted one is a duplicate.
	applied, err := q.Complete(id, 1, "w1", Result{})
	if err != nil || !applied {
		t.Fatalf("first complete: applied=%v err=%v", applied, err)
	}
	applied, err = q.Complete(id, 1, "w1", Result{})
	if err != nil || applied {
		t.Fatalf("duplicate complete: applied=%v err=%v", applied, err)
	}

	// A lapsed attempt's completion is stale once the job re-leased.
	id2, _ := q.Submit(noopSpec())
	q.Lease("w1")
	clk.Advance(clk.Now().Add(11 * time.Second))
	q.ExpireLeases()
	j2, _ := q.Job(id2)
	clk.Advance(j2.ReadyAt)
	leased, ok := q.Lease("w2")
	if !ok || leased.ID != id2 || leased.Attempt != 2 {
		t.Fatalf("re-lease = %+v, %v", leased, ok)
	}
	applied, err = q.Complete(id2, 1, "w1", Result{}) // zombie w1 reports late
	if err != nil || applied {
		t.Fatalf("stale complete: applied=%v err=%v", applied, err)
	}
	applied, err = q.Complete(id2, 2, "w2", Result{})
	if err != nil || !applied {
		t.Fatalf("current complete: applied=%v err=%v", applied, err)
	}

	j2, _ = q.Job(id2)
	if j2.Completions != 1 || j2.StaleAcks != 1 {
		t.Errorf("job2 accounting = %+v", j2)
	}
	st := q.Stats()
	if st.Completions != 2 || st.DuplicateAcks != 1 || st.StaleAcks != 1 || st.Done != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	q, clk := simQueue(Options{LeaseTTL: 10 * time.Second})
	id, _ := q.Submit(noopSpec())
	q.Lease("w1")

	// Heartbeats every 6 sim-seconds keep an 18-second job alive
	// through a 10-second TTL.
	for i := 0; i < 3; i++ {
		clk.Advance(clk.Now().Add(6 * time.Second))
		if err := q.Heartbeat(id, 1, "w1"); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	q.ExpireLeases()
	j, _ := q.Job(id)
	if j.State != Leased || j.Expiries != 0 {
		t.Fatalf("job = %+v", j)
	}
	// The wrong worker (or a lapsed attempt) cannot heartbeat.
	if err := q.Heartbeat(id, 1, "w2"); err == nil {
		t.Error("foreign heartbeat accepted")
	}
	if err := q.Heartbeat(id, 2, "w1"); err == nil {
		t.Error("future-attempt heartbeat accepted")
	}
}

func TestInvalidTransitionPanics(t *testing.T) {
	q, _ := simQueue(Options{})
	id, _ := q.Submit(noopSpec())
	q.Lease("w1")
	if _, err := q.Complete(id, 1, "w1", Result{}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("done -> leased transition did not panic")
		}
	}()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.setState(q.jobs[id-1], Leased, "bug")
}

func TestTransitionLogRecordsLifecycle(t *testing.T) {
	q, clk := simQueue(Options{RecordLog: true, LeaseTTL: 5 * time.Second, BackoffBase: time.Second})
	id, _ := q.Submit(noopSpec())
	q.Lease("w1")
	clk.Advance(clk.Now().Add(6 * time.Second))
	q.ExpireLeases()
	j, _ := q.Job(id)
	clk.Advance(j.ReadyAt)
	q.Lease("w2")
	q.Complete(id, 2, "w2", Result{})

	want := strings.Join([]string{
		"t=0.000 job=1 attempt=0 none>pending reason=submit worker=-",
		"t=0.000 job=1 attempt=1 pending>leased reason=lease worker=w1",
		"t=6.000 job=1 attempt=1 leased>pending reason=lease_expired worker=w1",
		"t=7.000 job=1 attempt=2 pending>leased reason=lease worker=w2",
		"t=7.000 job=1 attempt=2 leased>done reason=complete worker=w2",
		"",
	}, "\n")
	if got := q.TransitionLog(); got != want {
		t.Errorf("transition log:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	q, clk := simQueue(Options{Metrics: reg, LeaseTTL: 10 * time.Second})
	for i := 0; i < 4; i++ {
		if _, err := q.Submit(noopSpec()); err != nil {
			t.Fatal(err)
		}
	}
	q.Lease("w1") // job 1 leased
	q.Complete(2, 0, "w1", Result{})
	leased2, _ := q.Lease("w1") // job 2
	q.Complete(leased2.ID, leased2.Attempt, "w1", Result{Bytes: 42})

	var buf bytes.Buffer
	if err := q.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Restore(bytes.NewReader(buf.Bytes()), Options{Clock: clk, Metrics: telemetry.NewRegistry(), LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Stats() != q.Stats() {
		t.Errorf("restored stats = %+v, want %+v", q2.Stats(), q.Stats())
	}
	// The surviving worker's lease is still honored across the restart.
	if applied, err := q2.Complete(1, 1, "w1", Result{}); err != nil || !applied {
		t.Fatalf("post-restore complete: applied=%v err=%v", applied, err)
	}
	// The remaining pending jobs lease normally.
	if j, ok := q2.Lease("w2"); !ok || j.ID != 3 {
		t.Fatalf("post-restore lease = %+v, %v", j, ok)
	}
	jr, err := q2.Job(2)
	if err != nil || jr.Result == nil || jr.Result.Bytes != 42 {
		t.Errorf("restored result = %+v (err %v)", jr.Result, err)
	}
}

func TestBackoffCap(t *testing.T) {
	q, _ := simQueue(Options{BackoffBase: time.Second, BackoffMax: 5 * time.Second})
	for attempt, want := range map[int]time.Duration{
		1: time.Second,
		2: 2 * time.Second,
		3: 4 * time.Second,
		4: 5 * time.Second,
		9: 5 * time.Second,
	} {
		if got := q.backoff(attempt); got != want {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
}
