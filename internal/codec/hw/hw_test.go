package hw

import (
	"testing"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/metrics"
)

func encodeWith(t *testing.T, eng *codec.Engine, clipName string) (speed float64, bytes int, psnr float64) {
	t.Helper()
	clip, err := corpus.ClipByName(clipName)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Encode(seq, codec.Config{RC: codec.RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	s, err := metrics.Speed(seq.PixelCount(), res.Seconds)
	if err != nil {
		t.Fatal(err)
	}
	p, err := metrics.SequencePSNR(seq, res.Recon)
	if err != nil {
		t.Fatal(err)
	}
	return s, len(res.Bitstream), p
}

func TestHardwareMuchFasterThanSoftware(t *testing.T) {
	hwSpeed, _, _ := encodeWith(t, NVENC(), "girl")
	swSpeed, _, _ := encodeWith(t, profiles.X264(codec.PresetMedium), "girl")
	if hwSpeed < swSpeed*3 {
		t.Errorf("NVENC %.1f Mpix/s not ≫ software %.1f Mpix/s", hwSpeed, swSpeed)
	}
}

func TestQSVFasterThanNVENC(t *testing.T) {
	n, _, _ := encodeWith(t, NVENC(), "girl")
	q, _, _ := encodeWith(t, QSV(), "girl")
	if q <= n {
		t.Errorf("QSV %.1f not faster than NVENC %.1f", q, n)
	}
}

func TestHardwareNoFreeLunchAtIsoQP(t *testing.T) {
	// The hardware tool set must not beat the mid-effort software
	// encoder on compression at the same quantizer — its speed comes
	// from restriction, not magic. (The bitrate losses the paper's
	// Table 3 reports arise under the quality-constrained VOD
	// methodology, where the hardware's single-pass, coarse-step rate
	// control wastes bits against the two-pass software reference;
	// see the harness tests.)
	_, hwBytes, hwPSNR := encodeWith(t, NVENC(), "girl")
	_, swBytes, swPSNR := encodeWith(t, profiles.X264(codec.PresetMedium), "girl")
	if float64(hwBytes) < float64(swBytes)*0.90 {
		t.Errorf("NVENC (%d bytes) dramatically smaller than software (%d bytes) at iso-QP", hwBytes, swBytes)
	}
	if hwPSNR < swPSNR-1.5 {
		t.Errorf("NVENC quality %.2f far below software %.2f at same QP", hwPSNR, swPSNR)
	}
}

func TestHardwareBitstreamsDecode(t *testing.T) {
	clip, err := corpus.ClipByName("bike")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(16, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for name, eng := range Encoders() {
		res, err := eng.Encode(seq, codec.Config{RC: codec.RCBitrate, BitrateBPS: 200_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, _, err := codec.Decode(res.Bitstream)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		for i := range dec.Frames {
			if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
				t.Fatalf("%s: frame %d decode mismatch", name, i)
			}
		}
	}
}

func TestSpeedGrowsWithResolution(t *testing.T) {
	// Table 3: hardware speed ratios grow with resolution because
	// per-frame transfer overhead amortizes.
	small, _, _ := encodeWith(t, QSV(), "cat")     // 480p class
	large, _, _ := encodeWith(t, QSV(), "chicken") // 4K class
	if large <= small {
		t.Errorf("QSV speed did not grow with resolution: %.1f (480p) vs %.1f (4K)", small, large)
	}
}

func TestQPGranularitySet(t *testing.T) {
	if NVENC().Tools.QPGranularity < 2 || QSV().Tools.QPGranularity < 2 {
		t.Error("hardware encoders should have coarse rate control")
	}
	if QSV().Tools.QPGranularity <= NVENC().Tools.QPGranularity {
		t.Error("QSV should be coarser than NVENC (paper: QSV degrades worst on low entropy)")
	}
}
