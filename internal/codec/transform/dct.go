// Package transform implements the block transforms of the vbench
// codec: integer approximations of the 4×4 and 8×8 DCT-II with their
// inverses, the 4×4 Hadamard transform used for SATD cost estimation,
// zigzag scan orders, and scalar quantization with a configurable dead
// zone.
//
// The transforms are pure integer (fixed-point) so the encoder's
// reconstruction loop and the decoder produce bit-identical results on
// every platform. The basis matrices are hard-coded rather than
// computed with math.Cos to keep the bitstream definition independent
// of any floating-point library behaviour.
package transform

import "vbench/internal/codec/kern"

// Basis matrices scaled by 1024 (Q10). Row k holds
// round(s(k)·cos((2n+1)kπ/2N)·1024) with s(0)=√(1/N), s(k)=√(2/N).
var dct4 = [4][4]int64{
	{512, 512, 512, 512},
	{669, 277, -277, -669},
	{512, -512, -512, 512},
	{277, -669, 669, -277},
}

var dct8 = [8][8]int64{
	{362, 362, 362, 362, 362, 362, 362, 362},
	{502, 426, 284, 100, -100, -284, -426, -502},
	{473, 196, -196, -473, -473, -196, 196, 473},
	{426, -100, -502, -284, 284, 502, 100, -426},
	{362, -362, -362, 362, 362, -362, -362, 362},
	{284, -502, 100, 426, -426, -100, 502, -284},
	{196, -473, 473, -196, -196, 473, -473, 196},
	{100, -284, 426, -502, 502, -426, 284, -100},
}

// Coefficients are carried in Q3 (value × 8) between the forward
// transform, quantization, and the inverse transform, which preserves
// three fractional bits of precision through the rate-distortion loop.

// fwdShift converts the Q10·Q10 = Q20 product down to Q3.
const fwdShift = 17

// invShift converts the Q3 · Q10 · Q10 = Q23 product back to Q0.
const invShift = 23

func roundShift(v int64, shift uint) int64 {
	if v >= 0 {
		return (v + 1<<(shift-1)) >> shift
	}
	return -((-v + 1<<(shift-1)) >> shift)
}

// Forward applies the N×N forward DCT to the residual block src
// (row-major, N=4 or 8) and writes Q3-scaled coefficients to dst.
// src and dst may alias.
//
// The work is done by the butterfly kernels in internal/codec/kern;
// forwardN below remains the normative matrix-multiply reference, and
// TestKernMatchesReference locks the two together bit-for-bit.
func Forward(src, dst []int32, n int) {
	switch n {
	case 4:
		kern.FwdDCT4(src, dst)
	case 8:
		kern.FwdDCT8(src, dst)
	default:
		panic("transform: unsupported block size")
	}
}

// Inverse applies the N×N inverse DCT to Q3-scaled coefficients in src
// and writes the reconstructed residual to dst. src and dst may alias.
func Inverse(src, dst []int32, n int) {
	switch n {
	case 4:
		kern.InvDCT4(src, dst)
	case 8:
		kern.InvDCT8(src, dst)
	default:
		panic("transform: unsupported block size")
	}
}

// forwardN computes dst = round((A · src · Aᵀ) >> fwdShift).
func forwardN(src, dst []int32, n int, a []int64) {
	var tmp [64]int64
	// tmp = A · src
	for k := 0; k < n; k++ {
		for col := 0; col < n; col++ {
			var s int64
			for j := 0; j < n; j++ {
				s += a[k*n+j] * int64(src[j*n+col])
			}
			tmp[k*n+col] = s
		}
	}
	// dst = tmp · Aᵀ
	for k := 0; k < n; k++ {
		for l := 0; l < n; l++ {
			var s int64
			for j := 0; j < n; j++ {
				s += tmp[k*n+j] * a[l*n+j]
			}
			dst[k*n+l] = int32(roundShift(s, fwdShift))
		}
	}
}

// inverseN computes dst = round((Aᵀ · src · A) >> invShift).
func inverseN(src, dst []int32, n int, a []int64) {
	var tmp [64]int64
	// tmp = Aᵀ · src
	for i := 0; i < n; i++ {
		for col := 0; col < n; col++ {
			var s int64
			for k := 0; k < n; k++ {
				s += a[k*n+i] * int64(src[k*n+col])
			}
			tmp[i*n+col] = s
		}
	}
	// dst = tmp · A
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for l := 0; l < n; l++ {
				s += tmp[i*n+l] * a[l*n+j]
			}
			dst[i*n+j] = int32(roundShift(s, invShift))
		}
	}
}

var dct4Flat [16]int64
var dct8Flat [64]int64

func init() {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dct4Flat[i*4+j] = dct4[i][j]
		}
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			dct8Flat[i*8+j] = dct8[i][j]
		}
	}
}

// SATD4 returns the sum of absolute transformed differences of a 4×4
// residual block using the Hadamard transform — the encoder's cheap
// frequency-domain cost metric for mode decisions. The unrolled
// kernel satisfies the same definition as satd4Ref below.
func SATD4(res []int32) int64 {
	if len(res) < 16 {
		panic("transform: SATD4 needs 16 samples")
	}
	return kern.SATD4(res)
}

// satd4Ref is the loop-form reference for SATD4.
func satd4Ref(res []int32) int64 {
	var m [16]int64
	// Horizontal butterflies.
	for i := 0; i < 4; i++ {
		r := res[i*4 : i*4+4]
		s0 := int64(r[0]) + int64(r[2])
		d0 := int64(r[0]) - int64(r[2])
		s1 := int64(r[1]) + int64(r[3])
		d1 := int64(r[1]) - int64(r[3])
		m[i*4+0] = s0 + s1
		m[i*4+1] = s0 - s1
		m[i*4+2] = d0 + d1
		m[i*4+3] = d0 - d1
	}
	// Vertical butterflies and accumulation.
	var sum int64
	for j := 0; j < 4; j++ {
		s0 := m[0*4+j] + m[2*4+j]
		d0 := m[0*4+j] - m[2*4+j]
		s1 := m[1*4+j] + m[3*4+j]
		d1 := m[1*4+j] - m[3*4+j]
		sum += abs64(s0+s1) + abs64(s0-s1) + abs64(d0+d1) + abs64(d0-d1)
	}
	return sum
}

// SATD computes the SATD of an arbitrary residual region of width w
// and height h (both multiples of 4) stored row-major with stride w.
func SATD(res []int32, w, h int) int64 {
	return kern.SATD(res, w, h)
}

// satdRef is the copy-and-transform reference for SATD.
func satdRef(res []int32, w, h int) int64 {
	var total int64
	var blk [16]int32
	for by := 0; by < h; by += 4 {
		for bx := 0; bx < w; bx += 4 {
			for y := 0; y < 4; y++ {
				copy(blk[y*4:y*4+4], res[(by+y)*w+bx:(by+y)*w+bx+4])
			}
			total += satd4Ref(blk[:])
		}
	}
	return total
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
