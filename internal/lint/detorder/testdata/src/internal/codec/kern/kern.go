// Package kern mirrors the patterns of the real internal/codec/kern
// package so detorder's deterministic-package checks keep covering
// the kernel layer: package-level lookup tables built by immediately
// invoked function literals, atomic telemetry counters, and output
// written through fixed-size loops must all pass clean, while
// wall-clock or global-rand use inside a kernel stays flagged.
package kern

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

// quantTabs is built at init by a func literal, like the real kern
// package's reciprocal tables; loops and integer math in package-level
// initializers must not trip the clock/rand or map-order checks.
var quantTabs = func() [52]uint64 {
	var tabs [52]uint64
	for qp := range tabs {
		step := uint64(40 + qp)
		tabs[qp] = uint64(1)<<41/step + 1
	}
	return tabs
}()

// divFallbacks is the kernel layer's atomic telemetry counter idiom.
var divFallbacks atomic.Int64

func countFallback() {
	divFallbacks.Add(1)
}

func reciprocal(qp int) uint64 {
	return quantTabs[qp]
}

// timedKernel measures its own latency with an ungated wall-clock
// read — the exact hazard the check exists for: kernel timings must
// come from the modeled cost layer, never the host clock.
func timedKernel(block []uint8) time.Duration {
	start := time.Now() // want `time.Now in deterministic package kern outside a telemetry gate`
	var sum int
	for _, v := range block {
		sum += int(v)
	}
	_ = sum
	return time.Since(start) // want `time.Since in deterministic package kern outside a telemetry gate`
}

// ditheredQuant draws from the global RNG, which would make encode
// output depend on call order across goroutines.
func ditheredQuant(c int64, step int64) int64 {
	return (c + int64(rand.Intn(int(step)))) / step // want `math/rand.Intn in deterministic package kern`
}

// dumpTables leaks map iteration order into output.
func dumpTables(byName map[string]uint64) {
	for name, magic := range byName { // want `iteration over map byName reaches output sink fmt.Printf`
		fmt.Printf("%s=%d\n", name, magic)
	}
}

// dumpTablesSorted collects and sorts first, the accepted pattern.
func dumpTablesSorted(byName map[string]uint64) {
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s=%d\n", name, byName[name])
	}
}
