// Package motion implements block motion estimation and motion
// compensation for the vbench codec: SAD block matching, full-search
// and fast (diamond, hexagon) search strategies, and half/quarter-pel
// refinement over a shared bilinear interpolation kernel.
//
// Motion vectors are expressed in quarter-pel luma units throughout.
// The interpolation functions are the normative motion-compensation
// path: the encoder's reconstruction loop and the decoder both call
// them, so prediction is bit-identical on both sides.
package motion

import (
	"math"

	"vbench/internal/codec/bitstream"
	"vbench/internal/codec/kern"
	"vbench/internal/perf"
)

// MV is a motion vector in quarter-pel luma units.
type MV struct {
	X, Y int32
}

// Plane is a read-only view of one sample plane.
type Plane struct {
	Pix  []uint8
	W, H int
}

// clampedSample returns the sample at (x, y) with edge replication.
func (p Plane) clampedSample(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// SAD returns the sum of absolute differences between the bw×bh block
// of cur at (cx, cy) — which must lie fully inside cur — and the block
// of ref at (rx, ry), which is clamped to the reference bounds.
// Interior references take the packed SWAR kernel; edge-clamped ones
// stay on the scalar loop. sadRef preserves the all-scalar original as
// the cross-check reference.
func SAD(cur Plane, cx, cy int, ref Plane, rx, ry int, bw, bh int) int64 {
	if rx >= 0 && ry >= 0 && rx+bw <= ref.W && ry+bh <= ref.H {
		return kern.SAD(cur.Pix[cy*cur.W+cx:], cur.W, ref.Pix[ry*ref.W+rx:], ref.W, bw, bh)
	}
	return sadClamped(cur, cx, cy, ref, rx, ry, bw, bh)
}

// sadClamped is the edge-replicating SAD slow path.
func sadClamped(cur Plane, cx, cy int, ref Plane, rx, ry int, bw, bh int) int64 {
	var sum int64
	for y := 0; y < bh; y++ {
		cRow := cur.Pix[(cy+y)*cur.W+cx:]
		for x := 0; x < bw; x++ {
			d := int(cRow[x]) - int(ref.clampedSample(rx+x, ry+y))
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum
}

// sadRef is the original all-scalar SAD, kept verbatim as the
// reference implementation for the kernel cross-check tests.
func sadRef(cur Plane, cx, cy int, ref Plane, rx, ry int, bw, bh int) int64 {
	var sum int64
	fastPath := rx >= 0 && ry >= 0 && rx+bw <= ref.W && ry+bh <= ref.H
	if fastPath {
		for y := 0; y < bh; y++ {
			cRow := cur.Pix[(cy+y)*cur.W+cx:]
			rRow := ref.Pix[(ry+y)*ref.W+rx:]
			for x := 0; x < bw; x++ {
				d := int(cRow[x]) - int(rRow[x])
				if d < 0 {
					d = -d
				}
				sum += int64(d)
			}
		}
		return sum
	}
	return sadClamped(cur, cx, cy, ref, rx, ry, bw, bh)
}

// sadThresh is SAD with deterministic early termination (see
// kern.SADThresh): once the running sum reaches thresh the scan stops
// and returns the partial sum with early=true. Abort depends only on
// the pixel data and thresh, never on timing, so results are
// bit-reproducible. Callers must only use aborted values in
// comparisons they are guaranteed to lose (cost ≥ thresh + mvCost ≥
// incumbent best).
func sadThresh(cur Plane, cx, cy int, ref Plane, rx, ry int, bw, bh int, thresh int64) (int64, bool) {
	if rx >= 0 && ry >= 0 && rx+bw <= ref.W && ry+bh <= ref.H {
		return kern.SADThresh(cur.Pix[cy*cur.W+cx:], cur.W, ref.Pix[ry*ref.W+rx:], ref.W, bw, bh, thresh)
	}
	if thresh <= 0 {
		return 0, true
	}
	var sum int64
	for y := 0; y < bh; y++ {
		cRow := cur.Pix[(cy+y)*cur.W+cx:]
		for x := 0; x < bw; x++ {
			d := int(cRow[x]) - int(ref.clampedSample(rx+x, ry+y))
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
		if sum >= thresh && y+1 < bh {
			return sum, true
		}
	}
	return sum, false
}

// Scratch holds the reusable buffers of one motion-search /
// motion-compensation caller, hoisted out of the per-call hot path so
// steady-state search and sub-pel interpolation perform no heap
// allocations. Buffers grow on demand and are retained across calls;
// each Scratch must be owned by a single goroutine (the codec gives
// every slice encoder its own). A nil *Scratch is valid and falls back
// to per-call allocation, preserving the old behaviour for callers
// that do not keep one.
type Scratch struct {
	pred []uint8
	tmp  []int32

	// SADEarlyExits counts SAD evaluations the threshold kernels
	// aborted early during searches using this Scratch. Telemetry
	// only: the count is deterministic for a given input but feeds no
	// coding decision, and perf.Counters op counts stay at their
	// nominal (full-block) values regardless of aborts.
	SADEarlyExits int64
}

// predBuf returns an n-sample prediction buffer.
func (s *Scratch) predBuf(n int) []uint8 {
	if s == nil {
		return make([]uint8, n)
	}
	if cap(s.pred) < n {
		s.pred = make([]uint8, n)
	}
	return s.pred[:n]
}

// tmpBuf returns an n-element intermediate buffer for the separable
// interpolation passes.
func (s *Scratch) tmpBuf(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	if cap(s.tmp) < n {
		s.tmp = make([]int32, n)
	}
	return s.tmp[:n]
}

// sharpTaps are the 4-tap Catmull-Rom interpolation kernels for
// quarter-pel fractions 1..3 (×64). The HEVC-generation encoders use
// these instead of bilinear interpolation: the sharper kernel
// preserves texture under motion, reducing residual energy — one of
// the real compression advantages of the newer codecs.
var sharpTaps = [4][4]int{
	{0, 64, 0, 0},
	{-5, 56, 15, -2},
	{-4, 36, 36, -4},
	{-2, 15, 56, -5},
}

// PredictLumaSharp writes the motion-compensated prediction like
// PredictLuma but interpolates sub-pel positions with the separable
// 4-tap kernel (applied horizontally then vertically with
// intermediate 14-bit precision). sc provides the intermediate-pass
// buffer; nil allocates one per call.
func PredictLumaSharp(dst []uint8, ref Plane, bx, by int, mv MV, bw, bh int, sc *Scratch) {
	ix := bx + int(mv.X>>2)
	iy := by + int(mv.Y>>2)
	fx := int(mv.X & 3)
	fy := int(mv.Y & 3)
	if fx == 0 && fy == 0 {
		for y := 0; y < bh; y++ {
			for x := 0; x < bw; x++ {
				dst[y*bw+x] = ref.clampedSample(ix+x, iy+y)
			}
		}
		return
	}
	wx := sharpTaps[fx]
	wy := sharpTaps[fy]
	// Horizontal pass over bh+3 rows (one above, two below), Q6.
	tmpH := bh + 3
	tmp := sc.tmpBuf(bw * tmpH)
	for y := 0; y < tmpH; y++ {
		sy := iy + y - 1
		for x := 0; x < bw; x++ {
			var s int
			for i := 0; i < 4; i++ {
				s += wx[i] * int(ref.clampedSample(ix+x-1+i, sy))
			}
			tmp[y*bw+x] = int32(s)
		}
	}
	// Vertical pass, Q12 → samples.
	for y := 0; y < bh; y++ {
		for x := 0; x < bw; x++ {
			var s int32
			for j := 0; j < 4; j++ {
				s += int32(wy[j]) * tmp[(y+j)*bw+x]
			}
			v := (s + 2048) >> 12
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			dst[y*bw+x] = uint8(v)
		}
	}
}

// PredictLuma writes the motion-compensated bw×bh prediction of the
// block at (bx, by) with motion vector mv (quarter-pel) from ref into
// dst (row-major, stride bw). Sub-pel positions use bilinear
// interpolation with 1/16 rounding; out-of-frame references replicate
// edges.
// Interior blocks — the overwhelmingly common case away from frame
// edges — skip per-sample clamping: integer vectors become row
// copies and sub-pel vectors take the SWAR kernel. Edge positions
// fall back to predictLumaRef, the preserved scalar original, which
// is also the cross-check reference.
func PredictLuma(dst []uint8, ref Plane, bx, by int, mv MV, bw, bh int) {
	ix := bx + int(mv.X>>2)
	iy := by + int(mv.Y>>2)
	fx := int(mv.X & 3)
	fy := int(mv.Y & 3)
	if fx == 0 && fy == 0 {
		if ix >= 0 && iy >= 0 && ix+bw <= ref.W && iy+bh <= ref.H {
			for y := 0; y < bh; y++ {
				copy(dst[y*bw:(y+1)*bw], ref.Pix[(iy+y)*ref.W+ix:])
			}
			return
		}
		predictLumaRef(dst, ref, bx, by, mv, bw, bh)
		return
	}
	if ix >= 0 && iy >= 0 && ix+bw+1 <= ref.W && iy+bh+1 <= ref.H {
		w00 := (4 - fx) * (4 - fy)
		w10 := fx * (4 - fy)
		w01 := (4 - fx) * fy
		w11 := fx * fy
		kern.PredictBilinear(dst, bw, ref.Pix[iy*ref.W+ix:], ref.W, w00, w10, w01, w11, 8, 4, bw, bh)
		return
	}
	predictLumaRef(dst, ref, bx, by, mv, bw, bh)
}

// predictLumaRef is the original clamped scalar implementation of
// PredictLuma, the normative reference for all luma prediction paths.
func predictLumaRef(dst []uint8, ref Plane, bx, by int, mv MV, bw, bh int) {
	ix := bx + int(mv.X>>2)
	iy := by + int(mv.Y>>2)
	fx := int(mv.X & 3)
	fy := int(mv.Y & 3)
	if fx == 0 && fy == 0 {
		for y := 0; y < bh; y++ {
			for x := 0; x < bw; x++ {
				dst[y*bw+x] = ref.clampedSample(ix+x, iy+y)
			}
		}
		return
	}
	w00 := (4 - fx) * (4 - fy)
	w10 := fx * (4 - fy)
	w01 := (4 - fx) * fy
	w11 := fx * fy
	for y := 0; y < bh; y++ {
		for x := 0; x < bw; x++ {
			a := int(ref.clampedSample(ix+x, iy+y))
			b := int(ref.clampedSample(ix+x+1, iy+y))
			c := int(ref.clampedSample(ix+x, iy+y+1))
			d := int(ref.clampedSample(ix+x+1, iy+y+1))
			dst[y*bw+x] = uint8((a*w00 + b*w10 + c*w01 + d*w11 + 8) >> 4)
		}
	}
}

// PredictChroma writes the bw×bh chroma prediction for chroma-plane
// block position (bx, by) using the luma-domain quarter-pel vector mv,
// which has eighth-pel precision in the half-resolution chroma plane.
func PredictChroma(dst []uint8, ref Plane, bx, by int, mv MV, bw, bh int) {
	ix := bx + int(mv.X>>3)
	iy := by + int(mv.Y>>3)
	fx := int(mv.X & 7)
	fy := int(mv.Y & 7)
	if fx == 0 && fy == 0 {
		if ix >= 0 && iy >= 0 && ix+bw <= ref.W && iy+bh <= ref.H {
			for y := 0; y < bh; y++ {
				copy(dst[y*bw:(y+1)*bw], ref.Pix[(iy+y)*ref.W+ix:])
			}
			return
		}
		predictChromaRef(dst, ref, bx, by, mv, bw, bh)
		return
	}
	if ix >= 0 && iy >= 0 && ix+bw+1 <= ref.W && iy+bh+1 <= ref.H {
		w00 := (8 - fx) * (8 - fy)
		w10 := fx * (8 - fy)
		w01 := (8 - fx) * fy
		w11 := fx * fy
		kern.PredictBilinear(dst, bw, ref.Pix[iy*ref.W+ix:], ref.W, w00, w10, w01, w11, 32, 6, bw, bh)
		return
	}
	predictChromaRef(dst, ref, bx, by, mv, bw, bh)
}

// predictChromaRef is the original clamped scalar implementation of
// PredictChroma, the normative reference for chroma prediction.
func predictChromaRef(dst []uint8, ref Plane, bx, by int, mv MV, bw, bh int) {
	ix := bx + int(mv.X>>3)
	iy := by + int(mv.Y>>3)
	fx := int(mv.X & 7)
	fy := int(mv.Y & 7)
	if fx == 0 && fy == 0 {
		for y := 0; y < bh; y++ {
			for x := 0; x < bw; x++ {
				dst[y*bw+x] = ref.clampedSample(ix+x, iy+y)
			}
		}
		return
	}
	w00 := (8 - fx) * (8 - fy)
	w10 := fx * (8 - fy)
	w01 := (8 - fx) * fy
	w11 := fx * fy
	for y := 0; y < bh; y++ {
		for x := 0; x < bw; x++ {
			a := int(ref.clampedSample(ix+x, iy+y))
			b := int(ref.clampedSample(ix+x+1, iy+y))
			c := int(ref.clampedSample(ix+x, iy+y+1))
			d := int(ref.clampedSample(ix+x+1, iy+y+1))
			dst[y*bw+x] = uint8((a*w00 + b*w10 + c*w01 + d*w11 + 32) >> 6)
		}
	}
}

// sadSubpelThresh computes the SAD of the current block against the
// interpolated reference at quarter-pel vector mv, aborting (like
// sadThresh) once the running sum reaches thresh. Interior sub-pel
// windows take the fused SWAR interpolate+SAD kernel, which never
// materializes the prediction; all other cases predict into scratch
// with the normative path and difference the packed buffer. Both
// routes produce the exact PredictLuma+SAD value when not aborted.
func sadSubpelThresh(cur Plane, cx, cy int, ref Plane, mv MV, bw, bh int, scratch []uint8, thresh int64) (int64, bool) {
	ix := cx + int(mv.X>>2)
	iy := cy + int(mv.Y>>2)
	fx := int(mv.X & 3)
	fy := int(mv.Y & 3)
	if fx == 0 && fy == 0 {
		return sadThresh(cur, cx, cy, ref, ix, iy, bw, bh, thresh)
	}
	if ix >= 0 && iy >= 0 && ix+bw+1 <= ref.W && iy+bh+1 <= ref.H {
		w00 := (4 - fx) * (4 - fy)
		w10 := fx * (4 - fy)
		w01 := (4 - fx) * fy
		w11 := fx * fy
		return kern.BilinearSADThresh(cur.Pix[cy*cur.W+cx:], cur.W, ref.Pix[iy*ref.W+ix:], ref.W,
			w00, w10, w01, w11, 8, 4, bw, bh, thresh)
	}
	PredictLuma(scratch, ref, cx, cy, mv, bw, bh)
	return kern.SADThresh(cur.Pix[cy*cur.W+cx:], cur.W, scratch, bw, bw, bh, thresh)
}

// sadSubpel computes the exact SAD of the current block against the
// interpolated reference at quarter-pel vector mv.
func sadSubpel(cur Plane, cx, cy int, ref Plane, mv MV, bw, bh int, scratch []uint8) int64 {
	sad, _ := sadSubpelThresh(cur, cx, cy, ref, mv, bw, bh, scratch, math.MaxInt64)
	return sad
}

// sadSubpelRef is the original predict-then-difference scalar
// implementation, kept as the cross-check reference.
func sadSubpelRef(cur Plane, cx, cy int, ref Plane, mv MV, bw, bh int, scratch []uint8) int64 {
	predictLumaRef(scratch, ref, cx, cy, mv, bw, bh)
	var sum int64
	for y := 0; y < bh; y++ {
		cRow := cur.Pix[(cy+y)*cur.W+cx:]
		pRow := scratch[y*bw:]
		for x := 0; x < bw; x++ {
			d := int(cRow[x]) - int(pRow[x])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum
}

// PredSAD returns the SAD between the bw×bh block of cur at (bx, by)
// and its motion-compensated prediction from ref at quarter-pel vector
// mv. scratch must hold bw×bh samples. Work is accounted into c.
func PredSAD(cur Plane, bx, by int, ref Plane, mv MV, bw, bh int, scratch []uint8, c *perf.Counters) int64 {
	sad, _ := PredSADThresh(cur, bx, by, ref, mv, bw, bh, scratch, math.MaxInt64, c)
	return sad
}

// PredSADThresh is PredSAD with deterministic early termination: if
// the SAD reaches thresh the scan aborts, returning a partial sum
// ≥ thresh and early=true. Counter accounting is identical to PredSAD
// — op counts are nominal full-block work, unaffected by aborts, so
// modeled speeds stay deterministic (see docs/FORMAT.md).
func PredSADThresh(cur Plane, bx, by int, ref Plane, mv MV, bw, bh int, scratch []uint8, thresh int64, c *perf.Counters) (int64, bool) {
	blockOps := int64(bw * bh)
	if mv.X&3 == 0 && mv.Y&3 == 0 {
		c.Count(perf.KSAD, blockOps)
		return sadThresh(cur, bx, by, ref, bx+int(mv.X>>2), by+int(mv.Y>>2), bw, bh, thresh)
	}
	c.Count(perf.KInterp, blockOps*4)
	c.Count(perf.KSAD, blockOps)
	return sadSubpelThresh(cur, bx, by, ref, mv, bw, bh, scratch, thresh)
}

// SearchKind selects the integer-pel search strategy.
type SearchKind int

// Available search strategies, cheapest to most exhaustive.
const (
	SearchDiamond SearchKind = iota
	SearchHex
	SearchFull
)

// String names the search strategy.
func (k SearchKind) String() string {
	switch k {
	case SearchDiamond:
		return "dia"
	case SearchHex:
		return "hex"
	case SearchFull:
		return "esa"
	}
	return "unknown"
}

// Params configures a motion search.
type Params struct {
	Kind SearchKind
	// Range is the integer search radius in pixels.
	Range int
	// SubPel selects refinement depth: 0 integer, 1 half-pel,
	// 2 quarter-pel.
	SubPel int
	// Lambda weights motion-vector rate against distortion
	// (cost = SAD + Lambda·bits(mvd)); it scales with quantizer.
	Lambda int64
}

// mvdBits estimates the coded size of a motion-vector difference.
func mvdBits(mv, pred MV) int64 {
	return int64(bitstream.SEBits(mv.X-pred.X) + bitstream.SEBits(mv.Y-pred.Y))
}

// intSearcher evaluates integer-pel candidates for one Search call.
// It replaces the closure the search loops used to capture: a plain
// struct passed by pointer stays on the caller's stack, where the
// escaping closure (and every variable it captured) cost a handful of
// heap allocations per macroblock.
type intSearcher struct {
	cur, ref Plane
	bx, by   int
	bw, bh   int
	pred     MV
	lambda   int64
	evals    int
	// best mirrors the caller's incumbent best cost so SAD evaluation
	// can stop as soon as a candidate is provably losing. earlyExits
	// counts aborted evaluations (telemetry only).
	best       int64
	earlyExits int64
}

// cost returns SAD + λ·bits(mvd) for the integer-pel vector (mx, my).
// The SAD scan aborts once it reaches best−mvCost: an aborted return
// value is ≥ best, so the caller's `< best` comparison loses exactly
// as it would on the full SAD, and best (always set from exact,
// non-aborted evaluations) follows the same trajectory as a full
// search — the selected vector and cost are bit-identical.
func (s *intSearcher) cost(mx, my int) int64 {
	s.evals++
	mv := MV{int32(mx) * 4, int32(my) * 4}
	mvCost := s.lambda * mvdBits(mv, s.pred) / 16
	sad, early := sadThresh(s.cur, s.bx, s.by, s.ref, s.bx+mx, s.by+my, s.bw, s.bh, s.best-mvCost)
	if early {
		s.earlyExits++
	}
	return sad + mvCost
}

// Search finds a motion vector for the bw×bh block at (bx, by) of cur
// in ref. pred is the motion-vector predictor used for rate costing
// and as the search start point. sc provides the sub-pel interpolation
// scratch (nil allocates per call). Returns the best vector
// (quarter-pel) and its cost. Work is accounted into c.
func Search(cur Plane, bx, by int, ref Plane, pred MV, bw, bh int, p Params, sc *Scratch, c *perf.Counters) (MV, int64) {
	blockOps := int64(bw * bh)
	s := intSearcher{cur: cur, ref: ref, bx: bx, by: by, bw: bw, bh: bh, pred: pred, lambda: p.Lambda, best: math.MaxInt64}

	// Start from the predictor rounded to integer pel, clamped to range.
	startX := clampInt(int(pred.X)/4, -p.Range, p.Range)
	startY := clampInt(int(pred.Y)/4, -p.Range, p.Range)

	bestX, bestY := 0, 0
	bestCost := s.cost(0, 0)
	s.best = bestCost
	if startX != 0 || startY != 0 {
		if c := s.cost(startX, startY); c < bestCost {
			bestCost, bestX, bestY = c, startX, startY
			s.best = c
		}
	}

	switch p.Kind {
	case SearchFull:
		for my := -p.Range; my <= p.Range; my++ {
			for mx := -p.Range; mx <= p.Range; mx++ {
				if mx == 0 && my == 0 {
					continue
				}
				if c := s.cost(mx, my); c < bestCost {
					bestCost, bestX, bestY = c, mx, my
					s.best = c
				}
			}
		}
	case SearchDiamond:
		bestX, bestY, bestCost = patternSearch(bestX, bestY, bestCost, p.Range, diamondLarge[:], diamondSmall[:], &s)
	case SearchHex:
		bestX, bestY, bestCost = patternSearch(bestX, bestY, bestCost, p.Range, hexPattern[:], diamondSmall[:], &s)
	}
	c.Count(perf.KSAD, blockOps*int64(s.evals))
	c.DataDepBranches += int64(s.evals)

	best := MV{int32(bestX) * 4, int32(bestY) * 4}
	if p.SubPel == 0 {
		if sc != nil {
			sc.SADEarlyExits += s.earlyExits
		}
		return best, bestCost
	}

	// Sub-pel refinement: half-pel, then quarter-pel, each testing the
	// 8 neighbours of the incumbent. As in the integer stage, each
	// candidate's SAD aborts once it reaches bestCost−mvCost; aborted
	// values cannot win the comparison, so the refinement trajectory
	// matches the full evaluation exactly.
	scratch := sc.predBuf(bw * bh)
	subEvals := 0
	steps := [2]int32{2, 1}
	nSteps := 1
	if p.SubPel >= 2 {
		nSteps = 2
	}
	for _, step := range steps[:nSteps] {
		improved := true
		for improved {
			improved = false
			for _, d := range neighbours8 {
				cand := MV{best.X + d[0]*step, best.Y + d[1]*step}
				if int(cand.X)/4 < -p.Range || int(cand.X)/4 > p.Range ||
					int(cand.Y)/4 < -p.Range || int(cand.Y)/4 > p.Range {
					continue
				}
				subEvals++
				mvCost := p.Lambda * mvdBits(cand, pred) / 16
				sad, early := sadSubpelThresh(cur, bx, by, ref, cand, bw, bh, scratch, bestCost-mvCost)
				if early {
					s.earlyExits++
				}
				if cost := sad + mvCost; cost < bestCost {
					bestCost = cost
					best = cand
					improved = true
				}
			}
		}
	}
	// Each sub-pel eval interpolates and compares the whole block.
	// Counts are nominal: an early-terminated SAD still counts the
	// full block, keeping modeled speeds independent of abort points.
	c.Count(perf.KInterp, blockOps*int64(subEvals)*4)
	c.Count(perf.KSAD, blockOps*int64(subEvals))
	c.DataDepBranches += int64(subEvals)
	if sc != nil {
		sc.SADEarlyExits += s.earlyExits
	}
	return best, bestCost
}

var neighbours8 = [8][2]int32{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

var diamondLarge = [8][2]int{{0, -2}, {1, -1}, {2, 0}, {1, 1}, {0, 2}, {-1, 1}, {-2, 0}, {-1, -1}}
var diamondSmall = [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}}
var hexPattern = [6][2]int{{-2, 0}, {-1, -2}, {1, -2}, {2, 0}, {1, 2}, {-1, 2}}

// patternSearch iterates a coarse pattern until no candidate improves,
// then refines once with a fine pattern.
func patternSearch(bx, by int, bestCost int64, searchRange int, coarse, fine [][2]int, s *intSearcher) (int, int, int64) {
	for iter := 0; iter < 4*searchRange+16; iter++ {
		improved := false
		for _, d := range coarse {
			x, y := bx+d[0], by+d[1]
			if x < -searchRange || x > searchRange || y < -searchRange || y > searchRange {
				continue
			}
			if sc := s.cost(x, y); sc < bestCost {
				bestCost, bx, by = sc, x, y
				s.best = sc
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	for _, d := range fine {
		x, y := bx+d[0], by+d[1]
		if x < -searchRange || x > searchRange || y < -searchRange || y > searchRange {
			continue
		}
		if sc := s.cost(x, y); sc < bestCost {
			bestCost, bx, by = sc, x, y
			s.best = sc
		}
	}
	return bx, by, bestCost
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MedianMV returns the component-wise median of three motion vectors,
// the standard H.264 motion-vector predictor.
func MedianMV(a, b, c MV) MV {
	return MV{median3(a.X, b.X, c.X), median3(a.Y, b.Y, c.Y)}
}

func median3(a, b, c int32) int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
