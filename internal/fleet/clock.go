package fleet

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for the scheduler core. The queue never calls
// time.Now directly: vbenchd drives it with WallClock, and the
// discrete-event twin drives the very same lease/retry/state-machine
// code with a SimClock it advances between events — which is what
// makes the simulator a faithful, deterministic model of the
// networked master rather than a parallel implementation.
type Clock interface {
	Now() time.Time
}

// WallClock is the real-time clock used by the networked master.
type WallClock struct{}

// Now returns the wall time.
func (WallClock) Now() time.Time { return time.Now() }

// SimClock is a manually advanced clock for the discrete-event twin.
// It is safe for concurrent reads; advancing is the event loop's job
// and must be monotonic.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimClock returns a clock pinned at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the current simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock to t. Moving backwards is a bug in the
// event loop and panics.
func (c *SimClock) Advance(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic(fmt.Sprintf("fleet: sim clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}
