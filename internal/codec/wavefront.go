package codec

import (
	"fmt"
	"sync"
	"time"

	"vbench/internal/codec/motion"
	"vbench/internal/perf"
)

// Wavefront parallelism: macroblock rows of one slice encode
// concurrently (see DESIGN.md, "Wavefront parallelism").
//
// The dependency rule is "the row above has advanced at least two
// macroblocks": MB (x, r) reads, from row r−1, the reconstruction of
// MBs up to column x+1 (up and up-right intra predictors, including
// the 4×4 up-right samples that reach into the next macroblock) and
// the grid state of columns x−1..x+1 (the median MV predictor). Both
// are final once progress(r−1) ≥ x+2.
//
// Entropy coding cannot be parallelized — the symbol writer's adaptive
// contexts thread through every macroblock of the slice — so the row
// task is split in two: the decision/reconstruction half (decideMB)
// runs wavefront-parallel on per-lane scratch, buffering each row's
// winning candidates; the serialization half (finishRow) replays them
// through the slice's single writer in strict row order. Rows finish
// deciding in row order too (row r's last MB needs the whole of row
// r−1), so the worker that decided row r serializes it as soon as the
// write cursor reaches r — by then it usually already has. Bitstreams
// are byte-identical to the serial path by construction, and the
// golden-digest matrix pins that.
//
// Deadlock-freedom with the shared CPU gate: the slice goroutine
// (which already represents a granted execution context) claims and
// encodes rows itself and never blocks on the gate; helpers join only
// via AcquireOrQuit, exactly like the slice fan-out. Among workers, let
// r₀ be the smallest claimed-but-unfinished row. Every row below r₀ is
// fully serialized (each worker finishes its row — decide, wait for
// the write cursor, serialize — before claiming another), so r₀'s
// worker can never be parked: its upstream row is complete, its lane's
// previous tenant (row r₀−L) is serialized, and the write cursor is at
// r₀. Progress is therefore always possible at any gate capacity.

// waveCoord synchronizes the row workers of one slice-frame: per-row
// decide progress, the claim cursor, and the serialization cursor. One
// instance per slice lives for the whole encode and is reset per
// frame. All fields are guarded by mu; recon/grid/qpGrid accesses are
// ordered by the progress waits, so the concurrent row workers are
// race-free without any atomics in the pixel paths.
type waveCoord struct {
	mu       sync.Mutex
	cond     sync.Cond
	rows     int
	nextRow  int   // next unclaimed row
	written  int   // rows fully serialized (write cursor)
	progress []int // per row: macroblocks decided

	// Schedule-dependent health, reported to telemetry (never to
	// perf.Counters, which must stay deterministic): stalls counts
	// wait episodes (upstream row, lane reuse, or write turn) and
	// workers counts goroutines that decided at least one row.
	stalls  int64
	workers int

	// panicked carries the first row worker panic; every wait bails
	// out on it so the slice goroutine can rethrow after the join.
	panicked interface{}
}

func newWaveCoord(rows int) *waveCoord {
	wc := &waveCoord{rows: rows, progress: make([]int, rows)}
	wc.cond.L = &wc.mu
	return wc
}

// resetFrame rewinds the coordinator for the next frame.
func (wc *waveCoord) resetFrame() {
	for i := range wc.progress {
		wc.progress[i] = 0
	}
	wc.nextRow = 0
	wc.written = 0
	wc.stalls = 0
	wc.workers = 0
	wc.panicked = nil
}

// claim hands out the next undecided row, counting first-time workers
// for the occupancy metric. ok is false when no rows remain (or the
// frame aborted).
//
//vbench:noalloc
func (wc *waveCoord) claim(claimed *bool) (row int, ok bool) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.panicked != nil || wc.nextRow >= wc.rows {
		return 0, false
	}
	row = wc.nextRow
	wc.nextRow++
	if !*claimed {
		*claimed = true
		wc.workers++
	}
	return row, true
}

// advance publishes one more decided macroblock of row and wakes
// waiters.
//
//vbench:noalloc
func (wc *waveCoord) advance(row int) {
	wc.mu.Lock()
	wc.progress[row]++
	wc.cond.Broadcast()
	wc.mu.Unlock()
}

// awaitProgress blocks until row's upstream neighbour has decided at
// least need macroblocks; false means the frame aborted.
//
//vbench:noalloc
func (wc *waveCoord) awaitProgress(row, need int) bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.progress[row-1] < need && wc.panicked == nil {
		wc.stalls++
		for wc.progress[row-1] < need && wc.panicked == nil {
			wc.cond.Wait()
		}
	}
	return wc.panicked == nil
}

// awaitWritten blocks until the write cursor reaches n rows; false
// means the frame aborted.
//
//vbench:noalloc
func (wc *waveCoord) awaitWritten(n int) bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.written < n && wc.panicked == nil {
		wc.stalls++
		for wc.written < n && wc.panicked == nil {
			wc.cond.Wait()
		}
	}
	return wc.panicked == nil
}

// rowWritten advances the write cursor past one serialized row.
//
//vbench:noalloc
func (wc *waveCoord) rowWritten() {
	wc.mu.Lock()
	wc.written++
	wc.cond.Broadcast()
	wc.mu.Unlock()
}

// abort records a row worker panic and releases every waiter.
func (wc *waveCoord) abort(r interface{}) {
	wc.mu.Lock()
	if wc.panicked == nil {
		wc.panicked = r
	}
	wc.cond.Broadcast()
	wc.mu.Unlock()
}

// waveLane is the reusable per-lane state of one in-flight row: a
// private frameEncoder view (own counters and scratch, no writer), the
// trial scratch, a row-sized winner arena, and the buffered winning
// candidates awaiting serialization. Row r runs on lane r mod L, so a
// lane is reused only after its previous row has been serialized and
// its candidates recycled.
type waveLane struct {
	fe      frameEncoder // decisions run on this view; fe.w is nil
	enc     encScratch   // trial arena + candidate pool + motion buffers
	winners levelArena   // row winners' level storage, reset per row
	cands   []*mbCand    // winning candidate per column
	mvs     []motion.MV
	c       perf.Counters
	tm      stageTimes
}

// newWaveLanes builds n lanes for a slice of width mbW macroblocks.
func newWaveLanes(n, mbW int) []waveLane {
	lanes := make([]waveLane, n)
	for i := range lanes {
		lanes[i].winners.capHint = mbW * candLevelInt32s
		lanes[i].cands = make([]*mbCand, mbW)
		lanes[i].mvs = make([]motion.MV, mbW)
	}
	return lanes
}

// attach points the lane's encoder view at the slice encoder's current
// frame: shared read-mostly state (header, planes, grid, QP grid) is
// copied by value or pointer, while counters, stage clocks, and
// scratch become lane-private. The writer is nilled out — decisions
// must never touch entropy state, and a nil writer turns any such bug
// into an immediate panic.
func (l *waveLane) attach(fe *frameEncoder) {
	l.fe = *fe
	l.fe.w = nil
	l.fe.sc = &l.enc
	l.fe.c = &l.c
	l.fe.tm = nil
	if fe.tm != nil {
		l.fe.tm = &l.tm
	}
	l.fe.lanes = nil
	l.fe.wc = nil
}

// compactLevels copies a winning candidate's live level slices into
// arena a. Trials borrow storage from the lane's per-macroblock trial
// arena, which the next decision resets; the winner must outlive the
// whole row, so its levels move to the row-lifetime winner arena.
//
//vbench:noalloc
func (c *mbCand) compactLevels(a *levelArena) {
	for i, blk := range c.lumaLevels {
		if blk != nil {
			nb := a.take(len(blk))
			copy(nb, blk)
			c.lumaLevels[i] = nb
		}
	}
	for p := 0; p < 2; p++ {
		for i, blk := range c.chromaLevels[p] {
			if blk != nil {
				nb := a.take(len(blk))
				copy(nb, blk)
				c.chromaLevels[p][i] = nb
			}
		}
	}
}

// encodeRowsWave encodes the slice's rows as a wavefront. Called from
// encodeFrame when more than one lane is configured; the slice
// goroutine works alongside up to len(lanes)-1 helpers.
func (fe *frameEncoder) encodeRowsWave(rows int) {
	wc := fe.wc
	wc.resetFrame()
	nLanes := len(fe.lanes)
	if nLanes > rows {
		nLanes = rows
	}
	for i := 0; i < nLanes; i++ {
		fe.lanes[i].attach(fe)
	}

	quit := make(chan struct{})
	var wg sync.WaitGroup
	var helperWaits []time.Duration
	if fe.tm != nil {
		helperWaits = make([]time.Duration, nLanes-1)
	}
	for w := 0; w < nLanes-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if fe.gateShared {
				if fe.tm != nil {
					t0 := time.Now()
					if !cpuGate.AcquireOrQuit(quit) {
						return
					}
					helperWaits[w] = time.Since(t0)
				} else if !cpuGate.AcquireOrQuit(quit) {
					return
				}
				defer cpuGate.Release()
			}
			fe.waveWork(nLanes)
		}(w)
	}
	fe.waveWork(nLanes)

	// All rows are claimed; wait for the stragglers to serialize (or
	// for an abort), then release any helper still queued on the gate.
	wc.mu.Lock()
	for wc.written < rows && wc.panicked == nil {
		wc.cond.Wait()
	}
	wc.mu.Unlock()
	close(quit)
	wg.Wait()

	for _, hw := range helperWaits {
		if hw > 0 {
			fe.tm.gateWait += hw
			obsGateWait.ObserveDuration(hw)
		}
	}
	obsWaveRowStalls.Add(wc.stalls)
	obsWaveOccupancy.Observe(float64(wc.workers))
	if wc.panicked != nil {
		panic(fmt.Sprintf("codec: wavefront row worker: %v", wc.panicked))
	}
}

// waveWork claims and encodes rows until none remain. Helper panics
// are routed through the coordinator so the slice goroutine can
// rethrow them after the join instead of killing the process.
func (fe *frameEncoder) waveWork(nLanes int) {
	defer func() {
		if r := recover(); r != nil {
			fe.wc.abort(r)
		}
	}()
	claimed := false
	for {
		r, ok := fe.wc.claim(&claimed)
		if !ok {
			return
		}
		if !fe.encodeWaveRow(r, nLanes) {
			return
		}
	}
}

// encodeWaveRow is the row task: wait for the lane, decide every
// macroblock under the wavefront dependency, then serialize the row
// when the write cursor arrives. Reports false when the frame aborted.
//
//vbench:noalloc
func (fe *frameEncoder) encodeWaveRow(r, nLanes int) bool {
	wc := fe.wc
	lane := &fe.lanes[r%nLanes]
	// The lane's previous tenant was row r−nLanes; once that row is
	// serialized its candidates are recycled and the winner arena is
	// dead, so the lane is free to rewind.
	if r >= nLanes && !wc.awaitWritten(r-nLanes+1) {
		return false
	}
	lane.winners.reset()
	lfe := &lane.fe
	for x := 0; x < fe.mbW; x++ {
		if r > 0 {
			need := x + 2
			if need > fe.mbW {
				need = fe.mbW
			}
			if !wc.awaitProgress(r, need) {
				return false
			}
		}
		cand, predMV := lfe.decideMB(x, r)
		cand.compactLevels(&lane.winners)
		lane.cands[x] = cand
		lane.mvs[x] = predMV
		wc.advance(r)
	}
	if !wc.awaitWritten(r) {
		return false
	}
	fe.finishRow(lane)
	wc.rowWritten()
	return true
}

// finishRow serializes a decided row through the slice's writer and
// folds the lane's work accounting into the slice totals. Callers hold
// the write turn (written == row), so access to the writer and the
// slice counters is exclusive and in row order — which keeps both the
// bitstream and the merged perf.Counters byte-for-byte deterministic.
func (fe *frameEncoder) finishRow(lane *waveLane) {
	for x := 0; x < fe.mbW; x++ {
		fe.writeCand(lane.cands[x], lane.mvs[x])
		lane.enc.cands.put(lane.cands[x])
		lane.cands[x] = nil
	}
	fe.c.Add(&lane.c)
	lane.c = perf.Counters{}
	if fe.tm != nil {
		fe.tm.add(&lane.tm)
		lane.tm = stageTimes{}
	}
}
