package service

import (
	"strings"
	"testing"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/telemetry"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Uploads = 12
	cfg.Workers = 2
	cfg.PopularShare = 0.3
	return cfg
}

// cheapConfig trims the encode work for tests that only exercise the
// scheduling and accounting around the encodes.
func cheapConfig() Config {
	cfg := smallConfig()
	cfg.Uploads = 8
	cfg.DurationSeconds = 0.2
	return cfg
}

func TestRunBasicInvariants(t *testing.T) {
	stats, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Uploads != 12 {
		t.Errorf("uploads = %d", stats.Uploads)
	}
	if stats.UploadTranscodes != stats.Uploads || stats.VODTranscodes != stats.Uploads {
		t.Error("every upload needs a universal and a VOD transcode")
	}
	if stats.PopularRetranscodes > stats.Uploads {
		t.Error("more popular re-transcodes than uploads")
	}
	if stats.StorageBytes <= 0 || stats.EgressBytes <= 0 {
		t.Error("zero storage/egress")
	}
	if stats.TotalComputeSeconds() <= 0 {
		t.Error("zero compute")
	}
	if stats.FleetUtilization < 0 || stats.FleetUtilization > 1 {
		t.Errorf("utilization %v out of range", stats.FleetUtilization)
	}
	if stats.MeanServedPSNR < 25 {
		t.Errorf("served quality %v implausible", stats.MeanServedPSNR)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPopularRetranscodesSaveEgress(t *testing.T) {
	cfg := smallConfig()
	cfg.PopularShare = 1.0 // every video goes hot
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PopularRetranscodes == 0 {
		t.Fatal("no popular re-transcodes despite 100% popularity")
	}
	if stats.EgressSavedBytes <= 0 {
		t.Error("popular re-transcodes saved no egress")
	}
	// The saved/served accounting must be consistent: serving the VOD
	// copies to the same traffic would have cost exactly
	// EgressBytes + EgressSavedBytes.
	cfg2 := cfg
	cfg2.PopularEncoder = profiles.X264(codec.PresetUltraFast) // cannot beat the VOD copy
	weak, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if weak.PopularRetranscodes != 0 {
		t.Errorf("ultrafast popular encoder produced %d valid re-transcodes", weak.PopularRetranscodes)
	}
	if stats.EgressBytes >= weak.EgressBytes {
		t.Errorf("good popular encoder egress (%d) not below weak encoder egress (%d)",
			stats.EgressBytes, weak.EgressBytes)
	}
	if stats.EgressBytes+stats.EgressSavedBytes != weak.EgressBytes {
		t.Errorf("egress accounting inconsistent: %d + %d != %d",
			stats.EgressBytes, stats.EgressSavedBytes, weak.EgressBytes)
	}
}

func TestMoreWorkersReduceQueueWait(t *testing.T) {
	cfg := smallConfig()
	cfg.Uploads = 20
	cfg.MeanInterarrivalSeconds = 0.02 // saturate the fleet
	cfg.Workers = 1
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanQueueWaitSeconds > slow.MeanQueueWaitSeconds {
		t.Errorf("8 workers waited longer (%.3fs) than 1 worker (%.3fs)",
			fast.MeanQueueWaitSeconds, slow.MeanQueueWaitSeconds)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Workers = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero workers accepted")
	}
	bad = DefaultConfig()
	bad.Uploads = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero uploads accepted")
	}
	bad = DefaultConfig()
	bad.MeanInterarrivalSeconds = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero interarrival accepted")
	}
}

func TestDefaultEncoderLadder(t *testing.T) {
	// Pin the documented reference ladder: veryfast upload, medium
	// two-pass VOD, and — the part that once silently shipped as
	// x265-slow — an x265-class VERYSLOW popular re-transcode.
	cfg := DefaultConfig()
	if err := cfg.withDefaults(); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"upload":  profiles.X264(codec.PresetVeryFast).Tools.Name,
		"vod":     profiles.X264(codec.PresetMedium).Tools.Name,
		"popular": profiles.X265(codec.PresetVerySlow).Tools.Name,
	}
	got := map[string]string{
		"upload":  cfg.UploadEncoder.Tools.Name,
		"vod":     cfg.VODEncoder.Tools.Name,
		"popular": cfg.PopularEncoder.Tools.Name,
	}
	for pass, name := range want {
		if got[pass] != name {
			t.Errorf("default %s encoder = %s, want %s", pass, got[pass], name)
		}
	}
}

func TestRunMetricsIsolation(t *testing.T) {
	// Two runs with private registries must not contaminate each other
	// or the process default.
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	defBefore := telemetry.Default.Counter("service.transcodes").Value()

	cfgA := cheapConfig()
	cfgA.Metrics = regA
	statsA, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cheapConfig()
	cfgB.Uploads = 4
	cfgB.Metrics = regB
	statsB, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	jobsA := int64(statsA.UploadTranscodes + statsA.VODTranscodes + statsA.PopularRetranscodes)
	jobsB := int64(statsB.UploadTranscodes + statsB.VODTranscodes + statsB.PopularRetranscodes)
	if got := regA.Counter("service.transcodes").Value(); got != jobsA {
		t.Errorf("registry A counted %d transcodes, want %d", got, jobsA)
	}
	if got := regB.Counter("service.transcodes").Value(); got != jobsB {
		t.Errorf("registry B counted %d transcodes, want %d", got, jobsB)
	}
	if got := telemetry.Default.Counter("service.transcodes").Value(); got != defBefore {
		t.Errorf("per-run registries leaked %d observations into telemetry.Default", got-defBefore)
	}
	// The fleet twin reports into the same per-run registry.
	if got := regA.Counter("fleet.jobs_submitted").Value(); got != jobsA {
		t.Errorf("registry A fleet.jobs_submitted = %d, want %d", got, jobsA)
	}
}

func TestRunTransitionLogDeterministic(t *testing.T) {
	cfg := cheapConfig()
	cfg.RecordLog = true
	cfg.Metrics = telemetry.NewRegistry()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = telemetry.NewRegistry()
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TransitionLog == "" {
		t.Fatal("RecordLog produced no transition log")
	}
	if a.TransitionLog != b.TransitionLog {
		t.Error("same-seed runs produced different transition logs")
	}
	for _, tag := range []string{"reason=submit", "reason=lease", "reason=complete"} {
		if !strings.Contains(a.TransitionLog, tag) {
			t.Errorf("transition log missing %q", tag)
		}
	}
}

func TestSummaryLines(t *testing.T) {
	stats, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	lines := stats.Summary()
	if len(lines) != 7 {
		t.Errorf("summary has %d lines", len(lines))
	}
}
