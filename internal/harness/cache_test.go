package harness

import (
	"bytes"
	"testing"

	"vbench/internal/cas"
	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/telemetry"
)

// TestWarmRunZeroEncodes is the incremental-run acceptance pin: a
// second identical study over the same cache directory performs zero
// real encodes (every lookup hits the disk tier written by the first
// run) yet renders byte-identical output.
func TestWarmRunZeroEncodes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) study twice")
	}
	dir := t.TempDir()

	run := func() (string, int64, cas.Stats) {
		store, err := cas.Open(dir, telemetry.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(32, 0.2)
		r.Cache = store
		tbl, err := r.AblationStudy("girl")
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String(), r.Encodes(), store.Stats()
	}

	coldOut, coldEncodes, coldStats := run()
	if coldEncodes == 0 || coldStats.Misses == 0 {
		t.Fatalf("cold run did no work: encodes=%d stats=%+v", coldEncodes, coldStats)
	}
	warmOut, warmEncodes, warmStats := run()
	if warmEncodes != 0 {
		t.Errorf("warm run performed %d encodes, want 0", warmEncodes)
	}
	if warmStats.Misses != 0 {
		t.Errorf("warm run missed the cache %d times, want 0 (stats %+v)", warmStats.Misses, warmStats)
	}
	if warmStats.DiskHits == 0 {
		t.Errorf("warm run should hit the disk tier (stats %+v)", warmStats)
	}
	if warmOut != coldOut {
		t.Errorf("warm output differs from cold output:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
}

// TestMeasureCachedMatchesUncached: with a cache installed, both the
// populating (miss) and the serving (hit) measurement are identical —
// bitstream bytes included — to an uncached Runner's measurement.
func TestMeasureCachedMatchesUncached(t *testing.T) {
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		t.Fatal(err)
	}
	eng := profiles.X264(codec.PresetFast)
	cfg := codec.Config{RC: codec.RCConstQP, QP: 32}

	plain := NewRunner(32, 0.2)
	seq, err := plain.Sequence(clip)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Measure(eng, seq, cfg)
	if err != nil {
		t.Fatal(err)
	}

	store, err := cas.Open(t.TempDir(), telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	cached := NewRunner(32, 0.2)
	cached.Cache = store
	cseq, err := cached.Sequence(clip)
	if err != nil {
		t.Fatal(err)
	}
	for pass, label := range []string{"miss", "mem hit"} {
		got, err := cached.Measure(eng, cseq, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Measurement != want.Measurement {
			t.Errorf("%s (pass %d): measurement %+v != uncached %+v", label, pass, got.Measurement, want.Measurement)
		}
		if !bytes.Equal(got.Result.Bitstream, want.Result.Bitstream) {
			t.Errorf("%s (pass %d): bitstream differs from uncached encode", label, pass)
		}
	}
	if n := cached.Encodes(); n != 1 {
		t.Errorf("cached runner performed %d encodes, want 1", n)
	}

	// A flipped Config field must miss: same sequence, different key.
	before := store.Stats().Misses
	cfg2 := cfg
	cfg2.QP = 33
	if _, err := cached.Measure(eng, cseq, cfg2); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Misses != before+1 {
		t.Errorf("changed Config did not force a cache miss")
	}
}
