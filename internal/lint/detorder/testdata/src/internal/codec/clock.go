// Package codec exercises detorder's clock/rand gating checks; its
// import path contains internal/codec, so it counts as deterministic.
package codec

import (
	"math/rand"
	"time"

	"lint.test/telemetry"
)

type stageTimes struct {
	motion  time.Duration
	started time.Time
}

func ungatedClock() time.Time {
	return time.Now() // want `time.Now in deterministic package codec outside a telemetry gate`
}

func ungatedRand() int {
	return rand.Intn(10) // want `math/rand.Intn in deterministic package codec`
}

func gatedDirect() time.Duration {
	if telemetry.StagesEnabled() {
		start := time.Now()
		return time.Since(start)
	}
	return 0
}

func gatedViaVar() time.Duration {
	stagesOn := telemetry.StagesEnabled()
	if stagesOn {
		start := time.Now()
		return time.Since(start)
	}
	return 0
}

func gatedByAccumulator(st *stageTimes) {
	if st != nil {
		st.started = time.Now()
	}
}

func (st *stageTimes) mark() {
	st.motion += time.Since(st.started)
}

func suppressedClock() time.Time {
	//lint:ignore detorder coarse timestamp for log file names only
	return time.Now()
}
