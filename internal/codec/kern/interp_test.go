package kern

import (
	"math/rand"
	"testing"
)

// bilerpRef is the scalar bilinear reference over the interior window.
func bilerpRef(dst []uint8, ds int, ref []uint8, rs int, w00, w10, w01, w11, round int, shift uint, bw, bh int) {
	for y := 0; y < bh; y++ {
		for x := 0; x < bw; x++ {
			a := int(ref[y*rs+x])
			b := int(ref[y*rs+x+1])
			c := int(ref[(y+1)*rs+x])
			d := int(ref[(y+1)*rs+x+1])
			dst[y*ds+x] = uint8((a*w00 + b*w10 + c*w01 + d*w11 + round) >> shift)
		}
	}
}

// weightSets enumerates every sub-pel phase of the two bilinear
// kernels in the codec: quarter-pel luma (Σw=16, round 8, shift 4)
// and eighth-pel chroma (Σw=64, round 32, shift 6).
type weightSet struct {
	w00, w10, w01, w11, round int
	shift                     uint
}

func weightSets() []weightSet {
	var sets []weightSet
	for fy := 0; fy < 4; fy++ {
		for fx := 0; fx < 4; fx++ {
			sets = append(sets, weightSet{(4 - fx) * (4 - fy), fx * (4 - fy), (4 - fx) * fy, fx * fy, 8, 4})
		}
	}
	for fy := 0; fy < 8; fy++ {
		for fx := 0; fx < 8; fx++ {
			sets = append(sets, weightSet{(8 - fx) * (8 - fy), fx * (8 - fy), (8 - fx) * fy, fx * fy, 32, 6})
		}
	}
	return sets
}

func TestPredictBilinearCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := weightSets()
	for iter := 0; iter < 1500; iter++ {
		ws := sets[iter%len(sets)]
		bw := 1 + rng.Intn(20)
		bh := 1 + rng.Intn(18)
		rs := bw + 1 + rng.Intn(8)
		ds := bw + rng.Intn(5)
		ref := make([]uint8, (bh+1)*rs+8)
		fillRand(rng, ref, iter%3)
		got := make([]uint8, bh*ds+8)
		want := make([]uint8, bh*ds+8)
		PredictBilinear(got, ds, ref, rs, ws.w00, ws.w10, ws.w01, ws.w11, ws.round, ws.shift, bw, bh)
		bilerpRef(want, ds, ref, rs, ws.w00, ws.w10, ws.w01, ws.w11, ws.round, ws.shift, bw, bh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PredictBilinear mismatch at %d: got %d want %d (bw=%d bh=%d rs=%d ds=%d ws=%+v)",
					i, got[i], want[i], bw, bh, rs, ds, ws)
			}
		}
	}
}

func TestBilinearSADThreshCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sets := weightSets()
	for iter := 0; iter < 1500; iter++ {
		ws := sets[iter%len(sets)]
		bw := 1 + rng.Intn(20)
		bh := 1 + rng.Intn(18)
		rs := bw + 1 + rng.Intn(8)
		cs := bw + rng.Intn(5)
		ref := make([]uint8, (bh+1)*rs+8)
		cur := make([]uint8, bh*cs+8)
		fillRand(rng, ref, iter%3)
		fillRand(rng, cur, (iter+1)%3)

		pred := make([]uint8, bh*bw)
		bilerpRef(pred, bw, ref, rs, ws.w00, ws.w10, ws.w01, ws.w11, ws.round, ws.shift, bw, bh)
		exact := sadRef(cur, cs, pred, bw, bw, bh)

		for _, th := range []int64{0, 1, exact / 2, exact, exact + 1, 1 << 40} {
			got, early := BilinearSADThresh(cur, cs, ref, rs, ws.w00, ws.w10, ws.w01, ws.w11, ws.round, ws.shift, bw, bh, th)
			if !early && got != exact {
				t.Fatalf("BilinearSADThresh(th=%d) complete scan got %d want %d (bw=%d bh=%d ws=%+v)",
					th, got, exact, bw, bh, ws)
			}
			if early && (got < th || exact < th) {
				t.Fatalf("BilinearSADThresh(th=%d) bad abort: got %d exact %d", th, got, exact)
			}
			if exact < th && (early || got != exact) {
				t.Fatalf("BilinearSADThresh(th=%d) must be exact below thresh (got %d early=%v exact %d)",
					th, got, early, exact)
			}
		}
	}
}
