package analysis

import (
	"go/ast"
	"sort"
)

// This file is the generic forward dataflow engine that runs over a
// BuildCFG graph. Facts are sets of strings (the "held set" — held
// mutexes for locksafe, seen cancellation signals for leakgo); the
// lattice is the powerset with either union (may analysis) or
// intersection (must analysis) as the join. The engine iterates to a
// fixpoint, then analyzers replay each block with an observer to
// report at precise nodes.

// Set is an immutable-by-convention string set fact. Callers must
// Clone before mutating a set they did not build.
type Set map[string]struct{}

// NewSet builds a set from elements.
func NewSet(elems ...string) Set {
	s := Set{}
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// Has reports membership.
func (s Set) Has(k string) bool { _, ok := s[k]; return ok }

// Sorted returns the elements in sorted order (for deterministic
// diagnostics).
func (s Set) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	c := s.Clone()
	for k := range o {
		c[k] = struct{}{}
	}
	return c
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	c := Set{}
	for k := range s {
		if _, ok := o[k]; ok {
			c[k] = struct{}{}
		}
	}
	return c
}

// JoinMode selects the lattice join of a forward analysis.
type JoinMode int

const (
	// May joins with union: a fact holds if it holds on any
	// predecessor path. Used for reachability-style questions.
	May JoinMode = iota
	// Must joins with intersection: a fact holds only if it holds on
	// every predecessor path. Used when reports must be
	// under-approximating (locksafe's held set).
	Must
)

// Flow is one forward dataflow problem over a CFG.
type Flow struct {
	Join JoinMode
	// Entry is the fact set at function entry (nil means empty).
	Entry Set
	// Transfer folds one CFG node into the incoming fact set and
	// returns the outgoing one. It must not mutate in; clone first.
	Transfer func(n ast.Node, in Set) Set
}

// Run iterates to a fixpoint and returns the fact set at the entry of
// every reachable block. Unreachable blocks are absent from the map.
func (f *Flow) Run(c *CFG) map[*Block]Set {
	entry := f.Entry
	if entry == nil {
		entry = Set{}
	}
	reachable := c.Reachable()
	in := map[*Block]Set{c.Entry: entry}
	// Worklist seeded in block order for determinism.
	work := make([]*Block, 0, len(c.Blocks))
	queued := map[*Block]bool{}
	push := func(b *Block) {
		if !queued[b] && reachable[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	push(c.Entry)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := f.flowBlock(b, in[b])
		for _, s := range b.Succs {
			cur, seen := in[s]
			var next Set
			if !seen {
				next = out.Clone()
			} else if f.Join == May {
				next = cur.Union(out)
			} else {
				next = cur.Intersect(out)
			}
			if !seen || !next.Equal(cur) {
				in[s] = next
				push(s)
			}
		}
	}
	return in
}

// flowBlock applies Transfer over the block's nodes in order.
func (f *Flow) flowBlock(b *Block, state Set) Set {
	if state == nil {
		state = Set{}
	}
	for _, n := range b.Nodes {
		state = f.Transfer(n, state)
	}
	return state
}

// Replay re-walks every reachable block in index order, calling
// observe with the fact set in force just before each node. in is the
// map Run returned.
func (f *Flow) Replay(c *CFG, in map[*Block]Set, observe func(n ast.Node, state Set)) {
	for _, b := range c.Blocks {
		state, ok := in[b]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			observe(n, state)
			state = f.Transfer(n, state)
		}
	}
}

// WalkNode traverses one CFG node's expressions in source order
// without crossing into control-flow territory owned by other blocks:
// function literals are never entered (each gets its own CFG), a
// RangeStmt node contributes only its key/value/operand, and a
// SelectStmt node contributes nothing below itself (its comm clauses
// are separate blocks). f's return value prunes like ast.Inspect.
func WalkNode(n ast.Node, f func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if !f(n) {
			return
		}
		for _, sub := range []ast.Node{n.Key, n.Value, n.X} {
			if sub != nil {
				WalkNode(sub, f)
			}
		}
		return
	case *ast.SelectStmt:
		f(n)
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
