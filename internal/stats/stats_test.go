package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vbench/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestEmptySamples(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty sample should be NaN")
	}
	if _, err := NewBoxPlot(nil); err == nil {
		t.Error("empty boxplot accepted")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := Quantile(xs, 0.125); got != 1.5 {
		t.Errorf("interpolated quantile = %v, want 1.5", got)
	}
}

func TestBoxPlotOrdering(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	bp, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !(bp.Min <= bp.Q1 && bp.Q1 <= bp.Median && bp.Median <= bp.Q3 && bp.Q3 <= bp.Max) {
		t.Errorf("boxplot out of order: %+v", bp)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v (%v), want 1", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform must give rho = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman = %v (%v), want 1", rho, err)
	}
}

func TestSpearmanHandlesTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	rho, err := Spearman(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-9 {
		t.Errorf("Spearman with ties = %v (%v), want 1", rho, err)
	}
}

func TestLogFitRecoversParameters(t *testing.T) {
	// y = 2.5·ln(x) − 1.
	xs := []float64{0.1, 0.5, 1, 2, 5, 10, 50}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*math.Log(x) - 1
	}
	a, b, err := LogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2.5) > 1e-9 || math.Abs(b+1) > 1e-9 {
		t.Errorf("LogFit = (%v, %v), want (2.5, -1)", a, b)
	}
}

func TestLogFitRejectsNonPositiveX(t *testing.T) {
	if _, _, err := LogFit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("x=0 accepted")
	}
}

func TestLinFitRecoversParameters(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	a, b, err := LinFit(xs, ys)
	if err != nil || math.Abs(a-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("LinFit = (%v, %v, %v), want (2, 1)", a, b, err)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %v (%v), want 4", g, err)
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		rho, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return rho >= -1.0000001 && rho <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
