package fleet

import (
	"hash/fnv"
	"strings"
	"testing"
	"time"

	"vbench/internal/telemetry"
)

// hashFaultModel injects pseudo-random transient and terminal faults
// as a pure function of (job ID, attempt) — the property that makes
// fault patterns, and therefore Stats, independent of worker count
// and completion order.
func hashFaultModel(j Job) (float64, Outcome, Result) {
	h := fnv.New32a()
	h.Write([]byte{byte(j.ID), byte(j.ID >> 8), byte(j.Attempt)})
	v := h.Sum32()
	secs := 0.5 + float64(v%1000)/500.0
	switch {
	case v%11 == 0 && j.Attempt == 1:
		return secs, OutcomeTransient, Result{}
	case v%17 == 3:
		return secs, OutcomeTerminal, Result{}
	default:
		return secs, OutcomeDone, Result{Bytes: int64(v), PSNR: 40}
	}
}

func simOptions() Options {
	return Options{
		Metrics:     telemetry.NewRegistry(),
		LeaseTTL:    time.Hour,
		MaxAttempts: 3,
		BackoffBase: time.Second,
		RecordLog:   true,
	}
}

func runFaultySim(t *testing.T, workers int) *Sim {
	t.Helper()
	s := NewSim(SimConfig{Workers: workers, Queue: simOptions(), Model: hashFaultModel})
	for i := 0; i < 40; i++ {
		s.SubmitAt(time.Duration(i)*100*time.Millisecond, JobSpec{Kind: KindNoop, Tag: "sim"}, nil)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimTransitionLogDeterministic(t *testing.T) {
	a := runFaultySim(t, 3)
	b := runFaultySim(t, 3)
	logA, logB := a.Q.TransitionLog(), b.Q.TransitionLog()
	if logA != logB {
		t.Fatalf("same-config runs diverged:\n--- run A ---\n%s--- run B ---\n%s", logA, logB)
	}
	st := a.Q.Stats()
	if st.Retries == 0 || st.Failed == 0 {
		t.Errorf("fault model injected nothing useful: %+v", st)
	}
	if st.Done+st.Failed != st.Submitted || st.Pending != 0 || st.Leased != 0 {
		t.Errorf("unresolved jobs at end of run: %+v", st)
	}
}

func TestSimGoldenStatsAcrossWorkerCounts(t *testing.T) {
	base := runFaultySim(t, 1).Q.Stats()
	for _, workers := range []int{2, 3, 5} {
		if got := runFaultySim(t, workers).Q.Stats(); got != base {
			t.Errorf("stats with %d workers = %+v, want %+v (1 worker)", workers, got, base)
		}
	}
}

func TestSimGoldenTransitionLog(t *testing.T) {
	// One worker, two jobs; job 2 fails transiently once. Pins the
	// exact byte-level schedule of the discrete-event twin.
	model := func(j Job) (float64, Outcome, Result) {
		if j.ID == 2 && j.Attempt == 1 {
			return 1, OutcomeTransient, Result{}
		}
		if j.ID == 1 {
			return 2, OutcomeDone, Result{}
		}
		return 1, OutcomeDone, Result{}
	}
	s := NewSim(SimConfig{Workers: 1, Queue: simOptions(), Model: model})
	s.SubmitAt(0, JobSpec{Kind: KindNoop}, nil)
	s.SubmitAt(0, JobSpec{Kind: KindNoop}, nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"t=0.000 job=1 attempt=0 none>pending reason=submit worker=-",
		"t=0.000 job=1 attempt=1 pending>leased reason=lease worker=sim-w0",
		"t=0.000 job=2 attempt=0 none>pending reason=submit worker=-",
		"t=2.000 job=1 attempt=1 leased>done reason=complete worker=sim-w0",
		"t=2.000 job=2 attempt=1 pending>leased reason=lease worker=sim-w0",
		"t=3.000 job=2 attempt=1 leased>pending reason=transient_error worker=sim-w0",
		"t=4.000 job=2 attempt=2 pending>leased reason=lease worker=sim-w0",
		"t=5.000 job=2 attempt=2 leased>done reason=complete worker=sim-w0",
		"",
	}, "\n")
	if got := s.Q.TransitionLog(); got != want {
		t.Errorf("golden log mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestSimCrashedWorkerLeaseExpiryRecovery(t *testing.T) {
	// Worker sim-w0 dies (SIGKILL analogue) holding job 1's lease: no
	// failure report ever arrives. The lease times out, the job
	// requeues, and the surviving worker finishes it.
	opt := simOptions()
	opt.LeaseTTL = 5 * time.Second
	model := func(j Job) (float64, Outcome, Result) {
		if j.ID == 1 && j.Attempt == 1 {
			return 0, OutcomeCrash, Result{}
		}
		return 1, OutcomeDone, Result{}
	}
	s := NewSim(SimConfig{Workers: 2, Queue: opt, Model: model})
	for i := 0; i < 4; i++ {
		s.SubmitAt(0, JobSpec{Kind: KindNoop}, nil)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Q.Stats()
	if st.Done != 4 || st.LeaseExpiries != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	j, err := s.Q.Job(1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Completions != 1 || j.Attempt != 2 || j.Result.Worker != "sim-w1" {
		t.Errorf("recovered job = %+v result=%+v", j, j.Result)
	}
	if log := s.Q.TransitionLog(); !strings.Contains(log, "reason=lease_expired worker=sim-w0") {
		t.Errorf("transition log missing expiry line:\n%s", log)
	}
}

func TestSimTerminalFailureNoRetry(t *testing.T) {
	model := func(j Job) (float64, Outcome, Result) {
		if j.ID == 1 {
			return 1, OutcomeTerminal, Result{}
		}
		return 1, OutcomeDone, Result{}
	}
	s := NewSim(SimConfig{Workers: 1, Queue: simOptions(), Model: model})
	s.SubmitAt(0, JobSpec{Kind: KindNoop}, nil)
	s.SubmitAt(0, JobSpec{Kind: KindNoop}, nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Q.Stats()
	if st.Failed != 1 || st.Done != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
	j, _ := s.Q.Job(1)
	if j.Attempt != 1 {
		t.Errorf("terminal job was re-leased: %+v", j)
	}
}

func TestSimChainedSubmission(t *testing.T) {
	// Dependent passes chain through completion callbacks: each "upload"
	// submits its "vod" job on completion — the shape internal/service
	// uses for upload → VOD → popular.
	var chained []int
	s := NewSim(SimConfig{Workers: 2, Queue: simOptions()})
	for i := 0; i < 3; i++ {
		s.SubmitAt(time.Duration(i)*time.Second, JobSpec{Kind: KindNoop, Tag: "upload"},
			func(s *Sim, j Job) {
				s.SubmitNow(JobSpec{Kind: KindNoop, Tag: "vod"}, func(_ *Sim, vj Job) {
					chained = append(chained, vj.ID)
				})
			})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Q.Stats()
	if st.Submitted != 6 || st.Done != 6 {
		t.Errorf("stats = %+v", st)
	}
	if len(chained) != 3 {
		t.Errorf("vod completions = %v, want 3", chained)
	}
}

func TestSimUtilizationAccounting(t *testing.T) {
	// One worker, back-to-back unit jobs: busy time equals makespan
	// minus nothing, waits accumulate as jobs queue behind each other.
	model := func(j Job) (float64, Outcome, Result) { return 1, OutcomeDone, Result{} }
	opt := simOptions()
	s := NewSim(SimConfig{Workers: 1, Queue: opt, Model: model})
	for i := 0; i < 3; i++ {
		s.SubmitAt(0, JobSpec{Kind: KindNoop}, nil)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.BusySeconds(); got != 3 {
		t.Errorf("busy = %v, want 3", got)
	}
	// Jobs 2 and 3 wait 1s and 2s behind job 1.
	if got := s.TotalWaitSeconds(); got != 3 {
		t.Errorf("total wait = %v, want 3", got)
	}
	if got := s.MaxWaitSeconds(); got != 2 {
		t.Errorf("max wait = %v, want 2", got)
	}
}
