package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a file and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, fd.Body
		}
	}
	t.Fatalf("no function in source")
	return nil, nil
}

// nodeOnLine reports whether any node of b sits on the given line.
func blockOnLine(fset *token.FileSet, b *Block, line int) bool {
	for _, n := range b.Nodes {
		if fset.Position(n.Pos()).Line == line {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	_, body := parseBody(t, `package p
func f() {
	a()
	b()
}`)
	c := BuildCFG(body)
	if len(c.Entry.Nodes) != 2 {
		t.Fatalf("entry has %d nodes, want 2", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should flow straight to exit")
	}
}

func TestCFGIfJoins(t *testing.T) {
	fset, body := parseBody(t, `package p
func f(x bool) {
	if x {
		a()
	} else {
		b()
	}
	c()
}`)
	c := BuildCFG(body)
	reach := c.Reachable()
	var thenB, elseB, join *Block
	for b := range reach {
		switch {
		case blockOnLine(fset, b, 4):
			thenB = b
		case blockOnLine(fset, b, 6):
			elseB = b
		case blockOnLine(fset, b, 8):
			join = b
		}
	}
	if thenB == nil || elseB == nil || join == nil {
		t.Fatalf("missing blocks: then=%v else=%v join=%v", thenB, elseB, join)
	}
	for _, b := range []*Block{thenB, elseB} {
		found := false
		for _, s := range b.Succs {
			if s == join {
				found = true
			}
		}
		if !found {
			t.Errorf("branch block %d does not reach the join", b.Index)
		}
	}
}

func TestCFGReturnUnreachable(t *testing.T) {
	fset, body := parseBody(t, `package p
func f() {
	return
	a()
}`)
	c := BuildCFG(body)
	reach := c.Reachable()
	for b := range reach {
		if blockOnLine(fset, b, 4) {
			t.Fatalf("statement after return should be unreachable")
		}
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	fset, body := parseBody(t, `package p
func f() {
	for i := 0; i < 10; i++ {
		a()
	}
	b()
}`)
	c := BuildCFG(body)
	// The body block must reach itself through the post/head chain.
	var bodyBlk *Block
	for _, b := range c.Blocks {
		if blockOnLine(fset, b, 4) {
			bodyBlk = b
		}
	}
	if bodyBlk == nil {
		t.Fatalf("loop body block not found")
	}
	seen := map[*Block]bool{}
	stack := append([]*Block{}, bodyBlk.Succs...)
	cyclic := false
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == bodyBlk {
			cyclic = true
			break
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	if !cyclic {
		t.Fatalf("loop body does not loop back to itself")
	}
}

func TestCFGInfiniteLoopSkipsExit(t *testing.T) {
	fset, body := parseBody(t, `package p
func f() {
	for {
		a()
	}
	b()
}`)
	c := BuildCFG(body)
	reach := c.Reachable()
	for b := range reach {
		if blockOnLine(fset, b, 6) {
			t.Fatalf("statement after for{} should be unreachable")
		}
	}
}

func TestCFGBreakReachesLoopExit(t *testing.T) {
	fset, body := parseBody(t, `package p
func f(x bool) {
	for {
		if x {
			break
		}
	}
	b()
}`)
	c := BuildCFG(body)
	reach := c.Reachable()
	found := false
	for b := range reach {
		if blockOnLine(fset, b, 8) {
			found = true
		}
	}
	if !found {
		t.Fatalf("break should make post-loop code reachable")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	fset, body := parseBody(t, `package p
func f(a, b chan int) {
	select {
	case <-a:
		x()
	case v := <-b:
		_ = v
	}
	y()
}`)
	c := BuildCFG(body)
	reach := c.Reachable()
	for _, line := range []int{5, 7, 9} {
		found := false
		for b := range reach {
			if blockOnLine(fset, b, line) {
				found = true
			}
		}
		if !found {
			t.Fatalf("line %d unreachable in select CFG", line)
		}
	}
}

func TestCFGGotoBackward(t *testing.T) {
	fset, body := parseBody(t, `package p
func f(x bool) {
top:
	a()
	if x {
		goto top
	}
	b()
}`)
	c := BuildCFG(body)
	var labelBlk, gotoBlk *Block
	for _, b := range c.Blocks {
		if blockOnLine(fset, b, 4) {
			labelBlk = b
		}
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				gotoBlk = b
			}
		}
	}
	if labelBlk == nil || gotoBlk == nil {
		t.Fatalf("label or goto block missing")
	}
	found := false
	for _, s := range gotoBlk.Succs {
		if s == labelBlk {
			found = true
		}
	}
	if !found {
		t.Fatalf("goto does not target its label block")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	fset, body := parseBody(t, `package p
func f() {
	panic("boom")
	a()
}`)
	c := BuildCFG(body)
	reach := c.Reachable()
	for b := range reach {
		if blockOnLine(fset, b, 4) {
			t.Fatalf("statement after panic should be unreachable")
		}
	}
}

// TestFlowMustVsMay pins the join semantics on a diamond: a fact set
// only on one branch survives a May join and dies at a Must join.
func TestFlowMustVsMay(t *testing.T) {
	fset, body := parseBody(t, `package p
func f(x bool) {
	if x {
		lock()
	}
	after()
}`)
	c := BuildCFG(body)
	transfer := func(n ast.Node, in Set) Set {
		out := in
		WalkNode(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "lock" {
				out = out.Clone()
				out["mu"] = struct{}{}
			}
			return true
		})
		return out
	}
	for _, tc := range []struct {
		mode JoinMode
		want bool
	}{{May, true}, {Must, false}} {
		flow := &Flow{Join: tc.mode, Transfer: transfer}
		in := flow.Run(c)
		var atAfter Set
		flow.Replay(c, in, func(n ast.Node, state Set) {
			if fset.Position(n.Pos()).Line == 6 {
				atAfter = state
			}
		})
		if got := atAfter.Has("mu"); got != tc.want {
			t.Errorf("join mode %v: held at after() = %v, want %v", tc.mode, got, tc.want)
		}
	}
}

// TestFlowLoopFixpoint: a fact acquired inside a loop must flow
// around the back edge and stabilize.
func TestFlowLoopFixpoint(t *testing.T) {
	fset, body := parseBody(t, `package p
func f() {
	for i := 0; i < 3; i++ {
		lock()
	}
	after()
}`)
	c := BuildCFG(body)
	transfer := func(n ast.Node, in Set) Set {
		out := in
		WalkNode(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "lock" {
					out = out.Clone()
					out["mu"] = struct{}{}
				}
			}
			return true
		})
		return out
	}
	flow := &Flow{Join: Must, Transfer: transfer}
	in := flow.Run(c)
	var atAfter Set
	flow.Replay(c, in, func(n ast.Node, state Set) {
		if fset.Position(n.Pos()).Line == 6 {
			atAfter = state
		}
	})
	// Zero-iteration path exists, so under Must the lock is not held.
	if atAfter == nil {
		t.Fatalf("after() never observed")
	}
	if atAfter.Has("mu") {
		t.Errorf("must-analysis claims lock held after a maybe-zero-trip loop")
	}
}

func TestWalkNodeSkipsFuncLitAndSelectBodies(t *testing.T) {
	_, body := parseBody(t, `package p
func f(ch chan int) {
	go func() { inner() }()
	select {
	case <-ch:
		clause()
	}
}`)
	c := BuildCFG(body)
	var names []string
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			WalkNode(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						names = append(names, id.Name)
					}
				}
				return true
			})
		}
	}
	joined := strings.Join(names, ",")
	if strings.Contains(joined, "inner") {
		t.Errorf("WalkNode descended into a function literal: %v", names)
	}
	if !strings.Contains(joined, "clause") {
		t.Errorf("select clause body not owned by its clause block: %v", names)
	}
}
