package codec

import (
	"vbench/internal/codec/bitstream"
)

// Context sets of the macroblock-layer syntax. Each set owns a small
// bank of adaptive contexts in the arithmetic backend; the Golomb
// backend ignores them. The layout is part of the bitstream
// definition: encoder and decoder must index identically.
const (
	ctxSkip = iota
	ctxIntraFlag
	ctxLumaMode
	ctxLumaMode4
	ctxChromaMode
	ctxRefIdx
	ctxMVD
	ctxTx8
	ctxQPDelta
	ctxCBPLuma
	ctxCBPChroma
	ctxBlkFlag
	ctxRun
	ctxRunMid
	ctxRunTail
	ctxLevel
	ctxLevelMid
	ctxLevelTail
	ctxLast
	numCtxSets
)

// ctxBankSize is the number of adaptive contexts per set; unary
// prefixes use successive contexts and share the final one.
const ctxBankSize = 6

// maxUnaryPrefix caps the context-coded unary prefix before switching
// to bypass Exp-Golomb, as in CABAC's UEGk binarization.
const maxUnaryPrefix = 10

// seMap folds a signed value into the unsigned Exp-Golomb index:
// 0→0, 1→1, −1→2, 2→3, …
func seMap(v int32) uint32 {
	if v > 0 {
		return uint32(v)*2 - 1
	}
	return uint32(-v) * 2
}

// seUnmap inverts seMap.
func seUnmap(u uint32) int32 {
	if u%2 == 1 {
		return int32(u/2 + 1)
	}
	return -int32(u / 2)
}

// symWriter is the symbol-level serialization interface the macroblock
// layer writes through. Two implementations exist: golombWriter
// (plain variable-length codes) and arithWriter (adaptive binary
// arithmetic coding). Bins counts coded binary decisions for the
// entropy-kernel work accounting.
type symWriter interface {
	Bit(set int, bit int)
	Bypass(bit int)
	UE(set int, v uint32)
	SE(set int, v int32)
	BitLen() int
	Bins() int64
	Flush() []byte
}

// symReader mirrors symWriter on the decode side.
type symReader interface {
	Bit(set int) (int, error)
	Bypass() (int, error)
	UE(set int) (uint32, error)
	SE(set int) (int32, error)
	Bins() int64
}

// golombWriter implements symWriter over a plain bit writer.
type golombWriter struct {
	w    *bitstream.BitWriter
	bins int64
}

func newGolombWriter() *golombWriter {
	return &golombWriter{w: bitstream.NewBitWriter()}
}

func (g *golombWriter) Bit(_ int, bit int) {
	g.w.WriteBit(bit)
	g.bins++
}

func (g *golombWriter) Bypass(bit int) {
	g.w.WriteBit(bit)
	g.bins++
}

func (g *golombWriter) UE(_ int, v uint32) {
	g.w.WriteUE(v)
	g.bins += int64(bitstream.UEBits(v))
}

func (g *golombWriter) SE(_ int, v int32) {
	g.w.WriteSE(v)
	g.bins += int64(bitstream.SEBits(v))
}

func (g *golombWriter) BitLen() int   { return g.w.BitLen() }
func (g *golombWriter) Bins() int64   { return g.bins }
func (g *golombWriter) Flush() []byte { return g.w.Bytes() }

// golombReader implements symReader over a plain bit reader.
type golombReader struct {
	r    *bitstream.BitReader
	bins int64
}

func newGolombReader(data []byte) *golombReader {
	return &golombReader{r: bitstream.NewBitReader(data)}
}

func (g *golombReader) Bit(_ int) (int, error) {
	g.bins++
	return g.r.ReadBit()
}

func (g *golombReader) Bypass() (int, error) {
	g.bins++
	return g.r.ReadBit()
}

func (g *golombReader) UE(_ int) (uint32, error) {
	v, err := g.r.ReadUE()
	if err == nil {
		g.bins += int64(bitstream.UEBits(v))
	}
	return v, err
}

func (g *golombReader) SE(_ int) (int32, error) {
	v, err := g.r.ReadSE()
	if err == nil {
		g.bins += int64(bitstream.SEBits(v))
	}
	return v, err
}

func (g *golombReader) Bins() int64 { return g.bins }

// arithWriter implements symWriter over the adaptive arithmetic coder.
type arithWriter struct {
	e    *bitstream.ArithEncoder
	ctx  [numCtxSets][ctxBankSize]bitstream.Context
	bins int64
}

func newArithWriter() *arithWriter {
	w := &arithWriter{e: bitstream.NewArithEncoder()}
	for i := range w.ctx {
		bitstream.InitContexts(w.ctx[i][:])
	}
	return w
}

func (a *arithWriter) Bit(set int, bit int) {
	a.e.EncodeCtx(bit, &a.ctx[set][0])
	a.bins++
}

func (a *arithWriter) Bypass(bit int) {
	a.e.EncodeBypass(bit)
	a.bins++
}

func (a *arithWriter) UE(set int, v uint32) {
	a.e.EncodeUnaryGolomb(v, a.ctx[set][:], maxUnaryPrefix, 1)
	a.bins += int64(bitstream.UEBits(v)) // bin-count proxy
}

func (a *arithWriter) SE(set int, v int32) { a.UE(set, seMap(v)) }

func (a *arithWriter) BitLen() int   { return a.e.BitsEstimate() }
func (a *arithWriter) Bins() int64   { return a.bins }
func (a *arithWriter) Flush() []byte { return a.e.Bytes() }

// arithReader implements symReader over the adaptive arithmetic coder.
type arithReader struct {
	d    *bitstream.ArithDecoder
	ctx  [numCtxSets][ctxBankSize]bitstream.Context
	bins int64
}

func newArithReader(data []byte) *arithReader {
	r := &arithReader{d: bitstream.NewArithDecoder(data)}
	for i := range r.ctx {
		bitstream.InitContexts(r.ctx[i][:])
	}
	return r
}

func (a *arithReader) Bit(set int) (int, error) {
	a.bins++
	return a.d.DecodeCtx(&a.ctx[set][0]), nil
}

func (a *arithReader) Bypass() (int, error) {
	a.bins++
	return a.d.DecodeBypass(), nil
}

func (a *arithReader) UE(set int) (uint32, error) {
	v := a.d.DecodeUnaryGolomb(a.ctx[set][:], maxUnaryPrefix, 1)
	a.bins += int64(bitstream.UEBits(v))
	return v, nil
}

func (a *arithReader) SE(set int) (int32, error) {
	u, err := a.UE(set)
	return seUnmap(u), err
}

func (a *arithReader) Bins() int64 { return a.bins }

// runCtxSet and levelCtxSet select position-adaptive context sets for
// residual coding. With RichContexts the choice depends on the zigzag
// position (HEVC-style); otherwise a single set is shared.
func runCtxSet(rich bool, pos int) int {
	if !rich {
		return ctxRun
	}
	switch {
	case pos == 0:
		return ctxRun
	case pos < 4:
		return ctxRunMid
	default:
		return ctxRunTail
	}
}

func levelCtxSet(rich bool, pos int) int {
	if !rich {
		return ctxLevel
	}
	switch {
	case pos == 0:
		return ctxLevel
	case pos < 4:
		return ctxLevelMid
	default:
		return ctxLevelTail
	}
}
