package harness

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"vbench/internal/codec"
	"vbench/internal/codec/hw"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/metrics"
	"vbench/internal/perf"
	"vbench/internal/refdata"
	"vbench/internal/scoring"
	"vbench/internal/stats"
	"vbench/internal/tables"
	"vbench/internal/uarch"
)

// ScenarioRow is one clip's outcome for a set of candidate encoders.
type ScenarioRow struct {
	Clip   corpus.Clip
	Scores map[string]scoring.Score
}

// Table2 regenerates the benchmark composition table: the 15 clips
// with their measured entropy next to the paper's published values.
func (r *Runner) Table2() (*tables.Table, error) {
	clips := corpus.VBenchClips()
	entropies := make([]float64, len(clips))
	err := r.pool().ForEach(len(clips), func(i int) error {
		e, err := r.ClipEntropy(clips[i])
		entropies[i] = e
		return err
	})
	if err != nil {
		return nil, err
	}
	t := tables.New("Table 2: vbench videos (synthetic reproduction)",
		"clip", "resolution", "fps", "entropy(paper)", "entropy(measured)")
	for i, c := range clips {
		t.AddRowf(c.Name, fmt.Sprintf("%dx%d", c.Width, c.Height), c.FrameRate, c.PaperEntropy, entropies[i])
	}
	t.AddNote("measured at 1/%d scale, %.1fs clips, QP %d constant quality", r.Scale, r.Duration, corpus.EntropyQP)
	return t, nil
}

// scoreGrid evaluates a clip × encoder grid of quality-constrained
// cells on the Runner's worker pool and returns the scores indexed
// [clip][encoder]. Results are assembled in grid order regardless of
// which worker finished first, so callers render identical tables at
// any worker count.
func (r *Runner) scoreGrid(label string, s scoring.Scenario, clips []corpus.Clip, encs []string,
	eng func(name string) *codec.Engine, rc codec.RCMode) ([][]scoring.Score, error) {
	scores := make([][]scoring.Score, len(clips))
	for i := range scores {
		scores[i] = make([]scoring.Score, len(encs))
	}
	err := r.pool().ForEach(len(clips)*len(encs), func(i int) error {
		ci, ei := i/len(encs), i%len(encs)
		score, _, err := r.EvaluateQualityConstrained(s, clips[ci], eng(encs[ei]), rc)
		if err != nil {
			return fmt.Errorf("%s %s/%s: %w", label, clips[ci].Name, encs[ei], err)
		}
		scores[ci][ei] = score
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// Table3 reproduces the VOD study: NVENC and QSV quality-constrained
// against the two-pass software reference, reporting S, B, and the
// VOD score per clip, alongside the paper's numbers.
func (r *Runner) Table3() (*tables.Table, []ScenarioRow, error) {
	paper := make(map[string]refdata.VODRow)
	for _, row := range refdata.Table3() {
		paper[row.Clip] = row
	}
	clips := corpus.VBenchClips()
	encs := []string{"NVENC", "QSV"}
	scores, err := r.scoreGrid("table3", scoring.VOD, clips, encs,
		func(name string) *codec.Engine { return hw.Encoders()[name] }, codec.RCBitrate)
	if err != nil {
		return nil, nil, err
	}
	t := tables.New("Table 3: VOD scenario, hardware encoders",
		"clip", "enc", "S", "B", "VOD score", "S(paper)", "B(paper)", "score(paper)")
	var rows []ScenarioRow
	for ci, c := range clips {
		row := ScenarioRow{Clip: c, Scores: map[string]scoring.Score{}}
		for ei, name := range encs {
			score := scores[ci][ei]
			row.Scores[name] = score
			p := paper[c.Name]
			ps, pb, psc := p.NVENCS, p.NVENCB, p.NVENCScore
			if name == "QSV" {
				ps, pb, psc = p.QSVS, p.QSVB, p.QSVScore
			}
			t.AddRowf(c.Name, name, score.Ratios.S, score.Ratios.B, scoreCell(score), ps, pb, psc)
		}
		rows = append(rows, row)
	}
	return t, rows, nil
}

// Table4 reproduces the Live study: hardware encoders holding
// reference quality under the real-time constraint, reporting Q, B,
// and the Live score.
func (r *Runner) Table4() (*tables.Table, []ScenarioRow, error) {
	paper := make(map[string]refdata.LiveRow)
	for _, row := range refdata.Table4() {
		paper[row.Clip] = row
	}
	clips := corpus.VBenchClips()
	encs := []string{"NVENC", "QSV"}
	scores, err := r.scoreGrid("table4", scoring.Live, clips, encs,
		func(name string) *codec.Engine { return hw.Encoders()[name] }, codec.RCBitrate)
	if err != nil {
		return nil, nil, err
	}
	t := tables.New("Table 4: Live scenario, hardware encoders",
		"clip", "enc", "Q", "B", "Live score", "Q(paper)", "B(paper)", "score(paper)")
	var rows []ScenarioRow
	for ci, c := range clips {
		row := ScenarioRow{Clip: c, Scores: map[string]scoring.Score{}}
		for ei, name := range encs {
			score := scores[ci][ei]
			row.Scores[name] = score
			p := paper[c.Name]
			pq, pb, psc := p.NVENCQ, p.NVENCB, p.NVENCScore
			if name == "QSV" {
				pq, pb, psc = p.QSVQ, p.QSVB, p.QSVScore
			}
			t.AddRowf(c.Name, name, score.Ratios.Q, score.Ratios.B, scoreCell(score), pq, pb, psc)
		}
		rows = append(rows, row)
	}
	return t, rows, nil
}

// Table5 reproduces the Popular study: the newer software encoders at
// maximum effort against the high-effort x264 reference, scored
// B × Q under the B,Q ≥ 1 constraint.
func (r *Runner) Table5() (*tables.Table, []ScenarioRow, error) {
	paper := make(map[string]refdata.PopularRow)
	for _, row := range refdata.Table5() {
		paper[row.Clip] = row
	}
	clips := corpus.VBenchClips()
	encs := []string{"libvpx-vp9", "libx265"}
	mkEng := func(name string) *codec.Engine {
		if name == "libx265" {
			return profiles.X265(codec.PresetVerySlow)
		}
		return profiles.VP9(codec.PresetVerySlow)
	}
	scores, err := r.scoreGrid("table5", scoring.Popular, clips, encs, mkEng, codec.RCTwoPass)
	if err != nil {
		return nil, nil, err
	}
	t := tables.New("Table 5: Popular scenario, advanced software encoders",
		"clip", "enc", "Q", "B", "Pop score", "Q(paper)", "B(paper)", "score(paper)")
	var rows []ScenarioRow
	for ci, c := range clips {
		row := ScenarioRow{Clip: c, Scores: map[string]scoring.Score{}}
		for ei, name := range encs {
			score := scores[ci][ei]
			row.Scores[name] = score
			p := paper[c.Name]
			pq, pb, psc := p.VP9Q, p.VP9B, p.VP9Score
			if name == "libx265" {
				pq, pb, psc = p.X265Q, p.X265B, p.X265Score
			}
			t.AddRowf(c.Name, name, score.Ratios.Q, score.Ratios.B, scoreCell(score), pq, pb, scoreOrDash(psc))
		}
		rows = append(rows, row)
	}
	t.AddNote("empty score = scenario constraint not met (paper prints an empty red cell)")
	return t, rows, nil
}

func scoreCell(s scoring.Score) string {
	if !s.Valid {
		return "-"
	}
	return tables.FormatFloat(s.Value)
}

func scoreOrDash(v float64) string {
	if v == 0 {
		return "-"
	}
	return tables.FormatFloat(v)
}

// Figure1 renders the motivation figure: upload demand growth versus
// CPU performance growth, 2006–2016.
func Figure1() *tables.Table {
	t := tables.New("Figure 1: YouTube upload growth vs SPECint growth (normalized to 2007)",
		"year", "uploads(x)", "SPECint(x)", "gap(x)")
	for _, p := range refdata.Figure1() {
		t.AddRowf(p.Year, p.UploadGrowth, p.SPECIntGrowth, p.UploadGrowth/p.SPECIntGrowth)
	}
	t.AddNote("demand outgrew compute by >10x over the decade, the paper's motivation")
	return t
}

// RDPoint is one operating point of the Figure 2 sweep.
type RDPoint struct {
	Encoder    string
	BitratePPS float64
	PSNR       float64
	SpeedMPS   float64
}

// Figure2 reproduces the rate-distortion + speed sweep on one HD
// clip: PSNR and speed as functions of bitrate for the three software
// encoder families.
func (r *Runner) Figure2(clipName string, bitratesPPS []float64) (*tables.Table, []RDPoint, error) {
	clip, err := corpus.ClipByName(clipName)
	if err != nil {
		return nil, nil, err
	}
	seq, err := r.Sequence(clip)
	if err != nil {
		return nil, nil, err
	}
	if len(bitratesPPS) == 0 {
		bitratesPPS = []float64{0.1, 0.25, 0.5, 1, 2, 4, 8}
	}
	encs := []struct {
		name string
		eng  *codec.Engine
	}{
		{"libx264", profiles.X264(codec.PresetMedium)},
		{"libx265", profiles.X265(codec.PresetMedium)},
		{"libvpx-vp9", profiles.VP9(codec.PresetMedium)},
	}
	t := tables.New(fmt.Sprintf("Figure 2: quality and speed vs bitrate (%s)", clipName),
		"encoder", "bitrate(bit/pix/s)", "PSNR(dB)", "speed(Mpix/s)")
	pixPerSec := float64(seq.Width() * seq.Height())
	grid := make([]RDPoint, len(encs)*len(bitratesPPS))
	err = r.pool().ForEach(len(grid), func(i int) error {
		e := encs[i/len(bitratesPPS)]
		bpps := bitratesPPS[i%len(bitratesPPS)]
		m, merr := r.Measure(e.eng, seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: bpps * pixPerSec})
		if merr != nil {
			return fmt.Errorf("figure2 %s @%.2f: %w", e.name, bpps, merr)
		}
		grid[i] = RDPoint{Encoder: e.name, BitratePPS: m.BitratePPS, PSNR: m.PSNR, SpeedMPS: m.SpeedMPS}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var points []RDPoint
	curves := map[string][]metrics.RDCurvePoint{}
	for _, p := range grid {
		points = append(points, p)
		curves[p.Encoder] = append(curves[p.Encoder], metrics.RDCurvePoint{Bitrate: p.BitratePPS, PSNR: p.PSNR})
		t.AddRowf(p.Encoder, p.BitratePPS, p.PSNR, p.SpeedMPS)
	}
	t.AddNote("expected shape: vp9 ≥ x265 > x264 on quality per bit; x264 3-4x faster")
	// Condense the curves into Bjøntegaard deltas against libx264.
	for _, name := range []string{"libx265", "libvpx-vp9"} {
		if bd, err := metrics.BDRate(curves["libx264"], curves[name]); err == nil {
			t.AddNote("%s BD-rate vs libx264: %+.1f%% (negative = fewer bits at equal quality)", name, bd)
		}
	}
	return t, points, nil
}

// Figure4 renders the coverage comparison: where each video suite sits
// in (resolution, entropy) space against the corpus coverage set.
func Figure4() (*tables.Table, error) {
	t := tables.New("Figure 4: coverage of (resolution, entropy) space per video suite",
		"suite", "videos", "res range (Kpixel)", "entropy range (bit/pix/s)", "res decades", "entropy decades")
	suites := []corpus.Suite{corpus.SuiteCoverage, corpus.SuiteVBench, corpus.SuiteNetflix,
		corpus.SuiteXiph, corpus.SuiteSPEC17, corpus.SuiteSPEC06}
	for _, s := range suites {
		clips, err := corpus.SuiteClips(s)
		if err != nil {
			return nil, err
		}
		minK, maxK := math.Inf(1), math.Inf(-1)
		minE, maxE := math.Inf(1), math.Inf(-1)
		for _, c := range clips {
			k := float64(c.KPixels())
			minK, maxK = math.Min(minK, k), math.Max(maxK, k)
			minE, maxE = math.Min(minE, c.PaperEntropy), math.Max(maxE, c.PaperEntropy)
		}
		t.AddRowf(string(s), len(clips),
			fmt.Sprintf("%.0f-%.0f", minK, maxK),
			fmt.Sprintf("%.2f-%.1f", minE, maxE),
			math.Log10(maxK/minK), math.Log10(maxE/minE))
	}
	t.AddNote("vbench spans low AND high entropy; Netflix/Xiph cover only entropy ≥ 1 (the bias the paper demonstrates)")
	return t, nil
}

// UArchPoint is one video's µarch characterization alongside its
// entropy — the per-dot data of Figures 5–7.
type UArchPoint struct {
	Suite   corpus.Suite
	Clip    corpus.Clip
	Entropy float64
	Profile *uarch.Profile
}

// stableSeed derives a deterministic RNG seed from an experiment
// cell's identity (FNV-1a over the name). Seeds used to be assigned
// from the accumulation order (uint64(len(out))+1), which made results
// depend on evaluation order and collided with the default Seed: 1
// used by one-off analyses; a name-derived hash is order-independent
// and, being guarded away from {0, 1}, collision-free with it.
func stableSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	s := h.Sum64()
	if s <= 1 {
		s += 2
	}
	return s
}

// UArchStudy encodes every clip of the given suites under the VOD
// reference configuration and runs the µarch analysis. Results are
// cached per Runner via the reference cache. Cells evaluate on the
// Runner's worker pool; each cell's analysis seed is derived from its
// suite/clip name, so the points are identical at any worker count.
func (r *Runner) UArchStudy(suites []corpus.Suite) ([]UArchPoint, error) {
	type cell struct {
		suite corpus.Suite
		clip  corpus.Clip
	}
	var cells []cell
	for _, s := range suites {
		clips, err := corpus.SuiteClips(s)
		if err != nil {
			return nil, err
		}
		for _, c := range clips {
			cells = append(cells, cell{s, c})
		}
	}
	out := make([]UArchPoint, len(cells))
	err := r.pool().ForEach(len(cells), func(i int) error {
		s, c := cells[i].suite, cells[i].clip
		e, err := r.ClipEntropy(c)
		if err != nil {
			return err
		}
		ref, err := r.Reference(scoring.VOD, c)
		if err != nil {
			return err
		}
		tools := codec.BaselineTools(codec.PresetMedium)
		prof, err := uarch.Analyze(&ref.Result.Counters, uarch.Options{
			NativeWidth:  c.Width,
			NativeHeight: c.Height,
			SearchRange:  tools.SearchRange,
			ISA:          perf.ISAAVX2,
			Seed:         stableSeed(string(s) + "/" + c.Name),
		})
		if err != nil {
			return fmt.Errorf("uarch %s/%s: %w", s, c.Name, err)
		}
		out[i] = UArchPoint{Suite: s, Clip: c, Entropy: e, Profile: prof}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure5 renders the cache/branch trends against entropy, with the
// paper's logarithmic fits per suite.
func Figure5(points []UArchPoint) (*tables.Table, error) {
	t := tables.New("Figure 5: microarchitecture events vs entropy",
		"suite", "clip", "entropy", "L1I MPKI", "branch MPKI", "LLC MPKI")
	for _, p := range points {
		t.AddRowf(string(p.Suite), p.Clip.Name, p.Entropy,
			p.Profile.ICacheMPKI, p.Profile.BranchMPKI, p.Profile.LLCMPKI)
	}
	// Per-suite log fits: y = a·log(x) + b.
	bySuite := map[corpus.Suite][]UArchPoint{}
	var suites []corpus.Suite
	for _, p := range points {
		if _, ok := bySuite[p.Suite]; !ok {
			suites = append(suites, p.Suite)
		}
		bySuite[p.Suite] = append(bySuite[p.Suite], p)
	}
	sort.Slice(suites, func(i, j int) bool { return suites[i] < suites[j] })
	for _, s := range suites {
		ps := bySuite[s]
		if len(ps) < 3 {
			continue
		}
		xs := make([]float64, len(ps))
		ic := make([]float64, len(ps))
		br := make([]float64, len(ps))
		llc := make([]float64, len(ps))
		for i, p := range ps {
			xs[i] = p.Entropy
			ic[i] = p.Profile.ICacheMPKI
			br[i] = p.Profile.BranchMPKI
			llc[i] = p.Profile.LLCMPKI
		}
		if a, b, err := stats.LogFit(xs, ic); err == nil {
			t.AddNote("%s L1I fit: a=%+.3f b=%.3f (paper: a>0, misses rise with entropy)", s, a, b)
		}
		if a, b, err := stats.LogFit(xs, br); err == nil {
			t.AddNote("%s branch fit: a=%+.3f b=%.3f (paper: a>0)", s, a, b)
		}
		if a, b, err := stats.LogFit(xs, llc); err == nil {
			t.AddNote("%s LLC fit: a=%+.3f b=%.3f (paper: a<0, misses/KI fall with entropy)", s, a, b)
		}
	}
	return t, nil
}

// Figure6 renders the Top-Down distribution box plots per suite.
func Figure6(points []UArchPoint) (*tables.Table, error) {
	type accum struct {
		fe, bad, mem, core, ret []float64
	}
	bySuite := map[corpus.Suite]*accum{}
	var suites []corpus.Suite
	for _, p := range points {
		a, ok := bySuite[p.Suite]
		if !ok {
			a = &accum{}
			bySuite[p.Suite] = a
			suites = append(suites, p.Suite)
		}
		td := p.Profile.TopDown
		a.fe = append(a.fe, td.FrontEnd)
		a.bad = append(a.bad, td.BadSpec)
		a.mem = append(a.mem, td.BEMemory)
		a.core = append(a.core, td.BECore)
		a.ret = append(a.ret, td.Retiring)
	}
	sort.Slice(suites, func(i, j int) bool { return suites[i] < suites[j] })
	t := tables.New("Figure 6: Top-Down cycle breakdown (median [Q1,Q3] per suite)",
		"suite", "FE", "BAD", "BE/Mem", "BE/Core", "RET")
	cell := func(xs []float64) string {
		bp, err := stats.NewBoxPlot(xs)
		if err != nil {
			return "-"
		}
		return fmt.Sprintf("%.0f%% [%.0f,%.0f]", bp.Median*100, bp.Q1*100, bp.Q3*100)
	}
	for _, s := range suites {
		a := bySuite[s]
		t.AddRow(string(s), cell(a.fe), cell(a.bad), cell(a.mem), cell(a.core), cell(a.ret))
	}
	t.AddNote("paper: ~15%% FE, ~10%% BAD, ~15%% BE/Mem, ~60%% retiring or core-bound")
	return t, nil
}

// Figure7 renders the scalar and AVX2 cycle fractions against entropy.
func Figure7(points []UArchPoint) (*tables.Table, error) {
	t := tables.New("Figure 7: scalar and AVX2 cycle fractions vs entropy",
		"suite", "clip", "entropy", "scalar %", "avx2 %")
	for _, p := range points {
		t.AddRowf(string(p.Suite), p.Clip.Name, p.Entropy,
			p.Profile.ScalarFraction*100, p.Profile.AVX2Fraction*100)
	}
	t.AddNote("paper: scalar ≈ 60%% regardless of entropy; AVX2 ≤ 20%%")
	return t, nil
}

// ISALadderRow is one build of the Figure 8 ladder.
type ISALadderRow struct {
	ISA perf.ISA
	// Seconds per SIMD class, normalized to the AVX2 build total.
	ClassShare [perf.NumISA]float64
	// Total normalized runtime.
	Total float64
}

// Figure8 reproduces the SIMD ISA ladder: the same encode timed with
// progressively newer SIMD extensions enabled, broken down by the ISA
// class the cycles retire in, normalized to the AVX2 build.
func (r *Runner) Figure8(clipName string) (*tables.Table, []ISALadderRow, error) {
	clip, err := corpus.ClipByName(clipName)
	if err != nil {
		return nil, nil, err
	}
	ref, err := r.Reference(scoring.VOD, clip)
	if err != nil {
		return nil, nil, err
	}
	c := &ref.Result.Counters
	avx2Total := uarch.TotalSeconds(c, perf.ISAAVX2, 4e9)
	t := tables.New(fmt.Sprintf("Figure 8: cycles by SIMD class per ISA build (%s, normalized to AVX2)", clipName),
		"build", "scalar", "sse", "sse2", "sse3", "sse4", "avx", "avx2", "total")
	var rows []ISALadderRow
	for isa := perf.ISAScalar; isa < perf.NumISA; isa++ {
		cs := uarch.ClassSeconds(c, isa, 4e9)
		row := ISALadderRow{ISA: isa}
		cells := []interface{}{isa.String()}
		for cl := perf.ISA(0); cl < perf.NumISA; cl++ {
			row.ClassShare[cl] = cs[cl] / avx2Total
			row.Total += row.ClassShare[cl]
			cells = append(cells, row.ClassShare[cl])
		}
		cells = append(cells, row.Total)
		t.AddRowf(cells...)
		rows = append(rows, row)
	}
	t.AddNote("paper: scalar time constant across builds; SSE2 captures most of the gain; AVX2 ≈ 15%% of runtime")
	return t, rows, nil
}

// Figure9 summarizes the GPU scatter of Figure 9 from the Table 3/4
// rows: (S, B) pairs on VOD and (Q, B) pairs on Live.
func Figure9(vod, live []ScenarioRow) *tables.Table {
	t := tables.New("Figure 9: GPU results under the VOD and Live scoring scenarios",
		"clip", "enc", "VOD S", "VOD B", "Live Q", "Live B")
	for i := range vod {
		for _, enc := range []string{"NVENC", "QSV"} {
			v := vod[i].Scores[enc]
			var l scoring.Score
			if i < len(live) {
				l = live[i].Scores[enc]
			}
			t.AddRowf(vod[i].Clip.Name, enc, v.Ratios.S, v.Ratios.B, l.Ratios.Q, l.Ratios.B)
		}
	}
	t.AddNote("shaded-region reading: VOD trades S>1 against B<1; Live achieves B≥1 at Q≈1 except low-entropy clips")
	return t
}
