package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vbench/internal/telemetry"
)

// Wire types of the master's JSON API (all under /api/v1/). The
// protocol is pull-based: workers ask for work, the master never
// dials out — the shape that survives NATs, worker churn, and
// restarts at large job counts.

// SubmitRequest enqueues a batch of jobs.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResponse returns the assigned IDs, in request order.
type SubmitResponse struct {
	IDs []int `json:"ids"`
}

// LeaseRequest asks for one job on behalf of a worker.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries the leased job, or a nil Job when nothing is
// ready. LeaseTTLMS tells the worker how often it must heartbeat.
type LeaseResponse struct {
	Job        *Job  `json:"job,omitempty"`
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// AckRequest reports on a leased attempt: heartbeat, completion, or
// failure (with its transient/terminal classification). Push, when
// present, piggybacks the worker's cumulative metric snapshot — the
// master absorbs the delta since the worker's previous push, so
// worker encode histograms appear in master-side snapshots without a
// scrape path.
type AckRequest struct {
	Worker   string            `json:"worker"`
	JobID    int               `json:"job_id"`
	Attempt  int               `json:"attempt"`
	Result   *Result           `json:"result,omitempty"`
	Terminal bool              `json:"terminal,omitempty"`
	Error    string            `json:"error,omitempty"`
	Push     *telemetry.Export `json:"push,omitempty"`
	// PushSeq orders pushes from one worker; the master drops
	// out-of-order arrivals (cumulative snapshots must be absorbed in
	// the order they were taken).
	PushSeq int64 `json:"push_seq,omitempty"`
}

// AckResponse reports whether the ack was applied (completions) or
// the lease is still current (heartbeats).
type AckResponse struct {
	Applied bool `json:"applied,omitempty"`
	OK      bool `json:"ok"`
}

// JobsResponse lists every job.
type JobsResponse struct {
	Jobs []Job `json:"jobs"`
}

// TimelineResponse carries one job's event ring.
type TimelineResponse struct {
	Job     int             `json:"job"`
	Dropped int             `json:"dropped,omitempty"`
	Events  []TimelineEvent `json:"events"`
}

// Server exposes a Queue over HTTP.
type Server struct {
	q *Queue

	// Tracing state; leaseSpans is only touched by observeTransition,
	// which the queue serializes under its lock.
	tracer     *telemetry.Tracer
	leaseSpans map[int]*telemetry.Span

	// Metric-push state: the last cumulative export per worker (the
	// baseline for delta absorption) and its sequence number.
	pushMu   sync.Mutex
	lastPush map[string]telemetry.Export
	lastSeq  map[string]int64

	mTraceAcks, mMetricPushes *telemetry.Counter
}

// NewServer wraps q.
func NewServer(q *Queue) *Server {
	return &Server{
		q:             q,
		leaseSpans:    map[int]*telemetry.Span{},
		lastPush:      map[string]telemetry.Export{},
		lastSeq:       map[string]int64{},
		mTraceAcks:    q.Metrics().Counter("fleet.trace_acks"),
		mMetricPushes: q.Metrics().Counter("fleet.metric_pushes"),
	}
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/lease", s.handleLease)
	mux.HandleFunc("POST /api/v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/complete", s.handleComplete)
	mux.HandleFunc("POST /api/v1/fail", s.handleFail)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/v1/timeline", s.handleTimeline)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetricsText)
	return mux
}

// Sweep expires lapsed leases every interval until ctx is done; the
// master runs it so leases of crashed workers requeue even while no
// surviving worker is polling.
func (s *Server) Sweep(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.q.ExpireLeases()
		}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	ids := make([]int, 0, len(req.Jobs))
	for _, spec := range req.Jobs {
		id, err := s.q.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ids = append(ids, id)
	}
	writeJSON(w, SubmitResponse{IDs: ids})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: lease needs a worker id"))
		return
	}
	resp := LeaseResponse{LeaseTTLMS: s.q.LeaseTTL().Milliseconds()}
	if j, ok := s.q.Lease(req.Worker); ok {
		resp.Job = &j
		// Trace context rides on response headers: the worker parents
		// its execution span under the master's lease span and echoes
		// both IDs on every heartbeat and ack.
		w.Header().Set(HeaderTraceID, JobTraceID(j.ID))
		w.Header().Set(HeaderSpanID, LeaseSpanID(j.ID, j.Attempt))
	}
	writeJSON(w, resp)
}

// observeAck records the observability side channels every ack-shaped
// request can carry: an echoed trace context and a piggybacked metric
// push. Pushes are cumulative and sequenced by the sender; one that
// arrives out of order (a worker runs concurrent jobs, so pushes can
// race) is dropped rather than absorbed — the next in-order push
// carries its events anyway.
func (s *Server) observeAck(r *http.Request, req *AckRequest) {
	if r.Header.Get(HeaderSpanID) != "" {
		s.mTraceAcks.Inc()
	}
	if req.Push == nil || req.Worker == "" {
		return
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	if last, ok := s.lastSeq[req.Worker]; ok && req.PushSeq <= last {
		return
	}
	prev := s.lastPush[req.Worker]
	s.lastPush[req.Worker] = *req.Push
	s.lastSeq[req.Worker] = req.PushSeq
	s.q.Metrics().Absorb(*req.Push, prev)
	s.mMetricPushes.Inc()
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req AckRequest
	if !decode(w, r, &req) {
		return
	}
	s.observeAck(r, &req)
	// A failed heartbeat is a protocol answer ("your lease lapsed"),
	// not a transport error: the worker must abandon the attempt.
	err := s.q.Heartbeat(req.JobID, req.Attempt, req.Worker)
	writeJSON(w, AckResponse{OK: err == nil})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req AckRequest
	if !decode(w, r, &req) {
		return
	}
	s.observeAck(r, &req)
	var res Result
	if req.Result != nil {
		res = *req.Result
	}
	applied, err := s.q.Complete(req.JobID, req.Attempt, req.Worker, res)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, AckResponse{Applied: applied, OK: true})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req AckRequest
	if !decode(w, r, &req) {
		return
	}
	s.observeAck(r, &req)
	if err := s.q.Fail(req.JobID, req.Attempt, req.Worker, req.Terminal, req.Error); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, AckResponse{OK: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.q.Stats())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, JobsResponse{Jobs: s.q.Jobs()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Serialization errors at this point mean the client went away;
	// there is nothing useful left to do with them.
	_ = s.q.Metrics().WriteJSON(w)
}

func (s *Server) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.q.Metrics().WriteText(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.q.Status()
	// Per-worker wavefront utilization comes from the last metric push
	// (server-side state the queue never sees): the mean of the
	// worker.wave_occupancy histogram.
	s.pushMu.Lock()
	for i := range st.Workers {
		if he, ok := s.lastPush[st.Workers[i].ID].Histograms[metricWaveOccupancy]; ok {
			var n int64
			for _, c := range he.Counts {
				n += c
			}
			if n > 0 {
				st.Workers[i].WaveOccupancy = he.Sum / float64(n)
			}
		}
	}
	s.pushMu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: timeline needs ?id=<job>: %w", err))
		return
	}
	events, dropped, err := s.q.Timeline(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, TimelineResponse{Job: id, Dropped: dropped, Events: events})
}

// decode parses the JSON request body, answering 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	// Encoding errors mean the client disconnected mid-response; the
	// server has no channel left to report them on.
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
