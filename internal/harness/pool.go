package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vbench/internal/syncx"
	"vbench/internal/telemetry"
)

// WorkerStats is one pool worker's accounting across every grid the
// pool has executed: how many cells it ran and how long it was busy.
// The counters make parallel speedup measurable (see bench_test.go's
// harness-grid benchmark) without relying on wall clocks inside the
// deterministic scoring path.
type WorkerStats struct {
	// Worker is the worker's index in [0, Workers).
	Worker int
	// Jobs is the number of grid cells the worker completed.
	Jobs int
	// Busy is the cumulative time the worker spent inside cells while
	// holding a CPU-gate execution slot; time queued at the gate is
	// excluded, so summed busy time stays an honest utilization
	// measure bounded by wall time times the core count.
	Busy time.Duration
}

// workerSlot is one worker's private counters. Each slot is padded out
// to its own cache line so workers recording cell completions never
// contend on a shared lock or false-share a line: a cell completion
// costs two uncontended atomic adds.
type workerSlot struct {
	jobs      atomic.Int64
	busyNanos atomic.Int64
	_         [48]byte // pad to 64 bytes; jobs+busyNanos are 16
}

// Pool fans independent benchmark cells out across a bounded set of
// workers. Results are always aggregated by cell index, so a parallel
// run's output is byte-identical to a serial run's: the pool controls
// only *when* a cell executes, never the order results are assembled
// or which error is reported (the lowest-index failure wins, exactly
// as a serial loop would fail first).
//
// Workers draw execution slots from the process-wide CPU gate
// (syncx.CPU) — the same gate the codec's slice encoders use — so
// worker count bounds only queueing fan-out, not CPU oversubscription:
// requesting more workers than cores leaves the extras waiting at the
// gate instead of forcing the scheduler to interleave them. Busy time
// is recorded while a slot is held, which keeps Σbusy/wall an honest
// utilization measure (≈1 on a single-core host regardless of worker
// count, ≈workers when cores back them).
type Pool struct {
	workers int
	slots   []workerSlot

	// BindWorker, when set, is invoked on a worker's goroutine as it
	// starts draining cells and must return the matching teardown. The
	// Runner uses it to label each worker's progress-log lines (see
	// telemetry.LineWriter); set it before the first ForEach call.
	BindWorker func(worker int) (unbind func())
}

// NewPool returns a pool with the given number of workers;
// non-positive means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, slots: make([]workerSlot, workers)}
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Stats returns a copy of the per-worker counters accumulated so far.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.slots))
	for w := range p.slots {
		out[w] = WorkerStats{
			Worker: w,
			Jobs:   int(p.slots[w].jobs.Load()),
			Busy:   time.Duration(p.slots[w].busyNanos.Load()),
		}
	}
	return out
}

// ForEach runs fn(i) for every i in [0, n), spreading the calls
// across the pool's workers. Every cell runs regardless of other
// cells' failures; afterwards the error of the lowest-index failing
// cell is returned, so error reporting is independent of scheduling.
// With one worker the cells run serially, in order, on the calling
// goroutine. When a telemetry tracer is installed, each worker records
// a span per drained cell, nested under a per-worker span.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)

	if p.workers == 1 || n == 1 {
		if p.BindWorker != nil {
			defer p.BindWorker(0)()
		}
		wsp := telemetry.StartSpan("pool worker 0")
		for i := 0; i < n; i++ {
			var csp *telemetry.Span
			if wsp != nil {
				csp = wsp.Child(fmt.Sprintf("cell %d", i))
			}
			syncx.CPU.Acquire()
			start := time.Now()
			errs[i] = fn(i)
			p.record(0, time.Since(start))
			syncx.CPU.Release()
			csp.End()
		}
		wsp.End()
		return firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if p.BindWorker != nil {
				defer p.BindWorker(w)()
			}
			wsp := telemetry.StartSpan(fmt.Sprintf("pool worker %d", w))
			defer wsp.End()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var csp *telemetry.Span
				if wsp != nil {
					csp = wsp.Child(fmt.Sprintf("cell %d", i))
				}
				syncx.CPU.Acquire()
				start := time.Now()
				errs[i] = fn(i)
				p.record(w, time.Since(start))
				syncx.CPU.Release()
				csp.End()
			}
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

// record charges one completed cell to a worker. The slot is owned by
// the worker, so the atomics are uncontended; they exist to make
// Stats() safe from other goroutines.
func (p *Pool) record(worker int, d time.Duration) {
	p.slots[worker].jobs.Add(1)
	p.slots[worker].busyNanos.Add(int64(d))
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
