// Package b exercises spanpair's End-on-all-paths checks.
package b

import (
	"errors"

	"lint.test/telemetry"
)

func deferred() {
	sp := telemetry.StartSpan("ok")
	defer sp.End()
	work()
}

func deferredClosure() {
	sp := telemetry.StartSpan("ok")
	defer func() {
		sp.End()
	}()
	work()
}

func explicitAllPaths(fail bool) error {
	sp := telemetry.StartSpan("ok")
	if fail {
		sp.End()
		return errors.New("fail")
	}
	work()
	sp.End()
	return nil
}

func dropped() {
	telemetry.StartSpan("x") // want `result of .*StartSpan is dropped`
	work()
}

func blankAssigned() {
	_ = telemetry.StartSpan("x") // want `assigned to _`
	work()
}

func leakyReturn(fail bool) error {
	sp := telemetry.StartSpan("x")
	if fail {
		return errors.New("fail") // want `return leaks span sp`
	}
	work()
	sp.End()
	return nil
}

func fallThroughLeak() {
	sp := telemetry.StartSpan("x") // want `span sp is not ended on the fall-through return path`
	work()
	sp.Arg("k", 1)
}

func nilGuardedEnd() {
	sp := telemetry.StartSpan("ok")
	work()
	if sp != nil {
		sp.Arg("k", 1)
		sp.End()
	}
}

func nilGuardEarlyOut() {
	sp := telemetry.StartSpan("ok")
	if sp == nil {
		return
	}
	work()
	sp.End()
}

func chainedChild(parent *telemetry.Span) {
	sp := telemetry.StartSpan("ok")
	defer sp.End()
	sp.Child("sub").End()
}

func loopLeak(n int) {
	for i := 0; i < n; i++ {
		sp := telemetry.StartSpan("iter") // want `created inside a loop but not ended within the loop body`
		work()
		sp.Arg("i", i)
	}
}

func loopEnded(n int) {
	for i := 0; i < n; i++ {
		sp := telemetry.StartSpan("iter")
		work()
		sp.End()
	}
}

func escapes() *telemetry.Span {
	sp := telemetry.StartSpan("caller-owned")
	return sp
}

func escapesToCall() {
	sp := telemetry.StartSpan("callee-owned")
	take(sp)
}

func suppressed() {
	//lint:ignore spanpair process-lifetime span, closed by the exporter
	sp := telemetry.StartSpan("x")
	work()
	sp.Arg("k", 1)
}

func take(sp *telemetry.Span) { _ = sp }

func work() {}
