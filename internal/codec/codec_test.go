package codec

import (
	"bytes"
	"sync"
	"testing"

	"vbench/internal/metrics"
	"vbench/internal/video"
)

// testSequence synthesizes a small deterministic test clip.
func testSequence(t *testing.T, w, h, frames int, params video.ContentParams) *video.Sequence {
	t.Helper()
	seq, err := video.Generate(params, w, h, frames, 30)
	if err != nil {
		t.Fatalf("generating test sequence: %v", err)
	}
	return seq
}

func defaultParams() video.ContentParams {
	return video.ContentParams{
		Seed:          42,
		Detail:        0.5,
		Motion:        0.4,
		Noise:         0.1,
		Sprites:       3,
		ChromaVariety: 0.5,
	}
}

// allToolVariants returns tool sets covering every bitstream feature.
func allToolVariants() []Tools {
	variants := []Tools{
		BaselineTools(PresetUltraFast),
		BaselineTools(PresetVeryFast),
		BaselineTools(PresetMedium),
		BaselineTools(PresetSlow),
		BaselineTools(PresetVerySlow),
	}
	rich := BaselineTools(PresetSlow)
	rich.Name = "rich"
	rich.RichContexts = true
	variants = append(variants, rich)
	return variants
}

func TestEncodeDecodeRoundTripAllTools(t *testing.T) {
	src := testSequence(t, 64, 48, 6, defaultParams())
	for _, tools := range allToolVariants() {
		tools := tools
		t.Run(tools.Name, func(t *testing.T) {
			eng := &Engine{Tools: tools}
			res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 28})
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, _, err := Decode(res.Bitstream)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(dec.Frames) != len(src.Frames) {
				t.Fatalf("decoded %d frames, want %d", len(dec.Frames), len(src.Frames))
			}
			for i := range dec.Frames {
				if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
					t.Fatalf("frame %d: decoder output differs from encoder reconstruction", i)
				}
			}
		})
	}
}

func TestEncodeQualityReasonable(t *testing.T) {
	src := testSequence(t, 64, 48, 6, defaultParams())
	eng := &Engine{Tools: BaselineTools(PresetMedium)}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 18})
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := metrics.SequencePSNR(src, res.Recon)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 36 {
		t.Errorf("QP18 PSNR = %.2f dB, want ≥ 36", psnr)
	}
}

func TestQualityMonotoneInQP(t *testing.T) {
	src := testSequence(t, 64, 48, 4, defaultParams())
	eng := &Engine{Tools: BaselineTools(PresetVeryFast)}
	var prevPSNR float64 = 1000
	var prevBits int64 = 1 << 62
	for _, qp := range []int{12, 20, 28, 36, 44} {
		res, err := eng.Encode(src, Config{RC: RCConstQP, QP: qp})
		if err != nil {
			t.Fatal(err)
		}
		psnr, err := metrics.SequencePSNR(src, res.Recon)
		if err != nil {
			t.Fatal(err)
		}
		bits := int64(len(res.Bitstream)) * 8
		if psnr > prevPSNR+0.01 {
			t.Errorf("QP %d: PSNR %.2f rose above previous %.2f", qp, psnr, prevPSNR)
		}
		if bits > prevBits {
			t.Errorf("QP %d: size %d bits rose above previous %d", qp, bits, prevBits)
		}
		prevPSNR, prevBits = psnr, bits
	}
}

func TestLowQPIsNearLossless(t *testing.T) {
	src := testSequence(t, 48, 48, 3, video.ContentParams{Seed: 5, Detail: 0.3, ChromaVariety: 0.3})
	eng := &Engine{Tools: BaselineTools(PresetMedium)}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 2})
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := metrics.SequencePSNR(src, res.Recon)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 48 {
		t.Errorf("QP2 PSNR = %.2f dB, want ≥ 48 (near lossless)", psnr)
	}
}

func TestArithCompressesBetterThanGolomb(t *testing.T) {
	src := testSequence(t, 96, 64, 6, defaultParams())
	tg := BaselineTools(PresetMedium)
	tg.Entropy = EntropyGolomb
	ta := BaselineTools(PresetMedium)
	ta.Entropy = EntropyArith
	rg, err := (&Engine{Tools: tg}).Encode(src, Config{RC: RCConstQP, QP: 26})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := (&Engine{Tools: ta}).Encode(src, Config{RC: RCConstQP, QP: 26})
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Bitstream) >= len(rg.Bitstream) {
		t.Errorf("arith (%d bytes) not smaller than golomb (%d bytes)", len(ra.Bitstream), len(rg.Bitstream))
	}
}

func TestHigherEffortCompressesBetter(t *testing.T) {
	// At equal QP (≈equal quality) a slower preset should spend fewer
	// bits on motion-heavy content.
	p := defaultParams()
	p.Motion = 0.7
	src := testSequence(t, 96, 64, 8, p)
	fast, err := (&Engine{Tools: BaselineTools(PresetUltraFast)}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := (&Engine{Tools: BaselineTools(PresetVerySlow)}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Bitstream) >= len(fast.Bitstream) {
		t.Errorf("veryslow (%d bytes) not smaller than ultrafast (%d bytes)", len(slow.Bitstream), len(fast.Bitstream))
	}
	if slow.Counters.TotalOps() <= fast.Counters.TotalOps() {
		t.Errorf("veryslow ops (%d) not greater than ultrafast ops (%d)",
			slow.Counters.TotalOps(), fast.Counters.TotalOps())
	}
}

func TestBitrateModeHitsTarget(t *testing.T) {
	src := testSequence(t, 96, 64, 12, defaultParams())
	eng := &Engine{Tools: BaselineTools(PresetVeryFast)}
	target := 400_000.0 // bits/s
	res, err := eng.Encode(src, Config{RC: RCBitrate, BitrateBPS: target})
	if err != nil {
		t.Fatal(err)
	}
	bits := float64(len(res.Bitstream)) * 8
	actual := bits / src.Duration()
	if actual > target*1.6 || actual < target*0.3 {
		t.Errorf("ABR produced %.0f bps for target %.0f", actual, target)
	}
}

func TestTwoPassCloserOrEqualToTarget(t *testing.T) {
	p := defaultParams()
	p.SceneCutInterval = 6
	src := testSequence(t, 96, 64, 12, p)
	eng := &Engine{Tools: BaselineTools(PresetMedium)}
	target := 300_000.0
	res2, err := eng.Encode(src, Config{RC: RCTwoPass, BitrateBPS: target})
	if err != nil {
		t.Fatal(err)
	}
	actual2 := float64(len(res2.Bitstream)) * 8 / src.Duration()
	if actual2 > target*1.6 || actual2 < target*0.3 {
		t.Errorf("two-pass produced %.0f bps for target %.0f", actual2, target)
	}
}

func TestKeyIntervalForcesIntra(t *testing.T) {
	src := testSequence(t, 48, 48, 9, defaultParams())
	eng := &Engine{Tools: BaselineTools(PresetUltraFast)}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 30, KeyInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, ft := range res.FrameTypes {
		wantI := i%4 == 0
		if wantI && ft != frameI {
			t.Errorf("frame %d: expected I frame", i)
		}
	}
}

func TestSceneCutInsertsKeyFrame(t *testing.T) {
	p := defaultParams()
	p.SceneCutInterval = 5
	p.Noise = 0
	src := testSequence(t, 96, 64, 10, p)
	tools := BaselineTools(PresetMedium)
	if !tools.SceneCut {
		t.Fatal("medium preset should enable scene-cut detection")
	}
	eng := &Engine{Tools: tools}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	intraCount := 0
	for _, ft := range res.FrameTypes {
		if ft == frameI {
			intraCount++
		}
	}
	if intraCount < 2 {
		t.Errorf("scene-cut content produced only %d key frames", intraCount)
	}
}

func TestSkipMBsOnStaticContent(t *testing.T) {
	p := video.ContentParams{Seed: 9, Detail: 0.4, ChromaVariety: 0.2, TextRegions: 2}
	src := testSequence(t, 96, 64, 5, p)
	eng := &Engine{Tools: BaselineTools(PresetMedium)}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MBSkip == 0 {
		t.Error("static content produced no skip macroblocks")
	}
}

func TestNonMacroblockAlignedDimensions(t *testing.T) {
	// 52×38 is not a multiple of 16: exercises padding and cropping.
	src := testSequence(t, 52, 38, 4, defaultParams())
	eng := &Engine{Tools: BaselineTools(PresetVeryFast)}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recon.Width() != 52 || res.Recon.Height() != 38 {
		t.Fatalf("recon dims %dx%d", res.Recon.Width(), res.Recon.Height())
	}
	dec, _, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Width() != 52 || dec.Height() != 38 {
		t.Fatalf("decoded dims %dx%d", dec.Width(), dec.Height())
	}
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
			t.Fatalf("frame %d mismatch on non-aligned dims", i)
		}
	}
}

func TestDecodeRejectsCorruptHeaders(t *testing.T) {
	src := testSequence(t, 48, 48, 2, defaultParams())
	res, err := (&Engine{Tools: BaselineTools(PresetUltraFast)}).Encode(src, Config{RC: RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":       func(b []byte) []byte { return nil },
		"bad magic":   func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c },
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"no payload":  func(b []byte) []byte { return b[:18] },
		"zero width":  func(b []byte) []byte { c := clone(b); c[4], c[5] = 0, 0; return c },
		"bad refs":    func(b []byte) []byte { c := clone(b); c[15] = 99; return c },
		"bad ftype":   func(b []byte) []byte { c := clone(b); c[16] = 7; return c },
		"bad base qp": func(b []byte) []byte { c := clone(b); c[17] = 200; return c },
	}
	for name, mutate := range cases {
		if _, _, err := Decode(mutate(res.Bitstream)); err == nil {
			t.Errorf("%s: decode accepted corrupt stream", name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestPerFrameBitsSumToStream(t *testing.T) {
	src := testSequence(t, 64, 48, 5, defaultParams())
	res, err := (&Engine{Tools: BaselineTools(PresetVeryFast)}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, b := range res.PerFrameBits {
		sum += b
	}
	headerBits := int64(17 * 8) // sequence header bytes
	if sum+headerBits != int64(len(res.Bitstream))*8 {
		t.Errorf("per-frame bits %d + header %d != stream %d", sum, headerBits, int64(len(res.Bitstream))*8)
	}
}

func TestCountersPopulated(t *testing.T) {
	src := testSequence(t, 64, 48, 5, defaultParams())
	res, err := (&Engine{Tools: BaselineTools(PresetMedium)}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	c := &res.Counters
	if c.Frames != 5 {
		t.Errorf("Frames = %d", c.Frames)
	}
	if c.MBTotal != 5*4*3 {
		t.Errorf("MBTotal = %d, want %d", c.MBTotal, 5*4*3)
	}
	if c.BitsOutput == 0 || c.Pixels == 0 || c.DataDepBranches == 0 {
		t.Error("zero counters for bits/pixels/branches")
	}
	for _, k := range []int{0, 1, 2, 3, 4} {
		if c.Ops[k] == 0 {
			t.Errorf("kernel %d recorded no ops", k)
		}
	}
}

func TestAdaptiveQuantVariesQP(t *testing.T) {
	// A frame with both flat and textured regions should produce
	// different macroblock QPs under AQ.
	p := video.ContentParams{Seed: 31, Detail: 0.9, Motion: 0.2, Sprites: 2, TextRegions: 2, ChromaVariety: 0.4}
	src := testSequence(t, 96, 96, 3, p)
	tools := BaselineTools(PresetMedium)
	if !tools.AdaptiveQuant {
		t.Fatal("medium preset should enable AQ")
	}
	eng := &Engine{Tools: tools}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Decode and confirm bit-exactness (AQ deltas survive the trip).
	dec, _, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
			t.Fatalf("frame %d mismatch with AQ", i)
		}
	}
}

func TestDecoderCountersPopulated(t *testing.T) {
	src := testSequence(t, 64, 48, 4, defaultParams())
	res, err := (&Engine{Tools: BaselineTools(PresetMedium)}).Encode(src, Config{RC: RCConstQP, QP: 26})
	if err != nil {
		t.Fatal(err)
	}
	_, dc, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Ops[8] == 0 { // KDecode
		t.Error("decoder recorded no parse work")
	}
	if dc.MBTotal != res.Counters.MBTotal {
		t.Errorf("decoder MBTotal %d != encoder %d", dc.MBTotal, res.Counters.MBTotal)
	}
}

func TestMultiRefImprovesOrEqualsSingleRef(t *testing.T) {
	p := defaultParams()
	p.Motion = 0.6
	src := testSequence(t, 96, 64, 8, p)
	t1 := BaselineTools(PresetSlow)
	t1.MaxRefs = 1
	t3 := BaselineTools(PresetSlow)
	t3.MaxRefs = 3
	r1, err := (&Engine{Tools: t1}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := (&Engine{Tools: t3}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	// Multi-ref must decode correctly and not be dramatically worse.
	if float64(len(r3.Bitstream)) > float64(len(r1.Bitstream))*1.05 {
		t.Errorf("3-ref stream (%d) much larger than 1-ref (%d)", len(r3.Bitstream), len(r1.Bitstream))
	}
	dec, _, err := Decode(r3.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(r3.Recon.Frames[i]) {
			t.Fatalf("frame %d mismatch with multi-ref", i)
		}
	}
}

func TestIntra4AndSharpInterpRoundTrip(t *testing.T) {
	p := defaultParams()
	p.TextRegions = 3
	src := testSequence(t, 96, 64, 6, p)
	tools := BaselineTools(PresetSlow)
	tools.Name = "hevc-class"
	tools.Intra4x4 = true
	tools.SharpInterp = true
	tools.RichContexts = true
	eng := &Engine{Tools: tools}
	res, err := eng.Encode(src, Config{RC: RCConstQP, QP: 28, KeyInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
			t.Fatalf("frame %d mismatch with intra4+sharp tools", i)
		}
	}
}

func TestIntra4ImprovesTextContent(t *testing.T) {
	// Per-block intra prediction should shrink intra frames on
	// text-like content at equal quality.
	p := video.ContentParams{Seed: 21, Detail: 0.2, TextRegions: 8, ChromaVariety: 0.2}
	src := testSequence(t, 96, 96, 2, p)
	base := BaselineTools(PresetMedium)
	with := base
	with.Intra4x4 = true
	rBase, err := (&Engine{Tools: base}).Encode(src, Config{RC: RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	rWith, err := (&Engine{Tools: with}).Encode(src, Config{RC: RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	pBase, _ := metrics.SequencePSNR(src, rBase.Recon)
	pWith, _ := metrics.SequencePSNR(src, rWith.Recon)
	// RD-selected tool: must improve the size/quality trade, i.e.
	// not be bigger at equal-or-better quality.
	if len(rWith.Bitstream) >= len(rBase.Bitstream) && pWith <= pBase {
		t.Errorf("intra4 did not help text: %d bytes %.2f dB vs %d bytes %.2f dB",
			len(rWith.Bitstream), pWith, len(rBase.Bitstream), pBase)
	}
}

func TestSharpInterpImprovesMotionContent(t *testing.T) {
	p := defaultParams()
	p.Motion = 0.8
	p.Detail = 0.7
	p.Noise = 0
	src := testSequence(t, 96, 64, 8, p)
	base := BaselineTools(PresetMedium)
	with := base
	with.SharpInterp = true
	rBase, err := (&Engine{Tools: base}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	rWith, err := (&Engine{Tools: with}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	pBase, _ := metrics.SequencePSNR(src, rBase.Recon)
	pWith, _ := metrics.SequencePSNR(src, rWith.Recon)
	// The sharper kernel should not lose on both axes.
	if len(rWith.Bitstream) > len(rBase.Bitstream) && pWith < pBase {
		t.Errorf("sharp interpolation lost on both axes: %d bytes %.2f dB vs %d bytes %.2f dB",
			len(rWith.Bitstream), pWith, len(rBase.Bitstream), pBase)
	}
}

func TestSlicedEncodeDecodeRoundTrip(t *testing.T) {
	src := testSequence(t, 96, 96, 5, defaultParams())
	tools := BaselineTools(PresetMedium)
	tools.Intra4x4 = true
	for _, slices := range []int{1, 2, 3, 6} {
		res, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28, Slices: slices})
		if err != nil {
			t.Fatalf("slices=%d: %v", slices, err)
		}
		dec, _, err := Decode(res.Bitstream)
		if err != nil {
			t.Fatalf("slices=%d decode: %v", slices, err)
		}
		for i := range dec.Frames {
			if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
				t.Fatalf("slices=%d frame %d mismatch", slices, i)
			}
		}
	}
}

func TestSlicedEncodeDeterministicUnderParallelism(t *testing.T) {
	// Slice encoding runs on goroutines; the bitstream must not depend
	// on scheduling.
	src := testSequence(t, 96, 96, 4, defaultParams())
	tools := BaselineTools(PresetMedium)
	encode := func() []byte {
		res, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28, Slices: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Bitstream
	}
	a := encode()
	for i := 0; i < 3; i++ {
		b := encode()
		if len(a) != len(b) {
			t.Fatal("parallel slice encode not deterministic (size)")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("parallel slice encode not deterministic at byte %d", j)
			}
		}
	}
}

func TestConcurrentSlicedEncodesShareGate(t *testing.T) {
	// Many Encodes in flight at once, each fanning out slice goroutines
	// through the global sliceGate: every run must still produce the
	// exact same bitstream (run under -race this also exercises the
	// gate for data races).
	src := testSequence(t, 96, 96, 4, defaultParams())
	tools := BaselineTools(PresetMedium)
	want, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28, Slices: 4})
	if err != nil {
		t.Fatal(err)
	}
	const parallel = 8
	results := make([][]byte, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28, Slices: 4})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res.Bitstream
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("encode %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], want.Bitstream) {
			t.Fatalf("encode %d produced a different bitstream under concurrency", i)
		}
	}
}

func TestSlicesCostSomeCompression(t *testing.T) {
	// Prediction cannot cross slice boundaries, so more slices must
	// not compress better.
	src := testSequence(t, 96, 96, 5, defaultParams())
	tools := BaselineTools(PresetMedium)
	one, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28, Slices: 1})
	if err != nil {
		t.Fatal(err)
	}
	six, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28, Slices: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(six.Bitstream) < len(one.Bitstream) {
		t.Errorf("6 slices (%d bytes) compressed better than 1 slice (%d bytes)",
			len(six.Bitstream), len(one.Bitstream))
	}
	// ...but bounded: even at the degenerate one-row-per-slice extreme
	// (cold entropy contexts per slice on a tiny frame) the overhead
	// stays under ~40%.
	if float64(len(six.Bitstream)) > float64(len(one.Bitstream))*1.4 {
		t.Errorf("slice overhead excessive: %d vs %d bytes", len(six.Bitstream), len(one.Bitstream))
	}
}

func TestSliceCountClampedToRows(t *testing.T) {
	src := testSequence(t, 48, 48, 2, defaultParams()) // 3 MB rows
	res, err := (&Engine{Tools: BaselineTools(PresetVeryFast)}).Encode(src, Config{RC: RCConstQP, QP: 30, Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Frames[0].Equal(res.Recon.Frames[0]) {
		t.Error("clamped slice count broke round trip")
	}
}

func TestDenoiseReducesBitsOnNoisyContent(t *testing.T) {
	p := defaultParams()
	p.Noise = 0.8
	src := testSequence(t, 96, 64, 6, p)
	base := BaselineTools(PresetMedium)
	dn := base
	dn.Denoise = 2
	r0, err := (&Engine{Tools: base}).Encode(src, Config{RC: RCConstQP, QP: 24})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := (&Engine{Tools: dn}).Encode(src, Config{RC: RCConstQP, QP: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Bitstream) >= len(r0.Bitstream) {
		t.Errorf("denoise did not shrink noisy stream: %d vs %d bytes", len(r2.Bitstream), len(r0.Bitstream))
	}
	// The fidelity cost must be modest (noise removal, not blur).
	p0, _ := metrics.SequencePSNR(src, r0.Recon)
	p2, _ := metrics.SequencePSNR(src, r2.Recon)
	if p0-p2 > 3 {
		t.Errorf("denoise cost too much fidelity: %.2f -> %.2f dB", p0, p2)
	}
	// Bitstream remains decodable and bit-exact.
	dec, _, err := Decode(r2.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Frames[0].Equal(r2.Recon.Frames[0]) {
		t.Error("denoised encode broke the decode loop")
	}
}

func TestDenoisePreservesCleanContent(t *testing.T) {
	p := defaultParams()
	p.Noise = 0
	src := testSequence(t, 96, 64, 4, p)
	base := BaselineTools(PresetVeryFast)
	dn := base
	dn.Denoise = 1
	r0, err := (&Engine{Tools: base}).Encode(src, Config{RC: RCConstQP, QP: 24})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := (&Engine{Tools: dn}).Encode(src, Config{RC: RCConstQP, QP: 24})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := metrics.SequencePSNR(src, r0.Recon)
	p1, _ := metrics.SequencePSNR(src, r1.Recon)
	if p0-p1 > 1.5 {
		t.Errorf("denoise damaged clean content: %.2f -> %.2f dB", p0, p1)
	}
}
