// Package plain declares no transition tables, so the analyzer stays
// inert even on State-shaped writes.
package plain

type State int

type Job struct{ State State }

func set(j *Job) {
	j.State = 7
}
