//go:build race

package video

// raceEnabled reports whether the race detector is compiled in. Under
// the race detector sync.Pool intentionally drops Puts at random, so
// tests that assert deterministic pool reuse must skip.
const raceEnabled = true
