package uarch

import (
	"math"
	"testing"

	"vbench/internal/codec"
	"vbench/internal/corpus"
	"vbench/internal/perf"
	"vbench/internal/video"
)

// encodeClip produces counters for a synthetic clip of the given
// entropy character at a small scale.
func encodeClip(t *testing.T, entropy float64, w, h int) *perf.Counters {
	t.Helper()
	p := corpus.ParamsForEntropy(entropy)
	p.Seed = uint64(entropy*1000) + 7
	seq, err := video.Generate(p, 96, 64, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	eng := codec.Engine{Tools: codec.BaselineTools(codec.PresetMedium)}
	res, err := eng.Encode(seq, codec.Config{RC: codec.RCConstQP, QP: 30})
	if err != nil {
		t.Fatal(err)
	}
	return &res.Counters
}

func analyze(t *testing.T, c *perf.Counters, w, h int) *Profile {
	t.Helper()
	p, err := Analyze(c, Options{NativeWidth: w, NativeHeight: h, SearchRange: 16, ISA: perf.ISAAVX2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeValidation(t *testing.T) {
	c := encodeClip(t, 2, 1280, 720)
	if _, err := Analyze(c, Options{NativeWidth: 0, NativeHeight: 720}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Analyze(&perf.Counters{}, Options{NativeWidth: 64, NativeHeight: 64}); err == nil {
		t.Error("empty counters accepted")
	}
}

func TestTopDownSumsToOne(t *testing.T) {
	c := encodeClip(t, 3, 1280, 720)
	p := analyze(t, c, 1280, 720)
	td := p.TopDown
	sum := td.FrontEnd + td.BadSpec + td.BEMemory + td.BECore + td.Retiring
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("top-down sums to %v", sum)
	}
	for name, v := range map[string]float64{
		"FE": td.FrontEnd, "BAD": td.BadSpec, "BE/Mem": td.BEMemory,
		"BE/Core": td.BECore, "RET": td.Retiring,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s fraction %v out of range", name, v)
		}
	}
}

func TestTopDownInPaperRegime(t *testing.T) {
	// Figure 6: ~15% FE, ~10% BAD, ~15% BE/Mem, ~60% RET+BE/Core.
	c := encodeClip(t, 4, 1920, 1080)
	p := analyze(t, c, 1920, 1080)
	td := p.TopDown
	if td.FrontEnd < 0.05 || td.FrontEnd > 0.30 {
		t.Errorf("FE = %v, want ~0.15", td.FrontEnd)
	}
	if td.BadSpec < 0.02 || td.BadSpec > 0.25 {
		t.Errorf("BAD = %v, want ~0.10", td.BadSpec)
	}
	if td.BEMemory > 0.35 {
		t.Errorf("BE/Mem = %v, want ~0.15", td.BEMemory)
	}
	if rc := td.Retiring + td.BECore; rc < 0.4 || rc > 0.85 {
		t.Errorf("RET+BE/Core = %v, want ~0.6", rc)
	}
}

func TestICacheMPKIRisesWithEntropy(t *testing.T) {
	lo := analyze(t, encodeClip(t, 0.2, 1280, 720), 1280, 720)
	hi := analyze(t, encodeClip(t, 10, 1280, 720), 1280, 720)
	if hi.ICacheMPKI <= lo.ICacheMPKI {
		t.Errorf("I$ MPKI did not rise with entropy: %.3f vs %.3f", lo.ICacheMPKI, hi.ICacheMPKI)
	}
}

func TestBranchMPKIRisesWithEntropy(t *testing.T) {
	lo := analyze(t, encodeClip(t, 0.2, 1280, 720), 1280, 720)
	hi := analyze(t, encodeClip(t, 10, 1280, 720), 1280, 720)
	if hi.BranchMPKI <= lo.BranchMPKI {
		t.Errorf("branch MPKI did not rise with entropy: %.3f vs %.3f", lo.BranchMPKI, hi.BranchMPKI)
	}
}

func TestLLCMPKIFallsWithEntropy(t *testing.T) {
	// Same native resolution, different entropy: the data footprint is
	// fixed but instructions grow, so misses per kilo-instruction fall.
	lo := analyze(t, encodeClip(t, 0.2, 1920, 1080), 1920, 1080)
	hi := analyze(t, encodeClip(t, 10, 1920, 1080), 1920, 1080)
	if hi.LLCMPKI >= lo.LLCMPKI {
		t.Errorf("LLC MPKI did not fall with entropy: %.3f vs %.3f", lo.LLCMPKI, hi.LLCMPKI)
	}
}

func TestLLCMPKIGrowsWithResolution(t *testing.T) {
	c := encodeClip(t, 3, 1280, 720)
	small := analyze(t, c, 640, 360)
	large := analyze(t, c, 3840, 2160)
	if large.LLCMPKI <= small.LLCMPKI {
		t.Errorf("LLC MPKI did not grow with native resolution: %.4f vs %.4f", small.LLCMPKI, large.LLCMPKI)
	}
}

func TestScalarFractionNearSixtyPercent(t *testing.T) {
	// Figure 7: scalar ≈ 60% across the entropy range.
	for _, e := range []float64{0.5, 3, 10} {
		p := analyze(t, encodeClip(t, e, 1280, 720), 1280, 720)
		if p.ScalarFraction < 0.40 || p.ScalarFraction > 0.80 {
			t.Errorf("entropy %v: scalar fraction %v, want ~0.6", e, p.ScalarFraction)
		}
	}
}

func TestAVX2FractionBounded(t *testing.T) {
	// Figure 7: AVX2 ≤ ~20% of cycles.
	p := analyze(t, encodeClip(t, 5, 1280, 720), 1280, 720)
	if p.AVX2Fraction > 0.25 {
		t.Errorf("AVX2 fraction %v, want ≤ 0.25", p.AVX2Fraction)
	}
	if p.AVX2Fraction <= 0 {
		t.Error("AVX2 fraction zero — vector model inactive")
	}
}

func TestISALadderMonotone(t *testing.T) {
	// Figure 8: total time never increases as newer ISAs are enabled.
	c := encodeClip(t, 4, 1280, 720)
	prev := math.Inf(1)
	for isa := perf.ISAScalar; isa < perf.NumISA; isa++ {
		total := TotalSeconds(c, isa, 4e9)
		if total > prev*1.0001 {
			t.Errorf("total time rose at %v: %v > %v", isa, total, prev)
		}
		prev = total
	}
}

func TestScalarSecondsConstantAcrossISA(t *testing.T) {
	// Figure 8: "the fraction of time spent in scalar code remains
	// constant" — the intrinsically scalar seconds (sequential kernels
	// plus in-kernel scalar residue) must not change once any vector
	// ISA exists. (At the scalar-only build, vector work necessarily
	// runs as scalar code, so that build is excluded.)
	c := encodeClip(t, 4, 1280, 720)
	base := ClassSeconds(c, perf.ISASSE, 4e9)[perf.ISAScalar]
	for isa := perf.ISASSE2; isa < perf.NumISA; isa++ {
		s := ClassSeconds(c, isa, 4e9)[perf.ISAScalar]
		if math.Abs(s-base)/base > 1e-9 {
			t.Errorf("scalar seconds changed at %v: %v vs %v", isa, s, base)
		}
	}
	// And the scalar-only build must cost strictly more overall.
	if ClassSeconds(c, perf.ISAScalar, 4e9)[perf.ISAScalar] <= base {
		t.Error("scalar build should fold vector work into scalar class")
	}
}

func TestSSE2CapturesMostOfTheGain(t *testing.T) {
	// Figure 8 / Section 5.2: the gain beyond SSE2 is small (~15%).
	c := encodeClip(t, 4, 1280, 720)
	scalar := TotalSeconds(c, perf.ISAScalar, 4e9)
	sse2 := TotalSeconds(c, perf.ISASSE2, 4e9)
	avx2 := TotalSeconds(c, perf.ISAAVX2, 4e9)
	gainToSSE2 := scalar - sse2
	gainBeyond := sse2 - avx2
	if gainBeyond > gainToSSE2*0.5 {
		t.Errorf("gain beyond SSE2 (%.3g) not small vs gain to SSE2 (%.3g)", gainBeyond, gainToSSE2)
	}
	if sse2/avx2 > 1.35 {
		t.Errorf("SSE2→AVX2 speedup %.2f, paper says ~1.15", sse2/avx2)
	}
}

func TestInstructionsFallWithWiderSIMD(t *testing.T) {
	c := encodeClip(t, 4, 1280, 720)
	if Instructions(c, perf.ISAAVX2) >= Instructions(c, perf.ISAScalar) {
		t.Error("AVX2 build did not retire fewer instructions")
	}
}

func TestKernelClassSecondsConsistent(t *testing.T) {
	c := encodeClip(t, 4, 1280, 720)
	per := KernelClassSeconds(c, perf.ISAAVX2, 4e9)
	sum := 0.0
	for k := range per {
		for cl := range per[k] {
			if per[k][cl] < 0 {
				t.Fatalf("negative time at kernel %d class %d", k, cl)
			}
			sum += per[k][cl]
		}
	}
	total := TotalSeconds(c, perf.ISAAVX2, 4e9)
	if math.Abs(sum-total)/total > 1e-9 {
		t.Errorf("per-kernel sum %v != total %v", sum, total)
	}
	// Non-vectorizable kernels must appear only in the scalar class.
	for cl := perf.ISASSE; cl < perf.NumISA; cl++ {
		if per[perf.KEntropy][cl] != 0 || per[perf.KControl][cl] != 0 {
			t.Error("sequential kernel attributed to a vector class")
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	c := encodeClip(t, 3, 1280, 720)
	a := analyze(t, c, 1280, 720)
	b := analyze(t, c, 1280, 720)
	if a.ICacheMPKI != b.ICacheMPKI || a.BranchMPKI != b.BranchMPKI || a.LLCMPKI != b.LLCMPKI {
		t.Error("analysis not deterministic for identical inputs")
	}
}

func TestMPKIRangesSane(t *testing.T) {
	// The paper's Figure 5 axes: L1I and branch MPKI in 0..~6, LLC in
	// 0..~6. Keep the model within the same order of magnitude.
	p := analyze(t, encodeClip(t, 5, 1920, 1080), 1920, 1080)
	if p.ICacheMPKI < 0 || p.ICacheMPKI > 20 {
		t.Errorf("I$ MPKI %v out of plausible range", p.ICacheMPKI)
	}
	if p.BranchMPKI < 0 || p.BranchMPKI > 20 {
		t.Errorf("branch MPKI %v out of plausible range", p.BranchMPKI)
	}
	if p.LLCMPKI < 0 || p.LLCMPKI > 20 {
		t.Errorf("LLC MPKI %v out of plausible range", p.LLCMPKI)
	}
}
