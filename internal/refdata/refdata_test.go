package refdata

import "testing"

func clipOrder() []string {
	return []string{"cat", "holi", "desktop", "bike", "cricket", "game2", "girl", "game3",
		"presentation", "funny", "house", "game1", "landscape", "hall", "chicken"}
}

func TestTable3Complete(t *testing.T) {
	rows := Table3()
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15", len(rows))
	}
	for i, want := range clipOrder() {
		if rows[i].Clip != want {
			t.Errorf("row %d = %s, want %s", i, rows[i].Clip, want)
		}
	}
	for _, r := range rows {
		if r.NVENCS <= 1 || r.QSVS <= 1 {
			t.Errorf("%s: GPU speed ratios should exceed 1 (%v, %v)", r.Clip, r.NVENCS, r.QSVS)
		}
		// Published scores equal S×B within rounding.
		if d := r.NVENCScore - r.NVENCS*r.NVENCB; d > 0.2 || d < -0.2 {
			t.Errorf("%s: NVENC score %v far from S*B=%v", r.Clip, r.NVENCScore, r.NVENCS*r.NVENCB)
		}
	}
}

func TestTable4Complete(t *testing.T) {
	rows := Table4()
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15", len(rows))
	}
	for _, r := range rows {
		if r.NVENCQ < 0.99 || r.QSVQ < 0.99 {
			t.Errorf("%s: Live quality ratios should be ≈1 or above (%v, %v)", r.Clip, r.NVENCQ, r.QSVQ)
		}
	}
}

func TestTable5FailuresMatchPaper(t *testing.T) {
	rows := Table5()
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15", len(rows))
	}
	// The paper reports empty cells exactly where B < 1.
	for _, r := range rows {
		if (r.VP9Score == 0) != (r.VP9B < 1) {
			t.Errorf("%s: vp9 empty-cell inconsistent (B=%v score=%v)", r.Clip, r.VP9B, r.VP9Score)
		}
		if (r.X265Score == 0) != (r.X265B < 1) {
			t.Errorf("%s: x265 empty-cell inconsistent (B=%v score=%v)", r.Clip, r.X265B, r.X265Score)
		}
	}
	// GPUs produced zero valid Popular transcodes; software produced
	// several — at least 10 valid vp9 cells in the paper.
	valid := 0
	for _, r := range rows {
		if r.VP9Score > 0 {
			valid++
		}
	}
	if valid < 10 {
		t.Errorf("only %d valid vp9 popular scores", valid)
	}
}

func TestFigure1GrowthGap(t *testing.T) {
	pts := Figure1()
	if len(pts) != 11 {
		t.Fatalf("%d growth points, want 11 (2006-2016)", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Year != 2016 {
		t.Fatalf("last year %d", last.Year)
	}
	// The paper's headline: uploads grew far faster than SPECint.
	if last.UploadGrowth/last.SPECIntGrowth < 5 {
		t.Errorf("2016 gap = %v, want ≫ 1", last.UploadGrowth/last.SPECIntGrowth)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].UploadGrowth < pts[i-1].UploadGrowth {
			t.Error("upload growth not monotone")
		}
		if pts[i].SPECIntGrowth < pts[i-1].SPECIntGrowth {
			t.Error("SPEC growth not monotone")
		}
	}
}

func TestTable2EntropyMatchesClips(t *testing.T) {
	e := Table2Entropy()
	if len(e) != 15 {
		t.Fatalf("%d entropy entries, want 15", len(e))
	}
	if e["desktop"] != 0.2 || e["hall"] != 7.7 {
		t.Error("entropy values wrong")
	}
}
