package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"vbench/internal/telemetry"
)

// execSpans extracts the worker-side execution spans ("X" events with
// a job arg) from a parsed trace, keyed (job, attempt).
type execSpan struct {
	job, attempt int
	ts, dur      float64
	parent       string
}

func execSpansOf(tr *telemetry.ChromeTrace) []execSpan {
	var out []execSpan
	for i := range tr.TraceEvents {
		e := &tr.TraceEvents[i]
		if e.Ph != "X" || e.SpanID() == "" || e.ParentSpanID() == "" {
			continue
		}
		job, ok1 := e.Args["job"].(float64)
		attempt, ok2 := e.Args["attempt"].(float64)
		if !ok1 || !ok2 {
			continue
		}
		out = append(out, execSpan{
			job: int(job), attempt: int(attempt),
			ts: e.Ts, dur: e.Dur, parent: e.ParentSpanID(),
		})
	}
	return out
}

// TestTracePropagationLoopback is the acceptance round trip: a real
// worker pulls jobs from a loopback master, both sides trace, and the
// stitched timeline must parent every execution span under its
// master-side lease span — including the retry attempt, whose spans
// must not overlap the first attempt's.
func TestTracePropagationLoopback(t *testing.T) {
	masterReg := telemetry.NewRegistry()
	q := NewQueue(Options{
		Metrics:     masterReg,
		LeaseTTL:    2 * time.Second,
		BackoffBase: 20 * time.Millisecond,
		MaxAttempts: 3,
	})
	masterTracer := telemetry.NewProcessTracer("vbenchd-master")
	api := NewServer(q)
	api.EnableTracing(masterTracer)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	submitNoops(t, srv.URL, 3, 5)
	var flaky SubmitResponse
	rawPost(t, srv.URL+"/api/v1/submit", &SubmitRequest{
		Jobs: []JobSpec{{Kind: KindNoop, SleepMS: 5, FailFirst: 1}},
	}, &flaky)
	flakyID := flaky.IDs[0]

	workerTracer := telemetry.NewProcessTracer("worker-w1")
	w, err := NewWorker(WorkerOptions{
		Master: srv.URL,
		ID:     "w1",
		Poll:   5 * time.Millisecond,
		Tracer: workerTracer,
		// A loopback worker needs its own registry: pushes absorbed into
		// the master's registry must not feed back into the next push.
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	waitDone(t, q, 4, 10*time.Second)
	cancel()
	<-done

	// Serialize both sides and stitch.
	var mbuf, wbuf bytes.Buffer
	if err := masterTracer.WriteChromeTrace(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := workerTracer.WriteChromeTrace(&wbuf); err != nil {
		t.Fatal(err)
	}
	mtr, err := telemetry.ParseChromeTrace(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	wtr, err := telemetry.ParseChromeTrace(&wbuf)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	stats, err := telemetry.MergeChromeTraces(&merged, []*telemetry.ChromeTrace{mtr, wtr})
	if err != nil {
		t.Fatal(err)
	}

	// 3 clean jobs + 1 retried job = 5 attempts; every execution span
	// must resolve to a master-side lease span across the process
	// boundary, with no orphans.
	const attempts = 5
	if stats.Processes != 2 {
		t.Errorf("merged %d processes, want 2", stats.Processes)
	}
	if stats.Orphans != 0 {
		t.Errorf("merge left %d orphan spans, want 0", stats.Orphans)
	}
	if stats.Links != attempts {
		t.Errorf("merge resolved %d cross-process links, want %d", stats.Links, attempts)
	}

	execs := execSpansOf(wtr)
	if len(execs) != attempts {
		t.Fatalf("worker trace has %d execution spans, want %d", len(execs), attempts)
	}
	for _, e := range execs {
		if want := LeaseSpanID(e.job, e.attempt); e.parent != want {
			t.Errorf("job %d attempt %d parented under %q, want %q", e.job, e.attempt, e.parent, want)
		}
	}

	// The retried job's attempts must be monotonic and non-overlapping:
	// attempt 1 ends before attempt 2 begins.
	var a1, a2 *execSpan
	for i := range execs {
		e := &execs[i]
		if e.job != flakyID {
			continue
		}
		switch e.attempt {
		case 1:
			a1 = e
		case 2:
			a2 = e
		}
	}
	if a1 == nil || a2 == nil {
		t.Fatalf("retried job %d missing attempt spans: %+v", flakyID, execs)
	}
	if end := a1.ts + a1.dur; end > a2.ts+0.01 {
		t.Errorf("attempt spans overlap: attempt 1 ends at %.3fus, attempt 2 starts at %.3fus", end, a2.ts)
	}

	// The worker echoed the trace context on its acks.
	if n := masterReg.Counter("fleet.trace_acks").Value(); n == 0 {
		t.Error("master saw no trace-context acks")
	}
	// The merged output itself must re-parse.
	if _, err := telemetry.ParseChromeTrace(&merged); err != nil {
		t.Errorf("merged trace does not re-parse: %v", err)
	}
}
