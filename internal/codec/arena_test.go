package codec

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"vbench/internal/video"
)

// fullTools is a tool set that exercises every scratch-memory consumer
// at once: intra4 and 16×16 candidates, the 8×8 transform retry, sharp
// interpolation (motion.Scratch temporaries), trellis, adaptive quant,
// and full RD mode with skip candidates in the final comparison.
func fullTools() Tools {
	t := BaselineTools(PresetVerySlow)
	t.Name = "full-arena"
	t.Intra4x4 = true
	t.SharpInterp = true
	t.Transform8x8 = true
	t.Trellis = true
	t.AdaptiveQuant = true
	return t
}

func arenaToolVariants() []Tools {
	return append(allToolVariantsCommon(), fullTools())
}

func allToolVariantsCommon() []Tools {
	return []Tools{
		BaselineTools(PresetUltraFast),
		BaselineTools(PresetMedium),
		BaselineTools(PresetVerySlow),
	}
}

type encodeOut struct {
	bitstream []byte
	recon     *video.Sequence
}

func encodeOnce(t *testing.T, src *video.Sequence, tools Tools, cfg Config) encodeOut {
	t.Helper()
	eng := &Engine{Tools: tools}
	res, err := eng.Encode(src, cfg)
	if err != nil {
		t.Fatalf("encode (%s): %v", tools.Name, err)
	}
	return encodeOut{bitstream: res.Bitstream, recon: res.Recon}
}

func requireIdentical(t *testing.T, want, got encodeOut, label string) {
	t.Helper()
	if !bytes.Equal(want.bitstream, got.bitstream) {
		t.Fatalf("%s: bitstream differs from fresh-allocation encode", label)
	}
	if len(want.recon.Frames) != len(got.recon.Frames) {
		t.Fatalf("%s: recon has %d frames, want %d", label, len(got.recon.Frames), len(want.recon.Frames))
	}
	for i := range want.recon.Frames {
		if !want.recon.Frames[i].Equal(got.recon.Frames[i]) {
			t.Fatalf("%s: recon frame %d differs from fresh-allocation encode", label, i)
		}
	}
}

// TestPooledEncodeMatchesFreshAllocation pins the determinism contract
// of the scratch arenas and the frame pool: an encode drawing recycled
// memory must be byte-identical to one running on fresh allocations.
// Unaligned dimensions exercise the pooled-reference path (padded
// reconstructions are recycled once evicted); aligned dimensions
// exercise the escape path (reconstructions alias the returned
// sequence and must never be pooled).
func TestPooledEncodeMatchesFreshAllocation(t *testing.T) {
	dims := [][2]int{{64, 48}, {52, 38}}
	cfgs := []Config{
		{RC: RCConstQP, QP: 28},
		{RC: RCConstQP, QP: 30, Slices: 3},
		{RC: RCTwoPass, BitrateBPS: 250000, KeyInterval: 4},
	}
	for _, d := range dims {
		src := testSequence(t, d[0], d[1], 6, defaultParams())
		for _, tools := range arenaToolVariants() {
			for ci, cfg := range cfgs {
				label := fmt.Sprintf("%dx%d/%s/cfg%d", d[0], d[1], tools.Name, ci)

				video.SetFramePooling(false)
				fresh := encodeOnce(t, src, tools, cfg)
				video.SetFramePooling(true)

				// Twice with pooling on: the first run seeds the pool,
				// the second actually reuses dirty frames.
				for round := 0; round < 2; round++ {
					pooled := encodeOnce(t, src, tools, cfg)
					requireIdentical(t, fresh, pooled, fmt.Sprintf("%s round %d", label, round))
				}

				dec, _, err := Decode(fresh.bitstream)
				if err != nil {
					t.Fatalf("%s: decode: %v", label, err)
				}
				for i := range dec.Frames {
					if !dec.Frames[i].Equal(fresh.recon.Frames[i]) {
						t.Fatalf("%s: decoder output differs from encoder reconstruction at frame %d", label, i)
					}
				}
			}
		}
	}
}

// TestConcurrentPooledEncodesAreDeterministic runs many encoders
// concurrently against the shared frame pool (run under -race by make
// check). Cross-contamination through recycled frames, candidate
// structs, or level arenas would show up as a bitstream diff or a race
// report.
func TestConcurrentPooledEncodesAreDeterministic(t *testing.T) {
	src := testSequence(t, 52, 38, 5, defaultParams())
	variants := arenaToolVariants()
	cfg := Config{RC: RCConstQP, QP: 30, Slices: 2}

	video.SetFramePooling(false)
	baseline := make([]encodeOut, len(variants))
	for i, tools := range variants {
		baseline[i] = encodeOnce(t, src, tools, cfg)
	}
	video.SetFramePooling(true)

	const goroutinesPerVariant = 3
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(variants)*goroutinesPerVariant)
	for i, tools := range variants {
		for g := 0; g < goroutinesPerVariant; g++ {
			wg.Add(1)
			go func(i int, tools Tools, g int) {
				defer wg.Done()
				for it := 0; it < iters; it++ {
					eng := &Engine{Tools: tools}
					res, err := eng.Encode(src, cfg)
					if err != nil {
						errs <- fmt.Errorf("%s g%d it%d: %v", tools.Name, g, it, err)
						return
					}
					if !bytes.Equal(res.Bitstream, baseline[i].bitstream) {
						errs <- fmt.Errorf("%s g%d it%d: bitstream differs under concurrent pooled encode", tools.Name, g, it)
						return
					}
					for f := range res.Recon.Frames {
						if !res.Recon.Frames[f].Equal(baseline[i].recon.Frames[f]) {
							errs <- fmt.Errorf("%s g%d it%d: recon frame %d differs", tools.Name, g, it, f)
							return
						}
					}
				}
			}(i, tools, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLevelArenaTakeAndReset(t *testing.T) {
	var a levelArena
	s1 := a.take(16)
	if len(s1) != 16 {
		t.Fatalf("take(16) returned len %d", len(s1))
	}
	for i := range s1 {
		s1[i] = int32(i + 1)
	}
	s2 := a.take(64)
	for i := range s2 {
		s2[i] = -1
	}
	for i := range s1 {
		if s1[i] != int32(i+1) {
			t.Fatalf("second take corrupted first slice at %d", i)
		}
	}
	// Appending to an arena slice must not bleed into the neighbour.
	s1 = append(s1, 99)
	if s2[0] != -1 {
		t.Fatal("append to arena slice overwrote the next allocation")
	}
	if a.overflows != 0 {
		t.Fatalf("unexpected overflows %d", a.overflows)
	}
	a.reset()
	if a.off != 0 {
		t.Fatalf("reset left off = %d", a.off)
	}
	// Exhaust the arena: the fallback must still hand out usable
	// memory and count the overflow.
	total := 0
	for total+64 <= levelArenaCap {
		a.take(64)
		total += 64
	}
	over := a.take(64)
	if len(over) != 64 {
		t.Fatalf("overflow take returned len %d", len(over))
	}
	if a.overflows != 1 {
		t.Fatalf("overflows = %d, want 1", a.overflows)
	}
	// A nil arena degrades to plain heap allocation.
	var nilArena *levelArena
	s := nilArena.take(16)
	if len(s) != 16 {
		t.Fatalf("nil arena take returned len %d", len(s))
	}
}

func TestCandPoolRecycles(t *testing.T) {
	var p candPool
	c1 := p.get()
	c2 := p.get()
	if p.fresh != 2 {
		t.Fatalf("fresh = %d, want 2", p.fresh)
	}
	c1.qp = 31
	p.put(c1)
	c3 := p.get()
	if c3 != c1 {
		t.Fatal("pool did not recycle the released candidate")
	}
	if p.fresh != 2 {
		t.Fatalf("fresh = %d after recycle, want 2", p.fresh)
	}
	p.put(nil) // nil-safe
	p.put(c2)
	p.put(c3)
}
