package codec

import (
	"fmt"

	"vbench/internal/codec/motion"
	"vbench/internal/codec/predict"
)

// Per-4×4-block intra prediction (the Intra4x4 tool). Blocks inside a
// macroblock are predicted in raster order from already-reconstructed
// neighbours — earlier blocks of the same macroblock, or the frame
// reconstruction for blocks on the macroblock's top/left edge. The
// functions here are normative: encoder build and decoder reconstruct
// call the same code, keeping the closed loop bit-exact.

// intra4Sample fetches the reconstructed sample at macroblock-local
// coordinates (lx, ly) (which may be -1 for neighbour rows/columns):
// from the in-progress candidate when inside the macroblock, from the
// frame reconstruction otherwise. The caller must have verified
// availability.
func intra4Sample(plane motion.Plane, cand *mbCand, px, py, lx, ly int) uint8 {
	if lx >= 0 && lx < MBSize && ly >= 0 && ly < MBSize {
		return cand.lumaRecon[ly*MBSize+lx]
	}
	return plane.Pix[(py+ly)*plane.W+px+lx]
}

// intra4Avail reports whether the given prediction mode has its
// source neighbours for the 4×4 block at offset (ox, oy) of the
// macroblock at (px, py). sliceTop is the luma row of the slice's
// first sample: prediction must not cross it.
func intra4Avail(mode predict.Mode, px, py, ox, oy, sliceTop int) bool {
	hasTop := py+oy > sliceTop
	hasLeft := px+ox > 0
	switch mode {
	case predict.ModeDC:
		return true
	case predict.ModeVertical:
		return hasTop
	case predict.ModeHorizontal:
		return hasLeft
	}
	return false
}

// intra4PredictBlock writes the 4×4 prediction for the block at
// (ox, oy) of the macroblock at (px, py) into dst.
func intra4PredictBlock(dst []uint8, mode predict.Mode, plane motion.Plane, cand *mbCand, px, py, ox, oy, sliceTop int) error {
	hasTop := py+oy > sliceTop
	hasLeft := px+ox > 0
	var top, left [4]uint8
	if hasTop {
		for i := 0; i < 4; i++ {
			top[i] = intra4Sample(plane, cand, px, py, ox+i, oy-1)
		}
	}
	if hasLeft {
		for i := 0; i < 4; i++ {
			left[i] = intra4Sample(plane, cand, px, py, ox-1, oy+i)
		}
	}
	switch mode {
	case predict.ModeDC:
		sum, n := 0, 0
		if hasTop {
			for _, v := range top {
				sum += int(v)
			}
			n += 4
		}
		if hasLeft {
			for _, v := range left {
				sum += int(v)
			}
			n += 4
		}
		dc := uint8(128)
		if n > 0 {
			dc = uint8((sum + n/2) / n)
		}
		for i := range dst[:16] {
			dst[i] = dc
		}
	case predict.ModeVertical:
		if !hasTop {
			return fmt.Errorf("codec: vertical intra4 without top neighbour at (%d,%d)", px+ox, py+oy)
		}
		for y := 0; y < 4; y++ {
			copy(dst[y*4:y*4+4], top[:])
		}
	case predict.ModeHorizontal:
		if !hasLeft {
			return fmt.Errorf("codec: horizontal intra4 without left neighbour at (%d,%d)", px+ox, py+oy)
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				dst[y*4+x] = left[y]
			}
		}
	default:
		return fmt.Errorf("codec: invalid intra4 mode %d", int(mode))
	}
	return nil
}
