// Package branchsim implements branch predictor models (two-bit
// counters and gshare) used by the µarch study to reproduce the
// paper's branch-misprediction trends (Figure 5, middle): transcoding
// complex video exercises more data-dependent branches whose outcomes
// resist history-based prediction.
package branchsim

import "fmt"

// Predictor is a branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Name labels the predictor.
	Name() string
}

// counter is a 2-bit saturating counter: 0,1 predict not-taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a table of 2-bit counters indexed by PC.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal builds a bimodal predictor with 2^bits entries.
func NewBimodal(bits uint) (*Bimodal, error) {
	if bits == 0 || bits > 24 {
		return nil, fmt.Errorf("branchsim: invalid table bits %d", bits)
	}
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}, nil
}

// Predict returns the predicted direction.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[(pc>>2)&b.mask].taken() }

// Update trains the counter.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & b.mask
	b.table[i] = b.table[i].update(taken)
}

// Name labels the predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// GShare XORs global history into the table index, capturing
// correlated patterns (the predictor class of the paper's hardware).
type GShare struct {
	table   []counter
	mask    uint64
	history uint64
	bits    uint
}

// NewGShare builds a gshare predictor with 2^bits entries and
// bits of global history.
func NewGShare(bits uint) (*GShare, error) {
	if bits == 0 || bits > 24 {
		return nil, fmt.Errorf("branchsim: invalid table bits %d", bits)
	}
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(n - 1), bits: bits}, nil
}

func (g *GShare) index(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict returns the predicted direction.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update trains the counter and shifts the outcome into history.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// Name labels the predictor.
func (g *GShare) Name() string { return "gshare" }

// Stats runs a predictor over a trace and reports mispredictions.
type Stats struct {
	Branches    int64
	Mispredicts int64
}

// MispredictRate returns mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Run feeds (pc, outcome) pairs through a predictor.
func Run(p Predictor, pcs []uint64, outcomes []bool) (Stats, error) {
	if len(pcs) != len(outcomes) {
		return Stats{}, fmt.Errorf("branchsim: %d pcs vs %d outcomes", len(pcs), len(outcomes))
	}
	var s Stats
	for i, pc := range pcs {
		pred := p.Predict(pc)
		if pred != outcomes[i] {
			s.Mispredicts++
		}
		p.Update(pc, outcomes[i])
		s.Branches++
	}
	return s, nil
}

// Feed is the streaming form of Run for generated traces.
type Feed struct {
	P Predictor
	S Stats
}

// Observe predicts and trains on one branch.
func (f *Feed) Observe(pc uint64, taken bool) {
	if f.P.Predict(pc) != taken {
		f.S.Mispredicts++
	}
	f.P.Update(pc, taken)
	f.S.Branches++
}
