package harness

import (
	"strings"
	"testing"

	"vbench/internal/codec"
	"vbench/internal/codec/hw"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/scoring"
)

// tiny returns a runner small enough for unit tests.
func tiny() *Runner { return NewRunner(16, 0.4) }

func clip(t *testing.T, name string) corpus.Clip {
	t.Helper()
	c, err := corpus.ClipByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSequenceCaching(t *testing.T) {
	r := tiny()
	c := clip(t, "bike")
	a, err := r.Sequence(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Sequence(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("sequence not cached")
	}
}

func TestMeasureRequiresModel(t *testing.T) {
	r := tiny()
	seq, err := r.Sequence(clip(t, "bike"))
	if err != nil {
		t.Fatal(err)
	}
	eng := &codec.Engine{Tools: codec.BaselineTools(codec.PresetUltraFast)}
	if _, err := r.Measure(eng, seq, codec.Config{RC: codec.RCConstQP, QP: 30}); err == nil {
		t.Error("model-less engine accepted")
	}
}

func TestMeasureProducesValidMeasurement(t *testing.T) {
	r := tiny()
	seq, err := r.Sequence(clip(t, "bike"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Measure(profiles.X264(codec.PresetVeryFast), seq, codec.Config{RC: codec.RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Measurement.Validate(); err != nil {
		t.Errorf("measurement invalid: %v", err)
	}
	if m.PSNR < 25 || m.PSNR > 100 {
		t.Errorf("implausible PSNR %v", m.PSNR)
	}
}

func TestReferencesExistForAllScenarios(t *testing.T) {
	r := tiny()
	c := clip(t, "bike")
	for _, s := range scoring.Scenarios() {
		m, err := r.Reference(s, c)
		if err != nil {
			t.Fatalf("%v reference: %v", s, err)
		}
		if err := m.Measurement.Validate(); err != nil {
			t.Errorf("%v reference invalid: %v", s, err)
		}
	}
	// VOD and Platform share the reference.
	vod, _ := r.Reference(scoring.VOD, c)
	plat, _ := r.Reference(scoring.Platform, c)
	if vod.BitratePPS != plat.BitratePPS {
		t.Error("VOD and Platform references differ")
	}
}

func TestPopularReferenceBeatsVODReference(t *testing.T) {
	// The Popular reference is the high-effort encode at the same
	// target bitrate: it must deliver at least the VOD reference's
	// quality (this is why GPUs cannot qualify for Popular).
	r := tiny()
	c := clip(t, "girl")
	vod, err := r.Reference(scoring.VOD, c)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := r.Reference(scoring.Popular, c)
	if err != nil {
		t.Fatal(err)
	}
	if pop.PSNR < vod.PSNR-0.3 {
		t.Errorf("popular reference %.2f dB below VOD reference %.2f dB", pop.PSNR, vod.PSNR)
	}
}

func TestEvaluateQualityConstrainedVOD(t *testing.T) {
	r := tiny()
	c := clip(t, "girl")
	score, m, err := r.EvaluateQualityConstrained(scoring.VOD, c, hw.QSV(), codec.RCBitrate)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatalf("no measurement: %s", score.Reason)
	}
	if !score.Valid {
		t.Errorf("QSV VOD transcode invalid: %s", score.Reason)
	}
	if score.Ratios.S < 1 {
		t.Errorf("hardware VOD speed ratio %.2f, want > 1", score.Ratios.S)
	}
	if score.Ratios.Q < 0.99 {
		t.Errorf("quality-constrained run missed quality: Q=%.3f", score.Ratios.Q)
	}
}

func TestGPUsFailPopularScenario(t *testing.T) {
	// Section 6.2: "it was impossible for either of the GPUs to
	// produce a single valid transcode for this scenario".
	r := tiny()
	for _, name := range []string{"girl", "funny"} {
		c := clip(t, name)
		for encName, eng := range hw.Encoders() {
			score, _, err := r.EvaluateQualityConstrained(scoring.Popular, c, eng, codec.RCBitrate)
			if err != nil {
				t.Fatal(err)
			}
			if score.Valid {
				t.Errorf("%s produced a valid Popular transcode on %s (B=%.2f Q=%.3f)",
					encName, name, score.Ratios.B, score.Ratios.Q)
			}
		}
	}
}

func TestUploadStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all clips")
	}
	r := tiny()
	tab, err := r.UploadStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15*3 {
		t.Errorf("upload study has %d rows, want 45", len(tab.Rows))
	}
}

func TestPlatformStudyScoresValid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all clips")
	}
	r := tiny()
	tab, err := r.PlatformStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] == "-" {
			t.Errorf("platform row %v has invalid score", row)
		}
	}
	// The overclocked platform must show S = 4.5/4.0 = 1.125 exactly.
	found := false
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "4.5GHz") {
			found = true
			if row[2] != "1.12" && row[2] != "1.13" {
				t.Errorf("overclock S = %s, want 1.12 or 1.13", row[2])
			}
		}
	}
	if !found {
		t.Error("no overclocked platform row")
	}
}

func TestFigure2Shape(t *testing.T) {
	r := tiny()
	_, points, err := r.Figure2("bike", []float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points, want 6 (3 encoders x 2 bitrates)", len(points))
	}
	// For each encoder, the higher bitrate point must have higher PSNR.
	byEnc := map[string][]RDPoint{}
	for _, p := range points {
		byEnc[p.Encoder] = append(byEnc[p.Encoder], p)
	}
	for enc, ps := range byEnc {
		if len(ps) != 2 {
			t.Fatalf("%s has %d points", enc, len(ps))
		}
		lo, hi := ps[0], ps[1]
		if lo.BitratePPS > hi.BitratePPS {
			lo, hi = hi, lo
		}
		if hi.PSNR <= lo.PSNR {
			t.Errorf("%s: PSNR not increasing with bitrate (%.2f@%.2f vs %.2f@%.2f)",
				enc, lo.PSNR, lo.BitratePPS, hi.PSNR, hi.BitratePPS)
		}
	}
}

func TestFigure1Static(t *testing.T) {
	tab := Figure1()
	if len(tab.Rows) != 11 {
		t.Errorf("figure 1 has %d rows", len(tab.Rows))
	}
}

func TestFigure4Static(t *testing.T) {
	tab, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Errorf("figure 4 has %d rows, want 6 suites", len(tab.Rows))
	}
}

func TestUArchStudySmall(t *testing.T) {
	r := tiny()
	points, err := r.UArchStudy([]corpus.Suite{corpus.SuiteSPEC17})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Profile.ICacheMPKI < 0 || p.Entropy <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	// Figures render from points.
	if _, err := Figure5(points); err != nil {
		t.Errorf("figure5: %v", err)
	}
	if _, err := Figure6(points); err != nil {
		t.Errorf("figure6: %v", err)
	}
	if _, err := Figure7(points); err != nil {
		t.Errorf("figure7: %v", err)
	}
}

func TestFigure8Rows(t *testing.T) {
	r := tiny()
	tab, rows, err := r.Figure8("bike")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d ladder rows, want 7", len(rows))
	}
	// Totals normalized to AVX2: last row ≈ 1, monotone decreasing.
	last := rows[len(rows)-1]
	if last.Total < 0.999 || last.Total > 1.001 {
		t.Errorf("AVX2 build total = %v, want 1", last.Total)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Total > rows[i-1].Total*1.0001 {
			t.Errorf("ladder total rose at %v", rows[i].ISA)
		}
	}
	if len(tab.Rows) != 7 {
		t.Errorf("table has %d rows", len(tab.Rows))
	}
}

func TestAblationStudy(t *testing.T) {
	r := tiny()
	tab, err := r.AblationStudy("bike")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Errorf("ablation has %d rows", len(tab.Rows))
	}
	// First row is the full tool set: 100% bits, 100% time.
	if tab.Rows[0][1] != "100.0" || tab.Rows[0][3] != "100.0" {
		t.Errorf("baseline row = %v", tab.Rows[0])
	}
}

func TestRealTimeBarUsesNativeGeometry(t *testing.T) {
	r := tiny()
	c := clip(t, "chicken")
	bar := r.RealTimeBar(c)
	want := 3840 * 2160 * 30.0 / 1e6
	if bar != want {
		t.Errorf("real-time bar %v, want %v", bar, want)
	}
}

func TestISASweepStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all clips")
	}
	r := tiny()
	tab, err := r.ISASweepStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d ISA rows", len(tab.Rows))
	}
	// First row is scalar (speedup 1), later rows non-decreasing.
	if tab.Rows[0][1] != "1.00" {
		t.Errorf("scalar speedup cell = %q", tab.Rows[0][1])
	}
}

func TestDecodeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all clips")
	}
	r := tiny()
	tab, err := r.DecodeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestFigure2BDRateNotes(t *testing.T) {
	r := tiny()
	tab, _, err := r.Figure2("bike", []float64{0.3, 0.8, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, n := range tab.Notes {
		if strings.Contains(n, "BD-rate") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("expected 2 BD-rate notes, got %d (notes: %v)", found, tab.Notes)
	}
}

func TestEvaluateAtBitrateFixedRate(t *testing.T) {
	r := tiny()
	c := clip(t, "bike")
	target, err := r.TargetBitrate(c)
	if err != nil {
		t.Fatal(err)
	}
	score, m, err := r.EvaluateAtBitrate(scoring.Live, c, hw.NVENC(), codec.RCBitrate, target)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no measurement")
	}
	if score.Ratios.B <= 0 || score.Ratios.Q <= 0 {
		t.Errorf("bad ratios %+v", score.Ratios)
	}
	// At the same target bitrate the compression ratio should be near 1.
	if score.Ratios.B < 0.5 || score.Ratios.B > 2 {
		t.Errorf("iso-target B = %.2f far from 1", score.Ratios.B)
	}
}

func TestTable2Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("encodes all 15 clips")
	}
	r := tiny()
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestClipEntropyCached(t *testing.T) {
	r := tiny()
	c := clip(t, "bike")
	a, err := r.ClipEntropy(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ClipEntropy(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 {
		t.Errorf("entropy cache broken: %v vs %v", a, b)
	}
}

func TestRunnerProgressWriter(t *testing.T) {
	var sb strings.Builder
	r := tiny()
	r.Progress = &sb
	c := clip(t, "bike")
	if _, err := r.Reference(scoring.Upload, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reference") {
		t.Error("progress writer received no output")
	}
}

func TestFigure9FromRows(t *testing.T) {
	r := tiny()
	c := clip(t, "bike")
	score, _, err := r.EvaluateQualityConstrained(scoring.VOD, c, hw.NVENC(), codec.RCBitrate)
	if err != nil {
		t.Fatal(err)
	}
	rows := []ScenarioRow{{Clip: c, Scores: map[string]scoring.Score{"NVENC": score, "QSV": score}}}
	tab := Figure9(rows, rows)
	if len(tab.Rows) != 2 {
		t.Errorf("figure 9 rows = %d", len(tab.Rows))
	}
}
