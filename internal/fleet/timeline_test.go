package fleet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vbench/internal/telemetry"
)

// simOptionsTL mirrors sim_test's options with a fresh registry per
// run, so repeated runs are fully isolated.
func simOptionsTL() Options {
	return Options{
		Metrics:     telemetry.NewRegistry(),
		LeaseTTL:    5 * time.Second,
		MaxAttempts: 3,
		BackoffBase: time.Second,
		BackoffMax:  8 * time.Second,
	}
}

// TestSimTimelinesByteIdentical pins the determinism acceptance
// criterion: with the new instrumentation enabled, repeated sim runs
// of the same configuration produce byte-identical event timelines.
func TestSimTimelinesByteIdentical(t *testing.T) {
	run := func() string {
		s := NewSim(SimConfig{Workers: 3, Queue: simOptionsTL(), Model: hashFaultModel})
		for i := 0; i < 40; i++ {
			s.SubmitAt(time.Duration(i)*100*time.Millisecond, JobSpec{Kind: KindNoop, Tag: "tl"}, nil)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Timelines()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("sim produced no timeline events")
	}
	if a != b {
		t.Fatalf("timelines differ across identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "job=1 seq=1 t=0.000 none>pending reason=submit attempt=0 worker=-") {
		t.Errorf("timeline missing the submit event of job 1:\n%s", a)
	}
}

// TestTimelineRecordsLifecycle checks the event ring's contents for a
// retried job: submit, lease, transient failure, re-lease, completion,
// with attempts and workers attached.
func TestTimelineRecordsLifecycle(t *testing.T) {
	q, clk := simQueue(Options{BackoffBase: time.Second})
	id, err := q.Submit(noopSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Lease("w1"); !ok {
		t.Fatal("lease failed")
	}
	if err := q.Fail(id, 1, "w1", false, "boom"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(clk.Now().Add(2 * time.Second))
	if _, ok := q.Lease("w2"); !ok {
		t.Fatal("re-lease failed")
	}
	if _, err := q.Complete(id, 2, "w2", Result{}); err != nil {
		t.Fatal(err)
	}

	events, dropped, err := q.Timeline(id)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	want := []string{
		"none>pending reason=submit attempt=0 worker=-",
		"pending>leased reason=lease attempt=1 worker=w1",
		"leased>pending reason=transient_error attempt=1 worker=w1",
		"pending>leased reason=lease attempt=2 worker=w2",
		"leased>done reason=complete attempt=2 worker=w2",
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(events), len(want), events)
	}
	for i, e := range events {
		if !strings.Contains(e.String(), want[i]) {
			t.Errorf("event %d = %q, want containing %q", i, e.String(), want[i])
		}
		if int64(i)+1 != e.Seq {
			t.Errorf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
}

// TestTimelineRingBounded drives one job through enough retries to
// overflow the ring and checks the drop accounting.
func TestTimelineRingBounded(t *testing.T) {
	q, clk := simQueue(Options{MaxAttempts: 40, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond})
	id, err := q.Submit(noopSpec())
	if err != nil {
		t.Fatal(err)
	}
	for {
		j, ok := q.Lease("w1")
		if !ok {
			clk.Advance(clk.Now().Add(10 * time.Millisecond))
			j, ok = q.Lease("w1")
			if !ok {
				break // job reached a terminal state
			}
		}
		if err := q.Fail(id, j.Attempt, "w1", false, "always failing"); err != nil {
			t.Fatal(err)
		}
	}
	events, dropped, err := q.Timeline(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != timelineCap {
		t.Fatalf("ring holds %d events, want %d", len(events), timelineCap)
	}
	if dropped == 0 {
		t.Fatal("expected dropped events after 40 attempts")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("seq not strictly increasing: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	last := events[len(events)-1]
	if last.To != "failed" {
		t.Errorf("last event is %s>%s, want a terminal failed transition", last.From, last.To)
	}
}

// TestTimelineSurvivesSnapshotRestore checks that job timelines and
// the queue-wide sequence ride through snapshot/restore, and that
// post-restore events extend the timeline monotonically.
func TestTimelineSurvivesSnapshotRestore(t *testing.T) {
	q, clk := simQueue(Options{})
	id, err := q.Submit(noopSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Lease("w1"); !ok {
		t.Fatal("lease failed")
	}
	before, _, err := q.Timeline(id)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := q.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Restore(&buf, Options{Clock: clk, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	after, dropped, err := q2.Timeline(id)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d after restore, want 0", dropped)
	}
	if len(after) != len(before) {
		t.Fatalf("restored timeline has %d events, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Errorf("event %d changed across restore: %+v != %+v", i, after[i], before[i])
		}
	}

	// New activity continues the sequence past the restored maximum.
	clk.Advance(clk.Now().Add(time.Second))
	if _, err := q2.Complete(id, 1, "w1", Result{}); err != nil {
		t.Fatal(err)
	}
	events, _, err := q2.Timeline(id)
	if err != nil {
		t.Fatal(err)
	}
	last, prev := events[len(events)-1], events[len(events)-2]
	if last.Seq <= prev.Seq {
		t.Fatalf("post-restore seq %d does not extend restored seq %d", last.Seq, prev.Seq)
	}
	if last.T < prev.T {
		t.Fatalf("post-restore timestamp %.3f went backwards from %.3f", last.T, prev.T)
	}
}
