// Package policy is the storage-vs-compute decision layer over the
// content-addressed transcode cache: given a catalogue of cached
// renditions and the power-law popularity of their source videos, a
// retention policy decides which entries are worth their bytes and
// which are cheaper to re-transcode on the next request.
//
// The trade is the one Darwich et al. (arXiv:2012.00597) price out for
// cloud video: storing a rendition costs bytes × $/byte·s for as long
// as it sits idle, re-transcoding costs encode-seconds × $/CPU·s every
// time it is requested uncached. Popular renditions are requested so
// often that storage always wins; deep-tail renditions may see their
// next request months out, and the storage rent until then exceeds one
// re-encode. The break-even rank depends on the popularity curve —
// which the corpus package already models after Cha et al.
//
// Policies are evaluated offline by a deterministic request-stream
// simulator (Simulate), so `vbench -cache-policy` sweeps report
// reproducible hit ratios, re-transcode compute, and storage
// footprints without touching a real store.
package policy

import (
	"fmt"

	"vbench/internal/corpus"
)

// Rendition is one cacheable transcode output in the catalogue: a
// (video, ladder rung) pair with its storage and recompute costs.
type Rendition struct {
	// ID names the rendition, e.g. "girl/720p-x264-medium".
	ID string
	// Bytes is the stored bitstream size.
	Bytes int64
	// EncodeSeconds is the compute cost of regenerating it.
	EncodeSeconds float64
	// Rank is the source video's popularity rank (1 = most watched);
	// every rung of one video shares its rank.
	Rank int
}

// Policy decides what the cache retains. The simulator consults Admit
// after every miss (store the fresh result, or serve-and-drop?) and
// enforces CapBytes by least-recently-used eviction.
type Policy interface {
	Name() string
	// Admit reports whether r is worth storing at all.
	Admit(r Rendition, w Workload) bool
	// CapBytes bounds total stored bytes; 0 means unbounded.
	CapBytes() int64
}

// KeepAll stores every rendition forever: the hit-ratio upper bound
// and the storage-cost worst case.
type KeepAll struct{}

// Name implements Policy.
func (KeepAll) Name() string { return "keep-all" }

// Admit implements Policy: everything is stored.
func (KeepAll) Admit(Rendition, Workload) bool { return true }

// CapBytes implements Policy: unbounded.
func (KeepAll) CapBytes() int64 { return 0 }

// LRUBytes stores everything under a byte budget, evicting the least
// recently used rendition when the budget overflows.
type LRUBytes struct {
	// Cap is the storage budget in bytes.
	Cap int64
}

// Name implements Policy.
func (p LRUBytes) Name() string { return fmt.Sprintf("lru-%s", humanBytes(p.Cap)) }

// Admit implements Policy: admission is unconditional; the cap does
// the filtering.
func (LRUBytes) Admit(Rendition, Workload) bool { return true }

// CapBytes implements Policy.
func (p LRUBytes) CapBytes() int64 { return p.Cap }

// CostAware prices each rendition's retention against its recompute,
// following the Darwich et al. model: a rendition at popularity rank k
// is requested on average every Δ(k) = 1/(rate·share(k)) seconds, so
// keeping it rents Bytes·StoragePrice·Δ(k) between requests, while
// dropping it costs EncodeSeconds·ComputePrice per request. Store iff
// the rent is cheaper.
type CostAware struct {
	// StoragePricePerByteSecond is the storage rent ($/byte·s).
	StoragePricePerByteSecond float64
	// ComputePricePerSecond is the encode cost ($/CPU·s).
	ComputePricePerSecond float64
}

// Name implements Policy.
func (CostAware) Name() string { return "cost-aware" }

// Admit implements Policy: keep iff storage-until-next-request costs
// less than one re-transcode.
func (p CostAware) Admit(r Rendition, w Workload) bool {
	share := w.share(r.Rank)
	if share <= 0 || w.RequestsPerSec <= 0 {
		return false // never requested again: storing is pure rent
	}
	interval := 1 / (w.RequestsPerSec * share)
	storageCost := float64(r.Bytes) * p.StoragePricePerByteSecond * interval
	recomputeCost := r.EncodeSeconds * p.ComputePricePerSecond
	return storageCost < recomputeCost
}

// CapBytes implements Policy: the cost model is the only bound.
func (CostAware) CapBytes() int64 { return 0 }

// DefaultCostAware prices storage and compute at ratios resembling
// public-cloud object storage ($0.02/GB·month) against on-demand CPU
// ($0.05/CPU·hour) — the regime the paper's economics discussion and
// Darwich et al. both consider, where the head of the catalogue is
// always stored and the deep tail is always recomputed.
func DefaultCostAware() CostAware {
	const gbMonth = 0.02
	const cpuHour = 0.05
	return CostAware{
		StoragePricePerByteSecond: gbMonth / 1e9 / (30 * 24 * 3600),
		ComputePricePerSecond:     cpuHour / 3600,
	}
}

// Workload is the request stream a policy is judged against.
type Workload struct {
	// Renditions is the catalogue, each carrying its popularity rank.
	Renditions []Rendition
	// Model shapes the request distribution over ranks.
	Model corpus.PopularityModel
	// Requests is the stream length.
	Requests int
	// RequestsPerSec converts the stream to virtual time (storage
	// rent and inter-request intervals need a clock).
	RequestsPerSec float64
	// Seed makes the sampled stream reproducible.
	Seed int64

	// Lazily computed popularity normalization.
	rankCount   map[int]int
	totalWeight float64
}

// share returns the fraction of requests hitting one rendition at the
// given popularity rank: a video draws Weight(rank) of the watch mass
// and its ladder rungs split that evenly.
func (w *Workload) share(rank int) float64 {
	if w.rankCount == nil {
		w.rankCount = map[int]int{}
		for _, r := range w.Renditions {
			w.rankCount[r.Rank]++
		}
		for rk := range w.rankCount {
			w.totalWeight += w.Model.Weight(rk)
		}
	}
	n := w.rankCount[rank]
	if n == 0 || w.totalWeight == 0 {
		return 0
	}
	return w.Model.Weight(rank) / w.totalWeight / float64(n)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
