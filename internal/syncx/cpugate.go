package syncx

import "runtime"

// CPUGate is a counting semaphore that bounds how many CPU-bound
// workers run at once. The process shares one instance (CPU below)
// between the harness worker pool, the codec's slice encoders, the
// wavefront row workers inside each slice, and the cross-frame
// analysis feeder, so nested parallelism — a pool of grid cells, each
// encoding with multiple slices, each slice fanning rows out across
// lanes while the next frame's analysis runs ahead — cannot
// oversubscribe the machine: no matter how the layers compose, at
// most capacity goroutines do codec work concurrently.
//
// Tokens are modeled as elements in a buffered channel: Acquire sends
// (blocking while capacity holders exist), Release receives. The gate
// only throttles scheduling; it never affects outputs — payloads and
// counters are merged in deterministic order by their owners.
//
// Composition rule: a goroutine that already holds a slot (or that
// represents its caller's own thread of execution, like an Encode
// invocation) must never block on the gate while others depend on it
// — it should do queued work itself and let extra helpers join via
// AcquireOrQuit. Blocking waits while holding are what deadlock
// counting semaphores at small capacities. Every gate user follows
// this shape: the slice fan-out drains its own queue, a wavefront
// slice goroutine claims rows itself while helper lanes AcquireOrQuit
// per row batch, and the frame feeder releases its slot before ever
// waiting for ring space — so at capacity 1 each layer degrades to
// its serial path instead of deadlocking.
type CPUGate struct {
	tokens chan struct{}
}

// NewCPUGate returns a gate admitting up to capacity concurrent
// holders; non-positive capacity selects runtime.GOMAXPROCS(0).
func NewCPUGate(capacity int) *CPUGate {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	return &CPUGate{tokens: make(chan struct{}, capacity)}
}

// Capacity reports the maximum number of concurrent holders.
func (g *CPUGate) Capacity() int { return cap(g.tokens) }

// Acquire blocks until a slot is free and takes it.
func (g *CPUGate) Acquire() { g.tokens <- struct{}{} }

// Release frees a slot taken by Acquire or AcquireOrQuit.
func (g *CPUGate) Release() { <-g.tokens }

// AcquireOrQuit blocks until it takes a slot (reporting true) or
// until quit is closed (reporting false; no slot is held). It exists
// for helper goroutines whose work can equally be done by their
// spawner: the spawner processes the shared queue itself, closes quit
// when the queue is drained, and helpers that never got a slot simply
// exit. That shape keeps the gate deadlock-free under nesting — a
// goroutine that already holds a slot never blocks on the gate again
// (it participates in the work instead of waiting idle), so there is
// no hold-and-wait cycle at any capacity.
func (g *CPUGate) AcquireOrQuit(quit <-chan struct{}) bool {
	select {
	case g.tokens <- struct{}{}:
		return true
	case <-quit:
		return false
	}
}

// CPU is the process-wide gate for CPU-bound benchmark work, sized to
// runtime.GOMAXPROCS(0) at startup.
var CPU = NewCPUGate(0)
