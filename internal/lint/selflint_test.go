package lint_test

import (
	"testing"

	"vbench/internal/lint"
	"vbench/internal/lint/analysis"
)

// TestRepositoryIsLintClean runs every project analyzer over the whole
// repository and fails on any finding, so `make check` (via go test)
// guards the invariants even when `make lint` is not invoked directly.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.ModuleDir(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := analysis.Load(root, nil, "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	diags, err := analysis.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
