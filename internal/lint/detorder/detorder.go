// Package detorder guards the repository's byte-identical-output
// invariant (ROADMAP tier-1, PR 1): scoring runs must be
// deterministic at any worker count.
//
// It reports two hazard classes:
//
//  1. A `range` over a map whose body reaches an output sink
//     (fmt printing, Write* methods, table rows, span args) emits in
//     Go's randomized map order. Collecting into a slice is accepted
//     only when the slice is passed to a sort call later in the same
//     function.
//  2. Wall-clock and math/rand calls inside the deterministic
//     packages (codec, scoring, cluster, video) steer output unless
//     they are telemetry-gated: dominated by a
//     telemetry.StagesEnabled() condition (directly or via a local
//     bool assigned from it), guarded by a nil check on a stage-times
//     accumulator (a struct of time.Time/time.Duration fields), or
//     inside a method of such an accumulator.
//
// Test files are exempt; deliberate exceptions use
// //lint:ignore detorder <reason>.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vbench/internal/lint/analysis"
)

// Analyzer is the detorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flags nondeterministic map iteration feeding output and ungated clock/rand use in deterministic packages",
	Run:  run,
}

// DeterministicPaths marks the packages whose computation must not
// observe wall-clock time or global randomness (matched by substring
// of the import path).
var DeterministicPaths = []string{
	"internal/codec",
	"internal/scoring",
	"internal/cluster",
	"internal/video",
}

func run(pass *analysis.Pass) error {
	deterministic := false
	for _, p := range DeterministicPaths {
		if strings.Contains(pass.Pkg.Path(), p) {
			deterministic = true
			break
		}
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkMapRanges(pass, file)
		if deterministic {
			checkClocks(pass, file)
		}
	}
	return nil
}

// checkMapRanges finds range-over-map loops whose bodies leak the
// iteration order into output.
func checkMapRanges(pass *analysis.Pass, file *ast.File) {
	// Walk per enclosing function so the sorted-later check has a
	// scope to search.
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkOneRange(pass, body, rs)
			return true
		})
		return false // inner Inspect already descended
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkOneRange classifies the loop body's effects: a direct output
// sink is always a finding; escaping appends are findings unless the
// target slice is sorted later in funcBody.
func checkOneRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	mapName := types.ExprString(rs.X)
	var appendTargets []types.Object
	reported := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := sinkCall(pass.TypesInfo, n); ok {
				pass.Reportf(rs.For, "iteration over map %s reaches output sink %s in random order; iterate sorted keys instead", mapName, name)
				reported = true
				return false
			}
		case *ast.AssignStmt:
			for _, obj := range appendedOuterVars(pass.TypesInfo, n, rs) {
				appendTargets = append(appendTargets, obj)
			}
		}
		return true
	})
	if reported {
		return
	}
	for _, obj := range appendTargets {
		if !sortedAfter(pass.TypesInfo, funcBody, obj, rs.End()) {
			pass.Reportf(rs.For, "map %s is ranged into slice %s which is never sorted; output depends on map iteration order", mapName, obj.Name())
			return
		}
	}
}

// sinkCall reports whether call writes ordered output, returning a
// display name for the sink.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		// Package-level printers.
		if analysis.FromPath(fn, "fmt") {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, true
			}
		}
		return "", false
	}
	// Methods: stream writers, the tables sink, span args, JSON
	// encoding. These serialize in call order, so map order escapes.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
		return fn.FullName(), true
	case "AddRow", "AddRowf", "AddNote": // internal/tables
		return fn.FullName(), true
	case "Arg": // telemetry span annotations render in insertion order
		if analysis.FromPackage(fn, "telemetry") {
			return fn.FullName(), true
		}
	case "Encode":
		if analysis.FromPath(fn, "encoding/json") {
			return fn.FullName(), true
		}
	case "Printf", "Print", "Println":
		return fn.FullName(), true
	}
	return "", false
}

// appendedOuterVars returns the variables declared outside the range
// loop that assign receives an append(...) into.
func appendedOuterVars(info *types.Info, assign *ast.AssignStmt, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(assign.Lhs) <= i {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			continue // shadowed by a user identifier
		}
		lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		if obj == nil || obj.Pos() == token.NoPos {
			continue
		}
		if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
			out = append(out, obj)
		}
	}
	return out
}

// sortedAfter reports whether obj appears as (part of) an argument to
// a sort or slices call positioned after pos within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// checkClocks flags wall-clock and math/rand calls that are not
// telemetry-gated.
func checkClocks(pass *analysis.Pass, file *ast.File) {
	gateVars := collectGateVars(pass, file)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !isClockOrRand(fn) {
			return true
		}
		if gated(pass, stack, call, gateVars) {
			return true
		}
		pass.Reportf(call.Pos(), "%s in deterministic package %s outside a telemetry gate; guard with telemetry.StagesEnabled() or a stage-times nil check", fn.FullName(), pass.Pkg.Name())
		return true
	})
}

func isClockOrRand(fn *types.Func) bool {
	if analysis.FromPath(fn, "time") {
		switch fn.Name() {
		case "Now", "Since", "Until":
			return true
		}
		return false
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			return true
		}
	}
	return false
}

// collectGateVars finds local bools assigned from
// telemetry.StagesEnabled(), e.g. `stagesOn := telemetry.StagesEnabled()`.
func collectGateVars(pass *analysis.Pass, file *ast.File) map[types.Object]bool {
	gates := map[types.Object]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isStagesEnabled(pass.TypesInfo, call) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					gates[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					gates[obj] = true
				}
			}
		}
		return true
	})
	return gates
}

func isStagesEnabled(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Name() == "StagesEnabled" && analysis.FromPackage(fn, "telemetry")
}

// gated walks the enclosing-node stack looking for a telemetry gate
// that dominates the call.
func gated(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr, gateVars map[types.Object]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// The condition itself is evaluated unconditionally; only
			// the branches are gated.
			if !within(call, n.Cond) && condGates(pass, n.Cond, gateVars) {
				return true
			}
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) == 1 &&
				isAccumulator(pass.TypesInfo.TypeOf(n.Recv.List[0].Type)) {
				return true
			}
		}
	}
	return false
}

func within(n ast.Node, outer ast.Expr) bool {
	return outer != nil && n.Pos() >= outer.Pos() && n.End() <= outer.End()
}

// condGates reports whether cond contains a telemetry gate term: a
// StagesEnabled() call, a bool derived from one, or a nil comparison
// of a stage-times accumulator.
func condGates(pass *analysis.Pass, cond ast.Expr, gateVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isStagesEnabled(pass.TypesInfo, n) {
				found = true
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && gateVars[obj] {
				found = true
			}
		case *ast.BinaryExpr:
			if n.Op == token.NEQ || n.Op == token.EQL {
				for _, side := range []ast.Expr{n.X, n.Y} {
					if isAccumulator(pass.TypesInfo.TypeOf(side)) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isAccumulator matches pointers to structs whose fields are all
// time.Time or time.Duration — the shape of a per-slice stage-times
// accumulator, which only exists when stage clocks were requested.
func isAccumulator(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Type().String() {
		case "time.Time", "time.Duration":
		default:
			return false
		}
	}
	return true
}
