// Package harness orchestrates complete vbench runs: it synthesizes
// the benchmark clips, produces the reference transcodes each scenario
// is scored against, evaluates candidate encoders under the scenario
// constraints (with bitrate bisection where the paper uses it), and
// regenerates every table and figure of the paper's evaluation.
package harness

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"vbench/internal/cas"
	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/metrics"
	"vbench/internal/scoring"
	"vbench/internal/syncx"
	"vbench/internal/telemetry"
	"vbench/internal/video"
)

// Runner executes benchmark workloads at a configurable scale. Scale
// divides clip resolution linearly (1 = the paper's native sizes);
// Duration truncates clips (the paper uses 5-second chunks). All
// vbench metrics are normalized per pixel per second, so scores are
// comparable across scales; EXPERIMENTS.md records the scale used for
// each reported run.
//
// A Runner is safe for concurrent use: its memoization caches have
// per-key singleflight semantics (each sequence, entropy, target
// bitrate, and reference transcode is computed exactly once no matter
// how many goroutines race for it), and the grid methods in
// experiments.go/studies.go fan their cells out across a bounded
// worker pool while aggregating results in grid order, so parallel
// output is byte-identical to serial output.
type Runner struct {
	// Scale is the linear resolution divisor (default 8).
	Scale int
	// Duration is the clip length in seconds (default 1).
	Duration float64
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
	// Workers bounds how many benchmark-grid cells evaluate
	// concurrently; non-positive selects runtime.GOMAXPROCS(0). Set
	// it before the first grid method runs — the pool is built lazily
	// on first use and then fixed for the Runner's lifetime.
	Workers int
	// Cache, when non-nil, backs every encode with the persistent
	// content-addressed transcode cache: hits skip the encoder
	// entirely, so a re-run over unchanged inputs performs zero
	// encodes while producing byte-identical results. Set it before
	// the Runner runs (cmd/vbench -cache-dir).
	Cache *cas.Store

	logMu    sync.Mutex
	poolOnce sync.Once
	p        *Pool

	seqs    syncx.Memo[string, *video.Sequence]
	targets syncx.Memo[string, float64]
	refs    syncx.Memo[string, *Measured]
	entropy syncx.Memo[string, float64]
	digests syncx.Memo[*video.Sequence, string]

	encodes atomic.Int64
}

// NewRunner returns a Runner at the given scale and duration;
// non-positive arguments select the defaults.
func NewRunner(scale int, duration float64) *Runner {
	if scale <= 0 {
		scale = 8
	}
	if duration <= 0 {
		duration = 1.0
	}
	return &Runner{Scale: scale, Duration: duration}
}

// pool returns the Runner's worker pool, building it on first use.
// When Progress is a telemetry.LineWriter, pool workers bind their
// worker id to it so every progress line carries the id of the worker
// that produced it.
func (r *Runner) pool() *Pool {
	r.poolOnce.Do(func() {
		r.p = NewPool(r.Workers)
		if lw, ok := r.Progress.(*telemetry.LineWriter); ok {
			r.p.BindWorker = func(w int) func() {
				lw.Bind(fmt.Sprintf("w%d", w))
				return lw.Unbind
			}
		}
	})
	return r.p
}

// RegisterMetrics exposes the Runner's cache effectiveness in reg as
// gauge functions (harness.memo.<cache>.{hits,misses,inflight}),
// making the singleflight exactly-once guarantee observable: for each
// cache, misses equal the unique keys computed no matter how many
// workers raced for them. The first Runner to register a name wins;
// the per-process binaries build one Runner, so in practice the gauges
// track it.
func (r *Runner) RegisterMetrics(reg *telemetry.Registry) {
	memos := []struct {
		name  string
		stats func() syncx.MemoStats
	}{
		{"seqs", r.seqs.Stats},
		{"targets", r.targets.Stats},
		{"refs", r.refs.Stats},
		{"entropy", r.entropy.Stats},
	}
	for _, m := range memos {
		stats := m.stats
		base := "harness.memo." + m.name
		reg.GaugeFunc(base+".hits", func() float64 { return float64(stats().Hits) })
		reg.GaugeFunc(base+".misses", func() float64 { return float64(stats().Misses) })
		reg.GaugeFunc(base+".inflight", func() float64 { return float64(stats().Inflight) })
	}
}

// PoolStats returns the per-worker cell counts and busy times
// accumulated by every grid method run so far (nil if no grid has
// run yet).
func (r *Runner) PoolStats() []WorkerStats {
	if r.p == nil {
		return nil
	}
	return r.p.Stats()
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Progress != nil {
		r.logMu.Lock()
		fmt.Fprintf(r.Progress, format+"\n", args...)
		r.logMu.Unlock()
	}
}

// Sequence returns the synthesized (and cached) sequence for a clip.
func (r *Runner) Sequence(c corpus.Clip) (*video.Sequence, error) {
	return r.seqs.Do(c.Name, func() (*video.Sequence, error) {
		s, err := c.Generate(r.Scale, r.Duration)
		if err != nil {
			return nil, fmt.Errorf("harness: generating %s: %w", c.Name, err)
		}
		return s, nil
	})
}

// Measured couples a scoring measurement with the encode that
// produced it.
type Measured struct {
	scoring.Measurement
	Result *codec.Result
}

// Encodes reports how many real encoder invocations the Runner has
// performed (cache hits excluded) — the observable behind the
// incremental-run guarantee that a warm re-run encodes nothing.
func (r *Runner) Encodes() int64 { return r.encodes.Load() }

// encode is the single encoder entry point of the harness: every
// Measure, reference, target-bitrate, and entropy encode funnels
// through it, so installing a Cache makes the whole grid incremental
// at once. Without a cache it computes directly; with one it looks
// the key up through the memory and disk tiers first.
func (r *Runner) encode(eng *codec.Engine, seq *video.Sequence, cfg codec.Config) (*cas.Outcome, error) {
	compute := func() (*cas.Outcome, error) {
		r.encodes.Add(1)
		return cas.Compute(eng, seq, cfg)
	}
	if r.Cache == nil {
		return compute()
	}
	// The pixel digest is content-addressed but costs a pass over the
	// sequence; memoize it per materialized sequence.
	content, err := r.digests.Do(seq, func() (string, error) {
		return cas.ContentDigest(seq), nil
	})
	if err != nil {
		return nil, err
	}
	key := cas.KeyParts{
		Content:     content,
		Tools:       eng.Tools,
		Config:      cfg,
		Fingerprint: cas.Fingerprint(),
	}.Key()
	return r.Cache.GetOrCompute(key, compute)
}

// Measure encodes seq with eng under cfg and converts the outcome to
// the three normalized vbench measurements. The engine must carry a
// cost model (speed is modeled deterministically; see DESIGN.md).
func (r *Runner) Measure(eng *codec.Engine, seq *video.Sequence, cfg codec.Config) (*Measured, error) {
	if eng.Model == nil {
		return nil, fmt.Errorf("harness: engine %s has no cost model", eng.Tools.Name)
	}
	out, err := r.encode(eng, seq, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: encode with %s: %w", eng.Tools.Name, err)
	}
	bitrate, err := metrics.Bitrate(int64(len(out.Bitstream)), seq.Width(), seq.Height(), seq.Duration())
	if err != nil {
		return nil, err
	}
	speed, err := metrics.Speed(seq.PixelCount(), out.Seconds)
	if err != nil {
		return nil, err
	}
	return &Measured{
		Measurement: scoring.Measurement{SpeedMPS: speed, BitratePPS: bitrate, PSNR: out.PSNR},
		Result:      out.Result(),
	}, nil
}

// ClipEntropy measures (and caches) a clip's content entropy in
// bits/pixel/s, per the paper's CRF-18 definition. Concurrent callers
// share a single measurement per clip.
func (r *Runner) ClipEntropy(c corpus.Clip) (float64, error) {
	return r.entropy.Do(c.Name, func() (float64, error) {
		seq, err := r.Sequence(c)
		if err != nil {
			return 0, err
		}
		// The paper's operational entropy definition is the reference
		// encoder's bitrate at visually lossless constant quality;
		// routing the encode through r.encode makes it cacheable like
		// any other (corpus.MeasureEntropy computes the same value).
		out, err := r.encode(profiles.X264(codec.PresetMedium), seq, codec.Config{RC: codec.RCConstQP, QP: corpus.EntropyQP})
		if err != nil {
			return 0, fmt.Errorf("corpus: entropy measurement encode: %w", err)
		}
		e, err := metrics.Bitrate(int64(len(out.Bitstream)), seq.Width(), seq.Height(), seq.Duration())
		if err != nil {
			return 0, err
		}
		r.logf("entropy %-14s %.3f bit/pix/s (paper %.1f)", c.Name, e, c.PaperEntropy)
		return e, nil
	})
}

// TargetBitrate returns the clip's service operating point in bits
// per second: the rate the reference encoder produces at the standard
// distribution quality (QP 30), which stands in for the per-format
// bitrate ladder of a real video service.
func (r *Runner) TargetBitrate(c corpus.Clip) (float64, error) {
	return r.targets.Do(c.Name, func() (float64, error) {
		seq, err := r.Sequence(c)
		if err != nil {
			return 0, err
		}
		out, err := r.encode(profiles.X264(codec.PresetMedium), seq, codec.Config{RC: codec.RCConstQP, QP: 30})
		if err != nil {
			return 0, err
		}
		return float64(len(out.Bitstream)) * 8 / seq.Duration(), nil
	})
}

// livePreset picks the software effort level for the Live reference:
// effort is inversely proportional to resolution so the reference
// meets the real-time constraint, as the paper specifies.
func livePreset(kpixels int) codec.Preset {
	switch {
	case kpixels <= 500:
		return codec.PresetFast
	case kpixels <= 1100:
		return codec.PresetVeryFast
	case kpixels <= 2500:
		return codec.PresetVeryFast
	default:
		return codec.PresetUltraFast
	}
}

// Reference produces (and caches) the reference transcode for a
// scenario and clip, per Section 4.2:
//
//	Upload:   single-pass constant quality (QP 20, medium preset)
//	Live:     single-pass target bitrate, effort inverse to resolution
//	VOD:      two-pass target bitrate, medium preset
//	Platform: same reference as VOD
//	Popular:  two-pass target bitrate, veryslow preset
func (r *Runner) Reference(s scoring.Scenario, c corpus.Clip) (*Measured, error) {
	key := fmt.Sprintf("%s/%s", s, c.Name)
	return r.refs.Do(key, func() (*Measured, error) {
		seq, err := r.Sequence(c)
		if err != nil {
			return nil, err
		}
		var m *Measured
		switch s {
		case scoring.Upload:
			m, err = r.Measure(profiles.X264(codec.PresetMedium), seq, codec.Config{RC: codec.RCConstQP, QP: 20})
		case scoring.Live:
			target, terr := r.TargetBitrate(c)
			if terr != nil {
				return nil, terr
			}
			m, err = r.Measure(profiles.X264(livePreset(c.KPixels())), seq, codec.Config{RC: codec.RCBitrate, BitrateBPS: target})
		case scoring.VOD, scoring.Platform:
			target, terr := r.TargetBitrate(c)
			if terr != nil {
				return nil, terr
			}
			m, err = r.Measure(profiles.X264(codec.PresetMedium), seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: target})
		case scoring.Popular:
			target, terr := r.TargetBitrate(c)
			if terr != nil {
				return nil, terr
			}
			m, err = r.Measure(profiles.X264(codec.PresetVerySlow), seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: target})
		default:
			return nil, fmt.Errorf("harness: unknown scenario %v", s)
		}
		if err != nil {
			return nil, err
		}
		r.logf("reference %-8s %-14s S=%.2f Mpix/s  B=%.3f bit/pix/s  Q=%.2f dB",
			s, c.Name, m.SpeedMPS, m.BitratePPS, m.PSNR)
		return m, nil
	})
}

// RealTimeBar returns the Live scenario's hard speed requirement for
// a clip: the output pixel rate at NATIVE resolution (speed
// measurements are per-pixel normalized, so they are comparable
// across scales).
func (r *Runner) RealTimeBar(c corpus.Clip) float64 {
	return metrics.RealTimeSpeed(c.Width, c.Height, c.FrameRate)
}

// EvaluateAtBitrate measures a candidate at a fixed bitrate and scores
// it under a scenario.
func (r *Runner) EvaluateAtBitrate(s scoring.Scenario, c corpus.Clip, eng *codec.Engine, rc codec.RCMode, bitrateBPS float64) (scoring.Score, *Measured, error) {
	seq, err := r.Sequence(c)
	if err != nil {
		return scoring.Score{}, nil, err
	}
	ref, err := r.Reference(s, c)
	if err != nil {
		return scoring.Score{}, nil, err
	}
	m, err := r.Measure(eng, seq, codec.Config{RC: rc, BitrateBPS: bitrateBPS})
	if err != nil {
		return scoring.Score{}, nil, err
	}
	ratios, err := scoring.ComputeRatios(m.Measurement, ref.Measurement)
	if err != nil {
		return scoring.Score{}, nil, err
	}
	score := scoring.Evaluate(s, ratios, scoring.Constraint{
		CandidatePSNR:     m.PSNR,
		CandidateSpeedMPS: m.SpeedMPS,
		RealTimeMPS:       r.RealTimeBar(c),
	})
	return score, m, nil
}

// bisectIterations balances precision against encode count for the
// quality-constrained searches.
const bisectIterations = 6

// EvaluateQualityConstrained finds, by bisection, the lowest bitrate
// at which the candidate matches the reference quality "by a small
// margin" (the paper's GPU methodology), then scores it.
func (r *Runner) EvaluateQualityConstrained(s scoring.Scenario, c corpus.Clip, eng *codec.Engine, rc codec.RCMode) (scoring.Score, *Measured, error) {
	seq, err := r.Sequence(c)
	if err != nil {
		return scoring.Score{}, nil, err
	}
	ref, err := r.Reference(s, c)
	if err != nil {
		return scoring.Score{}, nil, err
	}
	refBPS := ref.BitratePPS * float64(seq.Width()*seq.Height())
	var last *Measured
	eval := func(bps float64) (float64, error) {
		m, merr := r.Measure(eng, seq, codec.Config{RC: rc, BitrateBPS: bps})
		if merr != nil {
			return 0, merr
		}
		last = m
		return m.PSNR, nil
	}
	bps, _, err := scoring.BisectBitrate(ref.PSNR, refBPS/10, refBPS*10, bisectIterations, eval)
	if err != nil {
		return scoring.Score{Scenario: s, Reason: err.Error()}, nil, nil
	}
	// Re-measure at the chosen point unless it was the last evaluated.
	m := last
	if m == nil || math.Abs(m.BitratePPS*float64(seq.Width()*seq.Height())-bps) > 1 {
		m, err = r.Measure(eng, seq, codec.Config{RC: rc, BitrateBPS: bps})
		if err != nil {
			return scoring.Score{}, nil, err
		}
	}
	ratios, err := scoring.ComputeRatios(m.Measurement, ref.Measurement)
	if err != nil {
		return scoring.Score{}, nil, err
	}
	score := scoring.Evaluate(s, ratios, scoring.Constraint{
		CandidatePSNR:     m.PSNR,
		CandidateSpeedMPS: m.SpeedMPS,
		RealTimeMPS:       r.RealTimeBar(c),
	})
	r.logf("candidate %-8s %-14s %-10s S=%.2f B=%.2f Q=%.3f valid=%v",
		s, c.Name, eng.Tools.Name, score.Ratios.S, score.Ratios.B, score.Ratios.Q, score.Valid)
	return score, m, nil
}
