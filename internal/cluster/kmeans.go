// Package cluster implements weighted k-means clustering with
// k-means++ seeding — the algorithm vbench uses to select its
// representative video categories from the corpus (Section 4.1 of the
// paper): categories are points in a linearized
// (resolution, framerate, entropy) space, weighted by the transcoding
// time their category consumed, and each cluster is represented by its
// highest-weight member (the mode).
package cluster

import (
	"errors"
	"fmt"
	"math"

	"vbench/internal/rng"
)

// Point is a point in feature space.
type Point []float64

// Config controls a clustering run.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations per restart (default 100).
	MaxIter int
	// Restarts runs the algorithm multiple times with different
	// seedings and keeps the lowest-inertia result (default 1).
	Restarts int
	// Seed makes the run deterministic.
	Seed uint64
}

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids []Point
	// Assign maps each input point to its cluster.
	Assign []int
	// Inertia is the weighted sum of squared distances to assigned
	// centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations of the winning
	// restart.
	Iterations int
}

func sqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters the weighted points. weights may be nil for uniform
// weighting. All points must share the same dimensionality.
func KMeans(points []Point, weights []float64, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: no points")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("cluster: invalid K %d", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("cluster: K %d exceeds point count %d", cfg.K, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d points", len(weights), n)
	}
	var totalW float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("cluster: invalid weight %v at %d", w, i)
		}
		totalW += w
	}
	if totalW <= 0 {
		return nil, errors.New("cluster: all weights zero")
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	var best *Result
	for r := 0; r < restarts; r++ {
		res, err := run(points, weights, cfg.K, maxIter, rng.New(cfg.Seed+uint64(r)*0x9E3779B9))
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// run performs one weighted k-means pass with k-means++ seeding.
func run(points []Point, weights []float64, k, maxIter int, r *rng.Rand) (*Result, error) {
	n := len(points)
	dim := len(points[0])
	centroids := seedPlusPlus(points, weights, k, r)
	assign := make([]int, n)
	prevInertia := math.Inf(1)
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// Assignment step.
		inertia := 0.0
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := sqDist(p, c); d < bestD {
					bestD = d
					bestC = ci
				}
			}
			assign[i] = bestC
			inertia += weights[i] * bestD
		}
		// Update step: weighted means.
		sums := make([][]float64, k)
		wsum := make([]float64, k)
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, p := range points {
			ci := assign[i]
			w := weights[i]
			wsum[ci] += w
			for d := range p {
				sums[ci][d] += w * p[d]
			}
		}
		for ci := range centroids {
			if wsum[ci] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid (weighted), a standard repair.
				far, farD := 0, -1.0
				for i, p := range points {
					d := weights[i] * sqDist(p, centroids[assign[i]])
					if d > farD {
						farD = d
						far = i
					}
				}
				centroids[ci] = append(Point(nil), points[far]...)
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[ci][d] = sums[ci][d] / wsum[ci]
			}
		}
		if inertia >= prevInertia-1e-12 {
			prevInertia = inertia
			break
		}
		prevInertia = inertia
	}
	// Final assignment with the final centroids.
	inertia := 0.0
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for ci, c := range centroids {
			if d := sqDist(p, c); d < bestD {
				bestD = d
				bestC = ci
			}
		}
		assign[i] = bestC
		inertia += weights[i] * bestD
	}
	return &Result{Centroids: centroids, Assign: assign, Inertia: inertia, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centroids by weighted k-means++: the
// first proportional to point weight, each next proportional to
// weight × squared distance from the chosen set.
func seedPlusPlus(points []Point, weights []float64, k int, r *rng.Rand) []Point {
	n := len(points)
	centroids := make([]Point, 0, k)
	first := weightedPick(weights, r)
	centroids = append(centroids, append(Point(nil), points[first]...))
	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, centroids[0])
	}
	probs := make([]float64, n)
	for len(centroids) < k {
		for i := range probs {
			probs[i] = weights[i] * d2[i]
		}
		next := weightedPick(probs, r)
		c := append(Point(nil), points[next]...)
		centroids = append(centroids, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// weightedPick samples an index proportionally to w; if all weights
// are zero it picks uniformly.
func weightedPick(w []float64, r *rng.Rand) int {
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return r.Intn(len(w))
	}
	x := r.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Modes returns, for each cluster, the index of the highest-weight
// member point — the paper's cluster representative.
func Modes(res *Result, weights []float64) []int {
	k := len(res.Centroids)
	modes := make([]int, k)
	bestW := make([]float64, k)
	for i := range modes {
		modes[i] = -1
		bestW[i] = -1
	}
	for i, ci := range res.Assign {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w > bestW[ci] {
			bestW[ci] = w
			modes[ci] = i
		}
	}
	return modes
}
