package cachesim

import (
	"testing"
	"testing/quick"

	"vbench/internal/rng"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCache(t *testing.T) *Cache {
	// 1KB, 2-way, 64B lines → 8 sets.
	return mustCache(t, Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 2})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 60, Ways: 2},       // non-power-of-two line
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},       // size not divisible
		{SizeBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2}, // 3 sets: not power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache(t)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.Access(0x1030) { // same 64B line
		t.Error("same-line access missed")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Errorf("stats = %d/%d, want 3/1", acc, miss)
	}
}

func TestAssociativityConflicts(t *testing.T) {
	c := smallCache(t) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = sets × line = 512B).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	if !c.Access(a) || !c.Access(b) {
		t.Fatal("two-way set should hold two lines")
	}
	c.Access(d) // evicts LRU = a
	if c.Access(a) {
		t.Error("LRU line survived eviction")
	}
}

func TestLRUOrder(t *testing.T) {
	c := smallCache(t)
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // must evict b
	if !c.Access(a) {
		t.Error("MRU line evicted")
	}
	if c.Access(b) {
		t.Error("LRU line not evicted")
	}
}

func TestWorkingSetFitsNoSteadyMisses(t *testing.T) {
	c := mustCache(t, Config{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	// 16KB working set streamed repeatedly: after warmup, zero misses.
	for round := 0; round < 3; round++ {
		for addr := uint64(0); addr < 16<<10; addr += 64 {
			c.Access(addr)
		}
	}
	_, missesBefore := c.Stats()
	for addr := uint64(0); addr < 16<<10; addr += 64 {
		c.Access(addr)
	}
	_, missesAfter := c.Stats()
	if missesAfter != missesBefore {
		t.Errorf("resident working set missed %d times", missesAfter-missesBefore)
	}
}

func TestWorkingSetExceedsThrashes(t *testing.T) {
	c := mustCache(t, Config{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	// 64KB round-robin working set with true LRU: every access misses.
	for round := 0; round < 3; round++ {
		for addr := uint64(0); addr < 64<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.MissRate() < 0.99 {
		t.Errorf("oversized working set miss rate = %v, want ~1", c.MissRate())
	}
}

func TestReset(t *testing.T) {
	c := smallCache(t)
	c.Access(0)
	c.Reset()
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Error("reset did not clear stats")
	}
	if c.Access(0) {
		t.Error("reset did not clear contents")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "L1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2},
		Config{Name: "L2", SizeBytes: 8 << 10, LineBytes: 64, Ways: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Access(0); lvl != 2 {
		t.Errorf("cold access hit level %d, want memory (2)", lvl)
	}
	if lvl := h.Access(0); lvl != 0 {
		t.Errorf("warm access hit level %d, want 0", lvl)
	}
	// Evict address 0 from the 2-way L1 set (stride 512) with two more
	// conflicting lines; they land in different L2 sets (stride 2048),
	// so L2 still holds address 0.
	h.Access(512)
	h.Access(1024)
	if lvl := h.Access(0); lvl != 1 {
		t.Errorf("L1-evicted line hit level %d, want 1 (L2)", lvl)
	}
}

func TestSkylakePresets(t *testing.T) {
	h, err := SkylakeData()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 3 {
		t.Fatalf("data hierarchy has %d levels", len(h.Levels))
	}
	if h.Levels[2].Config().SizeBytes != 8<<20 {
		t.Error("LLC size wrong")
	}
	ic, err := SkylakeICache()
	if err != nil {
		t.Fatal(err)
	}
	if ic.Config().SizeBytes != 32<<10 {
		t.Error("L1I size wrong")
	}
}

func TestMissRateBoundedProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		c, err := New(Config{Name: "p", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < int(n); i++ {
			c.Access(uint64(r.Intn(1 << 20)))
		}
		mr := c.MissRate()
		return mr >= 0 && mr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int64) {
		c := mustCache(t, Config{Name: "d", SizeBytes: 2 << 10, LineBytes: 64, Ways: 2})
		r := rng.New(99)
		for i := 0; i < 10000; i++ {
			c.Access(uint64(r.Intn(1 << 16)))
		}
		return c.Stats()
	}
	a1, m1 := run()
	a2, m2 := run()
	if a1 != a2 || m1 != m2 {
		t.Error("identical traces produced different stats")
	}
}
