package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"vbench/internal/rng"
)

// threeBlobs generates three well-separated Gaussian clusters.
func threeBlobs(n int, seed uint64) ([]Point, []int) {
	r := rng.New(seed)
	centers := []Point{{0, 0}, {10, 0}, {0, 10}}
	pts := make([]Point, 0, 3*n)
	labels := make([]int, 0, 3*n)
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			pts = append(pts, Point{c[0] + r.NormFloat64(), c[1] + r.NormFloat64()})
			labels = append(labels, ci)
		}
	}
	return pts, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts, labels := threeBlobs(50, 1)
	res, err := KMeans(pts, nil, Config{K: 3, Seed: 7, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every true cluster should map to exactly one found cluster.
	mapping := map[int]map[int]int{}
	for i, l := range labels {
		if mapping[l] == nil {
			mapping[l] = map[int]int{}
		}
		mapping[l][res.Assign[i]]++
	}
	used := map[int]bool{}
	for l, m := range mapping {
		best, bestN := -1, 0
		total := 0
		for a, n := range m {
			total += n
			if n > bestN {
				best, bestN = a, n
			}
		}
		if float64(bestN) < 0.95*float64(total) {
			t.Errorf("true cluster %d split across found clusters: %v", l, m)
		}
		if used[best] {
			t.Errorf("found cluster %d claimed by two true clusters", best)
		}
		used[best] = true
	}
}

func TestKMeansCentroidsNearTruth(t *testing.T) {
	pts, _ := threeBlobs(100, 3)
	res, err := KMeans(pts, nil, Config{K: 3, Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	truth := []Point{{0, 0}, {10, 0}, {0, 10}}
	for _, want := range truth {
		found := false
		for _, c := range res.Centroids {
			if math.Hypot(c[0]-want[0], c[1]-want[1]) < 1.0 {
				found = true
			}
		}
		if !found {
			t.Errorf("no centroid near %v: %v", want, res.Centroids)
		}
	}
}

func TestKMeansWeightsPullCentroids(t *testing.T) {
	// Two points; with an extreme weight the single centroid must sit
	// on the heavy one.
	pts := []Point{{0}, {10}}
	res, err := KMeans(pts, []float64{1000, 1}, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids[0][0] > 0.1 {
		t.Errorf("weighted centroid at %v, want ≈0", res.Centroids[0][0])
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}}
	if _, err := KMeans(nil, nil, Config{K: 1}); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := KMeans(pts, nil, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KMeans(pts, nil, Config{K: 3}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := KMeans(pts, []float64{1}, Config{K: 1}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := KMeans(pts, []float64{-1, 1}, Config{K: 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := KMeans(pts, []float64{0, 0}, Config{K: 1}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := KMeans([]Point{{1}, {1, 2}}, nil, Config{K: 1}); err == nil {
		t.Error("ragged dimensions accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := threeBlobs(30, 9)
	a, err := KMeans(pts, nil, Config{K: 3, Seed: 42, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, nil, Config{K: 3, Seed: 42, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("same seed, different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestKMeansAssignmentsAreNearest(t *testing.T) {
	// Invariant: on convergence every point is assigned to its nearest
	// centroid.
	pts, _ := threeBlobs(40, 11)
	res, err := KMeans(pts, nil, Config{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		best, bestD := -1, math.Inf(1)
		for ci, c := range res.Centroids {
			if d := sqDist(p, c); d < bestD {
				best, bestD = ci, d
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, res.Assign[i], best)
		}
	}
}

func TestKMeansInertiaImprovesWithK(t *testing.T) {
	pts, _ := threeBlobs(40, 13)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 3, 6} {
		res, err := KMeans(pts, nil, Config{K: k, Seed: 5, Restarts: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Errorf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := []Point{{0}, {5}, {10}, {20}}
	res, err := KMeans(pts, nil, Config{K: 4, Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("K=n inertia = %v, want 0", res.Inertia)
	}
}

func TestModesPickHeaviestMember(t *testing.T) {
	pts := []Point{{0}, {0.1}, {10}, {10.1}}
	weights := []float64{1, 5, 7, 2}
	res, err := KMeans(pts, weights, Config{K: 2, Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	modes := Modes(res, weights)
	picked := map[int]bool{}
	for _, m := range modes {
		picked[m] = true
	}
	if !picked[1] || !picked[2] {
		t.Errorf("modes = %v, want {1, 2}", modes)
	}
}

func TestInertiaNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		pts := make([]Point, n)
		w := make([]float64, n)
		for i := range pts {
			pts[i] = Point{r.Range(-5, 5), r.Range(-5, 5)}
			w[i] = r.Float64() + 0.01
		}
		k := 1 + r.Intn(n)
		res, err := KMeans(pts, w, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		if res.Inertia < 0 {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
