package syncx

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOnce(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	const goroutines = 64

	var wg sync.WaitGroup
	vals := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn called %d times, want 1", got)
	}
	for i, v := range vals {
		if v != 42 {
			t.Errorf("goroutine %d got %d, want 42", i, v)
		}
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, string]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := m.Do(i, func() (string, error) { return fmt.Sprint(i), nil })
			if err != nil || v != fmt.Sprint(i) {
				t.Errorf("key %d: got %q, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if m.Len() != 16 {
		t.Errorf("cached %d keys, want 16", m.Len())
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	calls := 0
	if _, err := m.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := m.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry got %d, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("fn called %d times, want 2 (failure retried)", calls)
	}
	if _, err := m.Do("k", func() (int, error) { calls++; return 0, boom }); err != nil {
		t.Errorf("cached success returned error %v", err)
	}
	if calls != 2 {
		t.Errorf("fn called %d times after success, want 2", calls)
	}
}

// TestMemoStatsMissesEqualUniqueKeys is the singleflight guarantee in
// counter form: no matter how many goroutines race on the same key
// set, the miss count (= compute-function invocations) equals the
// number of unique keys, and every other call is accounted for as a
// hit or an in-flight join.
func TestMemoStatsMissesEqualUniqueKeys(t *testing.T) {
	var m Memo[int, int]
	const goroutines, keys = 32, 16
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				v, err := m.Do(k, func() (int, error) {
					calls.Add(1)
					return k * k, nil
				})
				if err != nil || v != k*k {
					t.Errorf("key %d: got %d, %v", k, v, err)
				}
			}
		}()
	}
	wg.Wait()

	s := m.Stats()
	if s.Misses != keys {
		t.Errorf("Misses = %d, want %d (one per unique key)", s.Misses, keys)
	}
	if s.Misses != calls.Load() {
		t.Errorf("Misses = %d but fn ran %d times; they must agree", s.Misses, calls.Load())
	}
	if total := s.Hits + s.Misses + s.Inflight; total != goroutines*keys {
		t.Errorf("Hits+Misses+Inflight = %d, want %d (every Do call accounted)", total, goroutines*keys)
	}
}

// TestMemoStatsErrorRetryCountsMisses pins the documented semantics:
// error retries are misses too, so Misses tracks fn invocations, not
// unique keys, once failures occur.
func TestMemoStatsErrorRetryCountsMisses(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	m.Do("k", func() (int, error) { return 0, boom })
	m.Do("k", func() (int, error) { return 1, nil })
	m.Do("k", func() (int, error) { return 2, nil }) // cached: hit
	s := m.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses (failure retried) and 1 hit", s)
	}
}

func TestMemoGet(t *testing.T) {
	var m Memo[string, int]
	if _, ok := m.Get("k"); ok {
		t.Error("Get hit on empty memo")
	}
	if _, err := m.Do("k", func() (int, error) { return 9, nil }); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Get("k")
	if !ok || v != 9 {
		t.Errorf("Get = %d, %v; want 9, true", v, ok)
	}
}
