package cas

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"vbench/internal/syncx"
	"vbench/internal/telemetry"
)

// Store is a two-tier content-addressed cache: a per-process
// in-memory tier (a syncx.Memo, which doubles as the singleflight
// layer so concurrent misses compute once) in front of a sharded
// on-disk store shared across processes.
//
// Disk layout: <dir>/<first-2-hex>/<keyhex>.vbc, one entry per file.
// Writes go through a temp file in the same shard followed by an
// atomic rename, so a reader never observes a partial entry and a
// crash leaves at worst an orphaned temp file (swept on Open). Every
// read re-verifies the entry's trailing SHA-256; corrupt entries are
// deleted and read as misses.
//
// Locking discipline: the index mutex guards only the in-memory
// index map and byte accounting. All disk I/O happens outside it —
// the pattern the locksafe analyzer enforces.
type Store struct {
	dir string
	mem syncx.Memo[Key, *Outcome]

	mu        sync.Mutex
	index     map[Key]int64 // disk entries known to this process: key -> file bytes
	diskBytes int64

	tmpSeq atomic.Int64

	mMemHits, mDiskHits, mMisses *telemetry.Counter
	mBytesRead, mBytesWritten    *telemetry.Counter
	mReadErrors, mWriteErrors    *telemetry.Counter
	gMemEntries, gMemBytes       *telemetry.Gauge
	gDiskEntries, gDiskBytes     *telemetry.Gauge
}

// Stats is a point-in-time view of the store's traffic counters.
type Stats struct {
	MemHits, DiskHits, Misses int64
	BytesRead, BytesWritten   int64
	ReadErrors, WriteErrors   int64
	MemEntries, DiskEntries   int64
	MemBytes, DiskBytes       int64
}

// Open opens (creating if needed) the store rooted at dir and
// rebuilds the disk index by scanning the shard directories — entry
// files contribute (key, size) pairs, orphaned temp files from
// crashed writers are removed. Metrics register in reg (nil selects
// telemetry.Default).
func Open(dir string, reg *telemetry.Registry) (*Store, error) {
	if reg == nil {
		reg = telemetry.Default
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: opening store: %w", err)
	}
	s := &Store{dir: dir, index: map[Key]int64{}}
	s.mem.Size = func(o *Outcome) int64 { return o.SizeBytes() }
	s.mMemHits = reg.Counter("cas.mem_hits")
	s.mDiskHits = reg.Counter("cas.disk_hits")
	s.mMisses = reg.Counter("cas.misses")
	s.mBytesRead = reg.Counter("cas.bytes_read")
	s.mBytesWritten = reg.Counter("cas.bytes_written")
	s.mReadErrors = reg.Counter("cas.read_errors")
	s.mWriteErrors = reg.Counter("cas.write_errors")
	s.gMemEntries = reg.Gauge("cas.mem_entries")
	s.gMemBytes = reg.Gauge("cas.mem_bytes")
	s.gDiskEntries = reg.Gauge("cas.disk_entries")
	s.gDiskBytes = reg.Gauge("cas.disk_bytes")
	if err := s.rebuildIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuildIndex scans the shard directories into a fresh index. The
// scan reads only directory entries (names and sizes), never file
// contents — integrity is checked lazily on each read — so reopening
// a large store is cheap and safe after any crash.
func (s *Store) rebuildIndex() error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cas: scanning store: %w", err)
	}
	index := map[Key]int64{}
	var total int64
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			return fmt.Errorf("cas: scanning shard %s: %w", sh.Name(), err)
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, ".tmp-") {
				// A writer died between temp write and rename; the
				// entry it was producing will be recomputed on demand.
				_ = os.Remove(filepath.Join(s.dir, sh.Name(), name))
				continue
			}
			hexKey, ok := strings.CutSuffix(name, ".vbc")
			if !ok {
				continue
			}
			key, err := ParseKey(hexKey)
			if err != nil || key.String()[:2] != sh.Name() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			index[key] = info.Size()
			total += info.Size()
		}
	}
	s.mu.Lock()
	s.index = index
	s.diskBytes = total
	s.publishDiskGaugesLocked()
	s.mu.Unlock()
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the sharded entry path for a key.
func (s *Store) path(key Key) string {
	hexKey := key.String()
	return filepath.Join(s.dir, hexKey[:2], hexKey+".vbc")
}

// Stats returns the current traffic counters and tier sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	diskN, diskB := int64(len(s.index)), s.diskBytes
	s.mu.Unlock()
	return Stats{
		MemHits:      s.mMemHits.Value(),
		DiskHits:     s.mDiskHits.Value(),
		Misses:       s.mMisses.Value(),
		BytesRead:    s.mBytesRead.Value(),
		BytesWritten: s.mBytesWritten.Value(),
		ReadErrors:   s.mReadErrors.Value(),
		WriteErrors:  s.mWriteErrors.Value(),
		MemEntries:   int64(s.mem.Len()),
		MemBytes:     s.mem.Bytes(),
		DiskEntries:  diskN,
		DiskBytes:    diskB,
	}
}

// GetOrCompute returns the outcome for key, looking through the
// in-memory tier and then the disk tier before running compute.
// Concurrent callers for one key share a single lookup/compute
// (singleflight); a computed outcome is persisted to disk best-effort
// before being returned.
func (s *Store) GetOrCompute(key Key, compute func() (*Outcome, error)) (*Outcome, error) {
	sp := telemetry.StartSpan("cas lookup")
	defer sp.End()
	sp.Arg("key", key.Short())
	if o, ok := s.mem.Get(key); ok {
		s.mMemHits.Inc()
		s.finishSpan(sp, "mem_hit", o)
		return o, nil
	}
	tier := "join" // overwritten by the caller that runs the closure
	o, err := s.mem.Do(key, func() (*Outcome, error) {
		if o, ok := s.readDisk(key); ok {
			s.mDiskHits.Inc()
			tier = "disk_hit"
			return o, nil
		}
		o, err := compute()
		if err != nil {
			return nil, err
		}
		s.mMisses.Inc()
		tier = "miss"
		s.writeDisk(key, o)
		return o, nil
	})
	s.publishMemGauges()
	if err != nil {
		sp.Arg("outcome", "error")
		return nil, err
	}
	s.finishSpan(sp, tier, o)
	return o, nil
}

// Get returns the outcome for key if either tier holds it, promoting
// disk hits into the in-memory tier. It never computes.
func (s *Store) Get(key Key) (*Outcome, bool) {
	if o, ok := s.mem.Get(key); ok {
		s.mMemHits.Inc()
		return o, true
	}
	o, ok := s.readDisk(key)
	if !ok {
		return nil, false
	}
	s.mDiskHits.Inc()
	promoted, err := s.mem.Do(key, func() (*Outcome, error) { return o, nil })
	if err != nil {
		return o, true
	}
	s.publishMemGauges()
	return promoted, true
}

// Put persists an outcome for key to the disk tier (the shared tier;
// the writer's in-memory tier is left alone so long-running workers
// do not retain every bitstream they ever produced).
func (s *Store) Put(key Key, o *Outcome) error {
	return s.writeDisk(key, o)
}

// EvictMem drops every completed entry from the in-memory tier,
// returning the number evicted. The disk tier is untouched; evicted
// keys read back as disk hits.
func (s *Store) EvictMem() int {
	n := s.mem.EvictAll()
	s.publishMemGauges()
	return n
}

func (s *Store) finishSpan(sp *telemetry.Span, tier string, o *Outcome) {
	sp.Arg("outcome", tier)
	sp.Arg("bytes", len(o.Bitstream))
}

// readDisk loads and verifies one entry. Any failure — missing file,
// torn or corrupt entry — reads as a miss; corrupt entries are
// deleted so they are recomputed rather than re-reported. The index
// learns entries written by other processes here.
func (s *Store) readDisk(key Key) (*Outcome, bool) {
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	s.mBytesRead.Add(int64(len(b)))
	o, err := decodeEntry(b)
	if err != nil {
		s.mReadErrors.Inc()
		_ = os.Remove(s.path(key))
		s.forgetIndex(key)
		return nil, false
	}
	s.noteIndex(key, int64(len(b)))
	return o, true
}

// writeDisk persists one entry atomically: temp file in the target
// shard, then rename. Failures are counted and reported but callers
// treat them as best-effort — a cache that cannot persist still
// serves from memory.
func (s *Store) writeDisk(key Key, o *Outcome) error {
	b, err := encodeEntry(o)
	if err != nil {
		s.mWriteErrors.Inc()
		return err
	}
	hexKey := key.String()
	shard := filepath.Join(s.dir, hexKey[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		s.mWriteErrors.Inc()
		return fmt.Errorf("cas: creating shard: %w", err)
	}
	tmp := filepath.Join(shard, fmt.Sprintf(".tmp-%s-%d-%d", hexKey[:8], os.Getpid(), s.tmpSeq.Add(1)))
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		s.mWriteErrors.Inc()
		return fmt.Errorf("cas: writing entry: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		_ = os.Remove(tmp)
		s.mWriteErrors.Inc()
		return fmt.Errorf("cas: publishing entry: %w", err)
	}
	s.mBytesWritten.Add(int64(len(b)))
	s.noteIndex(key, int64(len(b)))
	return nil
}

// noteIndex records a disk entry's existence. Pure accounting; no
// I/O happens under the index lock.
func (s *Store) noteIndex(key Key, size int64) {
	s.mu.Lock()
	if old, ok := s.index[key]; ok {
		s.diskBytes -= old
	}
	s.index[key] = size
	s.diskBytes += size
	s.publishDiskGaugesLocked()
	s.mu.Unlock()
}

// forgetIndex drops a disk entry from the accounting.
func (s *Store) forgetIndex(key Key) {
	s.mu.Lock()
	if old, ok := s.index[key]; ok {
		s.diskBytes -= old
		delete(s.index, key)
	}
	s.publishDiskGaugesLocked()
	s.mu.Unlock()
}

func (s *Store) publishDiskGaugesLocked() {
	s.gDiskEntries.Set(float64(len(s.index)))
	s.gDiskBytes.Set(float64(s.diskBytes))
}

func (s *Store) publishMemGauges() {
	s.gMemEntries.Set(float64(s.mem.Len()))
	s.gMemBytes.Set(float64(s.mem.Bytes()))
}
