package metrics

import (
	"math"
	"testing"

	"vbench/internal/rng"
	"vbench/internal/video"
)

// syntheticCurve builds PSNR = base + slope·log10(rate) operating
// points.
func syntheticCurve(base, slope float64, rates []float64) []RDCurvePoint {
	out := make([]RDCurvePoint, len(rates))
	for i, r := range rates {
		out[i] = RDCurvePoint{Bitrate: r, PSNR: base + slope*math.Log10(r)}
	}
	return out
}

var bdRates = []float64{100, 300, 1000, 3000, 10000}

func TestBDRateIdenticalCurvesIsZero(t *testing.T) {
	c := syntheticCurve(20, 6, bdRates)
	bd, err := BDRate(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd) > 0.01 {
		t.Errorf("BD-rate of identical curves = %v%%, want 0", bd)
	}
	psnr, err := BDPSNR(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(psnr) > 0.001 {
		t.Errorf("BD-PSNR of identical curves = %v dB, want 0", psnr)
	}
}

func TestBDRateKnownShift(t *testing.T) {
	// Test curve achieves the same quality at exactly half the rate:
	// BD-rate must be −50%.
	ref := syntheticCurve(20, 6, bdRates)
	test := make([]RDCurvePoint, len(ref))
	for i, p := range ref {
		test[i] = RDCurvePoint{Bitrate: p.Bitrate / 2, PSNR: p.PSNR}
	}
	bd, err := BDRate(ref, test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd+50) > 1 {
		t.Errorf("BD-rate = %v%%, want −50%%", bd)
	}
}

func TestBDPSNRKnownOffset(t *testing.T) {
	// Test curve is uniformly 2 dB better: BD-PSNR = +2.
	ref := syntheticCurve(20, 6, bdRates)
	test := syntheticCurve(22, 6, bdRates)
	bd, err := BDPSNR(ref, test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd-2) > 0.01 {
		t.Errorf("BD-PSNR = %v dB, want 2", bd)
	}
}

func TestBDRateSignConvention(t *testing.T) {
	ref := syntheticCurve(20, 6, bdRates)
	better := syntheticCurve(21.5, 6, bdRates) // better quality per bit
	bd, err := BDRate(ref, better)
	if err != nil {
		t.Fatal(err)
	}
	if bd >= 0 {
		t.Errorf("better encoder has BD-rate %v%%, want negative", bd)
	}
}

func TestBDErrors(t *testing.T) {
	c := syntheticCurve(20, 6, bdRates)
	if _, err := BDRate(c[:3], c); err == nil {
		t.Error("3-point curve accepted")
	}
	bad := append([]RDCurvePoint(nil), c...)
	bad[0].Bitrate = 0
	if _, err := BDRate(bad, c); err == nil {
		t.Error("zero bitrate accepted")
	}
	// Non-overlapping quality ranges.
	low := syntheticCurve(5, 1, bdRates)
	high := syntheticCurve(50, 1, bdRates)
	if _, err := BDRate(low, high); err == nil {
		t.Error("disjoint curves accepted")
	}
}

func TestMSSSIMIdenticalIsOne(t *testing.T) {
	r := rng.New(3)
	a := make([]uint8, 64*64)
	for i := range a {
		a[i] = uint8(r.Intn(256))
	}
	s, err := PlaneMSSSIM(a, a, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("MS-SSIM of identical planes = %v", s)
	}
}

func TestMSSSIMOrdersDistortion(t *testing.T) {
	seq, err := video.Generate(video.ContentParams{Seed: 4, Detail: 0.6, ChromaVariety: 0.3}, 64, 64, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	a := seq.Frames[0].Y
	r := rng.New(5)
	distort := func(amp int) []uint8 {
		out := append([]uint8(nil), a...)
		for i := range out {
			out[i] = clampAdd(out[i], r.Intn(2*amp+1)-amp)
		}
		return out
	}
	mild, err := PlaneMSSSIM(a, distort(4), 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := PlaneMSSSIM(a, distort(48), 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(mild > harsh) {
		t.Errorf("MS-SSIM ordering violated: %v vs %v", mild, harsh)
	}
}

func TestMSSSIMSmallPlane(t *testing.T) {
	a := make([]uint8, 8*8)
	if _, err := PlaneMSSSIM(a, a, 8, 8); err != nil {
		t.Errorf("single-scale msssim failed: %v", err)
	}
	if _, err := PlaneMSSSIM(a[:16], a[:16], 4, 4); err == nil {
		t.Error("sub-window plane accepted")
	}
}

func TestSequenceMSSSIMRuns(t *testing.T) {
	seq, err := video.Generate(video.ContentParams{Seed: 6, Detail: 0.5, Motion: 0.3, ChromaVariety: 0.4}, 64, 48, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SequenceMSSSIM(seq, seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("self MS-SSIM = %v", s)
	}
}
