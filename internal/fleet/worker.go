package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"vbench/internal/cas"
	"vbench/internal/syncx"
	"vbench/internal/telemetry"
)

// Worker-side metric names. These live in the worker's registry and
// ride to the master on metric pushes, so the master's snapshots show
// fleet-wide encode throughput; schema rows in docs/FORMAT.md.
const (
	metricJobsExecuted  = "worker.jobs_executed"
	metricExecFailures  = "worker.exec_failures"
	metricEncodeSeconds = "worker.encode_seconds"
	metricEncodeMBPS    = "worker.encode_mbps"
	// The worker.stage.* counters mirror the process-wide
	// codec.stage.*_ns clocks at push time (they only advance while
	// telemetry.StagesEnabled; cmd/vbenchd worker enables stages when
	// tracing). The mirror assumes one worker per process — the
	// vbenchd deployment shape — since the codec clocks are global.
	metricStageMotion    = "worker.stage.motion_ns"
	metricStageTransform = "worker.stage.transform_ns"
	metricStageEntropy   = "worker.stage.entropy_ns"
	metricStageGateWait  = "worker.stage.slice_gate_wait_ns"
	// worker.wave_occupancy mirrors the process-wide
	// codec.wave.occupancy histogram the same way, so /status can show
	// per-worker wavefront utilization.
	metricWaveOccupancy = "worker.wave_occupancy"
)

// WorkerOptions configures a pull worker.
type WorkerOptions struct {
	// Master is the base URL of the master, e.g. "http://127.0.0.1:7933".
	Master string
	// ID names this worker in leases and logs.
	ID string
	// Concurrency is how many jobs run at once (each encode still
	// shares the process CPU gate). Default 1.
	Concurrency int
	// Poll is the idle re-poll interval. Default 200ms.
	Poll time.Duration
	// Heartbeat is the lease-renewal interval; it should be well
	// under the master's lease TTL. Non-positive derives it from the
	// TTL the master advertises on each lease (TTL/3).
	Heartbeat time.Duration
	// Gate bounds concurrent encode work; nil selects the process-
	// wide syncx.CPU gate, so a worker colocated with other encode
	// work cannot oversubscribe the machine.
	Gate *syncx.CPUGate
	// Client is the HTTP client; nil selects one with a 15s timeout.
	Client *http.Client
	// Log receives progress lines; nil discards them. cmd/vbenchd
	// passes a telemetry.LineWriter.Labeled writer so lines carry the
	// worker's identity; the worker itself writes plain lines.
	Log io.Writer
	// Tracer records execution spans parented under the master's
	// lease spans via the trace-context headers; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics is the registry for the worker.* metrics; nil selects
	// telemetry.Default. Loopback tests colocating a master and a
	// worker in one process should pass the worker its own registry,
	// or absorbed pushes would double-count into the shared one.
	Metrics *telemetry.Registry
	// DisablePush stops piggybacking metric snapshots on heartbeats
	// and acks.
	DisablePush bool
	// RowsParallel is the default wavefront setting applied to encode
	// jobs whose spec leaves it unset (see codec.Config.RowsParallel):
	// 0 shares the process CPU gate, 1 disables row parallelism, 2..64
	// forces dedicated row lanes.
	RowsParallel int
	// Cache, when non-nil, is the shared content-addressed transcode
	// store: encode jobs whose result is already cached complete
	// without encoding, and fresh encodes populate the store for the
	// rest of the fleet.
	Cache *cas.Store
}

// Worker pulls jobs from a master and runs them with real encoders.
// Run blocks until the context is canceled and then drains: in-flight
// jobs finish and their completions are delivered before Run returns
// — the SIGTERM path of cmd/vbenchd worker.
type Worker struct {
	opt WorkerOptions

	mExecuted, mFailures        *telemetry.Counter
	hEncodeSeconds, hEncodeMBPS *telemetry.Histogram

	pushMu  sync.Mutex
	pushSeq int64
}

// traceCtx is the trace context a lease response carries; zero means
// the master is not tracing.
type traceCtx struct {
	traceID, spanID string
}

// NewWorker validates options and builds a worker.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Master == "" {
		return nil, fmt.Errorf("fleet: worker needs a master URL")
	}
	if opt.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an id")
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 1
	}
	if opt.Poll <= 0 {
		opt.Poll = 200 * time.Millisecond
	}
	if opt.Gate == nil {
		opt.Gate = syncx.CPU
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if opt.Log == nil {
		opt.Log = io.Discard
	}
	if opt.Metrics == nil {
		opt.Metrics = telemetry.Default
	}
	w := &Worker{opt: opt}
	w.mExecuted = opt.Metrics.Counter(metricJobsExecuted)
	w.mFailures = opt.Metrics.Counter(metricExecFailures)
	w.hEncodeSeconds = opt.Metrics.Histogram(metricEncodeSeconds,
		0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30)
	w.hEncodeMBPS = opt.Metrics.Histogram(metricEncodeMBPS,
		0.5, 1, 2, 4, 8, 16, 32)
	return w, nil
}

// Run pulls and executes jobs until ctx is canceled, then drains.
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < w.opt.Concurrency; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.loop(ctx, slot)
		}(i)
	}
	wg.Wait()
	return nil
}

// loop is one lease-execute-ack cycle until shutdown.
func (w *Worker) loop(ctx context.Context, slot int) {
	for ctx.Err() == nil {
		job, ttl, trace, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("lease: %v", err)
			w.sleep(ctx, w.opt.Poll)
			continue
		}
		if job == nil {
			w.sleep(ctx, w.opt.Poll)
			continue
		}
		w.runJob(job, ttl, trace)
	}
}

// runJob executes one leased job under the CPU gate with heartbeats,
// then delivers the completion or classified failure. Acks run on a
// background context so a drain still reports in-flight work.
func (w *Worker) runJob(job *Job, ttl time.Duration, trace traceCtx) {
	hb := w.opt.Heartbeat
	if hb <= 0 {
		hb = ttl / 3
		if hb <= 0 {
			hb = time.Second
		}
	}
	hbCtx, stopHB := context.WithCancel(context.Background())
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeats(hbCtx, job, hb, trace)
	}()

	w.opt.Gate.Acquire()
	res, elapsed, execErr := w.execute(job, trace)
	w.opt.Gate.Release()
	stopHB()
	hbWG.Wait()
	w.observeExec(job, res, execErr, elapsed)

	push, seq := w.buildPush()
	if execErr != nil {
		terminal := IsTerminal(execErr)
		w.logf("job %d attempt %d failed (%s): %v", job.ID, job.Attempt, failureClass(terminal), execErr)
		if ackErr := w.ack(context.Background(), "/api/v1/fail", &AckRequest{
			Worker: w.opt.ID, JobID: job.ID, Attempt: job.Attempt,
			Terminal: terminal, Error: execErr.Error(),
			Push: push, PushSeq: seq,
		}, nil, trace); ackErr != nil {
			w.logf("job %d: reporting failure: %v", job.ID, ackErr)
		}
		return
	}
	var resp AckResponse
	if ackErr := w.ack(context.Background(), "/api/v1/complete", &AckRequest{
		Worker: w.opt.ID, JobID: job.ID, Attempt: job.Attempt, Result: &res,
		Push: push, PushSeq: seq,
	}, &resp, trace); ackErr != nil {
		// The master will expire the lease and retry the job; with
		// idempotent completion a duplicate re-run is absorbed.
		w.logf("job %d: reporting completion: %v", job.ID, ackErr)
		return
	}
	if resp.Applied {
		w.logf("job %d attempt %d done", job.ID, job.Attempt)
	} else {
		w.logf("job %d attempt %d completion ignored (duplicate or stale)", job.ID, job.Attempt)
	}
}

// execute runs the attempt inside an execution span parented (via the
// trace context the lease carried) under the master's lease span, with
// the actual work in a nested child span.
func (w *Worker) execute(job *Job, trace traceCtx) (Result, time.Duration, error) {
	sp := w.opt.Tracer.Start(fmt.Sprintf("execute job=%d", job.ID))
	sp.SetID(ExecSpanID(job.ID, job.Attempt, w.opt.ID))
	if trace.spanID != "" {
		sp.SetParent(trace.spanID)
	}
	if trace.traceID != "" {
		sp.Arg("trace_id", trace.traceID)
	}
	sp.Arg("job", job.ID)
	sp.Arg("attempt", job.Attempt)
	sp.Arg("worker", w.opt.ID)

	kind := job.Spec.Kind
	if kind == "" {
		kind = KindEncode
	}
	child := sp.Child(kind)
	if kind == KindEncode {
		child.Arg("clip", job.Spec.Clip)
		child.Arg("encoder", job.Spec.Encoder)
	}
	x := Executor{Cache: w.opt.Cache, DefaultRowsParallel: w.opt.RowsParallel}
	start := time.Now()
	res, err := x.Execute(job.Spec, job.Attempt, time.Sleep)
	elapsed := time.Since(start)
	child.End()
	if err != nil {
		sp.Arg("error", failureClass(IsTerminal(err)))
	}
	sp.End()
	return res, elapsed, err
}

// observeExec records the attempt in the worker.* metrics.
func (w *Worker) observeExec(job *Job, res Result, err error, elapsed time.Duration) {
	w.mExecuted.Inc()
	if err != nil {
		w.mFailures.Inc()
		return
	}
	kind := job.Spec.Kind
	if kind != "" && kind != KindEncode {
		return
	}
	w.hEncodeSeconds.Observe(elapsed.Seconds())
	if res.InputBytes > 0 && elapsed > 0 {
		w.hEncodeMBPS.Observe(float64(res.InputBytes) / 1e6 / elapsed.Seconds())
	}
}

// buildPush snapshots the worker.* metrics for a piggybacked push.
// Snapshots are cumulative and sequenced under one lock, so the master
// can absorb them as ordered deltas; see Server.observeAck.
func (w *Worker) buildPush() (*telemetry.Export, int64) {
	if w.opt.DisablePush {
		return nil, 0
	}
	w.pushMu.Lock()
	defer w.pushMu.Unlock()
	e := w.opt.Metrics.Export("worker.")
	e.Counters[metricStageMotion] = telemetry.GetCounter("codec.stage.motion_ns").Value()
	e.Counters[metricStageTransform] = telemetry.GetCounter("codec.stage.transform_ns").Value()
	e.Counters[metricStageEntropy] = telemetry.GetCounter("codec.stage.entropy_ns").Value()
	e.Counters[metricStageGateWait] = telemetry.GetCounter("codec.stage.slice_gate_wait_ns").Value()
	// Mirror the wavefront occupancy histogram whole (bounds included)
	// so the master can absorb it and /status can report its mean
	// without re-registering the codec's bucket layout.
	we := telemetry.Default.Export("codec.wave.occupancy")
	if he, ok := we.Histograms["codec.wave.occupancy"]; ok {
		e.Histograms[metricWaveOccupancy] = he
	}
	w.pushSeq++
	return &e, w.pushSeq
}

// heartbeats renews the lease until ctx is canceled or the master
// says the lease lapsed.
func (w *Worker) heartbeats(ctx context.Context, job *Job, every time.Duration, trace traceCtx) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			push, seq := w.buildPush()
			var resp AckResponse
			err := w.ack(ctx, "/api/v1/heartbeat", &AckRequest{
				Worker: w.opt.ID, JobID: job.ID, Attempt: job.Attempt,
				Push: push, PushSeq: seq,
			}, &resp, trace)
			if err == nil && !resp.OK {
				// Lease lost (e.g. the master expired it during a
				// network partition). The encode cannot be canceled
				// mid-flight; its completion will be ignored as stale.
				w.logf("job %d attempt %d: lease lost", job.ID, job.Attempt)
				return
			}
		}
	}
}

// lease asks the master for one job; nil job means nothing is ready.
// The trace context, if the master is tracing, rides on the response
// headers.
func (w *Worker) lease(ctx context.Context) (*Job, time.Duration, traceCtx, error) {
	var resp LeaseResponse
	hdr, err := w.post(ctx, "/api/v1/lease", &LeaseRequest{Worker: w.opt.ID}, &resp, traceCtx{})
	if err != nil {
		return nil, 0, traceCtx{}, err
	}
	trace := traceCtx{traceID: hdr.Get(HeaderTraceID), spanID: hdr.Get(HeaderSpanID)}
	return resp.Job, time.Duration(resp.LeaseTTLMS) * time.Millisecond, trace, nil
}

// ack posts a report with bounded retries — transient master
// unavailability must not turn a finished encode into a lost ack.
func (w *Worker) ack(ctx context.Context, path string, req *AckRequest, resp *AckResponse, trace traceCtx) error {
	if resp == nil {
		// A typed-nil *AckResponse would defeat post's interface nil
		// check and make json.Decode error — which would retry an ack
		// the master already applied.
		resp = &AckResponse{}
	}
	var err error
	for i := 0; i < 3; i++ {
		if i > 0 {
			w.sleep(ctx, 150*time.Millisecond)
		}
		if _, err = w.post(ctx, path, req, resp, trace); err == nil {
			return nil
		}
	}
	return err
}

// post sends one JSON request to the master, echoing the trace context
// on the request headers, and returns the response headers.
func (w *Worker) post(ctx context.Context, path string, req, resp interface{}, trace traceCtx) (http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Master+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if trace.traceID != "" {
		hreq.Header.Set(HeaderTraceID, trace.traceID)
	}
	if trace.spanID != "" {
		hreq.Header.Set(HeaderSpanID, trace.spanID)
	}
	hresp, err := w.opt.Client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return hresp.Header, fmt.Errorf("fleet: %s: %s: %s", path, hresp.Status, bytes.TrimSpace(b))
	}
	if resp == nil {
		return hresp.Header, nil
	}
	return hresp.Header, json.NewDecoder(hresp.Body).Decode(resp)
}

// sleep waits without outliving the context.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// logf writes one plain progress line; worker identity comes from the
// Log writer (telemetry.LineWriter.Labeled in cmd/vbenchd), not from
// the line itself.
func (w *Worker) logf(format string, args ...interface{}) {
	fmt.Fprintf(w.opt.Log, "%s\n", fmt.Sprintf(format, args...))
}

// failureClass names the retry class for logs.
func failureClass(terminal bool) string {
	if terminal {
		return "terminal"
	}
	return "transient"
}
