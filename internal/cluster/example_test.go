package cluster_test

import (
	"fmt"
	"sort"

	"vbench/internal/cluster"
)

// Selecting representatives from a weighted point set, the way vbench
// picks its videos from the corpus.
func ExampleKMeans() {
	points := []cluster.Point{
		{0.0}, {0.1}, {0.2}, // a low cluster
		{9.8}, {10.0}, {10.4}, // a high cluster
	}
	weights := []float64{1, 5, 1, 2, 1, 8}
	res, err := cluster.KMeans(points, weights, cluster.Config{K: 2, Seed: 1, Restarts: 4})
	if err != nil {
		panic(err)
	}
	modes := cluster.Modes(res, weights)
	sort.Ints(modes)
	fmt.Println("representatives:", modes)
	// Output: representatives: [1 5]
}
