// Command vbench runs the benchmark's scoring scenarios and prints
// the corresponding tables of the paper (Tables 2–5), comparing
// measured ratios against the published values.
//
// Usage:
//
//	vbench -scenario vod            # Table 3: NVENC/QSV under VOD
//	vbench -scenario live           # Table 4: NVENC/QSV under Live
//	vbench -scenario popular        # Table 5: x265/vp9 under Popular
//	vbench -scenario all -scale 8 -duration 1
//	vbench -scenario all -j 4       # fan the grid out over 4 workers
//	vbench -scenarios               # print Table 1 (scoring rules)
//
// Grid cells (clip × scenario × encoder) are independent, so -j N
// evaluates them on N workers; results are assembled in grid order,
// making the output byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"vbench/internal/cas"
	"vbench/internal/harness"
	"vbench/internal/scoring"
	"vbench/internal/tables"
	"vbench/internal/telemetry"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario to run: upload|live|vod|popular|table2|ablation|isasweep|decode|all")
	scale := flag.Int("scale", 8, "linear resolution divisor (1 = paper scale)")
	duration := flag.Float64("duration", 1.0, "clip duration in seconds (paper uses 5)")
	verbose := flag.Bool("v", false, "print per-encode progress")
	listScenarios := flag.Bool("scenarios", false, "print the scoring functions and constraints (Table 1)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "benchmark-grid worker count (output is identical at any -j)")
	cacheDir := flag.String("cache-dir", "", "content-addressed transcode cache directory: re-runs serve unchanged encodes from disk instead of recomputing them")
	cachePolicy := flag.String("cache-policy", "", "sweep cache retention policies over a simulated popularity-driven request stream instead of running scenarios: \"default\" or \"keep-all,lru:<bytes>,cost-aware\"")
	cacheRequests := flag.Int("cache-requests", 200000, "request-stream length for -cache-policy")
	cacheSeed := flag.Int64("cache-seed", 1, "request-stream seed for -cache-policy")
	var topts telemetry.Options
	topts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *listScenarios {
		printTable1()
		return
	}
	if *cachePolicy != "" {
		if err := runPolicySweep(*cachePolicy, *cacheRequests, *cacheSeed, *csv); err != nil {
			fatal(err)
		}
		return
	}

	flush, err := topts.Activate()
	if err != nil {
		fatal(err)
	}

	r := harness.NewRunner(*scale, *duration)
	r.Workers = *workers
	r.RegisterMetrics(telemetry.Default)
	if *cacheDir != "" {
		store, err := cas.Open(*cacheDir, telemetry.Default)
		if err != nil {
			fatal(fmt.Errorf("opening cache %s: %w", *cacheDir, err))
		}
		r.Cache = store
	}
	if *verbose {
		r.Progress = telemetry.NewLineWriter(os.Stderr)
	}

	emit := func(t *tables.Table) {
		if *csv {
			if err := t.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(t)
	}

	run := func(name string) {
		switch name {
		case "table2":
			t, err := r.Table2()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "vod":
			t, _, err := r.Table3()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "live":
			t, _, err := r.Table4()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "popular":
			t, _, err := r.Table5()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "upload":
			t, err := r.UploadStudy()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "platform":
			t, err := r.PlatformStudy()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "ablation":
			t, err := r.AblationStudy("girl")
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "isasweep":
			t, err := r.ISASweepStudy()
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "decode":
			t, err := r.DecodeStudy()
			if err != nil {
				fatal(err)
			}
			emit(t)
		default:
			fatal(fmt.Errorf("unknown scenario %q", name))
		}
	}

	if *scenario == "all" {
		for _, s := range []string{"table2", "vod", "live", "popular", "upload", "platform"} {
			run(s)
		}
	} else {
		run(*scenario)
	}
	if *verbose {
		printPoolStats(r)
	}
	if err := flush(); err != nil {
		fatal(err)
	}
}

// printPoolStats reports how the grid cells were spread across the
// worker pool (only meaningful with -j > 1).
func printPoolStats(r *harness.Runner) {
	for _, s := range r.PoolStats() {
		fmt.Fprintf(os.Stderr, "worker %d: %d cells, %v busy\n", s.Worker, s.Jobs, s.Busy)
	}
}

func printTable1() {
	t := tables.New("Table 1: vbench scoring functions and constraints",
		"scenario", "constraint", "score")
	rows := [][3]string{
		{scoring.Upload.String(), "B > 0.2", "S x Q"},
		{scoring.Live.String(), "speed >= output Mpixel/s", "B x Q"},
		{scoring.VOD.String(), "Q >= 1 or PSNR >= 50 dB", "S x B"},
		{scoring.Popular.String(), "B, Q >= 1 and S >= 0.1", "B x Q"},
		{scoring.Platform.String(), "B = 1 and Q = 1", "S"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2])
	}
	fmt.Println(t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbench:", err)
	os.Exit(1)
}
