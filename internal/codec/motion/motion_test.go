package motion

import (
	"testing"

	"vbench/internal/perf"
	"vbench/internal/rng"
)

// makePlane builds a textured test plane.
func makePlane(w, h int, seed uint64) Plane {
	r := rng.New(seed)
	pix := make([]uint8, w*h)
	for i := range pix {
		pix[i] = uint8(r.Intn(256))
	}
	return Plane{Pix: pix, W: w, H: h}
}

// shiftPlane returns src translated by (dx, dy) with edge replication.
func shiftPlane(src Plane, dx, dy int) Plane {
	dst := Plane{Pix: make([]uint8, src.W*src.H), W: src.W, H: src.H}
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			dst.Pix[y*src.W+x] = src.clampedSample(x-dx, y-dy)
		}
	}
	return dst
}

func TestSADIdenticalBlocksIsZero(t *testing.T) {
	p := makePlane(64, 64, 1)
	if got := SAD(p, 16, 16, p, 16, 16, 16, 16); got != 0 {
		t.Errorf("SAD of identical blocks = %d", got)
	}
}

func TestSADKnownValue(t *testing.T) {
	a := Plane{Pix: make([]uint8, 64), W: 8, H: 8}
	b := Plane{Pix: make([]uint8, 64), W: 8, H: 8}
	for i := range a.Pix {
		a.Pix[i] = 10
		b.Pix[i] = 13
	}
	if got := SAD(a, 0, 0, b, 0, 0, 8, 8); got != 3*64 {
		t.Errorf("SAD = %d, want %d", got, 3*64)
	}
}

func TestSADClampsOutOfBounds(t *testing.T) {
	p := makePlane(32, 32, 2)
	// Should not panic and equals comparing against the edge-replicated
	// block.
	got := SAD(p, 0, 0, p, -5, -5, 16, 16)
	var want int64
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			d := int(p.Pix[y*32+x]) - int(p.clampedSample(x-5, y-5))
			if d < 0 {
				d = -d
			}
			want += int64(d)
		}
	}
	if got != want {
		t.Errorf("clamped SAD = %d, want %d", got, want)
	}
}

func TestPredictLumaIntegerVectorCopies(t *testing.T) {
	p := makePlane(64, 64, 3)
	dst := make([]uint8, 256)
	PredictLuma(dst, p, 16, 16, MV{X: 8, Y: -4}, 16, 16) // (+2, −1) integer
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := p.clampedSample(16+x+2, 16+y-1)
			if dst[y*16+x] != want {
				t.Fatalf("(%d,%d): got %d want %d", x, y, dst[y*16+x], want)
			}
		}
	}
}

func TestPredictLumaHalfPelAverages(t *testing.T) {
	// A plane with a horizontal ramp: half-pel shift must land midway.
	p := Plane{Pix: make([]uint8, 32*32), W: 32, H: 32}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			p.Pix[y*32+x] = uint8(x * 8)
		}
	}
	dst := make([]uint8, 16)
	PredictLuma(dst, p, 8, 8, MV{X: 2, Y: 0}, 4, 4) // +0.5 px horizontally
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			a := int(p.Pix[(8+y)*32+8+x])
			b := int(p.Pix[(8+y)*32+8+x+1])
			want := (a + b + 1) / 2
			got := int(dst[y*4+x])
			if got < want-1 || got > want+1 {
				t.Fatalf("half-pel (%d,%d): got %d want ≈%d", x, y, got, want)
			}
		}
	}
}

func TestPredictChromaIntegerVector(t *testing.T) {
	p := makePlane(32, 32, 5)
	dst := make([]uint8, 64)
	// mv = (16, 8) quarter-pel luma = (2, 1) integer chroma pixels.
	PredictChroma(dst, p, 8, 8, MV{X: 16, Y: 8}, 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := p.clampedSample(8+x+2, 8+y+1)
			if dst[y*8+x] != want {
				t.Fatalf("(%d,%d): got %d want %d", x, y, dst[y*8+x], want)
			}
		}
	}
}

func searchFindsShift(t *testing.T, kind SearchKind, dx, dy int) {
	t.Helper()
	ref := makeSmooth(96, 96, 77)
	// Content moves by (+dx, +dy) from ref to cur, so the motion
	// vector (which points from the current block into the reference)
	// is (−dx, −dy).
	cur := shiftPlane(ref, dx, dy)
	var c perf.Counters
	p := Params{Kind: kind, Range: 12, SubPel: 0, Lambda: 0}
	mv, _ := Search(cur, 32, 32, ref, MV{}, 16, 16, p, nil, &c)
	if int(mv.X/4) != -dx || int(mv.Y/4) != -dy {
		t.Errorf("%v search: found (%d,%d), want (%d,%d)", kind, mv.X/4, mv.Y/4, -dx, -dy)
	}
	if c.Ops[perf.KSAD] == 0 {
		t.Error("search recorded no SAD work")
	}
}

// makeSmooth builds a smooth low-frequency plane on which block
// matching has an unambiguous optimum.
func makeSmooth(w, h int, seed uint64) Plane {
	r := rng.New(seed)
	base := make([]int, 16*16)
	for i := range base {
		base[i] = r.Intn(256)
	}
	pix := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx, gy := x/8, y/8
			fx, fy := x%8, y%8
			v00 := base[(gy%16)*16+gx%16]
			v10 := base[(gy%16)*16+(gx+1)%16]
			v01 := base[((gy+1)%16)*16+gx%16]
			v11 := base[((gy+1)%16)*16+(gx+1)%16]
			top := v00*(8-fx) + v10*fx
			bot := v01*(8-fx) + v11*fx
			pix[y*w+x] = uint8((top*(8-fy) + bot*fy) / 64)
		}
	}
	return Plane{Pix: pix, W: w, H: h}
}

func TestFullSearchFindsExactShift(t *testing.T) {
	searchFindsShift(t, SearchFull, 5, -3)
	searchFindsShift(t, SearchFull, -7, 2)
}

func TestDiamondSearchFindsShift(t *testing.T) {
	searchFindsShift(t, SearchDiamond, 4, -2)
}

func TestHexSearchFindsShift(t *testing.T) {
	searchFindsShift(t, SearchHex, 3, 3)
}

func TestFullSearchCostsMoreThanDiamond(t *testing.T) {
	ref := makeSmooth(96, 96, 9)
	cur := shiftPlane(ref, 3, 1)
	var cFull, cDia perf.Counters
	Search(cur, 32, 32, ref, MV{}, 16, 16, Params{Kind: SearchFull, Range: 12}, nil, &cFull)
	Search(cur, 32, 32, ref, MV{}, 16, 16, Params{Kind: SearchDiamond, Range: 12}, nil, &cDia)
	if cFull.Ops[perf.KSAD] <= cDia.Ops[perf.KSAD]*2 {
		t.Errorf("full search ops (%d) not ≫ diamond ops (%d)", cFull.Ops[perf.KSAD], cDia.Ops[perf.KSAD])
	}
}

func TestSubPelRefinementImprovesSAD(t *testing.T) {
	// Construct a reference whose best match is at a half-pel offset:
	// current = average of two neighbouring columns.
	ref := makeSmooth(96, 96, 13)
	cur := Plane{Pix: make([]uint8, 96*96), W: 96, H: 96}
	for y := 0; y < 96; y++ {
		for x := 0; x < 95; x++ {
			cur.Pix[y*96+x] = uint8((int(ref.Pix[y*96+x]) + int(ref.Pix[y*96+x+1]) + 1) / 2)
		}
	}
	var c perf.Counters
	scratch := make([]uint8, 256)
	mvInt, _ := Search(cur, 32, 32, ref, MV{}, 16, 16, Params{Kind: SearchFull, Range: 4, SubPel: 0}, nil, &c)
	mvHalf, _ := Search(cur, 32, 32, ref, MV{}, 16, 16, Params{Kind: SearchFull, Range: 4, SubPel: 2}, nil, &c)
	sadInt := PredSAD(cur, 32, 32, ref, mvInt, 16, 16, scratch, &c)
	sadHalf := PredSAD(cur, 32, 32, ref, mvHalf, 16, 16, scratch, &c)
	if sadHalf > sadInt {
		t.Errorf("sub-pel refinement worsened SAD: %d > %d", sadHalf, sadInt)
	}
	if mvHalf.X&3 == 0 && mvHalf.Y&3 == 0 {
		t.Logf("note: refinement stayed at integer position %v", mvHalf)
	}
}

func TestMedianMV(t *testing.T) {
	cases := []struct {
		a, b, c, want MV
	}{
		{MV{0, 0}, MV{0, 0}, MV{0, 0}, MV{0, 0}},
		{MV{1, 5}, MV{2, 4}, MV{3, 3}, MV{2, 4}},
		{MV{-4, 0}, MV{8, 8}, MV{0, 2}, MV{0, 2}},
		{MV{7, -7}, MV{7, -7}, MV{1, 1}, MV{7, -7}},
	}
	for _, tc := range cases {
		if got := MedianMV(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("MedianMV(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestSearchRespectsRange(t *testing.T) {
	ref := makePlane(128, 128, 21)
	cur := shiftPlane(ref, 20, 0) // shift beyond range
	var c perf.Counters
	mv, _ := Search(cur, 48, 48, ref, MV{}, 16, 16, Params{Kind: SearchFull, Range: 8, SubPel: 2}, nil, &c)
	if mv.X/4 > 8 || mv.X/4 < -8 || mv.Y/4 > 8 || mv.Y/4 < -8 {
		t.Errorf("search returned out-of-range vector %v", mv)
	}
}

func TestLambdaPenalizesLongVectors(t *testing.T) {
	// On a flat plane all SADs are equal; with a rate penalty the
	// search must return the predictor (here zero).
	p := Plane{Pix: make([]uint8, 64*64), W: 64, H: 64}
	for i := range p.Pix {
		p.Pix[i] = 100
	}
	var c perf.Counters
	mv, _ := Search(p, 24, 24, p, MV{}, 16, 16, Params{Kind: SearchFull, Range: 6, Lambda: 160}, nil, &c)
	if mv.X != 0 || mv.Y != 0 {
		t.Errorf("flat-plane search with rate penalty returned %v, want (0,0)", mv)
	}
}

func TestSharpInterpFullPelMatchesCopy(t *testing.T) {
	p := makePlane(64, 64, 31)
	a := make([]uint8, 256)
	b := make([]uint8, 256)
	mv := MV{X: 8, Y: -12} // integer vector
	PredictLuma(a, p, 24, 24, mv, 16, 16)
	PredictLumaSharp(b, p, 24, 24, mv, 16, 16, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("full-pel sharp prediction differs at %d", i)
		}
	}
}

func TestSharpInterpHalfPelNearBilinear(t *testing.T) {
	// On a smooth ramp the 4-tap kernel and bilinear agree closely.
	p := Plane{Pix: make([]uint8, 64*64), W: 64, H: 64}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			p.Pix[y*64+x] = uint8(2*x + y)
		}
	}
	a := make([]uint8, 64)
	b := make([]uint8, 64)
	mv := MV{X: 2, Y: 2}
	PredictLuma(a, p, 24, 24, mv, 8, 8)
	PredictLumaSharp(b, p, 24, 24, mv, 8, 8, nil)
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < -2 || d > 2 {
			t.Fatalf("ramp half-pel diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSharpInterpSharperOnTexture(t *testing.T) {
	// On alternating columns (Nyquist) a quarter-pel shift attenuates
	// the signal; the 4-tap kernel must keep strictly more energy than
	// bilinear (its raison d'être). Half-pel is excluded: at exactly
	// half a sample, Nyquist energy is zero for every symmetric filter.
	p := Plane{Pix: make([]uint8, 64*64), W: 64, H: 64}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x%2 == 0 {
				p.Pix[y*64+x] = 80
			} else {
				p.Pix[y*64+x] = 180
			}
		}
	}
	bi := make([]uint8, 64)
	sh := make([]uint8, 64)
	mv := MV{X: 1, Y: 0} // quarter-pel
	PredictLuma(bi, p, 24, 24, mv, 8, 8)
	PredictLumaSharp(sh, p, 24, 24, mv, 8, 8, nil)
	variance := func(xs []uint8) float64 {
		var s, ss float64
		for _, v := range xs {
			s += float64(v)
			ss += float64(v) * float64(v)
		}
		n := float64(len(xs))
		return ss/n - (s/n)*(s/n)
	}
	if variance(sh) <= variance(bi) {
		t.Errorf("4-tap kernel did not preserve more texture: var %0.1f vs %0.1f",
			variance(sh), variance(bi))
	}
}

func TestSharpInterpEdgeClamped(t *testing.T) {
	// Vectors pointing far outside the frame must not panic and must
	// produce valid samples.
	p := makePlane(32, 32, 41)
	dst := make([]uint8, 256)
	for _, mv := range []MV{{X: -200, Y: -200}, {X: 300, Y: 300}, {X: -199, Y: 299}} {
		PredictLumaSharp(dst, p, 0, 0, mv, 16, 16, nil)
	}
}
