package corpus

import (
	"fmt"

	"vbench/internal/codec"
	"vbench/internal/metrics"
	"vbench/internal/video"
)

// EntropyQP is the constant-quality operating point used to measure
// content entropy, the analogue of the paper's libx264 CRF 18
// ("visually lossless") setting.
const EntropyQP = 18

// MeasureEntropy returns the measured entropy of a sequence in
// bits/pixel/second: the normalized bitrate the reference encoder
// needs at visually lossless constant quality. This is the paper's
// operational definition of content complexity — an encoder asked for
// fixed quality uses exactly as many bits as the content demands.
func MeasureEntropy(seq *video.Sequence, eng *codec.Engine) (float64, error) {
	if err := seq.Validate(); err != nil {
		return 0, err
	}
	res, err := eng.Encode(seq, codec.Config{RC: codec.RCConstQP, QP: EntropyQP})
	if err != nil {
		return 0, fmt.Errorf("corpus: entropy measurement encode: %w", err)
	}
	return metrics.Bitrate(int64(len(res.Bitstream)), seq.Width(), seq.Height(), seq.Duration())
}
