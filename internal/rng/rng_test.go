package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the published SplitMix64
	// reference implementation.
	s := NewSplitMix64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("draw %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterministicAcrossInstances(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %v out of bounds", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw %v < 0", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.05 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d vs %d", got, sum)
	}
}

func TestMul64MatchesStdlib(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
