// Package telemetry is a stub standing in for vbench/internal/telemetry;
// metricname matches the constructors by package name.
package telemetry

// Counter, Gauge, and Histogram mirror the real metric kinds.
type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
)

// Registry mirrors the real metric registry.
type Registry struct{}

// Default mirrors the process-wide registry.
var Default = &Registry{}

// GetCounter mirrors the package-level convenience constructor.
func GetCounter(name string) *Counter { return nil }

// GetGauge mirrors the package-level convenience constructor.
func GetGauge(name string) *Gauge { return nil }

// GetHistogram mirrors the package-level convenience constructor.
func GetHistogram(name string, bounds ...float64) *Histogram { return nil }

// Counter mirrors the registry constructor.
func (r *Registry) Counter(name string) *Counter { return nil }

// Gauge mirrors the registry constructor.
func (r *Registry) Gauge(name string) *Gauge { return nil }

// GaugeFunc mirrors the callback-gauge constructor.
func (r *Registry) GaugeFunc(name string, fn func() float64) {}

// Histogram mirrors the registry constructor.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram { return nil }
