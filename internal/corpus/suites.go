package corpus

import (
	"fmt"
	"math"

	"vbench/internal/video"
)

// Synthetic stand-ins for the public video suites the paper compares
// against (Section 3 / Figure 4). Each suite is characterized by the
// resolution and entropy ranges the paper plots:
//
//   - Netflix: 9 clips, all 1080p, entropy ≥ 1 (movie/TV content);
//   - Xiph (Derf collection): 41 clips, 480p–4K, entropy ≥ 1;
//   - SPEC 2017: two HD segments of the same animation with almost
//     identical entropy;
//   - SPEC 2006: two small low-resolution clips.
//
// Because the suites exist here to show how a video set's position in
// (resolution, entropy) space biases microarchitectural conclusions,
// what matters is that each synthetic suite occupies its real
// counterpart's region of Figure 4 — high-entropy-only for
// Netflix/Xiph, a single point pair for SPEC.

// ParamsForEntropy maps a target entropy (bits/pixel/s) to content
// synthesis parameters. The mapping is monotone: more detail, motion,
// and temporal noise as entropy grows; text-heavy static layouts at
// the slideshow end.
func ParamsForEntropy(e float64) video.ContentParams {
	// Normalize log2(entropy) over the corpus range [0.01, 100].
	t := (math.Log2(e) - math.Log2(0.01)) / (math.Log2(100) - math.Log2(0.01))
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	p := video.ContentParams{
		Detail:        0.08 + 0.9*t,
		Motion:        0.85 * t,
		ChromaVariety: 0.2 + 0.6*t,
	}
	if t > 0.40 {
		p.Noise = 0.75 * (t - 0.40) / 0.60
	}
	p.Sprites = int(1 + 8*t)
	if t < 0.30 {
		p.TextRegions = 6
	}
	return p
}

// suiteClip builds a synthetic clip for a comparison suite.
func suiteClip(name string, w, h int, fps float64, entropy float64) Clip {
	return Clip{
		Name:         name,
		Width:        w,
		Height:       h,
		FrameRate:    fps,
		PaperEntropy: entropy,
		Params:       ParamsForEntropy(entropy),
	}
}

// NetflixSuite returns the 9-clip Netflix dataset stand-in: all
// 1080p, entropy 1–12.
func NetflixSuite() []Clip {
	entropies := []float64{1.2, 1.8, 2.6, 3.5, 4.6, 5.8, 7.2, 9.0, 11.5}
	out := make([]Clip, len(entropies))
	for i, e := range entropies {
		out[i] = suiteClip(fmt.Sprintf("netflix%02d", i+1), 1920, 1080, 24, e)
	}
	return out
}

// XiphSuite returns the Derf-collection stand-in: 41 clips spanning
// 480p to 4K, entropy ≥ 1.
func XiphSuite() []Clip {
	resolutions := []struct {
		w, h int
		fps  float64
	}{
		{854, 480, 30},
		{1280, 720, 50},
		{1920, 1080, 30},
		{3840, 2160, 30},
	}
	out := make([]Clip, 0, 41)
	for i := 0; i < 41; i++ {
		r := resolutions[i%len(resolutions)]
		// Entropies log-spaced over [1, 16].
		e := math.Exp2(float64(i%11) / 10 * 4)
		if e < 1 {
			e = 1
		}
		out = append(out, suiteClip(fmt.Sprintf("xiph%02d", i+1), r.w, r.h, r.fps, math.Round(e*10)/10))
	}
	return out
}

// SPEC2017Suite returns the SPEC CPU 2017 stand-in: two HD segments
// from the same animation, nearly identical entropy.
func SPEC2017Suite() []Clip {
	return []Clip{
		suiteClip("spec17a", 1280, 720, 24, 3.0),
		suiteClip("spec17b", 1280, 720, 24, 3.2),
	}
}

// SPEC2006Suite returns the SPEC CPU 2006 stand-in: the two
// low-resolution reference-encoder inputs.
func SPEC2006Suite() []Clip {
	return []Clip{
		suiteClip("spec06a", 352, 288, 25, 1.8),
		suiteClip("spec06b", 448, 336, 25, 2.4),
	}
}

// CoverageClips materializes n synthetic clips spread over the
// corpus coverage set (stride-sampled so n stays tractable for
// encode-based studies). The full coverage set has 396 categories;
// encoding studies sample it.
func CoverageClips(n int) []Clip {
	cats := NewModel().CoverageSet()
	if n <= 0 || n > len(cats) {
		n = len(cats)
	}
	stride := len(cats) / n
	if stride < 1 {
		stride = 1
	}
	var out []Clip
	for i := 0; i < len(cats) && len(out) < n; i += stride {
		c := cats[i]
		w, h := dimsForKPixels(c.KPixels)
		out = append(out, suiteClip(fmt.Sprintf("cov%03d", i), w, h, float64(c.FPS), c.Entropy))
	}
	return out
}

// dimsForKPixels maps a category's kilopixel count back to the
// standard resolution it came from.
func dimsForKPixels(kpix int) (int, int) {
	best := StandardResolutions[0].Res
	bestD := math.Inf(1)
	for _, rs := range StandardResolutions {
		d := math.Abs(float64(rs.Res.KPixels() - kpix))
		if d < bestD {
			bestD = d
			best = rs.Res
		}
	}
	return best.Width, best.Height
}

// Suite identifies a comparison video set.
type Suite string

// The comparison suites of the paper.
const (
	SuiteVBench   Suite = "vbench"
	SuiteNetflix  Suite = "netflix"
	SuiteXiph     Suite = "xiph"
	SuiteSPEC17   Suite = "spec2017"
	SuiteSPEC06   Suite = "spec2006"
	SuiteCoverage Suite = "coverage"
)

// SuiteClips returns the clips of a named suite. The coverage suite is
// sampled down to 24 clips for encode-based studies.
func SuiteClips(s Suite) ([]Clip, error) {
	switch s {
	case SuiteVBench:
		return VBenchClips(), nil
	case SuiteNetflix:
		return NetflixSuite(), nil
	case SuiteXiph:
		return XiphSuite(), nil
	case SuiteSPEC17:
		return SPEC2017Suite(), nil
	case SuiteSPEC06:
		return SPEC2006Suite(), nil
	case SuiteCoverage:
		return CoverageClips(24), nil
	}
	return nil, fmt.Errorf("corpus: unknown suite %q", s)
}
