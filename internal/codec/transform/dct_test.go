package transform

import (
	"testing"
	"testing/quick"

	"vbench/internal/rng"
)

// maxResidualError is the acceptable per-sample error of a forward +
// inverse transform round trip without quantization: the fixed-point
// basis loses well under one level.
const maxResidualError = 1

func roundTripError(t *testing.T, n int, seed uint64) int32 {
	t.Helper()
	r := rng.New(seed)
	nn := n * n
	src := make([]int32, nn)
	for i := range src {
		src[i] = int32(r.Intn(511) - 255)
	}
	coeffs := make([]int32, nn)
	Forward(src, coeffs, n)
	rec := make([]int32, nn)
	Inverse(coeffs, rec, n)
	var worst int32
	for i := range src {
		d := src[i] - rec[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestForwardInverseNearLossless4(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		if e := roundTripError(t, 4, seed); e > maxResidualError {
			t.Fatalf("seed %d: 4x4 round-trip error %d > %d", seed, e, maxResidualError)
		}
	}
}

func TestForwardInverseNearLossless8(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		if e := roundTripError(t, 8, seed); e > maxResidualError {
			t.Fatalf("seed %d: 8x8 round-trip error %d > %d", seed, e, maxResidualError)
		}
	}
}

func TestDCTOfFlatBlockIsDCOnly(t *testing.T) {
	for _, n := range []int{4, 8} {
		nn := n * n
		src := make([]int32, nn)
		for i := range src {
			src[i] = 100
		}
		coeffs := make([]int32, nn)
		Forward(src, coeffs, n)
		// DC (Q3) should be ≈ 100·n·8.
		wantDC := int32(100 * n * 8)
		if d := coeffs[0] - wantDC; d < -8*int32(n) || d > 8*int32(n) {
			t.Errorf("n=%d: DC = %d, want ≈%d", n, coeffs[0], wantDC)
		}
		for i := 1; i < nn; i++ {
			if coeffs[i] > 8 || coeffs[i] < -8 {
				t.Errorf("n=%d: AC coefficient %d = %d, want ≈0", n, i, coeffs[i])
			}
		}
	}
}

func TestDCTLinearity(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{4, 8} {
		nn := n * n
		a := make([]int32, nn)
		b := make([]int32, nn)
		sum := make([]int32, nn)
		for i := range a {
			a[i] = int32(r.Intn(201) - 100)
			b[i] = int32(r.Intn(201) - 100)
			sum[i] = a[i] + b[i]
		}
		ca := make([]int32, nn)
		cb := make([]int32, nn)
		cs := make([]int32, nn)
		Forward(a, ca, n)
		Forward(b, cb, n)
		Forward(sum, cs, n)
		for i := range cs {
			d := cs[i] - ca[i] - cb[i]
			if d < -2 || d > 2 {
				t.Fatalf("n=%d: linearity violated at %d: %d vs %d+%d", n, i, cs[i], ca[i], cb[i])
			}
		}
	}
}

func TestQuantizeDequantizeBounds(t *testing.T) {
	f := func(raw []int16, qpRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		qp := int(qpRaw) % 52
		n := 16
		coeffs := make([]int32, n)
		for i := 0; i < n && i < len(raw); i++ {
			coeffs[i] = int32(raw[i])
		}
		levels := make([]int32, n)
		Quantize(coeffs, levels, qp, DeadZoneInter)
		deq := make([]int32, n)
		Dequantize(levels, deq, qp)
		step := int64(QStepQ6(qp))
		for i := range coeffs {
			// |orig − dequant| must be below one quantizer step (Q3
			// coefficients vs Q6 step: step/8 in Q3).
			d := int64(coeffs[i]-deq[i]) * 8 // Q6
			if d < 0 {
				d = -d
			}
			if d > step+8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeZeroPreserving(t *testing.T) {
	coeffs := make([]int32, 16)
	levels := make([]int32, 16)
	Quantize(coeffs, levels, 30, DeadZoneIntra)
	for i, l := range levels {
		if l != 0 {
			t.Errorf("level %d = %d for zero input", i, l)
		}
	}
}

func TestQuantizeMonotoneInQP(t *testing.T) {
	// Higher QP must never produce larger level magnitudes.
	r := rng.New(11)
	coeffs := make([]int32, 16)
	for i := range coeffs {
		coeffs[i] = int32(r.Intn(4001) - 2000)
	}
	prev := make([]int32, 16)
	Quantize(coeffs, prev, 0, DeadZoneInter)
	for qp := 1; qp <= 51; qp++ {
		cur := make([]int32, 16)
		Quantize(coeffs, cur, qp, DeadZoneInter)
		for i := range cur {
			if abs32(cur[i]) > abs32(prev[i]) {
				t.Fatalf("qp %d: |level[%d]| grew from %d to %d", qp, i, prev[i], cur[i])
			}
		}
		copy(prev, cur)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestQStepDoublesEverySix(t *testing.T) {
	for qp := 0; qp+6 <= 51; qp++ {
		a, b := QStepQ6(qp), QStepQ6(qp+6)
		if b != 2*a {
			t.Errorf("QStep(%d)=%d but QStep(%d)=%d, want exact doubling", qp, a, qp+6, b)
		}
	}
}

func TestQStepRange(t *testing.T) {
	if got := QStep(0); got < 0.5 || got > 0.8 {
		t.Errorf("QStep(0) = %v, want ≈0.625", got)
	}
	if got := QStep(51); got < 180 || got > 260 {
		t.Errorf("QStep(51) = %v, want ≈228", got)
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	check := func(name string, zz []int, n int) {
		seen := make([]bool, n)
		for _, idx := range zz {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("%s is not a permutation: index %d", name, idx)
			}
			seen[idx] = true
		}
	}
	check("ZigZag4", ZigZag4[:], 16)
	check("ZigZag8", ZigZag8[:], 64)
}

func TestZigZagStartsAtDCAndEndsAtHighest(t *testing.T) {
	if ZigZag4[0] != 0 || ZigZag4[15] != 15 {
		t.Errorf("ZigZag4 endpoints: %d..%d", ZigZag4[0], ZigZag4[15])
	}
	if ZigZag8[0] != 0 || ZigZag8[63] != 63 {
		t.Errorf("ZigZag8 endpoints: %d..%d", ZigZag8[0], ZigZag8[63])
	}
}

func TestScanUnscanRoundTrip(t *testing.T) {
	f := func(raw []int32) bool {
		for _, n := range []int{4, 8} {
			nn := n * n
			block := make([]int32, nn)
			for i := 0; i < nn && i < len(raw); i++ {
				block[i] = raw[i]
			}
			zz := make([]int32, nn)
			back := make([]int32, nn)
			Scan(block, zz, n)
			Unscan(zz, back, n)
			for i := range block {
				if block[i] != back[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSATDZeroForZeroResidual(t *testing.T) {
	res := make([]int32, 256)
	if got := SATD(res, 16, 16); got != 0 {
		t.Errorf("SATD of zero residual = %d", got)
	}
}

func TestSATDScalesWithMagnitude(t *testing.T) {
	r := rng.New(3)
	res := make([]int32, 256)
	for i := range res {
		res[i] = int32(r.Intn(21) - 10)
	}
	s1 := SATD(res, 16, 16)
	for i := range res {
		res[i] *= 3
	}
	s3 := SATD(res, 16, 16)
	if s3 != 3*s1 {
		t.Errorf("SATD not linear in magnitude: %d vs 3×%d", s3, s1)
	}
}

func TestSATD4MatchesManualDC(t *testing.T) {
	// A flat residual of value v has SATD = 16·|v| (all energy in DC).
	res := make([]int32, 16)
	for i := range res {
		res[i] = 5
	}
	if got := SATD4(res); got != 80 {
		t.Errorf("SATD4 of flat 5 block = %d, want 80", got)
	}
}
