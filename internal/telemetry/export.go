package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Export is a JSON-serializable snapshot of (a slice of) a Registry,
// built for shipping metrics between processes: fleet workers attach
// one to each heartbeat and the master folds it into its own registry
// with Absorb. Exports carry cumulative values — the receiver, not the
// sender, turns consecutive snapshots into deltas — so a lost or
// duplicated push never double-counts and never loses events for good.
type Export struct {
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]float64    `json:"gauges,omitempty"`
	Histograms map[string]HistExport `json:"histograms,omitempty"`
}

// HistExport is one histogram's cumulative state.
type HistExport struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last = overflow
	Sum    float64   `json:"sum"`
}

// Export snapshots every metric whose name starts with prefix (""
// exports everything). Gauge functions are evaluated at export time.
func (r *Registry) Export(prefix string) Export {
	counters, gauges, hists := r.snapshotNames()
	e := Export{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistExport{},
	}
	for _, n := range counters {
		if strings.HasPrefix(n, prefix) {
			e.Counters[n] = r.Counter(n).Value()
		}
	}
	for _, n := range gauges {
		if strings.HasPrefix(n, prefix) {
			e.Gauges[n] = r.gaugeValue(n)
		}
	}
	for _, n := range hists {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		h := r.Histogram(n)
		he := HistExport{Bounds: h.Bounds(), Counts: make([]int64, len(h.bounds)+1)}
		for i := range he.Counts {
			he.Counts[i] = h.BucketCount(i)
		}
		he.Sum = h.Sum()
		e.Histograms[n] = he
	}
	return e
}

// Absorb folds the change between two cumulative exports from the same
// sender into the registry: counters and histogram buckets advance by
// cur−prev, gauges take cur's value directly. Pass the sender's
// previous export as prev (the zero Export for its first push). A
// negative counter or bucket delta means the sender restarted and its
// cumulative state reset, so cur is applied whole rather than dropped.
// A histogram whose bounds conflict with an existing local layout is
// skipped — remote data must never trip the local re-registration
// panic.
func (r *Registry) Absorb(cur, prev Export) {
	for _, n := range sortedKeys(cur.Counters) {
		d := cur.Counters[n] - prev.Counters[n]
		if d < 0 {
			d = cur.Counters[n]
		}
		if d != 0 {
			r.Counter(n).Add(d)
		}
	}
	for _, n := range sortedKeys(cur.Gauges) {
		r.Gauge(n).Set(cur.Gauges[n])
	}
	for _, n := range sortedKeys(cur.Histograms) {
		he := cur.Histograms[n]
		if len(he.Counts) != len(he.Bounds)+1 {
			continue // malformed push
		}
		h, ok := r.histogramIfCompatible(n, he.Bounds)
		if !ok {
			continue // conflicting local layout; drop, don't panic
		}
		pe, havePrev := prev.Histograms[n]
		if havePrev && (len(pe.Counts) != len(he.Counts) || !equalBounds(sortedBounds(pe.Bounds), h.bounds)) {
			havePrev = false
		}
		restarted := false
		for i, c := range he.Counts {
			if havePrev && c < pe.Counts[i] {
				restarted = true
				break
			}
		}
		dsum := he.Sum
		for i, c := range he.Counts {
			d := c
			if havePrev && !restarted {
				d = c - pe.Counts[i]
			}
			if d != 0 {
				h.counts[i].Add(d)
				h.count.Add(d)
			}
		}
		if havePrev && !restarted {
			dsum = he.Sum - pe.Sum
		}
		if dsum != 0 {
			h.addSum(dsum)
		}
	}
}

// histogramIfCompatible returns the named histogram, creating it with
// the given bounds on first use. Unlike Histogram it reports false on
// a bounds conflict instead of panicking: the bounds here come off the
// wire, and remote data must never crash the receiver.
func (r *Registry) histogramIfCompatible(name string, bounds []float64) (*Histogram, bool) {
	bs := sortedBounds(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
		return h, true
	}
	return h, equalBounds(h.bounds, bs)
}

// addSum CAS-accumulates v into the histogram's float64-bits sum.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// sortedBounds returns a sorted copy of bs.
func sortedBounds(bs []float64) []float64 {
	out := append([]float64(nil), bs...)
	sort.Float64s(out)
	return out
}

// sortedKeys returns m's keys in sorted order, so absorption touches
// metrics in a deterministic sequence.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
