module lint.test

go 1.22
