package kern

import "encoding/binary"

// The bilinear kernels operate on the clamp-free interior case: the
// caller guarantees that all four taps of every output sample lie
// inside the reference plane, i.e. rows 0..bh and columns 0..bw
// (inclusive) are addressable from ref. Edge-replicating positions
// stay on the scalar paths in internal/codec/motion.
//
// Lane safety: weights are the quarter-pel (Σw = 16, round 8, shift 4)
// or eighth-pel (Σw = 64, round 32, shift 6) bilinear sets, so a lane
// accumulates at most 255·64 + 32 = 16352 < 2¹⁶ and the shifted result
// is an exact sample value ≤ 255.

// bilerpLanes interpolates four 16-bit lanes: (a·w00 + b·w10 + c·w01 +
// d·w11 + round) >> shift, masked back to sample range. rlanes holds
// the rounding constant replicated per lane.
func bilerpLanes(a, b, c, d, w00, w10, w01, w11, rlanes uint64, shift uint) uint64 {
	return (a*w00 + b*w10 + c*w01 + d*w11 + rlanes) >> shift & laneEven
}

// PredictBilinear writes the bw×bh bilinear interpolation of ref into
// dst. ref points at the top-left integer tap (it must address bh+1
// rows of bw+1 samples with stride refStride); dst uses dstStride.
// w00..w11 are the bilinear weights, with rounding term round and
// right shift.
//
//vbench:noalloc
func PredictBilinear(dst []uint8, dstStride int, ref []uint8, refStride int, w00, w10, w01, w11, round int, shift uint, bw, bh int) {
	u00, u10, u01, u11 := uint64(w00), uint64(w10), uint64(w01), uint64(w11)
	rlanes := uint64(round) * laneOnes
	for y := 0; y < bh; y++ {
		r0 := ref[y*refStride:]
		r1 := ref[(y+1)*refStride:]
		d := dst[y*dstStride:]
		x := 0
		for ; x+8 <= bw; x += 8 {
			a := binary.LittleEndian.Uint64(r0[x:])
			b := binary.LittleEndian.Uint64(r0[x+1:])
			c := binary.LittleEndian.Uint64(r1[x:])
			e := binary.LittleEndian.Uint64(r1[x+1:])
			pe := bilerpLanes(a&laneEven, b&laneEven, c&laneEven, e&laneEven, u00, u10, u01, u11, rlanes, shift)
			po := bilerpLanes(a>>8&laneEven, b>>8&laneEven, c>>8&laneEven, e>>8&laneEven, u00, u10, u01, u11, rlanes, shift)
			binary.LittleEndian.PutUint64(d[x:], pe|po<<8)
		}
		for ; x < bw; x++ {
			a := int(r0[x])
			b := int(r0[x+1])
			c := int(r1[x])
			e := int(r1[x+1])
			d[x] = uint8((a*w00 + b*w10 + c*w01 + e*w11 + round) >> shift)
		}
	}
}

// BilinearSADThresh fuses bilinear interpolation with SAD against the
// current block, with the same deterministic per-row early termination
// as SADThresh. cur points at the top-left of the current block
// (stride curStride); ref points at the top-left integer tap of the
// interior interpolation window (stride refStride). Weight, round,
// and shift parameters follow PredictBilinear. The interpolated
// samples are never materialized, saving a store/reload round trip
// per sub-pel motion candidate.
//
//vbench:noalloc
func BilinearSADThresh(cur []uint8, curStride int, ref []uint8, refStride int, w00, w10, w01, w11, round int, shift uint, bw, bh int, thresh int64) (sad int64, early bool) {
	if thresh <= 0 {
		return 0, true
	}
	u00, u10, u01, u11 := uint64(w00), uint64(w10), uint64(w01), uint64(w11)
	rlanes := uint64(round) * laneOnes
	var sum int64
	for y := 0; y < bh; y++ {
		r0 := ref[y*refStride:]
		r1 := ref[(y+1)*refStride:]
		cr := cur[y*curStride:]
		var acc uint64
		chunks := 0
		x := 0
		for ; x+8 <= bw; x += 8 {
			a := binary.LittleEndian.Uint64(r0[x:])
			b := binary.LittleEndian.Uint64(r0[x+1:])
			c := binary.LittleEndian.Uint64(r1[x:])
			e := binary.LittleEndian.Uint64(r1[x+1:])
			pe := bilerpLanes(a&laneEven, b&laneEven, c&laneEven, e&laneEven, u00, u10, u01, u11, rlanes, shift)
			po := bilerpLanes(a>>8&laneEven, b>>8&laneEven, c>>8&laneEven, e>>8&laneEven, u00, u10, u01, u11, rlanes, shift)
			xc := binary.LittleEndian.Uint64(cr[x:])
			acc += absLanes(xc&laneEven, pe) + absLanes(xc>>8&laneEven, po)
			if chunks++; chunks == flushChunks {
				sum += laneSum(acc)
				acc, chunks = 0, 0
			}
		}
		sum += laneSum(acc)
		for ; x < bw; x++ {
			a := int(r0[x])
			b := int(r0[x+1])
			c := int(r1[x])
			e := int(r1[x+1])
			p := (a*w00 + b*w10 + c*w01 + e*w11 + round) >> shift
			d := int(cr[x]) - p
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
		if sum >= thresh && y+1 < bh {
			return sum, true
		}
	}
	return sum, false
}
