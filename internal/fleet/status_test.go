package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"vbench/internal/telemetry"
)

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestStatusEndpoint checks the /status ops snapshot: fixed schema,
// active leases with ages, and per-worker accounting.
func TestStatusEndpoint(t *testing.T) {
	q := NewQueue(Options{
		Metrics:     telemetry.NewRegistry(),
		LeaseTTL:    time.Minute,
		MaxAttempts: 4,
		BackoffBase: 2 * time.Second,
		BackoffMax:  30 * time.Second,
	})
	srv := testMaster(t, q)
	submitNoops(t, srv.URL, 2, 0)
	var leased LeaseResponse
	rawPost(t, srv.URL+"/api/v1/lease", &LeaseRequest{Worker: "wA"}, &leased)
	if leased.Job == nil {
		t.Fatal("lease granted no job")
	}

	code, body := httpGet(t, srv.URL+"/status")
	if code != http.StatusOK {
		t.Fatalf("GET /status = %d", code)
	}

	// Schema: every top-level key present even when empty.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_seconds", "stats", "policy", "leases", "workers", "timeline_events"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/status missing key %q", key)
		}
	}

	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Policy.MaxAttempts != 4 || st.Policy.LeaseTTLSeconds != 60 {
		t.Errorf("policy = %+v, want max_attempts 4, lease_ttl 60s", st.Policy)
	}
	if len(st.Leases) != 1 {
		t.Fatalf("status shows %d leases, want 1", len(st.Leases))
	}
	l := st.Leases[0]
	if l.Job != leased.Job.ID || l.Worker != "wA" || l.Attempt != 1 {
		t.Errorf("lease = %+v, want job %d attempt 1 on wA", l, leased.Job.ID)
	}
	if l.AgeSeconds < 0 || l.ExpiresSeconds <= 0 || l.ExpiresSeconds > 60 {
		t.Errorf("lease age %.3fs / expires %.3fs out of range", l.AgeSeconds, l.ExpiresSeconds)
	}
	if len(st.Workers) != 1 {
		t.Fatalf("status shows %d workers, want 1", len(st.Workers))
	}
	w := st.Workers[0]
	if w.ID != "wA" || !w.Live || w.InFlight != 1 || w.Leases != 1 {
		t.Errorf("worker = %+v, want live wA with 1 lease in flight", w)
	}
	if st.TimelineEvents != 3 { // 2 submits + 1 lease
		t.Errorf("timeline_events = %d, want 3", st.TimelineEvents)
	}
}

// TestStatusEmptyQueue pins that the zero-state /status serves empty
// arrays, not nulls — the schema contract tooling depends on.
func TestStatusEmptyQueue(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry()})
	srv := testMaster(t, q)
	_, body := httpGet(t, srv.URL+"/status")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"leases", "workers"} {
		if string(raw[key]) != "[]" {
			t.Errorf("/status %s = %s, want []", key, raw[key])
		}
	}
}

// TestMetricsTextEndpoint checks the text exposition: stable content
// type, deterministic bytes across reads of unchanged state.
func TestMetricsTextEndpoint(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry()})
	srv := testMaster(t, q)
	submitNoops(t, srv.URL, 3, 0)

	code, first := httpGet(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	_, second := httpGet(t, srv.URL+"/metrics")
	if string(first) != string(second) {
		t.Errorf("/metrics not deterministic:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if want := "# counters\n"; len(first) < len(want) || string(first[:len(want)]) != want {
		t.Errorf("/metrics starts with %q, want %q", first[:min(len(first), 20)], want)
	}
}

// TestTimelineEndpoint checks the per-job timeline query and its error
// paths.
func TestTimelineEndpoint(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry()})
	srv := testMaster(t, q)
	ids := submitNoops(t, srv.URL, 1, 0)
	var leased LeaseResponse
	rawPost(t, srv.URL+"/api/v1/lease", &LeaseRequest{Worker: "wA"}, &leased)

	code, body := httpGet(t, srv.URL+"/api/v1/timeline?id=1")
	if code != http.StatusOK {
		t.Fatalf("GET timeline = %d: %s", code, body)
	}
	var resp TimelineResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Job != ids[0] || len(resp.Events) != 2 {
		t.Fatalf("timeline = %+v, want job %d with submit+lease events", resp, ids[0])
	}
	if resp.Events[0].To != "pending" || resp.Events[1].To != "leased" {
		t.Errorf("events = %v, want submit then lease", resp.Events)
	}

	if code, _ := httpGet(t, srv.URL+"/api/v1/timeline?id=99"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	if code, _ := httpGet(t, srv.URL+"/api/v1/timeline?id=zap"); code != http.StatusBadRequest {
		t.Errorf("bad id = %d, want 400", code)
	}
}

// TestMetricPushAbsorbed runs a real worker against a loopback master
// and checks that the worker's metrics arrive in the master's registry
// via piggybacked pushes.
func TestMetricPushAbsorbed(t *testing.T) {
	masterReg := telemetry.NewRegistry()
	q := NewQueue(Options{
		Metrics:  masterReg,
		LeaseTTL: 2 * time.Second,
	})
	srv := testMaster(t, q)
	const jobs = 3
	submitNoops(t, srv.URL, jobs, 2)

	w, err := NewWorker(WorkerOptions{
		Master:  srv.URL,
		ID:      "w1",
		Poll:    5 * time.Millisecond,
		Metrics: telemetry.NewRegistry(), // see WorkerOptions.Metrics
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	waitDone(t, q, jobs, 10*time.Second)
	cancel()
	<-done

	if n := masterReg.Counter("worker.jobs_executed").Value(); n != jobs {
		t.Errorf("master absorbed worker.jobs_executed = %d, want %d", n, jobs)
	}
	if n := masterReg.Counter("fleet.metric_pushes").Value(); n < 1 {
		t.Error("master absorbed no metric pushes")
	}
	// The pushes themselves carry the stage-clock mirrors (Absorb only
	// materializes counters with nonzero deltas, and noop jobs never
	// advance the codec clocks).
	push, seq := w.buildPush()
	if push == nil || seq < 1 {
		t.Fatalf("buildPush = %v seq %d", push, seq)
	}
	for _, n := range []string{
		"worker.stage.motion_ns", "worker.stage.transform_ns",
		"worker.stage.entropy_ns", "worker.stage.slice_gate_wait_ns",
	} {
		if _, ok := push.Counters[n]; !ok {
			t.Errorf("push missing stage mirror %s: %v", n, push.Counters)
		}
	}
}

// TestStatusWaveOccupancy walks the wavefront utilization surface end
// to end: the codec's occupancy histogram is mirrored into the
// worker's push as worker.wave_occupancy, absorbed by the master, and
// reported on /status as the per-worker mean.
func TestStatusWaveOccupancy(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Minute})
	srv := testMaster(t, q)
	submitNoops(t, srv.URL, 1, 0)
	var leased LeaseResponse
	rawPost(t, srv.URL+"/api/v1/lease", &LeaseRequest{Worker: "wW"}, &leased)
	if leased.Job == nil {
		t.Fatal("lease granted no job")
	}

	// Stand in for a wavefront encode: the codec observes occupancy on
	// the process-wide histogram the worker mirrors at push time.
	telemetry.GetHistogram("codec.wave.occupancy", 1, 2, 4, 8, 16, 32).Observe(3)

	w, err := NewWorker(WorkerOptions{
		Master:  srv.URL,
		ID:      "wW",
		Metrics: telemetry.NewRegistry(), // see WorkerOptions.Metrics
	})
	if err != nil {
		t.Fatal(err)
	}
	push, seq := w.buildPush()
	he, ok := push.Histograms["worker.wave_occupancy"]
	if !ok {
		t.Fatalf("push carries no worker.wave_occupancy: %+v", push.Histograms)
	}
	if he.Sum < 3 {
		t.Fatalf("wave occupancy mirror sum = %v, want >= 3", he.Sum)
	}
	var resp AckResponse
	rawPost(t, srv.URL+"/api/v1/heartbeat", &AckRequest{
		Worker: "wW", JobID: leased.Job.ID, Attempt: leased.Job.Attempt,
		Push: push, PushSeq: seq,
	}, &resp)
	if !resp.OK {
		t.Fatal("heartbeat rejected")
	}

	_, body := httpGet(t, srv.URL+"/status")
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for _, ws := range st.Workers {
		if ws.ID == "wW" {
			if ws.WaveOccupancy <= 0 {
				t.Errorf("worker wW wave_occupancy = %v, want > 0", ws.WaveOccupancy)
			}
			return
		}
	}
	t.Fatal("/status lists no worker wW")
}
