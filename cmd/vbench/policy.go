package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"vbench/internal/cas/policy"
	"vbench/internal/corpus"
	"vbench/internal/tables"
)

// runPolicySweep evaluates cache retention policies over the modeled
// rendition catalogue and a deterministic popularity-driven request
// stream, and renders one comparison table: the storage-vs-compute
// policy surface of the content-addressed cache.
func runPolicySweep(spec string, requests int, seed int64, csv bool) error {
	policies, err := parsePolicies(spec)
	if err != nil {
		return err
	}
	w := policy.Workload{
		// 100 popularity ranks over the corpus × a 4-rung ladder at the
		// paper's 5-second clip length: a 6000-rendition catalogue.
		Renditions: policy.DefaultCatalogue(100, 5),
		Model:      corpus.DefaultPopularity(),
		Requests:   requests,
		// A few requests per hour: the sparse-library regime where the
		// storage-vs-compute trade actually bites (a busy head is
		// always worth storing).
		RequestsPerSec: 1e-3,
		Seed:           seed,
	}
	reports, err := policy.Sweep(w, policies...)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Cache retention policy sweep (%d renditions, %d requests, seed %d)",
		len(w.Renditions), requests, seed),
		"policy", "hit ratio", "recompute h", "peak GiB", "avg GiB", "end GiB")
	for _, r := range reports {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.4f", r.HitRatio),
			fmt.Sprintf("%.1f", r.RecomputeSeconds/3600),
			fmt.Sprintf("%.2f", float64(r.PeakBytes)/(1<<30)),
			fmt.Sprintf("%.2f", r.AvgBytes/(1<<30)),
			fmt.Sprintf("%.2f", float64(r.EndBytes)/(1<<30)))
	}
	if csv {
		return t.RenderCSV(os.Stdout)
	}
	fmt.Println(t)
	return nil
}

// parsePolicies maps the -cache-policy spec to policies: "default"
// expands to one of each, otherwise a comma-separated list of
// "keep-all", "lru:<bytes>", and "cost-aware".
func parsePolicies(spec string) ([]policy.Policy, error) {
	if spec == "default" {
		return []policy.Policy{
			policy.KeepAll{},
			policy.LRUBytes{Cap: 8 << 30},
			policy.LRUBytes{Cap: 32 << 30},
			policy.DefaultCostAware(),
		}, nil
	}
	var out []policy.Policy
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		switch {
		case f == "keep-all":
			out = append(out, policy.KeepAll{})
		case f == "cost-aware":
			out = append(out, policy.DefaultCostAware())
		case strings.HasPrefix(f, "lru:"):
			n, err := strconv.ParseInt(strings.TrimPrefix(f, "lru:"), 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad lru cap in %q (want lru:<bytes>)", f)
			}
			out = append(out, policy.LRUBytes{Cap: n})
		default:
			return nil, fmt.Errorf("unknown cache policy %q (want keep-all, lru:<bytes>, or cost-aware)", f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cache policies in %q", spec)
	}
	return out, nil
}
