package fleet

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// snapshot is the on-disk master state: every job record plus the
// derived counters, so a restarted master resumes exactly where the
// old one stopped. Leases survive verbatim — a worker that outlived
// the master restart can still heartbeat and complete its attempt,
// and a worker that died with the master simply times out and the job
// requeues.
type snapshot struct {
	Version int   `json:"version"`
	Stats   Stats `json:"stats"`
	Jobs    []Job `json:"jobs"`
	// Start anchors the queue's relative clock (transition-log and
	// timeline timestamps), so timelines stay monotonic across a
	// master restart. Absent in pre-timeline snapshots; the restored
	// queue then restarts its clock at restore time.
	Start time.Time `json:"start,omitempty"`
}

const snapshotVersion = 1

// Snapshot serializes the queue state. The transition log is not part
// of the snapshot (it is an observability artifact, not state).
func (q *Queue) Snapshot(w io.Writer) error {
	q.mu.Lock()
	s := snapshot{Version: snapshotVersion, Stats: q.stats, Start: q.start}
	s.Jobs = make([]Job, len(q.jobs))
	for i, j := range q.jobs {
		s.Jobs[i] = j.clone()
	}
	q.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// Restore rebuilds a queue from a Snapshot under the given options
// (clock, TTLs, and backoff come from opt, not the snapshot). The
// restored queue re-registers its gauges so the new registry reflects
// the recovered state immediately.
func Restore(r io.Reader, opt Options) (*Queue, error) {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("fleet: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("fleet: snapshot version %d not supported (want %d)", s.Version, snapshotVersion)
	}
	q := NewQueue(opt)
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats = s.Stats
	if !s.Start.IsZero() {
		q.start = s.Start
	}
	q.jobs = make([]*Job, len(s.Jobs))
	for i := range s.Jobs {
		j := s.Jobs[i]
		if j.ID != i+1 {
			return nil, fmt.Errorf("fleet: snapshot job %d has ID %d (IDs must be dense)", i, j.ID)
		}
		q.jobs[i] = &j
		// The timeline rings ride in the job records; resuming the
		// queue-wide sequence past the highest persisted event keeps
		// post-restart events ordered after pre-restart ones.
		for _, e := range j.Timeline {
			if e.Seq > q.eventSeq {
				q.eventSeq = e.Seq
			}
		}
		switch j.State {
		case Pending:
			if j.DedupOf != 0 {
				// A parked dedup follower: it re-parks behind its
				// leader instead of re-entering the ready heap.
				q.followers[j.DedupOf] = append(q.followers[j.DedupOf], j.ID)
				break
			}
			heap.Push(&q.ready, readyEntry{at: j.ReadyAt, id: j.ID})
		case Leased:
			heap.Push(&q.exp, expiryEntry{at: j.LeaseExpiry, id: j.ID, attempt: j.Attempt})
		}
	}
	// Re-register dedup leaders so post-restore submissions of a key
	// already in flight keep parking. Keys are recomputed from specs —
	// they are content-addressed, not snapshot state. First in-flight
	// job per key wins, matching submission order.
	if q.opt.Cache != nil {
		for _, j := range q.jobs {
			if (j.State != Pending && j.State != Leased) || j.DedupOf != 0 {
				continue
			}
			key, ok := SpecCacheKey(j.Spec)
			if !ok {
				continue
			}
			if _, taken := q.dedupLeader[key]; !taken {
				q.dedupLeader[key] = j.ID
				q.dedupKey[j.ID] = key
			}
		}
	}
	// Re-derive the counter metrics and per-state gauges from the
	// restored accounting.
	q.mSubmitted.Add(int64(q.stats.Submitted))
	q.mLeases.Add(int64(q.stats.Leases))
	q.mCompletions.Add(int64(q.stats.Completions))
	q.mFailures.Add(int64(q.stats.Failed))
	q.mRetries.Add(int64(q.stats.Retries))
	q.mExpiries.Add(int64(q.stats.LeaseExpiries))
	q.mDupAcks.Add(int64(q.stats.DuplicateAcks))
	q.mStaleAcks.Add(int64(q.stats.StaleAcks))
	q.mCacheDedup.Add(int64(q.stats.CacheDedupHits))
	q.mTimelineEvents.Add(q.eventSeq)
	q.gPending.Set(float64(q.stats.Pending))
	q.gLeased.Set(float64(q.stats.Leased))
	q.gDone.Set(float64(q.stats.Done))
	q.gFailed.Set(float64(q.stats.Failed))
	q.gDepth.Set(float64(q.stats.Pending + q.stats.Leased))
	return q, nil
}
