package codec

import (
	"testing"
	"testing/quick"

	"vbench/internal/codec/motion"
	"vbench/internal/codec/predict"
	"vbench/internal/rng"
	"vbench/internal/video"
)

func TestSeqHeaderMarshalParseRoundTrip(t *testing.T) {
	f := func(w16, h16 uint8, fps uint16, frames uint16, flags uint8, refs, slices uint8) bool {
		h := &seqHeader{
			width:         (int(w16)%255 + 1) * 2,
			height:        (int(h16)%255 + 1) * 2,
			fpsMilli:      uint32(fps) + 1,
			frames:        int(frames),
			entropy:       EntropyKind(flags & 1),
			tx8Allowed:    flags&2 != 0,
			deblock:       flags&4 != 0,
			adaptiveQuant: flags&8 != 0,
			richContexts:  flags&16 != 0,
			sharpInterp:   flags&32 != 0,
			intra4Allowed: flags&64 != 0,
			refs:          int(refs)%8 + 1,
			slices:        int(slices)%4 + 1,
		}
		// slices must not exceed MB rows.
		if h.slices > h.paddedHeight()/MBSize {
			h.slices = h.paddedHeight() / MBSize
		}
		data := h.marshal()
		back, n, err := parseSeqHeader(data)
		if err != nil || n != len(data) {
			return false
		}
		return *back == *h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCeilMB(t *testing.T) {
	cases := map[int]int{1: 16, 16: 16, 17: 32, 32: 32, 33: 48}
	for in, want := range cases {
		if got := ceilMB(in); got != want {
			t.Errorf("ceilMB(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSliceBoundsPartition(t *testing.T) {
	for rows := 1; rows <= 40; rows++ {
		for k := 1; k <= rows && k <= 8; k++ {
			b := sliceBounds(rows, k)
			if b[0] != 0 || b[len(b)-1] != rows {
				t.Fatalf("rows=%d k=%d: bounds %v do not span", rows, k, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] {
					t.Fatalf("rows=%d k=%d: empty slice in %v", rows, k, b)
				}
			}
		}
	}
}

func TestPadAndCropInverse(t *testing.T) {
	p := video.ContentParams{Seed: 3, Detail: 0.6, Motion: 0.2, ChromaVariety: 0.4}
	seq, err := video.Generate(p, 52, 38, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	f := seq.Frames[0]
	padded := padFrame(f)
	if padded.Width != 64 || padded.Height != 48 {
		t.Fatalf("padded dims %dx%d", padded.Width, padded.Height)
	}
	// Padding must replicate edges.
	for y := 38; y < 48; y++ {
		if padded.Y[y*64+10] != f.Y[37*52+10] {
			t.Fatal("bottom padding not edge-replicated")
		}
	}
	back := cropFrame(padded, 52, 38)
	if !back.Equal(f) {
		t.Error("crop(pad(f)) != f")
	}
	// Aligned frames pass through unchanged (same pointer).
	g := video.NewFrame(64, 48)
	if padFrame(g) != g || cropFrame(g, 64, 48) != g {
		t.Error("aligned frames should not be copied")
	}
}

func TestMBGridPredMV(t *testing.T) {
	g := newMBGrid(4, 4)
	// No neighbours: zero predictor.
	if mv := g.predMV(0, 0); mv != (motion.MV{}) {
		t.Errorf("corner predictor %v", mv)
	}
	// Set left, top, top-right.
	g.at(0, 1).mode = mbInter
	g.at(0, 1).mv = motion.MV{X: 4, Y: 8}
	g.at(1, 0).mode = mbInter
	g.at(1, 0).mv = motion.MV{X: 12, Y: 0}
	g.at(2, 0).mode = mbInter
	g.at(2, 0).mv = motion.MV{X: 8, Y: 4}
	want := motion.MV{X: 8, Y: 4} // component-wise median
	if mv := g.predMV(1, 1); mv != want {
		t.Errorf("predMV = %v, want %v", mv, want)
	}
	// Intra neighbours contribute zero vectors.
	g.at(1, 0).mode = mbIntra
	mv := g.predMV(1, 1)
	if mv != (motion.MV{X: 4, Y: 4}) {
		t.Errorf("predMV with intra top = %v", mv)
	}
}

func TestQuadBlocks4CoverAllBlocks(t *testing.T) {
	seen := map[int]bool{}
	for q := 0; q < 4; q++ {
		for _, b := range quadBlocks4[q] {
			if seen[b] {
				t.Fatalf("block %d in two quadrants", b)
			}
			seen[b] = true
			// The block's pixel offset must fall inside the quadrant.
			ox, oy := block4Offset(b)
			qx, qy := block8Offset(q)
			if ox < qx || ox >= qx+8 || oy < qy || oy >= qy+8 {
				t.Fatalf("block %d at (%d,%d) outside quadrant %d", b, ox, oy, q)
			}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("quadrants cover %d blocks", len(seen))
	}
}

func TestIntra4AvailAndPredict(t *testing.T) {
	r := rng.New(1)
	plane := motion.Plane{Pix: make([]uint8, 64*64), W: 64, H: 64}
	for i := range plane.Pix {
		plane.Pix[i] = uint8(r.Intn(256))
	}
	cand := &mbCand{}
	// Frame corner block: only DC available.
	if intra4Avail(predict.ModeVertical, 0, 0, 0, 0, 0) || intra4Avail(predict.ModeHorizontal, 0, 0, 0, 0, 0) {
		t.Error("directional modes available at frame corner")
	}
	if !intra4Avail(predict.ModeDC, 0, 0, 0, 0, 0) {
		t.Error("DC unavailable")
	}
	// At a slice boundary, vertical is blocked even mid-frame.
	if intra4Avail(predict.ModeVertical, 16, 32, 4, 0, 32) {
		t.Error("vertical available across slice boundary")
	}
	if !intra4Avail(predict.ModeVertical, 16, 32, 4, 4, 32) {
		t.Error("vertical unavailable inside slice")
	}

	// Vertical prediction from inside the candidate: fill the first
	// block row of the cand and predict the block below it.
	for x := 0; x < 16; x++ {
		for y := 0; y < 4; y++ {
			cand.lumaRecon[y*16+x] = uint8(50 + x)
		}
	}
	var dst [16]uint8
	if err := intra4PredictBlock(dst[:], predict.ModeVertical, plane, cand, 16, 16, 0, 4, 0); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if dst[y*4+x] != uint8(50+x) {
				t.Fatalf("vertical intra4 (%d,%d) = %d, want %d", x, y, dst[y*4+x], 50+x)
			}
		}
	}
	// Invalid mode errors.
	if err := intra4PredictBlock(dst[:], predict.ModePlane, plane, cand, 16, 16, 4, 4, 0); err == nil {
		t.Error("plane mode accepted for intra4")
	}
}
