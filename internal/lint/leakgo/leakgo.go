// Package leakgo flags goroutines in the long-lived service packages
// (fleet, telemetry, harness) that can never terminate: the launched
// body's control-flow graph contains a trap — a reachable region from
// which the function exit is unreachable — and the trap waits on
// nothing that counts as cancellation. Such a goroutine outlives every
// shutdown: the master drains, the test binary moves on, and the loop
// keeps polling.
//
// The trap construction makes the usual healthy shapes pass without
// special cases: a `for { select { case <-ctx.Done(): return ... } }`
// loop reaches the exit through the return; `for v := range ch` has a
// close-driven exit edge; a loop with a conditional return (pool
// workers draining an atomic counter) reaches the exit too. What
// remains is the genuinely unbounded loop — `for { ch <- poll() }` —
// which is flagged unless the trap itself receives from a context or
// a done-style channel (chan struct{}, or a name containing done/
// quit/stop/cancel/clos/exit), on the theory that a cancellation
// receive that doesn't return is a deliberate drain.
//
// The analysis is intraprocedural: only `go` statements launching a
// function literal or a function/method declared in the same package
// are inspected, and loops hidden behind a call are invisible.
package leakgo

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"vbench/internal/lint/analysis"
)

// Analyzer is the leakgo pass.
var Analyzer = &analysis.Analyzer{
	Name: "leakgo",
	Doc:  "flags goroutines in long-lived packages with no termination or cancellation path",
	Run:  run,
}

// longLived names the packages whose goroutines must be cancellable;
// short-lived helpers (codec workers joined by a WaitGroup two lines
// later) are out of scope.
var longLived = map[string]bool{
	"fleet":     true,
	"telemetry": true,
	"harness":   true,
}

func run(pass *analysis.Pass) error {
	if !longLived[pass.Pkg.Name()] {
		return nil
	}
	decls := declIndex(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchedBody(pass, decls, g.Call)
			if body == nil {
				return true
			}
			checkBody(pass, g, body)
			return true
		})
	}
	return nil
}

// declIndex maps every function declared in the package to its body.
func declIndex(pass *analysis.Pass) map[*types.Func]*ast.BlockStmt {
	idx := map[*types.Func]*ast.BlockStmt{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd.Body
			}
		}
	}
	return idx
}

// launchedBody resolves the body the go statement starts executing:
// a literal's own body, or the declaration of a same-package callee.
func launchedBody(pass *analysis.Pass, decls map[*types.Func]*ast.BlockStmt, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
		return decls[fn]
	}
	return nil
}

func checkBody(pass *analysis.Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	cfg := analysis.BuildCFG(body)
	trap := trapBlocks(cfg)
	if len(trap) == 0 {
		return
	}
	for _, b := range trap {
		for _, n := range b.Nodes {
			if hasCancellation(pass, n) {
				return
			}
		}
	}
	pass.Reportf(g.Pos(), "goroutine never terminates and has no cancellation path (no context, done channel, or exit condition); it will leak on shutdown")
}

// trapBlocks returns the reachable blocks from which the exit is
// unreachable.
func trapBlocks(cfg *analysis.CFG) []*analysis.Block {
	reach := cfg.Reachable()
	canExit := map[*analysis.Block]bool{}
	stack := []*analysis.Block{cfg.Exit}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if canExit[b] {
			continue
		}
		canExit[b] = true
		stack = append(stack, b.Preds...)
	}
	var trap []*analysis.Block
	for _, b := range cfg.Blocks {
		if reach[b] && !canExit[b] {
			trap = append(trap, b)
		}
	}
	return trap
}

// doneName matches channel identifiers that conventionally carry a
// shutdown signal.
var doneName = regexp.MustCompile(`(?i)(done|quit|stop|cancel|clos|exit)`)

// hasCancellation reports whether the node waits on something that
// counts as a shutdown signal.
func hasCancellation(pass *analysis.Pass, n ast.Node) bool {
	found := false
	analysis.WalkNode(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, x)
			if fn == nil {
				return true
			}
			if analysis.FromPath(fn, "context") && fn.Name() == "Done" {
				found = true
			}
			if analysis.FromPackage(fn, "syncx") && fn.Name() == "AcquireOrQuit" {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && doneChannel(pass, x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// doneChannel reports whether expr looks like a shutdown channel: its
// element type is struct{}, its static type is context.Context's Done
// result, or its name says so.
func doneChannel(pass *analysis.Pass, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return doneName.MatchString(types.ExprString(expr))
}
