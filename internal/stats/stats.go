// Package stats provides the statistical helpers the benchmark's
// analyses use: summary statistics, box-plot quartiles (Figure 6),
// Pearson and Spearman correlation, and the logarithmic trend fit
// y = a·log(x) + b the paper overlays on Figure 5.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// BoxPlot is the five-number summary used by Figure 6.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
}

// NewBoxPlot summarizes xs.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, errors.New("stats: empty sample")
	}
	return BoxPlot{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}, nil
}

// Pearson returns the Pearson correlation coefficient of (x, y).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, errors.New("stats: need two equal-length samples of ≥2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of (x, y).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, errors.New("stats: need two equal-length samples of ≥2 points")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// LogFit fits y = a·log(x) + b by least squares (natural log),
// the trend model of Figure 5. All x must be positive.
func LogFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, errors.New("stats: need two equal-length samples of ≥2 points")
	}
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return 0, 0, errors.New("stats: log fit needs positive x")
		}
		lx[i] = math.Log(x)
	}
	mx, my := Mean(lx), Mean(ys)
	var sxy, sxx float64
	for i := range lx {
		sxy += (lx[i] - mx) * (ys[i] - my)
		sxx += (lx[i] - mx) * (lx[i] - mx)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate x for log fit")
	}
	a = sxy / sxx
	b = my - a*mx
	return a, b, nil
}

// LinFit fits y = a·x + b by least squares.
func LinFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, errors.New("stats: need two equal-length samples of ≥2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate x")
	}
	a = sxy / sxx
	b = my - a*mx
	return a, b, nil
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean needs positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
