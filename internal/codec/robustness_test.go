package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"vbench/internal/rng"
)

// The decoder is the trust boundary of the codec: it consumes bytes
// from outside. These tests assert it never panics and always returns
// a decoded sequence or an error, regardless of input corruption.

func encodeFixture(t *testing.T) []byte {
	t.Helper()
	src := testSequence(t, 64, 48, 5, defaultParams())
	tools := BaselineTools(PresetMedium)
	tools.Transform8x8 = true
	res, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCConstQP, QP: 28})
	if err != nil {
		t.Fatal(err)
	}
	return res.Bitstream
}

// safeDecode decodes and converts panics into test failures.
func safeDecode(t *testing.T, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked on corrupt input: %v", r)
		}
	}()
	_, _, _ = Decode(data)
}

func TestDecoderSurvivesSingleByteCorruption(t *testing.T) {
	data := encodeFixture(t)
	r := rng.New(1)
	// Flip bytes at many positions, including all header bytes.
	positions := make([]int, 0, 300)
	for i := 0; i < 22 && i < len(data); i++ {
		positions = append(positions, i)
	}
	for i := 0; i < 250; i++ {
		positions = append(positions, r.Intn(len(data)))
	}
	for _, pos := range positions {
		c := append([]byte(nil), data...)
		c[pos] ^= byte(1 + r.Intn(255))
		safeDecode(t, c)
	}
}

func TestDecoderSurvivesTruncation(t *testing.T) {
	data := encodeFixture(t)
	for cut := 0; cut <= len(data); cut += 7 {
		safeDecode(t, data[:cut])
	}
}

func TestDecoderSurvivesRandomGarbage(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		n := r.Intn(2048)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		// Valid magic half the time so parsing goes deeper.
		if n >= 4 && i%2 == 0 {
			copy(data, magic)
		}
		safeDecode(t, data)
	}
}

func TestDecoderRejectsOversizedDimensions(t *testing.T) {
	data := encodeFixture(t)
	c := append([]byte(nil), data...)
	c[4], c[5] = 0xFF, 0xFE // width 65534
	if _, _, err := Decode(c); err == nil {
		t.Error("oversized width accepted")
	}
}

func TestBitstreamDeterminism(t *testing.T) {
	// Identical inputs must produce byte-identical bitstreams — the
	// property that makes every benchmark score reproducible.
	hash := func() string {
		src := testSequence(t, 64, 48, 5, defaultParams())
		tools := BaselineTools(PresetSlow)
		res, err := (&Engine{Tools: tools}).Encode(src, Config{RC: RCTwoPass, BitrateBPS: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(res.Bitstream)
		return hex.EncodeToString(h[:])
	}
	a, b := hash(), hash()
	if a != b {
		t.Fatalf("encoder not deterministic: %s vs %s", a, b)
	}
}

func TestCountersDeterministic(t *testing.T) {
	run := func() int64 {
		src := testSequence(t, 64, 48, 4, defaultParams())
		res, err := (&Engine{Tools: BaselineTools(PresetMedium)}).Encode(src, Config{RC: RCConstQP, QP: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.TotalOps()
	}
	if run() != run() {
		t.Error("work counters not deterministic")
	}
}
