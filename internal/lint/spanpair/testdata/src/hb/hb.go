// Package hb exercises spanpair on the fleet worker's heartbeat-loop
// idiom: one span per beat, ended on every iteration path.
package hb

import "lint.test/telemetry"

func push() bool { return true }

// perBeatEnded ends the span on both the early-out and the normal
// path: clean.
func perBeatEnded(ticks <-chan struct{}) {
	for range ticks {
		sp := telemetry.StartSpan("fleet.heartbeat")
		if !push() {
			sp.End()
			continue
		}
		sp.Arg("ok", 1)
		sp.End()
	}
}

// perBeatDeferred wraps each beat in a closure so defer fires per
// iteration — the recommended shape: clean.
func perBeatDeferred(ticks <-chan struct{}) {
	for range ticks {
		func() {
			sp := telemetry.StartSpan("fleet.heartbeat")
			defer sp.End()
			push()
		}()
	}
}

// beatNeverEnded starts a span per beat and never ends it.
func beatNeverEnded(ticks <-chan struct{}) {
	for range ticks {
		sp := telemetry.StartSpan("fleet.heartbeat") // want `created inside a loop but not ended within the loop body`
		sp.Arg("beat", 1)
		push()
	}
}

// deferInLoop defers End inside the loop body; the spans pile up
// until function exit, but End is reachable, so the analyzer accepts
// it (a documented intraprocedural limit — prefer perBeatDeferred).
func deferInLoop(ticks <-chan struct{}) {
	for range ticks {
		sp := telemetry.StartSpan("fleet.heartbeat")
		defer sp.End()
		push()
	}
}

// suppressedBeat documents a deliberately process-lifetime span.
func suppressedBeat(ticks <-chan struct{}) {
	for range ticks {
		//lint:ignore spanpair the exporter closes heartbeat spans in bulk
		sp := telemetry.StartSpan("fleet.heartbeat")
		sp.Arg("beat", 1)
	}
}
