// Package hotalloc enforces the //vbench:noalloc function annotation:
// the static complement to the runtime ALLOC_BUDGET.json harness. A
// function carrying the directive in its doc comment promises to do
// no heap allocation per call — the contract of the arena-backed
// encode paths in internal/codec and the kern kernels — and the
// analyzer flags the constructs that break that promise:
//
//   - make and new
//   - slice and map composite literals, and &lit escapes
//   - append (its growth path reallocates; preallocate capacity and
//     index instead, or prove capacity and suppress)
//   - function literals (closures allocate their captures)
//   - interface boxing: passing or assigning a non-word-sized
//     concrete value where an interface is expected (fmt helpers are
//     the classic offender on hot paths)
//
// The check is syntactic and deliberately conservative: escape
// analysis might well keep a given composite literal on the stack,
// but a //vbench:noalloc function is exactly the place where "might"
// is not good enough. Use //lint:ignore hotalloc with a reason for
// the cases you have proven cold or non-escaping.
//
// Every recognized annotation is exported as a "noalloc" function
// fact, and a directive that is not a function's doc comment is
// itself a finding (a misplaced annotation silently guards nothing).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vbench/internal/lint/analysis"
)

// Directive is the annotation marking a zero-allocation function.
const Directive = "//vbench:noalloc"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "enforces //vbench:noalloc: no make/new, composite-literal, append, closure, or interface boxing in annotated functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		docs := map[*ast.CommentGroup]bool{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				docs[fd.Doc] = true
			}
			if fd.Doc == nil || !hasDirective(fd.Doc) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportFunctionFact(fn, "noalloc")
			}
			if fd.Body != nil {
				checkBody(pass, fd.Body)
			}
		}
		// A directive anywhere but a function doc comment guards
		// nothing; flag it so it cannot rot silently.
		for _, cg := range file.Comments {
			if docs[cg] {
				continue
			}
			for _, c := range cg.List {
				if isDirective(c.Text) {
					pass.Reportf(c.Pos(), "%s must be part of a function's doc comment", Directive)
				}
			}
		}
	}
	return nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if isDirective(c.Text) {
			return true
		}
	}
	return false
}

func isDirective(text string) bool {
	return text == Directive || strings.HasPrefix(text, Directive+" ")
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates its captures in a %s function", Directive)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal escapes to the heap in a %s function", Directive)
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates in a %s function", Directive)
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates in a %s function", Directive)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						checkBoxing(pass, typeOf(pass, lhs), n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if tv, ok := pass.TypesInfo.Types[n.Type]; ok {
					for _, v := range n.Values {
						checkBoxing(pass, tv.Type, v)
					}
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in a %s function; use a preallocated buffer or the arena", Directive)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in a %s function; use a preallocated value", Directive)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in a %s function; preallocate capacity and index", Directive)
			}
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion: T(x) boxes when T is an interface.
		if len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0])
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // s... passes the slice through, no per-element boxing
		}
		checkBoxing(pass, paramType(sig, i), arg)
	}
}

// paramType returns the type of argument i, unrolling the variadic
// tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params == nil {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// checkBoxing flags storing a non-word-sized concrete value into an
// interface-typed destination.
func checkBoxing(pass *analysis.Pass, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if types.IsInterface(st) {
		return // interface-to-interface copies the header
	}
	switch st.Underlying().(type) {
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	case *types.Pointer, *types.Chan, *types.Signature:
		return // word-sized: the interface data word holds it directly
	case *types.Map:
		return
	}
	pass.Reportf(src.Pos(), "value of type %s boxes into an interface in a %s function", types.TypeString(st, types.RelativeTo(pass.Pkg)), Directive)
}

func typeOf(pass *analysis.Pass, expr ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}
