package kern

import (
	"math/rand"
	"testing"
)

// Scalar baselines for the scalar-vs-SWAR micro-benchmarks. They
// restate the straightforward loops the kernels replaced (the
// normative copies live next to their call sites in
// internal/codec/motion and internal/codec/transform); keeping a
// local copy lets the comparison run without exporting those.

func sadScalar(a []uint8, aStride int, b []uint8, bStride int, w, h int) int64 {
	var sum int64
	for y := 0; y < h; y++ {
		ar := a[y*aStride:]
		br := b[y*bStride:]
		for x := 0; x < w; x++ {
			d := int(ar[x]) - int(br[x])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum
}

func quantScalar(coeffs, zz []int32, scan []int, step, dz int64) {
	offset := step * dz / 64
	for i, idx := range scan {
		v := int64(coeffs[idx]) * 8
		neg := v < 0
		if neg {
			v = -v
		}
		l := (v + offset) / step
		if neg {
			l = -l
		}
		zz[i] = int32(l)
	}
}

func benchPlanes(n int) (a, b []uint8) {
	rng := rand.New(rand.NewSource(31))
	a = make([]uint8, n)
	b = make([]uint8, n)
	rng.Read(a)
	rng.Read(b)
	return a, b
}

var sinkI64 int64
var sinkBool bool

func BenchmarkSAD(b *testing.B) {
	const stride, h = 64, 64
	cur, ref := benchPlanes(stride * h)
	for _, impl := range []struct {
		name string
		fn   func() int64
	}{
		{"scalar/16x16", func() int64 { return sadScalar(cur, stride, ref, stride, 16, 16) }},
		{"swar/16x16", func() int64 { return SAD(cur, stride, ref, stride, 16, 16) }},
		{"swar/8x8", func() int64 { return SAD(cur, stride, ref, stride, 8, 8) }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			b.SetBytes(2 * 16 * 16)
			if impl.name == "swar/8x8" {
				b.SetBytes(2 * 8 * 8)
			}
			for i := 0; i < b.N; i++ {
				sinkI64 = impl.fn()
			}
		})
	}
	// Threshold kernel with an immediately-failing bound: the early
	// exit's best case, dominated by the first row.
	b.Run("swar_thresh_early/16x16", func(b *testing.B) {
		b.SetBytes(2 * 16 * 16)
		for i := 0; i < b.N; i++ {
			sinkI64, sinkBool = SADThresh(cur, stride, ref, stride, 16, 16, 1)
		}
	})
}

func BenchmarkSATD(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	res := make([]int32, 16*16)
	for i := range res {
		res[i] = int32(rng.Intn(511) - 255)
	}
	b.Run("scalar/16x16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkI64 = satdScalar(res, 16, 16)
		}
	})
	b.Run("unrolled/16x16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkI64 = SATD(res, 16, 16)
		}
	})
}

// satdScalar is the copy-based loop the strided SATD kernel replaced.
func satdScalar(res []int32, w, h int) int64 {
	var total int64
	var blk [16]int32
	for by := 0; by < h; by += 4 {
		for bx := 0; bx < w; bx += 4 {
			for y := 0; y < 4; y++ {
				copy(blk[y*4:y*4+4], res[(by+y)*w+bx:(by+y)*w+bx+4])
			}
			total += satd4(blk[:], 4)
		}
	}
	return total
}

func BenchmarkDCT(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	src4 := make([]int32, 16)
	src8 := make([]int32, 64)
	dst := make([]int32, 64)
	for i := range src8 {
		src8[i] = int32(rng.Intn(511) - 255)
	}
	copy(src4, src8)
	b.Run("fwd4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FwdDCT4(src4, dst[:16])
		}
	})
	b.Run("inv4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			InvDCT4(src4, dst[:16])
		}
	})
	b.Run("fwd8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FwdDCT8(src8, dst)
		}
	})
	b.Run("inv8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			InvDCT8(src8, dst)
		}
	})
}

func BenchmarkQuant(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	coeffs := make([]int32, 64)
	for i := range coeffs {
		coeffs[i] = int32(rng.Intn(1<<15) - 1<<14)
	}
	scan := identityScan(64)
	zz := make([]int32, 64)
	const qp, dz = 28, 11
	b.Run("scalar_div/8x8", func(b *testing.B) {
		step := refStep(qp)
		for i := 0; i < b.N; i++ {
			quantScalar(coeffs, zz, scan, step, dz)
		}
	})
	b.Run("reciprocal/8x8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkBool = QuantScan(coeffs, zz, scan, qp, dz)
		}
	})
}

func BenchmarkInterp(b *testing.B) {
	const stride, h = 64, 64
	cur, ref := benchPlanes(stride * h)
	dst := make([]uint8, 16*16)
	b.Run("bilinear/16x16", func(b *testing.B) {
		b.SetBytes(16 * 16)
		for i := 0; i < b.N; i++ {
			PredictBilinear(dst, 16, ref, stride, 4, 4, 4, 4, 8, 4, 16, 16)
		}
	})
	b.Run("bilinear_sad_fused/16x16", func(b *testing.B) {
		b.SetBytes(2 * 16 * 16)
		for i := 0; i < b.N; i++ {
			sinkI64, sinkBool = BilinearSADThresh(cur, stride, ref, stride, 4, 4, 4, 4, 8, 4, 16, 16, 1<<40)
		}
	})
}
