// Package kern holds the SWAR-vectorized block kernels of the vbench
// codec: packed sum-of-absolute-differences (8 pixels per uint64 word)
// with deterministic early termination, bilinear interpolation and
// fused interpolate+SAD for sub-pel motion search, fixed-size 4×4/8×8
// DCT butterflies with hoisted bounds checks, 4×4 Hadamard SATD, and
// reciprocal-table quantization with no per-coefficient divides.
//
// Every kernel is an exact drop-in for the scalar loop it replaces:
// same integer arithmetic, same results to the bit, on every platform
// (loads and stores go through encoding/binary with an explicit byte
// order, so lane layout does not depend on host endianness). The
// scalar implementations remain in internal/codec/motion and
// internal/codec/transform as the normative references; randomized
// cross-checks in those packages and in this one, plus the golden
// digest suite in internal/codec, enforce equivalence.
//
// SWAR layout: a uint64 word holds 8 consecutive samples. The even
// bytes (0,2,4,6) and odd bytes (1,3,5,7) are unpacked into two words
// of four 16-bit lanes each, so per-lane intermediates up to 2¹⁶−1
// cannot carry into a neighbouring sample. All kernel arithmetic keeps
// lane values strictly below 2¹⁶ (documented at each call site).
package kern

const (
	// laneEven masks the even bytes of a word into four 16-bit lanes.
	laneEven = 0x00FF00FF00FF00FF
	// laneMSB holds the sign bit of each 16-bit lane.
	laneMSB = 0x8000800080008000
	// laneOnes multiplies to sum four 16-bit lanes into the top 16
	// bits of the product (valid while the true sum is below 2¹⁶).
	laneOnes = 0x0001000100010001
)

// absLanes returns the per-lane absolute difference |a−b| of two
// words of four 16-bit lanes, each lane holding a value below 2⁸.
//
// The bias trick computes a−b+0x8000 per lane without cross-lane
// borrows (the forced msb absorbs the borrow of its own lane), so the
// msb of each biased lane is set exactly when a ≥ b. Clearing the
// bias leaves the two's-complement difference; negative lanes are
// then negated with a per-lane mask (complement and increment, where
// the increment cannot carry out of the lane because |a−b| ≤ 255).
func absLanes(a, b uint64) uint64 {
	t := (a | laneMSB) - b // lane: a − b + 0x8000
	ge := t & laneMSB      // msb set where a ≥ b
	t ^= laneMSB           // lane: a − b, two's complement
	s := laneMSB ^ ge      // 0x8000 in each negative lane
	lt := s >> 15          // 0x0001 in each negative lane
	m := s | (s - lt)      // 0xFFFF mask over each negative lane
	return (t ^ m) + lt
}

// laneSum sums four 16-bit lanes. The true sum must be below 2¹⁶.
func laneSum(v uint64) int64 {
	return int64(v * laneOnes >> 48)
}
