// Command figures regenerates every table and figure of the paper's
// evaluation from the reproduction, printing paper-vs-measured values
// where the paper published numbers.
//
// Usage:
//
//	figures               # everything (can take a while)
//	figures -fig 2        # one figure
//	figures -table 5      # one table
//	figures -scale 8 -duration 1 -v
//	figures -j 4          # evaluate grid cells on 4 workers
//
// Independent grid cells fan out across -j workers (default
// GOMAXPROCS); results are assembled in grid order, so the rendered
// tables are byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"vbench/internal/corpus"
	"vbench/internal/harness"
	"vbench/internal/tables"
	"vbench/internal/telemetry"
)

func main() {
	fig := flag.Int("fig", 0, "figure to render (1,2,4,5,6,7,8,9); 0 = none unless -all")
	table := flag.Int("table", 0, "table to render (2,3,4,5); 0 = none unless -all")
	all := flag.Bool("all", false, "render every table and figure")
	scale := flag.Int("scale", 8, "linear resolution divisor")
	duration := flag.Float64("duration", 1.0, "clip duration in seconds")
	verbose := flag.Bool("v", false, "print per-encode progress")
	outdir := flag.String("outdir", "", "also write each table as .txt and .csv into this directory")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "benchmark-grid worker count (output is identical at any -j)")
	var topts telemetry.Options
	topts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			check(err)
		}
	}
	emitDir = *outdir

	if *fig == 0 && *table == 0 {
		*all = true
	}

	flush, err := topts.Activate()
	check(err)

	r := harness.NewRunner(*scale, *duration)
	r.Workers = *workers
	r.RegisterMetrics(telemetry.Default)
	if *verbose {
		r.Progress = telemetry.NewLineWriter(os.Stderr)
	}

	wantFig := func(n int) bool { return *all || *fig == n }
	wantTable := func(n int) bool { return *all || *table == n }

	if wantFig(1) {
		emit(harness.Figure1())
	}
	if wantTable(2) {
		t, err := r.Table2()
		check(err)
		emit(t)
	}
	if wantFig(2) {
		t, _, err := r.Figure2("funny", nil)
		check(err)
		emit(t)
	}
	if wantFig(4) {
		t, err := harness.Figure4()
		check(err)
		emit(t)
	}

	var vodRows, liveRows []harness.ScenarioRow
	if wantTable(3) || wantFig(9) {
		t, rows, err := r.Table3()
		check(err)
		vodRows = rows
		if wantTable(3) {
			emit(t)
		}
	}
	if wantTable(4) || wantFig(9) {
		t, rows, err := r.Table4()
		check(err)
		liveRows = rows
		if wantTable(4) {
			emit(t)
		}
	}
	if wantTable(5) {
		t, _, err := r.Table5()
		check(err)
		emit(t)
	}
	if wantFig(9) {
		emit(harness.Figure9(vodRows, liveRows))
	}

	if wantFig(5) || wantFig(6) || wantFig(7) {
		points, err := r.UArchStudy([]corpus.Suite{
			corpus.SuiteCoverage, corpus.SuiteVBench, corpus.SuiteNetflix,
			corpus.SuiteXiph, corpus.SuiteSPEC17,
		})
		check(err)
		if wantFig(5) {
			t, err := harness.Figure5(points)
			check(err)
			emit(t)
		}
		if wantFig(6) {
			t, err := harness.Figure6(points)
			check(err)
			emit(t)
		}
		if wantFig(7) {
			t, err := harness.Figure7(points)
			check(err)
			emit(t)
		}
	}
	if wantFig(8) {
		t, _, err := r.Figure8("girl")
		check(err)
		emit(t)
	}
	if *verbose {
		for _, s := range r.PoolStats() {
			fmt.Fprintf(os.Stderr, "worker %d: %d cells, %v busy\n", s.Worker, s.Jobs, s.Busy)
		}
	}
	check(flush())
}

// emitDir, when set, receives each table as <slug>.txt and <slug>.csv.
var emitDir string

// emit prints a table and optionally persists it.
func emit(t *tables.Table) {
	fmt.Println(t)
	if emitDir == "" {
		return
	}
	slug := strings.ToLower(t.Title)
	if i := strings.IndexAny(slug, ":("); i > 0 {
		slug = slug[:i]
	}
	slug = strings.TrimSpace(slug)
	slug = strings.ReplaceAll(slug, " ", "-")
	txt, err := os.Create(filepath.Join(emitDir, slug+".txt"))
	check(err)
	check(t.Render(txt))
	check(txt.Close())
	csv, err := os.Create(filepath.Join(emitDir, slug+".csv"))
	check(err)
	check(t.RenderCSV(csv))
	check(csv.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
