package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.Arg("cells", 42)
	root.End()

	if tr.Len() != 3 {
		t.Fatalf("recorded %d spans, want 3", tr.Len())
	}
	byName := map[string]traceEvent{}
	for _, e := range tr.events {
		byName[e.name] = e
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.tid != c.tid || c.tid != g.tid {
		t.Errorf("nested spans landed on different tracks: %d/%d/%d", r.tid, c.tid, g.tid)
	}
	// Containment: child inside parent, grandchild inside child.
	if c.ts < r.ts || c.ts+c.dur > r.ts+r.dur {
		t.Errorf("child [%v,%v] escapes root [%v,%v]", c.ts, c.ts+c.dur, r.ts, r.ts+r.dur)
	}
	if g.ts < c.ts || g.ts+g.dur > c.ts+c.dur {
		t.Errorf("grandchild [%v,%v] escapes child [%v,%v]", g.ts, g.ts+g.dur, c.ts, c.ts+c.dur)
	}
	if len(r.args) != 1 || r.args[0].Key != "cells" {
		t.Errorf("root args = %v, want one 'cells' arg", r.args)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const goroutines, spans = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			top := tr.Start(fmt.Sprintf("worker %d", g))
			for i := 0; i < spans; i++ {
				sp := top.Child(fmt.Sprintf("cell %d", i))
				sp.Arg("i", i)
				sp.End()
			}
			top.End()
		}(g)
	}
	wg.Wait()
	if want := goroutines * (spans + 1); tr.Len() != want {
		t.Errorf("recorded %d spans, want %d", tr.Len(), want)
	}
	// Distinct goroutines must have distinct tracks.
	tids := map[int64]bool{}
	for _, e := range tr.events {
		tids[e.tid] = true
	}
	if len(tids) != goroutines {
		t.Errorf("%d distinct tracks, want %d", len(tids), goroutines)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	// All methods must be inert on nil.
	sp.Arg("k", 1)
	child := sp.Child("y")
	child.End()
	sp.End()

	SetTracer(nil)
	if got := StartSpan("z"); got != nil {
		t.Errorf("StartSpan with no tracer = %v, want nil", got)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("encode swx264-medium")
	sp.Arg("frames", 25)
	sp.Arg("note", `quo"te`)
	sp.Child("frame 0").End()
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string                 `json:"ph"`
			Name string                 `json:"name"`
			Tid  int64                  `json:"tid"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			complete++
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("negative timestamp on %q", e.Name)
			}
		}
	}
	if complete != 2 {
		t.Errorf("%d complete events, want 2", complete)
	}
}

func TestStageGate(t *testing.T) {
	EnableStages(false)
	if StagesEnabled() {
		t.Fatal("stages on after disable")
	}
	EnableStages(true)
	if !StagesEnabled() {
		t.Fatal("stages off after enable")
	}
	EnableStages(false)
}
