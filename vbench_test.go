package vbench

import (
	"bytes"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	clip, err := ClipByName("bike")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(16, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	enc := X264(PresetVeryFast)
	res, err := enc.Encode(seq, Config{RC: RCConstQP, QP: 26})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	psnr, err := PSNR(seq, dec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Errorf("PSNR %v too low", psnr)
	}
	ssim, err := SSIM(seq, dec)
	if err != nil {
		t.Fatal(err)
	}
	if ssim < 0.7 || ssim > 1 {
		t.Errorf("SSIM %v implausible", ssim)
	}
}

func TestPublicClipsComplete(t *testing.T) {
	clips := Clips()
	if len(clips) != 15 {
		t.Fatalf("%d clips", len(clips))
	}
}

func TestPublicEncodersConstructible(t *testing.T) {
	for name, enc := range map[string]*Encoder{
		"x264": X264(PresetMedium), "x265": X265(PresetMedium), "vp9": VP9(PresetMedium),
		"nvenc": NVENC(), "qsv": QSV(),
	} {
		if enc == nil || enc.Model == nil {
			t.Errorf("%s encoder incomplete", name)
		}
		if err := enc.Tools.Validate(); err != nil {
			t.Errorf("%s tools: %v", name, err)
		}
	}
}

func TestPublicGenerateAndY4M(t *testing.T) {
	seq, err := Generate(ContentParams{Seed: 1, Detail: 0.5, Motion: 0.3, ChromaVariety: 0.4, Sprites: 2}, 48, 32, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteY4M(&buf, seq); err != nil {
		t.Fatal(err)
	}
	back, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Frames) != 4 {
		t.Errorf("%d frames after round trip", len(back.Frames))
	}
}

func TestPublicEvaluateScenario(t *testing.T) {
	ref := Measurement{SpeedMPS: 10, BitratePPS: 1, PSNR: 40}
	cand := Measurement{SpeedMPS: 50, BitratePPS: 1.4, PSNR: 40}
	score, err := EvaluateScenario(VOD, cand, ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !score.Valid {
		t.Errorf("VOD score invalid: %s", score.Reason)
	}
	if score.Value <= 0 {
		t.Errorf("score %v", score.Value)
	}
}

func TestPublicRunnerScenario(t *testing.T) {
	r := NewRunner(16, 0.3)
	clip, err := ClipByName("bike")
	if err != nil {
		t.Fatal(err)
	}
	score, m, err := r.EvaluateQualityConstrained(VOD, clip, QSV(), RCBitrate)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatalf("no measurement: %s", score.Reason)
	}
	if score.Ratios.S <= 0 || score.Ratios.B <= 0 {
		t.Errorf("bad ratios %+v", score.Ratios)
	}
}
