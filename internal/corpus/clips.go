package corpus

import (
	"fmt"

	"vbench/internal/video"
)

// Clip is one benchmark input video: a named content archetype at a
// native resolution and framerate, with the entropy the paper
// published for it (Table 2). The actual CC-BY YouTube clips cannot be
// redistributed here, so each clip is synthesized deterministically
// from content parameters tuned to reproduce its character (screen
// content, sports, gaming, high-motion festival footage, ...) and its
// position on the entropy axis.
type Clip struct {
	// Name is the paper's clip name.
	Name string
	// Width, Height are the native luma dimensions.
	Width, Height int
	// FrameRate is the clip framerate.
	FrameRate float64
	// PaperEntropy is the entropy from Table 2 (bits/pixel/s at
	// visually lossless quality).
	PaperEntropy float64
	// Params are the synthesis parameters (Seed derives from Name).
	Params video.ContentParams
	// CutEverySeconds inserts hard scene cuts at this period (0 =
	// none); stored in seconds so it scales with framerate.
	CutEverySeconds float64
}

// DurationSeconds is the paper's clip length: 5-second chunks, the
// optimal duration for subjective quality assessment.
const DurationSeconds = 5.0

// nameSeed derives a deterministic seed from a clip name.
func nameSeed(name string) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001B3
	}
	return h
}

// Generate synthesizes the clip at 1/scale linear resolution for
// durationSeconds of content. scale 1 is paper scale; the default
// benchmarks run at scale 8 so a pure-Go encode stays tractable while
// every per-pixel-normalized metric remains comparable. Dimensions
// are snapped to multiples of 16 (macroblock size), minimum 32.
func (c Clip) Generate(scale int, durationSeconds float64) (*video.Sequence, error) {
	if scale < 1 {
		return nil, fmt.Errorf("corpus: invalid scale %d", scale)
	}
	if durationSeconds <= 0 {
		return nil, fmt.Errorf("corpus: invalid duration %v", durationSeconds)
	}
	w := snap16(c.Width / scale)
	h := snap16(c.Height / scale)
	frames := int(durationSeconds*c.FrameRate + 0.5)
	if frames < 2 {
		frames = 2
	}
	p := c.Params
	p.Seed = nameSeed(c.Name)
	if c.CutEverySeconds > 0 {
		p.SceneCutInterval = int(c.CutEverySeconds*c.FrameRate + 0.5)
		if p.SceneCutInterval < 2 {
			p.SceneCutInterval = 2
		}
	}
	return video.Generate(p, w, h, frames, c.FrameRate)
}

func snap16(v int) int {
	if v < 32 {
		return 32
	}
	return (v + 8) / 16 * 16
}

// KPixels returns the clip's native resolution feature.
func (c Clip) KPixels() int { return (c.Width*c.Height + 500) / 1000 }

// VBenchClips returns the 15 benchmark clips of Table 2 in the
// paper's order (by resolution, then entropy).
func VBenchClips() []Clip {
	return []Clip{
		// 854×480 — 410 Kpixel.
		{Name: "cat", Width: 854, Height: 480, FrameRate: 30, PaperEntropy: 6.8,
			Params: video.ContentParams{Detail: 0.75, Motion: 0.75, Noise: 0.40, Sprites: 4, ChromaVariety: 0.6}},
		{Name: "holi", Width: 854, Height: 480, FrameRate: 30, PaperEntropy: 7.0,
			Params: video.ContentParams{Detail: 0.80, Motion: 0.80, Noise: 0.55, Sprites: 10, ChromaVariety: 0.9}},

		// 1280×720 — 922 Kpixel.
		{Name: "desktop", Width: 1280, Height: 720, FrameRate: 30, PaperEntropy: 0.2,
			Params: video.ContentParams{Detail: 0.10, Motion: 0.00, Noise: 0, Sprites: 1, TextRegions: 8, ChromaVariety: 0.15}},
		{Name: "bike", Width: 1280, Height: 720, FrameRate: 30, PaperEntropy: 0.9,
			Params: video.ContentParams{Detail: 0.40, Motion: 0.25, Noise: 0.04, Sprites: 2, ChromaVariety: 0.4}},
		{Name: "cricket", Width: 1280, Height: 720, FrameRate: 30, PaperEntropy: 3.4,
			Params:          video.ContentParams{Detail: 0.48, Motion: 0.55, Noise: 0.07, Sprites: 6, ChromaVariety: 0.5},
			CutEverySeconds: 2.5},
		{Name: "game2", Width: 1280, Height: 720, FrameRate: 60, PaperEntropy: 4.9,
			Params: video.ContentParams{Detail: 0.60, Motion: 0.60, Noise: 0.05, Sprites: 6, TextRegions: 2, ChromaVariety: 0.7}},
		{Name: "girl", Width: 1280, Height: 720, FrameRate: 30, PaperEntropy: 5.9,
			Params: video.ContentParams{Detail: 0.75, Motion: 0.55, Noise: 0.32, Sprites: 3, ChromaVariety: 0.6}},
		{Name: "game3", Width: 1280, Height: 720, FrameRate: 60, PaperEntropy: 6.1,
			Params:          video.ContentParams{Detail: 0.68, Motion: 0.70, Noise: 0.08, Sprites: 8, TextRegions: 2, ChromaVariety: 0.7},
			CutEverySeconds: 3},

		// 1920×1080 — 2074 Kpixel.
		{Name: "presentation", Width: 1920, Height: 1080, FrameRate: 30, PaperEntropy: 0.2,
			Params:          video.ContentParams{Detail: 0.12, Motion: 0.00, Noise: 0, TextRegions: 10, ChromaVariety: 0.2},
			CutEverySeconds: 2.5},
		{Name: "funny", Width: 1920, Height: 1080, FrameRate: 24, PaperEntropy: 2.5,
			Params:          video.ContentParams{Detail: 0.50, Motion: 0.40, Noise: 0.10, Sprites: 4, ChromaVariety: 0.5},
			CutEverySeconds: 2},
		{Name: "house", Width: 1920, Height: 1080, FrameRate: 24, PaperEntropy: 3.6,
			Params: video.ContentParams{Detail: 0.62, Motion: 0.40, Noise: 0.16, Sprites: 3, ChromaVariety: 0.5}},
		{Name: "game1", Width: 1920, Height: 1080, FrameRate: 60, PaperEntropy: 4.6,
			Params: video.ContentParams{Detail: 0.66, Motion: 0.58, Noise: 0.05, Sprites: 6, TextRegions: 3, ChromaVariety: 0.7}},
		{Name: "landscape", Width: 1920, Height: 1080, FrameRate: 30, PaperEntropy: 7.2,
			Params: video.ContentParams{Detail: 0.95, Motion: 0.50, Noise: 0.42, Sprites: 2, ChromaVariety: 0.6}},
		{Name: "hall", Width: 1920, Height: 1080, FrameRate: 30, PaperEntropy: 7.7,
			Params:          video.ContentParams{Detail: 0.85, Motion: 0.80, Noise: 0.50, Sprites: 8, ChromaVariety: 0.7},
			CutEverySeconds: 1.5},

		// 3840×2160 — 8294 Kpixel.
		{Name: "chicken", Width: 3840, Height: 2160, FrameRate: 30, PaperEntropy: 5.9,
			Params: video.ContentParams{Detail: 0.80, Motion: 0.50, Noise: 0.30, Sprites: 4, ChromaVariety: 0.6}},
	}
}

// ClipByName returns the named benchmark clip.
func ClipByName(name string) (Clip, error) {
	for _, c := range VBenchClips() {
		if c.Name == name {
			return c, nil
		}
	}
	return Clip{}, fmt.Errorf("corpus: unknown clip %q", name)
}
