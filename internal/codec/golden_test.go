package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"vbench/internal/video"
)

// The golden-digest suite pins the encoder's exact output bytes across
// a small config matrix (dimensions × tool variants × rate-control
// modes). Digests are committed in testdata/golden_digests.json, so a
// kernel swap (see internal/codec/kern) proves bitstream, recon, and
// decode byte-identity against the historical encoder in CI — not just
// against an in-process re-encode that would share any new bug.
//
// Regenerate (only when an intentional format/behaviour change is
// reviewed and documented in docs/FORMAT.md):
//
//	go test ./internal/codec -run TestGoldenDigests -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current encoder")

const goldenPath = "testdata/golden_digests.json"

// goldenDigest records the SHA-256 of an encode's bitstream and of its
// reconstruction planes (all frames, Y then Cb then Cr, concatenated).
type goldenDigest struct {
	Bitstream string `json:"bitstream"`
	Recon     string `json:"recon"`
}

// goldenCase is one cell of the matrix.
type goldenCase struct {
	name string
	w, h int
	tool Tools
	cfg  Config
}

// goldenTools builds the tool variants exercised by the matrix: the
// preset ladder ends plus targeted single-tool deltas over medium, so
// each optimized kernel path (tx8, intra4, sharp interp, AQ, deblock,
// rich arithmetic contexts, trellis, multi-ref) is pinned by at least
// one digest.
func goldenTools() map[string]Tools {
	medium := BaselineTools(PresetMedium)

	rich := BaselineTools(PresetSlow)
	rich.Name = "golden-rich"
	rich.Entropy = EntropyArith
	rich.RichContexts = true
	rich.SharpInterp = true
	rich.AdaptiveQuant = true
	rich.Deblock = true
	rich.Intra4x4 = true
	rich.Transform8x8 = true
	rich.MaxRefs = 2
	rich.SceneCut = true

	return map[string]Tools{
		"ultrafast": BaselineTools(PresetUltraFast),
		"medium":    medium,
		"rich":      rich,
	}
}

func goldenCases() []goldenCase {
	dims := []struct{ w, h int }{
		{48, 32}, // macroblock aligned
		{36, 20}, // padded (not a multiple of 16): exercises cropFrame + edge clamping
		{64, 48},
	}
	var cases []goldenCase
	for _, d := range dims {
		for toolName, tool := range goldenTools() {
			add := func(cfgName string, cfg Config) {
				cases = append(cases, goldenCase{
					name: fmt.Sprintf("%dx%d/%s/%s", d.w, d.h, toolName, cfgName),
					w:    d.w, h: d.h, tool: tool, cfg: cfg,
				})
			}
			add("constqp", Config{RC: RCConstQP, QP: 28, KeyInterval: 4})
			add("twopass", Config{RC: RCTwoPass, BitrateBPS: 90e3})
			add("slices3", Config{RC: RCConstQP, QP: 24, Slices: 3})
		}
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].name < cases[j].name })
	return cases
}

// goldenSequence synthesizes the deterministic source clip for one
// dimension cell. Content parameters are fixed forever: changing them
// invalidates every digest.
func goldenSequence(t *testing.T, w, h int) *video.Sequence {
	t.Helper()
	seq, err := video.Generate(video.ContentParams{
		Seed: 77, Detail: 0.5, Motion: 0.4, Noise: 0.1,
		Sprites: 2, TextRegions: 1, ChromaVariety: 0.4,
	}, w, h, 6, 30)
	if err != nil {
		t.Fatalf("generating golden sequence: %v", err)
	}
	return seq
}

// reconDigest hashes every reconstruction plane in frame order.
func reconDigest(seq *video.Sequence) string {
	h := sha256.New()
	for _, f := range seq.Frames {
		h.Write(f.Y)
		h.Write(f.Cb)
		h.Write(f.Cr)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func bitstreamDigest(bs []byte) string {
	sum := sha256.Sum256(bs)
	return hex.EncodeToString(sum[:])
}

func TestGoldenDigests(t *testing.T) {
	want := map[string]goldenDigest{}
	if !*updateGolden {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden digests (run with -update-golden to create): %v", err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("parsing %s: %v", goldenPath, err)
		}
	}

	got := map[string]goldenDigest{}
	seqs := map[string]*video.Sequence{}
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			key := fmt.Sprintf("%dx%d", gc.w, gc.h)
			seq := seqs[key]
			if seq == nil {
				seq = goldenSequence(t, gc.w, gc.h)
				seqs[key] = seq
			}
			eng := &Engine{Tools: gc.tool}
			res, err := eng.Encode(seq, gc.cfg)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			d := goldenDigest{
				Bitstream: bitstreamDigest(res.Bitstream),
				Recon:     reconDigest(res.Recon),
			}
			got[gc.name] = d

			// Decode must land exactly on the encoder reconstruction,
			// so one digest pins all three artifacts.
			dec, _, err := Decode(res.Bitstream)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if dd := reconDigest(dec); dd != d.Recon {
				t.Fatalf("decode digest %s != recon digest %s", dd, d.Recon)
			}

			// Wavefront row parallelism is a scheduling knob, never a
			// format change: re-encoding every golden cell with 2 and 8
			// row lanes must land on the same digests (so the committed
			// matrix pins the concurrent path too, including the
			// multi-slice × wavefront combinations).
			for _, rp := range []int{2, 8} {
				cfg := gc.cfg
				cfg.RowsParallel = rp
				wres, err := eng.Encode(seq, cfg)
				if err != nil {
					t.Fatalf("encode (rows-parallel=%d): %v", rp, err)
				}
				if bd := bitstreamDigest(wres.Bitstream); bd != d.Bitstream {
					t.Errorf("rows-parallel=%d bitstream digest %s != serial %s", rp, bd, d.Bitstream)
				}
				if rd := reconDigest(wres.Recon); rd != d.Recon {
					t.Errorf("rows-parallel=%d recon digest %s != serial %s", rp, rd, d.Recon)
				}
			}

			if !*updateGolden {
				w, ok := want[gc.name]
				if !ok {
					t.Fatalf("no committed digest for %q (run -update-golden and review)", gc.name)
				}
				if w != d {
					t.Errorf("digest mismatch:\n  bitstream got %s want %s\n  recon     got %s want %s",
						d.Bitstream, w.Bitstream, d.Recon, w.Recon)
				}
			}
		})
	}

	if *updateGolden {
		if t.Failed() {
			t.Fatal("not rewriting golden digests: encode failures above")
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
	} else if len(want) != len(got) {
		t.Errorf("committed digest count %d != case count %d (stale file?)", len(want), len(got))
	}
}
