// Package syncx is a stub of the repository's syncx package: the
// analyzer matches it by package name, so this stands in for the real
// one inside the self-contained testdata module.
package syncx

// CPUGate mimics the real token-bucket gate's blocking surface.
type CPUGate struct{ tokens chan struct{} }

func (g *CPUGate) Acquire()                                { g.tokens <- struct{}{} }
func (g *CPUGate) AcquireOrQuit(quit <-chan struct{}) bool { return true }
func (g *CPUGate) Release()                                { <-g.tokens }
