package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Options carries the telemetry command-line configuration shared by
// every binary (vbench, figures, uarchsim).
type Options struct {
	// TracePath, when set, installs a process-wide tracer and writes a
	// Chrome trace-event JSON file there at shutdown.
	TracePath string
	// MetricsPath, when set, writes the default registry's snapshot
	// there at shutdown.
	MetricsPath string
	// DebugAddr, when set, serves /debug/pprof, /debug/vars, and
	// /debug/metrics on the address for the life of the process.
	DebugAddr string
}

// RegisterFlags binds the standard telemetry flags on fs.
func (o *Options) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.TracePath, "trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&o.MetricsPath, "metrics", "", "write a deterministic metrics snapshot JSON file")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
}

// Activate turns the requested telemetry on: it installs the tracer,
// enables the codec stage clocks, and starts the debug server. The
// returned flush writes the trace and metrics files and stops the
// debug server; call it once the run is complete.
func (o *Options) Activate() (flush func() error, err error) {
	var tracer *Tracer
	if o.TracePath != "" {
		tracer = NewTracer()
		SetTracer(tracer)
	}
	if o.TracePath != "" || o.MetricsPath != "" {
		EnableStages(true)
	}
	var stopDebug func() error
	if o.DebugAddr != "" {
		stopDebug, err = StartDebugServer(o.DebugAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: debug endpoint on http://%s/debug/pprof\n", o.DebugAddr)
	}
	return func() error {
		var first error
		if tracer != nil {
			SetTracer(nil)
			if err := writeFile(o.TracePath, tracer.WriteChromeTrace); err != nil && first == nil {
				first = err
			}
		}
		if o.MetricsPath != "" {
			if err := writeFile(o.MetricsPath, Default.WriteJSON); err != nil && first == nil {
				first = err
			}
		}
		if stopDebug != nil {
			if err := stopDebug(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// writeFile streams write into a freshly created path.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}
