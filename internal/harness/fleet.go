package harness

import (
	"fmt"

	"vbench/internal/corpus"
	"vbench/internal/fleet"
)

// FleetJobSpecs renders a clip × encoder benchmark grid as fleet job
// specs, so the same cells the in-process worker pool evaluates can be
// submitted to a vbenchd master and spread across networked workers
// (`vbenchd submit -suite`). Encoder names use the fleet "family-
// preset" form (e.g. "x264-medium", "x265-veryslow"); each spec is
// tagged "clip/encoder" so results map back to grid cells.
func FleetJobSpecs(clips []corpus.Clip, encoders []string, scale int, duration float64, qp int) []fleet.JobSpec {
	if scale <= 0 {
		scale = 8
	}
	if duration <= 0 {
		duration = 1.0
	}
	if qp <= 0 {
		qp = 28
	}
	specs := make([]fleet.JobSpec, 0, len(clips)*len(encoders))
	for _, c := range clips {
		for _, enc := range encoders {
			specs = append(specs, fleet.JobSpec{
				Kind:     fleet.KindEncode,
				Tag:      fmt.Sprintf("%s/%s", c.Name, enc),
				Clip:     c.Name,
				Scale:    scale,
				Duration: duration,
				Encoder:  enc,
				QP:       qp,
			})
		}
	}
	return specs
}
