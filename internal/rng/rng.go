// Package rng provides small, deterministic pseudo-random number
// generators used throughout vbench. Every stochastic component of the
// benchmark (content synthesis, corpus sampling, clustering restarts)
// is seeded explicitly so that complete benchmark runs are bit-for-bit
// reproducible across machines and Go releases. The standard library's
// math/rand is deliberately avoided because its generator and stream
// splitting behaviour changed between releases.
package rng

import "math"

// SplitMix64 is a tiny 64-bit generator with a 64-bit state. It is
// used both directly for cheap draws and to seed Xoshiro generators.
// The algorithm follows Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators" (OOPSLA 2014).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Rand is the workhorse generator: xoshiro256**, seeded via SplitMix64.
// It passes BigCrush and is far cheaper than crypto-grade sources,
// which matters because content synthesis draws per pixel.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded deterministically from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Uint64()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0, mirroring math/rand semantics.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
