// Package tables renders aligned plain-text tables and CSV for the
// benchmark's reports — every table and figure of the paper is
// regenerated as one of these.
package tables

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table.
	Notes []string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells. Each argument is rendered
// with %v unless it is a float64, which uses %.3g-style compact form.
func (t *Table) AddRowf(cells ...interface{}) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = FormatFloat(v)
		case string:
			strs[i] = v
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders a float compactly with sensible precision for
// benchmark ratios and measurements.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.095:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("tables: render error: %v", err)
	}
	return b.String()
}

// RenderCSV writes the table as CSV (without title/notes) to w.
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
