package perf

import (
	"testing"
	"testing/quick"
)

func TestKernelNames(t *testing.T) {
	for k := Kernel(0); k < NumKernels; k++ {
		if k.String() == "" || k.String()[0] == 'k' {
			t.Errorf("kernel %d has bad name %q", int(k), k.String())
		}
	}
	if Kernel(99).String() != "kernel(99)" {
		t.Errorf("out-of-range kernel name = %q", Kernel(99).String())
	}
}

func TestVectorizableSplit(t *testing.T) {
	wantVec := map[Kernel]bool{
		KSAD: true, KInterp: true, KDCT: true, KQuant: true, KIntra: true, KDeblock: true,
		KEntropy: false, KControl: false, KDecode: false,
	}
	for k, want := range wantVec {
		if got := k.Vectorizable(); got != want {
			t.Errorf("%v.Vectorizable() = %v, want %v", k, got, want)
		}
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.Count(KSAD, 100)
	a.MBTotal = 5
	a.BitsOutput = 80
	b.Count(KSAD, 50)
	b.Count(KDCT, 10)
	b.MBTotal = 3
	a.Add(&b)
	if a.Ops[KSAD] != 150 || a.Ops[KDCT] != 10 {
		t.Errorf("Add ops wrong: %v", a.Ops)
	}
	if a.Invocations[KSAD] != 2 || a.MBTotal != 8 || a.BitsOutput != 80 {
		t.Error("Add structural counters wrong")
	}
	if a.TotalOps() != 160 {
		t.Errorf("TotalOps = %d", a.TotalOps())
	}
}

func TestISANamesAndParse(t *testing.T) {
	for isa := ISA(0); isa < NumISA; isa++ {
		parsed, err := ParseISA(isa.String())
		if err != nil || parsed != isa {
			t.Errorf("ParseISA(%q) = %v, %v", isa.String(), parsed, err)
		}
	}
	if _, err := ParseISA("mmx"); err == nil {
		t.Error("ParseISA accepted unknown name")
	}
}

func TestSIMDSpeedupMonotone(t *testing.T) {
	prev := 0.0
	for isa := ISA(0); isa < NumISA; isa++ {
		s := SIMDSpeedup(isa)
		if s < prev {
			t.Errorf("speedup fell at %v: %v < %v", isa, s, prev)
		}
		prev = s
	}
	if SIMDSpeedup(ISAScalar) != 1 {
		t.Error("scalar speedup must be 1")
	}
}

func TestCostModelISAMonotone(t *testing.T) {
	var c Counters
	c.Count(KSAD, 1_000_000)
	c.Count(KEntropy, 100_000)
	m := ReferenceCPU()
	prev := 1e18
	for isa := ISA(0); isa < NumISA; isa++ {
		s := m.WithISA(isa).Seconds(&c)
		if s > prev {
			t.Errorf("seconds grew with newer ISA %v: %v > %v", isa, s, prev)
		}
		prev = s
	}
}

func TestCostModelScalarKernelsUnaffectedByISA(t *testing.T) {
	var c Counters
	c.Count(KEntropy, 1_000_000)
	m := ReferenceCPU()
	sScalar := m.WithISA(ISAScalar).Seconds(&c)
	sAVX2 := m.WithISA(ISAAVX2).Seconds(&c)
	if sScalar != sAVX2 {
		t.Errorf("entropy-only workload changed with ISA: %v vs %v", sScalar, sAVX2)
	}
}

func TestCostModelParallelismOverridesISA(t *testing.T) {
	var c Counters
	c.Count(KSAD, 1_000_000)
	m := ReferenceCPU()
	m.Parallelism = 100
	base := ReferenceCPU().Seconds(&c)
	par := m.Seconds(&c)
	if par >= base {
		t.Errorf("parallel model not faster: %v vs %v", par, base)
	}
}

func TestCostModelOverheads(t *testing.T) {
	var c Counters
	c.Frames = 10
	c.Pixels = 1000
	m := &CostModel{ClockHz: 1e9, FrameOverheadCycles: 1e6, PerPixelOverheadCycles: 2}
	want := (10*1e6 + 1000*2) / 1e9
	if got := m.Seconds(&c); got != want {
		t.Errorf("overhead seconds = %v, want %v", got, want)
	}
}

func TestKernelSecondsSumsToCycles(t *testing.T) {
	f := func(sad, ent, frames uint16) bool {
		var c Counters
		c.Count(KSAD, int64(sad))
		c.Count(KEntropy, int64(ent))
		c.Frames = int64(frames % 100)
		c.Pixels = int64(frames) * 100
		m := ReferenceCPU()
		m.FrameOverheadCycles = 1000
		per := m.KernelSeconds(&c)
		var sum float64
		for _, v := range per {
			sum += v
		}
		total := m.Seconds(&c)
		return sum > total*0.999999 && sum < total*1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsPanicsWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-clock model did not panic")
		}
	}()
	var c Counters
	(&CostModel{}).Seconds(&c)
}
