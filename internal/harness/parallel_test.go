package harness

import (
	"strings"
	"sync"
	"testing"

	"vbench/internal/corpus"
	"vbench/internal/scoring"
	"vbench/internal/video"
)

// TestRunnerCachesComputeExactlyOnce hammers every memoized Runner
// entry point from many goroutines and asserts each cache key was
// computed exactly once (the progress log carries one line per actual
// computation, so duplicated work would double-emit). Run with -race
// this is also the cache's data-race test.
func TestRunnerCachesComputeExactlyOnce(t *testing.T) {
	var sb strings.Builder
	r := tiny()
	r.Progress = &sb
	c := clip(t, "bike")

	const goroutines = 32
	seqs := make([]*video.Sequence, goroutines)
	entropies := make([]float64, goroutines)
	targets := make([]float64, goroutines)
	refs := make([]*Measured, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := r.Sequence(c)
			if err != nil {
				t.Error(err)
				return
			}
			seqs[i] = s
			e, err := r.ClipEntropy(c)
			if err != nil {
				t.Error(err)
				return
			}
			entropies[i] = e
			b, err := r.TargetBitrate(c)
			if err != nil {
				t.Error(err)
				return
			}
			targets[i] = b
			m, err := r.Reference(scoring.VOD, c)
			if err != nil {
				t.Error(err)
				return
			}
			refs[i] = m
		}(i)
	}
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if seqs[i] != seqs[0] {
			t.Fatalf("goroutine %d got a different sequence instance", i)
		}
		if refs[i] != refs[0] {
			t.Fatalf("goroutine %d got a different reference instance", i)
		}
		if entropies[i] != entropies[0] || targets[i] != targets[0] {
			t.Fatalf("goroutine %d got different scalar results", i)
		}
	}

	// One computation = one progress line. Check-then-act caches used
	// to double-compute AND double-emit here.
	log := sb.String()
	if n := strings.Count(log, "entropy "); n != 1 {
		t.Errorf("entropy computed %d times, want 1\n%s", n, log)
	}
	if n := strings.Count(log, "reference "); n != 1 {
		t.Errorf("reference computed %d times, want 1\n%s", n, log)
	}
}

// runAtWorkers renders a set of harness tables at a given worker
// count, concatenated, using a fresh Runner (fresh caches) per call.
func runAtWorkers(t *testing.T, workers int) string {
	t.Helper()
	r := tiny()
	r.Workers = workers

	var sb strings.Builder
	tab, _, err := r.Figure2("bike", []float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(tab.String())

	points, err := r.UArchStudy([]corpus.Suite{corpus.SuiteSPEC17, corpus.SuiteVBench})
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Figure5(points)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(f5.String())

	tab2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(tab2.String())
	return sb.String()
}

// TestParallelOutputMatchesSerial is the harness determinism
// guarantee: a parallel run (-j 8) renders byte-identical tables to a
// serial run (-j 1).
func TestParallelOutputMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("renders multi-clip grids twice")
	}
	serial := runAtWorkers(t, 1)
	parallel := runAtWorkers(t, 8)
	if serial != parallel {
		t.Errorf("parallel output differs from serial output\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestUArchSeedsOrderIndependent pins the seed-derivation fix: seeds
// come from the suite/clip identity, not the accumulation order, so
// evaluating suites in a different order yields identical profiles.
func TestUArchSeedsOrderIndependent(t *testing.T) {
	r := tiny()
	fwd, err := r.UArchStudy([]corpus.Suite{corpus.SuiteSPEC17, corpus.SuiteSPEC06})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := r.UArchStudy([]corpus.Suite{corpus.SuiteSPEC06, corpus.SuiteSPEC17})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]UArchPoint{}
	for _, p := range fwd {
		byKey[string(p.Suite)+"/"+p.Clip.Name] = p
	}
	if len(rev) != len(fwd) {
		t.Fatalf("point counts differ: %d vs %d", len(fwd), len(rev))
	}
	for _, p := range rev {
		q, ok := byKey[string(p.Suite)+"/"+p.Clip.Name]
		if !ok {
			t.Fatalf("point %s/%s missing from forward run", p.Suite, p.Clip.Name)
		}
		if *p.Profile != *q.Profile {
			t.Errorf("%s/%s profile depends on evaluation order", p.Suite, p.Clip.Name)
		}
	}
}

func TestStableSeedProperties(t *testing.T) {
	a := stableSeed("vbench/girl")
	if a != stableSeed("vbench/girl") {
		t.Error("stableSeed not deterministic")
	}
	if a == stableSeed("vbench/bike") {
		t.Error("distinct names collided")
	}
	if a == 0 || a == 1 {
		t.Error("seed collides with the reserved defaults")
	}
}

// TestPoolStatsExposed verifies the Runner reports per-worker timing
// counters after a grid run.
func TestPoolStatsExposed(t *testing.T) {
	r := tiny()
	r.Workers = 2
	if r.PoolStats() != nil {
		t.Error("stats before any grid run")
	}
	if _, _, err := r.Figure2("bike", []float64{0.5, 4}); err != nil {
		t.Fatal(err)
	}
	stats := r.PoolStats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d workers, want 2", len(stats))
	}
	jobs := 0
	for _, s := range stats {
		jobs += s.Jobs
	}
	if jobs != 6 {
		t.Errorf("stats count %d cells, want 6 (3 encoders x 2 bitrates)", jobs)
	}
}
