package codec

import (
	"testing"
	"testing/quick"

	"vbench/internal/rng"
)

// symEvent is a scripted symbol operation used to exercise both
// entropy backends identically.
type symEvent struct {
	kind int // 0 bit, 1 bypass, 2 ue, 3 se
	set  int
	v    int32
}

func randomEvents(seed uint64, n int) []symEvent {
	r := rng.New(seed)
	evs := make([]symEvent, n)
	for i := range evs {
		evs[i] = symEvent{
			kind: r.Intn(4),
			set:  r.Intn(numCtxSets),
			v:    int32(r.Intn(2000) - 1000),
		}
	}
	return evs
}

func writeEvents(w symWriter, evs []symEvent) {
	for _, e := range evs {
		switch e.kind {
		case 0:
			w.Bit(e.set, int(e.v)&1)
		case 1:
			w.Bypass(int(e.v) & 1)
		case 2:
			w.UE(e.set, uint32(abs32t(e.v)))
		case 3:
			w.SE(e.set, e.v)
		}
	}
}

func readAndCheck(t *testing.T, r symReader, evs []symEvent) {
	t.Helper()
	for i, e := range evs {
		switch e.kind {
		case 0:
			got, err := r.Bit(e.set)
			if err != nil || got != int(e.v)&1 {
				t.Fatalf("event %d bit: got %d err %v", i, got, err)
			}
		case 1:
			got, err := r.Bypass()
			if err != nil || got != int(e.v)&1 {
				t.Fatalf("event %d bypass: got %d err %v", i, got, err)
			}
		case 2:
			got, err := r.UE(e.set)
			if err != nil || got != uint32(abs32t(e.v)) {
				t.Fatalf("event %d ue: got %d want %d err %v", i, got, abs32t(e.v), err)
			}
		case 3:
			got, err := r.SE(e.set)
			if err != nil || got != e.v {
				t.Fatalf("event %d se: got %d want %d err %v", i, got, e.v, err)
			}
		}
	}
}

func abs32t(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestGolombSymLayerRoundTrip(t *testing.T) {
	evs := randomEvents(1, 5000)
	w := newGolombWriter()
	writeEvents(w, evs)
	readAndCheck(t, newGolombReader(w.Flush()), evs)
}

func TestArithSymLayerRoundTrip(t *testing.T) {
	evs := randomEvents(2, 5000)
	w := newArithWriter()
	writeEvents(w, evs)
	readAndCheck(t, newArithReader(w.Flush()), evs)
}

func TestSymLayerRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%500 + 1
		evs := randomEvents(seed, n)
		gw := newGolombWriter()
		writeEvents(gw, evs)
		gr := newGolombReader(gw.Flush())
		aw := newArithWriter()
		writeEvents(aw, evs)
		ar := newArithReader(aw.Flush())
		for _, e := range evs {
			switch e.kind {
			case 0:
				g, _ := gr.Bit(e.set)
				a, _ := ar.Bit(e.set)
				if g != int(e.v)&1 || a != int(e.v)&1 {
					return false
				}
			case 1:
				g, _ := gr.Bypass()
				a, _ := ar.Bypass()
				if g != int(e.v)&1 || a != int(e.v)&1 {
					return false
				}
			case 2:
				g, _ := gr.UE(e.set)
				a, _ := ar.UE(e.set)
				if g != uint32(abs32t(e.v)) || a != uint32(abs32t(e.v)) {
					return false
				}
			case 3:
				g, _ := gr.SE(e.set)
				a, _ := ar.SE(e.set)
				if g != e.v || a != e.v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSeMapRoundTrip(t *testing.T) {
	for v := int32(-1000); v <= 1000; v++ {
		if seUnmap(seMap(v)) != v {
			t.Fatalf("seMap round trip failed for %d", v)
		}
	}
}

func TestBinsAccounting(t *testing.T) {
	w := newArithWriter()
	if w.Bins() != 0 {
		t.Error("fresh writer has bins")
	}
	w.Bit(ctxSkip, 1)
	w.UE(ctxLumaMode, 5)
	if w.Bins() == 0 {
		t.Error("bins not counted")
	}
}

func TestResidualBlockRoundTripBothBackends(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 4
		if trial%2 == 1 {
			n = 8
		}
		nn := n * n
		zz := make([]int32, nn)
		// Sparse, decaying coefficients like real transforms produce.
		for i := 0; i < nn; i++ {
			if r.Float64() < 0.3/float64(1+i/4) {
				zz[i] = int32(r.Intn(63) - 31)
			}
		}
		nonzero := false
		for _, v := range zz {
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			zz[0] = 1
		}
		for _, rich := range []bool{false, true} {
			aw := newArithWriter()
			writeResidualBlock(aw, zz, rich)
			back := make([]int32, nn)
			if err := readResidualBlock(newArithReader(aw.Flush()), back, rich); err != nil {
				t.Fatalf("trial %d rich=%v: %v", trial, rich, err)
			}
			for i := range zz {
				if zz[i] != back[i] {
					t.Fatalf("trial %d rich=%v coef %d: %d != %d", trial, rich, i, zz[i], back[i])
				}
			}
		}
	}
}

func TestResidualBitsEstimateTracksActual(t *testing.T) {
	r := rng.New(9)
	zz := make([]int32, 16)
	for i := range zz {
		if r.Float64() < 0.4 {
			zz[i] = int32(r.Intn(21) - 10)
		}
	}
	zz[0] = 3
	gw := newGolombWriter()
	writeResidualBlock(gw, zz, false)
	actual := gw.BitLen()
	est := residualBits(zz)
	if est < actual-8 || est > actual+8 {
		t.Errorf("estimate %d far from actual %d", est, actual)
	}
}
