// Package metrics implements the three measurement axes of vbench —
// visual quality, video size, and transcoding speed — exactly as
// Section 2.3 of the paper defines them:
//
//   - quality: average YCbCr PSNR between the original and transcoded
//     frames (dB, higher is better);
//   - size: bitrate normalized per pixel per second (bits/pixel/s), so
//     videos of different resolutions and durations are comparable;
//   - speed: pixels transcoded per second (Mpixel/s).
//
// SSIM is also provided for completeness (the paper discusses
// perceptual metrics but standardizes on PSNR).
package metrics

import (
	"errors"
	"fmt"
	"math"

	"vbench/internal/video"
)

// MaxPSNR is the value reported for identical planes. A mathematically
// infinite PSNR is capped so scores stay finite; 100 dB is far above
// the ~50 dB "visually lossless" threshold the paper uses.
const MaxPSNR = 100.0

// MSEPlane returns the mean squared error between two equally sized
// sample planes.
func MSEPlane(a, b []uint8) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: plane length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, errors.New("metrics: empty plane")
	}
	var sum uint64
	for i := range a {
		d := int(a[i]) - int(b[i])
		sum += uint64(d * d)
	}
	return float64(sum) / float64(len(a)), nil
}

// psnrFromMSE converts an MSE to PSNR in dB for 8-bit samples.
func psnrFromMSE(mse float64) float64 {
	if mse <= 0 {
		return MaxPSNR
	}
	p := 10 * math.Log10(255*255/mse)
	if p > MaxPSNR {
		return MaxPSNR
	}
	return p
}

// FramePSNR returns the PSNR of each plane of t against reference f.
func FramePSNR(ref, t *video.Frame) (y, cb, cr float64, err error) {
	if ref.Width != t.Width || ref.Height != t.Height {
		return 0, 0, 0, fmt.Errorf("metrics: frame size mismatch %dx%d vs %dx%d",
			ref.Width, ref.Height, t.Width, t.Height)
	}
	my, err := MSEPlane(ref.Y, t.Y)
	if err != nil {
		return 0, 0, 0, err
	}
	mcb, err := MSEPlane(ref.Cb, t.Cb)
	if err != nil {
		return 0, 0, 0, err
	}
	mcr, err := MSEPlane(ref.Cr, t.Cr)
	if err != nil {
		return 0, 0, 0, err
	}
	return psnrFromMSE(my), psnrFromMSE(mcb), psnrFromMSE(mcr), nil
}

// SequencePSNR computes the average YCbCr PSNR between a reference
// sequence and its transcode, following the paper: the MSE of every
// plane of every frame is averaged (weighted by sample count, so luma
// counts 4x chroma in 4:2:0) and converted to dB once. Averaging MSE
// rather than per-frame dB keeps a single ruined frame visible in the
// score.
func SequencePSNR(ref, t *video.Sequence) (float64, error) {
	if len(ref.Frames) != len(t.Frames) {
		return 0, fmt.Errorf("metrics: frame count mismatch %d vs %d", len(ref.Frames), len(t.Frames))
	}
	if len(ref.Frames) == 0 {
		return 0, errors.New("metrics: empty sequence")
	}
	var sumSq float64
	var samples float64
	for i := range ref.Frames {
		rf, tf := ref.Frames[i], t.Frames[i]
		if rf.Width != tf.Width || rf.Height != tf.Height {
			return 0, fmt.Errorf("metrics: frame %d size mismatch", i)
		}
		for _, p := range []video.Plane{video.PlaneY, video.PlaneCb, video.PlaneCr} {
			ra, _, _ := rf.PlaneData(p)
			ta, _, _ := tf.PlaneData(p)
			m, err := MSEPlane(ra, ta)
			if err != nil {
				return 0, fmt.Errorf("metrics: frame %d plane %v: %w", i, p, err)
			}
			sumSq += m * float64(len(ra))
			samples += float64(len(ra))
		}
	}
	return psnrFromMSE(sumSq / samples), nil
}

// Bitrate converts a compressed size to the paper's normalized bitrate
// in bits per pixel per second: totalBits / pixelsPerFrame / duration
// ... which reduces to bits divided by total pixels times framerate
// normalization. Concretely: bits/(W*H) / seconds.
func Bitrate(compressedBytes int64, width, height int, durationSeconds float64) (float64, error) {
	if width <= 0 || height <= 0 {
		return 0, fmt.Errorf("metrics: invalid dimensions %dx%d", width, height)
	}
	if durationSeconds <= 0 {
		return 0, fmt.Errorf("metrics: non-positive duration %v", durationSeconds)
	}
	bits := float64(compressedBytes) * 8
	return bits / float64(width*height) / durationSeconds, nil
}

// Speed converts a transcode's processing time into the paper's
// normalized speed in megapixels per second.
func Speed(totalPixels int64, processingSeconds float64) (float64, error) {
	if totalPixels <= 0 {
		return 0, fmt.Errorf("metrics: non-positive pixel count %d", totalPixels)
	}
	if processingSeconds <= 0 {
		return 0, fmt.Errorf("metrics: non-positive processing time %v", processingSeconds)
	}
	return float64(totalPixels) / processingSeconds / 1e6, nil
}

// RealTimeSpeed returns the minimum speed (Mpixel/s) a transcoder must
// sustain to keep up with live playback of a sequence: the output
// pixel rate.
func RealTimeSpeed(width, height int, frameRate float64) float64 {
	return float64(width*height) * frameRate / 1e6
}
