package fleet

import (
	"fmt"
	"strings"
)

// timelineCap bounds each job's event ring. A well-behaved job emits
// a handful of events (submit, lease, done); a job that churns through
// retries and expiries is exactly the one worth debugging, so the ring
// keeps the most recent events and counts what it dropped instead of
// growing without bound on a master that stays up for weeks.
const timelineCap = 32

// TimelineEvent is one structured state transition in a job's life,
// recorded at the queue's setState choke point. Seq is a queue-wide
// monotonic sequence number (total order across jobs); T is seconds
// since the queue started, the same clock domain as the transition
// log, so simulated runs produce byte-identical timelines.
type TimelineEvent struct {
	Seq     int64   `json:"seq"`
	T       float64 `json:"t"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Reason  string  `json:"reason"`
	Attempt int     `json:"attempt"`
	Worker  string  `json:"worker,omitempty"`
}

// String renders the event in the fixed format used by DumpTimelines.
func (e TimelineEvent) String() string {
	w := e.Worker
	if w == "" {
		w = "-"
	}
	return fmt.Sprintf("seq=%d t=%.3f %s>%s reason=%s attempt=%d worker=%s",
		e.Seq, e.T, e.From, e.To, e.Reason, e.Attempt, w)
}

// recordTimeline appends one event to the job's bounded ring. Callers
// hold q.mu.
func (q *Queue) recordTimeline(j *Job, from, to, reason string) {
	q.eventSeq++
	ev := TimelineEvent{
		Seq:     q.eventSeq,
		T:       q.now().Sub(q.start).Seconds(),
		From:    from,
		To:      to,
		Reason:  reason,
		Attempt: j.Attempt,
		Worker:  j.Worker,
	}
	if len(j.Timeline) >= timelineCap {
		copy(j.Timeline, j.Timeline[1:])
		j.Timeline[len(j.Timeline)-1] = ev
		j.TimelineDropped++
	} else {
		j.Timeline = append(j.Timeline, ev)
	}
	q.mTimelineEvents.Inc()
}

// Timeline returns a copy of one job's event ring plus the number of
// older events the ring dropped.
func (q *Queue) Timeline(id int) ([]TimelineEvent, int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.get(id)
	if err != nil {
		return nil, 0, err
	}
	return append([]TimelineEvent(nil), j.Timeline...), j.TimelineDropped, nil
}

// DumpTimelines renders every job's timeline in job order as fixed-
// format lines. Like the transition log, the output is a pure function
// of the schedule: the determinism tests pin it byte-for-byte across
// repeated sim runs.
func (q *Queue) DumpTimelines() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	var b strings.Builder
	for _, j := range q.jobs {
		for _, e := range j.Timeline {
			fmt.Fprintf(&b, "job=%d %s\n", j.ID, e)
		}
		if j.TimelineDropped > 0 {
			fmt.Fprintf(&b, "job=%d dropped=%d\n", j.ID, j.TimelineDropped)
		}
	}
	return b.String()
}
