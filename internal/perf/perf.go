// Package perf defines the abstract work accounting shared by every
// encoder in vbench and the deterministic timing models that convert
// that work into transcode speed.
//
// The paper reports speed measured on one fixed reference machine
// (an i7-6700K for scores; a Xeon E5-1650v3 for the µarch study).
// Reproducing wall-clock numbers of other people's silicon is neither
// possible nor necessary: vbench scores are *ratios* against the
// reference transcode. We therefore make every encoder account for the
// operations it actually performs, kernel by kernel, and convert ops
// to time with an explicit machine model. Two encoders' speed ratio
// then reflects the real ratio of work performed, is bit-reproducible
// across machines, and — for the fixed-function "GPU" encoders — can
// express pipelined hardware that a pure-Go implementation could never
// demonstrate with wall clocks.
package perf

import "fmt"

// Kernel identifies one computational kernel of the transcoding
// pipeline. The decomposition mirrors the hotspots the paper names:
// motion estimation, interpolation, transform, quantization, entropy
// coding, intra prediction, deblocking, and the scalar decision logic
// around them.
type Kernel int

// The transcoder kernels.
const (
	KSAD     Kernel = iota // block matching (SAD/SATD) during motion search
	KInterp                // sub-pel interpolation and motion compensation
	KDCT                   // forward/inverse transforms
	KQuant                 // quantization and dequantization
	KEntropy               // entropy coding (strictly sequential)
	KIntra                 // intra prediction
	KDeblock               // deblocking filter
	KControl               // mode decisions, rate control, bookkeeping
	KDecode                // bitstream parsing on the decode side
	NumKernels
)

var kernelNames = [NumKernels]string{
	"sad", "interp", "dct", "quant", "entropy", "intra", "deblock", "control", "decode",
}

// String returns the kernel's short name.
func (k Kernel) String() string {
	if k < 0 || k >= NumKernels {
		return fmt.Sprintf("kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// Kernels lists all kernels in order.
func Kernels() []Kernel {
	ks := make([]Kernel, NumKernels)
	for i := range ks {
		ks[i] = Kernel(i)
	}
	return ks
}

// Vectorizable reports whether a kernel's inner loops are data
// parallel. Entropy coding, control flow, and bitstream parsing are
// the sequential kernels the paper identifies as the scalar floor
// (≈60% of time) that limits SIMD gains.
func (k Kernel) Vectorizable() bool {
	switch k {
	case KSAD, KInterp, KDCT, KQuant, KIntra, KDeblock:
		return true
	}
	return false
}

// Counters accumulates abstract operation counts per kernel, plus
// structural statistics about the encode used by the µarch model.
type Counters struct {
	// Ops counts element-level operations per kernel (pixel
	// comparisons, filter taps, butterfly adds, coded bins, ...).
	Ops [NumKernels]int64

	// Invocations counts kernel entries (one per block or search
	// call); the ratio Ops/Invocations gives the kernel's run length,
	// which drives front-end behaviour in the µarch model.
	Invocations [NumKernels]int64

	// Structural encode statistics.
	MBTotal     int64 // macroblocks processed
	MBSkip      int64 // skip-coded macroblocks
	MBIntra     int64 // intra-coded macroblocks
	MBInter     int64 // inter-coded macroblocks
	BlocksCoded int64 // residual blocks with nonzero coefficients
	BitsOutput  int64 // compressed bits produced
	Frames      int64 // frames processed
	Pixels      int64 // luma pixels processed

	// DataDepBranches counts branches whose outcome depends on pixel
	// data (significance tests, zero checks, threshold compares);
	// these are the hard-to-predict branches in the µarch model.
	DataDepBranches int64
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	for i := range c.Ops {
		c.Ops[i] += other.Ops[i]
		c.Invocations[i] += other.Invocations[i]
	}
	c.MBTotal += other.MBTotal
	c.MBSkip += other.MBSkip
	c.MBIntra += other.MBIntra
	c.MBInter += other.MBInter
	c.BlocksCoded += other.BlocksCoded
	c.BitsOutput += other.BitsOutput
	c.Frames += other.Frames
	c.Pixels += other.Pixels
	c.DataDepBranches += other.DataDepBranches
}

// Count records n ops in kernel k as a single invocation.
func (c *Counters) Count(k Kernel, n int64) {
	c.Ops[k] += n
	c.Invocations[k]++
}

// TotalOps returns the sum of ops across kernels.
func (c *Counters) TotalOps() int64 {
	var t int64
	for _, v := range c.Ops {
		t += v
	}
	return t
}
