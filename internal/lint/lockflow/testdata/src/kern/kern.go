// Package kern mirrors a lazily built kernel-table cache (per-QP
// reciprocal tables, per-geometry dispatch entries) so lockflow keeps
// covering the kernel layer's locking idioms: a table filled with
// check-then-act across two critical sections is flagged, while the
// double-checked fill and the precomputed-at-init table pass clean.
package kern

import "sync"

type tab struct {
	step  int64
	magic uint64
}

func buildTab(qp int) tab {
	step := int64(40 + qp)
	return tab{step: step, magic: uint64(1)<<41/uint64(step) + 1}
}

type lazyTabs struct {
	mu sync.RWMutex
	m  map[int]tab
}

// lookupRacy drops the lock between the miss check and the fill: two
// encoders can both miss and both build the table.
func (t *lazyTabs) lookupRacy(qp int) tab {
	t.mu.RLock()
	v, ok := t.m[qp]
	t.mu.RUnlock()
	if ok {
		return v
	}
	v = buildTab(qp)
	t.mu.Lock()
	t.m[qp] = v // want `map t.m is checked in one critical section and filled in a later one without re-checking`
	t.mu.Unlock()
	return v
}

// lookupDoubleChecked re-reads under the write lock before filling.
func (t *lazyTabs) lookupDoubleChecked(qp int) tab {
	t.mu.RLock()
	v, ok := t.m[qp]
	t.mu.RUnlock()
	if ok {
		return v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.m[qp]; ok {
		return v
	}
	v = buildTab(qp)
	t.m[qp] = v
	return v
}

// precomputed is the real kern package's answer: build every entry up
// front and never lock at all.
var precomputed = func() [52]tab {
	var tabs [52]tab
	for qp := range tabs {
		tabs[qp] = buildTab(qp)
	}
	return tabs
}()

func lookupPrecomputed(qp int) tab {
	return precomputed[qp]
}
