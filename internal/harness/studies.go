package harness

import (
	"fmt"
	"math"

	"vbench/internal/codec"
	"vbench/internal/codec/hw"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/perf"
	"vbench/internal/scoring"
	"vbench/internal/tables"
	"vbench/internal/uarch"
)

// UploadStudy exercises the Upload scenario (not tabulated in the
// paper, but one of its five scoring functions): the first transcode
// of a new upload needs speed and quality, while bitrate may balloon
// up to 5× the reference. Candidates are the fast paths a service
// would consider: the software encoder at its fastest preset and the
// two hardware encoders, all at constant quality.
func (r *Runner) UploadStudy() (*tables.Table, error) {
	cands := []struct {
		name string
		eng  *codec.Engine
	}{
		{"x264-ultrafast", profiles.X264(codec.PresetUltraFast)},
		{"NVENC", hw.NVENC()},
		{"QSV", hw.QSV()},
	}
	clips := corpus.VBenchClips()
	type cell struct {
		ratios scoring.Ratios
		score  scoring.Score
	}
	grid := make([]cell, len(clips)*len(cands))
	err := r.pool().ForEach(len(grid), func(i int) error {
		c := clips[i/len(cands)]
		cand := cands[i%len(cands)]
		seq, err := r.Sequence(c)
		if err != nil {
			return err
		}
		ref, err := r.Reference(scoring.Upload, c)
		if err != nil {
			return err
		}
		m, err := r.Measure(cand.eng, seq, codec.Config{RC: codec.RCConstQP, QP: 20})
		if err != nil {
			return fmt.Errorf("upload %s/%s: %w", c.Name, cand.name, err)
		}
		ratios, err := scoring.ComputeRatios(m.Measurement, ref.Measurement)
		if err != nil {
			return err
		}
		grid[i] = cell{ratios, scoring.Evaluate(scoring.Upload, ratios, scoring.Constraint{CandidatePSNR: m.PSNR})}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := tables.New("Upload scenario: fast constant-quality first transcode",
		"clip", "enc", "S", "B", "Q", "Upload score")
	for i, g := range grid {
		t.AddRowf(clips[i/len(cands)].Name, cands[i%len(cands)].name, g.ratios.S, g.ratios.B, g.ratios.Q, scoreCell(g.score))
	}
	t.AddNote("constraint: B > 0.2 (the transcode is a temporary file); score S x Q")
	return t, nil
}

// PlatformStudy exercises the Platform scenario: the encoder and
// settings are frozen (so the bitstream, bitrate, and quality are
// identical by construction — B = Q = 1 exactly) and only the machine
// changes. The study compares the reference i7-6700K model against an
// overclocked variant and against SIMD-generation downgrades, the
// kind of platform questions (compiler, ISA, microarchitecture) the
// paper aligns with SPEC.
func (r *Runner) PlatformStudy() (*tables.Table, error) {
	platforms := []struct {
		name  string
		model *perf.CostModel
	}{
		{"i7-6700K @4.5GHz", scaledClock(perf.ReferenceCPU(), 4.5e9)},
		{"i7-6700K AVX", perf.ReferenceCPU().WithISA(perf.ISAAVX)},
		{"i7-6700K SSE4", perf.ReferenceCPU().WithISA(perf.ISASSE4)},
		{"i7-6700K SSE2", perf.ReferenceCPU().WithISA(perf.ISASSE2)},
		{"i7-6700K scalar", perf.ReferenceCPU().WithISA(perf.ISAScalar)},
	}
	clips := corpus.VBenchClips()
	refs := make([]*Measured, len(clips))
	err := r.pool().ForEach(len(clips), func(i int) error {
		ref, err := r.Reference(scoring.Platform, clips[i])
		refs[i] = ref
		return err
	})
	if err != nil {
		return nil, err
	}
	t := tables.New("Platform scenario: same encoder and settings, different machine",
		"clip", "platform", "S", "Platform score")
	for i, c := range clips {
		ref := refs[i]
		refSeconds := ref.Result.Seconds
		for _, p := range platforms {
			newSeconds := p.model.Seconds(&ref.Result.Counters)
			ratios := scoring.Ratios{S: refSeconds / newSeconds, B: 1, Q: 1}
			score := scoring.Evaluate(scoring.Platform, ratios, scoring.Constraint{})
			t.AddRowf(c.Name, p.name, ratios.S, scoreCell(score))
		}
	}
	t.AddNote("B = Q = 1 by construction (identical bitstream); score is the speed ratio S")
	return t, nil
}

func scaledClock(m *perf.CostModel, hz float64) *perf.CostModel {
	c := *m
	c.ClockHz = hz
	c.Name = fmt.Sprintf("%s@%.1fGHz", m.Name, hz/1e9)
	return &c
}

// AblationStudy quantifies what each compression tool contributes:
// starting from the medium tool set, each tool is removed in turn and
// the clip re-encoded at constant quality; the bitrate delta is the
// tool's compression value, and the modeled-time delta its cost. This
// is the design-exploration use the paper envisions for the benchmark.
func (r *Runner) AblationStudy(clipName string) (*tables.Table, error) {
	clip, err := corpus.ClipByName(clipName)
	if err != nil {
		return nil, err
	}
	seq, err := r.Sequence(clip)
	if err != nil {
		return nil, err
	}
	base := codec.BaselineTools(codec.PresetSlow)
	variants := []struct {
		name   string
		mutate func(*codec.Tools)
	}{
		{"full (slow preset)", func(t *codec.Tools) {}},
		{"-arith entropy", func(t *codec.Tools) { t.Entropy = codec.EntropyGolomb }},
		{"-8x8 transform", func(t *codec.Tools) { t.Transform8x8 = false }},
		{"-trellis", func(t *codec.Tools) { t.Trellis = false }},
		{"-adaptive quant", func(t *codec.Tools) { t.AdaptiveQuant = false }},
		{"-deblock", func(t *codec.Tools) { t.Deblock = false }},
		{"-subpel", func(t *codec.Tools) { t.SubPel = 0 }},
		{"-multi-ref", func(t *codec.Tools) { t.MaxRefs = 1 }},
		{"diamond search", func(t *codec.Tools) { t.Search = 0; t.SearchRange = 8 }},
		{"+denoise", func(t *codec.Tools) { t.Denoise = 2 }},
		{"+sharp interp", func(t *codec.Tools) { t.SharpInterp = true }},
		{"+intra 4x4", func(t *codec.Tools) { t.Intra4x4 = true }},
	}
	type cell struct {
		bits, psnr, sec float64
	}
	cells := make([]cell, len(variants))
	err = r.pool().ForEach(len(variants), func(i int) error {
		tools := base
		variants[i].mutate(&tools)
		eng := &codec.Engine{Tools: tools, Model: perf.ReferenceCPU()}
		m, err := r.Measure(eng, seq, codec.Config{RC: codec.RCConstQP, QP: 28})
		if err != nil {
			return fmt.Errorf("ablation %s: %w", variants[i].name, err)
		}
		cells[i] = cell{bits: m.BitratePPS, psnr: m.PSNR, sec: m.Result.Seconds}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := tables.New(fmt.Sprintf("Tool ablation at constant quality (QP 28, %s)", clipName),
		"variant", "bits vs full (%)", "PSNR (dB)", "modeled time vs full (%)")
	baseBits, baseSec := cells[0].bits, cells[0].sec
	for i, v := range variants {
		t.AddRowf(v.name, 100*cells[i].bits/baseBits, cells[i].psnr, 100*cells[i].sec/baseSec)
	}
	t.AddNote("removing a tool should not reduce bitrate at iso-QP; cost savings show the speed/compression trade")
	return t, nil
}

// DecodeStudy measures decoder-side work: the paper notes decoding is
// deterministic and much cheaper than encoding; this quantifies the
// asymmetry under the cost model.
func (r *Runner) DecodeStudy() (*tables.Table, error) {
	clips := corpus.VBenchClips()
	type cell struct {
		encOps, decOps int64
	}
	cells := make([]cell, len(clips))
	err := r.pool().ForEach(len(clips), func(i int) error {
		c := clips[i]
		ref, err := r.Reference(scoring.VOD, c)
		if err != nil {
			return err
		}
		_, dc, err := codec.Decode(ref.Result.Bitstream)
		if err != nil {
			return fmt.Errorf("decode %s: %w", c.Name, err)
		}
		cells[i] = cell{encOps: ref.Result.Counters.TotalOps(), decOps: dc.TotalOps()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := tables.New("Encode/decode work asymmetry (VOD reference transcodes)",
		"clip", "encode ops", "decode ops", "ratio")
	for i, c := range clips {
		t.AddRowf(c.Name, float64(cells[i].encOps), float64(cells[i].decOps), float64(cells[i].encOps)/float64(cells[i].decOps))
	}
	t.AddNote("the paper: decode is deterministic and fast; encode dominates transcode cost")
	return t, nil
}

// ISASweepStudy reports the whole-suite SIMD speedup ladder (the
// headline of Section 5.2: SSE2 onward buys only ~15%).
func (r *Runner) ISASweepStudy() (*tables.Table, error) {
	t := tables.New("SIMD ISA sweep: modeled speedup over scalar (geomean across clips)",
		"ISA", "speedup", "vs previous")
	clips := corpus.VBenchClips()
	counters := make([]*perf.Counters, len(clips))
	err := r.pool().ForEach(len(clips), func(i int) error {
		ref, err := r.Reference(scoring.VOD, clips[i])
		if err != nil {
			return err
		}
		counters[i] = &ref.Result.Counters
		return nil
	})
	if err != nil {
		return nil, err
	}
	prev := 0.0
	for isa := perf.ISAScalar; isa < perf.NumISA; isa++ {
		prod := 1.0
		for _, c := range counters {
			s := uarch.TotalSeconds(c, perf.ISAScalar, 4e9) / uarch.TotalSeconds(c, isa, 4e9)
			prod *= s
		}
		speedup := pow(prod, 1/float64(len(counters)))
		rel := 1.0
		if prev > 0 {
			rel = speedup / prev
		}
		t.AddRowf(isa.String(), speedup, rel)
		prev = speedup
	}
	t.AddNote("paper: improvement beyond SSE2 totals ~15%%; scalar code bounds the gains (Amdahl)")
	return t, nil
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
