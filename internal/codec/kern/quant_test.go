package kern

import (
	"math"
	"math/rand"
	"testing"
)

// quantRefLevel restates the quantizer definition directly:
// level = sign(c) · floor((|c|·8 + step·dz/64) / step).
func quantRefLevel(c int32, step, dz int64) int32 {
	v := int64(c) * 8
	neg := v < 0
	if neg {
		v = -v
	}
	l := (v + step*dz/64) / step
	if neg {
		l = -l
	}
	return int32(l)
}

func refStep(qp int) int64 {
	base := [6]int64{40, 45, 50, 57, 63, 71}
	return base[qp%6] << uint(qp/6)
}

// identityScan maps zz[i] = levels[i]; the scan-order behaviour is
// checked separately with a shuffled table.
func identityScan(nn int) []int {
	s := make([]int, nn)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestQuantScanCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dzs := []int64{21, 11, 0, 63}
	for qp := 0; qp <= 51; qp++ {
		step := refStep(qp)
		for iter := 0; iter < 60; iter++ {
			dz := dzs[iter%len(dzs)]
			nn := 16
			if iter%2 == 1 {
				nn = 64
			}
			coeffs := make([]int32, nn)
			for i := range coeffs {
				switch iter % 4 {
				case 0: // realistic Q3 DCT range
					coeffs[i] = int32(rng.Intn(1<<15) - 1<<14)
				case 1: // small values straddling the deadzone
					coeffs[i] = int32(rng.Intn(2*int(step)+1) - int(step))
				case 2: // extremes, including the divide-fallback range
					coeffs[i] = int32(rng.Intn(math.MaxInt32)) - math.MaxInt32/2
				default: // exact multiples of the step (floor boundaries)
					coeffs[i] = int32((int64(rng.Intn(64)) * step) / 8 * int64(1-2*rng.Intn(2)))
				}
			}

			scan := identityScan(nn)
			// Shuffled scan order exercises the fused gather.
			if iter%3 == 0 {
				rng.Shuffle(nn, func(i, j int) { scan[i], scan[j] = scan[j], scan[i] })
			}

			zz := make([]int32, nn)
			gotNZ := QuantScan(coeffs, zz, scan, qp, dz)
			wantNZ := false
			for i, idx := range scan {
				want := quantRefLevel(coeffs[idx], step, dz)
				if zz[i] != want {
					t.Fatalf("qp=%d dz=%d c=%d: got level %d want %d", qp, dz, coeffs[idx], zz[i], want)
				}
				if want != 0 {
					wantNZ = true
				}
			}
			if gotNZ != wantNZ {
				t.Fatalf("qp=%d dz=%d: nonzero flag %v want %v", qp, dz, gotNZ, wantNZ)
			}
		}
	}
}

// TestQuantMagicBoundary sweeps u values around every QP's reciprocal
// exactness cutoff and around each floor boundary near it, where an
// off-by-one magic constant would first diverge.
func TestQuantMagicBoundary(t *testing.T) {
	for qp := 0; qp <= 51; qp++ {
		tab := quantTabs[qp]
		for _, u := range []uint64{0, 1, uint64(tab.step) - 1, uint64(tab.step), uint64(tab.step) + 1,
			quantMaxU - uint64(tab.step), quantMaxU - 2, quantMaxU - 1} {
			want := u / uint64(tab.step)
			if got := u * tab.magic >> quantShift; got != want {
				t.Fatalf("qp=%d u=%d: magic division %d want %d", qp, u, got, want)
			}
		}
		// Dense sweep over the top of the exact range.
		for u := uint64(quantMaxU) - 4096; u < quantMaxU; u++ {
			if got, want := u*tab.magic>>quantShift, u/uint64(tab.step); got != want {
				t.Fatalf("qp=%d u=%d: magic division %d want %d", qp, u, got, want)
			}
		}
	}
}

// TestQuantDivFallback confirms oversized magnitudes take the exact
// scalar path and are counted.
func TestQuantDivFallback(t *testing.T) {
	before := QuantDivFallbacks()
	coeffs := []int32{math.MaxInt32, math.MinInt32 + 1, 1 << 24, 0}
	zz := make([]int32, 4)
	QuantScan(coeffs, zz, identityScan(4), 28, 11)
	step := refStep(28)
	for i, c := range coeffs {
		if want := quantRefLevel(c, step, 11); zz[i] != want {
			t.Fatalf("fallback level for %d: got %d want %d", c, zz[i], want)
		}
	}
	if got := QuantDivFallbacks() - before; got < 3 {
		t.Fatalf("expected ≥3 divide fallbacks, counted %d", got)
	}
}
