// Command vbenchlint runs the repository's static analyzers
// (detorder, hotalloc, leakgo, lockflow, locksafe, metricname,
// spanpair, statemachine — see docs/LINT.md).
//
// It speaks two protocols:
//
//   - As a vet tool: `go vet -vettool=$(which vbenchlint) ./...`.
//     The go command invokes it once per package with a JSON config
//     file argument; this is what `make lint` uses and what keeps
//     results cached per package.
//
//   - Standalone: `vbenchlint [-tags list] [-only names] [-json]
//     [patterns]` loads the packages itself (via `go list -export`)
//     and checks them in one process. Defaults to ./... in the
//     current module. With -json, diagnostics go to stdout as one
//     sorted array of {file, line, col, analyzer, message} objects
//     (CI uploads this as a build artifact).
//
// Exit status: 0 clean, 2 findings reported, 1 internal error —
// matching go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vbench/internal/lint"
	"vbench/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet handshake: print the tool identity and exit.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		if err := analysis.PrintVersion(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
			return 1
		}
		return 0
	}
	// go vet flag discovery: report the tool's analyzer flags (none).
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return 0
	}
	// go vet per-package invocation: the sole argument is a *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunVet(args[0], lint.Analyzers())
	}

	fs := flag.NewFlagSet("vbenchlint", flag.ContinueOnError)
	tags := fs.String("tags", "", "build tags, passed to go list")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout (always an array, [] when clean)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "vbenchlint: unknown analyzer %q\n", name)
				return 1
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var extra []string
	if *tags != "" {
		extra = append(extra, "-tags", *tags)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
		return 1
	}
	pkgs, err := analysis.Load(cwd, extra, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
		return 1
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
		return 1
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) == 0 {
		return 0
	}
	return 2
}

// jsonDiag is the machine-readable form of one finding. The fields
// and their order are a stable interface for CI artifact consumers.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics (already position-sorted by
// analysis.Run) as one indented JSON array.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
