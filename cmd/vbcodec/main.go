// Command vbcodec is a standalone encoder/decoder CLI for the vbench
// codec ("VBC1" bitstream): it transcodes Y4M files, mirroring the
// role ffmpeg plays in the paper's methodology.
//
// Usage:
//
//	vbcodec encode -i in.y4m -o out.vbc -preset medium -qp 23
//	vbcodec encode -i in.y4m -o out.vbc -bitrate 2000000 -twopass
//	vbcodec decode -i out.vbc -o roundtrip.y4m
//	vbcodec info   -i out.vbc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/metrics"
	"vbench/internal/video"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "encode":
		encode(os.Args[2:])
	case "decode":
		decode(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vbcodec encode|decode|info [flags]")
	os.Exit(2)
}

func encode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("i", "", "input .y4m file")
	out := fs.String("o", "", "output .vbc bitstream")
	preset := fs.String("preset", "medium", "effort preset (ultrafast..placebo)")
	qp := fs.Int("qp", 23, "constant quantizer (used without -bitrate)")
	bitrate := fs.Float64("bitrate", 0, "target bitrate in bits/s (enables ABR)")
	twopass := fs.Bool("twopass", false, "two-pass rate control (with -bitrate)")
	keyint := fs.Int("keyint", 0, "key-frame interval in frames (0 = first frame only)")
	slices := fs.Int("slices", 1, "independent slices per frame (parallel encoding)")
	stats := fs.Bool("stats", true, "print encode statistics")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("encode needs -i and -o"))
	}

	p, err := codec.ParsePreset(*preset)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	seq, err := video.ReadY4M(f)
	_ = f.Close() // read-only file; a close error loses no data
	if err != nil {
		fatal(err)
	}

	cfg := codec.Config{RC: codec.RCConstQP, QP: *qp, KeyInterval: *keyint, Slices: *slices}
	if *bitrate > 0 {
		cfg = codec.Config{RC: codec.RCBitrate, BitrateBPS: *bitrate, KeyInterval: *keyint, Slices: *slices}
		if *twopass {
			cfg.RC = codec.RCTwoPass
		}
	}
	eng := profiles.X264(p)
	res, err := eng.Encode(seq, cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, res.Bitstream, 0o644); err != nil {
		fatal(err)
	}
	if *stats {
		psnr, _ := metrics.SequencePSNR(seq, res.Recon)
		br, _ := metrics.Bitrate(int64(len(res.Bitstream)), seq.Width(), seq.Height(), seq.Duration())
		speed, _ := metrics.Speed(seq.PixelCount(), res.Seconds)
		fmt.Printf("encoded %d frames %dx%d: %d bytes\n", len(seq.Frames), seq.Width(), seq.Height(), len(res.Bitstream))
		fmt.Printf("  quality  %.2f dB PSNR\n", psnr)
		fmt.Printf("  bitrate  %.3f bit/pixel/s (%.0f bit/s)\n", br, float64(len(res.Bitstream))*8/seq.Duration())
		fmt.Printf("  speed    %.2f Mpixel/s (modeled, %s)\n", speed, eng.Model.Name)
	}
}

func decode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("i", "", "input .vbc bitstream")
	out := fs.String("o", "", "output .y4m file")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("decode needs -i and -o"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	seq, _, err := codec.Decode(data)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := video.WriteY4M(f, seq); err != nil {
		_ = f.Close() // the write error takes precedence
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("decoded %d frames %dx%d to %s\n", len(seq.Frames), seq.Width(), seq.Height(), *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input .vbc bitstream")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("info needs -i"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	seq, counters, err := codec.Decode(data)
	if err != nil {
		fatal(err)
	}
	out := map[string]interface{}{
		"frames":      len(seq.Frames),
		"width":       seq.Width(),
		"height":      seq.Height(),
		"framerate":   seq.FrameRate,
		"bytes":       len(data),
		"macroblocks": counters.MBTotal,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbcodec:", err)
	os.Exit(1)
}
