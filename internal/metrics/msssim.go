package metrics

import (
	"fmt"
	"math"

	"vbench/internal/video"
)

// Multi-scale SSIM. The paper discusses perceptual quality metrics
// (Netflix's VMAF, Google's noise-aware metric) as alternatives to
// PSNR; MS-SSIM (Wang et al., Asilomar 2003) is the canonical
// multi-resolution member of that family: SSIM is evaluated at
// successive dyadic downscales and combined with the standard
// per-scale exponents.

// msssimWeights are the five-scale exponents from the original paper.
var msssimWeights = []float64{0.0448, 0.2856, 0.3001, 0.2363, 0.1333}

// downsample2 halves a plane with a 2×2 box filter.
func downsample2(src []uint8, w, h int) ([]uint8, int, int) {
	nw, nh := w/2, h/2
	dst := make([]uint8, nw*nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			s := int(src[(2*y)*w+2*x]) + int(src[(2*y)*w+2*x+1]) +
				int(src[(2*y+1)*w+2*x]) + int(src[(2*y+1)*w+2*x+1])
			dst[y*nw+x] = uint8((s + 2) / 4)
		}
	}
	return dst, nw, nh
}

// PlaneMSSSIM computes multi-scale SSIM between two planes, using as
// many of the five scales as the plane size allows (at least one).
func PlaneMSSSIM(a, b []uint8, w, h int) (float64, error) {
	if len(a) != len(b) || len(a) != w*h {
		return 0, fmt.Errorf("metrics: msssim geometry mismatch")
	}
	product := 1.0
	var used float64
	ca, cb := a, b
	cw, ch := w, h
	for scale := 0; scale < len(msssimWeights); scale++ {
		if cw < ssimWindow || ch < ssimWindow {
			break
		}
		s, err := PlaneSSIM(ca, cb, cw, ch)
		if err != nil {
			return 0, err
		}
		if s < 0 {
			s = 0
		}
		product *= pow(s, msssimWeights[scale])
		used += msssimWeights[scale]
		na, nw, nh := downsample2(ca, cw, ch)
		nb, _, _ := downsample2(cb, cw, ch)
		ca, cb, cw, ch = na, nb, nw, nh
	}
	if used == 0 {
		return 0, fmt.Errorf("metrics: plane %dx%d too small for msssim", w, h)
	}
	// Renormalize if fewer than five scales fit.
	return pow(product, 1/used), nil
}

// SequenceMSSSIM averages luma MS-SSIM over the frames of a transcode.
func SequenceMSSSIM(ref, t *video.Sequence) (float64, error) {
	if len(ref.Frames) != len(t.Frames) || len(ref.Frames) == 0 {
		return 0, fmt.Errorf("metrics: msssim frame count mismatch")
	}
	var total float64
	for i := range ref.Frames {
		rf, tf := ref.Frames[i], t.Frames[i]
		s, err := PlaneMSSSIM(rf.Y, tf.Y, rf.Width, rf.Height)
		if err != nil {
			return 0, fmt.Errorf("metrics: frame %d: %w", i, err)
		}
		total += s
	}
	return total / float64(len(ref.Frames)), nil
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Exp(y * math.Log(x))
}
