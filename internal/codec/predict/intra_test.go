package predict

import (
	"testing"

	"vbench/internal/codec/motion"
	"vbench/internal/rng"
)

func testPlane(w, h int, seed uint64) motion.Plane {
	r := rng.New(seed)
	pix := make([]uint8, w*h)
	for i := range pix {
		pix[i] = uint8(r.Intn(256))
	}
	return motion.Plane{Pix: pix, W: w, H: h}
}

func TestAvailability(t *testing.T) {
	p := testPlane(64, 64, 1)
	cases := []struct {
		mode   Mode
		bx, by int
		want   bool
	}{
		{ModeDC, 0, 0, true},
		{ModeVertical, 16, 0, false},
		{ModeVertical, 16, 16, true},
		{ModeHorizontal, 0, 16, false},
		{ModeHorizontal, 16, 16, true},
		{ModePlane, 0, 16, false},
		{ModePlane, 16, 0, false},
		{ModePlane, 16, 16, true},
		{ModePlane, 48, 48, true},
	}
	for _, c := range cases {
		if got := Available(c.mode, c.bx, c.by, 16, p); got != c.want {
			t.Errorf("Available(%v, %d,%d) = %v, want %v", c.mode, c.bx, c.by, got, c.want)
		}
	}
}

func TestDCWithoutNeighborsIsMidGray(t *testing.T) {
	p := testPlane(32, 32, 2)
	dst := make([]uint8, 256)
	Predict(dst, p, 0, 0, 16, ModeDC)
	for i, v := range dst {
		if v != 128 {
			t.Fatalf("corner DC sample %d = %d, want 128", i, v)
		}
	}
}

func TestDCAveragesNeighbors(t *testing.T) {
	p := motion.Plane{Pix: make([]uint8, 64*64), W: 64, H: 64}
	for i := range p.Pix {
		p.Pix[i] = 100
	}
	dst := make([]uint8, 256)
	Predict(dst, p, 16, 16, 16, ModeDC)
	for _, v := range dst {
		if v != 100 {
			t.Fatalf("DC over flat 100 neighbours = %d", v)
		}
	}
}

func TestVerticalCopiesTopRow(t *testing.T) {
	p := testPlane(64, 64, 3)
	dst := make([]uint8, 256)
	Predict(dst, p, 16, 16, 16, ModeVertical)
	for x := 0; x < 16; x++ {
		top := p.Pix[15*64+16+x]
		for y := 0; y < 16; y++ {
			if dst[y*16+x] != top {
				t.Fatalf("vertical (%d,%d) = %d, want %d", x, y, dst[y*16+x], top)
			}
		}
	}
}

func TestHorizontalCopiesLeftColumn(t *testing.T) {
	p := testPlane(64, 64, 4)
	dst := make([]uint8, 256)
	Predict(dst, p, 16, 16, 16, ModeHorizontal)
	for y := 0; y < 16; y++ {
		left := p.Pix[(16+y)*64+15]
		for x := 0; x < 16; x++ {
			if dst[y*16+x] != left {
				t.Fatalf("horizontal (%d,%d) = %d, want %d", x, y, dst[y*16+x], left)
			}
		}
	}
}

func TestPlaneModeReproducesLinearRamp(t *testing.T) {
	// On a plane that is itself a linear ramp, the plane predictor
	// should reproduce it almost exactly.
	p := motion.Plane{Pix: make([]uint8, 64*64), W: 64, H: 64}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			p.Pix[y*64+x] = uint8(2*x + y)
		}
	}
	dst := make([]uint8, 256)
	Predict(dst, p, 16, 16, 16, ModePlane)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := int(2*(16+x) + 16 + y)
			got := int(dst[y*16+x])
			if got < want-3 || got > want+3 {
				t.Fatalf("plane (%d,%d) = %d, want ≈%d", x, y, got, want)
			}
		}
	}
}

func TestPlaneModeChromaSize(t *testing.T) {
	// Exercise the size-8 constants path.
	p := motion.Plane{Pix: make([]uint8, 32*32), W: 32, H: 32}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			p.Pix[y*32+x] = uint8(4 * x)
		}
	}
	dst := make([]uint8, 64)
	Predict(dst, p, 8, 8, 8, ModePlane)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := 4 * (8 + x)
			got := int(dst[y*8+x])
			if got < want-6 || got > want+6 {
				t.Fatalf("chroma plane (%d,%d) = %d, want ≈%d", x, y, got, want)
			}
		}
	}
}

func TestPredictPanicsOnInvalidMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid mode did not panic")
		}
	}()
	p := testPlane(32, 32, 5)
	Predict(make([]uint8, 256), p, 16, 16, 16, Mode(42))
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{ModeDC: "dc", ModeVertical: "v", ModeHorizontal: "h", ModePlane: "plane"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}
