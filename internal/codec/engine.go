package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"vbench/internal/codec/kern"
	"vbench/internal/codec/motion"
	"vbench/internal/codec/predict"
	"vbench/internal/codec/transform"
	"vbench/internal/perf"
	"vbench/internal/syncx"
	"vbench/internal/telemetry"
	"vbench/internal/video"
)

// cpuGate bounds how many slice encoders run at once across ALL
// concurrent Encode calls in the process — and, because it is the
// same gate the harness worker pool draws cell slots from
// (syncx.CPU), across both layers of nesting at once: N pool workers
// × K slices can never put more than GOMAXPROCS goroutines to work.
// The encoding goroutine never blocks on the gate: it drains the
// slice queue itself (it already represents a granted execution
// context — the pool worker's slot, in a harness run) and extra
// helper goroutines join only if they win a slot via AcquireOrQuit
// before the queue empties. No holder ever waits on the gate for work
// a fellow waiter must finish, so the shared budget cannot deadlock
// at any capacity. Determinism is unaffected because payloads and
// counters are still merged in slice order.
var cpuGate = syncx.CPU

// intraAvailClipped is predict.Available restricted to a slice:
// prediction from above must not cross the slice's first row
// (planeTop, in the plane's own coordinates).
func intraAvailClipped(m predict.Mode, bx, by, size int, plane motion.Plane, planeTop int) bool {
	if !predict.Available(m, bx, by, size, plane) {
		return false
	}
	if by <= planeTop {
		switch m {
		case predict.ModeVertical, predict.ModePlane:
			return false
		}
	}
	return true
}

// lambdaMode is the rate-distortion trade-off (SSE per bit) per QP,
// following the H.264 convention λ = 0.85·2^((QP−12)/3).
var lambdaMode [52]float64

// lambdaSATDQ4 is the SAD/SATD-domain lambda (√λmode), in Q4 fixed
// point for the integer motion search.
var lambdaSATDQ4 [52]int64

func init() {
	for qp := range lambdaMode {
		lm := 0.85 * math.Pow(2, float64(qp-12)/3.0)
		lambdaMode[qp] = lm
		lambdaSATDQ4[qp] = int64(math.Round(16 * math.Sqrt(lm)))
	}
}

// firstPassQP is the fixed quantizer of the two-pass measurement pass.
const firstPassQP = 32

// Result carries everything an encode produces.
type Result struct {
	// Bitstream is the complete compressed stream (decodable with
	// Decode).
	Bitstream []byte
	// Recon is the encoder-side reconstruction — bit-identical to
	// what Decode produces — used for quality measurement.
	Recon *video.Sequence
	// PerFrameBits records the compressed size of each frame in bits
	// (including frame headers).
	PerFrameBits []int64
	// FrameTypes records frameI/frameP per frame.
	FrameTypes []int
	// Counters is the abstract work performed.
	Counters perf.Counters
	// Seconds is the modeled encode time under the engine's cost
	// model (0 if the engine has no model).
	Seconds float64
}

// IsIntra reports whether frame i was coded as a key frame.
func (r *Result) IsIntra(i int) bool { return r.FrameTypes[i] == frameI }

// Engine is a configured encoder: a tool set plus a machine cost
// model.
type Engine struct {
	Tools Tools
	Model *perf.CostModel
}

// Encode compresses src under cfg. The returned Result contains the
// bitstream, the reconstruction, and the work accounting.
//
// When telemetry is active the encode records a span with per-frame
// children and per-stage timing/op annotations; the instrumentation
// only observes the encode, so the bitstream and reconstruction are
// byte-identical with telemetry on or off.
func (e *Engine) Encode(src *video.Sequence, cfg Config) (*Result, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := e.Tools.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(src.Frames) > 65535 {
		return nil, fmt.Errorf("codec: sequence too long (%d frames)", len(src.Frames))
	}

	sp := telemetry.StartSpan("encode " + e.Tools.Name)
	defer sp.End()
	stagesOn := telemetry.StagesEnabled()
	var st stageTimes

	res := &Result{}

	hdr := &seqHeader{
		width:         src.Width(),
		height:        src.Height(),
		fpsMilli:      uint32(src.FrameRate*1000 + 0.5),
		frames:        len(src.Frames),
		entropy:       e.Tools.Entropy,
		tx8Allowed:    e.Tools.Transform8x8,
		deblock:       e.Tools.Deblock,
		adaptiveQuant: e.Tools.AdaptiveQuant,
		richContexts:  e.Tools.RichContexts && e.Tools.Entropy == EntropyArith,
		sharpInterp:   e.Tools.SharpInterp,
		intra4Allowed: e.Tools.Intra4x4,
		refs:          e.Tools.MaxRefs,
	}
	mbW := hdr.paddedWidth() / MBSize
	mbH := hdr.paddedHeight() / MBSize
	nSlices := cfg.Slices
	if nSlices < 1 {
		nSlices = 1
	}
	if nSlices > mbH {
		nSlices = mbH
	}
	hdr.slices = nSlices

	// Cross-frame pipelining (see pipeline.go): the source-side half of
	// per-frame work — padding, denoise, scene-cut detection, AQ
	// activity — runs ahead of the encode loop through a bounded
	// hand-off, so frame N+1's analysis overlaps frame N's encode. The
	// feeder is started before the measurement pass below so that in
	// two-pass mode this pass's analysis also overlaps the first pass's
	// encode; rate control itself cannot overlap, because two-pass QP
	// planning needs every frame's measured bits before the first
	// pass-2 QP is known (DESIGN.md, "Wavefront parallelism").
	feeder := newFrameFeeder(e, cfg, src.Frames, mbW, mbH, hdr.adaptiveQuant)
	feedQuit := make(chan struct{})
	var feedWG sync.WaitGroup
	if len(src.Frames) > 1 && cfg.RowsParallel != 1 {
		feedWG.Add(1)
		go func() {
			defer feedWG.Done()
			feeder.serve(feedQuit, cfg.RowsParallel == 0)
		}()
	}
	defer func() {
		feeder.stop()
		close(feedQuit)
		feedWG.Wait()
	}()

	// Two-pass: run the measurement pass with a cheap tool set but the
	// same GOP structure, and charge its work to this encode.
	var rc *rateControl
	if cfg.RC == RCTwoPass {
		fpTools := BaselineTools(PresetUltraFast)
		fpTools.SceneCut = e.Tools.SceneCut
		fp := &Engine{Tools: fpTools}
		fpSpan := sp.Child("first-pass")
		fpRes, err := fp.Encode(src, Config{RC: RCConstQP, QP: firstPassQP, KeyInterval: cfg.KeyInterval, RowsParallel: cfg.RowsParallel})
		fpSpan.End()
		if err != nil {
			return nil, fmt.Errorf("codec: first pass: %w", err)
		}
		res.Counters.Add(&fpRes.Counters)
		rc = newRateControl(cfg, src.Width()*src.Height(), src.FrameRate, len(src.Frames), fpRes.PerFrameBits, firstPassQP)
		// Only the bit budget and counters outlive the first pass;
		// recycle its reconstruction buffers for this pass.
		video.PutSequence(fpRes.Recon)
	} else {
		rc = newRateControl(cfg, src.Width()*src.Height(), src.FrameRate, len(src.Frames), nil, 0)
	}

	out := hdr.marshal()

	var refs []*video.Frame
	res.Recon = &video.Sequence{FrameRate: src.FrameRate}

	// When the padded geometry differs from the display geometry,
	// cropFrame copies the reconstruction, so the padded frames are
	// encoder-private and can be recycled once evicted from the
	// reference list. When they match, cropFrame returns the
	// reconstruction itself — those frames escape through res.Recon
	// and must never be returned to the pool.
	pooledRefs := hdr.paddedWidth() != src.Width() || hdr.paddedHeight() != src.Height()

	// Per-encode scratch state, one per slice lane: level arenas,
	// candidate free lists, and motion-search buffers. Reused across
	// every frame so the per-macroblock path allocates nothing in
	// steady state.
	scratches := make([]encScratch, nSlices)
	qpGrid := make([]int, mbW*mbH) // every MB row is rewritten each frame
	bounds := sliceBounds(mbH, nSlices)

	// Wavefront row lanes (see wavefront.go), one set per slice. Lane
	// counts are resolved once — slice geometry is fixed for the whole
	// encode — and each lane's arenas and candidate pool are reused
	// every frame, so wavefront mode adds only a per-encode constant to
	// the allocation budget.
	rowsPar := cfg.RowsParallel
	waveLanes := make([][]waveLane, nSlices)
	waveCoords := make([]*waveCoord, nSlices)
	waveOn := false
	if rowsPar != 1 {
		for s := 0; s < nSlices; s++ {
			rows := bounds[s+1] - bounds[s]
			lanes := rows
			if rowsPar == 0 {
				if c := cpuGate.Capacity(); lanes > c {
					lanes = c
				}
			} else if lanes > rowsPar {
				lanes = rowsPar
			}
			if lanes < 2 {
				continue
			}
			waveLanes[s] = newWaveLanes(lanes, mbW)
			waveCoords[s] = newWaveCoord(rows)
			waveOn = true
		}
	}

	for i := range src.Frames {
		var fsp *telemetry.Span
		if sp != nil {
			fsp = sp.Child(fmt.Sprintf("frame %d", i))
		}
		fa := feeder.next()
		srcP := fa.src
		ftype := fa.ftype
		res.Counters.Add(&fa.c)
		qpBase := rc.frameQP(i, ftype)
		if g := e.Tools.QPGranularity; g > 1 {
			qpBase = clampQP((qpBase + g/2) / g * g)
		}

		// Per-frame shared state: the reconstruction buffer, the QP
		// grid, and (with AQ) the frame-level activity map. Slices
		// write disjoint rows, so they encode concurrently.
		recon := video.GetFrame(hdr.paddedWidth(), hdr.paddedHeight())
		varBits, avgVarBits := fa.varBits, fa.avgVarBits

		payloads := make([][]byte, nSlices)
		sliceCounters := make([]perf.Counters, nSlices)
		var sliceTimes []stageTimes
		var helperWaits []time.Duration // per-helper gate wait, stages only
		if stagesOn {
			sliceTimes = make([]stageTimes, nSlices)
			helperWaits = make([]time.Duration, nSlices)
		}
		fes := make([]*frameEncoder, nSlices)
		for s := 0; s < nSlices; s++ {
			fe := newFrameEncoder(e, hdr, srcP, recon, qpGrid, refs, mbW, ftype, qpBase, &sliceCounters[s], &scratches[s])
			fe.rowStart, fe.rowEnd = bounds[s], bounds[s+1]
			fe.varBits, fe.avgVarBits = varBits, avgVarBits
			fe.lanes = waveLanes[s]
			fe.wc = waveCoords[s]
			fe.gateShared = rowsPar == 0
			if stagesOn {
				fe.tm = &sliceTimes[s]
			}
			fes[s] = fe
		}
		var encErr error
		if nSlices == 1 {
			payloads[0] = fes[0].encodeFrame()
		} else {
			// Caller-participates join: slice indices go through a
			// queue that this goroutine drains itself — it represents
			// its caller's already-granted execution context (the
			// pool worker's gate slot, in a harness run) and must not
			// block on the gate while holding it. Helper goroutines
			// only join with a slot of their own via AcquireOrQuit;
			// once the queue is drained, quit releases any helper
			// still waiting. No goroutine ever waits on the gate for
			// work another waiter must finish, so the shared budget
			// cannot deadlock at any capacity or nesting.
			var errOnce sync.Once
			runSlice := func(s int) {
				defer func() {
					if r := recover(); r != nil {
						errOnce.Do(func() { encErr = fmt.Errorf("codec: slice %d panicked: %v", s, r) })
					}
				}()
				payloads[s] = fes[s].encodeFrame()
			}
			jobs := make(chan int, nSlices)
			for s := 0; s < nSlices; s++ {
				jobs <- s
			}
			close(jobs)
			quit := make(chan struct{})
			var wg sync.WaitGroup
			helpers := nSlices - 1
			if c := cpuGate.Capacity(); helpers > c {
				helpers = c
			}
			for w := 0; w < helpers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if stagesOn {
						t0 := time.Now()
						if !cpuGate.AcquireOrQuit(quit) {
							return
						}
						helperWaits[w] = time.Since(t0)
					} else if !cpuGate.AcquireOrQuit(quit) {
						return
					}
					defer cpuGate.Release()
					for s := range jobs {
						runSlice(s)
					}
				}(w)
			}
			for s := range jobs {
				runSlice(s)
			}
			close(quit)
			wg.Wait()
		}
		if encErr != nil {
			fsp.End() // close the frame span on the panic-error path too
			return nil, encErr
		}
		// Merge per-slice work in slice order (deterministic).
		for s := range sliceCounters {
			res.Counters.Add(&sliceCounters[s])
		}
		for s := range sliceTimes {
			st.add(&sliceTimes[s])
		}
		// Gate waits belong to the helper goroutines now, not to
		// slices: a helper that quit without a slot records nothing.
		for _, hw := range helperWaits {
			if hw > 0 {
				st.gateWait += hw
				obsGateWait.ObserveDuration(hw)
			}
		}

		out = append(out, byte(ftype), byte(qpBase))
		frameBits := int64(2) * 8
		for _, payload := range payloads {
			out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
			out = append(out, payload...)
			frameBits += int64(len(payload)+4) * 8
		}
		res.PerFrameBits = append(res.PerFrameBits, frameBits)
		res.FrameTypes = append(res.FrameTypes, ftype)
		rc.update(i, frameBits)

		if e.Tools.Deblock {
			deblockFrame(recon, qpGrid, mbW, mbH, &res.Counters)
		}
		refs = append([]*video.Frame{recon}, refs...)
		if len(refs) > e.Tools.MaxRefs {
			if pooledRefs {
				for _, evicted := range refs[e.Tools.MaxRefs:] {
					video.PutFrame(evicted)
				}
			}
			refs = refs[:e.Tools.MaxRefs]
		}
		res.Recon.Frames = append(res.Recon.Frames, cropFrame(recon, src.Width(), src.Height()))

		res.Counters.Frames++
		res.Counters.Pixels += int64(srcP.PixelCount())

		if fsp != nil {
			if ftype == frameI {
				fsp.Arg("type", "I")
			} else {
				fsp.Arg("type", "P")
			}
			fsp.Arg("qp", qpBase)
			fsp.Arg("slices", nSlices)
			fsp.Arg("bits", frameBits)
			if waveOn {
				var ww, ws int64
				for _, wc := range waveCoords {
					if wc != nil {
						ww += int64(wc.workers)
						ws += wc.stalls
					}
				}
				fsp.Arg("wave_workers", ww)
				fsp.Arg("wave_stalls", ws)
			}
			fsp.End()
		}
	}

	if pooledRefs {
		for _, r := range refs {
			video.PutFrame(r)
		}
	}
	var candAllocs, levelOverflows, sadEarlyExits int64
	for s := range scratches {
		candAllocs += scratches[s].cands.fresh
		levelOverflows += scratches[s].levels.overflows
		sadEarlyExits += scratches[s].motion.SADEarlyExits
	}
	obsCandAllocs.Add(candAllocs)
	obsLevelOverflows.Add(levelOverflows)
	obsKernSADEarlyExits.Add(sadEarlyExits)

	res.Bitstream = out
	if e.Model != nil {
		res.Seconds = e.Model.Seconds(&res.Counters)
	}
	obsEncodes.Inc()
	obsFrames.Add(int64(len(src.Frames)))
	obsMacroblocks.Add(res.Counters.MBTotal)
	obsBitsOut.Add(int64(len(out)) * 8)
	if stagesOn || sp != nil {
		st.publish(sp, &res.Counters)
	}
	return res, nil
}

// frameMAD samples the mean absolute luma difference between
// consecutive source frames, the scene-cut detection signal.
func frameMAD(cur, prev *video.Frame, c *perf.Counters) float64 {
	if prev == nil {
		return 0
	}
	const stride = 4
	var sum, n int64
	for y := 0; y < cur.Height; y += stride {
		row := y * cur.Width
		for x := 0; x < cur.Width; x += stride {
			d := int64(cur.Y[row+x]) - int64(prev.Y[row+x])
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	c.Count(perf.KSAD, n)
	c.DataDepBranches++
	return float64(sum) / float64(n)
}

// frameEncoder encodes one slice of one frame: the macroblock rows
// [rowStart, rowEnd). With a single slice that is the whole frame;
// with several, the encoders share the frame's reconstruction and QP
// grid (they write disjoint rows) and run concurrently.
type frameEncoder struct {
	eng    *Engine
	hdr    *seqHeader
	w      symWriter
	src    *video.Frame // padded source (shared, read-only)
	recon  *video.Frame // padded reconstruction (shared, disjoint rows)
	refs   []*video.Frame
	grid   *mbGrid // slice-local MB state
	qpGrid []int   // frame-level (shared, disjoint rows)
	mbW    int
	ftype  int
	qpBase int
	c      *perf.Counters
	tm     *stageTimes // per-stage clocks; nil unless telemetry stages are on

	// Slice bounds in macroblock rows.
	rowStart, rowEnd int

	// AQ state (frame-level, shared, read-only).
	varBits    []int
	avgVarBits int

	// sc is the slice lane's persistent scratch memory (level arena,
	// candidate free list, motion buffers); see arena.go.
	sc *encScratch

	// Wavefront state (see wavefront.go): the slice's row lanes and
	// row coordinator, empty/nil when rows encode serially. gateShared
	// selects whether row helpers must win a CPU-gate slot
	// (RowsParallel=0) or are dedicated (explicit RowsParallel>1).
	lanes      []waveLane
	wc         *waveCoord
	gateShared bool

	scratch [MBSize * MBSize]uint8
}

func newFrameEncoder(e *Engine, hdr *seqHeader, src, recon *video.Frame, qpGrid []int, refs []*video.Frame, mbW, ftype, qpBase int, c *perf.Counters, sc *encScratch) *frameEncoder {
	fe := &frameEncoder{
		eng:    e,
		hdr:    hdr,
		src:    src,
		recon:  recon,
		refs:   refs,
		qpGrid: qpGrid,
		mbW:    mbW,
		ftype:  ftype,
		qpBase: qpBase,
		c:      c,
		sc:     sc,
	}
	if hdr.entropy == EntropyArith {
		fe.w = newArithWriter()
	} else {
		fe.w = newGolombWriter()
	}
	return fe
}

// sliceTopPx returns the luma row of the slice's first sample.
func (fe *frameEncoder) sliceTopPx() int { return fe.rowStart * MBSize }

// sliceBounds splits n macroblock rows into k contiguous bands and
// returns the k+1 boundaries.
func sliceBounds(rows, k int) []int {
	bounds := make([]int, k+1)
	for s := 0; s <= k; s++ {
		bounds[s] = rows * s / k
	}
	return bounds
}

// computeActivity measures per-MB luma variance (in integer log2
// "bits") for adaptive quantization. Integer throughout, so AQ
// decisions are platform independent.
func computeActivity(src *video.Frame, mbW, mbH int, c *perf.Counters) ([]int, int) {
	varBits := make([]int, mbW*mbH)
	total := 0
	w := src.Width
	for my := 0; my < mbH; my++ {
		for mx := 0; mx < mbW; mx++ {
			var sum, sumSq int64
			for y := 0; y < MBSize; y++ {
				row := (my*MBSize + y) * w
				for x := 0; x < MBSize; x++ {
					v := int64(src.Y[row+mx*MBSize+x])
					sum += v
					sumSq += v * v
				}
			}
			n := int64(MBSize * MBSize)
			variance := sumSq - sum*sum/n
			vb := bits.Len64(uint64(variance/n + 1))
			varBits[my*mbW+mx] = vb
			total += vb
		}
	}
	avg := (total + len(varBits)/2) / len(varBits)
	c.Count(perf.KControl, int64(mbW*mbH*MBSize*MBSize/8))
	return varBits, avg
}

// mbQP returns the macroblock quantizer, applying adaptive quant.
// mby is the frame-global macroblock row.
func (fe *frameEncoder) mbQP(mbx, mby int) (qp, delta int) {
	qp = fe.qpBase
	if fe.hdr.adaptiveQuant {
		delta = fe.varBits[mby*fe.mbW+mbx] - fe.avgVarBits
		if delta > 4 {
			delta = 4
		}
		if delta < -4 {
			delta = -4
		}
		qp = clampQP(qp + delta)
		delta = qp - fe.qpBase
	}
	return qp, delta
}

func (fe *frameEncoder) encodeFrame() []byte {
	rows := fe.rowEnd - fe.rowStart
	fe.grid = newMBGrid(fe.mbW, rows)
	if len(fe.lanes) > 1 && rows > 1 {
		fe.encodeRowsWave(rows)
	} else {
		for local := 0; local < rows; local++ {
			for mbx := 0; mbx < fe.mbW; mbx++ {
				fe.encodeMB(mbx, local)
			}
		}
	}
	var payload []byte
	if fe.tm != nil {
		t0 := time.Now()
		payload = fe.w.Flush()
		fe.tm.entropy += time.Since(t0)
	} else {
		payload = fe.w.Flush()
	}
	fe.c.Ops[perf.KEntropy] += fe.w.Bins()
	fe.c.Invocations[perf.KEntropy] += int64(fe.mbW * rows)
	fe.c.BitsOutput += int64(len(payload)+4) * 8 // payload + slice header
	return payload
}

// lumaPlane returns a motion.Plane view of a frame's luma.
func lumaPlane(f *video.Frame) motion.Plane {
	return motion.Plane{Pix: f.Y, W: f.Width, H: f.Height}
}

func chromaPlane(f *video.Frame, p int) motion.Plane {
	if p == 0 {
		return motion.Plane{Pix: f.Cb, W: f.ChromaWidth(), H: f.ChromaHeight()}
	}
	return motion.Plane{Pix: f.Cr, W: f.ChromaWidth(), H: f.ChromaHeight()}
}

// encodeMB codes the macroblock at column mbx, slice-local row local:
// the serial path — decide, serialize, recycle.
func (fe *frameEncoder) encodeMB(mbx, local int) {
	cand, predMV := fe.decideMB(mbx, local)
	fe.writeCand(cand, predMV)
	fe.sc.cands.put(cand)
}

// decideMB performs every effect of coding one macroblock except
// entropy serialization: mode decision, reconstruction commit, QP- and
// MB-grid updates, and work accounting. Wavefront row workers run it
// concurrently (on per-lane encoder views) while writeCand stays in
// strict row order. The MV predictor is captured here because later
// decisions overwrite the grid neighbourhood it reads.
//
//vbench:noalloc
func (fe *frameEncoder) decideMB(mbx, local int) (*mbCand, motion.MV) {
	// The previous macroblock's winner has been serialized (serial
	// path) or compacted into the winner arena (wavefront path), so
	// the trial arena storage is dead; rewind before the new trials.
	fe.sc.levels.reset()
	gRow := fe.rowStart + local
	qp, qpDelta := fe.mbQP(mbx, gRow)
	px, py := mbx*MBSize, gRow*MBSize
	fe.c.MBTotal++
	fe.c.Count(perf.KControl, 40)

	var cand *mbCand
	if fe.ftype == frameP {
		cand = fe.decideInterMB(mbx, local, px, py, qp, qpDelta)
	} else {
		cand = fe.decideIntraMB(px, py, qp, qpDelta)
	}

	predMV := fe.grid.predMV(mbx, local)
	fe.applyCand(cand, mbx, local)
	fe.qpGrid[gRow*fe.mbW+mbx] = cand.qp
	switch cand.mode {
	case mbSkip:
		fe.c.MBSkip++
	case mbInter:
		fe.c.MBInter++
	case mbIntra:
		fe.c.MBIntra++
	}
	return cand, predMV
}

// decideIntraMB evaluates intra modes by SATD and returns the best
// intra candidate (with a transform-size RD check when 8×8 is allowed).
func (fe *frameEncoder) decideIntraMB(px, py, qp, qpDelta int) *mbCand {
	t := &fe.eng.Tools
	reconY := lumaPlane(fe.recon)

	bestMode := predict.ModeDC
	var bestSATD int64 = math.MaxInt64
	var pred [MBSize * MBSize]uint8
	var resid [MBSize * MBSize]int32
	for m := predict.ModeDC; m < predict.NumModes; m++ {
		if !intraAvailClipped(m, px, py, MBSize, reconY, fe.sliceTopPx()) {
			continue
		}
		predict.PredictClipped(pred[:], reconY, px, py, MBSize, m, py > fe.sliceTopPx(), px > 0)
		fe.c.Count(perf.KIntra, MBSize*MBSize)
		fe.lumaResidual(px, py, pred[:], resid[:])
		satd := transform.SATD(resid[:], MBSize, MBSize)
		fe.c.Count(perf.KSAD, MBSize*MBSize)
		satd += lambdaSATDQ4[qp] * 4 / 16 // flat mode-signalling cost
		if satd < bestSATD {
			bestSATD = satd
			bestMode = m
		}
		fe.c.DataDepBranches++
	}

	// Chroma mode by SAD over both planes.
	bestCMode := predict.ModeDC
	var bestCSAD int64 = math.MaxInt64
	var cpred [64]uint8
	for m := predict.ModeDC; m < predict.ModePlane; m++ {
		var sad int64
		ok := true
		for p := 0; p < 2; p++ {
			cp := chromaPlane(fe.recon, p)
			if !intraAvailClipped(m, px/2, py/2, 8, cp, fe.sliceTopPx()/2) {
				ok = false
				break
			}
			predict.PredictClipped(cpred[:], cp, px/2, py/2, 8, m, py/2 > fe.sliceTopPx()/2, px > 0)
			fe.c.Count(perf.KIntra, 64)
			srcp := chromaPlane(fe.src, p)
			sad += kern.SAD(srcp.Pix[(py/2)*srcp.W+px/2:], srcp.W, cpred[:], 8, 8, 8)
		}
		if ok && sad < bestCSAD {
			bestCSAD = sad
			bestCMode = m
		}
		fe.c.DataDepBranches++
	}

	cand := fe.buildIntraCand(px, py, bestMode, bestCMode, false, qp, qpDelta)
	if t.Transform8x8 {
		cand8 := fe.buildIntraCand(px, py, bestMode, bestCMode, true, qp, qpDelta)
		cand = fe.pickByRD(px, py, cand, cand8)
	}
	if t.Intra4x4 {
		cand4 := fe.buildIntra4Cand(px, py, bestCMode, qp, qpDelta)
		cand = fe.pickByRD(px, py, cand, cand4)
	}
	return cand
}

// decideInterMB runs skip detection, motion search, and the
// intra/inter decision for one P-frame macroblock.
func (fe *frameEncoder) decideInterMB(mbx, mby, px, py, qp, qpDelta int) *mbCand {
	t := &fe.eng.Tools
	predMV := fe.grid.predMV(mbx, mby)
	srcY := lumaPlane(fe.src)

	// 1. Early skip: if the prediction at the predicted MV is already
	// tight, test whether the whole MB quantizes to zero.
	ref0 := lumaPlane(fe.refs[0])
	skipThresh := int64(transform.QStepQ6(qp)) * MBSize * MBSize / 64 / 2
	// The SAD scan may abort at skipThresh+1: an aborted value is
	// > skipThresh, so the skip decision below is identical to the one
	// the exact SAD would make, and counter accounting is unchanged.
	skipSAD, skipEarly := motion.PredSADThresh(srcY, px, py, ref0, predMV, MBSize, MBSize, fe.scratch[:], skipThresh+1, fe.c)
	if skipEarly {
		fe.sc.motion.SADEarlyExits++
	}
	fe.c.DataDepBranches++
	var skipCand *mbCand
	if skipSAD <= skipThresh {
		skipCand = fe.buildSkipCand(px, py, predMV, qp)
	}
	if skipCand != nil && !t.RDMode {
		return skipCand
	}

	// 2. Motion search over the reference list.
	params := motion.Params{
		Kind:   t.Search,
		Range:  t.SearchRange,
		SubPel: t.SubPel,
		Lambda: lambdaSATDQ4[qp],
	}
	var mt0 time.Time
	if fe.tm != nil {
		mt0 = time.Now()
	}
	bestRef := 0
	bestMV := motion.MV{}
	var bestCost int64 = math.MaxInt64
	for r := 0; r < len(fe.refs) && r < t.MaxRefs; r++ {
		mv, cost := motion.Search(srcY, px, py, lumaPlane(fe.refs[r]), predMV, MBSize, MBSize, params, &fe.sc.motion, fe.c)
		cost += lambdaSATDQ4[qp] * int64(r) / 4 // reference index rate
		if cost < bestCost {
			bestCost = cost
			bestMV = mv
			bestRef = r
		}
	}
	if fe.tm != nil {
		fe.tm.motion += time.Since(mt0)
	}

	// 3. Intra-vs-inter decision by SATD heuristic (or full RD below).
	interCand := fe.buildInterCand(px, py, bestMV, bestRef, false, qp, qpDelta)
	if t.Transform8x8 {
		cand8 := fe.buildInterCand(px, py, bestMV, bestRef, true, qp, qpDelta)
		interCand = fe.pickByRD(px, py, interCand, cand8)
	}

	// Cheap intra probe: only evaluate full intra when inter predicts
	// poorly (classic early-out), or always under RDMode.
	interSSE := fe.candSSE(px, py, interCand)
	intraWorthTrying := interSSE > int64(MBSize*MBSize)*int64(transform.QStepQ6(qp)/64+2)*int64(transform.QStepQ6(qp)/64+2)
	fe.c.DataDepBranches++

	var intraCand *mbCand
	if intraWorthTrying || t.RDMode {
		intraCand = fe.decideIntraMB(px, py, qp, qpDelta)
	}

	if t.RDMode {
		best := fe.pickByRD(px, py, interCand, intraCand)
		best = fe.pickByRD(px, py, best, skipCand)
		return best
	}
	if intraCand != nil {
		return fe.pickByRD(px, py, interCand, intraCand)
	}
	return interCand
}

// pickByRD compares two candidates by SSE + λ·bits; either may be nil.
// The loser is recycled into the candidate pool, so callers must not
// hold onto both arguments after the call.
func (fe *frameEncoder) pickByRD(px, py int, a, b *mbCand) *mbCand {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	fe.c.Count(perf.KControl, 20)
	costA := float64(fe.candSSE(px, py, a)) + lambdaMode[a.qp]*float64(fe.candBits(a))
	costB := float64(fe.candSSE(px, py, b)) + lambdaMode[b.qp]*float64(fe.candBits(b))
	if costB < costA {
		fe.sc.cands.put(a)
		return b
	}
	fe.sc.cands.put(b)
	return a
}

// candSSE returns the squared reconstruction error of a candidate.
func (fe *frameEncoder) candSSE(px, py int, c *mbCand) int64 {
	var sse int64
	w := fe.src.Width
	for y := 0; y < MBSize; y++ {
		row := (py + y) * w
		for x := 0; x < MBSize; x++ {
			d := int64(fe.src.Y[row+px+x]) - int64(c.lumaRecon[y*MBSize+x])
			sse += d * d
		}
	}
	cw := fe.src.ChromaWidth()
	for p := 0; p < 2; p++ {
		plane := fe.src.Cb
		if p == 1 {
			plane = fe.src.Cr
		}
		for y := 0; y < 8; y++ {
			row := (py/2 + y) * cw
			for x := 0; x < 8; x++ {
				d := int64(plane[row+px/2+x]) - int64(c.chromaRecon[p][y*8+x])
				sse += d * d
			}
		}
	}
	return sse
}

// candBits estimates the coded size of a candidate in bits.
func (fe *frameEncoder) candBits(c *mbCand) int {
	if c.mode == mbSkip {
		return 1
	}
	b := 8 // flags, modes
	if c.mode == mbInter {
		b += ueBitsFast(seMap(c.mv.X)) + ueBitsFast(seMap(c.mv.Y))
	}
	if c.intra4 {
		b += 32 // sixteen per-block mode codes
	}
	for _, blk := range c.lumaLevels {
		if blk != nil {
			b += residualBits(blk) + 1
		}
	}
	for p := 0; p < 2; p++ {
		for _, blk := range c.chromaLevels[p] {
			if blk != nil {
				b += residualBits(blk) + 1
			}
		}
	}
	return b
}

// lumaResidual computes src − pred for the MB at (px, py).
func (fe *frameEncoder) lumaResidual(px, py int, pred []uint8, out []int32) {
	w := fe.src.Width
	for y := 0; y < MBSize; y++ {
		row := (py + y) * w
		for x := 0; x < MBSize; x++ {
			out[y*MBSize+x] = int32(fe.src.Y[row+px+x]) - int32(pred[y*MBSize+x])
		}
	}
}

// buildSkipCand returns a skip candidate (prediction at predMV from
// ref 0 with zero residual) if the whole macroblock quantizes to
// zero; nil otherwise.
func (fe *frameEncoder) buildSkipCand(px, py int, predMV motion.MV, qp int) *mbCand {
	cand := fe.buildInterCand(px, py, predMV, 0, false, qp, 0)
	cand.qp = fe.qpBase // skip MBs carry no QP delta
	coded := false
	for _, blk := range cand.lumaLevels {
		if blk != nil {
			coded = true
		}
	}
	for p := 0; p < 2; p++ {
		for _, blk := range cand.chromaLevels[p] {
			if blk != nil {
				coded = true
			}
		}
	}
	if coded {
		fe.sc.cands.put(cand)
		return nil
	}
	cand.mode = mbSkip
	return cand
}

// mcLuma produces the luma motion-compensated prediction using the
// stream's interpolation mode.
func mcLuma(hdr *seqHeader, dst []uint8, ref motion.Plane, px, py int, mv motion.MV, sc *motion.Scratch, c *perf.Counters) {
	if hdr.sharpInterp {
		motion.PredictLumaSharp(dst, ref, px, py, mv, MBSize, MBSize, sc)
		c.Count(perf.KInterp, MBSize*MBSize*2)
		return
	}
	motion.PredictLuma(dst, ref, px, py, mv, MBSize, MBSize)
	c.Count(perf.KInterp, MBSize*MBSize)
}

// buildInterCand constructs a fully reconstructed inter candidate.
func (fe *frameEncoder) buildInterCand(px, py int, mv motion.MV, ref int, tx8 bool, qp, qpDelta int) *mbCand {
	t := &fe.eng.Tools
	cand := fe.sc.cands.get()
	// Whole-struct assignment resets every recycled field (levels,
	// modes, recon), making a pooled candidate indistinguishable from
	// a fresh allocation.
	*cand = mbCand{mode: mbInter, mv: mv, ref: ref, tx8: tx8, qp: qp, qpDelta: qpDelta}

	var pred [MBSize * MBSize]uint8
	mcLuma(fe.hdr, pred[:], lumaPlane(fe.refs[ref]), px, py, mv, &fe.sc.motion, fe.c)

	var resid [MBSize * MBSize]int32
	fe.lumaResidual(px, py, pred[:], resid[:])
	fe.codeLuma(cand, pred[:], resid[:], transform.DeadZoneInter, t.Trellis)

	var cpred [64]uint8
	var cres [64]int32
	for p := 0; p < 2; p++ {
		motion.PredictChroma(cpred[:], chromaPlane(fe.refs[ref], p), px/2, py/2, mv, 8, 8)
		fe.c.Count(perf.KInterp, 64)
		fe.chromaResidual(px, py, p, cpred[:], cres[:])
		fe.codeChroma(cand, p, cpred[:], cres[:], transform.DeadZoneInter, t.Trellis)
	}
	return cand
}

// buildIntraCand constructs a fully reconstructed intra candidate.
func (fe *frameEncoder) buildIntraCand(px, py int, lumaMode, chromaMode predict.Mode, tx8 bool, qp, qpDelta int) *mbCand {
	t := &fe.eng.Tools
	cand := fe.sc.cands.get()
	*cand = mbCand{mode: mbIntra, lumaMode: lumaMode, chromaMode: chromaMode, tx8: tx8, qp: qp, qpDelta: qpDelta}

	var pred [MBSize * MBSize]uint8
	predict.PredictClipped(pred[:], lumaPlane(fe.recon), px, py, MBSize, lumaMode, py > fe.sliceTopPx(), px > 0)
	fe.c.Count(perf.KIntra, MBSize*MBSize)

	var resid [MBSize * MBSize]int32
	fe.lumaResidual(px, py, pred[:], resid[:])
	fe.codeLuma(cand, pred[:], resid[:], transform.DeadZoneIntra, t.Trellis)

	fe.codeChromaIntra(cand, px, py, chromaMode)
	return cand
}

// codeChromaIntra predicts and codes both chroma planes of an intra
// candidate.
func (fe *frameEncoder) codeChromaIntra(cand *mbCand, px, py int, chromaMode predict.Mode) {
	t := &fe.eng.Tools
	var cpred [64]uint8
	var cres [64]int32
	for p := 0; p < 2; p++ {
		predict.PredictClipped(cpred[:], chromaPlane(fe.recon, p), px/2, py/2, 8, chromaMode, py/2 > fe.sliceTopPx()/2, px > 0)
		fe.c.Count(perf.KIntra, 64)
		fe.chromaResidual(px, py, p, cpred[:], cres[:])
		fe.codeChroma(cand, p, cpred[:], cres[:], transform.DeadZoneIntra, t.Trellis)
	}
}

// buildIntra4Cand constructs a per-4×4-block intra candidate: each
// block chooses its own directional mode, predicted from the blocks
// reconstructed before it.
func (fe *frameEncoder) buildIntra4Cand(px, py int, chromaMode predict.Mode, qp, qpDelta int) *mbCand {
	t := &fe.eng.Tools
	cand := fe.sc.cands.get()
	*cand = mbCand{mode: mbIntra, intra4: true, chromaMode: chromaMode, qp: qp, qpDelta: qpDelta}
	reconY := lumaPlane(fe.recon)
	w := fe.src.Width

	var pred, bestPred [16]uint8
	var blk, rblk [16]int32
	for b := 0; b < 16; b++ {
		ox, oy := block4Offset(b)
		bestMode := predict.ModeDC
		var bestSAD int64 = math.MaxInt64
		for m := predict.ModeDC; m <= predict.ModeHorizontal; m++ {
			if !intra4Avail(m, px, py, ox, oy, fe.sliceTopPx()) {
				continue
			}
			if err := intra4PredictBlock(pred[:], m, reconY, cand, px, py, ox, oy, fe.sliceTopPx()); err != nil {
				continue
			}
			fe.c.Count(perf.KIntra, 16)
			sad := kern.SAD(fe.src.Y[(py+oy)*w+px+ox:], w, pred[:], 4, 4, 4)
			fe.c.DataDepBranches++
			if sad < bestSAD {
				bestSAD = sad
				bestMode = m
				bestPred = pred
			}
		}
		cand.luma4Modes[b] = bestMode

		for y := 0; y < 4; y++ {
			row := (py + oy + y) * w
			for x := 0; x < 4; x++ {
				blk[y*4+x] = int32(fe.src.Y[row+px+ox+x]) - int32(bestPred[y*4+x])
			}
		}
		levels := quantizeBlock(blk[:], rblk[:], 4, qp, transform.DeadZoneIntra, t.Trellis, &fe.sc.levels, fe.c)
		cand.lumaLevels[b] = levels
		if levels != nil {
			fe.c.BlocksCoded++
		}
		// Reconstruct into the candidate so later blocks predict from
		// the coded samples, exactly as the decoder will.
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				v := int32(bestPred[y*4+x]) + rblk[y*4+x]
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				cand.lumaRecon[(oy+y)*MBSize+ox+x] = uint8(v)
			}
		}
	}

	fe.codeChromaIntra(cand, px, py, chromaMode)
	return cand
}

// chromaResidual computes src − pred for one 8×8 chroma block.
func (fe *frameEncoder) chromaResidual(px, py, p int, pred []uint8, out []int32) {
	plane := fe.src.Cb
	if p == 1 {
		plane = fe.src.Cr
	}
	cw := fe.src.ChromaWidth()
	for y := 0; y < 8; y++ {
		row := (py/2 + y) * cw
		for x := 0; x < 8; x++ {
			out[y*8+x] = int32(plane[row+px/2+x]) - int32(pred[y*8+x])
		}
	}
}

// codeLuma transforms, quantizes, and reconstructs the luma residual
// of a candidate.
func (fe *frameEncoder) codeLuma(cand *mbCand, pred []uint8, resid []int32, dz transform.DeadZone, trellis bool) {
	if fe.tm != nil {
		defer fe.tm.sinceTransform(time.Now())
	}
	var reconRes [MBSize * MBSize]int32
	if cand.tx8 {
		var blk, rblk [64]int32
		for q := 0; q < 4; q++ {
			ox, oy := block8Offset(q)
			gatherBlock(resid, MBSize, ox, oy, 8, blk[:])
			levels := quantizeBlock(blk[:], rblk[:], 8, cand.qp, dz, trellis, &fe.sc.levels, fe.c)
			cand.lumaLevels[q] = levels
			scatterBlock(reconRes[:], MBSize, ox, oy, 8, rblk[:])
			if levels != nil {
				fe.c.BlocksCoded++
			}
		}
	} else {
		var blk, rblk [16]int32
		for b := 0; b < 16; b++ {
			ox, oy := block4Offset(b)
			gatherBlock(resid, MBSize, ox, oy, 4, blk[:])
			levels := quantizeBlock(blk[:], rblk[:], 4, cand.qp, dz, trellis, &fe.sc.levels, fe.c)
			cand.lumaLevels[b] = levels
			scatterBlock(reconRes[:], MBSize, ox, oy, 4, rblk[:])
			if levels != nil {
				fe.c.BlocksCoded++
			}
		}
	}
	composeRecon(cand.lumaRecon[:], pred, reconRes[:], MBSize*MBSize)
}

// codeChroma transforms, quantizes, and reconstructs one chroma plane
// of a candidate.
func (fe *frameEncoder) codeChroma(cand *mbCand, p int, pred []uint8, resid []int32, dz transform.DeadZone, trellis bool) {
	if fe.tm != nil {
		defer fe.tm.sinceTransform(time.Now())
	}
	var reconRes [64]int32
	var blk, rblk [16]int32
	for b := 0; b < 4; b++ {
		ox, oy := (b%2)*4, (b/2)*4
		gatherBlock(resid, 8, ox, oy, 4, blk[:])
		levels := quantizeBlock(blk[:], rblk[:], 4, cand.qp, dz, trellis, &fe.sc.levels, fe.c)
		cand.chromaLevels[p][b] = levels
		scatterBlock(reconRes[:], 8, ox, oy, 4, rblk[:])
		if levels != nil {
			fe.c.BlocksCoded++
		}
	}
	composeRecon(cand.chromaRecon[p][:], pred, reconRes[:], 64)
}

// gatherBlock copies an n×n sub-block out of a stride-w region.
//
//vbench:noalloc
func gatherBlock(src []int32, w, ox, oy, n int, dst []int32) {
	for y := 0; y < n; y++ {
		copy(dst[y*n:(y+1)*n], src[(oy+y)*w+ox:(oy+y)*w+ox+n])
	}
}

// scatterBlock copies an n×n sub-block back into a stride-w region.
//
//vbench:noalloc
func scatterBlock(dst []int32, w, ox, oy, n int, src []int32) {
	for y := 0; y < n; y++ {
		copy(dst[(oy+y)*w+ox:(oy+y)*w+ox+n], src[y*n:(y+1)*n])
	}
}

// composeRecon writes clip(pred + residual) into dst.
//
//vbench:noalloc
func composeRecon(dst []uint8, pred []uint8, res []int32, n int) {
	for i := 0; i < n; i++ {
		v := int32(pred[i]) + res[i]
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		dst[i] = uint8(v)
	}
}

// writeCand serializes a candidate through the symbol writer. The
// field order here is the normative macroblock syntax; the decoder
// mirrors it exactly.
func (fe *frameEncoder) writeCand(c *mbCand, predMV motion.MV) {
	if fe.tm != nil {
		defer fe.tm.sinceEntropy(time.Now())
	}
	w := fe.w
	if fe.ftype == frameP {
		if c.mode == mbSkip {
			w.Bit(ctxSkip, 1)
			return
		}
		w.Bit(ctxSkip, 0)
		if c.mode == mbIntra {
			w.Bit(ctxIntraFlag, 1)
		} else {
			w.Bit(ctxIntraFlag, 0)
		}
	}
	if c.mode == mbIntra {
		if c.intra4 {
			w.UE(ctxLumaMode, lumaModeIntra4)
			for b := 0; b < 16; b++ {
				w.UE(ctxLumaMode4, uint32(c.luma4Modes[b]))
			}
		} else {
			w.UE(ctxLumaMode, uint32(c.lumaMode))
		}
		w.UE(ctxChromaMode, uint32(c.chromaMode))
	} else {
		if fe.hdr.refs > 1 {
			w.UE(ctxRefIdx, uint32(c.ref))
		}
		w.SE(ctxMVD, c.mv.X-predMV.X)
		w.SE(ctxMVD, c.mv.Y-predMV.Y)
	}
	fe.writeMBTail(c)
}

func (fe *frameEncoder) writeMBTail(c *mbCand) {
	w := fe.w
	rich := fe.hdr.richContexts
	if fe.hdr.tx8Allowed && !c.intra4 {
		if c.tx8 {
			w.Bit(ctxTx8, 1)
		} else {
			w.Bit(ctxTx8, 0)
		}
	}
	if fe.hdr.adaptiveQuant {
		w.SE(ctxQPDelta, int32(c.qpDelta))
	}
	// CBP: 4 luma quadrant bits then 2 chroma plane bits.
	for q := 0; q < 4; q++ {
		if c.lumaQuadCoded(q) {
			w.Bit(ctxCBPLuma, 1)
		} else {
			w.Bit(ctxCBPLuma, 0)
		}
	}
	for p := 0; p < 2; p++ {
		if c.chromaPlaneCoded(p) {
			w.Bit(ctxCBPChroma, 1)
		} else {
			w.Bit(ctxCBPChroma, 0)
		}
	}
	// Luma residual.
	if c.tx8 {
		for q := 0; q < 4; q++ {
			if c.lumaLevels[q] != nil {
				writeResidualBlock(w, c.lumaLevels[q], rich)
			}
		}
	} else {
		for q := 0; q < 4; q++ {
			if !c.lumaQuadCoded(q) {
				continue
			}
			for _, b := range quadBlocks4[q] {
				if c.lumaLevels[b] != nil {
					w.Bit(ctxBlkFlag, 1)
					writeResidualBlock(w, c.lumaLevels[b], rich)
				} else {
					w.Bit(ctxBlkFlag, 0)
				}
			}
		}
	}
	// Chroma residual.
	for p := 0; p < 2; p++ {
		if !c.chromaPlaneCoded(p) {
			continue
		}
		for b := 0; b < 4; b++ {
			if c.chromaLevels[p][b] != nil {
				w.Bit(ctxBlkFlag, 1)
				writeResidualBlock(w, c.chromaLevels[p][b], rich)
			} else {
				w.Bit(ctxBlkFlag, 0)
			}
		}
	}
}

// applyCand commits a candidate's reconstruction into the frame and
// updates the MB grid. local is the slice-local macroblock row.
func (fe *frameEncoder) applyCand(c *mbCand, mbx, local int) {
	px, py := mbx*MBSize, (fe.rowStart+local)*MBSize
	w := fe.recon.Width
	for y := 0; y < MBSize; y++ {
		copy(fe.recon.Y[(py+y)*w+px:(py+y)*w+px+MBSize], c.lumaRecon[y*MBSize:(y+1)*MBSize])
	}
	cw := fe.recon.ChromaWidth()
	for p := 0; p < 2; p++ {
		plane := fe.recon.Cb
		if p == 1 {
			plane = fe.recon.Cr
		}
		for y := 0; y < 8; y++ {
			copy(plane[(py/2+y)*cw+px/2:(py/2+y)*cw+px/2+8], c.chromaRecon[p][y*8:(y+1)*8])
		}
	}
	info := fe.grid.at(mbx, local)
	info.mode = c.mode
	info.mv = c.mv
	info.ref = c.ref
	info.qp = c.qp
}
