// Package cas is the content-addressed transcode cache: every encode
// is keyed by a canonical digest of (input pixel content, full
// codec.Config, encoder tool set, codec-version fingerprint) and its
// outcome — bitstream bytes, decoded quality, perf counters, modeled
// time — is stored in an in-memory tier backed by a sharded on-disk
// store. Identical transcodes then cost one lookup instead of one
// encode: harness re-runs become incremental, and the fleet master
// collapses duplicate submissions without granting a worker lease.
//
// Keys are strictly conservative: any difference that could change
// the outcome — one pixel, one Config field, one encoder tool, or the
// version fingerprint of the encode-affecting packages — produces a
// different key, so stale entries can never resurface.
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"vbench/internal/codec"
	"vbench/internal/video"
)

// Key is the cache identity of one transcode: a SHA-256 over the
// canonical serialization of its KeyParts. It is comparable and used
// directly as a map key; String is its hex form (also the on-disk
// file name).
type Key [sha256.Size]byte

// String returns the full hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an abbreviated hex form for logs and span args.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// ParseKey parses the hex form produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("cas: %q is not a cache key", s)
	}
	copy(k[:], b)
	return k, nil
}

// KeyParts is everything that determines a transcode outcome. Key()
// serializes the parts canonically — fixed field order, explicit
// names, one line per field — and digests the result, so two
// processes (or two releases with the same fingerprint) derive the
// same key for the same work.
type KeyParts struct {
	// Content identifies the input pixels: ContentDigest(seq) for
	// materialized sequences, or a deterministic surrogate such as the
	// fleet's "spec:clip/scale/duration" for synthesized clips.
	Content string
	// Tools is the encoder configuration (family, preset tool set).
	Tools codec.Tools
	// Config is the per-transcode rate-control configuration.
	Config codec.Config
	// Scope namespaces keys that would otherwise collide, e.g. when an
	// embedder caches a derived artifact of the same encode. Usually
	// empty.
	Scope string
	// Fingerprint is the codec-version fingerprint (Fingerprint());
	// entries written by a different encoder version can never match.
	Fingerprint string
}

// keyVersion bumps every key when the serialization itself changes.
const keyVersion = "vbcas/v1"

// configKeyFields and toolsKeyFields list the struct fields the
// canonical serialization covers, in serialization order. The
// reflection test in key_test.go fails when a field is added to
// codec.Config or codec.Tools but not listed here — the guard that a
// new encode-affecting knob cannot silently alias cache entries.
var configKeyFields = []string{"RC", "QP", "BitrateBPS", "KeyInterval", "Slices", "RowsParallel"}

var toolsKeyFields = []string{
	"Name", "Search", "SearchRange", "SubPel", "MaxRefs",
	"Transform8x8", "AdaptiveQuant", "Trellis", "Entropy", "RichContexts",
	"Deblock", "RDMode", "SceneCut", "SharpInterp", "Intra4x4",
	"Denoise", "QPGranularity",
}

// Key digests the parts canonically.
func (p KeyParts) Key() Key {
	h := sha256.New()
	io.WriteString(h, keyVersion+"\n")
	writeField(h, "content", p.Content)
	writeField(h, "scope", p.Scope)
	writeField(h, "fingerprint", p.Fingerprint)
	appendTools(h, p.Tools)
	appendConfig(h, p.Config)
	var k Key
	h.Sum(k[:0])
	return k
}

func writeField(w io.Writer, name, val string) {
	// Length-prefixed values make the serialization injective even for
	// values containing newlines or "=".
	fmt.Fprintf(w, "%s=%d:%s\n", name, len(val), val)
}

func writeInt(w io.Writer, name string, v int64) {
	writeField(w, name, strconv.FormatInt(v, 10))
}

func writeBool(w io.Writer, name string, v bool) {
	writeField(w, name, strconv.FormatBool(v))
}

func writeFloat(w io.Writer, name string, v float64) {
	writeField(w, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// appendConfig serializes every exported codec.Config field, in
// configKeyFields order.
func appendConfig(w io.Writer, c codec.Config) {
	writeInt(w, "config.RC", int64(c.RC))
	writeInt(w, "config.QP", int64(c.QP))
	writeFloat(w, "config.BitrateBPS", c.BitrateBPS)
	writeInt(w, "config.KeyInterval", int64(c.KeyInterval))
	writeInt(w, "config.Slices", int64(c.Slices))
	writeInt(w, "config.RowsParallel", int64(c.RowsParallel))
}

// appendTools serializes every exported codec.Tools field, in
// toolsKeyFields order.
func appendTools(w io.Writer, t codec.Tools) {
	writeField(w, "tools.Name", t.Name)
	writeInt(w, "tools.Search", int64(t.Search))
	writeInt(w, "tools.SearchRange", int64(t.SearchRange))
	writeInt(w, "tools.SubPel", int64(t.SubPel))
	writeInt(w, "tools.MaxRefs", int64(t.MaxRefs))
	writeBool(w, "tools.Transform8x8", t.Transform8x8)
	writeBool(w, "tools.AdaptiveQuant", t.AdaptiveQuant)
	writeBool(w, "tools.Trellis", t.Trellis)
	writeInt(w, "tools.Entropy", int64(t.Entropy))
	writeBool(w, "tools.RichContexts", t.RichContexts)
	writeBool(w, "tools.Deblock", t.Deblock)
	writeBool(w, "tools.RDMode", t.RDMode)
	writeBool(w, "tools.SceneCut", t.SceneCut)
	writeBool(w, "tools.SharpInterp", t.SharpInterp)
	writeBool(w, "tools.Intra4x4", t.Intra4x4)
	writeInt(w, "tools.Denoise", int64(t.Denoise))
	writeInt(w, "tools.QPGranularity", int64(t.QPGranularity))
}

// ContentDigest returns the content identity of a sequence: a digest
// over its geometry, framerate, and every luma and chroma sample.
// Flipping a single pixel changes the digest (and so the cache key).
func ContentDigest(seq *video.Sequence) string {
	h := sha256.New()
	io.WriteString(h, "content/v1\n")
	var hdr [32]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(seq.Width()))
	binary.BigEndian.PutUint64(hdr[8:], uint64(seq.Height()))
	binary.BigEndian.PutUint64(hdr[16:], uint64(len(seq.Frames)))
	binary.BigEndian.PutUint64(hdr[24:], uint64(int64(seq.FrameRate*1000+0.5)))
	h.Write(hdr[:])
	for _, f := range seq.Frames {
		h.Write(f.Y)
		h.Write(f.Cb)
		h.Write(f.Cr)
	}
	return "pix:" + hex.EncodeToString(h.Sum(nil))
}
