package fleet

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"vbench/internal/cas"
	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
)

// terminalError marks failures that retrying cannot fix: malformed
// specs, unknown clips or encoders, deterministic encoder rejections.
// Everything else is transient and worth another attempt — the
// explicit boundary the state machine's retry policy keys on.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Terminal wraps err as a terminal (non-retryable) failure.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err is marked terminal.
func IsTerminal(err error) bool {
	var t *terminalError
	return errors.As(err, &t)
}

// ParseEncoder maps a "family-preset" name (e.g. "x264-medium",
// "x265-veryslow", "vp9-fast") to a configured engine.
func ParseEncoder(name string) (*codec.Engine, error) {
	fam, presetName, ok := strings.Cut(name, "-")
	if !ok {
		return nil, fmt.Errorf("fleet: encoder %q is not family-preset (e.g. \"x264-medium\")", name)
	}
	p, err := codec.ParsePreset(presetName)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoder %q: %w", name, err)
	}
	switch fam {
	case "x264":
		return profiles.X264(p), nil
	case "x265":
		return profiles.X265(p), nil
	case "vp9":
		return profiles.VP9(p), nil
	}
	return nil, fmt.Errorf("fleet: unknown encoder family %q (want x264, x265, or vp9)", fam)
}

// parseRC maps a spec rate-control name to the codec mode.
func parseRC(s string) (codec.RCMode, error) {
	switch s {
	case "", "cqp", "crf":
		return codec.RCConstQP, nil
	case "abr":
		return codec.RCBitrate, nil
	case "2pass":
		return codec.RCTwoPass, nil
	}
	return 0, fmt.Errorf("fleet: unknown rate-control mode %q (want cqp, abr, or 2pass)", s)
}

// specConfig maps an encode spec's transcode parameters onto the
// codec configuration. It is the single place spec fields become
// Config fields, shared by execution and by cache-key derivation —
// a field added to one but not the other would silently poison the
// cache.
func specConfig(spec JobSpec, rc codec.RCMode) codec.Config {
	return codec.Config{
		RC:           rc,
		QP:           spec.QP,
		BitrateBPS:   spec.BitrateBPS,
		KeyInterval:  spec.KeyInterval,
		Slices:       spec.Slices,
		RowsParallel: spec.RowsParallel,
	}
}

// Executor runs job attempts, optionally serving and populating a
// shared content-addressed transcode cache.
type Executor struct {
	// Cache, when non-nil, is consulted before every encode and
	// populated after; a hit skips the transcode entirely.
	Cache *cas.Store
	// DefaultRowsParallel applies the worker's wavefront default to
	// encode specs that leave RowsParallel unset. It affects only the
	// execution schedule, never the bitstream, so the cache key is
	// derived from the original spec.
	DefaultRowsParallel int
}

// Execute runs one job attempt and returns its result. Errors are
// classified: IsTerminal(err) means the job must not be retried.
// sleep implements noop-job waiting (time.Sleep in workers; the sim
// twin models execution instead of calling Execute).
func (x *Executor) Execute(spec JobSpec, attempt int, sleep func(time.Duration)) (Result, error) {
	if attempt <= spec.FailFirst {
		return Result{}, fmt.Errorf("fleet: injected transient failure (attempt %d/%d)", attempt, spec.FailFirst)
	}
	switch spec.Kind {
	case KindNoop:
		d := time.Duration(spec.SleepMS) * time.Millisecond
		if sleep != nil && d > 0 {
			sleep(d)
		}
		return Result{Seconds: d.Seconds()}, nil
	case "", KindEncode:
		return x.executeEncode(spec)
	}
	return Result{}, Terminal(fmt.Errorf("fleet: worker cannot execute job kind %q", spec.Kind))
}

// Execute runs one job attempt without a cache or worker defaults;
// shorthand kept for tests and embedders that predate Executor.
func Execute(spec JobSpec, attempt int, sleep func(time.Duration)) (Result, error) {
	return (&Executor{}).Execute(spec, attempt, sleep)
}

// executeEncode runs a real codec transcode for an encode job,
// serving it from the transcode cache when possible.
func (x *Executor) executeEncode(spec JobSpec) (Result, error) {
	key, cacheable := cas.Key{}, false
	if x.Cache != nil {
		key, cacheable = SpecCacheKey(spec)
		if cacheable {
			if o, ok := x.Cache.Get(key); ok {
				return resultFromOutcome(o), nil
			}
		}
	}
	clip, err := corpus.ClipByName(spec.Clip)
	if err != nil {
		return Result{}, Terminal(err)
	}
	eng, err := ParseEncoder(spec.Encoder)
	if err != nil {
		return Result{}, Terminal(err)
	}
	rc, err := parseRC(spec.RC)
	if err != nil {
		return Result{}, Terminal(err)
	}
	seq, err := clip.Generate(spec.Scale, spec.Duration)
	if err != nil {
		return Result{}, Terminal(err)
	}
	ccfg := specConfig(spec, rc)
	if ccfg.RowsParallel == 0 {
		ccfg.RowsParallel = x.DefaultRowsParallel
	}
	out, err := cas.Compute(eng, seq, ccfg)
	if err != nil {
		// The encoder is deterministic: what failed once fails again.
		return Result{}, Terminal(err)
	}
	if x.Cache != nil && cacheable {
		// Best effort: a full disk or unwritable store must not fail
		// the job; the store's write_errors counter records it.
		_ = x.Cache.Put(key, out)
	}
	return resultFromOutcome(out), nil
}
