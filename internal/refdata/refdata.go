// Package refdata records the numbers the paper published — Tables 3,
// 4, and 5 and the Figure 1 growth series — so every reproduced
// experiment can print paper-vs-measured side by side. A score of 0
// in the popular table means the paper reported an empty cell (the
// scenario constraint was not met).
package refdata

// VODRow is one row of Table 3: NVENC and QSV speed/bitrate ratios
// and VOD scores per vbench clip.
type VODRow struct {
	Clip       string
	NVENCS     float64
	NVENCB     float64
	NVENCScore float64
	QSVS       float64
	QSVB       float64
	QSVScore   float64
}

// Table3 returns the paper's VOD results for the GPU encoders.
func Table3() []VODRow {
	return []VODRow{
		{"cat", 5.74, 0.76, 4.36, 9.27, 0.80, 7.38},
		{"holi", 5.04, 0.76, 3.83, 7.95, 0.80, 6.38},
		{"desktop", 2.41, 0.40, 0.96, 3.90, 0.18, 0.72},
		{"bike", 4.05, 0.62, 2.52, 6.68, 0.73, 4.91},
		{"cricket", 8.91, 0.83, 7.39, 13.22, 0.70, 9.32},
		{"game2", 7.72, 0.64, 4.97, 12.94, 0.71, 9.20},
		{"girl", 8.51, 0.93, 7.88, 14.29, 0.80, 11.46},
		{"game3", 9.22, 0.52, 4.81, 11.32, 0.80, 9.05},
		{"presentation", 3.58, 0.35, 1.24, 4.35, 0.48, 2.09},
		{"funny", 9.63, 0.43, 4.10, 11.17, 0.83, 9.30},
		{"house", 14.29, 0.93, 13.34, 16.75, 0.96, 16.02},
		{"game1", 14.87, 0.57, 8.50, 15.89, 0.72, 11.42},
		{"landscape", 15.05, 0.88, 13.26, 18.50, 0.94, 17.36},
		{"hall", 13.68, 1.14, 15.58, 18.64, 0.94, 17.51},
		{"chicken", 19.12, 0.85, 16.31, 20.00, 0.83, 16.58},
	}
}

// LiveRow is one row of Table 4: NVENC and QSV quality/bitrate ratios
// and Live scores per clip.
type LiveRow struct {
	Clip       string
	NVENCQ     float64
	NVENCB     float64
	NVENCScore float64
	QSVQ       float64
	QSVB       float64
	QSVScore   float64
}

// Table4 returns the paper's Live results for the GPU encoders.
func Table4() []LiveRow {
	return []LiveRow{
		{"cat", 1.01, 1.09, 1.09, 1.02, 1.14, 1.16},
		{"holi", 1.00, 1.21, 1.21, 1.01, 1.28, 1.29},
		{"desktop", 1.06, 1.03, 1.09, 1.88, 0.16, 0.30},
		{"bike", 1.03, 1.31, 1.35, 1.25, 0.48, 0.59},
		{"cricket", 1.00, 1.29, 1.29, 1.01, 1.14, 1.16},
		{"game2", 1.00, 1.20, 1.20, 1.02, 1.30, 1.32},
		{"girl", 1.01, 1.16, 1.17, 1.01, 1.45, 1.47},
		{"game3", 1.01, 0.96, 0.97, 1.01, 1.28, 1.29},
		{"presentation", 1.05, 0.79, 0.83, 1.34, 0.31, 0.42},
		{"funny", 1.01, 1.01, 1.02, 1.00, 1.69, 1.69},
		{"house", 1.00, 1.53, 1.54, 1.01, 1.68, 1.70},
		{"game1", 1.03, 1.19, 1.22, 1.01, 1.57, 1.59},
		{"landscape", 1.01, 1.19, 1.21, 1.01, 1.26, 1.27},
		{"hall", 1.02, 1.28, 1.31, 1.01, 1.45, 1.46},
		{"chicken", 1.01, 2.10, 2.12, 1.01, 2.42, 2.44},
	}
}

// PopularRow is one row of Table 5: libvpx-vp9 and libx265 quality and
// bitrate ratios with Popular scores; a zero score is the paper's
// empty (constraint-failed) cell.
type PopularRow struct {
	Clip      string
	VP9Q      float64
	VP9B      float64
	VP9Score  float64
	X265Q     float64
	X265B     float64
	X265Score float64
}

// Table5 returns the paper's Popular-scenario results for the newer
// software encoders.
func Table5() []PopularRow {
	return []PopularRow{
		{"cat", 1.00, 1.47, 1.48, 1.02, 1.17, 1.19},
		{"holi", 1.00, 1.06, 1.06, 1.01, 1.12, 1.13},
		{"desktop", 1.01, 0.67, 0, 1.00, 0.87, 0},
		{"bike", 1.00, 1.06, 1.06, 1.01, 1.11, 1.12},
		{"cricket", 1.01, 0.97, 0, 1.02, 0.86, 0},
		{"game2", 1.00, 1.33, 1.33, 1.01, 1.03, 1.04},
		{"girl", 1.01, 1.06, 1.06, 1.02, 0.81, 0},
		{"game3", 1.01, 1.09, 1.10, 1.01, 0.80, 0},
		{"presentation", 1.00, 1.86, 1.86, 1.00, 1.13, 1.13},
		{"funny", 1.00, 1.37, 1.37, 1.00, 1.06, 1.06},
		{"house", 1.01, 1.06, 1.07, 1.01, 0.97, 0},
		{"game1", 1.00, 1.20, 1.20, 1.00, 1.28, 1.28},
		{"landscape", 1.01, 1.47, 1.48, 1.02, 1.30, 1.32},
		{"hall", 1.01, 1.49, 1.51, 1.01, 1.11, 1.13},
		{"chicken", 1.01, 1.57, 1.58, 1.01, 1.17, 1.19},
	}
}

// GrowthPoint is one year of the Figure 1 series: YouTube upload
// hours per minute and the median SPECint-rate result, both
// normalized to 1.0 at mid-2007. The absolute upload figures follow
// the public Tubular Insights numbers the paper cites; SPEC growth is
// the published median trajectory (≈25%/year over the decade).
type GrowthPoint struct {
	Year          int
	UploadGrowth  float64
	SPECIntGrowth float64
}

// Figure1 returns the growth series of Figure 1.
func Figure1() []GrowthPoint {
	// Upload hours/minute: 2007≈6, growing to 2015≈400, 2016≈500.
	uploads := map[int]float64{
		2006: 4, 2007: 6, 2008: 10, 2009: 15, 2010: 24,
		2011: 48, 2012: 72, 2013: 100, 2014: 300, 2015: 400, 2016: 500,
	}
	out := make([]GrowthPoint, 0, len(uploads))
	base := uploads[2007]
	spec := 1.0 / 1.25 // 2006 relative to the 2007 base
	for year := 2006; year <= 2016; year++ {
		out = append(out, GrowthPoint{
			Year:          year,
			UploadGrowth:  uploads[year] / base,
			SPECIntGrowth: spec,
		})
		spec *= 1.25
	}
	return out
}

// Table2Entropy returns the published entropy of each vbench clip
// (bits/pixel/s), keyed by clip name.
func Table2Entropy() map[string]float64 {
	return map[string]float64{
		"cat": 6.8, "holi": 7.0,
		"desktop": 0.2, "bike": 0.9, "cricket": 3.4, "game2": 4.9, "girl": 5.9, "game3": 6.1,
		"presentation": 0.2, "funny": 2.5, "house": 3.6, "game1": 4.6, "landscape": 7.2, "hall": 7.7,
		"chicken": 5.9,
	}
}
