// Package vbench is a complete, self-contained Go reproduction of
// "vbench: Benchmarking Video Transcoding in the Cloud" (Lottarini et
// al., ASPLOS 2018): the benchmark's 15-video input set (synthesized,
// entropy-calibrated), its five scoring scenarios with reference
// transcodes, a from-scratch video codec whose tool configurations
// realize the x264/x265/vp9 software encoder families and the
// NVENC/QSV fixed-function encoders, and the microarchitectural
// characterization apparatus (cache and branch simulators, Top-Down
// attribution, SIMD ISA analysis) behind the paper's evaluation.
//
// Quick start:
//
//	clip, _ := vbench.ClipByName("girl")
//	seq, _ := clip.Generate(8, 1.0)          // 1/8 scale, 1 second
//	enc := vbench.X264(vbench.PresetMedium)  // reference encoder
//	res, _ := enc.Encode(seq, vbench.Config{RC: vbench.RCConstQP, QP: 23})
//	psnr, _ := vbench.PSNR(seq, res.Recon)
//
// Scenario scoring against the paper's references:
//
//	r := vbench.NewRunner(8, 1.0)
//	table, _, _ := r.Table3() // the VOD study of the paper
//	fmt.Println(table)
//
// See DESIGN.md for the system inventory and the substitutions made
// for the paper's proprietary resources, and EXPERIMENTS.md for
// paper-vs-measured results of every table and figure.
package vbench

import (
	"vbench/internal/codec"
	"vbench/internal/codec/hw"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/harness"
	"vbench/internal/metrics"
	"vbench/internal/perf"
	"vbench/internal/scoring"
	"vbench/internal/video"
)

// Core data types.
type (
	// Frame is a planar YUV 4:2:0 picture.
	Frame = video.Frame
	// Sequence is a list of frames with framerate metadata.
	Sequence = video.Sequence
	// ContentParams drives the synthetic content generator.
	ContentParams = video.ContentParams
	// Clip is one benchmark input video.
	Clip = corpus.Clip
	// Encoder is a configured encoding engine (tools + cost model).
	Encoder = codec.Engine
	// Config carries per-transcode parameters.
	Config = codec.Config
	// Result is the outcome of an encode.
	Result = codec.Result
	// Tools is an encoder feature set.
	Tools = codec.Tools
	// Preset is an effort level on the x264-style ladder.
	Preset = codec.Preset
	// Measurement is the normalized (speed, bitrate, quality) triple.
	Measurement = scoring.Measurement
	// Ratios holds S/B/Q improvement ratios versus a reference.
	Ratios = scoring.Ratios
	// Score is a scenario-scored transcode.
	Score = scoring.Score
	// Scenario is one of the five vbench scoring scenarios.
	Scenario = scoring.Scenario
	// Runner executes benchmark workloads.
	Runner = harness.Runner
	// Counters is the abstract work accounting of an encode.
	Counters = perf.Counters
)

// Rate-control modes.
const (
	RCConstQP = codec.RCConstQP
	RCBitrate = codec.RCBitrate
	RCTwoPass = codec.RCTwoPass
)

// Presets (subset; see codec.Preset for all).
const (
	PresetUltraFast = codec.PresetUltraFast
	PresetVeryFast  = codec.PresetVeryFast
	PresetFast      = codec.PresetFast
	PresetMedium    = codec.PresetMedium
	PresetSlow      = codec.PresetSlow
	PresetVerySlow  = codec.PresetVerySlow
	PresetPlacebo   = codec.PresetPlacebo
)

// Scenarios.
const (
	Upload   = scoring.Upload
	Live     = scoring.Live
	VOD      = scoring.VOD
	Popular  = scoring.Popular
	Platform = scoring.Platform
)

// Clips returns the 15 vbench benchmark clips (Table 2).
func Clips() []Clip { return corpus.VBenchClips() }

// ClipByName returns the named benchmark clip.
func ClipByName(name string) (Clip, error) { return corpus.ClipByName(name) }

// Generate synthesizes a video from content parameters.
func Generate(p ContentParams, width, height, frames int, fps float64) (*Sequence, error) {
	return video.Generate(p, width, height, frames, fps)
}

// X264 returns the reference software encoder (libx264 analogue).
func X264(p Preset) *Encoder { return profiles.X264(p) }

// X265 returns the HEVC-generation encoder (libx265 analogue).
func X265(p Preset) *Encoder { return profiles.X265(p) }

// VP9 returns the libvpx-vp9-analogue encoder.
func VP9(p Preset) *Encoder { return profiles.VP9(p) }

// NVENC returns the NVIDIA-NVENC-analogue fixed-function encoder.
func NVENC() *Encoder { return hw.NVENC() }

// QSV returns the Intel-Quick-Sync-analogue fixed-function encoder.
func QSV() *Encoder { return hw.QSV() }

// Decode parses a bitstream produced by any of the encoders and
// reconstructs the video (bit-identical to the encoder's Result.Recon).
func Decode(bitstream []byte) (*Sequence, error) {
	seq, _, err := codec.Decode(bitstream)
	return seq, err
}

// PSNR returns the average YCbCr PSNR (dB) of a transcode against its
// source.
func PSNR(ref, transcoded *Sequence) (float64, error) {
	return metrics.SequencePSNR(ref, transcoded)
}

// SSIM returns the mean luma structural similarity of a transcode.
func SSIM(ref, transcoded *Sequence) (float64, error) {
	return metrics.SequenceSSIM(ref, transcoded)
}

// Bitrate normalizes a compressed size to bits/pixel/second.
func Bitrate(compressedBytes int64, width, height int, seconds float64) (float64, error) {
	return metrics.Bitrate(compressedBytes, width, height, seconds)
}

// NewRunner returns a benchmark runner at the given linear resolution
// scale (1 = paper scale, default 8) and clip duration in seconds
// (paper uses 5).
func NewRunner(scale int, durationSeconds float64) *Runner {
	return harness.NewRunner(scale, durationSeconds)
}

// EvaluateScenario applies a scenario's constraint and score (Table 1)
// to candidate-vs-reference measurements. realTimeMPS is the Live
// scenario's output pixel rate (ignored by other scenarios).
func EvaluateScenario(s Scenario, candidate, reference Measurement, realTimeMPS float64) (Score, error) {
	ratios, err := scoring.ComputeRatios(candidate, reference)
	if err != nil {
		return Score{}, err
	}
	return scoring.Evaluate(s, ratios, scoring.Constraint{
		CandidatePSNR:     candidate.PSNR,
		CandidateSpeedMPS: candidate.SpeedMPS,
		RealTimeMPS:       realTimeMPS,
	}), nil
}

// WriteY4M serializes a sequence as YUV4MPEG2.
var WriteY4M = video.WriteY4M

// ReadY4M parses a YUV4MPEG2 stream.
var ReadY4M = video.ReadY4M
