package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// parseTrace serializes t's spans and parses them back.
func parseTrace(t *testing.T, tr *Tracer) *ChromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestParseChromeTraceRoundTrip(t *testing.T) {
	tr := NewProcessTracer("proc-a")
	sp := tr.Start("work")
	sp.SetID("w1")
	sp.Arg("job", 7)
	sp.End()

	ct := parseTrace(t, tr)
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", ct.DisplayTimeUnit)
	}
	if got := ct.ProcessName(); got != "proc-a" {
		t.Errorf("process name = %q, want proc-a", got)
	}
	if ct.EpochUS() == 0 {
		t.Error("trace carries no clock_sync anchor")
	}
	var span *ChromeEvent
	for i := range ct.TraceEvents {
		if ct.TraceEvents[i].Ph == "X" {
			span = &ct.TraceEvents[i]
		}
	}
	if span == nil {
		t.Fatal("no X event in trace")
	}
	if span.Name != "work" || span.SpanID() != "w1" {
		t.Errorf("span = %+v, want name work id w1", span)
	}
	if job, ok := span.Args["job"].(float64); !ok || job != 7 {
		t.Errorf("span args = %v, want job 7", span.Args)
	}
}

func TestMergeChromeTracesLinksAcrossProcesses(t *testing.T) {
	master := NewProcessTracer("master")
	lease := master.Start("lease")
	lease.SetID("job1.a1")
	lease.End()
	solo := master.Start("solo") // no identity, links to nothing
	solo.End()

	worker := NewProcessTracer("worker")
	exec := worker.Start("execute")
	exec.SetID("job1.a1.exec@w1")
	exec.SetParent("job1.a1")
	exec.End()
	lost := worker.Start("lost")
	lost.SetID("job9.a1.exec@w1")
	lost.SetParent("job9.a1") // parent no process defines
	lost.End()

	var out bytes.Buffer
	stats, err := MergeChromeTraces(&out, []*ChromeTrace{parseTrace(t, master), parseTrace(t, worker)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processes != 2 || stats.Spans != 4 {
		t.Errorf("stats = %+v, want 2 processes 4 spans", stats)
	}
	if stats.Links != 1 {
		t.Errorf("links = %d, want 1", stats.Links)
	}
	if stats.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", stats.Orphans)
	}

	merged, err := ParseChromeTrace(&out)
	if err != nil {
		t.Fatal(err)
	}
	// Both processes keep their names under distinct pids, and the
	// resolved link materializes as an s/f flow pair.
	names := map[int]string{}
	var flowS, flowF *ChromeEvent
	for i := range merged.TraceEvents {
		e := &merged.TraceEvents[i]
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				names[e.Pid], _ = e.Args["name"].(string)
			}
		case "s":
			flowS = e
		case "f":
			flowF = e
		}
	}
	if names[1] != "master" || names[2] != "worker" {
		t.Errorf("process names = %v, want master/worker under pids 1/2", names)
	}
	if flowS == nil || flowF == nil {
		t.Fatal("merged trace lacks the s/f flow pair")
	}
	if flowS.Pid != 1 || flowF.Pid != 2 || flowS.ID != flowF.ID {
		t.Errorf("flow pair = %+v / %+v, want master→worker with shared id", flowS, flowF)
	}
	if !strings.Contains(flowS.Name, "fleet.link") {
		t.Errorf("flow name = %q, want fleet.link", flowS.Name)
	}
}

func TestMergeAlignsClocks(t *testing.T) {
	// Hand-built inputs with controlled anchors: process B started
	// 1500us after process A, so B's spans shift right by 1500us.
	a := &ChromeTrace{TraceEvents: []ChromeEvent{
		{Ph: "M", Pid: 1, Name: "clock_sync", Args: map[string]interface{}{"epoch_us": float64(1_000_000)}},
		{Ph: "X", Pid: 1, Tid: 1, Ts: 100, Dur: 50, Name: "a"},
	}}
	b := &ChromeTrace{TraceEvents: []ChromeEvent{
		{Ph: "M", Pid: 1, Name: "clock_sync", Args: map[string]interface{}{"epoch_us": float64(1_001_500)}},
		{Ph: "X", Pid: 1, Tid: 1, Ts: 100, Dur: 50, Name: "b"},
	}}
	var out bytes.Buffer
	if _, err := MergeChromeTraces(&out, []*ChromeTrace{a, b}); err != nil {
		t.Fatal(err)
	}
	merged, err := ParseChromeTrace(&out)
	if err != nil {
		t.Fatal(err)
	}
	ts := map[string]float64{}
	for _, e := range merged.TraceEvents {
		if e.Ph == "X" {
			ts[e.Name] = e.Ts
		}
	}
	if ts["a"] != 100 {
		t.Errorf("earliest process shifted: ts = %v, want 100", ts["a"])
	}
	if ts["b"] != 1600 {
		t.Errorf("later process ts = %v, want 1600 (100 + 1500 epoch skew)", ts["b"])
	}
}
