// Package profiles instantiates the software encoder families the
// paper evaluates, as tool configurations of the vbench codec engine:
//
//   - X264: the reference encoder family (libx264 analogue), spanning
//     the ultrafast→placebo preset ladder;
//   - X265: the HEVC-generation encoder (libx265 analogue) — larger
//     transforms, richer entropy contexts, deeper searches: better
//     compression for substantially more computation;
//   - VP9: the libvpx-vp9 analogue — compression slightly ahead of
//     X265, speed slightly behind, mirroring Figure 2 of the paper.
//
// The compression differences between the families come from real
// algorithmic tool differences; the timing differences come from the
// deterministic cost models plus the genuinely larger amount of work
// the stronger tools perform.
package profiles

import (
	"vbench/internal/codec"
	"vbench/internal/codec/motion"
	"vbench/internal/perf"
)

// X264 returns the reference software encoder at the given preset,
// timed on the paper's reference CPU model.
func X264(p codec.Preset) *codec.Engine {
	return &codec.Engine{
		Tools: codec.BaselineTools(p),
		Model: perf.ReferenceCPU(),
	}
}

// X265 returns the HEVC-generation encoder at the given preset. Tool
// upgrades over X264 at the same preset: 8×8 transforms at every
// level, rich entropy contexts, wider motion search, more references,
// and trellis quantization from "fast" up. The cost model charges
// 1.8× cycles per op for the transform/prediction kernels, reflecting
// the larger block sizes and added filtering of HEVC-class tools that
// the engine does not model structurally.
func X265(p codec.Preset) *codec.Engine {
	t := codec.BaselineTools(p)
	t.Name = "swx265-" + p.String()
	t.Entropy = codec.EntropyArith
	t.RichContexts = true
	t.Transform8x8 = true
	t.SharpInterp = true
	t.Intra4x4 = true
	t.SearchRange = t.SearchRange * 3 / 2
	if t.MaxRefs < 2 {
		t.MaxRefs = 2
	}
	if p >= codec.PresetFast {
		t.Trellis = true
		t.AdaptiveQuant = true
	}
	if p >= codec.PresetSlow {
		t.RDMode = true
		t.MaxRefs++
	}
	m := perf.ReferenceCPU()
	m.Name = "i7-6700K/x265"
	for _, k := range []perf.Kernel{perf.KDCT, perf.KIntra, perf.KInterp, perf.KDeblock} {
		m.CyclesPerOp[k] *= 1.8
	}
	m.CyclesPerOp[perf.KControl] *= 1.6
	return &codec.Engine{Tools: t, Model: m}
}

// VP9 returns the libvpx-vp9 analogue at the given preset. Relative
// to X265 it searches wider still and pays more per control decision
// (libvpx's recursive partition search), matching the paper's
// observation that vp9 lands slightly ahead of x265 on compression
// and slightly behind on speed.
func VP9(p codec.Preset) *codec.Engine {
	t := codec.BaselineTools(p)
	t.Name = "swvp9-" + p.String()
	t.Entropy = codec.EntropyArith
	t.RichContexts = true
	t.Transform8x8 = true
	t.SharpInterp = true
	t.Intra4x4 = true
	t.Search = motion.SearchHex
	t.SearchRange = t.SearchRange * 2
	if t.SearchRange > 48 {
		t.SearchRange = 48
	}
	t.SubPel = 2
	if t.MaxRefs < 3 {
		t.MaxRefs = 3
	}
	t.Trellis = true
	t.AdaptiveQuant = true
	if p >= codec.PresetSlow {
		t.RDMode = true
	}
	m := perf.ReferenceCPU()
	m.Name = "i7-6700K/vp9"
	for _, k := range []perf.Kernel{perf.KDCT, perf.KIntra, perf.KInterp, perf.KDeblock} {
		m.CyclesPerOp[k] *= 1.9
	}
	m.CyclesPerOp[perf.KControl] *= 2.2
	m.CyclesPerOp[perf.KEntropy] *= 1.2
	return &codec.Engine{Tools: t, Model: m}
}

// Family identifies a software encoder family.
type Family int

// The software encoder families.
const (
	FamilyX264 Family = iota
	FamilyX265
	FamilyVP9
)

// String names the family with the conventional library name.
func (f Family) String() string {
	switch f {
	case FamilyX264:
		return "libx264"
	case FamilyX265:
		return "libx265"
	case FamilyVP9:
		return "libvpx-vp9"
	}
	return "unknown"
}

// New builds an engine for the family at the given preset.
func New(f Family, p codec.Preset) *codec.Engine {
	switch f {
	case FamilyX264:
		return X264(p)
	case FamilyX265:
		return X265(p)
	case FamilyVP9:
		return VP9(p)
	}
	panic("profiles: unknown family")
}
