package syncx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCPUGateBoundsConcurrency(t *testing.T) {
	g := NewCPUGate(3)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Acquire()
			defer g.Release()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("gate admitted %d concurrent holders, capacity 3", p)
	}
}

func TestCPUGateAcquireOrQuit(t *testing.T) {
	g := NewCPUGate(1)
	quit := make(chan struct{})
	if !g.AcquireOrQuit(quit) {
		t.Fatal("AcquireOrQuit failed with a free slot and open quit")
	}
	// Gate is now full: a closed quit must release the waiter without
	// granting a slot.
	closed := make(chan struct{})
	close(closed)
	if g.AcquireOrQuit(closed) {
		t.Fatal("AcquireOrQuit granted a slot past capacity")
	}
	// A waiter blocked on a full gate must wake when quit closes.
	got := make(chan bool, 1)
	go func() { got <- g.AcquireOrQuit(quit) }()
	select {
	case ok := <-got:
		t.Fatalf("AcquireOrQuit returned %v while gate full and quit open", ok)
	case <-time.After(10 * time.Millisecond):
	}
	close(quit)
	select {
	case ok := <-got:
		if ok {
			t.Fatal("AcquireOrQuit reported a slot after quit closed on a full gate")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AcquireOrQuit did not wake on quit")
	}
	g.Release()
	if g.Capacity() != 1 {
		t.Fatalf("capacity %d want 1", g.Capacity())
	}
}

// TestCPUGateConcurrentFanOuts models several concurrent encodes
// sharing a capacity-1 gate, each using the caller-participates join:
// the spawner drains its own queue without ever blocking on the gate,
// helpers join only via AcquireOrQuit. An earlier lend-based design
// deadlocked exactly here — one spawner's non-blocking "lend" could
// steal the token a different fan-out's worker had deposited, leaving
// that worker stuck in Release while its spawner waited on it.
func TestCPUGateConcurrentFanOuts(t *testing.T) {
	g := NewCPUGate(1)
	done := make(chan struct{})
	go func() {
		var outer sync.WaitGroup
		for e := 0; e < 3; e++ {
			outer.Add(1)
			go func() {
				defer outer.Done()
				jobs := make(chan int, 8)
				for j := 0; j < 8; j++ {
					jobs <- j
				}
				close(jobs)
				quit := make(chan struct{})
				var wg sync.WaitGroup
				for h := 0; h < 2; h++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if !g.AcquireOrQuit(quit) {
							return
						}
						defer g.Release()
						for range jobs {
							time.Sleep(10 * time.Microsecond)
						}
					}()
				}
				for range jobs {
					time.Sleep(10 * time.Microsecond)
				}
				close(quit)
				wg.Wait()
			}()
		}
		outer.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent fan-outs deadlocked on a capacity-1 gate")
	}
}
