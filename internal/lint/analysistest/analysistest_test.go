package analysistest

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"vbench/internal/lint/analysis"
)

// toy flags every call to a function literally named "bad" and
// exports a "marked <name>" fact for every Fact* function — just
// enough surface to exercise diagnostic matching, suppression, and
// fact directives in the runner.
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "test analyzer for the analysistest runner",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if strings.HasPrefix(fd.Name.Name, "Fact") {
					if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						pass.ExportFunctionFact(fn, "marked %s", fd.Name.Name)
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
					return true
				})
			}
		}
		return nil
	},
}

// fakeTB records runner output instead of failing the real test.
type fakeTB struct {
	errs  []string
	fatal string
}

type fatalSentinel struct{ msg string }

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...interface{}) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatalf(format string, args ...interface{}) {
	f.fatal = fmt.Sprintf(format, args...)
	panic(fatalSentinel{f.fatal})
}

// runWith invokes Run, absorbing a Fatalf panic the way testing.T
// absorbs runtime.Goexit.
func runWith(fake *fakeTB, dir string, a *analysis.Analyzer) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fatalSentinel); !ok {
				panic(r)
			}
		}
	}()
	Run(fake, dir, a)
}

func TestRunnerAcceptsCorrectExpectations(t *testing.T) {
	fake := &fakeTB{}
	runWith(fake, TestData(t), toy)
	if fake.fatal != "" {
		t.Fatalf("runner aborted: %s", fake.fatal)
	}
	if len(fake.errs) != 0 {
		t.Fatalf("runner reported errors on a correct module:\n%s", strings.Join(fake.errs, "\n"))
	}
}

func TestRunnerReportsMismatches(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "mismatch", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fake := &fakeTB{}
	runWith(fake, dir, toy)
	if fake.fatal != "" {
		t.Fatalf("runner aborted: %s", fake.fatal)
	}
	all := strings.Join(fake.errs, "\n")
	for _, want := range []string{
		"unexpected diagnostic",        // unreported() finding with no want
		`no diagnostic matching "call`, // overclaimed() want never fires
		`no toy fact matching "marked`, // wrongFact() fact directive unmet
	} {
		if !strings.Contains(all, want) {
			t.Errorf("runner did not report %q; got:\n%s", want, all)
		}
	}
	if len(fake.errs) != 3 {
		t.Errorf("runner reported %d errors, want 3:\n%s", len(fake.errs), all)
	}
}

func TestWantPatternParsing(t *testing.T) {
	pats, err := wantPatterns(`// want "plain" toy:"a fact" "second"`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []wantPattern{{"", "plain"}, {"toy", "a fact"}, {"", "second"}}
	if len(pats) != len(want) {
		t.Fatalf("got %d patterns, want %d", len(pats), len(want))
	}
	for i := range want {
		if pats[i] != want[i] {
			t.Errorf("pattern %d = %+v, want %+v", i, pats[i], want[i])
		}
	}
	if _, err := wantPatterns(`// want 123:"x"`); err == nil {
		t.Errorf("numeric analyzer name accepted")
	}
	if _, err := wantPatterns(`// want toy:unquoted`); err == nil {
		t.Errorf("unquoted fact pattern accepted")
	}
	if pats, err := wantPatterns(`// not a want`); pats != nil || err != nil {
		t.Errorf("non-directive comment misparsed: %v %v", pats, err)
	}
}
