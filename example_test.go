package vbench_test

import (
	"fmt"

	"vbench"
)

// Encoding one benchmark clip and verifying the decode loop.
func Example() {
	clip, err := vbench.ClipByName("bike")
	if err != nil {
		panic(err)
	}
	seq, err := clip.Generate(16, 0.3) // 1/16 scale, 0.3 s
	if err != nil {
		panic(err)
	}
	enc := vbench.X264(vbench.PresetVeryFast)
	res, err := enc.Encode(seq, vbench.Config{RC: vbench.RCConstQP, QP: 28})
	if err != nil {
		panic(err)
	}
	dec, err := vbench.Decode(res.Bitstream)
	if err != nil {
		panic(err)
	}
	match := true
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
			match = false
		}
	}
	fmt.Println("frames:", len(dec.Frames), "bit-exact:", match)
	// Output: frames: 9 bit-exact: true
}

// Scoring a candidate transcode under the VOD scenario (Table 1).
func ExampleEvaluateScenario() {
	reference := vbench.Measurement{SpeedMPS: 10, BitratePPS: 1.0, PSNR: 40}
	candidate := vbench.Measurement{SpeedMPS: 80, BitratePPS: 1.25, PSNR: 40.1}
	score, err := vbench.EvaluateScenario(vbench.VOD, candidate, reference, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("valid=%v S=%.1f B=%.1f score=%.1f\n",
		score.Valid, score.Ratios.S, score.Ratios.B, score.Value)
	// Output: valid=true S=8.0 B=0.8 score=6.4
}

// The 15 benchmark videos of Table 2.
func ExampleClips() {
	clips := vbench.Clips()
	fmt.Println(len(clips), "clips, first:", clips[0].Name, "last:", clips[len(clips)-1].Name)
	// Output: 15 clips, first: cat last: chicken
}
