package cas

import "testing"

// TestFingerprintCurrent is the golden guard on the baked fingerprint:
// it recomputes the digest from the encode-affecting source trees and
// compares it to the generated constant. It fails after any edit under
// those trees until the constant is regenerated — which is the point:
// a stale fingerprint would let entries from the previous encoder
// version hit.
func TestFingerprintCurrent(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeFingerprint(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(); got != want {
		t.Errorf("baked codec fingerprint %q is stale (source digests to %q): run make fingerprint", got, want)
	}
}

// TestFingerprintShape pins the format contract other tests and the
// key serialization rely on.
func TestFingerprintShape(t *testing.T) {
	if len(Fingerprint()) != 16 {
		t.Errorf("fingerprint %q is not 16 hex chars", Fingerprint())
	}
}
