package scoring

import (
	"errors"
	"fmt"
	"math"
)

// BisectBitrate finds the lowest bitrate (bits/second) at which an
// encode meets a quality target, the procedure the paper uses for the
// GPU studies ("varied the target bitrate using a bisection algorithm
// until results satisfy the quality constraints by a small margin").
//
// eval encodes at the given bitrate and returns the achieved quality
// in dB. Quality is assumed monotone non-decreasing in bitrate; the
// search tolerates small local non-monotonicity by keeping the best
// feasible point seen. Returns the chosen bitrate and its quality.
func BisectBitrate(targetPSNR float64, loBPS, hiBPS float64, iterations int,
	eval func(bitrateBPS float64) (psnr float64, err error)) (float64, float64, error) {

	if loBPS <= 0 || hiBPS <= loBPS {
		return 0, 0, fmt.Errorf("scoring: invalid bisection range [%v, %v]", loBPS, hiBPS)
	}
	if iterations < 1 {
		return 0, 0, errors.New("scoring: bisection needs at least one iteration")
	}

	// Check feasibility at the top of the range first.
	hiPSNR, err := eval(hiBPS)
	if err != nil {
		return 0, 0, err
	}
	if hiPSNR < targetPSNR {
		return 0, 0, fmt.Errorf("scoring: target %.2f dB unreachable (%.2f dB at %.0f bps)", targetPSNR, hiPSNR, hiBPS)
	}
	bestBPS, bestPSNR := hiBPS, hiPSNR

	lo, hi := math.Log(loBPS), math.Log(hiBPS)
	for i := 0; i < iterations; i++ {
		mid := math.Exp((lo + hi) / 2)
		psnr, err := eval(mid)
		if err != nil {
			return 0, 0, err
		}
		if psnr >= targetPSNR {
			if mid < bestBPS {
				bestBPS, bestPSNR = mid, psnr
			}
			hi = math.Log(mid)
		} else {
			lo = math.Log(mid)
		}
	}
	return bestBPS, bestPSNR, nil
}
