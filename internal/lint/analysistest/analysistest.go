// Package analysistest runs an analyzer over a testdata tree and
// checks its diagnostics against expectations embedded in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Layout: <test dir>/testdata/src is a self-contained Go module
// (with its own go.mod, typically `module lint.test`) holding one or
// more packages. A line that should be flagged carries a trailing
// comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// Every want pattern must match a diagnostic reported on that line,
// every diagnostic must be matched by a want, and suppressed
// diagnostics (//lint:ignore) count as unreported.
//
// Function-level facts (analysis.Pass.ExportFunctionFact) are
// asserted with the qualified form on the line of the function's
// declaration:
//
//	func f() { // want locksafe:"acquires b while holding a"
//
// where the identifier names the exporting analyzer and the regexp
// must match the fact text. Fact directives that match nothing are
// errors; facts without a directive are not (facts are a derived
// model, asserted only where a test cares).
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vbench/internal/lint/analysis"
)

// TB is the subset of testing.T the runner needs; it exists so the
// runner itself is unit-testable against a recording fake.
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

var _ TB = (*testing.T)(nil)

// TestData returns the absolute path of the calling test's
// testdata/src module.
func TestData(t TB) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return dir
}

// Run loads every package under dir and applies the analyzer,
// comparing diagnostics and facts against the // want expectations.
func Run(t TB, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, nil, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no packages under %s", dir)
	}
	diags, facts, err := analysis.RunAll(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	pending := map[key][]analysis.Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		pending[k] = append(pending[k], d)
	}
	factsAt := map[key][]analysis.Fact{}
	for _, f := range facts {
		k := key{f.Pos.Filename, f.Pos.Line}
		factsAt[k] = append(factsAt[k], f)
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, err := wantPatterns(c.Text)
					if err != nil {
						t.Errorf("%s: %v", pkg.Fset.Position(c.Pos()), err)
						continue
					}
					if patterns == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, pat := range patterns {
						re, err := regexp.Compile(pat.re)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, pat.re, err)
							continue
						}
						if pat.analyzer != "" {
							if !matchFact(factsAt[k], pat.analyzer, re) {
								t.Errorf("%s: no %s fact matching %q", pos, pat.analyzer, pat.re)
							}
							continue
						}
						if i := matchDiag(pending[k], re); i >= 0 {
							pending[k] = append(pending[k][:i], pending[k][i+1:]...)
						} else {
							t.Errorf("%s: no diagnostic matching %q", pos, pat.re)
						}
					}
				}
			}
		}
	}
	for _, rest := range pending {
		for _, d := range rest {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func matchDiag(diags []analysis.Diagnostic, re *regexp.Regexp) int {
	for i, d := range diags {
		if re.MatchString(d.Message) {
			return i
		}
	}
	return -1
}

func matchFact(facts []analysis.Fact, analyzer string, re *regexp.Regexp) bool {
	for _, f := range facts {
		if f.Analyzer == analyzer && re.MatchString(f.Text) {
			return true
		}
	}
	return false
}

// wantPattern is one expectation: a plain diagnostic regexp, or a
// fact regexp qualified by the exporting analyzer's name.
type wantPattern struct {
	analyzer string // "" for a diagnostic pattern
	re       string
}

// wantPatterns extracts the expectations from a "// want ..."
// comment, or returns nil when the comment is not a want directive.
// The directive may also be embedded at the end of another comment
// ("//some:directive // want ..."), for lines where the flagged
// construct is itself a comment.
func wantPatterns(comment string) ([]wantPattern, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	var rest string
	if strings.HasPrefix(text, "want ") {
		rest = strings.TrimSpace(strings.TrimPrefix(text, "want"))
	} else if i := strings.Index(text, "// want "); i >= 0 {
		rest = strings.TrimSpace(text[i+len("// want "):])
	} else {
		return nil, nil
	}
	var patterns []wantPattern
	quoted := func(s string) bool {
		return strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "`")
	}
	for rest != "" {
		var p wantPattern
		if !quoted(rest) {
			colon := strings.IndexByte(rest, ':')
			if colon <= 0 || !isIdent(rest[:colon]) {
				return nil, fmt.Errorf("malformed want directive at %q", rest)
			}
			p.analyzer = rest[:colon]
			rest = rest[colon+1:]
			if !quoted(rest) {
				return nil, fmt.Errorf("want fact %s: expected quoted pattern at %q", p.analyzer, rest)
			}
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want directive at %q", rest)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", q, err)
		}
		p.re = unq
		patterns = append(patterns, p)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("want directive with no patterns")
	}
	return patterns, nil
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
