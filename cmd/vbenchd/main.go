// Command vbenchd is the networked master/worker transcoding service
// built on the internal/fleet scheduler: a master owns the durable job
// queue (validated state machine, heartbeat leases, bounded retries)
// and pull-based workers run real vbench codec encodes over HTTP.
//
// Usage:
//
//	vbenchd master -addr 127.0.0.1:7933 -state /tmp/fleet.json
//	vbenchd worker -master http://127.0.0.1:7933 -id w1
//	vbenchd submit -master http://127.0.0.1:7933 -clip girl -encoder x264-medium -scale 16 -duration 0.4
//	vbenchd submit -master http://127.0.0.1:7933 -suite x264-veryfast,x265-medium
//	vbenchd wait   -master http://127.0.0.1:7933 -expect 50 -timeout 120s
//
// The master answers SIGTERM/SIGINT with a graceful drain: the HTTP
// server stops accepting work, and with -state the queue is
// snapshotted so a restarted master resumes exactly where it stopped
// (live workers keep their leases across the restart). Workers answer
// SIGTERM by finishing and acking their in-flight jobs before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vbench/internal/cas"
	"vbench/internal/corpus"
	"vbench/internal/fleet"
	"vbench/internal/harness"
	"vbench/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "master":
		err = runMaster(os.Args[2:])
	case "worker":
		err = runWorker(os.Args[2:])
	case "submit":
		err = runSubmit(os.Args[2:])
	case "wait":
		err = runWait(os.Args[2:])
	case "status":
		err = runStatus(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "vbenchd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbenchd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, strings.TrimSpace(`
usage: vbenchd <subcommand> [flags]

  master   serve the job queue over HTTP
  worker   pull jobs from a master and run real encodes
  submit   enqueue jobs on a master
  wait     block until a master's queue drains, then verify it
  status   render a master's live ops snapshot (or one job's timeline)
  trace    stitch master + worker Chrome-trace files into one timeline

Run "vbenchd <subcommand> -h" for the subcommand's flags.
`))
}

func runMaster(args []string) error {
	fs := flag.NewFlagSet("vbenchd master", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7933", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "heartbeat deadline of a lease")
	maxAttempts := fs.Int("max-attempts", 3, "lease attempts per job before it fails terminally")
	backoff := fs.Duration("backoff", 250*time.Millisecond, "base requeue backoff (doubles per attempt)")
	backoffMax := fs.Duration("backoff-max", 30*time.Second, "requeue backoff cap")
	sweep := fs.Duration("sweep", time.Second, "lease-expiry sweep interval")
	state := fs.String("state", "", "snapshot file: restored at boot, written on shutdown")
	logTransitions := fs.Bool("log-transitions", false, "record the job-state transition log and dump it on shutdown")
	tracePath := fs.String("trace", "", "write a Chrome trace of master-side lease spans here on shutdown")
	debugAddr := fs.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	cacheDir := fs.String("cache-dir", "", "content-addressed transcode cache directory: submissions with a stored result complete instantly, duplicate in-flight submissions dedup onto one job")
	fs.Parse(args)

	opt := fleet.Options{
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		BackoffBase: *backoff,
		BackoffMax:  *backoffMax,
		Metrics:     telemetry.Default,
		RecordLog:   *logTransitions,
	}
	if *cacheDir != "" {
		store, err := cas.Open(*cacheDir, telemetry.Default)
		if err != nil {
			return fmt.Errorf("opening cache %s: %w", *cacheDir, err)
		}
		opt.Cache = store
		fmt.Fprintf(os.Stderr, "vbenchd master: transcode cache at %s (%d entries)\n",
			*cacheDir, store.Stats().DiskEntries)
	}
	q, err := bootQueue(*state, opt)
	if err != nil {
		return err
	}

	srv := fleet.NewServer(q)
	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.NewProcessTracer("vbenchd-master")
		srv.EnableTracing(tracer)
	}
	if *debugAddr != "" {
		stopDebug, err := telemetry.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer func() { _ = stopDebug() }() // best-effort: the process is exiting anyway
		fmt.Fprintf(os.Stderr, "vbenchd master: debug endpoint on http://%s/debug/pprof\n", *debugAddr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "vbenchd master: listening on %s (lease-ttl %v, max-attempts %d)\n",
		ln.Addr(), *leaseTTL, *maxAttempts)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go srv.Sweep(ctx, *sweep)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "vbenchd master: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if *state != "" {
		if err := saveSnapshot(q, *state); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vbenchd master: state saved to %s\n", *state)
	}
	if *logTransitions {
		io.WriteString(os.Stderr, q.TransitionLog())
	}
	if tracer != nil {
		if err := writeTrace(tracer, *tracePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vbenchd master: trace written to %s (%d spans)\n", *tracePath, tracer.Len())
	}
	st := q.Stats()
	fmt.Fprintf(os.Stderr, "vbenchd master: exiting (%d submitted, %d done, %d failed)\n",
		st.Submitted, st.Done, st.Failed)
	return nil
}

// bootQueue restores the snapshot at path when one exists, otherwise
// starts empty.
func bootQueue(path string, opt fleet.Options) (*fleet.Queue, error) {
	if path == "" {
		return fleet.NewQueue(opt), nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return fleet.NewQueue(opt), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	q, err := fleet.Restore(f, opt)
	if err != nil {
		return nil, fmt.Errorf("restoring %s: %w", path, err)
	}
	st := q.Stats()
	fmt.Fprintf(os.Stderr, "vbenchd master: restored %s (%d jobs: %d pending, %d leased, %d done, %d failed)\n",
		path, st.Submitted, st.Pending, st.Leased, st.Done, st.Failed)
	return q, nil
}

// saveSnapshot writes the queue state atomically (write-then-rename).
func saveSnapshot(q *fleet.Queue, path string) error {
	var buf bytes.Buffer
	if err := q.Snapshot(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("vbenchd worker", flag.ExitOnError)
	master := fs.String("master", "http://127.0.0.1:7933", "master base URL")
	id := fs.String("id", "", "worker id (default host-pid)")
	concurrency := fs.Int("concurrency", 1, "jobs run at once (encodes still share the process CPU gate)")
	poll := fs.Duration("poll", 200*time.Millisecond, "idle re-poll interval")
	heartbeat := fs.Duration("heartbeat", 0, "lease renewal interval (0 = a third of the master's lease TTL)")
	tracePath := fs.String("trace", "", "write a Chrome trace of execution spans here on drain")
	noPush := fs.Bool("no-push", false, "do not piggyback worker metric snapshots on heartbeats")
	rowsParallel := fs.Int("rows-parallel", 0, "wavefront rows per slice for encode jobs that don't set it: 0 = share the CPU gate, 1 = serial rows, 2..64 = dedicated row lanes")
	cacheDir := fs.String("cache-dir", "", "shared content-addressed transcode cache directory (serve cached encodes, store fresh ones)")
	fs.Parse(args)

	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.NewProcessTracer("worker-" + *id)
		// Stage clocks feed the worker.stage.* push mirror; they only
		// cost time.Now calls while an encode runs.
		telemetry.EnableStages(true)
	}
	// All progress lines flow through one LineWriter bound to the
	// worker's identity, so colocated workers (and the heartbeat
	// goroutines of one worker) never interleave mid-line and every
	// line carries "[<id> +elapsed]".
	lw := telemetry.NewLineWriter(os.Stderr)
	var store *cas.Store
	if *cacheDir != "" {
		s, err := cas.Open(*cacheDir, telemetry.Default)
		if err != nil {
			return fmt.Errorf("opening cache %s: %w", *cacheDir, err)
		}
		store = s
	}
	w, err := fleet.NewWorker(fleet.WorkerOptions{
		Master:       *master,
		ID:           *id,
		Concurrency:  *concurrency,
		Poll:         *poll,
		Heartbeat:    *heartbeat,
		Log:          lw.Labeled(*id),
		Tracer:       tracer,
		DisablePush:  *noPush,
		RowsParallel: *rowsParallel,
		Cache:        store,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	fmt.Fprintf(os.Stderr, "vbenchd worker %s: pulling from %s\n", *id, *master)
	err = w.Run(ctx)
	if err == nil && tracer != nil {
		if terr := writeTrace(tracer, *tracePath); terr != nil {
			err = terr
		} else {
			fmt.Fprintf(os.Stderr, "vbenchd worker %s: trace written to %s (%d spans)\n", *id, *tracePath, tracer.Len())
		}
	}
	fmt.Fprintf(os.Stderr, "vbenchd worker %s: drained\n", *id)
	return err
}

// writeTrace dumps a tracer's spans as Chrome trace-event JSON.
func writeTrace(t *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("vbenchd submit", flag.ExitOnError)
	master := fs.String("master", "http://127.0.0.1:7933", "master base URL")
	kind := fs.String("kind", fleet.KindEncode, "job kind: encode or noop")
	clip := fs.String("clip", "girl", "corpus clip name (encode jobs)")
	encoder := fs.String("encoder", "x264-medium", `encoder as "family-preset" (encode jobs)`)
	scale := fs.Int("scale", 16, "linear resolution divisor")
	duration := fs.Float64("duration", 0.4, "clip duration in seconds")
	qp := fs.Int("qp", 28, "quantizer (cqp/crf rate control)")
	rc := fs.String("rc", "", "rate control: cqp (default), abr, 2pass")
	bitrate := fs.Float64("bitrate", 0, "target bitrate in bits/s (abr and 2pass)")
	n := fs.Int("n", 1, "copies of the job to submit")
	sleepMS := fs.Int("sleep-ms", 0, "noop job sleep")
	failFirst := fs.Int("fail-first", 0, "inject transient failures on the first N attempts")
	suite := fs.String("suite", "", "submit the full corpus grid against this comma-separated encoder list instead")
	tag := fs.String("tag", "", "opaque label attached to the jobs")
	fs.Parse(args)

	var specs []fleet.JobSpec
	if *suite != "" {
		encs := strings.Split(*suite, ",")
		specs = harness.FleetJobSpecs(corpus.VBenchClips(), encs, *scale, *duration, *qp)
	} else {
		spec := fleet.JobSpec{
			Kind: *kind, Tag: *tag,
			Clip: *clip, Scale: *scale, Duration: *duration,
			Encoder: *encoder, RC: *rc, QP: *qp, BitrateBPS: *bitrate,
			SleepMS: *sleepMS, FailFirst: *failFirst,
		}
		if *kind == fleet.KindNoop {
			spec.Clip, spec.Encoder = "", ""
			spec.Scale, spec.Duration = 0, 0
		}
		for i := 0; i < *n; i++ {
			specs = append(specs, spec)
		}
	}

	var resp fleet.SubmitResponse
	if err := postJSON(*master+"/api/v1/submit", fleet.SubmitRequest{Jobs: specs}, &resp); err != nil {
		return err
	}
	fmt.Printf("submitted %d jobs (ids %d..%d)\n", len(resp.IDs), resp.IDs[0], resp.IDs[len(resp.IDs)-1])
	return nil
}

func runWait(args []string) error {
	fs := flag.NewFlagSet("vbenchd wait", flag.ExitOnError)
	master := fs.String("master", "http://127.0.0.1:7933", "master base URL")
	timeout := fs.Duration("timeout", 2*time.Minute, "give up after this long")
	poll := fs.Duration("poll", 200*time.Millisecond, "stats poll interval")
	expect := fs.Int("expect", -1, "require exactly this many done jobs (-1 = any)")
	fs.Parse(args)

	deadline := time.Now().Add(*timeout)
	var st fleet.Stats
	for {
		if err := getJSON(*master+"/api/v1/stats", &st); err != nil {
			return err
		}
		if st.Submitted > 0 && st.Pending == 0 && st.Leased == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v: %d pending, %d leased, %d done, %d failed",
				*timeout, st.Pending, st.Leased, st.Done, st.Failed)
		}
		time.Sleep(*poll)
	}

	// The queue is drained; verify the exactly-once invariant on every
	// job record.
	var jobs fleet.JobsResponse
	if err := getJSON(*master+"/api/v1/jobs", &jobs); err != nil {
		return err
	}
	bad := 0
	for _, j := range jobs.Jobs {
		switch {
		case j.State == fleet.Done && j.Completions == 1:
		case j.State == fleet.Failed:
			fmt.Fprintf(os.Stderr, "vbenchd wait: job %d failed after %d attempts: %s\n", j.ID, j.Attempt, j.LastErr)
			bad++
		default:
			fmt.Fprintf(os.Stderr, "vbenchd wait: job %d in state %v with %d completions\n", j.ID, j.State, j.Completions)
			bad++
		}
	}
	fmt.Printf("drained: %d done, %d failed (of %d); %d lease expiries, %d retries, %d duplicate acks, %d stale acks\n",
		st.Done, st.Failed, st.Submitted, st.LeaseExpiries, st.Retries, st.DuplicateAcks, st.StaleAcks)
	if bad > 0 {
		return fmt.Errorf("%d jobs violated done-exactly-once", bad)
	}
	if *expect >= 0 && st.Done != *expect {
		return fmt.Errorf("done = %d, want %d", st.Done, *expect)
	}
	return nil
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("vbenchd status", flag.ExitOnError)
	master := fs.String("master", "http://127.0.0.1:7933", "master base URL")
	asJSON := fs.Bool("json", false, "print the raw /status JSON instead of rendering it")
	job := fs.Int("job", 0, "print this job's event timeline instead of the fleet status")
	fs.Parse(args)

	if *job > 0 {
		var tl fleet.TimelineResponse
		if err := getJSON(fmt.Sprintf("%s/api/v1/timeline?id=%d", *master, *job), &tl); err != nil {
			return err
		}
		if tl.Dropped > 0 {
			fmt.Printf("job %d: %d older events dropped by the ring\n", tl.Job, tl.Dropped)
		}
		for _, e := range tl.Events {
			fmt.Println(e.String())
		}
		return nil
	}

	if *asJSON {
		r, err := http.Get(*master + "/status")
		if err != nil {
			return err
		}
		defer r.Body.Close()
		_, err = io.Copy(os.Stdout, r.Body)
		return err
	}

	var st fleet.Status
	if err := getJSON(*master+"/status", &st); err != nil {
		return err
	}
	fmt.Printf("master up %.1fs: %d submitted, %d pending, %d leased, %d done, %d failed\n",
		st.UptimeSeconds, st.Stats.Submitted, st.Stats.Pending, st.Stats.Leased, st.Stats.Done, st.Stats.Failed)
	fmt.Printf("activity: %d leases, %d retries, %d lease expiries, %d duplicate acks, %d stale acks, %d timeline events\n",
		st.Stats.Leases, st.Stats.Retries, st.Stats.LeaseExpiries, st.Stats.DuplicateAcks, st.Stats.StaleAcks, st.TimelineEvents)
	fmt.Printf("policy: lease-ttl %.1fs, max-attempts %d, backoff %.3fs..%.1fs\n",
		st.Policy.LeaseTTLSeconds, st.Policy.MaxAttempts, st.Policy.BackoffBaseSeconds, st.Policy.BackoffMaxSeconds)
	fmt.Printf("leases (%d):\n", len(st.Leases))
	for _, l := range st.Leases {
		fmt.Printf("  job %d attempt %d worker %s age %.1fs expires in %.1fs\n",
			l.Job, l.Attempt, l.Worker, l.AgeSeconds, l.ExpiresSeconds)
	}
	fmt.Printf("workers (%d):\n", len(st.Workers))
	for _, w := range st.Workers {
		live := "live"
		if !w.Live {
			live = "silent"
		}
		wave := ""
		if w.WaveOccupancy > 0 {
			wave = fmt.Sprintf(", wave occupancy %.1f", w.WaveOccupancy)
		}
		fmt.Printf("  %s %s (seen %.1fs ago): %d in flight, %d leases, %d heartbeats, %d completions, %d failures%s\n",
			w.ID, live, w.LastSeenSeconds, w.InFlight, w.Leases, w.Heartbeats, w.Completions, w.Failures, wave)
	}
	return nil
}

func runTrace(args []string) error {
	fs := flag.NewFlagSet("vbenchd trace", flag.ExitOnError)
	out := fs.String("o", "", "write the stitched trace here (default stdout)")
	minProcs := fs.Int("min-processes", 0, "fail unless the merge spans at least this many processes")
	minLinks := fs.Int("min-links", 0, "fail unless at least this many cross-process parent links resolved")
	maxOrphans := fs.Int("max-orphans", -1, "fail if more spans than this declared unresolvable parents (-1 = no limit)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("trace: need at least one input trace file")
	}

	inputs := make([]*telemetry.ChromeTrace, 0, fs.NArg())
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		t, err := telemetry.ParseChromeTrace(f)
		_ = f.Close() // read-only; a parse error takes precedence
		if err != nil {
			return fmt.Errorf("trace: %s: %w", path, err)
		}
		inputs = append(inputs, t)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	stats, err := telemetry.MergeChromeTraces(w, inputs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vbenchd trace: %d processes, %d spans, %d cross-process links, %d orphans\n",
		stats.Processes, stats.Spans, stats.Links, stats.Orphans)
	if stats.Processes < *minProcs {
		return fmt.Errorf("trace: %d processes, want >= %d", stats.Processes, *minProcs)
	}
	if stats.Links < *minLinks {
		return fmt.Errorf("trace: %d cross-process links, want >= %d", stats.Links, *minLinks)
	}
	if *maxOrphans >= 0 && stats.Orphans > *maxOrphans {
		return fmt.Errorf("trace: %d orphaned spans, want <= %d", stats.Orphans, *maxOrphans)
	}
	return nil
}

func postJSON(url string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return fmt.Errorf("%s: %s: %s", url, r.Status, bytes.TrimSpace(b))
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func getJSON(url string, resp interface{}) error {
	r, err := http.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return fmt.Errorf("%s: %s: %s", url, r.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
