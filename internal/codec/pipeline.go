package codec

import (
	"sync"

	"vbench/internal/perf"
	"vbench/internal/video"
)

// Cross-frame pipelining: the source-side half of per-frame encode
// work — padding, denoise, scene-cut classification, and adaptive-
// quantization activity analysis — depends only on the source frames,
// never on reconstructions or rate-control state. A frameFeeder runs
// that half ahead of the encode loop through a bounded ring, so frame
// N+1's analysis overlaps frame N's encode; in two-pass mode the
// feeder is started before the measurement pass, so pass-2 analysis
// overlaps pass-1 encoding as well.
//
// Determinism: analysis is consumed strictly in frame order, the
// scene-cut EMA chain is produced strictly in frame order by a single
// producer at a time, and each frame's perf.Counters are accumulated
// privately and merged at consumption — so bitstream, reconstruction,
// and counters are byte-identical to the serial path regardless of how
// far ahead the feeder runs.
//
// Gate discipline (see syncx.CPUGate): the helper goroutine only
// analyzes while holding a gate slot won via AcquireOrQuit, and always
// releases the slot before waiting for ring space, so it never blocks
// other gate users on the bounded hand-off. The consumer, which
// represents its caller's already-granted execution context, never
// touches the gate: when no helper is mid-frame it analyzes inline.

// pipelineDepth bounds how many analyzed frames may wait between the
// feeder and the encode loop. Depth 3 hides one frame of analysis
// latency with slack without pinning more than a few padded source
// frames.
const pipelineDepth = 3

// frameAnalysis is everything the encode loop needs from the source
// side of one frame.
type frameAnalysis struct {
	src        *video.Frame // padded (and possibly denoised) source
	ftype      int
	varBits    []int
	avgVarBits int
	c          perf.Counters // analysis work, merged at consumption
}

// frameFeeder produces frameAnalysis values in frame order into a
// bounded ring consumed by Engine.Encode's frame loop.
type frameFeeder struct {
	eng    *Engine
	cfg    Config
	frames []*video.Frame
	mbW    int
	mbH    int
	aq     bool

	mu   sync.Mutex
	cond sync.Cond
	ring [pipelineDepth]frameAnalysis
	// produced/consumed index the next frame to produce/consume;
	// produced-consumed slots are full. producing marks a goroutine
	// mid-analysis (single-producer exclusivity: the EMA chain below is
	// strictly ordered). closed stops production permanently.
	produced  int
	consumed  int
	producing bool
	closed    bool

	// Producer-only state for the scene-cut signal: each frame's mean
	// absolute difference against the previous source is compared to an
	// exponential moving average of recent differences; a sudden jump
	// marks a cut. Guarded by mu between producers (only ever one at a
	// time).
	prevSrc *video.Frame
	madEMA  float64
}

func newFrameFeeder(e *Engine, cfg Config, frames []*video.Frame, mbW, mbH int, aq bool) *frameFeeder {
	ff := &frameFeeder{eng: e, cfg: cfg, frames: frames, mbW: mbW, mbH: mbH, aq: aq, madEMA: -1}
	ff.cond.L = &ff.mu
	return ff
}

// analyze runs the source-side work for frame i. Called without mu
// held; prevSrc/madEMA access is safe because the caller holds the
// producing flag (single-producer exclusivity).
func (ff *frameFeeder) analyze(i int) frameAnalysis {
	var fa frameAnalysis
	srcP := padFrame(ff.frames[i])
	if ff.eng.Tools.Denoise > 0 {
		srcP = denoiseFrame(srcP, ff.eng.Tools.Denoise, &fa.c)
	}
	fa.src = srcP
	fa.ftype = frameP
	switch {
	case i == 0, ff.cfg.KeyInterval > 0 && i%ff.cfg.KeyInterval == 0:
		fa.ftype = frameI
	case ff.eng.Tools.SceneCut:
		mad := frameMAD(srcP, ff.prevSrc, &fa.c)
		if ff.madEMA >= 0 && mad > 3*ff.madEMA+6 {
			fa.ftype = frameI
		} else {
			if ff.madEMA < 0 {
				ff.madEMA = mad
			} else {
				ff.madEMA = 0.7*ff.madEMA + 0.3*mad
			}
		}
	}
	if ff.aq {
		fa.varBits, fa.avgVarBits = computeActivity(srcP, ff.mbW, ff.mbH, &fa.c)
	}
	ff.prevSrc = srcP
	return fa
}

// next returns frame analysis in strict frame order. If the helper has
// run ahead, the value is ready; otherwise the consumer analyzes the
// frame inline (unless a helper is mid-frame, in which case it waits
// for that frame to land).
func (ff *frameFeeder) next() frameAnalysis {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	for {
		if ff.produced > ff.consumed {
			slot := &ff.ring[ff.consumed%pipelineDepth]
			fa := *slot
			*slot = frameAnalysis{}
			ff.consumed++
			obsWaveDepth.Observe(float64(ff.produced - ff.consumed))
			ff.cond.Broadcast()
			return fa
		}
		if ff.producing {
			// A helper is mid-analysis on exactly the frame we need;
			// wait for it rather than racing the EMA chain.
			ff.cond.Wait()
			continue
		}
		i := ff.produced
		ff.producing = true
		ff.mu.Unlock()
		fa := ff.analyze(i)
		ff.mu.Lock()
		ff.ring[i%pipelineDepth] = fa
		ff.produced++
		ff.producing = false
		ff.cond.Broadcast()
	}
}

// produceAhead analyzes frames while ring space is free. Returns false
// when there is nothing left to produce (closed or all frames done),
// true when it stopped for lack of space. Called without mu held.
func (ff *frameFeeder) produceAhead() bool {
	ff.mu.Lock()
	for {
		if ff.closed || ff.produced >= len(ff.frames) {
			ff.mu.Unlock()
			return false
		}
		if ff.produced-ff.consumed >= pipelineDepth || ff.producing {
			ff.mu.Unlock()
			return true
		}
		i := ff.produced
		ff.producing = true
		ff.mu.Unlock()
		fa := ff.analyze(i)
		ff.mu.Lock()
		ff.ring[i%pipelineDepth] = fa
		ff.produced++
		ff.producing = false
		ff.cond.Broadcast()
	}
}

// waitSpace blocks until a ring slot frees up (and no other producer is
// mid-frame). Returns false when production is finished. Called without
// mu held and, critically, without a gate slot held.
func (ff *frameFeeder) waitSpace() bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	for {
		if ff.closed || ff.produced >= len(ff.frames) {
			return false
		}
		if ff.produced-ff.consumed < pipelineDepth && !ff.producing {
			return true
		}
		ff.cond.Wait()
	}
}

// serve is the helper goroutine's loop: win a gate slot (when gated),
// analyze ahead until the ring is full, release the slot, then wait for
// space. quit aborts a pending gate acquire at encode teardown.
func (ff *frameFeeder) serve(quit <-chan struct{}, gated bool) {
	for {
		if gated {
			if !cpuGate.AcquireOrQuit(quit) {
				return
			}
		}
		more := ff.produceAhead()
		if gated {
			cpuGate.Release()
		}
		if !more {
			return
		}
		if !ff.waitSpace() {
			return
		}
	}
}

// stop ends production; any helper blocked on ring space returns.
func (ff *frameFeeder) stop() {
	ff.mu.Lock()
	ff.closed = true
	ff.cond.Broadcast()
	ff.mu.Unlock()
}
