package codec

import "vbench/internal/codec/motion"

// This file holds the scratch memory that makes the per-macroblock
// encode and decode paths allocation-free in steady state. Three
// mechanisms cooperate (see DESIGN.md, "Memory management in the
// encode hot path"):
//
//   - levelArena: one flat []int32 backing array per slice
//     encoder/decoder from which every quantized-level slice is bump-
//     allocated, reset at each macroblock.
//   - candPool: a small free list of mbCand values recycled across
//     mode trials, replacing a fresh heap allocation per candidate.
//   - motion.Scratch: caller-owned buffers for the motion search and
//     sharp-interpolation temporaries.
//
// Determinism contract: recycled memory is always fully overwritten
// before use (candidates by whole-struct literal assignment, level
// slices by copy of exactly the bytes returned), so a pooled object is
// indistinguishable from a fresh allocation and bitstreams do not
// change.

// candLevelInt32s is the worst-case level storage a single candidate
// can reference: 16 luma blocks of 16 (or 4 of 64 — same total) plus
// 2 chroma planes × 4 blocks of 16.
const candLevelInt32s = MBSize*MBSize + 2*4*16

// levelArenaCap sizes the arena for the maximum number of candidates
// holding levels simultaneously within one macroblock decision (skip,
// two inter trials, intra 16×16, intra 4×4, tx8 retry), with slack so
// steady state never overflows.
const levelArenaCap = 8 * candLevelInt32s

// levelArena bump-allocates []int32 level storage from one backing
// array. take returns capacity-clamped sub-slices so an append by a
// future caller cannot bleed into a neighbouring block's levels. reset
// rewinds the arena; outstanding slices from before the reset must no
// longer be referenced (the per-macroblock lifecycle guarantees this:
// the winning candidate's levels are serialized before the next
// macroblock resets the arena).
type levelArena struct {
	buf []int32
	off int
	// capHint sizes the lazily created backing array; zero selects
	// levelArenaCap. Wavefront row lanes use it to hold a whole row of
	// winning candidates (mbW × candLevelInt32s) instead of one
	// macroblock's trials.
	capHint   int
	overflows int64
}

func (a *levelArena) reset() { a.off = 0 }

// take returns an n-int32 slice of arena storage. Contents are
// unspecified; every caller overwrites all n entries. If the arena is
// exhausted (or a is nil, for callers outside the hot path) it falls
// back to the heap and counts the overflow for the
// codec.arena.level_overflows telemetry counter.
func (a *levelArena) take(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if a.buf == nil {
		n := a.capHint
		if n == 0 {
			n = levelArenaCap
		}
		a.buf = make([]int32, n)
	}
	if a.off+n > len(a.buf) {
		a.overflows++
		return make([]int32, n)
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// candPool recycles mbCand values within one slice encoder. Mode
// trials get a candidate, losers are released back, and the per-MB
// winner is released after serialization — so steady state cycles the
// same two or three structs (a best/trial ping-pong) instead of
// allocating ~1 KiB per trial. fresh counts heap allocations for the
// codec.arena.cand_allocs telemetry counter.
type candPool struct {
	free  []*mbCand
	fresh int64
}

func (p *candPool) get() *mbCand {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return c
	}
	p.fresh++
	return new(mbCand)
}

func (p *candPool) put(c *mbCand) {
	if c == nil {
		return
	}
	p.free = append(p.free, c)
}

// encScratch is the per-slice-encoder scratch state. One value lives
// per worker for the whole encode; nothing in it is shared across
// goroutines.
type encScratch struct {
	levels levelArena
	cands  candPool
	motion motion.Scratch
}

// decScratch is the decoder-side counterpart. The decoder has exactly
// one candidate live at a time, so it embeds the struct directly
// instead of pooling.
type decScratch struct {
	levels levelArena
	cand   mbCand
	motion motion.Scratch
}
