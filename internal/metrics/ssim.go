package metrics

import (
	"fmt"

	"vbench/internal/video"
)

// SSIM constants per Wang et al. (2004) for 8-bit dynamic range.
const (
	ssimC1 = (0.01 * 255) * (0.01 * 255)
	ssimC2 = (0.03 * 255) * (0.03 * 255)
)

// ssimWindow is the side of the square windows SSIM is evaluated on.
// 8x8 non-overlapping windows follow the common fast-SSIM convention
// (full Gaussian-weighted SSIM differs by a small constant factor that
// does not affect comparisons).
const ssimWindow = 8

// PlaneSSIM computes the mean structural similarity between two planes
// of dimensions w×h using non-overlapping 8×8 windows.
func PlaneSSIM(a, b []uint8, w, h int) (float64, error) {
	if len(a) != len(b) || len(a) != w*h {
		return 0, fmt.Errorf("metrics: ssim plane geometry mismatch (len %d/%d, %dx%d)", len(a), len(b), w, h)
	}
	if w < ssimWindow || h < ssimWindow {
		return 0, fmt.Errorf("metrics: plane %dx%d smaller than ssim window", w, h)
	}
	var total float64
	var count int
	for wy := 0; wy+ssimWindow <= h; wy += ssimWindow {
		for wx := 0; wx+ssimWindow <= w; wx += ssimWindow {
			var sa, sb, saa, sbb, sab float64
			for y := wy; y < wy+ssimWindow; y++ {
				row := y * w
				for x := wx; x < wx+ssimWindow; x++ {
					va := float64(a[row+x])
					vb := float64(b[row+x])
					sa += va
					sb += vb
					saa += va * va
					sbb += vb * vb
					sab += va * vb
				}
			}
			n := float64(ssimWindow * ssimWindow)
			ma := sa / n
			mb := sb / n
			va := saa/n - ma*ma
			vb := sbb/n - mb*mb
			cov := sab/n - ma*mb
			num := (2*ma*mb + ssimC1) * (2*cov + ssimC2)
			den := (ma*ma + mb*mb + ssimC1) * (va + vb + ssimC2)
			total += num / den
			count++
		}
	}
	return total / float64(count), nil
}

// SequenceSSIM returns the average luma SSIM across the frames of a
// transcode against its reference.
func SequenceSSIM(ref, t *video.Sequence) (float64, error) {
	if len(ref.Frames) != len(t.Frames) || len(ref.Frames) == 0 {
		return 0, fmt.Errorf("metrics: ssim frame count mismatch %d vs %d", len(ref.Frames), len(t.Frames))
	}
	var total float64
	for i := range ref.Frames {
		rf, tf := ref.Frames[i], t.Frames[i]
		s, err := PlaneSSIM(rf.Y, tf.Y, rf.Width, rf.Height)
		if err != nil {
			return 0, fmt.Errorf("metrics: frame %d: %w", i, err)
		}
		total += s
	}
	return total / float64(len(ref.Frames)), nil
}
