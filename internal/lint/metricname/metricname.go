// Package metricname enforces the metric naming schema documented in
// docs/FORMAT.md: every name registered through the telemetry metric
// constructors must be dotted lower_snake_case with at least two
// segments (subsystem prefix plus metric), e.g. "codec.encodes" or
// "harness.memo.seqs.hits". A misnamed metric is not an error at
// runtime — it just silently fragments the stats export — so the
// schema is machine-checked here instead.
//
// Beyond the shape check, every well-formed constant name must appear
// in the stable-names table of docs/FORMAT.md (resolved relative to
// the analyzed module's root; the check is skipped when the module
// carries no docs/FORMAT.md). The table is the external contract for
// dashboards and snapshot diffing, so a metric that ships undocumented
// is a lint error, not a docs nit. Table rows may list several names
// separated by " / " and may compress families with brace expansion
// (`codec.stage.{motion,transform}_ns`); tokens containing `*` are
// informational and ignored.
//
// Only constant string arguments are checked; dynamically built names
// (fmt.Sprintf, base+".hits") are out of scope. Test files are
// skipped: scratch registries in tests use deliberately short names.
package metricname

import (
	"go/ast"
	"go/constant"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"vbench/internal/lint/analysis"
)

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "checks metric names passed to telemetry constructors against the docs/FORMAT.md schema",
	Run:  run,
}

// namePattern is the FORMAT.md schema: dot-separated segments, each
// lower_snake_case starting with a letter, two segments minimum.
var namePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*(\.[a-z][a-z0-9]*(_[a-z0-9]+)*)+$`)

// constructors maps the telemetry functions and methods whose first
// argument is a metric name.
var constructors = map[string]bool{
	"GetCounter":   true,
	"GetGauge":     true,
	"GetHistogram": true,
	"Counter":      true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
}

func run(pass *analysis.Pass) error {
	var docs docTable
	docsLoaded := false
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		if !docsLoaded {
			docsLoaded = true
			docs = docsFor(pass.Fset.Position(file.Pos()).Filename)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || !analysis.FromPackage(fn, "telemetry") || !constructors[fn.Name()] {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name: out of scope
			}
			name := constant.StringVal(tv.Value)
			if !namePattern.MatchString(name) {
				pass.Reportf(arg.Pos(), "metric name %q does not match the dotted lower_snake_case schema (see docs/FORMAT.md), e.g. \"codec.encodes\"", name)
				return true
			}
			if docs != nil && !docs[name] {
				pass.Reportf(arg.Pos(), "metric name %q is not documented in the stable-names table of docs/FORMAT.md", name)
			}
			return true
		})
	}
	return nil
}

// docTable is the set of documented metric names; nil means the module
// has no docs/FORMAT.md and the documentation check is off.
type docTable map[string]bool

// docCache memoizes parsed tables per module root, since every package
// of a module resolves to the same file.
var (
	docMu    sync.Mutex
	docCache = map[string]docTable{}
)

// docsFor locates and parses <module root>/docs/FORMAT.md for the
// source file at path, walking up to the nearest go.mod.
func docsFor(path string) docTable {
	dir := filepath.Dir(path)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil // no module root
		}
		dir = parent
	}
	docMu.Lock()
	t, ok := docCache[dir]
	docMu.Unlock()
	if ok {
		return t
	}
	// Read and parse outside the lock (its own discipline: the lock
	// orders the cache map, never disk I/O). Racing parses of the same
	// file produce identical tables; the re-check below keeps the
	// first one.
	if data, err := os.ReadFile(filepath.Join(dir, "docs", "FORMAT.md")); err == nil {
		t = parseDocTable(string(data))
	}
	docMu.Lock()
	defer docMu.Unlock()
	if prior, ok := docCache[dir]; ok {
		return prior
	}
	docCache[dir] = t
	return t
}

// backtickPat extracts `quoted` tokens from a table cell.
var backtickPat = regexp.MustCompile("`([^`]+)`")

// parseDocTable collects the documented metric names: every backtick-
// quoted token in the first cell of a markdown table row, with brace
// families expanded. Tokens containing "*" (or anything else that is
// not a valid metric name after expansion) are ignored.
func parseDocTable(md string) docTable {
	t := docTable{}
	for _, line := range strings.Split(md, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range backtickPat.FindAllStringSubmatch(cells[1], -1) {
			for _, name := range expandBraces(m[1]) {
				if namePattern.MatchString(name) {
					t[name] = true
				}
			}
		}
	}
	return t
}

// expandBraces expands every {a,b,c} alternation in s, e.g.
// "x.{a,b}_ns" → ["x.a_ns", "x.b_ns"]. A string without braces (or
// with unbalanced ones) is returned as-is.
func expandBraces(s string) []string {
	open := strings.IndexByte(s, '{')
	if open < 0 {
		return []string{s}
	}
	rest := strings.IndexByte(s[open:], '}')
	if rest < 0 {
		return []string{s}
	}
	end := open + rest
	var out []string
	for _, alt := range strings.Split(s[open+1:end], ",") {
		out = append(out, expandBraces(s[:open]+strings.TrimSpace(alt)+s[end+1:])...)
	}
	return out
}
