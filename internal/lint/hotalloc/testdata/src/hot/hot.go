// Package hot exercises hotalloc: every allocating construct inside
// a //vbench:noalloc function is flagged, unannotated functions are
// untouched, and a misplaced directive is itself a finding.
package hot

type block struct{ a, b int }

func sink(v interface{})         {}
func variadic(vs ...interface{}) {}
func use(interface{})            {}

// Makes allocates all over; each site is flagged.
//
//vbench:noalloc
func Makes(n int) { // want hotalloc:"noalloc"
	s := make([]int, n)    // want "make allocates"
	p := new(block)        // want "new allocates"
	s = append(s, 1)       // want "append may grow its backing array"
	l := []int{1, 2}       // want "slice literal allocates"
	m := map[int]int{1: 2} // want "map literal allocates"
	q := &block{1, 2}      // want "address of composite literal escapes"
	_, _, _, _, _ = s, p, l, m, q
}

//vbench:noalloc
func Captures(n int) int { // want hotalloc:"noalloc"
	f := func() int { return n } // want "closure allocates its captures"
	return f()
}

//vbench:noalloc
func Boxes(v block, s string) { // want hotalloc:"noalloc"
	sink(v)               // want "value of type block boxes into an interface"
	variadic(s, 1)        // want "value of type string boxes" "value of type int boxes"
	var i interface{} = v // want "value of type block boxes"
	i = s                 // want "value of type string boxes"
	use(i)
}

// PointerThrough stores only word-sized values in interfaces and
// writes into preallocated storage: clean.
//
//vbench:noalloc
func PointerThrough(dst []int, v *block) { // want hotalloc:"noalloc"
	sink(v)
	for i := range dst {
		dst[i] = v.a
	}
}

// ValueLiteral builds a plain value composite, which stays on the
// stack: clean.
//
//vbench:noalloc
func ValueLiteral() int { // want hotalloc:"noalloc"
	b := block{1, 2}
	var buf [8]int
	buf[0] = b.a
	return buf[0]
}

// WaveRowLeaky is the wavefront anti-pattern: the row task buffers its
// winners by appending, growing a fresh backing array every frame.
//
//vbench:noalloc
func WaveRowLeaky(winners []*block, row []block) []*block { // want hotalloc:"noalloc"
	for i := range row {
		winners = append(winners, &row[i]) // want "append may grow its backing array"
	}
	return winners
}

// WaveRowLane is the correct shape: the lane's winner buffer and level
// storage are preallocated once, and the row task only index-stores
// into them.
//
//vbench:noalloc
func WaveRowLane(winners []*block, levels []int, row []block) { // want hotalloc:"noalloc"
	off := 0
	for i := range row {
		winners[i] = &row[i]
		levels[off] = row[i].a
		off++
	}
}

// Unannotated may allocate freely.
func Unannotated(n int) []int {
	s := make([]int, n)
	s = append(s, 1)
	sink(n)
	return s
}

//vbench:noalloc
func Suppressed() []int { // want hotalloc:"noalloc"
	//lint:ignore hotalloc called once at startup, not per frame
	return make([]int, 16)
}

//vbench:noalloc misplaced inside a declaration group // want "must be part of a function's doc comment"
var tables = map[string]int{}

func body() {
	//vbench:noalloc // want "must be part of a function's doc comment"
	_ = tables
}
