// Package cachesim implements a set-associative cache simulator with
// LRU replacement and multi-level hierarchies. The µarch study of the
// paper (Figure 5) measures instruction-cache, branch, and last-level
// cache behaviour on real hardware counters; this simulator provides
// the equivalent measurement substrate for the synthetic access
// traces derived from the encoder's work counters.
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports (e.g. "L1I").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache line size.
	LineBytes int
	// Ways is the associativity.
	Ways int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cachesim: size %d not divisible into %d-way sets of %dB lines", c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is one level of set-associative cache with true-LRU
// replacement.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64
	// tags[set*ways+way]; lru[set*ways+way] holds recency counters.
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64

	accesses int64
	misses   int64
}

// New builds a cache level.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		lru:       make([]uint64, sets*cfg.Ways),
	}, nil
}

// Access looks up the line containing addr, updating LRU state and
// filling on miss. Returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.clock++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(log2(c.sets))
	base := set * c.cfg.Ways
	victim := base
	var victimLRU uint64 = ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim = i
			victimLRU = 0
		} else if c.lru[i] < victimLRU {
			victim = i
			victimLRU = c.lru[i]
		}
	}
	c.misses++
	c.valid[victim] = true
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// Stats returns accesses and misses so far.
func (c *Cache) Stats() (accesses, misses int64) { return c.accesses, c.misses }

// MissRate returns misses/accesses (0 if never accessed).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.accesses, c.misses, c.clock = 0, 0, 0
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

func log2(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// Hierarchy is an inclusive multi-level cache: an access probes each
// level in order until it hits; lower levels see only the misses of
// the level above.
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from level configs (closest first).
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		h.Levels = append(h.Levels, c)
	}
	return h, nil
}

// Access walks the hierarchy; returns the index of the level that hit,
// or len(Levels) on a full miss to memory.
func (h *Hierarchy) Access(addr uint64) int {
	for i, c := range h.Levels {
		if c.Access(addr) {
			return i
		}
	}
	return len(h.Levels)
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
}

// SkylakeData returns the data hierarchy of the paper's measurement
// machine (Xeon E5-1650v3-class): 32KB/8-way L1D, 256KB/8-way L2,
// 8MB/16-way LLC, 64B lines.
func SkylakeData() (*Hierarchy, error) {
	return NewHierarchy(
		Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		Config{Name: "LLC", SizeBytes: 8 << 20, LineBytes: 64, Ways: 16},
	)
}

// SkylakeICache returns the 32KB/8-way instruction cache.
func SkylakeICache() (*Cache, error) {
	return New(Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
}
