package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load resolves patterns (e.g. "./...") relative to dir with
// `go list -export -deps -json`, parses and type-checks every
// matched non-dependency package from source, and returns them ready
// for Run. Dependencies are imported through the compiler export
// data the go command already produced, so loading is fast and works
// fully offline. extraArgs are passed to go list before the patterns
// (e.g. "-tags", "vbench_nodebug").
func Load(dir string, extraArgs []string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, extraArgs...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		goVersion := ""
		if lp.Module != nil && lp.Module.GoVersion != "" {
			goVersion = "go" + lp.Module.GoVersion
		}
		pkg, err := typecheck(fset, lp.ImportPath, files, imp, goVersion)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses files and type-checks them as one package.
func typecheck(fset *token.FileSet, pkgPath string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkgPath, err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     asts,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// newExportImporter returns a types importer that resolves packages
// from compiler export data files (exports maps import path to file),
// first rewriting source import paths through importMap (which may be
// nil) the way the go command's vet protocol specifies.
func newExportImporter(fset *token.FileSet, exports, importMap map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	under := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return &mapImporter{under: under, importMap: importMap}
}

// mapImporter applies an import-path rewrite before delegating to the
// export-data importer.
type mapImporter struct {
	under     types.ImporterFrom
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.under.ImportFrom(path, dir, mode)
}

// ModuleDir returns the root directory of the main module containing
// dir (used by the self-lint test to locate the repository).
func ModuleDir(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
