package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vbench/internal/telemetry"
)

// testMaster spins up a loopback master over the given queue.
func testMaster(t *testing.T, q *Queue) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(q).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// rawPost is a minimal client for driving the protocol by hand (a
// worker the test controls completely, including "dying").
func rawPost(t *testing.T, url string, req, resp interface{}) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, r.Status)
	}
	if resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
}

func submitNoops(t *testing.T, url string, n, sleepMS int) []int {
	t.Helper()
	req := SubmitRequest{}
	for i := 0; i < n; i++ {
		req.Jobs = append(req.Jobs, JobSpec{Kind: KindNoop, SleepMS: sleepMS})
	}
	var resp SubmitResponse
	rawPost(t, url+"/api/v1/submit", &req, &resp)
	if len(resp.IDs) != n {
		t.Fatalf("submitted %d jobs, got ids %v", n, resp.IDs)
	}
	return resp.IDs
}

func waitDone(t *testing.T, q *Queue, want int, timeout time.Duration) Stats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := q.Stats(); st.Done >= want {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d done jobs; stats = %+v", want, q.Stats())
	return Stats{}
}

// TestLoopbackKilledWorkerExactlyOnce is the in-process version of the
// e2e smoke: a worker dies holding a lease, the lease expires, and the
// surviving worker finishes the batch — every job done exactly once.
func TestLoopbackKilledWorkerExactlyOnce(t *testing.T) {
	q := NewQueue(Options{
		Metrics:     telemetry.NewRegistry(),
		LeaseTTL:    250 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		MaxAttempts: 5,
	})
	srv := testMaster(t, q)
	const jobs = 8
	submitNoops(t, srv.URL, jobs, 5)

	// The doomed worker leases one job and is then SIGKILLed (it never
	// heartbeats, never acks, never polls again).
	var leased LeaseResponse
	rawPost(t, srv.URL+"/api/v1/lease", &LeaseRequest{Worker: "doomed"}, &leased)
	if leased.Job == nil {
		t.Fatal("doomed worker got no lease")
	}

	w, err := NewWorker(WorkerOptions{
		Master: srv.URL, ID: "survivor",
		Poll: 10 * time.Millisecond, Heartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()

	st := waitDone(t, q, jobs, 10*time.Second)
	cancel()
	<-workerDone

	if st.Done != jobs || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LeaseExpiries == 0 {
		t.Error("the doomed worker's lease never expired")
	}
	for _, j := range q.Jobs() {
		if j.Completions != 1 {
			t.Errorf("job %d completed %d times, want exactly 1", j.ID, j.Completions)
		}
	}
	// The orphaned job went to the survivor on a later attempt.
	if j, _ := q.Job(leased.Job.ID); j.Result.Worker != "survivor" || j.Result.Attempt < 2 {
		t.Errorf("orphaned job result = %+v", j.Result)
	}
}

func TestHTTPDuplicateAndStaleCompletion(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Hour})
	srv := testMaster(t, q)
	ids := submitNoops(t, srv.URL, 1, 0)

	var leased LeaseResponse
	rawPost(t, srv.URL+"/api/v1/lease", &LeaseRequest{Worker: "w1"}, &leased)
	if leased.Job == nil || leased.Job.ID != ids[0] {
		t.Fatalf("lease = %+v", leased.Job)
	}
	ack := AckRequest{Worker: "w1", JobID: leased.Job.ID, Attempt: leased.Job.Attempt, Result: &Result{Bytes: 7}}
	var first, second AckResponse
	rawPost(t, srv.URL+"/api/v1/complete", &ack, &first)
	rawPost(t, srv.URL+"/api/v1/complete", &ack, &second)
	if !first.Applied || second.Applied {
		t.Errorf("applied = %v, %v; want true, false", first.Applied, second.Applied)
	}
	st := q.Stats()
	if st.Done != 1 || st.Completions != 1 || st.DuplicateAcks != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHTTPMasterRestart snapshots a live master mid-lease, restores it
// into a fresh process-worth of state, and shows the surviving
// worker's completion still lands — leases are durable state.
func TestHTTPMasterRestart(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Hour})
	srv := testMaster(t, q)
	submitNoops(t, srv.URL, 3, 0)

	var leased LeaseResponse
	rawPost(t, srv.URL+"/api/v1/lease", &LeaseRequest{Worker: "w1"}, &leased)
	srv.Close()

	var buf bytes.Buffer
	if err := q.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := Restore(&buf, Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := testMaster(t, q2)

	// w1 survived the master restart and completes against the new one.
	var resp AckResponse
	rawPost(t, srv2.URL+"/api/v1/complete", &AckRequest{
		Worker: "w1", JobID: leased.Job.ID, Attempt: leased.Job.Attempt, Result: &Result{},
	}, &resp)
	if !resp.Applied {
		t.Error("post-restart completion not applied")
	}
	st := q2.Stats()
	if st.Done != 1 || st.Pending != 2 || st.Leased != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestWorkerGracefulDrain cancels a worker mid-job (the SIGTERM path)
// and shows the in-flight job still completes and acks before Run
// returns — drain means finish, not abandon.
func TestWorkerGracefulDrain(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Hour})
	srv := testMaster(t, q)
	submitNoops(t, srv.URL, 1, 300)

	w, err := NewWorker(WorkerOptions{Master: srv.URL, ID: "drainer", Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()

	// Wait for the lease, then SIGTERM while the 300ms job is running.
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Leased == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job never leased; stats = %+v", q.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-workerDone

	st := q.Stats()
	if st.Done != 1 || st.Completions != 1 {
		t.Errorf("drained worker lost its in-flight job: %+v", st)
	}
}

// TestWorkerRetriesInjectedTransientFailure runs the FailFirst fault
// hook end to end: attempt 1 fails transiently, the queue backs off
// and re-leases, attempt 2 succeeds.
func TestWorkerRetriesInjectedTransientFailure(t *testing.T) {
	q := NewQueue(Options{
		Metrics:     telemetry.NewRegistry(),
		LeaseTTL:    time.Hour,
		BackoffBase: 10 * time.Millisecond,
	})
	srv := testMaster(t, q)
	var resp SubmitResponse
	rawPost(t, srv.URL+"/api/v1/submit", &SubmitRequest{Jobs: []JobSpec{
		{Kind: KindNoop, FailFirst: 1},
	}}, &resp)

	w, err := NewWorker(WorkerOptions{Master: srv.URL, ID: "w1", Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()

	st := waitDone(t, q, 1, 10*time.Second)
	cancel()
	<-workerDone

	if st.Retries != 1 || st.Completions != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The failure report must land exactly once — a worker that
	// re-posts an already-applied fail shows up here as stale acks.
	if st.StaleAcks != 0 || st.DuplicateAcks != 0 {
		t.Errorf("failure ack not idempotent: %+v", st)
	}
	j, _ := q.Job(resp.IDs[0])
	if j.Result == nil || j.Result.Attempt != 2 {
		t.Errorf("job result = %+v, want attempt 2", j.Result)
	}
}

// TestWorkerRunsRealEncode pushes one real internal/codec transcode
// through the full master/worker loop.
func TestWorkerRunsRealEncode(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Hour})
	srv := testMaster(t, q)
	var resp SubmitResponse
	rawPost(t, srv.URL+"/api/v1/submit", &SubmitRequest{Jobs: []JobSpec{
		{Clip: "girl", Encoder: "x264-veryfast", Scale: 16, Duration: 0.2, QP: 30},
	}}, &resp)

	w, err := NewWorker(WorkerOptions{Master: srv.URL, ID: "enc", Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()

	st := waitDone(t, q, 1, 30*time.Second)
	cancel()
	<-workerDone

	if st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
	j, _ := q.Job(resp.IDs[0])
	if j.Result == nil || j.Result.Bytes <= 0 || j.Result.PSNR <= 0 {
		t.Errorf("encode result = %+v", j.Result)
	}
}

// TestHTTPTerminalSpecFailure submits a job whose spec passes queue
// validation but fails terminally at execution (unknown clip): the
// worker classifies it and the queue does not retry.
func TestHTTPTerminalSpecFailure(t *testing.T) {
	q := NewQueue(Options{Metrics: telemetry.NewRegistry(), LeaseTTL: time.Hour, MaxAttempts: 5})
	srv := testMaster(t, q)
	var resp SubmitResponse
	rawPost(t, srv.URL+"/api/v1/submit", &SubmitRequest{Jobs: []JobSpec{
		{Clip: "no-such-clip", Encoder: "x264-medium", Scale: 16, Duration: 0.2},
	}}, &resp)

	w, err := NewWorker(WorkerOptions{Master: srv.URL, ID: "w1", Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for q.Stats().Failed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job never failed; stats = %+v", q.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-workerDone

	st := q.Stats()
	if st.Failed != 1 || st.Retries != 0 || st.Leases != 1 {
		t.Errorf("terminal failure was retried: %+v", st)
	}
	j, _ := q.Job(resp.IDs[0])
	if !strings.Contains(j.LastErr, "no-such-clip") {
		t.Errorf("LastErr = %q", j.LastErr)
	}
}
