// Command uarchsim runs the microarchitectural characterization study
// of the paper (Section 5): it encodes the requested video suites
// under the VOD reference configuration, expands the work counters
// into instruction/branch/data traces, drives the cache and branch
// simulators, and prints Figures 5, 6, 7, and 8.
//
// Usage:
//
//	uarchsim                             # vbench + coverage suites
//	uarchsim -suites vbench,netflix,xiph # choose suites
//	uarchsim -fig 8 -clip girl           # the ISA ladder only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vbench/internal/corpus"
	"vbench/internal/harness"
	"vbench/internal/telemetry"
)

func main() {
	suitesFlag := flag.String("suites", "vbench,coverage", "comma-separated suites: vbench,coverage,netflix,xiph,spec2017,spec2006")
	scale := flag.Int("scale", 8, "linear resolution divisor")
	duration := flag.Float64("duration", 1.0, "clip duration in seconds")
	fig := flag.Int("fig", 0, "render a single figure (5,6,7,8); 0 = all")
	clip := flag.String("clip", "girl", "clip for the Figure 8 ISA ladder")
	verbose := flag.Bool("v", false, "print per-encode progress")
	var topts telemetry.Options
	topts.RegisterFlags(flag.CommandLine)
	flag.Parse()

	flush, err := topts.Activate()
	if err != nil {
		fatal(err)
	}

	r := harness.NewRunner(*scale, *duration)
	r.RegisterMetrics(telemetry.Default)
	if *verbose {
		r.Progress = telemetry.NewLineWriter(os.Stderr)
	}

	var suites []corpus.Suite
	for _, s := range strings.Split(*suitesFlag, ",") {
		suites = append(suites, corpus.Suite(strings.TrimSpace(s)))
	}

	if *fig == 8 || *fig == 0 {
		t, _, err := r.Figure8(*clip)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
		if *fig == 8 {
			if err := flush(); err != nil {
				fatal(err)
			}
			return
		}
	}

	points, err := r.UArchStudy(suites)
	if err != nil {
		fatal(err)
	}
	if *fig == 5 || *fig == 0 {
		t, err := harness.Figure5(points)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if *fig == 6 || *fig == 0 {
		t, err := harness.Figure6(points)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if *fig == 7 || *fig == 0 {
		t, err := harness.Figure7(points)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if err := flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uarchsim:", err)
	os.Exit(1)
}
