package fleet

import "sort"

// Status is the live ops snapshot served at GET /status: queue depth
// and accounting, active leases with their ages, per-worker liveness,
// and the retry policy in force. The schema is fixed (all fields
// always present, slices sorted) so responses diff cleanly and tests
// can assert on it; see docs/FORMAT.md.
type Status struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Stats         Stats         `json:"stats"`
	Policy        BackoffPolicy `json:"policy"`
	// Leases lists every currently-leased job, sorted by job ID.
	Leases []LeaseStatus `json:"leases"`
	// Workers lists every worker the master has ever heard from,
	// sorted by ID.
	Workers []WorkerStatus `json:"workers"`
	// TimelineEvents is the total number of timeline events recorded.
	TimelineEvents int64 `json:"timeline_events"`
}

// BackoffPolicy echoes the queue's retry configuration.
type BackoffPolicy struct {
	LeaseTTLSeconds    float64 `json:"lease_ttl_seconds"`
	MaxAttempts        int     `json:"max_attempts"`
	BackoffBaseSeconds float64 `json:"backoff_base_seconds"`
	BackoffMaxSeconds  float64 `json:"backoff_max_seconds"`
}

// LeaseStatus describes one active lease.
type LeaseStatus struct {
	Job     int    `json:"job"`
	Attempt int    `json:"attempt"`
	Worker  string `json:"worker"`
	// AgeSeconds is how long the lease has been held; ExpiresSeconds
	// is how much heartbeat budget remains (negative = lapsed but not
	// yet swept).
	AgeSeconds     float64 `json:"age_seconds"`
	ExpiresSeconds float64 `json:"expires_seconds"`
}

// WorkerStatus describes one worker's liveness and activity as the
// master observed it.
type WorkerStatus struct {
	ID string `json:"id"`
	// LastSeenSeconds is how long ago the worker last made any
	// request; Live is true while that is within the lease TTL.
	LastSeenSeconds float64 `json:"last_seen_seconds"`
	Live            bool    `json:"live"`
	InFlight        int     `json:"in_flight"`
	Leases          int64   `json:"leases"`
	Heartbeats      int64   `json:"heartbeats"`
	Completions     int64   `json:"completions"`
	Failures        int64   `json:"failures"`
	// WaveOccupancy is the mean of the worker.wave_occupancy histogram
	// from the worker's last metric push — average row workers per
	// wavefront-encoded slice-frame (0 = no wavefront frames reported,
	// or the worker pushes no metrics). Filled by the HTTP server, not
	// the queue, since pushes live on the server.
	WaveOccupancy float64 `json:"wave_occupancy"`
}

// Status assembles a consistent ops snapshot.
func (q *Queue) Status() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	st := Status{
		UptimeSeconds: now.Sub(q.start).Seconds(),
		Stats:         q.stats,
		Policy: BackoffPolicy{
			LeaseTTLSeconds:    q.opt.LeaseTTL.Seconds(),
			MaxAttempts:        q.opt.MaxAttempts,
			BackoffBaseSeconds: q.opt.BackoffBase.Seconds(),
			BackoffMaxSeconds:  q.opt.BackoffMax.Seconds(),
		},
		Leases:         []LeaseStatus{},
		Workers:        []WorkerStatus{},
		TimelineEvents: q.eventSeq,
	}
	inFlight := map[string]int{}
	for _, j := range q.jobs {
		if j.State != Leased {
			continue
		}
		inFlight[j.Worker]++
		st.Leases = append(st.Leases, LeaseStatus{
			Job:            j.ID,
			Attempt:        j.Attempt,
			Worker:         j.Worker,
			AgeSeconds:     now.Sub(j.LeasedAt).Seconds(),
			ExpiresSeconds: j.LeaseExpiry.Sub(now).Seconds(),
		})
	}
	ids := make([]string, 0, len(q.workers))
	for id := range q.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a := q.workers[id]
		ago := now.Sub(a.lastSeen).Seconds()
		st.Workers = append(st.Workers, WorkerStatus{
			ID:              id,
			LastSeenSeconds: ago,
			Live:            ago <= q.opt.LeaseTTL.Seconds(),
			InFlight:        inFlight[id],
			Leases:          a.leases,
			Heartbeats:      a.heartbeats,
			Completions:     a.completions,
			Failures:        a.failures,
		})
	}
	return st
}
