package video

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewFrameGeometry(t *testing.T) {
	f := NewFrame(64, 48)
	if len(f.Y) != 64*48 {
		t.Errorf("luma plane %d samples, want %d", len(f.Y), 64*48)
	}
	if len(f.Cb) != 32*24 || len(f.Cr) != 32*24 {
		t.Errorf("chroma planes %d/%d samples, want %d", len(f.Cb), len(f.Cr), 32*24)
	}
	if f.ChromaWidth() != 32 || f.ChromaHeight() != 24 {
		t.Errorf("chroma dims %dx%d", f.ChromaWidth(), f.ChromaHeight())
	}
	// Neutral chroma initialization.
	for _, v := range f.Cb {
		if v != 128 {
			t.Fatal("Cb not initialized to neutral 128")
		}
	}
}

func TestNewFramePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 16}, {16, 0}, {-2, 4}, {15, 16}, {16, 15}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFrame(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewFrame(dims[0], dims[1])
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := NewFrame(16, 16)
	g := f.Clone()
	g.Y[0] = 99
	g.Cb[0] = 7
	if f.Y[0] == 99 || f.Cb[0] == 7 {
		t.Error("Clone shares storage with original")
	}
	if !f.Clone().Equal(f) {
		t.Error("Clone not equal to original")
	}
}

func TestCopyFromMismatch(t *testing.T) {
	a := NewFrame(16, 16)
	b := NewFrame(32, 16)
	if err := a.CopyFrom(b); err == nil {
		t.Error("CopyFrom accepted mismatched dimensions")
	}
}

func TestPlaneData(t *testing.T) {
	f := NewFrame(32, 16)
	y, w, h := f.PlaneData(PlaneY)
	if len(y) != 32*16 || w != 32 || h != 16 {
		t.Error("PlaneY geometry wrong")
	}
	cb, w, h := f.PlaneData(PlaneCb)
	if len(cb) != 16*8 || w != 16 || h != 8 {
		t.Error("PlaneCb geometry wrong")
	}
}

func TestSequenceValidate(t *testing.T) {
	s := &Sequence{FrameRate: 30}
	if err := s.Validate(); err == nil {
		t.Error("empty sequence validated")
	}
	s.Frames = []*Frame{NewFrame(16, 16)}
	if err := s.Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	s.FrameRate = 0
	if err := s.Validate(); err == nil {
		t.Error("zero framerate validated")
	}
	s.FrameRate = 30
	s.Frames = append(s.Frames, NewFrame(32, 16))
	if err := s.Validate(); err == nil {
		t.Error("mixed frame sizes validated")
	}
}

func TestSequenceDurationAndPixels(t *testing.T) {
	s := &Sequence{FrameRate: 25}
	for i := 0; i < 50; i++ {
		s.Frames = append(s.Frames, NewFrame(16, 16))
	}
	if d := s.Duration(); d != 2.0 {
		t.Errorf("Duration = %v, want 2.0", d)
	}
	if p := s.PixelCount(); p != 50*256 {
		t.Errorf("PixelCount = %d, want %d", p, 50*256)
	}
}

func TestY4MRoundTrip(t *testing.T) {
	p := ContentParams{Seed: 1, Detail: 0.6, Motion: 0.5, Noise: 0.2, Sprites: 2, ChromaVariety: 0.8}
	seq, err := Generate(p, 48, 32, 5, 29.97)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteY4M(&buf, seq); err != nil {
		t.Fatal(err)
	}
	back, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Frames) != len(seq.Frames) {
		t.Fatalf("frame count %d, want %d", len(back.Frames), len(seq.Frames))
	}
	if back.FrameRate < 29.96 || back.FrameRate > 29.98 {
		t.Errorf("framerate %v, want ≈29.97", back.FrameRate)
	}
	for i := range back.Frames {
		if !back.Frames[i].Equal(seq.Frames[i]) {
			t.Fatalf("frame %d differs after y4m round trip", i)
		}
	}
}

func TestY4MRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOTAY4M W16 H16\n",
		"YUV4MPEG2 W0 H16 F30:1\n",
		"YUV4MPEG2 W16 H16 F30:1 C444\nFRAME\n",
		"YUV4MPEG2 W16 H16 F30:0\n",
	}
	for _, c := range cases {
		if _, err := ReadY4M(strings.NewReader(c)); err == nil {
			t.Errorf("ReadY4M accepted %q", c)
		}
	}
}

func TestY4MTruncatedPayload(t *testing.T) {
	seq, _ := Generate(ContentParams{Seed: 2, Detail: 0.3}, 32, 32, 2, 30)
	var buf bytes.Buffer
	if err := WriteY4M(&buf, seq); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadY4M(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Error("truncated y4m accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := ContentParams{Seed: 77, Detail: 0.7, Motion: 0.6, Noise: 0.3, Sprites: 4, ChromaVariety: 0.5, SceneCutInterval: 3}
	a, err := Generate(p, 48, 48, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 48, 48, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		if !a.Frames[i].Equal(b.Frames[i]) {
			t.Fatalf("frame %d differs between identical generations", i)
		}
	}
}

func TestGenerateSeedChangesContent(t *testing.T) {
	base := ContentParams{Seed: 1, Detail: 0.6, Motion: 0.4, Sprites: 3, ChromaVariety: 0.4}
	other := base
	other.Seed = 2
	a, _ := Generate(base, 48, 48, 2, 30)
	b, _ := Generate(other, 48, 48, 2, 30)
	if a.Frames[0].Equal(b.Frames[0]) {
		t.Error("different seeds produced identical frames")
	}
}

func TestGenerateValidation(t *testing.T) {
	ok := ContentParams{Seed: 1, Detail: 0.5}
	if _, err := Generate(ok, 32, 32, 0, 30); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := Generate(ok, 32, 32, 2, 0); err == nil {
		t.Error("zero framerate accepted")
	}
	bad := ContentParams{Detail: 2}
	if _, err := Generate(bad, 32, 32, 2, 30); err == nil {
		t.Error("out-of-range Detail accepted")
	}
	bad = ContentParams{Noise: -0.1}
	if _, err := Generate(bad, 32, 32, 2, 30); err == nil {
		t.Error("negative Noise accepted")
	}
}

func TestMotionZeroIsStatic(t *testing.T) {
	p := ContentParams{Seed: 5, Detail: 0.5, Motion: 0, Noise: 0, ChromaVariety: 0.3}
	seq, err := Generate(p, 48, 48, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(seq.Frames); i++ {
		if !seq.Frames[i].Equal(seq.Frames[0]) {
			t.Fatalf("motionless noiseless content changed at frame %d", i)
		}
	}
}

func TestMotionMovesContent(t *testing.T) {
	p := ContentParams{Seed: 5, Detail: 0.5, Motion: 0.8, Noise: 0, Sprites: 2, ChromaVariety: 0.3}
	seq, err := Generate(p, 48, 48, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Frames[3].Equal(seq.Frames[0]) {
		t.Error("moving content produced identical frames")
	}
}

func TestSceneCutChangesScene(t *testing.T) {
	p := ContentParams{Seed: 9, Detail: 0.5, Motion: 0, Noise: 0, SceneCutInterval: 2, ChromaVariety: 0.5}
	seq, err := Generate(p, 48, 48, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Frames 0,1 share a scene; frame 2 starts a new one.
	if !seq.Frames[1].Equal(seq.Frames[0]) {
		t.Error("frames within a scene differ despite zero motion")
	}
	if seq.Frames[2].Equal(seq.Frames[0]) {
		t.Error("scene cut did not change content")
	}
}

func TestNoiseDecorrelatesFrames(t *testing.T) {
	p := ContentParams{Seed: 9, Detail: 0.2, Motion: 0, Noise: 0.5}
	seq, err := Generate(p, 48, 48, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range seq.Frames[0].Y {
		if seq.Frames[0].Y[i] != seq.Frames[1].Y[i] {
			diff++
		}
	}
	if diff < len(seq.Frames[0].Y)/4 {
		t.Errorf("noise changed only %d/%d samples", diff, len(seq.Frames[0].Y))
	}
}

func TestValueNoiseRangeProperty(t *testing.T) {
	f := func(xi, yi int16, seed uint64) bool {
		v := valueNoise(float64(xi), float64(yi), 16, seed)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractalNoiseDeterministic(t *testing.T) {
	a := fractalNoise(12.5, 7.25, 32, 4, 0.5, 42)
	b := fractalNoise(12.5, 7.25, 32, 4, 0.5, 42)
	if a != b {
		t.Error("fractal noise not deterministic")
	}
	c := fractalNoise(12.5, 7.25, 32, 4, 0.5, 43)
	if a == c {
		t.Error("fractal noise ignores seed")
	}
}

func TestBounceStaysInRange(t *testing.T) {
	for _, pos := range []float64{-100, -1, 0, 5, 17, 99.5, 1234} {
		v := bounce(pos, 17)
		if v < 0 || v > 17 {
			t.Errorf("bounce(%v, 17) = %v out of range", pos, v)
		}
	}
	if v := bounce(5, 0); v != 0 {
		t.Errorf("bounce with zero limit = %v", v)
	}
}

func TestHigherDetailRaisesHighFrequencyEnergy(t *testing.T) {
	// Detail controls spatial frequency content: measure the mean
	// squared horizontal gradient (global variance is dominated by the
	// background gradient, which low-detail scenes keep).
	gradEnergy := func(detail float64) float64 {
		p := ContentParams{Seed: 3, Detail: detail}
		seq, err := Generate(p, 64, 64, 1, 30)
		if err != nil {
			t.Fatal(err)
		}
		f := seq.Frames[0]
		var sum float64
		n := 0
		for y := 0; y < f.Height; y++ {
			for x := 0; x < f.Width-1; x++ {
				d := float64(f.Y[y*f.Width+x+1]) - float64(f.Y[y*f.Width+x])
				sum += d * d
				n++
			}
		}
		return sum / float64(n)
	}
	lo := gradEnergy(0.05)
	hi := gradEnergy(0.95)
	if hi <= lo*2 {
		t.Errorf("high-frequency energy did not grow with detail: %.2f vs %.2f", lo, hi)
	}
}
