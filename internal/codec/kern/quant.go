package kern

import "sync/atomic"

// Reciprocal-table quantization. transform.Quantize divides every
// coefficient by the quantizer step; this kernel replaces the divide
// with a multiply by a precomputed per-QP magic reciprocal:
//
//	floor(u/step) == (u·magic) >> quantShift, magic = floor(2⁴¹/step)+1
//
// The identity is exact (Granlund–Montgomery round-up method) for all
// u with u·(magic·step − 2⁴¹) < 2⁴¹. Since magic·step − 2⁴¹ ≤ step ≤
// 14592 (QP 51) the identity holds for every u < quantMaxU = 2²⁶ —
// far above any reachable value: Q3 DCT coefficients are bounded by
// ~2¹⁴ in magnitude, so u = 8·|c| + deadzone ≤ ~2¹⁷ on well-formed
// input. Larger magnitudes (only constructible by corrupting
// intermediate state) take the exact scalar-divide fallback, counted
// in quantDivFallbacks for the telemetry debug endpoint.
const (
	quantShift = 41
	quantMaxU  = 1 << 26
)

type quantTab struct {
	step  int64
	magic uint64
}

// quantTabs is indexed by QP. The step table mirrors
// transform.QStepQ6 (Q6 base steps {40,45,50,57,63,71}, doubling every
// 6 QP); the transform-package cross-check test locks the two
// definitions together.
var quantTabs = func() [52]quantTab {
	base := [6]int64{40, 45, 50, 57, 63, 71}
	var t [52]quantTab
	for qp := range t {
		step := base[qp%6] << uint(qp/6)
		t[qp] = quantTab{step: step, magic: uint64(1)<<quantShift/uint64(step) + 1}
	}
	return t
}()

var quantDivFallbacks atomic.Int64

// QuantDivFallbacks reports how many coefficients exceeded the magic
// reciprocal's exactness range and were quantized with a scalar
// divide instead. Zero in any well-formed encode.
func QuantDivFallbacks() int64 { return quantDivFallbacks.Load() }

// QuantScan fuses quantization with the zigzag scan: Q3 coefficients
// (raster order) are quantized with the QP's reciprocal table and
// written to zz in scan order (levels[i] for raster index scan[i]).
// dz is the deadzone rounding offset in 1/64ths of the step. Returns
// whether any level is nonzero. Results are bit-identical to
// transform.Quantize followed by transform.Scan.
//
//vbench:noalloc
func QuantScan(coeffs, zz []int32, scan []int, qp int, dz int64) bool {
	t := &quantTabs[qp]
	offset := uint64(t.step * dz / 64)
	magic := t.magic
	var nzAcc int32
	for i, idx := range scan {
		v := int64(coeffs[idx]) * 8 // Q3 → Q6
		neg := v < 0
		if neg {
			v = -v
		}
		u := uint64(v) + offset
		var l int64
		if u < quantMaxU {
			l = int64(u * magic >> quantShift)
		} else {
			l = int64(u / uint64(t.step))
			quantDivFallbacks.Add(1)
		}
		if neg {
			l = -l
		}
		zz[i] = int32(l)
		nzAcc |= int32(l)
	}
	return nzAcc != 0
}
