package uarch

import (
	"fmt"

	"vbench/internal/perf"
	"vbench/internal/rng"
)

// TopDown is the Top-Down cycle attribution of Yasin (ISPASS 2014),
// the methodology Figure 6 of the paper uses: every issue slot is
// front-end bound, bad speculation, back-end memory bound, back-end
// core bound, or retiring. Fields sum to 1.
type TopDown struct {
	FrontEnd float64
	BadSpec  float64
	BEMemory float64
	BECore   float64
	Retiring float64
}

// Profile is the complete µarch characterization of one transcode —
// the per-video data point of Figures 5, 6, and 7.
type Profile struct {
	// Instructions is the modeled retired instruction count.
	Instructions float64
	// ICacheMPKI is L1 instruction cache misses per kilo-instruction.
	ICacheMPKI float64
	// BranchMPKI is branch mispredictions per kilo-instruction.
	BranchMPKI float64
	// L1DMPKI, L2MPKI, LLCMPKI are data-cache misses per
	// kilo-instruction at each level.
	L1DMPKI float64
	L2MPKI  float64
	LLCMPKI float64
	// TopDown is the cycle attribution.
	TopDown TopDown
	// ClassSeconds is modeled time per SIMD class (AVX2 build).
	ClassSeconds [perf.NumISA]float64
	// ScalarFraction is ClassSeconds[scalar] over the total.
	ScalarFraction float64
	// AVX2Fraction is ClassSeconds[avx2] over the total.
	AVX2Fraction float64
}

// Options configures an analysis run.
type Options struct {
	// NativeWidth, NativeHeight are the video's native dimensions,
	// which set the data footprint (the benchmark may have encoded a
	// scaled version; per-MB statistics are scale invariant).
	NativeWidth, NativeHeight int
	// SearchRange is the encoder's motion search radius (sets the
	// reference-window data footprint).
	SearchRange int
	// ISA is the SIMD build level (default AVX2).
	ISA perf.ISA
	// Seed makes the stochastic trace expansion deterministic.
	Seed uint64
}

// Analyze expands an encode's work counters into synthetic traces,
// runs the cache and branch simulators, and derives the Top-Down and
// SIMD views.
func Analyze(c *perf.Counters, opts Options) (*Profile, error) {
	if opts.NativeWidth <= 0 || opts.NativeHeight <= 0 {
		return nil, fmt.Errorf("uarch: invalid native geometry %dx%d", opts.NativeWidth, opts.NativeHeight)
	}
	if opts.SearchRange <= 0 {
		opts.SearchRange = 16
	}
	s, err := newMBStats(c, opts.ISA)
	if err != nil {
		return nil, err
	}
	p := &Profile{Instructions: Instructions(c, opts.ISA)}

	p.ICacheMPKI, err = simICache(s, rng.New(opts.Seed^0x1CAC4E))
	if err != nil {
		return nil, err
	}
	p.BranchMPKI, err = simBranches(s, rng.New(opts.Seed^0xB4A7C4))
	if err != nil {
		return nil, err
	}
	data, err := simData(s, opts.NativeWidth, opts.NativeHeight, opts.SearchRange, rng.New(opts.Seed^0xDA7A))
	if err != nil {
		return nil, err
	}
	p.L1DMPKI = data.l1MPKI
	p.L2MPKI = data.l2MPKI
	p.LLCMPKI = data.llcMPKI

	p.TopDown = topDown(p)

	p.ClassSeconds = ClassSeconds(c, opts.ISA, 4.0e9)
	var total float64
	for _, v := range p.ClassSeconds {
		total += v
	}
	if total > 0 {
		p.ScalarFraction = p.ClassSeconds[perf.ISAScalar] / total
		p.AVX2Fraction = p.ClassSeconds[perf.ISAAVX2] / total
	}
	return p, nil
}

// Top-Down latency parameters (cycles), Haswell/Skylake-class.
const (
	issueWidth       = 4.0
	icacheMissCycles = 18.0
	branchMissCycles = 14.0
	l2HitCycles      = 10.0
	llcHitCycles     = 34.0
	memCycles        = 170.0
	// memOverlap models memory-level parallelism: independent misses
	// overlap, so only a fraction of raw latency stalls the core.
	memOverlap = 0.60
	// frontEndBase is the baseline fetch/decode bubble fraction of
	// retiring slots (taken-branch redirects, decoder restrictions).
	frontEndBase = 0.24
	// coreBoundPerRetire models execution-port contention: the wide
	// pixel kernels saturate the vector ports, so a fixed share of
	// compute slots wait on the back-end core.
	coreBoundPerRetire = 0.42
)

// topDown converts the simulated event rates into the five-way cycle
// attribution.
func topDown(p *Profile) TopDown {
	ki := p.Instructions / 1000
	retire := p.Instructions / issueWidth
	fe := retire*frontEndBase + p.ICacheMPKI*ki*icacheMissCycles
	bad := p.BranchMPKI * ki * branchMissCycles
	mem := memOverlap * ki * (p.L1DMPKI*l2HitCycles + p.L2MPKI*llcHitCycles + p.LLCMPKI*memCycles)
	core := retire * coreBoundPerRetire
	total := retire + fe + bad + mem + core
	return TopDown{
		FrontEnd: fe / total,
		BadSpec:  bad / total,
		BEMemory: mem / total,
		BECore:   core / total,
		Retiring: retire / total,
	}
}
