package fleet

import (
	"bytes"
	"testing"
	"time"

	"vbench/internal/cas"
	"vbench/internal/telemetry"
)

// encSpec is a small cacheable encode spec; variations flip QP.
func encSpec(qp int) JobSpec {
	return JobSpec{Clip: "girl", Encoder: "x264-fast", Scale: 16, Duration: 0.2, QP: qp}
}

func cacheQueue(t *testing.T, opt Options) (*Queue, *cas.Store, *SimClock) {
	t.Helper()
	store, err := cas.Open(t.TempDir(), telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	opt.Cache = store
	q, clk := simQueue(opt)
	return q, store, clk
}

func TestSpecCacheKey(t *testing.T) {
	base := encSpec(30)
	key, ok := SpecCacheKey(base)
	if !ok {
		t.Fatal("cacheable encode spec rejected")
	}
	again, _ := SpecCacheKey(base)
	if key != again {
		t.Error("same spec produced different keys")
	}
	for name, s := range map[string]JobSpec{
		"qp":       encSpec(31),
		"clip":     {Clip: "cat", Encoder: "x264-fast", Scale: 16, Duration: 0.2, QP: 30},
		"scale":    {Clip: "girl", Encoder: "x264-fast", Scale: 32, Duration: 0.2, QP: 30},
		"duration": {Clip: "girl", Encoder: "x264-fast", Scale: 16, Duration: 0.4, QP: 30},
		"encoder":  {Clip: "girl", Encoder: "x265-fast", Scale: 16, Duration: 0.2, QP: 30},
		"rc":       {Clip: "girl", Encoder: "x264-fast", Scale: 16, Duration: 0.2, QP: 30, RC: "abr", BitrateBPS: 1e5},
	} {
		k2, ok := SpecCacheKey(s)
		if !ok {
			t.Fatalf("%s variant rejected", name)
		}
		if k2 == key {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	for name, s := range map[string]JobSpec{
		"noop":        {Kind: KindNoop},
		"fail-first":  {Clip: "girl", Encoder: "x264-fast", Scale: 16, Duration: 0.2, FailFirst: 1},
		"bad-encoder": {Clip: "girl", Encoder: "nope", Scale: 16, Duration: 0.2},
		"bad-rc":      {Clip: "girl", Encoder: "x264-fast", Scale: 16, Duration: 0.2, RC: "nope"},
	} {
		if _, ok := SpecCacheKey(s); ok {
			t.Errorf("%s spec reported cacheable", name)
		}
	}
}

// TestSubmitServedFromCache: a submission whose result is already in
// the store completes instantly — no lease ever happens.
func TestSubmitServedFromCache(t *testing.T) {
	q, store, _ := cacheQueue(t, Options{})
	spec := encSpec(30)
	key, _ := SpecCacheKey(spec)
	if err := store.Put(key, &cas.Outcome{Bitstream: []byte("bits"), PSNR: 40, Seconds: 1.5, InputBytes: 99}); err != nil {
		t.Fatal(err)
	}
	id, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j, err := q.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Done || j.Result == nil {
		t.Fatalf("cached submission: %+v", j)
	}
	if j.Result.Worker != "cache" || j.Result.Bytes != 4 || j.Result.PSNR != 40 {
		t.Errorf("cached result: %+v", j.Result)
	}
	if _, ok := q.Lease("w1"); ok {
		t.Error("cache-served job was leasable")
	}
	st := q.Stats()
	if st.CacheDedupHits != 1 || st.Completions != 1 || st.Leases != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDedupFollowersSettle: duplicate submissions of one in-flight key
// park behind the leader; only the leader is leased, and the leader's
// completion settles every follower with a copied result.
func TestDedupFollowersSettle(t *testing.T) {
	q, _, _ := cacheQueue(t, Options{})
	lead, err := q.Submit(encSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	var fids []int
	for i := 0; i < 3; i++ {
		id, err := q.Submit(encSpec(30))
		if err != nil {
			t.Fatal(err)
		}
		fids = append(fids, id)
	}
	other, err := q.Submit(encSpec(31)) // different key: independent
	if err != nil {
		t.Fatal(err)
	}

	j1, ok := q.Lease("w1")
	if !ok || j1.ID != lead {
		t.Fatalf("first lease = %+v (want leader %d)", j1, lead)
	}
	j2, ok := q.Lease("w1")
	if !ok || j2.ID != other {
		t.Fatalf("second lease = %+v (want %d, followers must not lease)", j2, other)
	}
	if _, ok := q.Lease("w1"); ok {
		t.Fatal("a parked follower was leased")
	}

	res := Result{Bytes: 7, PSNR: 35, Seconds: 2, InputBytes: 50}
	if applied, err := q.Complete(lead, j1.Attempt, "w1", res); err != nil || !applied {
		t.Fatalf("complete leader: %v %v", applied, err)
	}
	for _, id := range fids {
		f, err := q.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.State != Done || f.Result == nil || f.Result.Bytes != 7 || f.Result.Worker != "cache" {
			t.Fatalf("follower %d after settle: %+v res=%+v", id, f, f.Result)
		}
		if f.DedupOf != lead {
			t.Errorf("follower %d lost dedup provenance: DedupOf=%d", id, f.DedupOf)
		}
		if f.Attempt != 0 {
			t.Errorf("follower %d has attempts: %d", id, f.Attempt)
		}
	}
	st := q.Stats()
	if st.CacheDedupHits != 3 || st.Completions != 4 || st.Leases != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDedupPromoteOnLeaderFailure: a terminally failed leader hands
// leadership to its oldest follower, which then executes normally; the
// remaining follower settles from the promoted job's result.
func TestDedupPromoteOnLeaderFailure(t *testing.T) {
	q, _, _ := cacheQueue(t, Options{MaxAttempts: 1})
	lead, _ := q.Submit(encSpec(30))
	f1, _ := q.Submit(encSpec(30))
	f2, _ := q.Submit(encSpec(30))

	j, ok := q.Lease("w1")
	if !ok || j.ID != lead {
		t.Fatalf("lease = %+v", j)
	}
	if err := q.Fail(lead, j.Attempt, "w1", true, "boom"); err != nil {
		t.Fatal(err)
	}

	jp, ok := q.Lease("w1")
	if !ok || jp.ID != f1 {
		t.Fatalf("post-failure lease = %+v (want promoted follower %d)", jp, f1)
	}
	if jp.DedupOf != 0 {
		t.Errorf("promoted follower still marked DedupOf=%d", jp.DedupOf)
	}
	if _, ok := q.Lease("w1"); ok {
		t.Fatal("re-parked follower was leased")
	}
	if applied, err := q.Complete(f1, jp.Attempt, "w1", Result{Bytes: 3}); err != nil || !applied {
		t.Fatalf("complete promoted: %v %v", applied, err)
	}
	last, err := q.Job(f2)
	if err != nil {
		t.Fatal(err)
	}
	if last.State != Done || last.Result == nil || last.Result.Bytes != 3 || last.DedupOf != f1 {
		t.Fatalf("re-parked follower after settle: %+v res=%+v", last, last.Result)
	}
	st := q.Stats()
	if st.Failed != 1 || st.Done != 2 || st.CacheDedupHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDedupSurvivesRestore: followers stay parked and the leader's key
// stays registered across a snapshot/restore cycle.
func TestDedupSurvivesRestore(t *testing.T) {
	q, store, _ := cacheQueue(t, Options{})
	lead, _ := q.Submit(encSpec(30))
	fol, _ := q.Submit(encSpec(30))
	j, ok := q.Lease("w1")
	if !ok || j.ID != lead {
		t.Fatalf("lease = %+v", j)
	}

	var buf bytes.Buffer
	if err := q.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Resume the clock inside the lease TTL so the restored lease is
	// still live (an expired lease is the requeue path, not this test).
	clk := NewSimClock(time.Unix(5, 0).UTC())
	q2, err := Restore(&buf, Options{Clock: clk, Metrics: telemetry.NewRegistry(), Cache: store})
	if err != nil {
		t.Fatal(err)
	}

	// The follower must not be leasable, and a fresh duplicate must
	// park behind the restored leader rather than enter the heap.
	if _, ok := q2.Lease("w2"); ok {
		t.Fatal("restored follower was leasable")
	}
	dup, err := q2.Submit(encSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	if dj, _ := q2.Job(dup); dj.DedupOf != lead {
		t.Fatalf("post-restore duplicate not parked: %+v", dj)
	}
	if applied, err := q2.Complete(lead, j.Attempt, "w1", Result{Bytes: 9}); err != nil || !applied {
		t.Fatalf("complete restored leader: %v %v", applied, err)
	}
	for _, id := range []int{fol, dup} {
		got, err := q2.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != Done || got.Result == nil || got.Result.Bytes != 9 {
			t.Fatalf("job %d after restored settle: %+v", id, got)
		}
	}
	if st := q2.Stats(); st.CacheDedupHits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestExecutorCache: the worker-side executor serves a cached encode
// without re-encoding and populates the store on a miss.
func TestExecutorCache(t *testing.T) {
	store, err := cas.Open(t.TempDir(), telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	x := &Executor{Cache: store}
	spec := encSpec(30)
	cold, err := x.Execute(spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	written := store.Stats().BytesWritten
	if written == 0 {
		t.Fatal("miss did not populate the store")
	}
	store.EvictMem()
	warm, err := x.Execute(spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Errorf("cached result %+v != computed result %+v", warm, cold)
	}
	if st := store.Stats(); st.DiskHits != 1 {
		t.Errorf("store stats after warm execute: %+v", st)
	}

	// A worker wavefront default must not change the key: a second
	// executor with a different default still hits.
	x2 := &Executor{Cache: store, DefaultRowsParallel: 4}
	again, err := x2.Execute(spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != cold {
		t.Errorf("worker default changed the cached result: %+v vs %+v", again, cold)
	}
	if st := store.Stats(); st.BytesWritten != written {
		t.Errorf("worker default forced a re-encode and re-populate: %+v", st)
	}
}
