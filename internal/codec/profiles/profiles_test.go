package profiles

import (
	"testing"

	"vbench/internal/codec"
	"vbench/internal/corpus"
	"vbench/internal/metrics"
)

func TestFamiliesValidateAndCarryModels(t *testing.T) {
	for _, f := range []Family{FamilyX264, FamilyX265, FamilyVP9} {
		eng := New(f, codec.PresetMedium)
		if err := eng.Tools.Validate(); err != nil {
			t.Errorf("%v tools invalid: %v", f, err)
		}
		if eng.Model == nil {
			t.Errorf("%v has no cost model", f)
		}
		if f.String() == "unknown" {
			t.Errorf("family %d has no name", int(f))
		}
	}
}

func TestFamilyCompressionOrdering(t *testing.T) {
	// Figure 2: at equal quality targets, vp9 ≤ x265 < x264 on bitrate
	// and x264 fastest. Compare at a fixed QP (≈equal quality since
	// the quantizer is shared).
	clip, err := corpus.ClipByName("funny")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(12, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := codec.Config{RC: codec.RCConstQP, QP: 30}
	sizes := map[Family]int{}
	seconds := map[Family]float64{}
	psnrs := map[Family]float64{}
	for _, f := range []Family{FamilyX264, FamilyX265, FamilyVP9} {
		res, err := New(f, codec.PresetMedium).Encode(seq, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sizes[f] = len(res.Bitstream)
		seconds[f] = res.Seconds
		p, err := metrics.SequencePSNR(seq, res.Recon)
		if err != nil {
			t.Fatal(err)
		}
		psnrs[f] = p
	}
	if sizes[FamilyX265] >= sizes[FamilyX264] {
		t.Errorf("x265 (%d bytes) not smaller than x264 (%d bytes)", sizes[FamilyX265], sizes[FamilyX264])
	}
	if sizes[FamilyVP9] > sizes[FamilyX264] {
		t.Errorf("vp9 (%d bytes) larger than x264 (%d bytes)", sizes[FamilyVP9], sizes[FamilyX264])
	}
	if seconds[FamilyX264] >= seconds[FamilyX265] || seconds[FamilyX264] >= seconds[FamilyVP9] {
		t.Errorf("x264 (%.4fs) not fastest (x265 %.4fs, vp9 %.4fs)",
			seconds[FamilyX264], seconds[FamilyX265], seconds[FamilyVP9])
	}
	// Newer codecs must not lose quality at the same QP.
	for f, p := range psnrs {
		if p < psnrs[FamilyX264]-0.5 {
			t.Errorf("%v PSNR %.2f well below x264 %.2f at equal QP", f, p, psnrs[FamilyX264])
		}
	}
}

func TestX265SlowerFactorInPaperRange(t *testing.T) {
	// Figure 2 bottom: x265/vp9 cost ~3-4x more than x264.
	clip, err := corpus.ClipByName("girl")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(16, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := codec.Config{RC: codec.RCConstQP, QP: 28}
	r264, err := X264(codec.PresetMedium).Encode(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r265, err := X265(codec.PresetMedium).Encode(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	factor := r265.Seconds / r264.Seconds
	if factor < 1.5 || factor > 12 {
		t.Errorf("x265/x264 time factor = %.2f, want roughly 2-8", factor)
	}
}

func TestPresetLadderMonotoneWork(t *testing.T) {
	clip, err := corpus.ClipByName("bike")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := clip.Generate(16, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prevOps := int64(0)
	for _, p := range []codec.Preset{codec.PresetUltraFast, codec.PresetMedium, codec.PresetVerySlow} {
		res, err := X264(p).Encode(seq, codec.Config{RC: codec.RCConstQP, QP: 28})
		if err != nil {
			t.Fatal(err)
		}
		ops := res.Counters.TotalOps()
		if ops <= prevOps {
			t.Errorf("preset %v did not increase work: %d vs %d", p, ops, prevOps)
		}
		prevOps = ops
	}
}
