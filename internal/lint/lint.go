// Package lint aggregates the project's analyzers for the
// cmd/vbenchlint driver and the self-lint test. Each analyzer guards
// one repository invariant; docs/LINT.md describes them in detail.
package lint

import (
	"vbench/internal/lint/analysis"
	"vbench/internal/lint/detorder"
	"vbench/internal/lint/hotalloc"
	"vbench/internal/lint/leakgo"
	"vbench/internal/lint/lockflow"
	"vbench/internal/lint/locksafe"
	"vbench/internal/lint/metricname"
	"vbench/internal/lint/spanpair"
	"vbench/internal/lint/statemachine"
)

// Analyzers returns every project analyzer, in the order they are
// reported.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detorder.Analyzer,
		hotalloc.Analyzer,
		leakgo.Analyzer,
		lockflow.Analyzer,
		locksafe.Analyzer,
		metricname.Analyzer,
		spanpair.Analyzer,
		statemachine.Analyzer,
	}
}
