package codec

import (
	"testing"

	"vbench/internal/perf"
	"vbench/internal/video"
)

func TestDeblockThresholdsGrowWithQP(t *testing.T) {
	prevA := 0
	for qp := 0; qp <= 51; qp++ {
		a, b, tc := deblockThresholds(qp)
		if a < prevA {
			t.Fatalf("alpha fell at qp %d", qp)
		}
		if b < 1 || tc < 1 {
			t.Fatalf("qp %d: beta %d tc %d", qp, b, tc)
		}
		prevA = a
	}
	aLo, _, _ := deblockThresholds(5)
	aHi, _, _ := deblockThresholds(45)
	if aHi <= aLo {
		t.Error("alpha not increasing over the QP range")
	}
}

func TestDeblockSmoothsBlockEdge(t *testing.T) {
	// A small step at an 8-pixel boundary (a coding artifact) must be
	// reduced.
	f := video.NewFrame(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := uint8(100)
			if x >= 8 {
				v = 108
			}
			f.Y[y*32+x] = v
		}
	}
	qpGrid := []int{35, 35, 35, 35}
	var c perf.Counters
	deblockFrame(f, qpGrid, 2, 2, &c)
	stepBefore := 8
	stepAfter := int(f.Y[16*32+8]) - int(f.Y[16*32+7])
	if stepAfter >= stepBefore {
		t.Errorf("edge step not reduced: %d -> %d", stepBefore, stepAfter)
	}
	if c.Ops[perf.KDeblock] == 0 {
		t.Error("deblock recorded no work")
	}
}

func TestDeblockPreservesRealEdges(t *testing.T) {
	// A large step (a real edge) must pass through untouched.
	f := video.NewFrame(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := uint8(40)
			if x >= 8 {
				v = 200
			}
			f.Y[y*32+x] = v
		}
	}
	qpGrid := []int{30, 30, 30, 30}
	var c perf.Counters
	deblockFrame(f, qpGrid, 2, 2, &c)
	if f.Y[16*32+7] != 40 || f.Y[16*32+8] != 200 {
		t.Errorf("real edge modified: %d | %d", f.Y[16*32+7], f.Y[16*32+8])
	}
}

func TestDeblockFlatRegionUnchanged(t *testing.T) {
	f := video.NewFrame(32, 32)
	for i := range f.Y {
		f.Y[i] = 128
	}
	qpGrid := []int{40, 40, 40, 40}
	var c perf.Counters
	deblockFrame(f, qpGrid, 2, 2, &c)
	for i, v := range f.Y {
		if v != 128 {
			t.Fatalf("flat sample %d changed to %d", i, v)
		}
	}
}

func TestDeblockDeterministic(t *testing.T) {
	mk := func() *video.Frame {
		p := video.ContentParams{Seed: 3, Detail: 0.7, ChromaVariety: 0.5}
		seq, err := video.Generate(p, 64, 64, 1, 30)
		if err != nil {
			t.Fatal(err)
		}
		return seq.Frames[0]
	}
	a, b := mk(), mk()
	grid := make([]int, 16)
	for i := range grid {
		grid[i] = 28 + i
	}
	var c perf.Counters
	deblockFrame(a, grid, 4, 4, &c)
	deblockFrame(b, grid, 4, 4, &c)
	if !a.Equal(b) {
		t.Error("deblock not deterministic")
	}
}
