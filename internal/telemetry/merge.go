package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTrace is the parsed form of a Chrome trace-event JSON file as
// written by Tracer.WriteChromeTrace (and by MergeChromeTraces). It
// round-trips through encoding/json, so tests and tools can inspect
// stitched traces structurally instead of grepping bytes.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// ChromeEvent is one trace event: "X" complete spans, "M" metadata,
// and the "s"/"f" flow pairs the merge step emits for cross-process
// parent links.
type ChromeEvent struct {
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int64                  `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Name string                 `json:"name,omitempty"`
	Cat  string                 `json:"cat,omitempty"`
	ID   string                 `json:"id,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// SpanID returns the event's stitchable identity (the ArgSpanID arg),
// or "" when it has none.
func (e *ChromeEvent) SpanID() string { return e.strArg(ArgSpanID) }

// ParentSpanID returns the identity of the event's declared parent
// (the ArgParentID arg), or "" when it declares none.
func (e *ChromeEvent) ParentSpanID() string { return e.strArg(ArgParentID) }

func (e *ChromeEvent) strArg(key string) string {
	if s, ok := e.Args[key].(string); ok {
		return s
	}
	return ""
}

// ParseChromeTrace decodes one trace file.
func ParseChromeTrace(r io.Reader) (*ChromeTrace, error) {
	var t ChromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("telemetry: decoding chrome trace: %w", err)
	}
	return &t, nil
}

// ProcessName returns the trace's process_name metadata ("" if the
// file carries none).
func (t *ChromeTrace) ProcessName() string {
	for i := range t.TraceEvents {
		e := &t.TraceEvents[i]
		if e.Ph == "M" && e.Name == "process_name" {
			if s, ok := e.Args["name"].(string); ok {
				return s
			}
		}
	}
	return ""
}

// EpochUS returns the trace's clock_sync anchor: the wall-clock time,
// in Unix microseconds, that the file's relative timestamps are
// measured from. Zero means the trace carries no anchor (pre-merge
// files from older writers) and cannot be time-aligned.
func (t *ChromeTrace) EpochUS() int64 {
	for i := range t.TraceEvents {
		e := &t.TraceEvents[i]
		if e.Ph == "M" && e.Name == "clock_sync" {
			if v, ok := e.Args["epoch_us"].(float64); ok {
				return int64(v)
			}
		}
	}
	return 0
}

// MergeStats summarizes one stitch.
type MergeStats struct {
	// Processes and Spans count the merged inputs and their complete
	// ("X") events.
	Processes int
	Spans     int
	// Links counts parent links resolved across process boundaries
	// (each also gets a flow-event pair in the output); Orphans counts
	// spans that declared a parent no input defines.
	Links   int
	Orphans int
}

// MergeChromeTraces stitches per-process trace files into one Chrome
// trace timeline: input i becomes pid i+1 (keeping its process_name),
// timestamps are aligned onto a shared clock via each file's
// clock_sync anchor, and every cross-process parent link declared
// with ArgParentID is resolved and materialized as a flow-event pair,
// so the viewer draws an arrow from the master's lease span to the
// worker's encode span. The output is deterministic for fixed inputs.
func MergeChromeTraces(w io.Writer, inputs []*ChromeTrace) (MergeStats, error) {
	var stats MergeStats
	stats.Processes = len(inputs)

	// Align clocks: shift each input by its epoch relative to the
	// earliest anchored input. Unanchored inputs (epoch 0) are left
	// unshifted rather than dragged to 1970.
	minEpoch := int64(0)
	for _, in := range inputs {
		if e := in.EpochUS(); e > 0 && (minEpoch == 0 || e < minEpoch) {
			minEpoch = e
		}
	}

	out := ChromeTrace{DisplayTimeUnit: "ms"}
	type spanRef struct {
		pid      int
		tid      int64
		ts       float64
		hasChild bool
	}
	index := map[string]*spanRef{}
	var spans []*ChromeEvent // merged X events, in input order
	for i, in := range inputs {
		pid := i + 1
		shift := 0.0
		if e := in.EpochUS(); e > 0 && minEpoch > 0 {
			shift = float64(e - minEpoch)
		}
		name := in.ProcessName()
		if name == "" {
			name = fmt.Sprintf("process-%d", pid)
		}
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Ph: "M", Pid: pid, Name: "process_name",
			Args: map[string]interface{}{"name": name},
		})
		for j := range in.TraceEvents {
			e := in.TraceEvents[j] // copy
			if e.Ph != "X" {
				continue
			}
			e.Pid = pid
			e.Ts += shift
			stats.Spans++
			out.TraceEvents = append(out.TraceEvents, e)
			ref := &out.TraceEvents[len(out.TraceEvents)-1]
			spans = append(spans, ref)
			if id := e.SpanID(); id != "" {
				index[id] = &spanRef{pid: pid, tid: e.Tid, ts: e.Ts}
			}
		}
	}

	// Resolve declared parents and emit flow pairs for the links that
	// cross a process boundary — within one process the viewer already
	// nests by track and time.
	for _, e := range spans {
		parent := e.ParentSpanID()
		if parent == "" {
			continue
		}
		ref, ok := index[parent]
		if !ok {
			stats.Orphans++
			continue
		}
		if ref.pid == e.Pid {
			continue
		}
		stats.Links++
		id := e.SpanID()
		if id == "" {
			id = fmt.Sprintf("link-%d", stats.Links)
		}
		out.TraceEvents = append(out.TraceEvents,
			ChromeEvent{Ph: "s", Cat: "fleet", Name: "fleet.link", ID: id,
				Pid: ref.pid, Tid: ref.tid, Ts: ref.ts},
			ChromeEvent{Ph: "f", BP: "e", Cat: "fleet", Name: "fleet.link", ID: id,
				Pid: e.Pid, Tid: e.Tid, Ts: e.Ts},
		)
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return stats, err
	}
	return stats, nil
}
