// Package scoring implements vbench's five transcoding scenarios and
// their scoring functions (Table 1 of the paper). Every transcode is
// summarized by three normalized measurements — speed (Mpixel/s),
// bitrate (bits/pixel/s), and quality (average YCbCr PSNR in dB) —
// and compared against a reference transcode as ratios:
//
//	S = Speed_new / Speed_ref
//	B = Bitrate_ref / Bitrate_new
//	Q = Quality_new / Quality_ref
//
// Each scenario eliminates one dimension with a hard quality-of-
// service constraint and scores the product of the other two.
package scoring

import (
	"fmt"
	"math"
)

// Measurement is the (speed, bitrate, quality) triple of one
// transcode, in the paper's normalized units.
type Measurement struct {
	// SpeedMPS is transcode speed in megapixels per second.
	SpeedMPS float64
	// BitratePPS is compressed size in bits per pixel per second.
	BitratePPS float64
	// PSNR is average YCbCr PSNR in dB.
	PSNR float64
}

// Validate reports whether the measurement is physically meaningful.
func (m Measurement) Validate() error {
	if m.SpeedMPS <= 0 || math.IsNaN(m.SpeedMPS) {
		return fmt.Errorf("scoring: invalid speed %v", m.SpeedMPS)
	}
	if m.BitratePPS <= 0 || math.IsNaN(m.BitratePPS) {
		return fmt.Errorf("scoring: invalid bitrate %v", m.BitratePPS)
	}
	if m.PSNR <= 0 || math.IsNaN(m.PSNR) {
		return fmt.Errorf("scoring: invalid PSNR %v", m.PSNR)
	}
	return nil
}

// Ratios holds the three improvement ratios against a reference.
// Values above 1 mean the candidate is better on that axis.
type Ratios struct {
	S float64 // speed ratio
	B float64 // compression ratio (ref bitrate / new bitrate)
	Q float64 // quality ratio
}

// ComputeRatios compares a candidate measurement against a reference.
func ComputeRatios(candidate, reference Measurement) (Ratios, error) {
	if err := candidate.Validate(); err != nil {
		return Ratios{}, fmt.Errorf("candidate: %w", err)
	}
	if err := reference.Validate(); err != nil {
		return Ratios{}, fmt.Errorf("reference: %w", err)
	}
	return Ratios{
		S: candidate.SpeedMPS / reference.SpeedMPS,
		B: reference.BitratePPS / candidate.BitratePPS,
		Q: candidate.PSNR / reference.PSNR,
	}, nil
}

// Scenario identifies one of the five vbench scoring scenarios.
type Scenario int

// The five scenarios of Table 1.
const (
	// Upload: the first transcode of a new video to the universal
	// format. Needs speed and quality; size is a temporary cost.
	Upload Scenario = iota
	// Live: real-time streaming. Speed is a hard constraint; score
	// trades bitrate and quality.
	Live
	// VOD: offline video-on-demand transcode. Quality must not
	// regress; score trades speed and compression.
	VOD
	// Popular: high-effort re-transcode of hot videos. Must improve
	// both compression and quality; speed only loosely bounded.
	Popular
	// Platform: fixed encoder and settings, changed platform. Bitrate
	// and quality must be unchanged; score is pure speed.
	Platform
	NumScenarios
)

var scenarioNames = [NumScenarios]string{"upload", "live", "vod", "popular", "platform"}

// String names the scenario.
func (s Scenario) String() string {
	if s < 0 || s >= NumScenarios {
		return fmt.Sprintf("scenario(%d)", int(s))
	}
	return scenarioNames[s]
}

// ParseScenario maps a name to a scenario.
func ParseScenario(name string) (Scenario, error) {
	for i, n := range scenarioNames {
		if n == name {
			return Scenario(i), nil
		}
	}
	return 0, fmt.Errorf("scoring: unknown scenario %q", name)
}

// Scenarios lists all five in order.
func Scenarios() []Scenario {
	out := make([]Scenario, NumScenarios)
	for i := range out {
		out[i] = Scenario(i)
	}
	return out
}

// VisuallyLosslessPSNR is the quality floor above which the VOD
// constraint is satisfied regardless of the reference (Table 1:
// Qnew ≥ 50 dB).
const VisuallyLosslessPSNR = 50.0

// Score is the outcome of scoring one transcode under one scenario.
type Score struct {
	Scenario Scenario
	Ratios   Ratios
	// Valid reports whether the scenario's constraint was met; when
	// false, Value is meaningless and the paper reports an empty cell.
	Valid bool
	// Reason explains a constraint failure.
	Reason string
	// Value is the scenario score (product of the two free ratios, or
	// S for Platform).
	Value float64
}

// Constraint inputs beyond the ratios themselves.
type Constraint struct {
	// CandidatePSNR is the candidate's absolute quality, used by the
	// VOD visually-lossless escape hatch.
	CandidatePSNR float64
	// CandidateSpeedMPS and RealTimeMPS express the Live scenario's
	// hard real-time requirement: the candidate must transcode at
	// least as fast as the output pixel rate.
	CandidateSpeedMPS float64
	RealTimeMPS       float64
}

// Evaluate applies a scenario's constraint and scoring function
// (Table 1) to a candidate/reference ratio triple.
func Evaluate(s Scenario, r Ratios, c Constraint) Score {
	out := Score{Scenario: s, Ratios: r}
	switch s {
	case Upload:
		// Constraint: B > 0.2 (no more than 5× the reference bitrate).
		if r.B <= 0.2 {
			out.Reason = fmt.Sprintf("bitrate blew past 5x the reference (B=%.3f)", r.B)
			return out
		}
		out.Valid = true
		out.Value = r.S * r.Q
	case Live:
		// Constraint: real-time speed on the output pixel rate.
		if c.CandidateSpeedMPS < c.RealTimeMPS {
			out.Reason = fmt.Sprintf("not real time (%.2f < %.2f Mpixel/s)", c.CandidateSpeedMPS, c.RealTimeMPS)
			return out
		}
		out.Valid = true
		out.Value = r.B * r.Q
	case VOD:
		// Constraint: Q ≥ 1 or visually lossless.
		if r.Q < 1 && c.CandidatePSNR < VisuallyLosslessPSNR {
			out.Reason = fmt.Sprintf("quality regressed (Q=%.3f, PSNR=%.1f dB)", r.Q, c.CandidatePSNR)
			return out
		}
		out.Valid = true
		out.Value = r.S * r.B
	case Popular:
		// Constraint: B ≥ 1 and Q ≥ 1 and S ≥ 0.1.
		if r.B < 1 {
			out.Reason = fmt.Sprintf("bitrate regressed (B=%.3f)", r.B)
			return out
		}
		if r.Q < 1 {
			out.Reason = fmt.Sprintf("quality regressed (Q=%.3f)", r.Q)
			return out
		}
		if r.S < 0.1 {
			out.Reason = fmt.Sprintf("slower than the 10x bound (S=%.3f)", r.S)
			return out
		}
		out.Valid = true
		out.Value = r.B * r.Q
	case Platform:
		// Constraint: bitstream-identical output (B = Q = 1).
		if !approxOne(r.B) || !approxOne(r.Q) {
			out.Reason = fmt.Sprintf("output changed (B=%.3f, Q=%.3f)", r.B, r.Q)
			return out
		}
		out.Valid = true
		out.Value = r.S
	default:
		out.Reason = "unknown scenario"
	}
	return out
}

// approxOne tolerates floating-point noise on the Platform identity
// constraint.
func approxOne(v float64) bool { return v > 0.9999 && v < 1.0001 }
